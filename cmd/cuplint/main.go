// Command cuplint is CUP's multichecker: it runs the repository's
// custom static-analysis passes (determinism, hotpath,
// eventexhaustive, ctxdiscipline) over the tree.
//
// Two modes, one binary:
//
//	cuplint ./...                     standalone: loads packages via
//	                                  `go list -export` and prints
//	                                  file:line:col diagnostics
//	go vet -vettool=$(which cuplint)  unitchecker: speaks cmd/go's vet
//	                                  config protocol
//
// Exit status is 2 when any diagnostic is reported, 0 on a clean run,
// 1 on operational errors — matching go vet's convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cup/internal/analysis"
	"cup/internal/analysis/ctxdiscipline"
	"cup/internal/analysis/determinism"
	"cup/internal/analysis/eventexhaustive"
	"cup/internal/analysis/hotpath"
)

// Suite is the cuplint pass suite, in report order.
var Suite = []*analysis.Analyzer{
	ctxdiscipline.Analyzer,
	determinism.Analyzer,
	eventexhaustive.Analyzer,
	hotpath.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	// cmd/go's vettool protocol probes the tool before use:
	//   cuplint -V=full       print a version fingerprint
	//   cuplint -flags        print the tool's flag JSON
	//   cuplint <cfg>.cfg     analyze one package unit
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			analysis.PrintVersion(os.Stdout, "cuplint")
			return 0
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			analysis.PrintFlags(os.Stdout)
			return 0
		case strings.HasSuffix(os.Args[1], ".cfg"):
			fset, diags, err := analysis.RunUnit(os.Args[1], Suite)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cuplint: %v\n", err)
				return 1
			}
			if len(diags) == 0 {
				return 0
			}
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
			}
			return 2
		}
	}

	fs := flag.NewFlagSet("cuplint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cuplint [-list] [-C dir] packages...\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range Suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuplint: %v\n", err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(pkgs, Suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cuplint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	base, _ := os.Getwd()
	if *dir != "." {
		base = *dir
	}
	for _, d := range diags {
		fmt.Println(analysis.Format(pkgs[0].Fset, base, d))
	}
	return 2
}
