// Command cupbench regenerates the tables and figures of the CUP paper's
// evaluation section. By default every experiment runs at a reduced scale
// that finishes in seconds; -full uses the paper's exact parameters
// (3000 s of querying, λ up to 1000 queries/s, networks up to 4096 nodes).
// -json instead benchmarks every registered scenario (traffic generator +
// fault scripts) and writes the machine-readable perf trajectory to
// BENCH_scenarios.json.
//
//	cupbench                     # all experiments, reduced scale
//	cupbench -exp table1         # one experiment
//	cupbench -full -exp fig4     # paper-scale run
//	cupbench -list               # list experiment names
//	cupbench -json               # benchmark the scenario catalog
//	cupbench -json -scenario flashcrowd
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cup"
	"cup/internal/experiment"
	"cup/internal/overlay"
)

// scenarioBench is one row of BENCH_scenarios.json: wall-clock cost and
// workload volume of a reduced-scale run of one registered scenario.
type scenarioBench struct {
	Scenario          string  `json:"scenario"`
	Overlay           string  `json:"overlay"`
	Nodes             int     `json:"nodes"`
	Seed              int64   `json:"seed"`
	NsPerOp           int64   `json:"ns_per_op"`
	Queries           uint64  `json:"queries"`
	QueriesPerSec     float64 `json:"queries_per_sec"`
	UpdatesOriginated uint64  `json:"updates_originated"`
	UpdateHops        uint64  `json:"update_hops"`
	TotalCostHops     uint64  `json:"total_cost_hops"`
}

// benchScenarios runs every named scenario once on the simulated
// transport at reduced scale and writes BENCH_scenarios.json.
func benchScenarios(names []string, ov string, seed int64) error {
	const (
		nodes    = 256
		rate     = 5.0
		duration = 600.0
	)
	rows := make([]scenarioBench, 0, len(names))
	for _, name := range names {
		sc, err := cup.BuildScenario(name)
		if err != nil {
			return err
		}
		opts := []cup.Option{
			cup.WithNodes(nodes),
			cup.WithOverlay(ov),
			cup.WithKeys(4),
			cup.WithZipf(1.1),
			cup.WithQueryRate(rate),
			cup.WithQueryDuration(cup.Seconds(duration)),
			cup.WithSeed(seed),
			cup.WithScenario(sc),
		}
		d, err := cup.New(opts...)
		if err != nil {
			return fmt.Errorf("scenario %q: %v", name, err)
		}
		start := time.Now()
		res, err := d.Run(context.Background())
		elapsed := time.Since(start)
		d.Close()
		if err != nil {
			return fmt.Errorf("scenario %q: %v", name, err)
		}
		c := res.Counters
		rows = append(rows, scenarioBench{
			Scenario:          name,
			Overlay:           res.Params.OverlayKind,
			Nodes:             nodes,
			Seed:              seed,
			NsPerOp:           elapsed.Nanoseconds(),
			Queries:           c.Queries,
			QueriesPerSec:     float64(c.Queries) / elapsed.Seconds(),
			UpdatesOriginated: c.UpdatesOriginated,
			UpdateHops:        c.UpdateHops,
			TotalCostHops:     c.TotalCost(),
		})
		fmt.Printf("%-14s %12v %8d queries %10.0f q/s %8d updates\n",
			name, elapsed.Round(time.Millisecond), c.Queries,
			float64(c.Queries)/elapsed.Seconds(), c.UpdatesOriginated)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_scenarios.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_scenarios.json")
	return nil
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment name or 'all'")
		full     = flag.Bool("full", false, "run at the paper's full scale")
		seed     = flag.Int64("seed", 1, "random seed")
		ov       = flag.String("overlay", "", "substrate for all experiments ("+overlay.KindList()+"; default: the paper's CAN)")
		list     = flag.Bool("list", false, "list experiment names and exit")
		jsonOut  = flag.Bool("json", false, "benchmark the scenario catalog and write BENCH_scenarios.json")
		scenario = flag.String("scenario", "", "with -json: benchmark only this registered scenario")
	)
	flag.Parse()

	if *ov != "" && !overlay.Registered(*ov) {
		fmt.Fprintf(os.Stderr, "cupbench: unknown overlay %q (registered: %s)\n", *ov, overlay.KindList())
		os.Exit(2)
	}

	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		return
	}

	if *jsonOut {
		names := cup.ScenarioNames()
		if *scenario != "" {
			names = []string{*scenario}
		}
		if err := benchScenarios(names, *ov, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "cupbench:", err)
			os.Exit(1)
		}
		return
	}

	sc := experiment.Scale{Full: *full, Seed: *seed, Overlay: *ov}
	names := experiment.Names()
	if *exp != "all" {
		if _, ok := experiment.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "cupbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}

	for _, name := range names {
		start := time.Now()
		table := experiment.Registry[name](sc)
		fmt.Println(table.Render())
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
