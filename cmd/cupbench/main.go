// Command cupbench regenerates the tables and figures of the CUP paper's
// evaluation section. By default every experiment runs at a reduced scale
// that finishes in seconds; -full uses the paper's exact parameters
// (3000 s of querying, λ up to 1000 queries/s, networks up to 4096 nodes).
//
//	cupbench                 # all experiments, reduced scale
//	cupbench -exp table1     # one experiment
//	cupbench -full -exp fig4 # paper-scale run
//	cupbench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cup/internal/experiment"
	"cup/internal/overlay"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment name or 'all'")
		full = flag.Bool("full", false, "run at the paper's full scale")
		seed = flag.Int64("seed", 1, "random seed")
		ov   = flag.String("overlay", "", "substrate for all experiments ("+overlay.KindList()+"; default: the paper's CAN)")
		list = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *ov != "" && !overlay.Registered(*ov) {
		fmt.Fprintf(os.Stderr, "cupbench: unknown overlay %q (registered: %s)\n", *ov, overlay.KindList())
		os.Exit(2)
	}

	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		return
	}

	sc := experiment.Scale{Full: *full, Seed: *seed, Overlay: *ov}
	names := experiment.Names()
	if *exp != "all" {
		if _, ok := experiment.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "cupbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}

	for _, name := range names {
		start := time.Now()
		table := experiment.Registry[name](sc)
		fmt.Println(table.Render())
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
