// Command cupbench regenerates the tables and figures of the CUP paper's
// evaluation section. By default every experiment runs at a reduced scale
// that finishes in seconds; -full uses the paper's exact parameters
// (3000 s of querying, λ up to 1000 queries/s, networks up to 4096 nodes).
// Sweeps run on the parallel experiment engine (-workers caps the pool).
// -json instead benchmarks every registered scenario (traffic generator +
// fault scripts) and writes the machine-readable perf trajectory to
// BENCH_scenarios.json; -parallel benchmarks the engine core (scheduler
// events/sec, allocs/event, Figure-3 sweep wall-time sequential vs
// cost-ordered parallel with its per-cell tail, and a four-network live
// trial sweep) and writes BENCH_core.json.
//
//	cupbench                     # all experiments, reduced scale
//	cupbench -exp table1         # one experiment
//	cupbench -full -exp fig4     # paper-scale run
//	cupbench -list               # list experiment names
//	cupbench -json               # benchmark the scenario catalog
//	cupbench -json -scenario flashcrowd
//	cupbench -parallel           # core benchmark, write BENCH_core.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"cup"
	"cup/internal/experiment"
	"cup/internal/metrics"
	"cup/internal/obs"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// scenarioBench is one row of BENCH_scenarios.json: wall-clock cost and
// workload volume of a reduced-scale run of one registered scenario,
// plus a telemetry snapshot of the core protocol series the metrics
// registry folded from the same run's event stream.
type scenarioBench struct {
	Scenario          string  `json:"scenario"`
	Overlay           string  `json:"overlay"`
	Nodes             int     `json:"nodes"`
	Seed              int64   `json:"seed"`
	NsPerOp           int64   `json:"ns_per_op"`
	Queries           uint64  `json:"queries"`
	QueriesPerSec     float64 `json:"queries_per_sec"`
	UpdatesOriginated uint64  `json:"updates_originated"`
	UpdateHops        uint64  `json:"update_hops"`
	TotalCostHops     uint64  `json:"total_cost_hops"`
	// Telemetry holds selected registry series keyed by metric name
	// (histograms report their sample count).
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// telemetrySnapshot collects the core protocol series from a finished
// deployment's metrics registry for the JSON trajectory.
func telemetrySnapshot(d *cup.Deployment) map[string]float64 {
	snap := map[string]float64{}
	for _, name := range []string{
		"cup_cutoffs_total",
		"cup_query_latency_seconds",
		"cup_update_push_depth",
	} {
		if v, ok := d.MetricValue(name); ok {
			snap[name] = v
		}
	}
	// The push counter is labelled by update taxonomy; export the sum.
	var pushed float64
	for _, t := range []string{"first-time", "delete", "refresh", "append"} {
		if v, ok := d.MetricValue("cup_updates_pushed_total",
			cup.MetricLabel{Key: "type", Value: t}); ok {
			pushed += v
		}
	}
	snap["cup_updates_pushed_total"] = pushed
	if v, ok := d.MetricValue("cup_queries_coalesced_total",
		cup.MetricLabel{Key: "source", Value: "local"}); ok {
		snap["cup_queries_coalesced_total{source=local}"] = v
	}
	return snap
}

// benchScenarios runs every named scenario once on the simulated
// transport at reduced scale and writes BENCH_scenarios.json.
func benchScenarios(names []string, ov string, seed int64) error {
	const (
		nodes    = 256
		rate     = 5.0
		duration = 600.0
	)
	rows := make([]scenarioBench, 0, len(names))
	for _, name := range names {
		sc, err := cup.BuildScenario(name)
		if err != nil {
			return err
		}
		opts := []cup.Option{
			cup.WithNodes(nodes),
			cup.WithOverlay(ov),
			cup.WithKeys(4),
			cup.WithZipf(1.1),
			cup.WithQueryRate(rate),
			cup.WithQueryDuration(cup.Seconds(duration)),
			cup.WithSeed(seed),
			cup.WithScenario(sc),
			cup.WithTelemetry(""),
		}
		d, err := cup.New(opts...)
		if err != nil {
			return fmt.Errorf("scenario %q: %v", name, err)
		}
		start := time.Now()
		res, err := d.Run(context.Background())
		elapsed := time.Since(start)
		if err != nil {
			d.Close()
			return fmt.Errorf("scenario %q: %v", name, err)
		}
		c := res.Counters
		rows = append(rows, scenarioBench{
			Scenario:          name,
			Overlay:           res.Params.OverlayKind,
			Nodes:             nodes,
			Seed:              seed,
			NsPerOp:           elapsed.Nanoseconds(),
			Queries:           c.Queries,
			QueriesPerSec:     float64(c.Queries) / elapsed.Seconds(),
			UpdatesOriginated: c.UpdatesOriginated,
			UpdateHops:        c.UpdateHops,
			TotalCostHops:     c.TotalCost(),
			Telemetry:         telemetrySnapshot(d),
		})
		d.Close()
		fmt.Printf("%-14s %12v %8d queries %10.0f q/s %8d updates\n",
			name, elapsed.Round(time.Millisecond), c.Queries,
			float64(c.Queries)/elapsed.Seconds(), c.UpdatesOriginated)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_scenarios.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_scenarios.json")
	return nil
}

// coreBench is the content of BENCH_core.json: the engine-core numbers
// CI gates on — scheduler hot-path throughput and allocation rate, the
// Figure-3 sweep wall-time under the sequential and the adaptive
// parallel engine with its per-cell tail, and a four-trial live sweep
// (four isolated goroutine networks on the worker pool).
type coreBench struct {
	GoMaxProcs     int     `json:"gomaxprocs"`
	Workers        int     `json:"workers"`
	SchedulerEvts  uint64  `json:"scheduler_events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// The sharded scheduler under the same timer-churn load, spread
	// across ShardedShards heaps with conservative-window sync and
	// cross-shard reposts.
	ShardedShards       int     `json:"sharded_shards"`
	ShardedEventsPerSec float64 `json:"sharded_events_per_sec"`
	// The million-node scale demonstration: dense-state bytes per node
	// (overlay + arena + views) and the reduced Figure-3-style sweep at
	// n = 10^6 on the sharded scheduler.
	BytesPerNode        float64 `json:"bytes_per_node"`
	MillionNodes        int     `json:"million_nodes"`
	MillionSweepNs      int64   `json:"million_sweep_ns"`
	MillionEvents       uint64  `json:"million_events"`
	MillionEventsPerSec float64 `json:"million_events_per_sec"`
	Fig3SeqNs           int64   `json:"fig3_sequential_ns"`
	Fig3ParNs           int64   `json:"fig3_parallel_ns"`
	Fig3Speedup         float64 `json:"fig3_speedup"`
	Fig3Identical       bool    `json:"fig3_identical"`
	// Fig3TailNs is the slowest cell of the parallel sweep (the tail
	// cost-ordered dispatch hides); Fig3P95Ns the 95th-percentile cell.
	Fig3TailNs int64 `json:"fig3_tail_ns"`
	Fig3P95Ns  int64 `json:"fig3_p95_ns"`
	// The live multi-trial sweep: trials × parallelism, wall time, and
	// the query messages its merged counters carried.
	LiveTrials    int    `json:"live_trials"`
	LiveParallel  int    `json:"live_parallelism"`
	LiveSweepNs   int64  `json:"live_sweep_ns"`
	LiveQueryMsgs uint64 `json:"live_query_msgs"`
}

// benchSchedulerCore drives the timer-churn hot path — every fired event
// schedules a successor and a decoy and cancels the previous decoy, the
// pattern refresh loops and piggyback windows generate — and reports
// events/sec plus heap allocations per scheduled event.
func benchSchedulerCore(events uint64) (perSec, allocsPerEvent float64) {
	s := sim.NewScheduler()
	noop := func() {}
	var decoy sim.EventID
	var rearm func()
	rearm = func() {
		if s.Executed >= events {
			return
		}
		s.Cancel(decoy)
		decoy = s.After(2, noop)
		s.After(1, rearm)
	}
	s.After(1, rearm)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := s.Run(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	// Each loop turn schedules two events (successor + decoy); charge
	// allocations to scheduled, not fired, events.
	scheduled := 2 * s.Executed
	return float64(s.Executed) / elapsed.Seconds(),
		float64(m1.Mallocs-m0.Mallocs) / float64(scheduled)
}

// benchShardedSchedulerCore drives the same timer-churn pattern across k
// shards under conservative-window synchronization: each shard runs
// `chains` independent rearm loops (amortizing the window barrier the
// way a populated simulation does), and every turn also posts one
// cross-shard message through the staged-outbox path.
func benchShardedSchedulerCore(k int, events uint64) float64 {
	const chains = 8
	sh := sim.NewSharded(k, 1)
	noop := func() {}
	// Each rearm chain stops after its share of the event budget; a local
	// countdown keeps the termination check out of the measured hot path
	// (sh.Executed() walks every shard).
	rounds := int(events) / (k * chains)
	for i := 0; i < k; i++ {
		shard := i
		s := sh.Shard(shard)
		for c := 0; c < chains; c++ {
			var decoy sim.EventID
			var rearm func()
			left := rounds
			rearm = func() {
				if left <= 0 {
					return
				}
				left--
				s.Cancel(decoy)
				decoy = s.After(2, noop)
				s.After(1, rearm)
				sh.Post(shard, (shard+1)%k, s.Now().Add(2), noop)
			}
			s.After(1, rearm)
		}
	}
	start := time.Now()
	if err := sh.RunUntil(sim.Infinity, nil); err != nil {
		panic(err)
	}
	return float64(sh.Executed()) / time.Since(start).Seconds()
}

// benchLiveSweep times a multi-trial live Run: `trials` isolated
// goroutine networks, `par` at a time on the worker pool, counters
// merged in trial order. A compressed scenario (time scale 20) keeps
// the wall cost a few seconds while still pumping real wall-clock
// traffic through real channels.
func benchLiveSweep(seed int64, ov string, trials, par int) (time.Duration, uint64, error) {
	d, err := cup.New(
		cup.WithLive(),
		cup.WithOverlay(ov),
		cup.WithTrials(trials),
		cup.WithParallelism(par),
		cup.WithNodes(64),
		cup.WithTraffic(cup.PoissonTraffic(0)),
		cup.WithQueryRate(50),
		cup.WithLifetime(cup.Seconds(10)),
		cup.WithQueryWindow(cup.Seconds(10), cup.Seconds(30)),
		cup.WithTimeScale(20),
		cup.WithHopDelay(500*time.Microsecond),
		cup.WithSeed(seed),
	)
	if err != nil {
		return 0, 0, fmt.Errorf("live sweep: %v", err)
	}
	defer d.Close()
	start := time.Now()
	res, err := d.Run(context.Background())
	if err != nil {
		return 0, 0, fmt.Errorf("live sweep: %v", err)
	}
	return time.Since(start), res.Counters.QueryHops, nil
}

// benchCore measures the engine core and writes BENCH_core.json.
func benchCore(seed int64, ov string, workers int, full bool) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const schedEvents = 2 << 20
	perSec, allocs := benchSchedulerCore(schedEvents)
	fmt.Printf("scheduler      %12.0f events/s %8.3f allocs/event (%d events)\n",
		perSec, allocs, schedEvents)
	const shardedShards = 4
	shardedPerSec := benchShardedSchedulerCore(shardedShards, schedEvents)
	fmt.Printf("sharded sched  %12.0f events/s (%d shards, conservative windows)\n",
		shardedPerSec, shardedShards)

	sc := experiment.Scale{Full: full, Seed: seed, Overlay: ov}
	sc.Parallelism = 1
	seqStart := time.Now()
	seqTable := experiment.Fig3PushLevel(sc)
	seqNs := time.Since(seqStart)
	// The parallel sweep runs on a shared engine so its per-cell wall
	// times — and with them the sweep tail — are observable here. The
	// engine is instrumented through the same registry the deployments
	// use, so the trial-seconds histogram doubles as a wiring check.
	eng := experiment.NewEngine(workers)
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	sc.Parallelism, sc.Eng = workers, eng
	parStart := time.Now()
	parTable := experiment.Fig3PushLevel(sc)
	parNs := time.Since(parStart)
	cellTimes := eng.TrialTimes()
	tailNs := metrics.Percentile(cellTimes, 1)
	p95Ns := metrics.Percentile(cellTimes, 0.95)
	identical := seqTable.Render() == parTable.Render()
	fmt.Printf("fig3 sweep     %12v sequential %10v parallel (×%d workers, %.2fx, identical=%v)\n",
		seqNs.Round(time.Millisecond), parNs.Round(time.Millisecond), workers,
		seqNs.Seconds()/parNs.Seconds(), identical)
	fmt.Printf("fig3 tail      %12v slowest cell %8v p95 (%d cells, cost-ordered dispatch)\n",
		tailNs.Round(time.Millisecond), p95Ns.Round(time.Millisecond), len(cellTimes))
	if trials, ok := reg.Value("cup_experiment_trial_seconds"); ok && trials > 0 {
		var sum float64
		for _, m := range reg.Snapshot() {
			if m.Name == "cup_experiment_trial_seconds" {
				sum = m.Sum
			}
		}
		fmt.Printf("trial hist     %12.0f trials %12.3fs total (registry cup_experiment_trial_seconds)\n",
			trials, sum)
	}
	if !identical {
		return fmt.Errorf("parallel Figure-3 sweep diverged from sequential output")
	}

	liveTrials, livePar := 4, workers
	if livePar > liveTrials {
		livePar = liveTrials
	}
	liveNs, liveMsgs, err := benchLiveSweep(seed, ov, liveTrials, livePar)
	if err != nil {
		return err
	}
	fmt.Printf("live sweep     %12v wall (%d isolated networks, %d at a time, %d query msgs)\n",
		liveNs.Round(time.Millisecond), liveTrials, livePar, liveMsgs)

	// The million-node scale demonstration: per-node footprint of a dense
	// deployment, then the reduced Figure-3-style sweep on the sharded
	// scheduler.
	bytesPerNode := experiment.Footprint(experiment.MillionNodes)
	fmt.Printf("dense footprint %11.1f bytes/node (n = %d, chord + arena)\n",
		bytesPerNode, experiment.MillionNodes)
	msc := experiment.Scale{Seed: seed, Shards: shardedShards}
	million := experiment.MillionRun(msc)
	fmt.Printf("million sweep  %12v wall %12.0f events/s (%d events, %d cells)\n",
		million.Elapsed.Round(time.Millisecond), million.EventsPerSec(),
		million.Events, len(experiment.MillionPushLevels))

	out, err := json.MarshalIndent(coreBench{
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Workers:             workers,
		SchedulerEvts:       schedEvents,
		EventsPerSec:        perSec,
		AllocsPerEvent:      allocs,
		ShardedShards:       shardedShards,
		ShardedEventsPerSec: shardedPerSec,
		BytesPerNode:        bytesPerNode,
		MillionNodes:        experiment.MillionNodes,
		MillionSweepNs:      million.Elapsed.Nanoseconds(),
		MillionEvents:       million.Events,
		MillionEventsPerSec: million.EventsPerSec(),
		Fig3SeqNs:           seqNs.Nanoseconds(),
		Fig3ParNs:           parNs.Nanoseconds(),
		Fig3Speedup:         seqNs.Seconds() / parNs.Seconds(),
		Fig3Identical:       identical,
		Fig3TailNs:          tailNs.Nanoseconds(),
		Fig3P95Ns:           p95Ns.Nanoseconds(),
		LiveTrials:          liveTrials,
		LiveParallel:        livePar,
		LiveSweepNs:         liveNs.Nanoseconds(),
		LiveQueryMsgs:       liveMsgs,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_core.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_core.json")
	return nil
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment name or 'all'")
		full     = flag.Bool("full", false, "run at the paper's full scale")
		seed     = flag.Int64("seed", 1, "random seed")
		ov       = flag.String("overlay", "", "substrate for all experiments ("+overlay.KindList()+"; default: the paper's CAN)")
		list     = flag.Bool("list", false, "list experiment names and exit")
		jsonOut  = flag.Bool("json", false, "benchmark the scenario catalog and write BENCH_scenarios.json")
		scenario = flag.String("scenario", "", "with -json: benchmark only this registered scenario")
		parallel = flag.Bool("parallel", false, "benchmark the engine core (scheduler + parallel sweep) and write BENCH_core.json")
		workers  = flag.Int("workers", 0, "worker pool size for experiment sweeps (0 = GOMAXPROCS)")
		history  = flag.Bool("history", false, "append the BENCH_core.json row to BENCH_history.jsonl with the git commit")
	)
	flag.Parse()

	if *ov != "" && !overlay.Registered(*ov) {
		fmt.Fprintf(os.Stderr, "cupbench: unknown overlay %q (registered: %s)\n", *ov, overlay.KindList())
		os.Exit(2)
	}

	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		fmt.Println("million")
		return
	}

	if *parallel {
		if err := benchCore(*seed, *ov, *workers, *full); err != nil {
			fmt.Fprintln(os.Stderr, "cupbench:", err)
			os.Exit(1)
		}
		if *history {
			if err := appendHistory("BENCH_core.json", "BENCH_history.jsonl", time.Now()); err != nil {
				fmt.Fprintln(os.Stderr, "cupbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *history {
		// -history without -parallel appends the committed core row as-is
		// (used to seed the history from an existing BENCH_core.json).
		if err := appendHistory("BENCH_core.json", "BENCH_history.jsonl", time.Now()); err != nil {
			fmt.Fprintln(os.Stderr, "cupbench:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		names := cup.ScenarioNames()
		if *scenario != "" {
			names = []string{*scenario}
		}
		if err := benchScenarios(names, *ov, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "cupbench:", err)
			os.Exit(1)
		}
		return
	}

	sc := experiment.Scale{Full: *full, Seed: *seed, Overlay: *ov, Parallelism: *workers}
	if *exp == "million" {
		// The scale demonstration stands alone: a million-node overlay per
		// cell is too heavy to ride in the default "-exp all" pass.
		msc := experiment.Scale{Seed: *seed, Shards: 4}
		start := time.Now()
		fmt.Println(experiment.MillionSweep(msc).Render())
		fmt.Printf("[million took %v]\n\n", time.Since(start).Round(time.Millisecond))
		return
	}
	names := experiment.Names()
	if *exp != "all" {
		if _, ok := experiment.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "cupbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}

	for _, name := range names {
		start := time.Now()
		table := experiment.Registry[name](sc)
		fmt.Println(table.Render())
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
