// Bench history: -history appends the freshly written BENCH_core.json
// row to BENCH_history.jsonl, stamped with the git commit, so the perf
// trajectory across PRs is a greppable append-only log instead of a
// single overwritten snapshot. CI uploads the file as an artifact after
// the bench gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// historyRow is one line of BENCH_history.jsonl: the full core-bench
// payload plus provenance (commit, timestamp).
type historyRow struct {
	Commit string    `json:"commit"`
	Time   time.Time `json:"time"`
	Core   coreBench `json:"core"`
}

// gitSHA resolves the commit to stamp: GITHUB_SHA in CI, a local
// `git rev-parse` otherwise, "unknown" when neither is available.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendHistory reads the core-bench file and appends one JSONL row to
// the history file. Idempotence is deliberate non-goal: every run is a
// data point.
func appendHistory(corePath, historyPath string, now time.Time) error {
	raw, err := os.ReadFile(corePath)
	if err != nil {
		return fmt.Errorf("bench history: %v (run -parallel first)", err)
	}
	var core coreBench
	if err := json.Unmarshal(raw, &core); err != nil {
		return fmt.Errorf("bench history: parse %s: %v", corePath, err)
	}
	row, err := json.Marshal(historyRow{Commit: gitSHA(), Time: now.UTC(), Core: core})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(historyPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(row, '\n')); err != nil {
		return err
	}
	fmt.Printf("appended %s row for %s to %s\n", corePath, gitSHA(), historyPath)
	return nil
}
