package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAppendHistory(t *testing.T) {
	dir := t.TempDir()
	corePath := filepath.Join(dir, "BENCH_core.json")
	histPath := filepath.Join(dir, "BENCH_history.jsonl")

	core := coreBench{
		GoMaxProcs:   8,
		Workers:      8,
		EventsPerSec: 1.5e7,
		Fig3Speedup:  3.2,
	}
	raw, err := json.Marshal(core)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if err := appendHistory(corePath, histPath, t0); err != nil {
		t.Fatal(err)
	}
	// Appending is cumulative, one JSONL row per run.
	if err := appendHistory(corePath, histPath, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(histPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var rows []historyRow
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r historyRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad history row %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	if len(rows) != 2 {
		t.Fatalf("history rows = %d, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Commit == "" {
			t.Errorf("row %d: empty commit stamp", i)
		}
		if r.Core.EventsPerSec != core.EventsPerSec {
			t.Errorf("row %d: events/sec %g, want %g", i, r.Core.EventsPerSec, core.EventsPerSec)
		}
	}
	if !rows[1].Time.After(rows[0].Time) {
		t.Errorf("timestamps not increasing: %v then %v", rows[0].Time, rows[1].Time)
	}
}

func TestAppendHistoryMissingCore(t *testing.T) {
	dir := t.TempDir()
	err := appendHistory(filepath.Join(dir, "nope.json"), filepath.Join(dir, "h.jsonl"), time.Now())
	if err == nil {
		t.Fatal("appendHistory with a missing core file must fail")
	}
}

func TestGitSHAPrefersEnv(t *testing.T) {
	t.Setenv("GITHUB_SHA", "0123456789abcdef0123")
	if got := gitSHA(); got != "0123456789ab" {
		t.Fatalf("gitSHA = %q, want the 12-char GITHUB_SHA prefix", got)
	}
}
