// Command cuptrace renders the CUP tree of a key after a simulated
// workload: which nodes subscribed (interest bits), their depths, cached
// entry freshness, and popularity — the paper's Figure 2 made inspectable.
//
//	cuptrace -nodes 64 -rate 5 -duration 600
package main

import (
	"flag"
	"fmt"
	"sort"

	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 64, "overlay size")
		rate     = flag.Float64("rate", 5, "network query rate λ")
		duration = flag.Float64("duration", 600, "query window (s)")
		seed     = flag.Int64("seed", 1, "random seed")
		maxRows  = flag.Int("max", 40, "max tree rows to print")
	)
	flag.Parse()

	s := cup.NewSimulation(cup.Params{
		Nodes:         *nodes,
		QueryRate:     *rate,
		QueryDuration: sim.Duration(*duration),
		Seed:          *seed,
	})
	res := s.Run()
	k := s.Keys[0]
	root := s.Ov.Owner(k)

	fmt.Printf("CUP tree for %q (authority %v) after %v\n", k, root, s.Sched.Now())
	fmt.Printf("run: %s\n\n", res.Counters.String())

	// Breadth-first walk of the interest tree from the root.
	type row struct {
		id      overlay.NodeID
		depth   int
		pop     int
		fresh   bool
		entries int
	}
	var rows []row
	visited := map[overlay.NodeID]bool{root: true}
	frontier := []overlay.NodeID{root}
	for depth := 0; len(frontier) > 0; depth++ {
		var next []overlay.NodeID
		for _, id := range frontier {
			n := s.Nodes[id]
			rows = append(rows, row{
				id:      id,
				depth:   depth,
				pop:     n.Popularity(k),
				fresh:   n.HasFreshAnswer(k),
				entries: n.CacheStore().Len() + n.LocalDirectory().Len(),
			})
			for _, child := range n.InterestedNeighbors(k) {
				if !visited[child] {
					visited[child] = true
					next = append(next, child)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}

	fmt.Printf("%-6s %-10s %-6s %-6s %s\n", "depth", "node", "pop", "fresh", "entries")
	for i, r := range rows {
		if i >= *maxRows {
			fmt.Printf("… %d more subscribed nodes\n", len(rows)-i)
			break
		}
		for d := 0; d < r.depth; d++ {
			fmt.Print("  ")
		}
		fmt.Printf("%-6d %-10v %-6d %-6v %d\n", r.depth, r.id, r.pop, r.fresh, r.entries)
	}
	fmt.Printf("\nsubscribed nodes: %d of %d (tree coverage %.1f%%)\n",
		len(rows), *nodes, 100*float64(len(rows))/float64(*nodes))
}
