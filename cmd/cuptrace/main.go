// Command cuptrace inspects update propagation after a simulated
// workload through the telemetry subsystem (cup.WithTelemetry): the
// reconstructed cup.Trace span tree of each key — node, parent edge,
// depth, timestamps, and outcome (forwarded / answered-from-cache /
// cut-off / absorbed) — alongside the metrics registry's event totals.
// The paper's Figure 2 made inspectable.
//
//	cuptrace -nodes 64 -rate 5 -duration 600
//	cuptrace -nodes 64 -key key-0        # one key's span tree, depth order
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cup"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 64, "overlay size")
		rate     = flag.Float64("rate", 5, "network query rate λ")
		duration = flag.Float64("duration", 600, "query window (s)")
		seed     = flag.Int64("seed", 1, "random seed")
		keys     = flag.Int("keys", 1, "distinct workload keys")
		key      = flag.String("key", "", "dump one key's span tree in depth order (default: all keys)")
		maxRows  = flag.Int("max", 40, "max span rows to print per key")
	)
	flag.Parse()

	d, err := cup.New(
		cup.WithTransport(cup.Simulated),
		cup.WithTelemetry(""),
		cup.WithNodes(*nodes),
		cup.WithKeys(*keys),
		cup.WithQueryRate(*rate),
		cup.WithQueryDuration(cup.Seconds(*duration)),
		cup.WithSeed(*seed),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuptrace:", err)
		os.Exit(2)
	}
	defer d.Close()

	res, err := d.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuptrace:", err)
		os.Exit(1)
	}

	fmt.Printf("run: %s\n", res.Counters.String())
	fmt.Printf("events:")
	for _, kind := range cup.EventKinds {
		if n, ok := d.MetricValue("cup_events_total",
			cup.MetricLabel{Key: "kind", Value: kind.String()}); ok && n > 0 {
			fmt.Printf(" %s=%g", kind, n)
		}
	}
	fmt.Println()

	traceKeys := d.TraceKeys()
	if *key != "" {
		tr, ok := d.Trace(cup.Key(*key))
		if !ok {
			fmt.Fprintf(os.Stderr, "cuptrace: no trace for key %q (traced: %v)\n", *key, traceKeys)
			os.Exit(1)
		}
		printTrace(d, tr, *maxRows)
		return
	}
	for _, k := range traceKeys {
		if tr, ok := d.Trace(k); ok {
			printTrace(d, tr, *maxRows)
		}
	}
}

// printTrace renders one span tree, already in depth order, indented by
// depth (unknown depths — nodes only ever seen querying — flat at the
// end).
func printTrace(d *cup.Deployment, tr cup.Trace, maxRows int) {
	fmt.Printf("\npropagation tree for %q (authority %v): %d spans, %d cut-offs\n",
		tr.Key, tr.Root, len(tr.Spans), tr.Cutoffs)
	fmt.Printf("%-6s %-10s %-10s %-8s %-8s %-8s %-8s %-8s %-10s %s\n",
		"depth", "node", "parent", "queries", "answers", "pushes", "recv", "cutoffs", "window", "outcome")
	for i, s := range tr.Spans {
		if i >= maxRows {
			fmt.Printf("… %d more spans\n", len(tr.Spans)-i)
			break
		}
		for j := 0; j < s.Depth; j++ {
			fmt.Print("  ")
		}
		parent := "-"
		if s.Depth > 0 {
			parent = fmt.Sprint(s.Parent)
		}
		fmt.Printf("%-6d %-10v %-10s %-8d %-8d %-8d %-8d %-8d %-10s %s\n",
			s.Depth, s.Node, parent, s.Queries, s.Answered, s.Pushes, s.Receives, s.Cutoffs,
			fmt.Sprintf("%.0f-%.0fs", float64(s.First), float64(s.Last)), s.Outcome)
	}
	fmt.Printf("tree coverage: %d of %d nodes (%.1f%%)\n",
		len(tr.Spans), d.Size(), 100*float64(len(tr.Spans))/float64(d.Size()))
}
