// Command cuptrace renders the CUP tree of a key after a simulated
// workload by consuming the deployment's event bus: which nodes
// subscribed (interest bits), their depths, cached entry freshness,
// popularity, and the per-node event traffic (queries issued/answered,
// updates pushed, cut-offs) — the paper's Figure 2 made inspectable.
//
//	cuptrace -nodes 64 -rate 5 -duration 600
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"cup"
)

// tally accumulates per-node and network-wide event counts from the bus.
type tally struct {
	kinds  map[cup.EventKind]int
	byNode map[cup.NodeID]*nodeTally
}

type nodeTally struct {
	issued, answered, pushed, cutoffs int
}

func (t *tally) OnEvent(e cup.Event) {
	t.kinds[e.Kind]++
	nt := t.byNode[e.Node]
	if nt == nil {
		nt = &nodeTally{}
		t.byNode[e.Node] = nt
	}
	switch e.Kind {
	case cup.EvQueryIssued:
		nt.issued++
	case cup.EvQueryAnswered:
		nt.answered++
	case cup.EvUpdatePushed:
		nt.pushed++
	case cup.EvCutoffFired:
		nt.cutoffs++
	}
}

func main() {
	var (
		nodes    = flag.Int("nodes", 64, "overlay size")
		rate     = flag.Float64("rate", 5, "network query rate λ")
		duration = flag.Float64("duration", 600, "query window (s)")
		seed     = flag.Int64("seed", 1, "random seed")
		maxRows  = flag.Int("max", 40, "max tree rows to print")
	)
	flag.Parse()

	tl := &tally{kinds: make(map[cup.EventKind]int), byNode: make(map[cup.NodeID]*nodeTally)}
	d, err := cup.New(
		cup.WithTransport(cup.Simulated),
		cup.WithNodes(*nodes),
		cup.WithQueryRate(*rate),
		cup.WithQueryDuration(cup.Seconds(*duration)),
		cup.WithSeed(*seed),
		cup.WithObserver(tl),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuptrace:", err)
		os.Exit(2)
	}
	defer d.Close()

	res, err := d.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuptrace:", err)
		os.Exit(1)
	}
	k := d.Keys()[0]
	root := d.Authority(k)

	fmt.Printf("CUP tree for %q (authority %v) after %v\n", k, root, d.Now())
	fmt.Printf("run: %s\n", res.Counters.String())
	fmt.Printf("events:")
	for _, kind := range cup.EventKinds {
		if n := tl.kinds[kind]; n > 0 {
			fmt.Printf(" %s=%d", kind, n)
		}
	}
	fmt.Println()
	fmt.Println()

	// Breadth-first walk of the interest tree from the root, annotated
	// with each node's slice of the event stream.
	type row struct {
		id       cup.NodeID
		depth    int
		pop      int
		fresh    bool
		entries  int
		children []cup.NodeID
		ev       nodeTally
	}
	var rows []row
	visited := map[cup.NodeID]bool{root: true}
	frontier := []cup.NodeID{root}
	for depth := 0; len(frontier) > 0; depth++ {
		var next []cup.NodeID
		for _, id := range frontier {
			r := row{id: id, depth: depth}
			if err := d.Inspect(id, func(n *cup.Node) {
				r.pop = n.Popularity(k)
				r.fresh = n.HasFreshAnswer(k)
				r.entries = n.CacheStore().Len() + n.LocalDirectory().Len()
				r.children = n.InterestedNeighbors(k)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "cuptrace:", err)
				os.Exit(1)
			}
			if nt := tl.byNode[id]; nt != nil {
				r.ev = *nt
			}
			rows = append(rows, r)
			for _, child := range r.children {
				if !visited[child] {
					visited[child] = true
					next = append(next, child)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}

	fmt.Printf("%-6s %-10s %-6s %-6s %-8s %-8s %-8s %-8s %s\n",
		"depth", "node", "pop", "fresh", "queries", "answers", "pushes", "cutoffs", "entries")
	for i, r := range rows {
		if i >= *maxRows {
			fmt.Printf("… %d more subscribed nodes\n", len(rows)-i)
			break
		}
		for d := 0; d < r.depth; d++ {
			fmt.Print("  ")
		}
		fmt.Printf("%-6d %-10v %-6d %-6v %-8d %-8d %-8d %-8d %d\n",
			r.depth, r.id, r.pop, r.fresh, r.ev.issued, r.ev.answered, r.ev.pushed, r.ev.cutoffs, r.entries)
	}
	fmt.Printf("\nsubscribed nodes: %d of %d (tree coverage %.1f%%)\n",
		len(rows), *nodes, 100*float64(len(rows))/float64(*nodes))
}
