// Command cupsim runs one CUP (or standard-caching) simulation through
// the unified cup.New deployment API and prints the cost counters the
// paper reports. Examples:
//
//	cupsim -nodes 1024 -rate 1 -policy second-chance
//	cupsim -nodes 1024 -rate 1000 -mode standard
//	cupsim -nodes 1024 -rate 10 -policy always -pushlevel 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cup"
	"cup/internal/overlay"
	"cup/internal/policy"
)

func parsePolicy(name string) (policy.Policy, error) {
	switch {
	case name == "second-chance":
		return policy.SecondChance(), nil
	case name == "always":
		return policy.AlwaysKeep(), nil
	case name == "never":
		return policy.NeverKeep(), nil
	case strings.HasPrefix(name, "linear:"):
		a, err := strconv.ParseFloat(name[len("linear:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("bad linear alpha: %v", err)
		}
		return policy.Linear(a), nil
	case strings.HasPrefix(name, "log:"):
		a, err := strconv.ParseFloat(name[len("log:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("bad log alpha: %v", err)
		}
		return policy.Logarithmic(a), nil
	default:
		return nil, fmt.Errorf("unknown policy %q (second-chance|always|never|linear:A|log:A)", name)
	}
}

func main() {
	var (
		nodes     = flag.Int("nodes", 1024, "overlay size")
		overlayK  = flag.String("overlay", "can", "overlay substrate: "+overlay.KindList())
		keys      = flag.Int("keys", 1, "number of keys")
		zipf      = flag.Float64("zipf", 0, "Zipf skew for key popularity (0 = uniform)")
		replicas  = flag.Int("replicas", 1, "replicas per key")
		lifetime  = flag.Float64("lifetime", 300, "replica lifetime (s)")
		hop       = flag.Float64("hop", 0.1, "per-hop delay (s)")
		rate      = flag.Float64("rate", 1, "network query rate λ (queries/s)")
		duration  = flag.Float64("duration", 3000, "query window length (s)")
		mode      = flag.String("mode", "cup", "protocol: cup|standard")
		polName   = flag.String("policy", "second-chance", "cut-off policy")
		pushLevel = flag.Int("pushlevel", cup.UnlimitedPushLevel, "sender-side push level (-1 = unlimited)")
		naive     = flag.Bool("naive-cutoff", false, "disable the replica-independent cut-off fix")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := []cup.Option{
		cup.WithTransport(cup.Simulated),
		cup.WithNodes(*nodes),
		cup.WithOverlay(*overlayK),
		cup.WithKeys(*keys),
		cup.WithZipf(*zipf),
		cup.WithReplicas(*replicas),
		cup.WithLifetime(cup.Seconds(*lifetime)),
		cup.WithHopDelay(cup.Seconds(*hop)),
		cup.WithQueryRate(*rate),
		cup.WithQueryDuration(cup.Seconds(*duration)),
		cup.WithSeed(*seed),
	}

	cfg := cup.Defaults()
	switch *mode {
	case "cup":
		pol, err := parsePolicy(*polName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cupsim:", err)
			os.Exit(2)
		}
		cfg.Policy = pol
		cfg.PushLevel = *pushLevel
		cfg.ReplicaIndependentCutoff = !*naive
	case "standard":
		cfg = cup.Standard()
	default:
		fmt.Fprintf(os.Stderr, "cupsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	opts = append(opts, cup.WithConfig(cfg))

	d, err := cup.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupsim:", err)
		os.Exit(2)
	}
	defer d.Close()

	res, err := d.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupsim:", err)
		os.Exit(1)
	}

	c := &res.Counters
	fmt.Printf("nodes=%d overlay=%s keys=%d replicas=%d λ=%g mode=%s policy=%s pushlevel=%d seed=%d\n",
		*nodes, *overlayK, *keys, *replicas, *rate, *mode, cfg.Policy.Name(), cfg.PushLevel, *seed)
	fmt.Printf("queries            %d\n", c.Queries)
	fmt.Printf("hits               %d (%.1f%%)\n", c.Hits, 100*float64(c.Hits)/max1(float64(c.Queries)))
	fmt.Printf("misses             %d (first-time %d, freshness %d, coalesced %d)\n",
		c.Misses(), c.FirstTimeMisses, c.FreshnessMisses, c.Coalesced)
	fmt.Printf("miss cost          %d hops (query %d + response %d)\n", c.MissCost(), c.QueryHops, c.ResponseHops)
	fmt.Printf("overhead           %d hops (update %d + clear-bit %d)\n", c.Overhead(), c.UpdateHops, c.ClearBitHops)
	fmt.Printf("total cost         %d hops\n", c.TotalCost())
	fmt.Printf("miss latency       %.2f hops/miss, %.3f s/miss\n", c.MissLatencyHops(), c.MissLatencySeconds())
	fmt.Printf("updates originated %d, dropped %d, expired-in-flight %d\n",
		c.UpdatesOriginated, c.UpdatesDropped, c.ExpiredUpdates)
	fmt.Printf("justified updates  %.1f%% (%d of %d classified)\n",
		100*c.JustifiedFraction(), c.JustifiedUpdates, c.JustifiedUpdates+c.UnjustifiedUpdates)
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
