// Command cupsim runs one CUP (or standard-caching) deployment through
// the unified cup.New API and prints the cost counters the paper
// reports. The -scenario flag picks a workload from the scenario
// registry (traffic generator + fault scripts); -transport replays the
// same scenario on the live goroutine network instead of the
// discrete-event simulator. Examples:
//
//	cupsim -nodes 1024 -rate 1 -policy second-chance
//	cupsim -nodes 1024 -rate 1000 -mode standard
//	cupsim -scenario flashcrowd -nodes 512
//	cupsim -scenario diurnal -transport live -nodes 64 -duration 120 -timescale 40
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cup"
	"cup/internal/overlay"
	"cup/internal/policy"
)

func parsePolicy(name string) (policy.Policy, error) {
	switch {
	case name == "second-chance":
		return policy.SecondChance(), nil
	case name == "always":
		return policy.AlwaysKeep(), nil
	case name == "never":
		return policy.NeverKeep(), nil
	case strings.HasPrefix(name, "linear:"):
		a, err := strconv.ParseFloat(name[len("linear:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("bad linear alpha: %v", err)
		}
		return policy.Linear(a), nil
	case strings.HasPrefix(name, "log:"):
		a, err := strconv.ParseFloat(name[len("log:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("bad log alpha: %v", err)
		}
		return policy.Logarithmic(a), nil
	default:
		return nil, fmt.Errorf("unknown policy %q (second-chance|always|never|linear:A|log:A)", name)
	}
}

func main() {
	var (
		nodes     = flag.Int("nodes", 1024, "overlay size")
		overlayK  = flag.String("overlay", "can", "overlay substrate: "+overlay.KindList())
		keys      = flag.Int("keys", 1, "number of keys")
		zipf      = flag.Float64("zipf", 0, "Zipf skew for key popularity (0 = uniform)")
		replicas  = flag.Int("replicas", 1, "replicas per key")
		lifetime  = flag.Float64("lifetime", 300, "replica lifetime (s)")
		hop       = flag.Float64("hop", 0.1, "per-hop delay (s)")
		rate      = flag.Float64("rate", 1, "network query rate λ (queries/s)")
		duration  = flag.Float64("duration", 3000, "query window length (s)")
		mode      = flag.String("mode", "cup", "protocol: cup|standard")
		polName   = flag.String("policy", "second-chance", "cut-off policy")
		pushLevel = flag.Int("pushlevel", cup.UnlimitedPushLevel, "sender-side push level (-1 = unlimited)")
		naive     = flag.Bool("naive-cutoff", false, "disable the replica-independent cut-off fix")
		seed      = flag.Int64("seed", 1, "random seed")
		scenario  = flag.String("scenario", "", "scenario from the registry: "+strings.Join(cup.ScenarioNames(), "|")+" (empty = paper's Poisson workload)")
		transport = flag.String("transport", "sim", "transport: sim|live|tcp")
		timescale = flag.Float64("timescale", 40, "live transport: virtual scenario seconds replayed per wall-clock second")
		telemetry = flag.String("telemetry", "", "serve /metrics, /trace, /debug/pprof on this address during the run (e.g. :9090)")
	)
	flag.Parse()

	opts := []cup.Option{
		cup.WithNodes(*nodes),
		cup.WithOverlay(*overlayK),
		cup.WithKeys(*keys),
		cup.WithZipf(*zipf),
		cup.WithReplicas(*replicas),
		cup.WithLifetime(cup.Seconds(*lifetime)),
		cup.WithQueryRate(*rate),
		cup.WithQueryDuration(cup.Seconds(*duration)),
		cup.WithSeed(*seed),
	}
	live := false
	switch *transport {
	case "sim", "simulated", "":
		opts = append(opts,
			cup.WithTransport(cup.Simulated),
			cup.WithHopDelay(cup.Seconds(*hop)))
	case "live":
		live = true
		opts = append(opts,
			cup.WithTransport(cup.Live),
			cup.WithTimeScale(*timescale))
		// The sim's 100 ms default hop would crawl in wall-clock time;
		// live keeps its own 1 ms default unless -hop is set explicitly.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "hop" {
				opts = append(opts, cup.WithHopDelay(cup.Seconds(*hop)))
			}
		})
	case "tcp", "live-tcp":
		live = true
		// TCP peers pay real loopback round-trips per hop; -hop does not
		// apply.
		opts = append(opts,
			cup.WithTransport(cup.LiveTCP),
			cup.WithTimeScale(*timescale))
	default:
		fmt.Fprintf(os.Stderr, "cupsim: unknown transport %q (sim|live|tcp)\n", *transport)
		os.Exit(2)
	}
	if *scenario == "" {
		*scenario = "paper"
	}
	sc, err := cup.BuildScenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupsim:", err)
		os.Exit(2)
	}
	opts = append(opts, cup.WithScenario(sc))

	cfg := cup.Defaults()
	switch *mode {
	case "cup":
		pol, err := parsePolicy(*polName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cupsim:", err)
			os.Exit(2)
		}
		cfg.Policy = pol
		cfg.PushLevel = *pushLevel
		cfg.ReplicaIndependentCutoff = !*naive
	case "standard":
		cfg = cup.Standard()
	default:
		fmt.Fprintf(os.Stderr, "cupsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	opts = append(opts, cup.WithConfig(cfg))
	if *telemetry != "" {
		opts = append(opts, cup.WithTelemetry(*telemetry))
	}

	d, err := cup.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupsim:", err)
		os.Exit(2)
	}
	defer d.Close()
	if addr := d.TelemetryAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "cupsim: telemetry on http://%s (metrics, trace, pprof)\n", addr)
	}

	res, err := d.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupsim:", err)
		os.Exit(1)
	}

	c := &res.Counters
	fmt.Printf("scenario=%s transport=%s nodes=%d overlay=%s keys=%d replicas=%d λ=%g mode=%s policy=%s pushlevel=%d seed=%d\n",
		*scenario, *transport, *nodes, *overlayK, *keys, *replicas, *rate, *mode, cfg.Policy.Name(), cfg.PushLevel, *seed)
	if live {
		// The live runtime reports message counts folded into the hop
		// fields; the per-query taxonomy is a simulator-side measurement.
		fmt.Printf("query msgs         %d\n", c.QueryHops)
		fmt.Printf("update msgs        %d\n", c.UpdateHops)
		fmt.Printf("clear-bit msgs     %d\n", c.ClearBitHops)
		fmt.Printf("total msgs         %d\n", c.TotalCost())
		return
	}
	fmt.Printf("queries            %d\n", c.Queries)
	fmt.Printf("hits               %d (%.1f%%)\n", c.Hits, 100*float64(c.Hits)/max1(float64(c.Queries)))
	fmt.Printf("misses             %d (first-time %d, freshness %d, coalesced %d)\n",
		c.Misses(), c.FirstTimeMisses, c.FreshnessMisses, c.Coalesced)
	fmt.Printf("miss cost          %d hops (query %d + response %d)\n", c.MissCost(), c.QueryHops, c.ResponseHops)
	fmt.Printf("overhead           %d hops (update %d + clear-bit %d)\n", c.Overhead(), c.UpdateHops, c.ClearBitHops)
	fmt.Printf("total cost         %d hops\n", c.TotalCost())
	fmt.Printf("miss latency       %.2f hops/miss, %.3f s/miss\n", c.MissLatencyHops(), c.MissLatencySeconds())
	fmt.Printf("updates originated %d, dropped %d, expired-in-flight %d\n",
		c.UpdatesOriginated, c.UpdatesDropped, c.ExpiredUpdates)
	fmt.Printf("justified updates  %.1f%% (%d of %d classified)\n",
		100*c.JustifiedFraction(), c.JustifiedUpdates, c.JustifiedUpdates+c.UnjustifiedUpdates)
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
