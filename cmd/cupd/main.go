// Command cupd boots a live CUP deployment behind the HTTP serving
// layer: a dumb update-propagation cache server in the justcache sense,
// where the smart clients (package cup/client, command cupload) carry
// the placement and population logic. Every -addr listener serves the
// /v1 key API alongside /metrics, /trace, and /debug/pprof on the same
// port; several listeners on one process stand in for a small server
// fleet so rendezvous-hashing clients have a host set to rank.
//
// A GET miss enters CUP's query path at the key's deterministic entry
// node, so the protocol's query coalescing absorbs miss storms; PUT,
// DELETE, and promise grants draw from the admission token bucket
// (-admit-rate). The process runs until -duration elapses or SIGINT /
// SIGTERM arrives.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cup"
	"cup/internal/overlay"
	"cup/internal/serve"
)

func main() {
	var (
		addrFlag  = flag.String("addr", "127.0.0.1:8080", "comma-separated listen addresses (:0 picks free ports); each serves /v1, /metrics, /trace, /debug/pprof")
		nodes     = flag.Int("nodes", 64, "number of goroutine peers")
		overlayK  = flag.String("overlay", "can", "overlay substrate: "+overlay.KindList())
		hop       = flag.Duration("hop", time.Millisecond, "per-hop delay")
		seed      = flag.Int64("seed", 1, "random seed")
		inbox     = flag.Int("inbox", 0, "per-peer inbox depth (0 = default)")
		keys      = flag.Int("keys", 0, "preload this many keys before serving")
		replicas  = flag.Int("replicas", 2, "replicas per preloaded key")
		ttl       = flag.Duration("ttl", time.Hour, "preloaded replica lifetime")
		admitRate = flag.Float64("admit-rate", 0, "write-path admission tokens/s (0 = default, negative disables)")
		duration  = flag.Duration("duration", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	)
	flag.Parse()

	addrs := serve.SplitAddrs(*addrFlag)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "cupd: -addr needs at least one listen address")
		os.Exit(2)
	}
	opts := []cup.Option{
		cup.WithLive(),
		cup.WithNodes(*nodes),
		cup.WithOverlay(*overlayK),
		cup.WithHopDelay(*hop),
		cup.WithSeed(*seed),
		cup.WithServing(addrs...),
		// Telemetry with an empty addr: collect event counters and traces
		// without a dedicated listener — the serving addresses already
		// expose /metrics and /trace.
		cup.WithTelemetry(""),
	}
	if *inbox > 0 {
		opts = append(opts, cup.WithInboxDepth(*inbox))
	}
	if *admitRate != 0 {
		opts = append(opts, cup.WithAdmitRate(*admitRate, 0))
	}
	d, err := cup.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupd:", err)
		os.Exit(2)
	}
	defer d.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	for i := 0; i < *keys; i++ {
		key := cup.Key(fmt.Sprintf("key-%d", i))
		for r := 0; r < *replicas; r++ {
			addr := fmt.Sprintf("203.0.113.%d", (i**replicas+r)%250+1)
			if err := d.Publish(ctx, key, r, addr, *ttl); err != nil {
				fmt.Fprintln(os.Stderr, "cupd: preload:", err)
				os.Exit(1)
			}
		}
	}
	if *keys > 0 {
		fmt.Printf("preloaded %d keys × %d replicas (ttl %v)\n", *keys, *replicas, *ttl)
	}

	for _, a := range d.ServingAddrs() {
		fmt.Printf("serving on http://%s (/v1/key, /metrics, /trace, /debug/pprof)\n", a)
	}

	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	<-ctx.Done()
	fmt.Println("cupd: shutting down")
}
