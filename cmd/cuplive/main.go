// Command cuplive runs an interactive-scale live CUP network (goroutine
// per peer) through the unified cup.New deployment API and exercises it
// with a random lookup workload, printing a short report. It demonstrates
// that the protocol driven by the discrete-event experiments also runs as
// a real concurrent system. With -telemetry the deployment serves
// Prometheus /metrics, JSON /trace/{key}, and /debug/pprof while it
// runs; -serve keeps the process alive after the workload so the
// endpoints can be scraped (CI's telemetry smoke job relies on this).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"cup"
	"cup/internal/overlay"
	internalserve "cup/internal/serve"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 128, "number of goroutine peers")
		overlayK  = flag.String("overlay", "can", "overlay substrate: "+overlay.KindList())
		keys      = flag.Int("keys", 4, "distinct keys")
		replicas  = flag.Int("replicas", 2, "replicas per key")
		lookups   = flag.Int("lookups", 500, "lookups to issue")
		hop       = flag.Duration("hop", time.Millisecond, "per-hop delay")
		seed      = flag.Int64("seed", 1, "random seed")
		telemetry = flag.String("telemetry", "", "serve /metrics, /trace, /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		serving   = flag.String("serving", "", "comma-separated addresses for the HTTP /v1 key API (shares listeners with -telemetry on matching addresses)")
		serve     = flag.Duration("serve", 0, "keep serving telemetry this long after the workload (0 = exit immediately)")
	)
	flag.Parse()

	opts := []cup.Option{
		cup.WithTransport(cup.Live),
		cup.WithNodes(*nodes),
		cup.WithOverlay(*overlayK),
		cup.WithHopDelay(*hop),
		cup.WithSeed(*seed),
	}
	if *telemetry != "" {
		opts = append(opts, cup.WithTelemetry(*telemetry))
	}
	if addrs := internalserve.SplitAddrs(*serving); len(addrs) > 0 {
		opts = append(opts, cup.WithServing(addrs...))
	}
	d, err := cup.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cuplive:", err)
		os.Exit(2)
	}
	defer d.Close()
	if addr := d.TelemetryAddr(); addr != "" {
		fmt.Printf("telemetry on http://%s (metrics, trace, pprof)\n", addr)
	}
	for _, a := range d.ServingAddrs() {
		fmt.Printf("serving /v1 key API on http://%s\n", a)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	keyNames := make([]cup.Key, *keys)
	for i := range keyNames {
		keyNames[i] = cup.Key(fmt.Sprintf("content-%d", i))
		for r := 0; r < *replicas; r++ {
			addr := fmt.Sprintf("203.0.113.%d", (i**replicas+r)%250+1)
			if err := d.Publish(ctx, keyNames[i], r, addr, time.Hour); err != nil {
				fmt.Fprintln(os.Stderr, "cuplive: publish:", err)
				os.Exit(1)
			}
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	var worst time.Duration
	for i := 0; i < *lookups; i++ {
		peer := cup.NodeID(rng.Intn(*nodes))
		key := keyNames[rng.Intn(len(keyNames))]
		t0 := time.Now()
		entries, err := d.LookupAt(ctx, peer, key)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cuplive: lookup:", err)
			os.Exit(1)
		}
		if len(entries) == 0 {
			fmt.Fprintf(os.Stderr, "cuplive: empty answer for %q at %v\n", key, peer)
			os.Exit(1)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	elapsed := time.Since(start)
	c := d.Counters()
	fmt.Printf("%d lookups on %d peers in %v (worst %v)\n",
		*lookups, *nodes, elapsed.Round(time.Millisecond), worst.Round(time.Microsecond))
	fmt.Printf("traffic: %d query msgs, %d update msgs, %d clear-bits\n",
		c.QueryHops, c.UpdateHops, c.ClearBitHops)
	fmt.Printf("amortized: %.2f query msgs per lookup (CUP caches absorbed the rest)\n",
		float64(c.QueryHops)/float64(*lookups))

	if *serve > 0 && d.TelemetryAddr() != "" {
		fmt.Printf("serving telemetry for %v…\n", *serve)
		time.Sleep(*serve)
	}
}
