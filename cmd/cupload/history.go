// Bench history: -history appends the run's servingBench row to
// BENCH_history.jsonl, stamped with the git commit, mirroring
// cupbench's core rows so the serving-layer perf trajectory lives in
// the same append-only log.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// historyRow is one line of BENCH_history.jsonl: the serving payload
// plus provenance (commit, timestamp). The "serving" key keeps the rows
// distinguishable from cupbench's "core" rows when grepping the log.
type historyRow struct {
	Commit  string       `json:"commit"`
	Time    time.Time    `json:"time"`
	Serving servingBench `json:"serving"`
}

// gitSHA resolves the commit to stamp: GITHUB_SHA in CI, a local
// `git rev-parse` otherwise, "unknown" when neither is available.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendHistory appends one JSONL row to the history file.
func appendHistory(bench servingBench, historyPath string, now time.Time) error {
	row, err := json.Marshal(historyRow{Commit: gitSHA(), Time: now.UTC(), Serving: bench})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(historyPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(row, '\n')); err != nil {
		return err
	}
	fmt.Printf("appended serving row for %s to %s\n", gitSHA(), historyPath)
	return nil
}
