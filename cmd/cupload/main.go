// Command cupload is the serving layer's open-loop load generator: it
// drives the smart client (package cup/client) against a cupd host set
// at a fixed offered rate, wrk-style, and reports throughput plus
// coordinated-omission-free latency percentiles.
//
// Open loop means arrivals are scheduled on a fixed timetable — arrival
// i fires at start + i/rate whether or not earlier requests finished —
// and each request's latency is measured from its *scheduled* arrival,
// so server-side stalls show up as queueing delay instead of silently
// thinning the offered load (the coordinated-omission trap in
// closed-loop generators). Worker w owns arrivals i ≡ w (mod workers),
// so no cross-worker coordination exists on the hot path.
//
// The workload mixes warm reads (Get against a preloaded keyspace) with
// cold miss-population rounds (GetOrFill against a never-preloaded
// keyspace, exercising the promise protocol end to end). -json writes
// the run's summary to BENCH_serving.json; -history appends a
// commit-stamped row to BENCH_history.jsonl alongside the core-bench
// rows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cup/client"
	"cup/internal/metrics"
	"cup/internal/serve"
)

// servingBench is the committed BENCH_serving.json payload.
type servingBench struct {
	Hosts       int     `json:"hosts"`
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int     `json:"requests"`
	Errors      uint64  `json:"errors"`
	DurationS   float64 `json:"duration_s"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Promises    uint64  `json:"promises"`
	Busy        uint64  `json:"busy"`
	WriteBacks  uint64  `json:"write_backs"`
}

func main() {
	var (
		hostsFlag = flag.String("hosts", "", "comma-separated cupd addresses (required)")
		rate      = flag.Float64("rate", 20000, "offered request rate (req/s, open loop)")
		duration  = flag.Duration("duration", 5*time.Second, "load duration")
		workers   = flag.Int("workers", 0, "concurrent workers (0 = 4×GOMAXPROCS)")
		fanout    = flag.Int("fanout", 0, "rendezvous fanout (0 = default)")
		keys      = flag.Int("keys", 256, "warm keyspace size (preloaded via Put)")
		coldKeys  = flag.Int("cold-keys", 16, "cold keyspace size (populated via GetOrFill)")
		coldFrac  = flag.Float64("cold", 0.002, "fraction of requests aimed at the cold keyspace")
		ttl       = flag.Duration("ttl", 5*time.Minute, "entry TTL for preloads and fills")
		seed      = flag.Int64("seed", 1, "workload seed")
		jsonPath  = flag.String("json", "", "write the run summary to this JSON file")
		histPath  = flag.String("history", "", "append a commit-stamped row to this JSONL history file")
	)
	flag.Parse()

	hosts := serve.SplitAddrs(*hostsFlag)
	if len(hosts) == 0 {
		fmt.Fprintln(os.Stderr, "cupload: -hosts is required")
		os.Exit(2)
	}
	if *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "cupload: -rate and -duration must be positive")
		os.Exit(2)
	}
	w := *workers
	if w <= 0 {
		w = 4 * runtime.GOMAXPROCS(0)
	}

	c, err := client.New(client.Config{Hosts: hosts, Fanout: *fanout, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cupload:", err)
		os.Exit(2)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *duration+2*time.Minute)
	defer cancel()

	// Preload the warm keyspace so the steady-state mix measures serving,
	// not cold-start population.
	for i := 0; i < *keys; i++ {
		e := client.Entry{Replica: 0, Addr: fmt.Sprintf("198.51.100.%d", i%250+1), TTL: ttl.Seconds()}
		if err := c.Put(ctx, warmKey(i), e, 0); err != nil {
			fmt.Fprintf(os.Stderr, "cupload: preload %s: %v\n", warmKey(i), err)
			os.Exit(1)
		}
	}

	total := int(*rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / *rate)

	// Per-worker latency slices merge after the run; nothing is shared on
	// the hot path but the client itself.
	lats := make([][]time.Duration, w)
	errCounts := make([]uint64, w)
	var wg sync.WaitGroup
	start := time.Now().Add(50 * time.Millisecond) // headroom so arrival 0 is not already late
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(wi)*7919))
			mine := make([]time.Duration, 0, total/w+1)
			for i := wi; i < total; i += w {
				scheduled := start.Add(time.Duration(i) * interval)
				if d := time.Until(scheduled); d > 0 {
					time.Sleep(d)
				}
				var err error
				if *coldFrac > 0 && rng.Float64() < *coldFrac {
					key := fmt.Sprintf("cold-%d", rng.Intn(*coldKeys))
					_, err = c.GetOrFill(ctx, key, func(context.Context) (client.Entry, time.Duration, error) {
						return client.Entry{Replica: 0, Addr: "origin.invalid", TTL: ttl.Seconds()}, *ttl, nil
					})
				} else {
					_, err = c.Get(ctx, warmKey(rng.Intn(*keys)))
				}
				if err != nil {
					errCounts[wi]++
				}
				// Latency from the scheduled arrival, not the send: queueing
				// behind a stalled server is the number that matters.
				mine = append(mine, time.Since(scheduled))
			}
			lats[wi] = mine
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var errs uint64
	for _, e := range errCounts {
		errs += e
	}
	st := c.Stats()
	bench := servingBench{
		Hosts:       len(hosts),
		Workers:     w,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		OfferedRPS:  *rate,
		AchievedRPS: float64(len(all)) / elapsed.Seconds(),
		Requests:    len(all),
		Errors:      errs,
		DurationS:   elapsed.Seconds(),
		P50Ms:       ms(metrics.Percentile(all, 0.50)),
		P95Ms:       ms(metrics.Percentile(all, 0.95)),
		P99Ms:       ms(metrics.Percentile(all, 0.99)),
		MaxMs:       ms(all[len(all)-1]),
		Hits:        st.Hits,
		Misses:      st.Misses,
		Promises:    st.Promises,
		Busy:        st.Busy,
		WriteBacks:  st.WriteBacks,
	}

	fmt.Printf("%d requests over %d hosts in %.2fs: offered %.0f req/s, achieved %.0f req/s, %d errors\n",
		bench.Requests, bench.Hosts, bench.DurationS, bench.OfferedRPS, bench.AchievedRPS, bench.Errors)
	fmt.Printf("latency from scheduled arrival: p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		bench.P50Ms, bench.P95Ms, bench.P99Ms, bench.MaxMs)
	fmt.Printf("client: %d hits, %d misses, %d promise grants, %d busy rounds, %d write-backs\n",
		st.Hits, st.Misses, st.Promises, st.Busy, st.WriteBacks)

	if *jsonPath != "" {
		raw, err := json.MarshalIndent(bench, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cupload: write json:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonPath)
	}
	if *histPath != "" {
		if err := appendHistory(bench, *histPath, time.Now()); err != nil {
			fmt.Fprintln(os.Stderr, "cupload:", err)
			os.Exit(1)
		}
	}
}

func warmKey(i int) string { return fmt.Sprintf("warm-%d", i) }

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
