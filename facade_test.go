// Integration tests of the public façade: the API a downstream user
// imports must run end to end without reaching into internal packages.
package cup_test

import (
	"testing"

	"cup"
)

func TestFacadeRun(t *testing.T) {
	res := cup.Run(cup.Params{Nodes: 32, QueryRate: 2, QueryDuration: 300, Seed: 1})
	if res.Counters.Queries == 0 {
		t.Fatal("façade run produced no queries")
	}
	if res.Counters.TotalCost() != res.Counters.MissCost()+res.Counters.Overhead() {
		t.Fatal("cost identity broken through façade")
	}
}

func TestFacadeStandardVsDefaults(t *testing.T) {
	p := cup.Params{Nodes: 64, QueryRate: 5, QueryDuration: 600, Seed: 2}
	p.Config = cup.Standard()
	std := cup.Run(p)
	p.Config = cup.Defaults()
	c := cup.Run(p)
	if std.Counters.Overhead() != 0 {
		t.Fatal("standard caching must have zero overhead")
	}
	if c.Counters.MissCost() >= std.Counters.MissCost() {
		t.Fatalf("CUP miss cost %d not below standard %d",
			c.Counters.MissCost(), std.Counters.MissCost())
	}
}

func TestFacadeSimulationHooks(t *testing.T) {
	fired := false
	s := cup.NewSimulation(cup.Params{
		Nodes: 16, QueryRate: 1, QueryDuration: 120, Seed: 3,
		Hooks: []cup.Hook{{At: 350, Fn: func(*cup.Simulation) { fired = true }}},
	})
	s.Run()
	if !fired {
		t.Fatal("hook never fired")
	}
}

func TestFacadeConstants(t *testing.T) {
	// The update taxonomy must survive re-export with stable ordering.
	if cup.FirstTime.Priority() >= cup.Delete.Priority() ||
		cup.Delete.Priority() >= cup.Refresh.Priority() ||
		cup.Refresh.Priority() >= cup.Append.Priority() {
		t.Fatal("update priority ordering broken")
	}
	if cup.UnlimitedPushLevel >= 0 {
		t.Fatal("UnlimitedPushLevel must be negative")
	}
	if cup.Defaults().Mode != cup.ModeCUP || cup.Standard().Mode != cup.ModeStandard {
		t.Fatal("mode constants wired wrong")
	}
}

func TestFacadeLimiter(t *testing.T) {
	l := cup.NewLimiter()
	l.Enqueue(1, cup.Update{Key: "k", Type: cup.Refresh, Expires: 100})
	out := l.Drain(0, -1)
	if len(out) != 1 || out[0].U.Key != "k" {
		t.Fatalf("limiter through façade: %+v", out)
	}
}
