// Telemetry acceptance tests: the collector's counters, the tracer's
// span trees, and the HTTP serving surface, exercised through the public
// WithTelemetry option on both transports.
package cup_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cup"
)

// A flash-crowd run long enough for replica refreshes to travel the
// interest trees and for uninterested leaves to cut themselves off.
func flashCrowdWithTelemetry(t *testing.T) (*cup.Deployment, *cup.Result) {
	t.Helper()
	sc, err := cup.BuildScenario("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	d, err := cup.New(
		cup.WithTelemetry(""),
		cup.WithScenario(sc),
		cup.WithNodes(128),
		cup.WithSeed(11),
		cup.WithQueryRate(20),
		cup.WithQueryWindow(cup.Seconds(300), cup.Seconds(900)),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

// The acceptance pin: a flash-crowd sim's cup.Trace span trees must
// report exactly the cut-offs the metrics collector counted from the
// same event stream — the trace is a faithful decomposition, not a
// parallel estimate.
func TestFlashCrowdTraceCutoffsMatchCounter(t *testing.T) {
	d, _ := flashCrowdWithTelemetry(t)

	counted, ok := d.MetricValue("cup_cutoffs_total")
	if !ok {
		t.Fatal("cup_cutoffs_total not registered")
	}
	if counted == 0 {
		t.Fatal("flash-crowd run fired no cut-offs; the scenario no longer exercises §2.7")
	}

	traced := 0.0
	cutoffSpans := 0
	for _, k := range d.TraceKeys() {
		tr, ok := d.Trace(k)
		if !ok {
			t.Fatalf("TraceKeys lists %q but Trace reports no data", k)
		}
		traced += float64(tr.Cutoffs)
		for _, s := range tr.Spans {
			if s.Cutoffs > 0 {
				if s.Outcome != "cut-off" {
					t.Errorf("span %v fired %d cut-offs but outcome = %q", s.Node, s.Cutoffs, s.Outcome)
				}
				cutoffSpans++
			}
		}
	}
	if traced != counted {
		t.Errorf("trace cut-offs = %g, counter = %g (must match exactly)", traced, counted)
	}
	if cutoffSpans == 0 {
		t.Error("no span carries the cut-off outcome despite a non-zero counter")
	}
}

// Every propagation tree must have a root at depth 0 (the authority) and
// parent edges consistent with depths.
func TestFlashCrowdTraceTreeShape(t *testing.T) {
	d, _ := flashCrowdWithTelemetry(t)
	for _, k := range d.TraceKeys() {
		tr, _ := d.Trace(k)
		if tr.Root != d.Authority(k) {
			t.Errorf("key %q: trace root %v, authority %v", k, tr.Root, d.Authority(k))
		}
		depth := map[cup.NodeID]int{}
		for _, s := range tr.Spans {
			depth[s.Node] = s.Depth
		}
		last := -2
		for _, s := range tr.Spans {
			// Spans arrive depth-ordered, unknown (-1) depths last.
			d := s.Depth
			if d < 0 {
				d = 1 << 20
			}
			if d < last {
				t.Errorf("key %q: spans out of depth order at node %v", k, s.Node)
			}
			last = d
			if s.Depth > 0 {
				pd, ok := depth[s.Parent]
				if !ok || pd != s.Depth-1 {
					t.Errorf("key %q: node %v at depth %d has parent %v at depth %d",
						k, s.Node, s.Depth, s.Parent, pd)
				}
			}
		}
	}
}

// The collector's "local" coalescing series mirrors the driver's
// Coalesced counter exactly: both count queries absorbed by an
// already-pending PFU flag at the issuing node.
func TestCoalescedMetricMatchesCounters(t *testing.T) {
	d, res := flashCrowdWithTelemetry(t)
	local, ok := d.MetricValue("cup_queries_coalesced_total",
		cup.MetricLabel{Key: "source", Value: "local"})
	if !ok {
		t.Fatal("cup_queries_coalesced_total{source=local} not registered")
	}
	if local != float64(res.Counters.Coalesced) {
		t.Errorf("metric reports %g locally coalesced queries, counters %d",
			local, res.Counters.Coalesced)
	}
	if local == 0 {
		t.Error("flash crowd coalesced nothing; the herd is not herding")
	}
}

// Answer-latency observations must cover every answered query, and the
// histogram sum must stay consistent with the per-event latencies.
func TestQueryLatencyHistogramPopulated(t *testing.T) {
	d, _ := flashCrowdWithTelemetry(t)
	answered, _ := d.MetricValue("cup_events_total",
		cup.MetricLabel{Key: "kind", Value: "query-answered"})
	samples, ok := d.MetricValue("cup_query_latency_seconds")
	if !ok {
		t.Fatal("cup_query_latency_seconds not registered")
	}
	if samples != answered || samples == 0 {
		t.Errorf("latency histogram holds %g samples, %g queries answered", samples, answered)
	}
	var sum float64
	for _, m := range d.Metrics() {
		if m.Name == "cup_query_latency_seconds" {
			sum = m.Sum
		}
	}
	if sum <= 0 {
		t.Errorf("latency sum = %g; misses should have accumulated positive latency", sum)
	}
}

// A live deployment with WithTelemetry serves Prometheus /metrics with
// non-zero core series, the JSON trace endpoints, and /debug/pprof.
func TestLiveTelemetryServesMetricsAndPprof(t *testing.T) {
	d, err := cup.New(
		cup.WithLive(),
		cup.WithTelemetry("127.0.0.1:0"),
		cup.WithNodes(16),
		cup.WithSeed(3),
		cup.WithHopDelay(500*time.Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	addr := d.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty with a served WithTelemetry")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Publish(ctx, "svc", 0, "198.51.100.1", time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.LookupAt(ctx, cup.NodeID(i), "svc"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Settle(ctx); err != nil {
		t.Fatal(err)
	}

	cl := &http.Client{Timeout: 20 * time.Second}
	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := fetch("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, series := range []string{
		`cup_events_total{kind="query-issued"} 4`,
		`cup_events_total{kind="query-answered"} 4`,
		`cup_info{transport="live"`,
		"cup_nodes 16",
		"cup_live_port_budget",
		"cup_live_inbox_capacity",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q:\n%s", series, body)
		}
	}

	code, body = fetch("/trace/svc")
	if code != http.StatusOK || !strings.Contains(body, `"spans"`) {
		t.Errorf("/trace/svc: HTTP %d body %q", code, body)
	}

	// A short CPU profile proves the pprof surface is wired end to end.
	code, body = fetch("/debug/pprof/profile?seconds=1")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/profile: HTTP %d, %d bytes", code, len(body))
	}
}

// Without WithTelemetry the accessors degrade gracefully instead of
// wiring collectors every deployment does not need.
func TestTelemetryAccessorsWithoutOption(t *testing.T) {
	d, err := cup.New(cup.WithNodes(8), cup.WithoutWorkload())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if m := d.Metrics(); m != nil {
		t.Errorf("Metrics without telemetry = %v, want nil", m)
	}
	if _, ok := d.MetricValue("cup_cutoffs_total"); ok {
		t.Error("MetricValue must report false without telemetry")
	}
	if _, ok := d.Trace("k"); ok {
		t.Error("Trace must report false without telemetry")
	}
	if addr := d.TelemetryAddr(); addr != "" {
		t.Errorf("TelemetryAddr = %q without a server", addr)
	}
}

// Simulated runs stay deterministic with the collector attached: two
// identical deployments must produce identical metric snapshots.
func TestTelemetryDeterministicAcrossRuns(t *testing.T) {
	snap := func() string {
		d, res := flashCrowdWithTelemetry(t)
		var b strings.Builder
		for _, m := range d.Metrics() {
			// Occupancy gauges are scrape-time reads; everything else in a
			// settled sim must be identical.
			fmt.Fprintf(&b, "%s%v=%g/%d\n", m.Name, m.Labels, m.Value, m.Count)
		}
		fmt.Fprintf(&b, "counters=%+v\n", res.Counters)
		return b.String()
	}
	if a, b := snap(), snap(); a != b {
		t.Errorf("telemetry snapshots diverged across identical runs:\n--- a\n%s--- b\n%s", a, b)
	}
}
