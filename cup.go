// Package cup is the public façade of this repository: a complete Go
// implementation of CUP — Controlled Update Propagation in Peer-to-Peer
// Networks (Roussopoulos & Baker) — together with the substrates its
// evaluation needs: a discrete-event simulator, three structured overlays
// (a 2-D CAN, a Chord ring, and a Kademlia XOR-metric table) behind a
// pluggable registry, a TTL index-entry cache, incentive-based cut-off
// policies, the standard-caching baseline, workload/fault generators, and
// a live goroutine-per-node runtime.
//
// # One construction path
//
// New builds a Deployment on either transport from the same functional
// options; everything defaults to the paper's parameters:
//
//	d, err := cup.New(
//	        cup.WithTransport(cup.Live),        // or cup.Simulated (default)
//	        cup.WithOverlay("kademlia"),
//	        cup.WithNodes(256),
//	        cup.WithSeed(7),
//	)
//	defer d.Close()
//
// A Deployment exposes one application-facing client API regardless of
// transport — Lookup/LookupAt, Publish/Unpublish, Subscribe/Events — and
// one event stream (Event, Observer): query issued/answered, update
// pushed, cut-off fired, node joined/left, emitted by the protocol core
// itself so simulated and live runs are observable, and comparable,
// through the same surface.
//
// The paper's evaluation drives the simulated transport's scripted
// workload via Run:
//
//	d, err := cup.New(cup.WithQueryRate(10))
//	res, err := d.Run(ctx)
//
// Sweeps are first-class: WithTrials(n) turns Run into an n-trial sweep
// — fresh simulation per trial, seeds derived from the run seed — that
// executes on a worker pool (WithParallelism caps it) and merges the
// counters in trial order, so the Result is bit-identical at any
// parallelism. internal/experiment regenerates every figure and table
// of §3 on the same engine.
//
// # Scenarios
//
// Workloads are first-class and composable: a Traffic generates the
// client query stream (PoissonTraffic is the paper's §3.2 default;
// FlashCrowd, DiurnalWave, ZipfDrift, and ClosedLoop model other
// shapes), a Fault scripts interventions (CapacityFault, NodeChurn,
// ReplicaChurn) against the transport-agnostic FaultSurface, and a
// Scenario bundles the two. Install with WithTraffic / WithFaults /
// WithScenario; both transports consume them identically, the live one
// replaying the schedule in wall-clock time under WithTimeScale. The
// scenario registry (RegisterScenario, BuildScenario, ScenarioNames)
// backs the cupsim and cupbench -scenario flags.
//
// # Compatibility
//
// Run(Params) and NewSimulation(Params) remain as thin wrappers over the
// discrete-event driver for existing callers; live.NewNetwork likewise
// still exists underneath WithTransport(Live). New code should use New.
//
// The protocol core is a pure state machine (Node); both transports drive
// the same code, so simulation results transfer to the live runtime.
package cup

import (
	"cup/internal/cache"
	internal "cup/internal/cup"
	"cup/internal/metrics"
	"cup/internal/overlay"
)

// Re-exported protocol types. See cup/internal/cup for full documentation.
type (
	// NodeID identifies a peer in the overlay.
	NodeID = overlay.NodeID
	// Key names a content item in the overlay key space.
	Key = overlay.Key
	// Entry is one index entry: a key served by a replica until expiry.
	Entry = cache.Entry
	// Node is the CUP protocol state machine for one peer.
	Node = internal.Node
	// Config parameterizes a node (mode, policy, push level, cut-off).
	Config = internal.Config
	// Update is one update-channel message.
	Update = internal.Update
	// UpdateType classifies updates (first-time, delete, refresh, append).
	UpdateType = internal.UpdateType
	// Action is a side effect emitted by the state machine.
	Action = internal.Action
	// Params configures a discrete-event simulation run (compatibility
	// surface; New's options build it internally).
	Params = internal.Params
	// Result is a finished run's parameters and counters.
	Result = internal.Result
	// Simulation is a wired discrete-event CUP deployment.
	Simulation = internal.Simulation
	// Hook is a timed intervention into a running simulation.
	Hook = internal.Hook
	// Counters aggregates the paper's cost metrics for one run.
	Counters = metrics.Counters
	// Limiter is the §2.8 outgoing-update queue controller.
	Limiter = internal.Limiter
	// RefreshPolicy configures §3.6 authority-side refresh handling.
	RefreshPolicy = internal.RefreshPolicy
	// LatencyModel yields per-link one-way latencies (internal/netmodel).
	LatencyModel = internal.LatencyModel
	// Event is one observation from a running deployment.
	Event = internal.Event
	// EventKind classifies deployment events.
	EventKind = internal.EventKind
	// Observer receives deployment events.
	Observer = internal.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = internal.ObserverFunc
)

// Update type constants (§2.4).
const (
	FirstTime = internal.FirstTime
	Delete    = internal.Delete
	Refresh   = internal.Refresh
	Append    = internal.Append
)

// Protocol modes.
const (
	ModeCUP      = internal.ModeCUP
	ModeStandard = internal.ModeStandard
)

// Event kinds carried by the deployment event bus.
const (
	EvQueryIssued    = internal.EvQueryIssued
	EvQueryAnswered  = internal.EvQueryAnswered
	EvUpdatePushed   = internal.EvUpdatePushed
	EvCutoffFired    = internal.EvCutoffFired
	EvNodeJoined     = internal.EvNodeJoined
	EvNodeLeft       = internal.EvNodeLeft
	EvQueryCoalesced = internal.EvQueryCoalesced
)

// EventKinds lists every event kind in declaration order.
var EventKinds = internal.EventKinds

// UnlimitedPushLevel disables the sender-side push-level cap.
const UnlimitedPushLevel = internal.UnlimitedPushLevel

// Defaults returns the paper's headline CUP configuration (second-chance
// cut-off, unlimited push level, replica-independent cut-off).
func Defaults() Config { return internal.Defaults() }

// Standard returns the expiration-based standard-caching baseline.
func Standard() Config { return internal.Standard() }

// Run builds and executes one simulation (compatibility wrapper; New +
// Deployment.Run is the primary path).
func Run(p Params) *Result { return internal.Run(p) }

// NewLimiter returns an empty §2.8 outgoing-update queue controller.
func NewLimiter() *Limiter { return internal.NewLimiter() }

// NewSimulation builds a simulation for manual driving (fault injection,
// custom scheduling) before Run (compatibility wrapper).
func NewSimulation(p Params) *Simulation { return internal.NewSimulation(p) }

// ChurnCapable reports whether the named overlay kind supports §2.9
// membership changes.
func ChurnCapable(kind string) bool { return internal.ChurnCapable(kind) }
