// Package cup is the public façade of this repository: a complete Go
// implementation of CUP — Controlled Update Propagation in Peer-to-Peer
// Networks (Roussopoulos & Baker) — together with the substrates its
// evaluation needs: a discrete-event simulator, three structured overlays
// (a 2-D CAN, a Chord ring, and a Kademlia XOR-metric table) behind a
// pluggable registry keyed by Params.OverlayKind, a TTL index-entry
// cache, incentive-based cut-off policies, the standard-caching baseline,
// workload/fault generators, and a live goroutine-per-node runtime.
//
// Three entry points cover most uses:
//
//   - Run / NewSimulation: deterministic discrete-event experiments (the
//     paper's evaluation; see internal/experiment and cmd/cupbench).
//   - live.NewNetwork (cup/internal/live): CUP as a real concurrent
//     system, one goroutine per peer, for applications and demos.
//   - policy.*: the cut-off policies of §3.4, pluggable per node.
//
// The protocol core is a pure state machine (Node); both transports drive
// the same code, so simulation results transfer to the live runtime.
package cup

import (
	internal "cup/internal/cup"
	"cup/internal/metrics"
)

// Re-exported protocol types. See cup/internal/cup for full documentation.
type (
	// Node is the CUP protocol state machine for one peer.
	Node = internal.Node
	// Config parameterizes a node (mode, policy, push level, cut-off).
	Config = internal.Config
	// Update is one update-channel message.
	Update = internal.Update
	// UpdateType classifies updates (first-time, delete, refresh, append).
	UpdateType = internal.UpdateType
	// Action is a side effect emitted by the state machine.
	Action = internal.Action
	// Params configures a discrete-event simulation run.
	Params = internal.Params
	// Result is a finished run's parameters and counters.
	Result = internal.Result
	// Simulation is a wired discrete-event CUP deployment.
	Simulation = internal.Simulation
	// Hook is a timed intervention into a running simulation.
	Hook = internal.Hook
	// Counters aggregates the paper's cost metrics for one run.
	Counters = metrics.Counters
	// Limiter is the §2.8 outgoing-update queue controller.
	Limiter = internal.Limiter
)

// Update type constants (§2.4).
const (
	FirstTime = internal.FirstTime
	Delete    = internal.Delete
	Refresh   = internal.Refresh
	Append    = internal.Append
)

// Protocol modes.
const (
	ModeCUP      = internal.ModeCUP
	ModeStandard = internal.ModeStandard
)

// UnlimitedPushLevel disables the sender-side push-level cap.
const UnlimitedPushLevel = internal.UnlimitedPushLevel

// Defaults returns the paper's headline CUP configuration (second-chance
// cut-off, unlimited push level, replica-independent cut-off).
func Defaults() Config { return internal.Defaults() }

// Standard returns the expiration-based standard-caching baseline.
func Standard() Config { return internal.Standard() }

// Run builds and executes one simulation.
func Run(p Params) *Result { return internal.Run(p) }

// NewLimiter returns an empty §2.8 outgoing-update queue controller.
func NewLimiter() *Limiter { return internal.NewLimiter() }

// NewSimulation builds a simulation for manual driving (fault injection,
// custom scheduling) before Run.
func NewSimulation(p Params) *Simulation { return internal.NewSimulation(p) }
