package cup

import (
	"time"

	internal "cup/internal/cup"
	"cup/internal/policy"
	"cup/internal/sim"
)

// Transport selects the substrate that executes a Deployment: the
// discrete-event simulator (virtual time, deterministic, single-threaded)
// or the live goroutine-per-peer network (wall-clock time, concurrent).
// Both run the identical protocol state machine and emit the identical
// event stream.
type Transport int

const (
	// Simulated runs the deployment on the discrete-event scheduler.
	Simulated Transport = iota
	// Live runs the deployment as one goroutine per peer.
	Live
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	if t == Live {
		return "live"
	}
	return "simulated"
}

// Option configures a Deployment built by New. Unset knobs fall back to
// the paper's defaults from the shared internal/cup defaults table — the
// same table for both transports, so they cannot drift.
type Option func(*options)

// options is the one shared configuration layer behind New. The
// sim-shaped parameter set is canonical; live-only knobs ride alongside.
type options struct {
	transport Transport
	p         internal.Params
	// liveHop is the wall-clock per-hop latency for the live transport;
	// p.HopDelay carries the same value in virtual seconds for the
	// simulator, so one WithHopDelay serves both.
	liveHop    time.Duration
	inboxDepth int
	observers  []Observer
}

// cfg lazily initializes the node configuration from Defaults so that
// field-level options (WithPolicy, WithPushLevel, ...) start from the
// paper's headline configuration instead of an invalid zero Config.
func (o *options) cfg() *Config {
	if o.p.Config.Policy == nil {
		o.p.Config = Defaults()
	}
	return &o.p.Config
}

// WithTransport selects Simulated (default) or Live execution.
func WithTransport(t Transport) Option {
	return func(o *options) { o.transport = t }
}

// WithNodes sets the overlay size (default 1024, the paper's n = 2^10).
func WithNodes(n int) Option {
	return func(o *options) { o.p.Nodes = n }
}

// WithOverlay selects the routing substrate by its overlay-registry name:
// "can" (default), "chord", "kademlia", or any registered kind. An empty
// kind keeps the default.
func WithOverlay(kind string) Option {
	return func(o *options) { o.p.OverlayKind = kind }
}

// WithKeys sets the number of distinct workload keys (default 1).
func WithKeys(n int) Option {
	return func(o *options) { o.p.Keys = n }
}

// WithZipf skews workload key popularity (0 = uniform).
func WithZipf(skew float64) Option {
	return func(o *options) { o.p.ZipfSkew = skew }
}

// WithReplicas sets the number of replicas per workload key (default 1).
func WithReplicas(n int) Option {
	return func(o *options) { o.p.Replicas = n }
}

// WithLifetime sets the replica lifetime (default 300 s, the paper's).
func WithLifetime(d time.Duration) Option {
	return func(o *options) { o.p.Lifetime = sim.Duration(d.Seconds()) }
}

// WithHopDelay sets the per-hop network latency for either transport: the
// simulator models it in virtual time (default 100 ms), the live network
// sleeps it in wall-clock time (default 1 ms).
func WithHopDelay(d time.Duration) Option {
	return func(o *options) {
		o.p.HopDelay = sim.Duration(d.Seconds())
		o.liveHop = d
	}
}

// WithLatencyModel supplies heterogeneous per-link latencies (see
// internal/netmodel), overriding the scalar hop delay. Simulated only.
func WithLatencyModel(m LatencyModel) Option {
	return func(o *options) { o.p.Latency = m }
}

// WithQueryRate sets the network-wide Poisson query rate λ in queries/s
// for the scripted workload (default 1).
func WithQueryRate(lambda float64) Option {
	return func(o *options) { o.p.QueryRate = lambda }
}

// WithQueryWindow bounds the scripted query workload: queries start at
// start (default: one lifetime, letting replicas register) and last for
// duration (default 3000 s, the paper's window).
func WithQueryWindow(start, duration time.Duration) Option {
	return func(o *options) {
		o.p.QueryStart = sim.Duration(start.Seconds())
		o.p.QueryDuration = sim.Duration(duration.Seconds())
	}
}

// WithQueryDuration sets only the query-window length.
func WithQueryDuration(duration time.Duration) Option {
	return func(o *options) { o.p.QueryDuration = sim.Duration(duration.Seconds()) }
}

// WithDrain extends a simulated run past the query window so in-flight
// traffic and tree teardown complete (default: one lifetime).
func WithDrain(d time.Duration) Option {
	return func(o *options) { o.p.Drain = sim.Duration(d.Seconds()) }
}

// WithConfig replaces the whole per-node protocol configuration. Compose
// with the field-level options below, which apply on top of it (order
// matters: WithConfig overwrites earlier field-level options).
func WithConfig(c Config) Option {
	return func(o *options) { o.p.Config = c }
}

// WithPolicy sets the §3.4 cut-off policy on top of Defaults().
func WithPolicy(p Policy) Option {
	return func(o *options) { o.cfg().Policy = p }
}

// WithPushLevel caps proactive update propagation at this depth from the
// authority (§3.3); UnlimitedPushLevel disables the cap.
func WithPushLevel(level int) Option {
	return func(o *options) { o.cfg().PushLevel = level }
}

// WithStandardCaching runs the expiration-based baseline instead of CUP.
func WithStandardCaching() Option {
	return func(o *options) { o.p.Config = Standard() }
}

// WithNaiveCutoff disables the §3.6 replica-independent cut-off fix.
func WithNaiveCutoff() Option {
	return func(o *options) { o.cfg().ReplicaIndependentCutoff = false }
}

// WithRefreshPolicy applies the §3.6 authority-side refresh suppression
// and aggregation techniques. Simulated only.
func WithRefreshPolicy(rp RefreshPolicy) Option {
	return func(o *options) { o.p.RefreshPolicy = rp }
}

// WithPiggyback enables §2.7 clear-bit piggybacking with the given
// carrier window. Simulated only.
func WithPiggyback(window time.Duration) Option {
	return func(o *options) {
		o.p.PiggybackClearBits = true
		o.p.PiggybackWindow = sim.Duration(window.Seconds())
	}
}

// WithSeed drives all randomness — overlay construction (both
// transports, identical topology) and the simulated workload. Identical
// options give identical simulated runs.
func WithSeed(seed int64) Option {
	return func(o *options) { o.p.Seed = seed }
}

// WithHooks schedules timed interventions into a simulated run (fault
// injection, churn scripts; see internal/workload).
func WithHooks(hooks ...Hook) Option {
	return func(o *options) { o.p.Hooks = append(o.p.Hooks, hooks...) }
}

// WithoutWorkload skips the scripted workload (replica births and Poisson
// queries) on the simulated transport: the deployment starts idle and is
// driven through the client API (Lookup, Publish), exactly like a live
// one. The live transport is always workload-free.
func WithoutWorkload() Option {
	return func(o *options) { o.p.NoWorkload = true }
}

// WithInboxDepth bounds each live peer's mailbox (default 1024).
func WithInboxDepth(n int) Option {
	return func(o *options) { o.inboxDepth = n }
}

// WithObserver attaches a synchronous observer to the deployment's event
// bus. On the live transport it is called from peer goroutines
// concurrently and must be safe for concurrent use.
func WithObserver(obs Observer) Option {
	return func(o *options) { o.observers = append(o.observers, obs) }
}

// Policy is a §3.4 cut-off policy (see internal/policy: SecondChance,
// Linear, Logarithmic, AlwaysKeep, NeverKeep).
type Policy = policy.Policy

// Seconds converts float seconds — the unit of the paper's parameters
// and of flag-driven callers — into the duration options' type.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
