package cup

import (
	"fmt"
	"math"
	"time"

	internal "cup/internal/cup"
	"cup/internal/policy"
	"cup/internal/sim"
)

// Transport selects the substrate that executes a Deployment: the
// discrete-event simulator (virtual time, deterministic, single-threaded)
// or the live goroutine-per-peer network (wall-clock time, concurrent).
// Both run the identical protocol state machine and emit the identical
// event stream.
type Transport int

const (
	// Simulated runs the deployment on the discrete-event scheduler.
	Simulated Transport = iota
	// Live runs the deployment as one goroutine per peer.
	Live
	// LiveTCP runs the deployment as one OS socket per peer: every node
	// binds a loopback TCP listener and protocol messages travel as wire
	// frames. Same protocol core, same event stream, real serialization.
	LiveTCP
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case Live:
		return "live"
	case LiveTCP:
		return "live-tcp"
	}
	return "simulated"
}

// Option configures a Deployment built by New. Unset knobs fall back to
// the paper's defaults from the shared internal/cup defaults table — the
// same table for both transports, so they cannot drift.
type Option func(*options)

// options is the one shared configuration layer behind New. The
// sim-shaped parameter set is canonical; live-only knobs ride alongside.
type options struct {
	transport Transport
	p         internal.Params
	// liveHop is the wall-clock per-hop latency for the live transport;
	// p.HopDelay carries the same value in virtual seconds for the
	// simulator, so one WithHopDelay serves both.
	liveHop    time.Duration
	inboxDepth int
	observers  []Observer
	// timeScale compresses scenario time on the live transport.
	timeScale float64
	// trials runs the scripted workload this many times with derived
	// per-trial seeds; parallelism caps the worker pool executing them.
	trials      int
	parallelism int
	// telemetry enables the internal/obs registry + collector + tracer;
	// a non-empty telemetryAddr additionally serves /metrics, /trace,
	// and /debug/pprof there.
	telemetry     bool
	telemetryAddr string
	// serving lists the WithServing listen addresses for the HTTP
	// serving layer (internal/serve); empty disables it. admitRate and
	// admitBurst shape its write-path token bucket (WithAdmitRate).
	serving    []string
	admitRate  float64
	admitBurst int
	// refreshBudget overrides the process-wide refresh pacing budget
	// (refresh publishes/second shared across all live trial networks).
	refreshBudget float64
	// errs collects option-level validation failures; New reports them
	// all at once instead of building a broken deployment.
	errs []error
}

// reject records a validation failure for New to report.
func (o *options) reject(format string, args ...any) {
	o.errs = append(o.errs, fmt.Errorf("cup: "+format, args...))
}

// cfg lazily initializes the node configuration from Defaults so that
// field-level options (WithPolicy, WithPushLevel, ...) start from the
// paper's headline configuration instead of an invalid zero Config.
func (o *options) cfg() *Config {
	if o.p.Config.Policy == nil {
		o.p.Config = Defaults()
	}
	return &o.p.Config
}

// WithTransport selects Simulated (default) or Live execution.
func WithTransport(t Transport) Option {
	return func(o *options) { o.transport = t }
}

// WithLive is shorthand for WithTransport(Live).
func WithLive() Option { return WithTransport(Live) }

// WithTCP is shorthand for WithTransport(LiveTCP).
func WithTCP() Option { return WithTransport(LiveTCP) }

// WithNodes sets the overlay size (default 1024, the paper's n = 2^10).
// A non-positive count is a configuration error reported by New.
func WithNodes(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.reject("node count %d must be positive", n)
			return
		}
		o.p.Nodes = n
	}
}

// WithOverlay selects the routing substrate by its overlay-registry name:
// "can" (default), "chord", "kademlia", or any registered kind. An empty
// kind keeps the default.
func WithOverlay(kind string) Option {
	return func(o *options) { o.p.OverlayKind = kind }
}

// WithKeys sets the number of distinct workload keys (default 1). A
// non-positive count is a configuration error reported by New.
func WithKeys(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.reject("key count %d must be positive", n)
			return
		}
		o.p.Keys = n
	}
}

// WithZipf skews workload key popularity (0 = uniform). A negative
// skew is a configuration error reported by New.
func WithZipf(skew float64) Option {
	return func(o *options) {
		if skew < 0 {
			o.reject("Zipf skew %g must be non-negative", skew)
			return
		}
		o.p.ZipfSkew = skew
	}
}

// WithReplicas sets the number of replicas per workload key (default 1).
// A non-positive count is a configuration error reported by New.
func WithReplicas(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.reject("replica count %d must be positive", n)
			return
		}
		o.p.Replicas = n
	}
}

// WithLifetime sets the replica lifetime (default 300 s, the paper's).
// A non-positive lifetime is a configuration error reported by New.
func WithLifetime(d time.Duration) Option {
	return func(o *options) {
		if d <= 0 {
			o.reject("replica lifetime %v must be positive", d)
			return
		}
		o.p.Lifetime = sim.Duration(d.Seconds())
	}
}

// WithHopDelay sets the per-hop network latency for either transport: the
// simulator models it in virtual time (default 100 ms), the live network
// sleeps it in wall-clock time (default 1 ms).
func WithHopDelay(d time.Duration) Option {
	return func(o *options) {
		if d < 0 {
			o.reject("hop delay %v must be non-negative", d)
			return
		}
		o.p.HopDelay = sim.Duration(d.Seconds())
		o.liveHop = d
	}
}

// WithLatencyModel supplies heterogeneous per-link latencies (see
// internal/netmodel), overriding the scalar hop delay. Simulated only.
func WithLatencyModel(m LatencyModel) Option {
	return func(o *options) { o.p.Latency = m }
}

// WithQueryRate sets the network-wide Poisson query rate λ in queries/s
// for the scripted workload (default 1). A zero or negative rate is a
// configuration error reported by New: a Poisson process needs λ > 0.
func WithQueryRate(lambda float64) Option {
	return func(o *options) {
		if lambda <= 0 {
			o.reject("query rate %g must be positive", lambda)
			return
		}
		o.p.QueryRate = lambda
	}
}

// WithQueryWindow bounds the scripted query workload: queries start at
// start and last for duration (default 3000 s, the paper's window). A
// zero start keeps the default — one replica lifetime, letting replicas
// register before queries arrive — like every other zero-valued option.
// Negative bounds are configuration errors reported by New.
func WithQueryWindow(start, duration time.Duration) Option {
	return func(o *options) {
		if start < 0 || duration <= 0 {
			o.reject("query window (start %v, duration %v) must have non-negative start and positive duration", start, duration)
			return
		}
		o.p.QueryStart = sim.Duration(start.Seconds())
		o.p.QueryDuration = sim.Duration(duration.Seconds())
	}
}

// WithQueryDuration sets only the query-window length. A non-positive
// duration is a configuration error reported by New.
func WithQueryDuration(duration time.Duration) Option {
	return func(o *options) {
		if duration <= 0 {
			o.reject("query duration %v must be positive", duration)
			return
		}
		o.p.QueryDuration = sim.Duration(duration.Seconds())
	}
}

// WithDrain extends a simulated run past the query window so in-flight
// traffic and tree teardown complete (default: one lifetime).
func WithDrain(d time.Duration) Option {
	return func(o *options) {
		if d < 0 {
			o.reject("drain %v must be non-negative", d)
			return
		}
		o.p.Drain = sim.Duration(d.Seconds())
	}
}

// WithConfig replaces the whole per-node protocol configuration. Compose
// with the field-level options below, which apply on top of it (order
// matters: WithConfig overwrites earlier field-level options).
func WithConfig(c Config) Option {
	return func(o *options) { o.p.Config = c }
}

// WithPolicy sets the §3.4 cut-off policy on top of Defaults().
func WithPolicy(p Policy) Option {
	return func(o *options) { o.cfg().Policy = p }
}

// WithPushLevel caps proactive update propagation at this depth from the
// authority (§3.3); UnlimitedPushLevel disables the cap.
func WithPushLevel(level int) Option {
	return func(o *options) { o.cfg().PushLevel = level }
}

// WithStandardCaching runs the expiration-based baseline instead of CUP.
func WithStandardCaching() Option {
	return func(o *options) { o.p.Config = Standard() }
}

// WithNaiveCutoff disables the §3.6 replica-independent cut-off fix.
func WithNaiveCutoff() Option {
	return func(o *options) { o.cfg().ReplicaIndependentCutoff = false }
}

// WithRefreshPolicy applies the §3.6 authority-side refresh suppression
// and aggregation techniques. Simulated only.
func WithRefreshPolicy(rp RefreshPolicy) Option {
	return func(o *options) { o.p.RefreshPolicy = rp }
}

// WithPiggyback enables §2.7 clear-bit piggybacking with the given
// carrier window. Simulated only.
func WithPiggyback(window time.Duration) Option {
	return func(o *options) {
		o.p.PiggybackClearBits = true
		o.p.PiggybackWindow = sim.Duration(window.Seconds())
	}
}

// WithSeed drives all randomness — overlay construction (both
// transports, identical topology) and the simulated workload. Identical
// options give identical simulated runs.
func WithSeed(seed int64) Option {
	return func(o *options) { o.p.Seed = seed }
}

// WithTrials makes Run execute the scripted workload n times as
// independent trials — a fresh deployment each, seeds derived from the
// run seed (trial 0 keeps it, so WithTrials(1) is a plain run) — and
// return one Result whose counters merge every trial in trial order.
// Trials execute concurrently on a worker pool (see WithParallelism).
// On the simulated transport each trial is its own simulation and the
// merged Result is bit-identical to a sequential sweep, because each
// trial is self-contained and the merge order is fixed. On the live
// transport each trial boots an isolated goroutine network — disjoint
// per-trial inbox budgets (see internal/live), topology and workload
// seeds derived per trial — so N real networks run side by side and
// their message counters merge in the same fixed trial order. A
// non-positive count is a configuration error.
func WithTrials(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.reject("trial count %d must be positive", n)
			return
		}
		o.trials = n
	}
}

// WithParallelism caps the number of workers running WithTrials trials
// concurrently (default GOMAXPROCS; each worker drives at most one
// deployment at a time). WithParallelism(1) forces a sequential sweep —
// useful for pinning determinism against the parallel path. A
// non-positive count is a configuration error.
func WithParallelism(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.reject("parallelism %d must be positive", n)
			return
		}
		o.parallelism = n
	}
}

// WithTraffic installs a client-query generator for the scripted
// workload on either transport: the simulator schedules the stream in
// virtual time, the live runtime pumps it in wall-clock time (see
// WithTimeScale). Unset, the paper's Poisson generator runs at the
// configured query rate.
func WithTraffic(t Traffic) Option {
	return func(o *options) {
		if t == nil {
			o.reject("WithTraffic needs a generator (use PoissonTraffic for the paper default)")
			return
		}
		o.p.Traffic = t
	}
}

// WithFaults adds scripted fault interventions (capacity loss, node or
// replica churn) expanded over the query window; they compose with any
// traffic generator and run on both transports.
func WithFaults(faults ...Fault) Option {
	return func(o *options) {
		for _, f := range faults {
			if f == nil {
				o.reject("WithFaults got a nil fault script")
				return
			}
		}
		o.p.Faults = append(o.p.Faults, faults...)
	}
}

// WithScenario installs a bundled scenario: its traffic generator (if
// any) and its fault scripts. Combine with WithQueryRate/WithQueryWindow
// to scale the same scenario up or down.
func WithScenario(sc Scenario) Option {
	return func(o *options) {
		if sc.Traffic != nil {
			o.p.Traffic = sc.Traffic
		}
		o.p.Faults = append(o.p.Faults, sc.Faults...)
	}
}

// WithTimeScale compresses scenario time on the live transport: scale
// virtual seconds of traffic and fault schedule replay per wall-clock
// second (default 1). The simulator ignores it — virtual time is
// already free. A non-positive scale is a configuration error.
func WithTimeScale(scale float64) Option {
	return func(o *options) {
		if scale <= 0 {
			o.reject("time scale %g must be positive", scale)
			return
		}
		o.timeScale = scale
	}
}

// WithHooks schedules timed interventions into a simulated run — the
// escape hatch predating WithFaults for arbitrary *Simulation surgery.
func WithHooks(hooks ...Hook) Option {
	return func(o *options) { o.p.Hooks = append(o.p.Hooks, hooks...) }
}

// WithoutWorkload skips the scripted workload (replica births and Poisson
// queries) on the simulated transport: the deployment starts idle and is
// driven through the client API (Lookup, Publish), exactly like a live
// one. The live transport is always workload-free.
func WithoutWorkload() Option {
	return func(o *options) { o.p.NoWorkload = true }
}

// WithShards partitions a simulated run's node population into k
// contiguous blocks, each driven by its own event heap under conservative
// time-window synchronization (lookahead = the hop delay, the minimum
// link delay). Sharding targets million-node batch sweeps: it requires
// the homogeneous-delay open-loop subset of the simulator — no
// WithLatencyModel, WithFaults, WithHooks, or WithoutWorkload — and
// implies WithDenseState. Results are deterministic for a fixed k, but
// the event interleaving (and so float accumulation order) differs from
// the single-heap schedule; integer counters agree exactly. Observers
// attached to a sharded run may be called from per-shard goroutines
// concurrently, like on the live transport. A non-positive count is a
// configuration error.
func WithShards(k int) Option {
	return func(o *options) {
		if k <= 0 {
			o.reject("shard count %d must be positive", k)
			return
		}
		o.p.Shards = k
	}
}

// WithDenseState backs simulated node state with the struct-of-arrays
// arena instead of per-node heap objects: identical behavior and event
// stream, a fraction of the memory and GC pointer traffic. Implied by
// WithShards(k > 1); worth setting explicitly for big single-shard runs.
func WithDenseState() Option {
	return func(o *options) { o.p.DenseState = true }
}

// WithInboxDepth bounds each live peer's mailbox (default 1024). A
// non-positive depth is a configuration error reported by New.
func WithInboxDepth(n int) Option {
	return func(o *options) {
		if n <= 0 {
			o.reject("inbox depth %d must be positive", n)
			return
		}
		o.inboxDepth = n
	}
}

// WithRefreshBudget sets the process-wide refresh pacing budget: the
// total replica-refresh publishes per second shared by every live trial
// network running in this process (default internal/live's 2048/s).
// Refresh pumps are the one open-loop load source trials generate, so
// the budget keeps an N-trial sweep from multiplying refresh load N× on
// one machine. Process-wide by design — the last deployment built wins.
// A non-positive rate is a configuration error reported by New.
func WithRefreshBudget(perSec float64) Option {
	return func(o *options) {
		if perSec <= 0 {
			o.reject("refresh budget %g/s must be positive", perSec)
			return
		}
		o.refreshBudget = perSec
	}
}

// WithObserver attaches a synchronous observer to the deployment's event
// bus. On the live transport it is called from peer goroutines
// concurrently and must be safe for concurrent use.
func WithObserver(obs Observer) Option {
	return func(o *options) { o.observers = append(o.observers, obs) }
}

// Policy is a §3.4 cut-off policy (see internal/policy: SecondChance,
// Linear, Logarithmic, AlwaysKeep, NeverKeep).
type Policy = policy.Policy

// Seconds converts float seconds — the unit of the paper's parameters
// and of flag-driven callers — into the duration options' type.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// EstimateCost predicts the relative execution cost of the run a set of
// options describes — a dimensionless score, not a time. The adaptive
// experiment engine (internal/experiment) uses it to dispatch a sweep's
// expensive cells first, so one λ=1000 tail cell cannot idle the worker
// pool behind a queue of cheap ones; only the ordering matters, so the
// model is deliberately coarse: query arrivals and replica refreshes,
// each charged the overlay's O(log n) routing work, times the trial
// count. Invalid options score like their defaulted values — New is
// where validation lives.
func EstimateCost(opts ...Option) float64 {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	p := o.p.WithDefaults()
	hops := math.Log2(float64(p.Nodes) + 2)
	queries := p.QueryRate * float64(p.QueryDuration)
	span := float64(p.QueryStart + p.QueryDuration + p.Drain)
	refreshes := float64(p.Keys*p.Replicas) * (span/float64(p.Lifetime) + 1)
	trials := o.trials
	if trials < 1 {
		trials = 1
	}
	return float64(trials) * (queries + refreshes) * hops
}
