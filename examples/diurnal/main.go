// Diurnal: a day/night load wave through the Scenario API. The
// cup.DiurnalWave generator modulates the Poisson query rate
// sinusoidally around its mean; an observer tallies queries per wave
// phase, showing CUP's proactive pushes absorbing the peaks — the cache
// stays warm precisely when traffic is at its heaviest. Swap
// cup.WithTransport(cup.Live) (plus cup.WithTimeScale) and the same
// scenario replays on the goroutine network.
package main

import (
	"context"
	"fmt"
	"strings"

	"cup"
)

func main() {
	const (
		period  = 300.0 // one full wave in scenario seconds
		buckets = 12    // histogram resolution across the run
	)
	wave := cup.DiurnalWave{Mean: 20, Amplitude: 0.9, Period: period}

	window := 900.0 // three full waves
	counts := make([]int, buckets)
	start := 300.0 // queries begin after one replica lifetime
	d, err := cup.New(
		cup.WithNodes(256),
		cup.WithQueryDuration(cup.Seconds(window)),
		cup.WithSeed(13),
		cup.WithTraffic(wave),
		cup.WithObserver(cup.ObserverFunc(func(e cup.Event) {
			if e.Kind != cup.EvQueryIssued {
				return
			}
			b := int((float64(e.Time) - start) / window * buckets)
			if b >= 0 && b < buckets {
				counts[b]++
			}
		})),
	)
	if err != nil {
		panic(err)
	}
	defer d.Close()

	res, err := d.Run(context.Background())
	if err != nil {
		panic(err)
	}

	fmt.Printf("Diurnal wave: λ = 20 q/s ± 90%%, period %.0f s, three waves over %.0f s\n\n", period, window)
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		bar := strings.Repeat("█", c*48/max)
		fmt.Printf("t=%4.0fs %6d q %s\n", start+float64(i)*window/buckets, c, bar)
	}
	c := res.Counters
	fmt.Printf("\n%d queries total; %.1f%% served from warm caches, miss latency %.2f hops\n",
		c.Queries, 100*float64(c.Hits)/float64(c.Queries), c.MissLatencyHops())
	fmt.Printf("update overhead %d hops bought %d saved miss hops across the peaks\n",
		c.Overhead(), c.Hits)
}
