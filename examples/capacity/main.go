// Capacity: reproduce the §3.7 degraded-capacity scenario interactively.
// Twenty percent of nodes lose most of their outgoing update capacity
// mid-run (Once-Down-Always-Down); CUP's costs degrade gracefully and stay
// below standard caching, because nodes starved of updates fall back to
// expiration-based caching with no extra overhead.
package main

import (
	"fmt"

	"cup"
	"cup/internal/workload"
)

func main() {
	base := cup.Params{
		Nodes:         512,
		QueryRate:     20,
		QueryDuration: 1200,
		Seed:          11,
	}

	pStd := base
	pStd.Config = cup.Standard()
	std := cup.Run(pStd).Counters.TotalCost()

	fmt.Println("Once-Down-Always-Down: 20% of nodes at reduced outgoing capacity")
	fmt.Printf("standard caching baseline: %d hops total\n\n", std)
	fmt.Printf("%-10s %14s %12s\n", "capacity", "CUP total", "vs standard")
	for _, c := range []float64{1, 0.75, 0.5, 0.25, 0} {
		p := base
		p.Config = cup.Defaults()
		p.Hooks = workload.OnceDownAlwaysDown(workload.CapacityFault{
			Capacity:      c,
			QueryStart:    300,
			QueryDuration: p.QueryDuration,
		})
		total := cup.Run(p).Counters.TotalCost()
		fmt.Printf("%-10.2f %14d %11.2fx\n", c, total, float64(total)/float64(std))
	}
	fmt.Println("\nEven at capacity 0, CUP outperforms standard caching: downstream")
	fmt.Println("nodes fall back to expiration-based caching with no overhead (§2.8).")
}
