// Capacity: reproduce the §3.7 degraded-capacity scenario interactively.
// Twenty percent of nodes lose most of their outgoing update capacity
// mid-run (Once-Down-Always-Down); CUP's costs degrade gracefully and stay
// below standard caching, because nodes starved of updates fall back to
// expiration-based caching with no extra overhead.
package main

import (
	"context"
	"fmt"
	"time"

	"cup"
)

func main() {
	base := []cup.Option{
		cup.WithNodes(512),
		cup.WithQueryRate(20),
		cup.WithQueryDuration(1200 * time.Second),
		cup.WithSeed(11),
	}

	run := func(extra ...cup.Option) *cup.Result {
		d, err := cup.New(append(append([]cup.Option{}, base...), extra...)...)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res, err := d.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return res
	}

	std := run(cup.WithStandardCaching()).Counters.TotalCost()

	fmt.Println("Once-Down-Always-Down: 20% of nodes at reduced outgoing capacity")
	fmt.Printf("standard caching baseline: %d hops total\n\n", std)
	fmt.Printf("%-10s %14s %12s\n", "capacity", "CUP total", "vs standard")
	for _, c := range []float64{1, 0.75, 0.5, 0.25, 0} {
		fault := cup.CapacityFault{Capacity: c} // Once-Down-Always-Down (Recover unset)
		total := run(cup.WithFaults(fault)).Counters.TotalCost()
		fmt.Printf("%-10.2f %14d %11.2fx\n", c, total, float64(total)/float64(std))
	}
	fmt.Println("\nEven at capacity 0, CUP outperforms standard caching: downstream")
	fmt.Println("nodes fall back to expiration-based caching with no overhead (§2.8).")
}
