// Observer: tail the shared event bus of a live CUP network. A
// background workload publishes, refreshes, and looks up keys from
// random peers; the main goroutine subscribes to the deployment's event
// stream and prints a per-second rate line — queries issued/answered,
// updates pushed, cut-offs — the live introspection a long-running
// deployment needs (and exactly the stream a simulated run emits).
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cup"
)

func main() {
	d, err := cup.New(
		cup.WithTransport(cup.Live),
		cup.WithNodes(64),
		cup.WithHopDelay(500*time.Microsecond),
		cup.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	defer d.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 6*time.Second)
	defer cancel()

	keys := []cup.Key{"alpha", "beta", "gamma"}
	for i, k := range keys {
		for r := 0; r < 2; r++ {
			if err := d.Publish(ctx, k, r, fmt.Sprintf("198.51.100.%d", 10*i+r), time.Hour); err != nil {
				panic(err)
			}
		}
	}

	events, stop := d.Events()
	defer stop()

	// Background workload: lookups from random peers plus periodic
	// refreshes, so the bus carries both miss traffic and pushed updates.
	go func() {
		rng := rand.New(rand.NewSource(3))
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			i++
			k := keys[rng.Intn(len(keys))]
			if i%40 == 0 {
				_ = d.Publish(ctx, k, rng.Intn(2), "198.51.100.99", time.Hour)
				continue
			}
			lctx, lcancel := context.WithTimeout(ctx, time.Second)
			_, _ = d.LookupAt(lctx, cup.NodeID(rng.Intn(d.Size())), k)
			lcancel()
		}
	}()

	// Consume the bus: per-second event rates.
	fmt.Println("per-second event rates from the live deployment's bus:")
	fmt.Printf("%-8s %8s %9s %8s %8s\n", "t", "queries", "answered", "pushed", "cutoffs")
	counts := make(map[cup.EventKind]int)
	second := time.NewTicker(time.Second)
	defer second.Stop()
	start := time.Now()
	for {
		select {
		case e, ok := <-events:
			if !ok {
				return
			}
			counts[e.Kind]++
		case <-second.C:
			fmt.Printf("%-8s %8d %9d %8d %8d\n",
				time.Since(start).Round(time.Second),
				counts[cup.EvQueryIssued], counts[cup.EvQueryAnswered],
				counts[cup.EvUpdatePushed], counts[cup.EvCutoffFired])
			counts = make(map[cup.EventKind]int)
		case <-ctx.Done():
			fmt.Printf("\ndone; %d events dropped by the subscriber buffer\n", d.EventsDropped())
			return
		}
	}
}
