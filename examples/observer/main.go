// Observer: watch a live CUP network through its telemetry registry. A
// background workload publishes, refreshes, and looks up keys from
// random peers; the main goroutine polls the deployment's metrics
// registry (populated by the bus-subscribing collector that
// cup.WithTelemetry attaches) and prints a per-second rate line —
// queries issued/answered, updates pushed, cut-offs — plus, at the end,
// the answer-latency histogram and one key's propagation trace. The
// same registry is what /metrics serves; polling it in-process beats
// hand-counting bus events because the cumulative series survive
// subscriber-buffer drops and are shared with every other consumer.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cup"
)

func main() {
	d, err := cup.New(
		cup.WithTransport(cup.Live),
		cup.WithTelemetry(""), // collect in-process; pass an addr to also serve /metrics
		cup.WithNodes(64),
		cup.WithHopDelay(500*time.Microsecond),
		cup.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	defer d.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 6*time.Second)
	defer cancel()

	keys := []cup.Key{"alpha", "beta", "gamma"}
	for i, k := range keys {
		for r := 0; r < 2; r++ {
			if err := d.Publish(ctx, k, r, fmt.Sprintf("198.51.100.%d", 10*i+r), time.Hour); err != nil {
				panic(err)
			}
		}
	}

	// Background workload: lookups from random peers plus periodic
	// refreshes, so the registry sees both miss traffic and pushed updates.
	go func() {
		rng := rand.New(rand.NewSource(3))
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			i++
			k := keys[rng.Intn(len(keys))]
			if i%40 == 0 {
				_ = d.Publish(ctx, k, rng.Intn(2), "198.51.100.99", time.Hour)
				continue
			}
			lctx, lcancel := context.WithTimeout(ctx, time.Second)
			_, _ = d.LookupAt(lctx, cup.NodeID(rng.Intn(d.Size())), k)
			lcancel()
		}
	}()

	// eventTotal reads one cumulative per-kind series from the registry.
	eventTotal := func(kind cup.EventKind) float64 {
		v, _ := d.MetricValue("cup_events_total",
			cup.MetricLabel{Key: "kind", Value: kind.String()})
		return v
	}
	watched := []cup.EventKind{
		cup.EvQueryIssued, cup.EvQueryAnswered, cup.EvUpdatePushed, cup.EvCutoffFired,
	}

	// Poll the cumulative counters once a second and print the deltas:
	// the same numbers a Prometheus rate() query would compute.
	fmt.Println("per-second event rates from the telemetry registry:")
	fmt.Printf("%-8s %8s %9s %8s %8s\n", "t", "queries", "answered", "pushed", "cutoffs")
	prev := make([]float64, len(watched))
	second := time.NewTicker(time.Second)
	defer second.Stop()
	start := time.Now()
	for done := false; !done; {
		select {
		case <-second.C:
		case <-ctx.Done():
			done = true
		}
		cur := make([]float64, len(watched))
		for i, k := range watched {
			cur[i] = eventTotal(k)
		}
		fmt.Printf("%-8s %8.0f %9.0f %8.0f %8.0f\n",
			time.Since(start).Round(time.Second),
			cur[0]-prev[0], cur[1]-prev[1], cur[2]-prev[2], cur[3]-prev[3])
		prev = cur
	}

	// The registry also carries what per-event tailing cannot: the
	// answer-latency distribution and the reconstructed span trees.
	for _, m := range d.Metrics() {
		if m.Name == "cup_query_latency_seconds" {
			fmt.Printf("\nanswer latency: %d samples, mean %.4fs\n",
				m.Count, m.Sum/float64(m.Count))
		}
	}
	if tr, ok := d.Trace("alpha"); ok {
		fmt.Printf("propagation tree for %q: %d spans, %d cut-offs, root %v\n",
			tr.Key, len(tr.Spans), tr.Cutoffs, tr.Root)
	}
	if v, ok := d.MetricValue("cup_bus_dropped_events"); ok {
		fmt.Printf("events dropped by subscriber buffers: %.0f\n", v)
	}
}
