// Churn: node arrivals and departures (§2.9). While clients query, nodes
// continuously join the CAN (splitting zones) and leave gracefully (a
// neighbor absorbs their zones and index directory, interest bit vectors
// are patched). CUP's trees re-form around the changes and its advantage
// over standard caching persists.
package main

import (
	"context"
	"fmt"
	"time"

	"cup"
)

func main() {
	run := func(rounds int, extra ...cup.Option) *cup.Result {
		opts := []cup.Option{
			cup.WithNodes(256),
			cup.WithQueryRate(10),
			cup.WithQueryDuration(1200 * time.Second),
			cup.WithSeed(23),
		}
		if rounds > 0 {
			churn := cup.NodeChurn{At: 350, Period: 1200 / float64(rounds+1), Rounds: rounds}
			opts = append(opts, cup.WithFaults(churn))
		}
		d, err := cup.New(append(opts, extra...)...)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res, err := d.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Println("Continuous membership churn on a 256-node CAN, λ=10 q/s")
	fmt.Printf("%-14s %12s %12s %10s\n", "churn events", "std total", "CUP total", "CUP/std")
	for _, rounds := range []int{0, 10, 40, 80} {
		std := run(rounds, cup.WithStandardCaching())
		res := run(rounds)
		fmt.Printf("%-14d %12d %12d %9.2fx\n",
			rounds,
			std.Counters.TotalCost(),
			res.Counters.TotalCost(),
			float64(res.Counters.TotalCost())/float64(std.Counters.TotalCost()))
	}
	fmt.Println("\nJoins split zones and inherit index entries; departures hand their")
	fmt.Println("directory to a neighbor. Orphaned caches simply expire (§2.9), so")
	fmt.Println("churn costs stay confined to the affected neighborhoods.")
}
