// Churn: node arrivals and departures (§2.9). While clients query, nodes
// continuously join the CAN (splitting zones) and leave gracefully (a
// neighbor absorbs their zones and index directory, interest bit vectors
// are patched). CUP's trees re-form around the changes and its advantage
// over standard caching persists.
package main

import (
	"fmt"

	"cup"
	"cup/internal/sim"
	"cup/internal/workload"
)

func main() {
	base := cup.Params{
		Nodes:         256,
		QueryRate:     10,
		QueryDuration: 1200,
		Seed:          23,
	}

	run := func(cfg cup.Config, rounds int) *cup.Result {
		p := base
		p.Config = cfg
		if rounds > 0 {
			p.Hooks = workload.NodeChurn{At: 350, Period: sim.Duration(1200 / float64(rounds+1)), Rounds: rounds}.Hooks()
		}
		return cup.Run(p)
	}

	fmt.Println("Continuous membership churn on a 256-node CAN, λ=10 q/s")
	fmt.Printf("%-14s %12s %12s %10s\n", "churn events", "std total", "CUP total", "CUP/std")
	for _, rounds := range []int{0, 10, 40, 80} {
		std := run(cup.Standard(), rounds)
		res := run(cup.Defaults(), rounds)
		fmt.Printf("%-14d %12d %12d %9.2fx\n",
			rounds,
			std.Counters.TotalCost(),
			res.Counters.TotalCost(),
			float64(res.Counters.TotalCost())/float64(std.Counters.TotalCost()))
	}
	fmt.Println("\nJoins split zones and inherit index entries; departures hand their")
	fmt.Println("directory to a neighbor. Orphaned caches simply expire (§2.9), so")
	fmt.Println("churn costs stay confined to the affected neighborhoods.")
}
