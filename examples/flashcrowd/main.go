// Flashcrowd: the paper's motivating surge scenario through the public
// Scenario API. A key becomes suddenly hot; CUP's query channel
// coalesces the burst into a handful of upstream queries while standard
// caching opens one connection per query and floods the path to the
// authority. The same cup.FlashCrowd generator drives both runs — and
// would drive a live deployment unchanged via cup.WithTransport.
package main

import (
	"context"
	"fmt"
	"time"

	"cup"
)

func main() {
	surge := cup.FlashCrowd{
		BaseRate:  0.01, // quiet background (queries/s)
		At:        400,  // seconds into the run
		SurgeRate: 300,  // queries/s during the surge
		Queries:   3000,
	}

	run := func(extra ...cup.Option) *cup.Result {
		opts := []cup.Option{
			cup.WithNodes(512),
			cup.WithQueryDuration(900 * time.Second),
			cup.WithHopDelay(250 * time.Millisecond), // a slow network makes the burst overlap responses
			cup.WithSeed(7),
			cup.WithTraffic(surge),
		}
		d, err := cup.New(append(opts, extra...)...)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res, err := d.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return res
	}

	std := run(cup.WithStandardCaching())
	res := run()

	fmt.Println("Flash crowd: 3000 queries for one key at 300 q/s on a 512-node CAN")
	fmt.Printf("%-28s %12s %12s\n", "", "standard", "CUP")
	fmt.Printf("%-28s %12d %12d\n", "queries coalesced", std.Counters.Coalesced, res.Counters.Coalesced)
	fmt.Printf("%-28s %12d %12d\n", "query hops upstream", std.Counters.QueryHops, res.Counters.QueryHops)
	fmt.Printf("%-28s %12d %12d\n", "total cost (hops)", std.Counters.TotalCost(), res.Counters.TotalCost())
	fmt.Printf("%-28s %12.2f %12.2f\n", "avg miss latency (s)",
		std.Counters.MissLatencySeconds(), res.Counters.MissLatencySeconds())
	fmt.Printf("\nCUP collapsed the burst: %.1f%% of surge queries were coalesced\n",
		100*float64(res.Counters.Coalesced)/float64(res.Counters.Queries))
	fmt.Printf("and upstream query traffic fell %.0fx.\n",
		float64(std.Counters.QueryHops)/float64(res.Counters.QueryHops))
}
