// Quickstart: run one CUP simulation next to the standard-caching
// baseline through the unified cup.New deployment API and print the
// paper's headline comparison — miss cost, update overhead, total cost,
// and average miss latency.
package main

import (
	"context"
	"fmt"
	"time"

	"cup"
)

func main() {
	base := []cup.Option{
		cup.WithNodes(256),                       // 2^8-node CAN overlay
		cup.WithQueryRate(5),                     // Poisson λ, queries/s across the network
		cup.WithQueryDuration(900 * time.Second), // seconds of querying
		cup.WithSeed(42),
	}

	run := func(extra ...cup.Option) *cup.Result {
		d, err := cup.New(append(append([]cup.Option{}, base...), extra...)...)
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res, err := d.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return res
	}

	std := run(cup.WithStandardCaching())
	res := run() // CUP with the second-chance cut-off (the default)

	fmt.Println("CUP vs standard expiration-based caching")
	fmt.Printf("%-22s %12s %12s\n", "", "standard", "CUP")
	row := func(label string, a, b uint64) {
		fmt.Printf("%-22s %12d %12d\n", label, a, b)
	}
	row("queries", std.Counters.Queries, res.Counters.Queries)
	row("misses", std.Counters.Misses(), res.Counters.Misses())
	row("miss cost (hops)", std.Counters.MissCost(), res.Counters.MissCost())
	row("overhead (hops)", std.Counters.Overhead(), res.Counters.Overhead())
	row("total cost (hops)", std.Counters.TotalCost(), res.Counters.TotalCost())
	fmt.Printf("%-22s %12.2f %12.2f\n", "miss latency (hops)",
		std.Counters.MissLatencyHops(), res.Counters.MissLatencyHops())
	fmt.Printf("\nCUP total cost is %.2fx the baseline; miss cost %.2fx.\n",
		float64(res.Counters.TotalCost())/float64(std.Counters.TotalCost()),
		float64(res.Counters.MissCost())/float64(std.Counters.MissCost()))
}
