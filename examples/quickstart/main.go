// Quickstart: run one CUP simulation next to the standard-caching
// baseline and print the paper's headline comparison — miss cost, update
// overhead, total cost, and average miss latency.
package main

import (
	"fmt"

	"cup"
)

func main() {
	params := cup.Params{
		Nodes:         256, // 2^8-node CAN overlay
		QueryRate:     5,   // Poisson λ, queries/s across the network
		QueryDuration: 900, // seconds of querying
		Seed:          42,
	}

	params.Config = cup.Standard()
	std := cup.Run(params)

	params.Config = cup.Defaults() // CUP with the second-chance cut-off
	res := cup.Run(params)

	fmt.Println("CUP vs standard expiration-based caching")
	fmt.Printf("%-22s %12s %12s\n", "", "standard", "CUP")
	row := func(label string, a, b uint64) {
		fmt.Printf("%-22s %12d %12d\n", label, a, b)
	}
	row("queries", std.Counters.Queries, res.Counters.Queries)
	row("misses", std.Counters.Misses(), res.Counters.Misses())
	row("miss cost (hops)", std.Counters.MissCost(), res.Counters.MissCost())
	row("overhead (hops)", std.Counters.Overhead(), res.Counters.Overhead())
	row("total cost (hops)", std.Counters.TotalCost(), res.Counters.TotalCost())
	fmt.Printf("%-22s %12.2f %12.2f\n", "miss latency (hops)",
		std.Counters.MissLatencyHops(), res.Counters.MissLatencyHops())
	fmt.Printf("\nCUP total cost is %.2fx the baseline; miss cost %.2fx.\n",
		float64(res.Counters.TotalCost())/float64(std.Counters.TotalCost()),
		float64(res.Counters.MissCost())/float64(std.Counters.MissCost()))
}
