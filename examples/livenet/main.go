// Livenet: CUP as a real concurrent system through the unified cup.New
// deployment API. Every peer is a goroutine, query and update channels
// are Go channels, and lookups are served with real wall-clock latency.
// Replicas register, refresh, and disappear while clients look keys up
// from random peers.
package main

import (
	"context"
	"fmt"
	"time"

	"cup"
)

func main() {
	d, err := cup.New(
		cup.WithTransport(cup.Live),
		cup.WithNodes(64),
		cup.WithHopDelay(2*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	defer d.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const key = cup.Key("ubuntu-24.04.iso")
	fmt.Printf("64 goroutine peers up; authority for %q is %v\n\n", key, d.Authority(key))

	// Three replicas announce themselves to the authority.
	for r := 0; r < 3; r++ {
		if err := d.Publish(ctx, key, r, fmt.Sprintf("198.51.100.%d", r+1), time.Hour); err != nil {
			fmt.Println("publish failed:", err)
			return
		}
	}

	// First lookup walks the overlay; repeat lookups at the same peer hit
	// its CUP-maintained cache.
	for _, peer := range []cup.NodeID{5, 41, 5} {
		start := time.Now()
		entries, err := d.LookupAt(ctx, peer, key)
		if err != nil {
			fmt.Println("lookup failed:", err)
			return
		}
		fmt.Printf("lookup at %v -> %d replicas in %v\n", peer, len(entries), time.Since(start).Round(time.Microsecond))
	}

	// A replica disappears; the authority pushes a Delete down the tree.
	if err := d.Unpublish(ctx, key, 0); err != nil {
		fmt.Println("unpublish failed:", err)
		return
	}
	time.Sleep(50 * time.Millisecond)
	entries, err := d.LookupAt(ctx, 41, key)
	if err != nil {
		fmt.Println("lookup failed:", err)
		return
	}
	fmt.Printf("\nafter replica 0 deletion, peer 41 sees %d replicas:\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  replica %d at %s\n", e.Replica, e.Addr)
	}

	c := d.Counters()
	fmt.Printf("\nnetwork totals: %d query msgs, %d update msgs, %d clear-bits\n",
		c.QueryHops, c.UpdateHops, c.ClearBitHops)
}
