// Livenet: CUP as a real concurrent system. Every peer is a goroutine,
// query and update channels are Go channels, and lookups are served with
// real wall-clock latency. Replicas register, refresh, and disappear while
// clients look keys up from random peers.
package main

import (
	"context"
	"fmt"
	"time"

	"cup/internal/live"
	"cup/internal/overlay"
)

func main() {
	net := live.NewNetwork(live.Config{
		Nodes:    64,
		HopDelay: 2 * time.Millisecond,
	})
	defer net.Close()

	const key = overlay.Key("ubuntu-24.04.iso")
	fmt.Printf("64 goroutine peers up; authority for %q is %v\n\n", key, net.Authority(key))

	// Three replicas announce themselves to the authority.
	for r := 0; r < 3; r++ {
		net.AddReplica(key, r, fmt.Sprintf("198.51.100.%d", r+1), time.Hour)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// First lookup walks the overlay; repeat lookups at the same peer hit
	// its CUP-maintained cache.
	for _, peer := range []overlay.NodeID{5, 41, 5} {
		start := time.Now()
		entries, err := net.Lookup(ctx, peer, key)
		if err != nil {
			fmt.Println("lookup failed:", err)
			return
		}
		fmt.Printf("lookup at %v -> %d replicas in %v\n", peer, len(entries), time.Since(start).Round(time.Microsecond))
	}

	// A replica disappears; the authority pushes a Delete down the tree.
	net.RemoveReplica(key, 0)
	time.Sleep(50 * time.Millisecond)
	entries, err := net.Lookup(ctx, 41, key)
	if err != nil {
		fmt.Println("lookup failed:", err)
		return
	}
	fmt.Printf("\nafter replica 0 deletion, peer 41 sees %d replicas:\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  replica %d at %s\n", e.Replica, e.Addr)
	}

	st := net.Stats()
	fmt.Printf("\nnetwork totals: %d query msgs, %d update msgs, %d clear-bits\n",
		st.QueryMsgs, st.UpdateMsgs, st.ClearBitMsgs)
}
