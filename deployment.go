package cup

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	internal "cup/internal/cup"
	"cup/internal/live"
	"cup/internal/metrics"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// Runtime is the transport-agnostic execution substrate behind a
// Deployment: the discrete-event simulator and the live goroutine
// network implement it identically, so application code written against
// it transfers between evaluation and deployment unchanged.
type Runtime interface {
	// Transport reports which substrate is executing.
	Transport() Transport
	// Size returns the number of peers in the overlay.
	Size() int
	// Authority returns the node owning key's index entries.
	Authority(key Key) NodeID
	// LookupAt posts a client query for key at node `at` and waits for
	// the index entries (or ctx cancellation). On the simulator, waiting
	// means driving the virtual clock.
	LookupAt(ctx context.Context, at NodeID, key Key) ([]Entry, error)
	// Publish registers (key, replica) served at addr with its authority
	// and propagates the event down the interest tree — as an Append when
	// refresh is false, as a lifetime-extending Refresh otherwise.
	Publish(ctx context.Context, key Key, replica int, addr string, lifetime time.Duration, refresh bool) error
	// Unpublish deletes (key, replica) at the authority and propagates a
	// Delete so caches stop serving the dead replica.
	Unpublish(ctx context.Context, key Key, replica int) error
	// SetCapacity adjusts a node's outgoing update capacity fraction
	// (§3.7); negative restores full capacity.
	SetCapacity(ctx context.Context, id NodeID, c float64) error
	// Inspect runs fn with exclusive access to one node's protocol state.
	Inspect(id NodeID, fn func(*Node)) error
	// Settle blocks until the deployment quiesces: the simulator drains
	// its event queue, the live network waits for in-flight traffic to
	// stop.
	Settle(ctx context.Context) error
	// Counters snapshots the run's cost counters. The simulator reports
	// the paper's full accounting; the live network reports message
	// counts folded into the hop fields (one message = one hop).
	Counters() Counters
	// Close releases the substrate. Further client calls fail.
	Close() error
}

// Deployment is a running CUP system built by New: a Runtime plus the
// shared event bus and the application-facing client API. One Deployment
// abstraction covers both the paper's evaluation harness and a live
// service.
type Deployment struct {
	rt  Runtime
	bus *internal.Bus
	// p is the resolved parameter set: the simulator consumes it via
	// NewSimulation; the live scenario runner (Run on the live
	// transport) reads the workload shape from it.
	p internal.Params
	// timeScale compresses scenario replay on the live transport.
	timeScale float64
	// trials > 1 turns Run into a multi-trial sweep on either transport;
	// parallelism caps its worker pool (0 = GOMAXPROCS).
	trials      int
	parallelism int
	// liveCfg is the live network configuration New built (or would
	// build) from the options; live multi-trial sweeps boot one isolated
	// network per trial from it, varying only the seed and the carved
	// inbox budget.
	liveCfg live.Config
	// tele is the WithTelemetry observability state (nil without it).
	tele *telemetry
	// serve is the WithServing HTTP serving layer (nil without it).
	serve *serving

	mu        sync.Mutex
	rng       *rand.Rand
	published map[pubKey]bool
	detach    []func()
	closed    bool
}

type pubKey struct {
	key     Key
	replica int
}

// New builds a deployment from functional options: one construction path
// for both transports.
//
//	d, err := cup.New(cup.WithTransport(cup.Live), cup.WithOverlay("kademlia"), cup.WithNodes(256))
//
// Unset knobs use the paper's defaults (1024-node CAN, 300 s lifetimes,
// seed 1, ...) from the shared defaults table. Callers must Close the
// deployment when done.
func New(opts ...Option) (*Deployment, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o.p = o.p.WithDefaults()
	if !overlay.Registered(o.p.OverlayKind) {
		o.reject("unknown overlay %q (registered: %s)", o.p.OverlayKind, overlay.KindList())
	}
	if o.p.Nodes <= 0 {
		o.reject("node count %d must be positive", o.p.Nodes)
	}
	if o.p.Keys <= 0 {
		o.reject("key count %d must be positive", o.p.Keys)
	}
	if o.p.QueryRate <= 0 {
		o.reject("query rate %g must be positive", o.p.QueryRate)
	}
	if overlay.Registered(o.p.OverlayKind) && !internal.ChurnCapable(o.p.OverlayKind) {
		// Fail at construction, not mid-run: a membership fault script on
		// a static overlay can never execute, and discovering that only
		// when the fault timeline reaches it (or worse, not at all) is
		// the silent no-op this check exists to prevent.
		for _, f := range o.p.Faults {
			if mf, ok := f.(internal.MembershipFault); ok && mf.RequiresMembership() {
				o.reject("fault %q needs membership churn, but overlay %q is static (§2.9 churn needs a dynamic substrate such as can or kademlia)",
					f.Name(), o.p.OverlayKind)
			}
		}
	}
	if o.p.Shards > 1 {
		// Sharding is the batch-mode scaling path: reject everything the
		// conservative-window scheduler cannot honor, with errors rather
		// than NewSimulation's panics.
		switch {
		case o.transport != Simulated:
			o.reject("WithShards applies to the simulated transport only")
		case o.p.Latency != nil:
			o.reject("WithShards requires a homogeneous hop delay (drop WithLatencyModel: the lookahead is the minimum link delay)")
		case len(o.p.Faults) > 0 || len(o.p.Hooks) > 0:
			o.reject("WithShards does not support WithFaults or WithHooks (global interventions break shard isolation)")
		case o.p.NoWorkload:
			o.reject("WithShards is batch-only (WithoutWorkload and interactive lookups need the single-heap scheduler)")
		}
	}
	if err := errors.Join(o.errs...); err != nil {
		return nil, err
	}

	bus := internal.NewBus()
	d := &Deployment{
		bus:         bus,
		p:           o.p,
		timeScale:   o.timeScale,
		trials:      o.trials,
		parallelism: o.parallelism,
		rng:         rand.New(rand.NewSource(o.p.Seed)),
		published:   make(map[pubKey]bool),
	}
	for _, obs := range o.observers {
		d.detach = append(d.detach, bus.Attach(obs))
	}
	// The bus is the node observer on both transports; a user observer
	// supplied through the compatibility Params.Observer field still
	// reaches it as an attached tap. d.p carries the bus too, so trial
	// runs built from it emit their interleaved event streams to the
	// deployment's observers.
	if o.p.Observer != nil {
		d.detach = append(d.detach, bus.Attach(o.p.Observer))
	}
	o.p.Observer = bus
	d.p.Observer = bus

	switch o.transport {
	case Simulated:
		d.rt = &simRuntime{s: internal.NewSimulation(o.p)}
	case Live, LiveTCP:
		hop := o.liveHop
		if hop == 0 && o.transport == Live {
			hop = internal.DefaultLiveHopDelay
		}
		d.liveCfg = live.Config{
			Nodes:      o.p.Nodes,
			Overlay:    o.p.OverlayKind,
			HopDelay:   hop,
			Node:       o.p.Config,
			Seed:       o.p.Seed,
			InboxDepth: o.inboxDepth,
			Observer:   bus,
		}
		// The network boots lazily on first use: a multi-trial Run only
		// ever drives per-trial networks, and must not also pay for an
		// idle full-budget base network (or, on TCP, its listeners).
		d.rt = &liveRuntime{cfg: d.liveCfg, tcp: o.transport == LiveTCP}
	default:
		return nil, fmt.Errorf("cup: unknown transport %d", int(o.transport))
	}
	if o.refreshBudget > 0 {
		// Process-wide by design (see WithRefreshBudget): trial networks
		// from every deployment share one refresh pacing budget.
		live.SetRefreshBudget(o.refreshBudget)
	}
	if o.telemetry {
		if err := d.initTelemetry(&o); err != nil {
			_ = d.rt.Close()
			return nil, err
		}
	}
	if len(o.serving) > 0 {
		if err := d.initServing(&o); err != nil {
			if d.tele != nil && d.tele.srv != nil {
				_ = d.tele.srv.Close()
			}
			_ = d.rt.Close()
			return nil, err
		}
	}
	return d, nil
}

// Runtime exposes the underlying transport substrate.
func (d *Deployment) Runtime() Runtime { return d.rt }

// Transport reports which substrate executes this deployment.
func (d *Deployment) Transport() Transport { return d.rt.Transport() }

// Size returns the number of peers.
func (d *Deployment) Size() int { return d.rt.Size() }

// Authority returns the node owning key's index entries.
func (d *Deployment) Authority(key Key) NodeID { return d.rt.Authority(key) }

// Counters snapshots the deployment's cost counters (see
// Runtime.Counters for the live transport's approximation).
func (d *Deployment) Counters() Counters { return d.rt.Counters() }

// Lookup resolves key from a deterministically random peer — the
// client's entry point is arbitrary in a P2P network. Use LookupAt to
// pick the peer.
func (d *Deployment) Lookup(ctx context.Context, key Key) ([]Entry, error) {
	d.mu.Lock()
	at := NodeID(d.rng.Intn(d.rt.Size()))
	d.mu.Unlock()
	return d.rt.LookupAt(ctx, at, key)
}

// LookupAt posts a client query for key at node `at` and waits for the
// index entries, honoring ctx cancellation on both transports.
func (d *Deployment) LookupAt(ctx context.Context, at NodeID, key Key) ([]Entry, error) {
	return d.rt.LookupAt(ctx, at, key)
}

// Publish registers (key, replica) served at addr: an Append update on
// first publication, a lifetime-extending Refresh on re-publication.
// Replicas should re-Publish before lifetime elapses.
func (d *Deployment) Publish(ctx context.Context, key Key, replica int, addr string, lifetime time.Duration) error {
	pk := pubKey{key, replica}
	d.mu.Lock()
	refresh := d.published[pk]
	d.mu.Unlock()
	if err := d.rt.Publish(ctx, key, replica, addr, lifetime, refresh); err != nil {
		return err
	}
	d.mu.Lock()
	d.published[pk] = true
	d.mu.Unlock()
	return nil
}

// Unpublish deletes (key, replica) and propagates the Delete.
func (d *Deployment) Unpublish(ctx context.Context, key Key, replica int) error {
	if err := d.rt.Unpublish(ctx, key, replica); err != nil {
		return err
	}
	d.mu.Lock()
	delete(d.published, pubKey{key, replica})
	d.mu.Unlock()
	return nil
}

// SetCapacity adjusts a node's outgoing update capacity fraction (§3.7).
func (d *Deployment) SetCapacity(ctx context.Context, id NodeID, c float64) error {
	return d.rt.SetCapacity(ctx, id, c)
}

// Inspect runs fn with exclusive access to one node's protocol state
// (on the live transport, on that peer's goroutine).
func (d *Deployment) Inspect(id NodeID, fn func(*Node)) error {
	return d.rt.Inspect(id, fn)
}

// Settle blocks until the deployment quiesces (no in-flight traffic).
func (d *Deployment) Settle(ctx context.Context) error { return d.rt.Settle(ctx) }

// Observe attaches a synchronous observer to the event bus; the returned
// function detaches it. Live-transport observers are called from peer
// goroutines concurrently and must be safe for concurrent use. Observers
// run inside the emitting transport and must not call back into the
// Deployment; consume events through Events/Subscribe channels when the
// handler needs the client API.
func (d *Deployment) Observe(obs Observer) (detach func()) { return d.bus.Attach(obs) }

// Events returns a buffered channel carrying every deployment event and
// a cancel function that closes it. Events arriving while the buffer is
// full are dropped for this subscriber (see EventsDropped); on the
// synchronous simulator prefer Observe, which never drops.
func (d *Deployment) Events() (<-chan Event, func()) {
	return d.bus.Subscribe(0, nil)
}

// Subscribe is Events filtered to one key.
func (d *Deployment) Subscribe(key Key) (<-chan Event, func()) {
	return d.bus.Subscribe(0, func(e Event) bool { return e.Key == key })
}

// EventsDropped counts events discarded because a subscriber's buffer
// was full.
func (d *Deployment) EventsDropped() uint64 { return d.bus.Dropped() }

// Run executes the scripted workload to completion and returns the
// aggregated result. On the simulated transport it drives the virtual
// clock through the whole schedule. On the live transport it replays
// the configured scenario in wall-clock time (compressed by
// WithTimeScale): scripted replica births with periodic refreshes, the
// traffic pump, and the fault timeline — so a live deployment without a
// WithTraffic/WithScenario workload still errors, staying interactive.
// With WithTrials(n), either transport runs the workload n times —
// fresh simulations or isolated live networks — and merges the trials'
// counters in trial order.
func (d *Deployment) Run(ctx context.Context) (*Result, error) {
	if sr, ok := d.rt.(*simRuntime); ok {
		if d.trials > 1 {
			return d.runTrials(ctx, d.runSimTrial)
		}
		return sr.run(ctx)
	}
	if d.p.Traffic == nil {
		return nil, fmt.Errorf("cup: Run on a live deployment needs a scenario (WithTraffic or WithScenario); interactive deployments are driven through Lookup/Publish")
	}
	if d.trials > 1 {
		return d.runTrials(ctx, d.runLiveTrial)
	}
	return d.runLiveOn(ctx, d.rt.(*liveRuntime), d.p, d.Publish)
}

// runTrials executes d.trials independent runs of the scripted workload
// — trial is the transport-specific body, handed the trial index — on a
// worker pool, and merges their counters in trial order, so the Result
// does not depend on the parallelism. Each trial is fully isolated
// (derived seed, own simulation or own live network); the deployment's
// own runtime is left untouched. Observers attached to the bus see the
// trials' interleaved event streams.
func (d *Deployment) runTrials(ctx context.Context, trial func(context.Context, int) (*Result, error)) (*Result, error) {
	workers := d.trialWorkers()
	results := make([]*Result, d.trials)
	errs := make([]error, d.trials)
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = trial(tctx, i)
				if errs[i] != nil {
					cancel() // stop handing out further trials
				}
			}
		}()
	}
feed:
	for i := 0; i < d.trials; i++ {
		select {
		case jobs <- i:
		case <-tctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	// Report the trial that actually failed: the cancel() fired on its
	// error also aborts in-flight siblings with context.Canceled, which
	// must not mask the cause. Among real failures, trial order wins.
	var firstErr error
	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		firstErr = err
		break
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	merged := &Result{Params: d.p}
	for _, r := range results {
		if r == nil { // trial never started: ctx cancelled before feed
			return nil, ctx.Err()
		}
		merged.Counters.Add(&r.Counters)
	}
	return merged, nil
}

// trialWorkers resolves the sweep's worker-pool width.
func (d *Deployment) trialWorkers() int {
	workers := d.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.trials {
		workers = d.trials
	}
	return workers
}

// runSimTrial is one simulated trial: a fresh overlay, scheduler, and
// RNG under the trial's derived seed.
func (d *Deployment) runSimTrial(ctx context.Context, trial int) (*Result, error) {
	p := d.p
	p.Seed = internal.TrialSeed(d.p.Seed, trial)
	return internal.NewSimulation(p).RunContext(ctx)
}

// runLiveTrial is one live trial: an isolated network — goroutine or
// TCP, matching the deployment's transport — booted under the trial's
// derived seed (same topology derivation a simulated trial of that
// seed uses), with a per-trial inbox budget carved from the
// deployment's so side-by-side networks cannot overcommit what one
// deployment was provisioned for. TCP trials additionally draw their
// listeners from the process-wide port budget and release them on
// every exit path, including a failed boot mid-sweep. The trial
// network shares nothing with its siblings but the deployment's event
// bus.
func (d *Deployment) runLiveTrial(ctx context.Context, trial int) (*Result, error) {
	p := d.p
	p.Seed = internal.TrialSeed(d.p.Seed, trial)
	cfg := d.liveCfg
	cfg.Seed = p.Seed
	cfg.InboxDepth = live.TrialInboxDepth(cfg.InboxDepth, d.trialWorkers())
	lr := &liveRuntime{cfg: cfg, tcp: d.rt.(*liveRuntime).tcp}
	defer lr.Close()

	// Trial-local Append-vs-Refresh bookkeeping, the per-network mirror
	// of Deployment.Publish's published map; the refresh pump calls it
	// from its own goroutine, hence the lock.
	var mu sync.Mutex
	published := make(map[pubKey]bool)
	publish := func(ctx context.Context, key Key, replica int, addr string, lifetime time.Duration) error {
		mu.Lock()
		refresh := published[pubKey{key, replica}]
		mu.Unlock()
		if err := lr.Publish(ctx, key, replica, addr, lifetime, refresh); err != nil {
			return err
		}
		mu.Lock()
		published[pubKey{key, replica}] = true
		mu.Unlock()
		return nil
	}
	return d.runLiveOn(ctx, lr, p, publish)
}

// runLiveOn is the live transport's scenario runner: the wall-clock
// mirror of the simulator's scripted workload, executed against one
// live network (the deployment's own, or an isolated per-trial one).
// publish carries the caller's Append-vs-Refresh bookkeeping so a trial
// network never touches the deployment's published map.
func (d *Deployment) runLiveOn(ctx context.Context, lr *liveRuntime, p internal.Params,
	publish func(context.Context, Key, int, string, time.Duration) error) (*Result, error) {
	net, err := lr.network()
	if err != nil {
		return nil, err
	}
	scale := d.timeScale
	if scale <= 0 {
		scale = 1
	}

	// Scripted replica births, as the simulator performs at t≈0, plus a
	// refresh pump standing in for the refresh-at-expiration loops.
	keys := make([]Key, p.Keys)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("key-%d", i))
	}
	life := time.Duration(float64(p.Lifetime) / scale * float64(time.Second))
	if life < 100*time.Millisecond {
		life = 100 * time.Millisecond
	}
	for _, k := range keys {
		for r := 0; r < p.Replicas; r++ {
			if err := publish(ctx, k, r, internal.ReplicaAddr(r), life); err != nil {
				// %w keeps context.Canceled visible to the trial sweep's
				// error precedence: a sibling aborted by another trial's
				// real failure must not mask that failure.
				return nil, fmt.Errorf("cup: scenario replica birth %q/%d: %w", k, r, err)
			}
		}
	}
	refreshCtx, stopRefresh := context.WithCancel(ctx)
	defer stopRefresh()
	go func() {
		// Refresh at half the TTL: a refresh issued exactly at expiry
		// would still need to propagate, leaving caches a periodic
		// stale window the simulator's refresh-at-expiration (which is
		// instantaneous at the authority) does not have.
		tick := time.NewTicker(life / 2)
		defer tick.Stop()
		for {
			select {
			case <-refreshCtx.Done():
				return
			case <-tick.C:
			}
			for _, k := range keys {
				for r := 0; r < p.Replicas; r++ {
					// The pacer is the process-wide refresh budget: N
					// concurrent trial networks share one publish rate
					// instead of multiplying open-loop refresh load N×.
					if live.PaceRefresh(refreshCtx) != nil {
						return
					}
					_ = publish(refreshCtx, k, r, internal.ReplicaAddr(r), life)
				}
			}
		}
	}()

	// Workload RNG and popularity map: seeded like the simulator's, so
	// live scenario replays are deterministic in shape.
	rng := rand.New(rand.NewSource(p.Seed))
	env := internal.TrafficEnv{
		Rand:  rng,
		Nodes: net.Size(),
		Keys:  keys,
		PickNode: func() NodeID {
			return NodeID(rng.Intn(net.Size()))
		},
		PickKey:  internal.KeyPicker(rng, keys, p.ZipfSkew),
		ZipfSkew: p.ZipfSkew,
		Rate:     p.QueryRate,
		Start:    float64(p.QueryStart),
		Duration: float64(p.QueryDuration),
	}

	// Fault timeline alongside the traffic pump. A failing fault — an
	// unsupported operation, a churn choreography error — aborts the
	// whole run: it cancels the pump, and its error outranks the pump's
	// resulting context.Canceled. Faults must never silently no-op.
	pumpCtx, stopPump := context.WithCancel(ctx)
	defer stopPump()
	faultCtx, stopFaults := context.WithCancel(ctx)
	defer stopFaults()
	var faultErr error
	faultDone := make(chan struct{})
	if len(p.Faults) > 0 {
		surf := net.FaultSurface(keys, p.Replicas, life, rand.New(rand.NewSource(p.Seed+1)))
		go func() {
			defer close(faultDone)
			if err := net.RunFaults(faultCtx, p.Faults, surf, env.Start, env.Duration, scale); err != nil && !errors.Is(err, context.Canceled) {
				faultErr = err
				stopPump()
			}
		}()
	} else {
		close(faultDone)
	}

	pumpErr := net.PumpTraffic(pumpCtx, p.Traffic, env, scale)
	stopFaults()
	stopRefresh()
	<-faultDone // happens-before edge for faultErr
	if faultErr != nil {
		return nil, faultErr
	}
	if pumpErr != nil {
		return nil, pumpErr
	}
	if err := lr.Settle(ctx); err != nil {
		return nil, err
	}
	return &Result{Params: p, Counters: lr.Counters()}, nil
}

// Keys lists the scripted workload's keys on the simulated transport
// (nil on live deployments, which name their own keys via Publish).
func (d *Deployment) Keys() []Key {
	if sr, ok := d.rt.(*simRuntime); ok {
		return append([]Key(nil), sr.s.Keys...)
	}
	return nil
}

// EventsExecuted reports the discrete events the simulated transport
// has fired so far (summed across scheduler shards); 0 on the live
// transport, whose work has no event granularity.
func (d *Deployment) EventsExecuted() uint64 {
	if sr, ok := d.rt.(*simRuntime); ok {
		sr.mu.Lock()
		defer sr.mu.Unlock()
		return sr.s.EventsExecuted()
	}
	return 0
}

// Now returns the deployment clock: virtual seconds on the simulator,
// wall-clock seconds since boot on the live network (zero before the
// lazily-booted network's first use).
func (d *Deployment) Now() sim.Time {
	switch rt := d.rt.(type) {
	case *simRuntime:
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return rt.s.Now()
	case *liveRuntime:
		if n := rt.peek(); n != nil {
			return n.Now()
		}
		return 0
	default:
		return 0
	}
}

// Close shuts the deployment down, detaches its observers, and closes
// every Events/Subscribe channel so consumers ranging over them
// terminate.
func (d *Deployment) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	detach := d.detach
	d.detach = nil
	d.mu.Unlock()
	for _, f := range detach {
		f()
	}
	// Serving stops before the runtime: its handlers call into rt, and
	// closing the listeners first turns in-flight requests into clean
	// connection errors instead of ErrClosed races.
	if d.serve != nil {
		d.serve.close()
	}
	if d.tele != nil && d.tele.srv != nil {
		_ = d.tele.srv.Close()
	}
	err := d.rt.Close()
	d.bus.CloseSubscribers()
	return err
}

// simRuntime executes a deployment on the discrete-event scheduler. All
// methods serialize on one mutex: the scheduler is single-threaded by
// design, and client calls drive it directly.
type simRuntime struct {
	mu sync.Mutex
	s  *internal.Simulation
}

func (r *simRuntime) Transport() Transport { return Simulated }

func (r *simRuntime) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.s.Nodes)
}

func (r *simRuntime) Authority(key Key) NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Ov.Owner(key)
}

func (r *simRuntime) LookupAt(ctx context.Context, at NodeID, key Key) ([]Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Lookup(ctx, at, key)
}

func (r *simRuntime) Publish(ctx context.Context, key Key, replica int, addr string, lifetime time.Duration, refresh bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ty := Append
	if refresh {
		ty = Refresh
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.PublishReplica(key, replica, addr, sim.Duration(lifetime.Seconds()), ty)
	return nil
}

func (r *simRuntime) Unpublish(ctx context.Context, key Key, replica int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.RemoveReplica(key, replica)
	return nil
}

func (r *simRuntime) SetCapacity(ctx context.Context, id NodeID, c float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s.SetCapacityFraction([]NodeID{id}, c)
	return nil
}

func (r *simRuntime) Inspect(id NodeID, fn func(*Node)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < 0 || int(id) >= len(r.s.Nodes) {
		return fmt.Errorf("cup: inspect of unknown node %v", id)
	}
	fn(r.s.Nodes[id])
	return nil
}

func (r *simRuntime) Settle(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.Settle(ctx)
}

func (r *simRuntime) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.C
}

func (r *simRuntime) Close() error { return nil }

func (r *simRuntime) run(ctx context.Context) (*Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s.RunContext(ctx)
}

// liveRuntime executes a deployment on a live network — goroutine
// peers by default, one OS socket per peer with tcp set. The network
// boots lazily on first use: construction is free, so a multi-trial
// sweep's base runtime (never driven — trials boot their own networks)
// costs nothing, and an interactive deployment pays only when the
// first client call arrives. Both shells implement live.Endpoint, so
// everything past boot is transport-blind.
type liveRuntime struct {
	cfg live.Config
	tcp bool

	mu     sync.Mutex
	n      live.Endpoint
	closed bool
}

// network returns the booted network, booting it on first use. It
// errors when the runtime was closed before ever booting, or — TCP
// only — when the boot itself fails (port budget exhausted, listeners
// unavailable). A failed boot holds no resources and may be retried.
func (r *liveRuntime) network() (live.Endpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == nil && !r.closed {
		if r.tcp {
			tn, err := live.NewTCPNetwork(r.cfg)
			if err != nil {
				return nil, fmt.Errorf("cup: tcp transport: %w", err)
			}
			r.n = tn
		} else {
			r.n = live.NewNetwork(r.cfg)
		}
	}
	if r.n == nil {
		return nil, live.ErrClosed
	}
	return r.n, nil
}

// peek returns the network only if it already booted: reads of
// counters or the clock must not boot a network just to see zeros.
func (r *liveRuntime) peek() live.Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *liveRuntime) Transport() Transport {
	if r.tcp {
		return LiveTCP
	}
	return Live
}

func (r *liveRuntime) Size() int {
	if n, err := r.network(); err == nil {
		return n.Size()
	}
	return 0
}

func (r *liveRuntime) Authority(key Key) NodeID {
	if n, err := r.network(); err == nil {
		return n.Authority(key)
	}
	return 0
}

func (r *liveRuntime) LookupAt(ctx context.Context, at NodeID, key Key) ([]Entry, error) {
	n, err := r.network()
	if err != nil {
		return nil, err
	}
	return n.Lookup(ctx, at, key)
}

func (r *liveRuntime) Publish(ctx context.Context, key Key, replica int, addr string, lifetime time.Duration, refresh bool) error {
	n, err := r.network()
	if err != nil {
		return err
	}
	if refresh {
		return n.RefreshCtx(ctx, key, replica, addr, lifetime)
	}
	return n.AddReplicaCtx(ctx, key, replica, addr, lifetime)
}

func (r *liveRuntime) Unpublish(ctx context.Context, key Key, replica int) error {
	n, err := r.network()
	if err != nil {
		return err
	}
	return n.RemoveReplicaCtx(ctx, key, replica)
}

func (r *liveRuntime) SetCapacity(ctx context.Context, id NodeID, c float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, err := r.network()
	if err != nil {
		return err
	}
	n.SetCapacity(id, c)
	return nil
}

func (r *liveRuntime) Inspect(id NodeID, fn func(*Node)) error {
	n, err := r.network()
	if err != nil {
		return err
	}
	if id < 0 || int(id) >= n.Size() {
		return fmt.Errorf("cup: inspect of unknown node %v", id)
	}
	n.Inspect(id, fn)
	return nil
}

// Settle polls the traffic counters until two consecutive probe windows
// see no new messages. Messages are counted at send time but sleep one
// hop delay in flight before delivery can trigger further sends, so the
// probe window must exceed the hop delay or in-flight traffic would be
// invisible to it. A never-booted network is trivially settled.
func (r *liveRuntime) Settle(ctx context.Context) error {
	n := r.peek()
	if n == nil {
		return nil
	}
	window := 2 * n.HopDelay()
	if window < 15*time.Millisecond {
		window = 15 * time.Millisecond
	}
	for quiet := 0; quiet < 2; {
		if err := ctx.Err(); err != nil {
			return err
		}
		if n.IsClosed() {
			return live.ErrClosed
		}
		if n.Quiesced(window) {
			quiet++
		} else {
			quiet = 0
		}
	}
	return nil
}

// Counters folds the live network's message counts into the hop-count
// fields (one message = one hop): queries into QueryHops, updates into
// UpdateHops, clear-bits into ClearBitHops. The per-query hit/miss
// taxonomy is a simulator-side measurement and stays zero here.
func (r *liveRuntime) Counters() Counters {
	n := r.peek()
	if n == nil {
		return metrics.Counters{}
	}
	st := n.Stats()
	return metrics.Counters{
		QueryHops:    st.QueryMsgs,
		UpdateHops:   st.UpdateMsgs,
		ClearBitHops: st.ClearBitMsgs,
	}
}

func (r *liveRuntime) Close() error {
	r.mu.Lock()
	r.closed = true
	n := r.n
	r.mu.Unlock()
	if n != nil {
		n.Close()
	}
	return nil
}
