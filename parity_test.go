// Sim/live event parity: the same seed, workload, and options must
// produce the same event *sequence shape* — identical query event counts
// and per-kind push/cut-off counts within tolerance — whether the
// deployment runs on the discrete-event scheduler or on goroutines.
// Both transports share one overlay-seed derivation, so the topologies
// are identical; the protocol core emits the events, so any divergence
// here means the transports drifted.
package cup_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cup"
	"cup/internal/overlay"
)

// parityWorkload drives one deployment through a fixed interactive
// script: publish two replicas of two keys, a round of lookups from
// seeded-random peers, two refresh rounds (so proactive pushes travel
// the interest trees and cut-offs fire at leaves), and a final lookup
// round. It returns the per-kind event counts after the network settles.
func parityWorkload(t *testing.T, transport cup.Transport, kind string) map[cup.EventKind]int {
	t.Helper()
	d, err := cup.New(
		cup.WithTransport(transport),
		cup.WithOverlay(kind),
		cup.WithNodes(24),
		cup.WithSeed(7),
		cup.WithoutWorkload(),
		cup.WithHopDelay(500*time.Microsecond),
	)
	if err != nil {
		t.Fatalf("New(%v, %s): %v", transport, kind, err)
	}
	defer d.Close()

	var mu sync.Mutex
	counts := make(map[cup.EventKind]int)
	detach := d.Observe(cup.ObserverFunc(func(e cup.Event) {
		mu.Lock()
		counts[e.Kind]++
		mu.Unlock()
	}))
	defer detach()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	keys := []cup.Key{"alpha", "beta"}
	publish := func() {
		for i, k := range keys {
			for r := 0; r < 2; r++ {
				addr := fmt.Sprintf("198.51.100.%d", 10*i+r+1)
				if err := d.Publish(ctx, k, r, addr, time.Hour); err != nil {
					t.Fatalf("publish %q/%d: %v", k, r, err)
				}
			}
		}
	}
	lookups := func(rng *rand.Rand, n int) {
		for i := 0; i < n; i++ {
			at := cup.NodeID(rng.Intn(d.Size()))
			k := keys[i%len(keys)]
			if _, err := d.LookupAt(ctx, at, k); err != nil {
				t.Fatalf("lookup %q at %v: %v", k, at, err)
			}
		}
	}

	rng := rand.New(rand.NewSource(7))
	publish()        // births: Append updates, no interest yet
	lookups(rng, 12) // build the interest trees
	publish()        // refresh round 1: pushes travel the trees
	publish()        // refresh round 2: leaves with no queries cut off
	lookups(rng, 6)  // post-refresh lookups hit warm caches

	if err := d.Settle(ctx); err != nil {
		t.Fatalf("settle: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	out := make(map[cup.EventKind]int, len(counts))
	for k, v := range counts {
		out[k] = v
	}
	return out
}

// within reports whether a and b agree up to an absolute slack or a
// relative fraction of the larger count.
func within(a, b, abs int, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= abs {
		return true
	}
	m := a
	if b > m {
		m = b
	}
	return float64(d) <= rel*float64(m)
}

func TestSimLiveEventParity(t *testing.T) {
	for _, kind := range overlay.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			simC := parityWorkload(t, cup.Simulated, kind)
			liveC := parityWorkload(t, cup.Live, kind)

			// Client-visible events are exact: every lookup issues one
			// query and receives one answer on either transport.
			for _, k := range []cup.EventKind{cup.EvQueryIssued, cup.EvQueryAnswered} {
				if simC[k] != liveC[k] {
					t.Errorf("%v: sim %d, live %d (must be identical)", k, simC[k], liveC[k])
				}
			}
			if simC[cup.EvQueryIssued] != 18 {
				t.Errorf("query-issued = %d, want 18 (the scripted lookups)", simC[cup.EvQueryIssued])
			}

			// Propagation events race wall-clock delivery on the live
			// transport, so counts carry tolerance — but the refresh
			// rounds must push updates through the trees on both.
			if simC[cup.EvUpdatePushed] == 0 || liveC[cup.EvUpdatePushed] == 0 {
				t.Errorf("no proactive pushes: sim %d, live %d",
					simC[cup.EvUpdatePushed], liveC[cup.EvUpdatePushed])
			}
			for _, k := range []cup.EventKind{cup.EvUpdatePushed, cup.EvCutoffFired} {
				if !within(simC[k], liveC[k], 6, 0.5) {
					t.Errorf("%v: sim %d, live %d (outside tolerance)", k, simC[k], liveC[k])
				}
			}

			// No membership changes in this script.
			if simC[cup.EvNodeJoined]+simC[cup.EvNodeLeft]+liveC[cup.EvNodeJoined]+liveC[cup.EvNodeLeft] != 0 {
				t.Errorf("unexpected membership events: sim %v, live %v", simC, liveC)
			}
		})
	}
}

// The simulated transport is fully deterministic: the same options must
// reproduce the identical event tally, not just a similar shape.
func TestSimulatedEventStreamDeterministic(t *testing.T) {
	a := parityWorkload(t, cup.Simulated, "can")
	b := parityWorkload(t, cup.Simulated, "can")
	for _, k := range cup.EventKinds {
		if a[k] != b[k] {
			t.Fatalf("%v: %d vs %d across identical simulated runs", k, a[k], b[k])
		}
	}
}
