// Sim/live event parity: the same seed, workload, and options must
// produce the same event *sequence shape* — identical query event counts
// and per-kind push/cut-off counts within tolerance — whether the
// deployment runs on the discrete-event scheduler or on goroutines.
// Both transports share one overlay-seed derivation, so the topologies
// are identical; the protocol core emits the events, so any divergence
// here means the transports drifted.
package cup_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cup"
	"cup/internal/overlay"
)

// parityWorkload drives one deployment through a fixed interactive
// script: publish two replicas of two keys, a round of lookups from
// seeded-random peers, two refresh rounds (so proactive pushes travel
// the interest trees and cut-offs fire at leaves), and a final lookup
// round. It returns the per-kind event counts after the network settles.
func parityWorkload(t *testing.T, transport cup.Transport, kind string) map[cup.EventKind]int {
	t.Helper()
	d, err := cup.New(
		cup.WithTransport(transport),
		cup.WithOverlay(kind),
		cup.WithNodes(24),
		cup.WithSeed(7),
		cup.WithoutWorkload(),
		cup.WithHopDelay(500*time.Microsecond),
	)
	if err != nil {
		t.Fatalf("New(%v, %s): %v", transport, kind, err)
	}
	defer d.Close()

	var mu sync.Mutex
	counts := make(map[cup.EventKind]int)
	detach := d.Observe(cup.ObserverFunc(func(e cup.Event) {
		mu.Lock()
		counts[e.Kind]++
		mu.Unlock()
	}))
	defer detach()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	keys := []cup.Key{"alpha", "beta"}
	publish := func() {
		for i, k := range keys {
			for r := 0; r < 2; r++ {
				addr := fmt.Sprintf("198.51.100.%d", 10*i+r+1)
				if err := d.Publish(ctx, k, r, addr, time.Hour); err != nil {
					t.Fatalf("publish %q/%d: %v", k, r, err)
				}
			}
		}
	}
	lookups := func(rng *rand.Rand, n int) {
		for i := 0; i < n; i++ {
			at := cup.NodeID(rng.Intn(d.Size()))
			k := keys[i%len(keys)]
			if _, err := d.LookupAt(ctx, at, k); err != nil {
				t.Fatalf("lookup %q at %v: %v", k, at, err)
			}
		}
	}

	rng := rand.New(rand.NewSource(7))
	publish()        // births: Append updates, no interest yet
	lookups(rng, 12) // build the interest trees
	publish()        // refresh round 1: pushes travel the trees
	publish()        // refresh round 2: leaves with no queries cut off
	lookups(rng, 6)  // post-refresh lookups hit warm caches

	if err := d.Settle(ctx); err != nil {
		t.Fatalf("settle: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	out := make(map[cup.EventKind]int, len(counts))
	for k, v := range counts {
		out[k] = v
	}
	return out
}

// within reports whether a and b agree up to an absolute slack or a
// relative fraction of the larger count.
func within(a, b, abs int, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= abs {
		return true
	}
	m := a
	if b > m {
		m = b
	}
	return float64(d) <= rel*float64(m)
}

func TestSimLiveEventParity(t *testing.T) {
	for _, kind := range overlay.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			simC := parityWorkload(t, cup.Simulated, kind)
			liveC := parityWorkload(t, cup.Live, kind)

			// Client-visible events are exact: every lookup issues one
			// query and receives one answer on either transport.
			for _, k := range []cup.EventKind{cup.EvQueryIssued, cup.EvQueryAnswered} {
				if simC[k] != liveC[k] {
					t.Errorf("%v: sim %d, live %d (must be identical)", k, simC[k], liveC[k])
				}
			}
			if simC[cup.EvQueryIssued] != 18 {
				t.Errorf("query-issued = %d, want 18 (the scripted lookups)", simC[cup.EvQueryIssued])
			}

			// Propagation events race wall-clock delivery on the live
			// transport, so counts carry tolerance — but the refresh
			// rounds must push updates through the trees on both.
			if simC[cup.EvUpdatePushed] == 0 || liveC[cup.EvUpdatePushed] == 0 {
				t.Errorf("no proactive pushes: sim %d, live %d",
					simC[cup.EvUpdatePushed], liveC[cup.EvUpdatePushed])
			}
			for _, k := range []cup.EventKind{cup.EvUpdatePushed, cup.EvCutoffFired} {
				if !within(simC[k], liveC[k], 6, 0.5) {
					t.Errorf("%v: sim %d, live %d (outside tolerance)", k, simC[k], liveC[k])
				}
			}

			// No membership changes in this script.
			if simC[cup.EvNodeJoined]+simC[cup.EvNodeLeft]+liveC[cup.EvNodeJoined]+liveC[cup.EvNodeLeft] != 0 {
				t.Errorf("unexpected membership events: sim %v, live %v", simC, liveC)
			}
		})
	}
}

// goldenPoisson holds the exact counters the pre-Scenario driver (with
// its embedded Poisson loop) produced for Nodes=256, λ=5, 600 s of
// querying, seed 3 — captured before the Traffic refactor. The Scenario
// API inverted the driver's control flow (queries are now externally
// supplied Traffic events), and these anchors hold that inversion to
// bit-identical behavior on every overlay.
//
// Re-captured when overlay.hash64 gained its splitmix64 finalizer: raw
// FNV-1a clustered sequential key names onto near-identical points, so
// fixing key dispersion moved every authority assignment (and with it
// the exact counter values). The invariant the test protects — the
// Params path and the Traffic API agreeing bit-for-bit with one
// recorded run — is unchanged.
var goldenPoisson = map[string]cup.Counters{
	"can": {Queries: 2963, Hits: 2803, FirstTimeMisses: 144, FreshnessMisses: 16,
		Coalesced: 4, QueryHops: 282, ResponseHops: 282, UpdateHops: 803,
		ClearBitHops: 25, UpdatesOriginated: 4, JustifiedUpdates: 382,
		UnjustifiedUpdates: 43, MissLatencyTotal: 58.99842792237388, MissesServed: 160},
	"chord": {Queries: 2963, Hits: 2765, FirstTimeMisses: 192, FreshnessMisses: 6,
		Coalesced: 1, QueryHops: 265, ResponseHops: 265, UpdateHops: 774,
		ClearBitHops: 5, UpdatesOriginated: 4, JustifiedUpdates: 429,
		UnjustifiedUpdates: 47, MissLatencyTotal: 52.83720532011665, MissesServed: 198},
	"kademlia": {Queries: 2963, Hits: 2728, FirstTimeMisses: 232, FreshnessMisses: 3,
		QueryHops: 259, ResponseHops: 259, UpdateHops: 770,
		ClearBitHops: 2, UpdatesOriginated: 4, JustifiedUpdates: 438,
		UnjustifiedUpdates: 48, MissLatencyTotal: 51.67996909795119, MissesServed: 235},
}

// Scenario-API parity: the same seed driven through the public Traffic
// interface (cup.New + WithTraffic(PoissonTraffic)) must reproduce
// bit-identical counters to the compatibility Params path — and both
// must match the counters the pre-refactor embedded driver loop
// produced.
func TestPoissonTrafficBitIdenticalToDriverPath(t *testing.T) {
	for kind, want := range goldenPoisson {
		kind, want := kind, want
		t.Run(kind, func(t *testing.T) {
			legacy := cup.Run(cup.Params{
				Nodes: 256, OverlayKind: kind, QueryRate: 5, QueryDuration: 600, Seed: 3,
			})
			if legacy.Counters != want {
				t.Errorf("Params path drifted from the pre-Scenario driver:\n got  %+v\n want %+v",
					legacy.Counters, want)
			}

			d, err := cup.New(
				cup.WithTraffic(cup.PoissonTraffic(5)),
				cup.WithNodes(256),
				cup.WithOverlay(kind),
				cup.WithQueryRate(5),
				cup.WithQueryDuration(600*time.Second),
				cup.WithSeed(3),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			res, err := d.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters != want {
				t.Errorf("Traffic API drifted from the pre-Scenario driver:\n got  %+v\n want %+v",
					res.Counters, want)
			}
		})
	}
}

// The default rate fallback (PoissonTraffic(0) → configured query rate)
// and the nil-Traffic default must land on the same schedule too.
func TestPoissonTrafficRateFallback(t *testing.T) {
	run := func(opts ...cup.Option) cup.Counters {
		base := []cup.Option{
			cup.WithNodes(64),
			cup.WithQueryRate(3),
			cup.WithQueryDuration(300 * time.Second),
			cup.WithSeed(9),
		}
		d, err := cup.New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		res, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	implicit := run()
	explicit := run(cup.WithTraffic(cup.PoissonTraffic(3)))
	fallback := run(cup.WithTraffic(cup.PoissonTraffic(0)))
	if implicit != explicit || implicit != fallback {
		t.Fatalf("Poisson paths diverged:\n nil      %+v\n explicit %+v\n fallback %+v",
			implicit, explicit, fallback)
	}
}

// The simulated transport is fully deterministic: the same options must
// reproduce the identical event tally, not just a similar shape.
func TestSimulatedEventStreamDeterministic(t *testing.T) {
	a := parityWorkload(t, cup.Simulated, "can")
	b := parityWorkload(t, cup.Simulated, "can")
	for _, k := range cup.EventKinds {
		if a[k] != b[k] {
			t.Fatalf("%v: %d vs %d across identical simulated runs", k, a[k], b[k])
		}
	}
}
