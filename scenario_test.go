// Tests of the public Scenario API: the registry, option validation,
// and end-to-end scenario execution on both transports.
package cup_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"cup"
)

func TestScenarioRegistryCatalog(t *testing.T) {
	names := cup.ScenarioNames()
	for _, want := range []string{"paper", "flashcrowd", "diurnal", "zipf-drift", "closed-loop", "capacity", "churn", "replica-churn"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scenario %q missing from registry %v", want, names)
		}
	}
	if _, err := cup.BuildScenario("no-such-scenario"); err == nil {
		t.Error("unknown scenario built without error")
	}
	sc, err := cup.BuildScenario("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "flashcrowd" || sc.Traffic == nil {
		t.Fatalf("flashcrowd scenario = %+v", sc)
	}
}

func TestRegisterScenarioRejectsDuplicates(t *testing.T) {
	cup.RegisterScenario("test-dup", func() cup.Scenario { return cup.Scenario{} })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	cup.RegisterScenario("test-dup", func() cup.Scenario { return cup.Scenario{} })
}

// Options validation: New must reject nonsense descriptively rather than
// building a deployment that panics later.
func TestNewRejectsInvalidOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  cup.Option
		frag string // expected error fragment
	}{
		{"negative nodes", cup.WithNodes(-3), "node count"},
		{"zero nodes", cup.WithNodes(0), "node count"},
		{"negative keys", cup.WithKeys(-1), "key count"},
		{"zero keys", cup.WithKeys(0), "key count"},
		{"zero rate", cup.WithQueryRate(0), "query rate"},
		{"negative rate", cup.WithQueryRate(-2), "query rate"},
		{"negative replicas", cup.WithReplicas(-1), "replica count"},
		{"zero lifetime", cup.WithLifetime(0), "lifetime"},
		{"negative zipf", cup.WithZipf(-0.5), "Zipf skew"},
		{"negative hop", cup.WithHopDelay(-time.Second), "hop delay"},
		{"zero duration", cup.WithQueryDuration(0), "query duration"},
		{"negative window", cup.WithQueryWindow(-time.Second, time.Second), "query window"},
		{"zero inbox", cup.WithInboxDepth(0), "inbox depth"},
		{"zero timescale", cup.WithTimeScale(0), "time scale"},
		{"nil traffic", cup.WithTraffic(nil), "WithTraffic"},
		{"nil fault", cup.WithFaults(nil), "nil fault"},
		{"unknown overlay", cup.WithOverlay("no-such-overlay"), "unknown overlay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cup.New(tc.opt)
			if err == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// All option errors must surface together, not first-error-wins.
func TestNewAggregatesValidationErrors(t *testing.T) {
	_, err := cup.New(cup.WithNodes(-1), cup.WithQueryRate(-1), cup.WithKeys(-1))
	if err == nil {
		t.Fatal("no error for triple-invalid options")
	}
	for _, frag := range []string{"node count", "query rate", "key count"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("aggregated error %q missing %q", err, frag)
		}
	}
}

// Every registered scenario must run end to end on the simulated
// transport and produce queries.
func TestAllScenariosRunSimulated(t *testing.T) {
	for _, name := range cup.ScenarioNames() {
		if strings.HasPrefix(name, "test-") {
			continue // registry fixtures from other tests
		}
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := cup.BuildScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := cup.New(
				cup.WithNodes(64),
				cup.WithKeys(3),
				cup.WithQueryRate(4),
				cup.WithQueryDuration(300*time.Second),
				cup.WithSeed(5),
				cup.WithScenario(sc),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			res, err := d.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.Queries == 0 {
				t.Fatal("scenario produced no queries")
			}
		})
	}
}

// The same scenarios must replay on the live transport: wall-clock
// traffic pump, scripted replica births, fault timeline.
func TestScenariosRunLive(t *testing.T) {
	for _, name := range []string{"flashcrowd", "diurnal", "capacity", "closed-loop"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := cup.BuildScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := cup.New(
				cup.WithTransport(cup.Live),
				cup.WithNodes(16),
				cup.WithKeys(2),
				cup.WithQueryRate(20),
				cup.WithQueryWindow(2*time.Second, 20*time.Second),
				cup.WithHopDelay(200*time.Microsecond),
				cup.WithSeed(5),
				cup.WithTimeScale(20), // 22 scenario seconds ≈ 1.1 s wall
				cup.WithScenario(sc),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := d.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.TotalCost() == 0 {
				t.Fatal("live scenario moved no messages")
			}
		})
	}
}

// A live deployment without a scenario stays interactive: Run errors.
func TestLiveRunStillNeedsScenario(t *testing.T) {
	d, err := cup.New(cup.WithTransport(cup.Live), cup.WithNodes(8))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Run(context.Background()); err == nil {
		t.Fatal("live Run without a scenario must error")
	}
}

// A cancelled context must stop a live scenario run promptly.
func TestLiveScenarioHonorsContext(t *testing.T) {
	d, err := cup.New(
		cup.WithTransport(cup.Live),
		cup.WithNodes(8),
		cup.WithQueryWindow(time.Second, time.Hour),
		cup.WithTraffic(cup.PoissonTraffic(1)),
		cup.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := d.Run(ctx); err == nil {
		t.Fatal("hour-long live scenario returned before its window without error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// WithFaults composes with the default traffic on the simulator and
// changes the run (capacity loss reduces update propagation).
func TestWithFaultsComposes(t *testing.T) {
	run := func(opts ...cup.Option) cup.Counters {
		base := []cup.Option{
			cup.WithNodes(64),
			cup.WithQueryRate(2),
			cup.WithQueryDuration(600 * time.Second),
			cup.WithSeed(7),
		}
		d, err := cup.New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		res, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	full := run()
	faulted := run(cup.WithFaults(cup.CapacityFault{Capacity: 0}))
	if faulted.UpdateHops >= full.UpdateHops {
		t.Fatalf("capacity fault did not reduce update hops: %d vs %d",
			faulted.UpdateHops, full.UpdateHops)
	}
}
