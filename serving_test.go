package cup_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cup"
	"cup/client"
)

// servingDeployment boots a live deployment with the HTTP serving layer
// on a free port.
func servingDeployment(t *testing.T, opts ...cup.Option) *cup.Deployment {
	t.Helper()
	base := []cup.Option{
		cup.WithLive(),
		cup.WithNodes(16),
		cup.WithHopDelay(2 * time.Millisecond),
		cup.WithSeed(7),
		cup.WithServing("127.0.0.1:0"),
		cup.WithTelemetry(""),
	}
	d, err := cup.New(append(base, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func TestServingEndToEnd(t *testing.T) {
	d := servingDeployment(t)
	addrs := d.ServingAddrs()
	if len(addrs) != 1 {
		t.Fatalf("ServingAddrs = %v, want one bound address", addrs)
	}
	base := "http://" + addrs[0]

	// Cold GET misses with 404.
	resp, err := http.Get(base + "/v1/key/k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold GET = %d, want 404", resp.StatusCode)
	}

	// PUT publishes into the deployment; GET then hits.
	body, _ := json.Marshal(map[string]any{"replica": 0, "addr": "198.51.100.9", "ttl_s": 300.0})
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/key/k", bytes.NewReader(body))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/key/k")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET = %d (%s), want 200", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "198.51.100.9") {
		t.Fatalf("GET body %q missing the published address", raw)
	}

	// The published entry is visible through the native client API too:
	// the serving layer and the Go API share one deployment.
	entries, err := d.LookupAt(context.Background(), 0, "k")
	if err != nil || len(entries) == 0 {
		t.Fatalf("LookupAt after HTTP PUT = %v, %v", entries, err)
	}

	// DELETE unpublishes; polls because the Delete propagates.
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/key/k?replica=0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}

	// Serving metrics are visible on the same listener (shared mux).
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"cup_serve_hits_total", "cup_serve_misses_total", "cup_http_requests_total"} {
		if !strings.Contains(string(raw), series) {
			t.Errorf("/metrics on the serving address missing %s", series)
		}
	}
}

// TestServingFlashCrowdHerd is the flash-crowd regression: N clients
// miss the same cold key at once, and CUP's query coalescing must turn
// the herd into exactly one upstream query; the promise protocol must
// elect exactly one populator; every client then observes the value.
func TestServingFlashCrowdHerd(t *testing.T) {
	// A generous hop delay widens the pending-query window, so all N
	// concurrent misses reliably land while the first query is in
	// flight.
	d := servingDeployment(t, cup.WithHopDelay(40*time.Millisecond))
	base := "http://" + d.ServingAddrs()[0]

	// Pick a key whose serving entry node is not its authority: the miss
	// query then actually travels, leaving a coalescing window at the
	// entry node (an authority answers its own queries instantly).
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("herd-%d", i)
		if d.ServingEntryNode(cup.Key(k)) != d.Authority(cup.Key(k)) {
			key = k
			break
		}
	}

	before, _ := d.MetricValue("cup_queries_coalesced_total", cup.MetricLabel{Key: "source", Value: "local"})

	const N = 8
	var wg sync.WaitGroup
	gate := make(chan struct{})
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			resp, err := http.Get(base + "/v1/key/" + key)
			if err != nil {
				t.Errorf("herd GET %d: %v", i, err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusNotFound {
			t.Fatalf("herd GET %d = %d, want 404 on the cold key", i, code)
		}
	}

	// The single-flight proof: N concurrent misses for one key at one
	// entry node coalesce onto one pending query — N-1 absorbed locally.
	after, ok := d.MetricValue("cup_queries_coalesced_total", cup.MetricLabel{Key: "source", Value: "local"})
	if !ok {
		t.Fatal("coalesced metric missing")
	}
	if got := after - before; got != N-1 {
		t.Fatalf("locally coalesced queries = %g, want exactly %d (one origin lookup for %d misses)", got, N-1, N)
	}
	if misses, _ := d.MetricValue("cup_serve_misses_total"); misses != N {
		t.Fatalf("cup_serve_misses_total = %g, want %d", misses, N)
	}

	// Promise storm: the herd's clients race for the population lease.
	statuses := make([]int, N)
	wg = sync.WaitGroup{}
	gate = make(chan struct{})
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			resp, err := http.Post(base+"/v1/key/"+key+"/promise", "application/json", nil)
			if err != nil {
				t.Errorf("promise %d: %v", i, err)
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusConflict && resp.Header.Get("Retry-After") == "" {
				t.Errorf("promise %d: 409 without Retry-After", i)
			}
		}(i)
	}
	close(gate)
	wg.Wait()
	granted, busy := 0, 0
	for _, s := range statuses {
		switch s {
		case http.StatusAccepted:
			granted++
		case http.StatusConflict:
			busy++
		}
	}
	if granted != 1 || busy != N-1 {
		t.Fatalf("promise storm: %d granted, %d busy; want exactly 1 and %d", granted, busy, N-1)
	}
	if v, _ := d.MetricValue("cup_serve_promises_total", cup.MetricLabel{Key: "outcome", Value: "granted"}); v != 1 {
		t.Fatalf("granted promise counter = %g, want 1", v)
	}

	// The grantee populates; every client eventually observes the value
	// (the Append propagates through the interest tree to the entry
	// node).
	body, _ := json.Marshal(map[string]any{"replica": 0, "addr": "203.0.113.77", "ttl_s": 300.0})
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/key/"+key, bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("grantee PUT = %d, want 204", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/key/" + key)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && strings.Contains(string(raw), "203.0.113.77") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("populated key never became readable: last %d %q", resp.StatusCode, raw)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A second promise round now reports the key present.
	resp, err = http.Post(base+"/v1/key/"+key+"/promise", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "present") {
		t.Fatalf("post-populate promise = %d %q, want 200 present", resp.StatusCode, raw)
	}
}

// TestServingSmartClientAgainstDeployment drives the real smart client
// against a real live deployment end to end.
func TestServingSmartClientAgainstDeployment(t *testing.T) {
	// Three listeners on one deployment stand in for a host fleet.
	d, err := cup.New(
		cup.WithLive(),
		cup.WithNodes(16),
		cup.WithHopDelay(2*time.Millisecond),
		cup.WithSeed(7),
		cup.WithServing("127.0.0.1:0", "127.0.0.1:0"),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	// ":0" twice would dedupe as one configured address; distinct
	// loopback strings bind distinct listeners.
	addrs := d.ServingAddrs()
	if len(addrs) != 1 {
		t.Fatalf("ServingAddrs = %v: identical \"127.0.0.1:0\" strings dedupe to one listener", addrs)
	}

	c, err := client.New(client.Config{Hosts: addrs, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	if err := c.Put(ctx, "alpha", client.Entry{Replica: 0, Addr: "198.51.100.1", TTL: 300}, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	entries, err := c.Get(ctx, "alpha")
	if err != nil || len(entries) == 0 {
		t.Fatalf("Get = %v, %v", entries, err)
	}
	entries, err = c.GetOrFill(ctx, "beta", func(context.Context) (client.Entry, time.Duration, error) {
		return client.Entry{Replica: 0, Addr: "198.51.100.2", TTL: 300}, 5 * time.Minute, nil
	})
	if err != nil || len(entries) == 0 {
		t.Fatalf("GetOrFill = %v, %v", entries, err)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Promises != 1 {
		t.Fatalf("client stats = %+v, want hits > 0 and exactly one promise grant", st)
	}
}

func TestServingSharesTelemetryListener(t *testing.T) {
	// One configured address claimed by both features binds once and
	// serves both surfaces.
	d, err := cup.New(
		cup.WithLive(),
		cup.WithNodes(8),
		cup.WithHopDelay(time.Millisecond),
		cup.WithServing("127.0.0.1:0"),
		cup.WithTelemetry("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	addrs := d.ServingAddrs()
	if len(addrs) != 1 {
		t.Fatalf("ServingAddrs = %v", addrs)
	}
	if got := d.TelemetryAddr(); got != addrs[0] {
		t.Fatalf("TelemetryAddr = %q, want the shared serving listener %q", got, addrs[0])
	}
	for _, path := range []string{"/metrics", "/v1/key/x"} {
		resp, err := http.Get("http://" + addrs[0] + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotImplemented {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestServingOnSimulatedTransport(t *testing.T) {
	// The serving layer is transport-agnostic: a simulated deployment
	// (no live network, no inbox load signal) serves the same API.
	d, err := cup.New(
		cup.WithoutWorkload(),
		cup.WithNodes(16),
		cup.WithSeed(3),
		cup.WithServing("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer d.Close()
	base := "http://" + d.ServingAddrs()[0]
	body, _ := json.Marshal(map[string]any{"replica": 0, "addr": "a", "ttl_s": 60.0})
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/key/simk", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/key/simk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
}

func TestWithServingValidation(t *testing.T) {
	if _, err := cup.New(cup.WithServing()); err == nil {
		t.Fatal("WithServing() with no addresses succeeded")
	}
	if _, err := cup.New(cup.WithServing("")); err == nil {
		t.Fatal("WithServing(\"\") succeeded")
	}
}
