package cup

import (
	"context"
	"fmt"
	"sync"
	"time"

	internal "cup/internal/cup"
	"cup/internal/live"
	"cup/internal/obs"
	"cup/internal/serve"
	"cup/internal/sim"
)

// WithServing mounts the HTTP serving layer (internal/serve) on the
// deployment: GET/PUT/DELETE /v1/key/{key} and POST
// /v1/key/{key}/promise, served on every listed address (":0" picks
// free ports; read them back via ServingAddrs). A GET miss funnels into
// CUP's query path at a deterministic per-key entry node, so the
// protocol's query coalescing is the server-side thundering-herd
// guard; the promise endpoint exposes justcache-style miss
// coordination (202 you-populate / 409 someone-else-is + Retry-After)
// to smart clients (package cup/client).
//
// Serving and telemetry share listeners: an address named by both
// WithServing and WithTelemetry is bound once and serves /metrics,
// /trace, /debug/pprof, and /v1/* together. Serving addresses always
// expose the metrics endpoints — the serving counters live on the same
// registry — even without WithTelemetry.
func WithServing(addrs ...string) Option {
	return func(o *options) {
		if len(addrs) == 0 {
			o.reject("WithServing needs at least one listen address")
			return
		}
		for _, a := range addrs {
			if a == "" {
				o.reject("WithServing got an empty listen address")
				return
			}
		}
		o.serving = append(o.serving, addrs...)
	}
}

// WithAdmitRate shapes the serving layer's write-path token bucket:
// rate tokens/s with the given burst depth. Zero values keep the shared
// defaults (DefaultAdmitRate, DefaultAdmitBurst in internal/cup); a
// negative rate disables admission control entirely. Only meaningful
// together with WithServing.
func WithAdmitRate(rate float64, burst int) Option {
	return func(o *options) {
		o.admitRate = rate
		o.admitBurst = burst
	}
}

// serving bundles the per-deployment serving-layer state.
type serving struct {
	srv       *serve.Server
	reg       *obs.Registry
	listeners []*obs.Server
	budgeted  int
}

// deploymentBackend adapts a Deployment to the serve.Backend surface.
type deploymentBackend struct{ d *Deployment }

func (b deploymentBackend) Size() int     { return b.d.Size() }
func (b deploymentBackend) Now() sim.Time { return b.d.Now() }

func (b deploymentBackend) LookupAt(ctx context.Context, at NodeID, key Key) ([]Entry, error) {
	return b.d.LookupAt(ctx, at, key)
}

func (b deploymentBackend) Publish(ctx context.Context, key Key, replica int, addr string, lifetime time.Duration) error {
	return b.d.Publish(ctx, key, replica, addr, lifetime)
}

func (b deploymentBackend) Unpublish(ctx context.Context, key Key, replica int) error {
	return b.d.Unpublish(ctx, key, replica)
}

// Load reports live inbox occupancy for the shedding guard; simulated
// deployments (and never-booted lazy networks) report unknown.
func (b deploymentBackend) Load() (used, capacity int) {
	if lr, ok := b.d.rt.(*liveRuntime); ok {
		if n := lr.peek(); n != nil {
			return n.InboxLoad()
		}
	}
	return 0, 0
}

// initServing builds the serving layer and binds its listeners. Called
// from New after telemetry, so the serving metrics land on the
// telemetry registry when both are enabled.
func (d *Deployment) initServing(o *options) error {
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if d.tele != nil {
		reg = d.tele.reg
		tracer = d.tele.tracer
	}
	srv, err := serve.New(serve.Config{
		Backend:    deploymentBackend{d},
		Registry:   reg,
		AdmitRate:  o.admitRate,
		AdmitBurst: o.admitBurst,
	})
	if err != nil {
		return fmt.Errorf("cup: serving: %w", err)
	}
	sv := &serving{srv: srv, reg: reg}

	// One mux per distinct address; telemetry endpoints ride along on
	// every serving address. HTTP listeners draw from the same
	// process-wide budget as live TCP runtime ports, so parallel
	// deployments cannot overcommit the loopback range.
	addrs := dedupeAddrs(o.serving)
	if err := live.AcquireListeners(len(addrs)); err != nil {
		_ = srv.Close()
		return fmt.Errorf("cup: serving: %w", err)
	}
	sv.budgeted = len(addrs)
	for _, addr := range addrs {
		mux := obs.NewMux(reg, tracer)
		srv.Register(mux)
		ln, err := obs.Serve(addr, mux)
		if err != nil {
			sv.close()
			return fmt.Errorf("cup: serving: %w", err)
		}
		sv.listeners = append(sv.listeners, ln)
		// The telemetry address, when it names a serving listener, is
		// served here rather than by a second server on the same port.
		if d.tele != nil && d.tele.srv == nil && o.telemetryAddr == addr {
			d.tele.srv = ln
		}
	}
	d.serve = sv
	return nil
}

// close tears the serving layer down: listeners drain first (new
// connections refused immediately, in-flight requests given a bounded
// deadline to complete — they still reach the runtime, which closes
// after us), then the promise janitor, then the port budget. A request
// still running at the deadline is force-closed so the ports release
// either way.
func (s *serving) close() {
	ctx, cancel := context.WithTimeout(context.Background(), internal.DefaultServeDrainTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, ln := range s.listeners {
		ln := ln
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ln.Shutdown(ctx)
		}()
	}
	wg.Wait()
	_ = s.srv.Close()
	if s.budgeted > 0 {
		live.ReleaseListeners(s.budgeted)
		s.budgeted = 0
	}
}

// ServingAddrs returns the bound serving addresses (useful with
// WithServing(":0")), or nil when the serving layer is not enabled.
func (d *Deployment) ServingAddrs() []string {
	if d.serve == nil {
		return nil
	}
	out := make([]string, len(d.serve.listeners))
	for i, ln := range d.serve.listeners {
		out[i] = ln.Addr()
	}
	return out
}

// ServingEntryNode reports which peer a served GET for key enters the
// overlay at — the node whose pending-first-update flag coalesces a
// miss storm for the key (see serve.EntryNode).
func (d *Deployment) ServingEntryNode(key Key) NodeID {
	return serve.EntryNode(key, d.Size())
}

// addrClaimedByServing reports whether addr is among the WithServing
// addresses, i.e. initServing will bind (or has bound) it.
func addrClaimedByServing(o *options, addr string) bool {
	for _, a := range o.serving {
		if a == addr {
			return true
		}
	}
	return false
}

// dedupeAddrs drops duplicate listen addresses, preserving order.
func dedupeAddrs(addrs []string) []string {
	seen := make(map[string]bool, len(addrs))
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
