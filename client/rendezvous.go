package client

import (
	"hash/fnv"
	"sort"
)

// rendezvous ranking (highest-random-weight hashing): every client
// computes, independently and without coordination, the same host
// ordering for a key by scoring each (host, key) pair with a hash and
// sorting descending. The top-ranked host is the key's primary; the
// next Fanout-1 are its replicas. Adding or removing a host reshuffles
// only the keys that ranked that host first — the property that lets a
// fleet of independent smart clients agree where a key lives.

// score hashes one (host, key) pair. The FNV digest alone is not
// enough: FNV-1a barely avalanches its trailing bytes, so short keys
// ("a0" vs "b0") would produce near-identical host orderings and
// funnel whole keyspaces onto one primary. The splitmix64 finalizer
// diffuses every input bit across the word before comparison.
func score(host, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(host))
	_, _ = h.Write([]byte{0}) // separate host from key so "ab"+"c" != "a"+"bc"
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a bijective
// avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rank returns hosts ordered by descending rendezvous score for key.
// Ties (only possible with duplicate host strings) break on host order,
// keeping the ranking total and deterministic.
func rank(hosts []string, key string) []string {
	type scored struct {
		host string
		s    uint64
	}
	ranked := make([]scored, len(hosts))
	for i, h := range hosts {
		ranked[i] = scored{host: h, s: score(h, key)}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.host
	}
	return out
}
