// Package client is the smart half of CUP's serving layer, in the
// justcache mold: servers (cmd/cupd, internal/serve) stay small and
// dumb, and every caching decision lives here — rendezvous hashing
// over the host set, primary/replica selection, serial reads in
// rendezvous order, best-effort write-back to the primary, promise-based
// miss coordination (202 "you populate" / 409 "someone else is" /
// Retry-After), and bounded retry with jittered exponential backoff.
//
// A Client is safe for concurrent use; the load generator (cmd/cupload)
// drives one from hundreds of goroutines.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	cupcore "cup/internal/cup"
	"cup/internal/serve"
)

// Entry is one index entry as served over HTTP (see serve.EntryJSON).
type Entry = serve.EntryJSON

// Sentinel results of the read path.
var (
	// ErrMiss: every ranked host missed and no fill was supplied.
	ErrMiss = errors.New("client: miss on every ranked host")
	// ErrBusy: another client held the population promise through every
	// retry round.
	ErrBusy = errors.New("client: population promise busy after retries")
)

// Config parameterizes a Client. Zero values fall back to the shared
// defaults table in internal/cup (DefaultClientFanout and friends), the
// same table the server's Retry-After arithmetic reads.
type Config struct {
	// Hosts is the server set ("host:port"; a scheme is prepended when
	// absent). Required, at least one.
	Hosts []string
	// Fanout is the rendezvous N: primary + N-1 replicas per key.
	Fanout int
	// Retries bounds GetOrFill's promise-wait rounds.
	Retries int
	// Backoff and BackoffCap shape the jittered exponential backoff
	// between rounds.
	Backoff    time.Duration
	BackoffCap time.Duration
	// HTTP overrides the transport (default: keep-alive pooled client
	// sized for load generation).
	HTTP *http.Client
	// Seed drives the backoff jitter (default 1, deterministic).
	Seed int64
	// WriteBack disables best-effort primary write-back when false...
	// it defaults to true via New.
	WriteBack bool
}

// Stats counts one client's traffic, readable concurrently.
type Stats struct {
	Hits       uint64 // GETs answered 200 by some ranked host
	Misses     uint64 // read paths that exhausted every ranked host
	Promises   uint64 // 202 grants this client won
	Busy       uint64 // 409 rounds waited out
	WriteBacks uint64 // best-effort primary write-backs issued
	Dropped    uint64 // write-backs dropped because the queue was full
	Errors     uint64 // transport or non-protocol HTTP failures
}

// Client implements the smart-client semantics over a host set.
type Client struct {
	hosts   []string
	fanout  int
	retries int
	backoff time.Duration
	cap     time.Duration
	http    *http.Client

	mu  sync.Mutex
	rng *rand.Rand

	stats struct {
		hits, misses, promises, busy, writeBacks, dropped, errors atomic.Uint64
	}

	wb     chan writeBack
	wbOnce sync.Once
	wbDone chan struct{}
	wbWG   sync.WaitGroup
}

// writeBack is one queued best-effort primary population.
type writeBack struct {
	host string
	key  string
	e    Entry
}

// New validates cfg and builds a Client. Callers should Close it to
// stop the write-back worker.
func New(cfg Config) (*Client, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("client: Config.Hosts must name at least one server")
	}
	hosts := make([]string, len(cfg.Hosts))
	for i, h := range cfg.Hosts {
		if h == "" {
			return nil, fmt.Errorf("client: empty host at index %d", i)
		}
		hosts[i] = h
	}
	fanout := cfg.Fanout
	if fanout < 0 {
		return nil, fmt.Errorf("client: fanout %d must be non-negative (0 = default)", fanout)
	}
	if fanout == 0 {
		fanout = cupcore.DefaultClientFanout
	}
	if fanout > len(hosts) {
		fanout = len(hosts)
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = cupcore.DefaultClientRetries
	}
	backoff := cfg.Backoff
	if backoff == 0 {
		backoff = cupcore.DefaultClientBackoff
	}
	capd := cfg.BackoffCap
	if capd == 0 {
		capd = cupcore.DefaultClientBackoffCap
	}
	hc := cfg.HTTP
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 0 // unlimited pool: the load generator reuses thousands
		tr.MaxIdleConnsPerHost = 1024
		hc = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cupcore.DefaultSeed
	}
	c := &Client{
		hosts:   hosts,
		fanout:  fanout,
		retries: retries,
		backoff: backoff,
		cap:     capd,
		http:    hc,
		rng:     rand.New(rand.NewSource(seed)),
		wb:      make(chan writeBack, 256),
		wbDone:  make(chan struct{}),
	}
	c.wbWG.Add(1)
	go c.writeBackLoop()
	return c, nil
}

// Close stops the write-back worker; queued write-backs are dropped
// (they are best-effort by contract).
func (c *Client) Close() error {
	c.wbOnce.Do(func() { close(c.wbDone) })
	c.wbWG.Wait()
	return nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Hits:       c.stats.hits.Load(),
		Misses:     c.stats.misses.Load(),
		Promises:   c.stats.promises.Load(),
		Busy:       c.stats.busy.Load(),
		WriteBacks: c.stats.writeBacks.Load(),
		Dropped:    c.stats.dropped.Load(),
		Errors:     c.stats.errors.Load(),
	}
}

// RankHosts returns the key's hosts in rendezvous order, truncated to
// the fan-out: index 0 is the primary, the rest are replicas. Exported
// so tests and the load generator can reason about placement.
func (c *Client) RankHosts(key string) []string {
	ranked := rank(c.hosts, key)
	if len(ranked) > c.fanout {
		ranked = ranked[:c.fanout]
	}
	return ranked
}

// Fill fetches a key's value from origin when this client wins the
// population promise. It returns the entry to publish and its TTL.
type Fill func(ctx context.Context) (Entry, time.Duration, error)

// Get reads key: serial GETs in rendezvous order, first 200 wins. A hit
// served by a replica (not the primary) schedules a best-effort
// write-back of the entry to the primary. All ranked hosts missing is
// ErrMiss.
func (c *Client) Get(ctx context.Context, key string) ([]Entry, error) {
	entries, _, err := c.get(ctx, key, c.RankHosts(key))
	return entries, err
}

// get is the serial read; it reports which ranked index answered.
func (c *Client) get(ctx context.Context, key string, ranked []string) ([]Entry, int, error) {
	for i, host := range ranked {
		entries, status, err := c.getFrom(ctx, host, key)
		if err != nil {
			if ctx.Err() != nil {
				return nil, -1, ctx.Err()
			}
			c.stats.errors.Add(1)
			continue // transient host failure: fall through to the next replica
		}
		if status == http.StatusOK {
			c.stats.hits.Add(1)
			if i > 0 && len(entries) > 0 {
				c.scheduleWriteBack(ranked[0], key, entries[0])
			}
			return entries, i, nil
		}
		// 404 and shed/throttle answers both mean "no value here".
	}
	c.stats.misses.Add(1)
	return nil, -1, ErrMiss
}

// GetOrFill reads key and, on a full miss, runs the justcache herd
// path: POST /promise to every ranked host in parallel; a "present"
// answer triggers an immediate re-GET, a grant makes this client fetch
// from origin via fill and PUT the result to the granting hosts, and
// all-busy waits out the smallest Retry-After (jittered) before
// retrying — at most Retries rounds before ErrBusy.
func (c *Client) GetOrFill(ctx context.Context, key string, fill Fill) ([]Entry, error) {
	ranked := c.RankHosts(key)
	entries, _, err := c.get(ctx, key, ranked)
	if err == nil {
		return entries, nil
	}
	if !errors.Is(err, ErrMiss) {
		return nil, err
	}
	if fill == nil {
		return nil, ErrMiss
	}

	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		present, granted, wait := c.postPromises(ctx, key, ranked)
		switch {
		case len(granted) > 0:
			c.stats.promises.Add(1)
			e, ttl, err := fill(ctx)
			if err != nil {
				return nil, fmt.Errorf("client: fill %q: %w", key, err)
			}
			e.TTL = ttl.Seconds()
			// Populate every granting host, and the primary regardless —
			// the next reader starts there.
			targets := granted
			if len(targets) == 0 || targets[0] != ranked[0] {
				targets = append([]string{ranked[0]}, granted...)
			}
			var putErr error
			put := 0
			for _, host := range dedupe(targets) {
				if err := c.putTo(ctx, host, key, e); err != nil {
					putErr = err
					continue
				}
				put++
			}
			if put == 0 {
				return nil, fmt.Errorf("client: populate %q: %w", key, putErr)
			}
			return []Entry{e}, nil
		case present != "":
			// The key appeared during the race: read it back, preferring
			// the host that reported it.
			reordered := append([]string{present}, without(ranked, present)...)
			if entries, _, err := c.get(ctx, key, reordered); err == nil {
				return entries, nil
			}
		default:
			c.stats.busy.Add(1)
		}
		if wait <= 0 {
			wait = c.backoffFor(attempt)
		}
		if err := sleepCtx(ctx, c.jitter(wait)); err != nil {
			return nil, err
		}
		if entries, _, err := c.get(ctx, key, ranked); err == nil {
			return entries, nil
		}
	}
	return nil, ErrBusy
}

// Put publishes one entry for key to its primary (and is the write half
// of the population protocol). ttl overrides e.TTL when positive.
func (c *Client) Put(ctx context.Context, key string, e Entry, ttl time.Duration) error {
	if ttl > 0 {
		e.TTL = ttl.Seconds()
	}
	return c.putTo(ctx, c.RankHosts(key)[0], key, e)
}

// Delete unpublishes (key, replica) from every ranked host that might
// serve it.
func (c *Client) Delete(ctx context.Context, key string, replica int) error {
	var firstErr error
	for _, host := range c.RankHosts(key) {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
			c.url(host, key)+"?replica="+strconv.Itoa(replica), nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		drain(resp)
		if resp.StatusCode != http.StatusNoContent && firstErr == nil {
			firstErr = fmt.Errorf("client: delete %q from %s: %s", key, host, resp.Status)
		}
	}
	return firstErr
}

// postPromises runs the parallel promise round. It returns the first
// host reporting "present" (if any), the hosts that granted, and the
// smallest positive Retry-After seen on busy answers.
func (c *Client) postPromises(ctx context.Context, key string, ranked []string) (present string, granted []string, wait time.Duration) {
	type verdict struct {
		host    string
		status  int
		resp    serve.PromiseResponse
		retryMs int64
		err     error
	}
	out := make(chan verdict, len(ranked))
	for _, host := range ranked {
		go func(host string) {
			v := verdict{host: host}
			defer func() {
				select {
				case out <- v: // buffered to len(ranked): never blocks
				case <-ctx.Done():
				}
			}()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(host, key)+"/promise", nil)
			if err != nil {
				v.err = err
				return
			}
			resp, err := c.http.Do(req)
			if err != nil {
				v.err = err
				return
			}
			defer drain(resp)
			v.status = resp.StatusCode
			if ms := resp.Header.Get("X-Retry-After-Ms"); ms != "" {
				v.retryMs, _ = strconv.ParseInt(ms, 10, 64)
			} else if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
					v.retryMs = secs * 1000
				}
			}
			_ = json.NewDecoder(resp.Body).Decode(&v.resp)
		}(host)
	}
	for range ranked {
		var v verdict
		select {
		case v = <-out:
		case <-ctx.Done():
			return present, granted, wait
		}
		if v.err != nil {
			c.stats.errors.Add(1)
			continue
		}
		switch v.status {
		case http.StatusOK:
			if present == "" {
				present = v.host
			}
		case http.StatusAccepted:
			granted = append(granted, v.host)
		case http.StatusConflict, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if d := time.Duration(v.retryMs) * time.Millisecond; d > 0 && (wait == 0 || d < wait) {
				wait = d
			}
		}
	}
	return present, granted, wait
}

// getFrom issues one GET.
func (c *Client) getFrom(ctx context.Context, host, key string) ([]Entry, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(host, key), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, nil
	}
	var body serve.GetResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, err
	}
	return body.Entries, http.StatusOK, nil
}

// putTo issues one PUT.
func (c *Client) putTo(ctx context.Context, host, key string, e Entry) error {
	body, err := json.Marshal(serve.PutRequest{Replica: e.Replica, Addr: e.Addr, TTL: e.TTL})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(host, key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("client: put %q to %s: %s", key, host, resp.Status)
	}
	return nil
}

// scheduleWriteBack enqueues a best-effort primary population; a full
// queue drops it (improving future hit rate is optional, blocking the
// read path is not).
func (c *Client) scheduleWriteBack(primary, key string, e Entry) {
	select {
	case c.wb <- writeBack{host: primary, key: key, e: e}:
	default:
		c.stats.dropped.Add(1)
	}
}

// writeBackLoop drains the write-back queue on one goroutine.
func (c *Client) writeBackLoop() {
	defer c.wbWG.Done()
	for {
		select {
		case <-c.wbDone:
			return
		case wb := <-c.wb:
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := c.putTo(ctx, wb.host, wb.key, wb.e); err == nil {
				c.stats.writeBacks.Add(1)
			} else {
				c.stats.errors.Add(1)
			}
			cancel()
		}
	}
}

// backoffFor is the attempt'th exponential backoff, capped.
func (c *Client) backoffFor(attempt int) time.Duration {
	d := c.backoff << uint(attempt)
	if d > c.cap || d <= 0 {
		d = c.cap
	}
	return d
}

// jitter spreads a wait over [d/2, d) so a herd released by one expiring
// promise does not re-collide in lockstep.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	c.mu.Lock()
	j := c.rng.Int63n(int64(d) / 2)
	c.mu.Unlock()
	return d/2 + time.Duration(j)
}

// url builds the /v1 key URL for a host.
func (c *Client) url(host, key string) string {
	base := host
	if len(base) < 7 || (base[:7] != "http://" && (len(base) < 8 || base[:8] != "https://")) {
		base = "http://" + base
	}
	return base + "/v1/key/" + key
}

// drain consumes and closes a response body so the connection returns
// to the keep-alive pool.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

// dedupe removes duplicate hosts, preserving order.
func dedupe(hosts []string) []string {
	seen := make(map[string]bool, len(hosts))
	out := hosts[:0:0]
	for _, h := range hosts {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// without filters one host out of a ranking.
func without(hosts []string, drop string) []string {
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		if h != drop {
			out = append(out, h)
		}
	}
	return out
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
