package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/serve"
	"cup/internal/sim"
)

// hostBackend is one fake host's store: the client tests model a fleet
// of independent servers (the justcache shape), so rendezvous placement
// is observable — a key Put to its primary is absent from other hosts.
type hostBackend struct {
	mu      sync.Mutex
	entries map[overlay.Key][]cache.Entry
}

func (h *hostBackend) Size() int        { return 8 }
func (h *hostBackend) Now() sim.Time    { return 0 }
func (h *hostBackend) Load() (int, int) { return 0, 0 }

func (h *hostBackend) LookupAt(ctx context.Context, at overlay.NodeID, key overlay.Key) ([]cache.Entry, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]cache.Entry(nil), h.entries[key]...), nil
}

func (h *hostBackend) Publish(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	kept := h.entries[key][:0]
	for _, e := range h.entries[key] {
		if e.Replica != replica {
			kept = append(kept, e)
		}
	}
	h.entries[key] = append(kept, cache.Entry{
		Key: key, Replica: replica, Addr: addr, Expires: sim.Time(lifetime.Seconds()),
	})
	return nil
}

func (h *hostBackend) Unpublish(ctx context.Context, key overlay.Key, replica int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.entries, key)
	return nil
}

func (h *hostBackend) has(key string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries[overlay.Key(key)]) > 0
}

func (h *hostBackend) set(key string, e cache.Entry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries[overlay.Key(key)] = []cache.Entry{e}
}

// newFleet boots n independent serving hosts and returns their
// addresses plus per-address backends.
func newFleet(t *testing.T, n int) ([]string, map[string]*hostBackend) {
	t.Helper()
	hosts := make([]string, n)
	backends := make(map[string]*hostBackend, n)
	for i := 0; i < n; i++ {
		b := &hostBackend{entries: make(map[overlay.Key][]cache.Entry)}
		srv, err := serve.New(serve.Config{Backend: b, PromiseTTL: 250 * time.Millisecond})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		mux := http.NewServeMux()
		srv.Register(mux)
		hs := httptest.NewServer(mux)
		t.Cleanup(hs.Close)
		addr := hs.Listener.Addr().String()
		hosts[i] = addr
		backends[addr] = b
	}
	return hosts, backends
}

func newTestClient(t *testing.T, hosts []string, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		Hosts:   hosts,
		Backoff: 5 * time.Millisecond,
		Seed:    1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestRankProperties(t *testing.T) {
	hosts := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	// Deterministic: same inputs, same ranking.
	if !reflect.DeepEqual(rank(hosts, "k"), rank(hosts, "k")) {
		t.Fatal("rank is not deterministic")
	}
	// Permutation-invariant: every client agrees regardless of the order
	// its config listed the hosts in.
	perm := []string{"d:1", "a:1", "e:1", "c:1", "b:1"}
	if !reflect.DeepEqual(rank(hosts, "k"), rank(perm, "k")) {
		t.Fatal("rank depends on host list order")
	}
	// Total: every host appears exactly once.
	seen := map[string]int{}
	for _, h := range rank(hosts, "k") {
		seen[h]++
	}
	if len(seen) != len(hosts) {
		t.Fatalf("rank lost hosts: %v", seen)
	}
	// Minimal disruption: removing one host must not reorder the keys
	// that did not rank it first.
	shrunk := []string{"a:1", "b:1", "c:1", "d:1"} // e removed
	moved := 0
	for i := 0; i < 200; i++ {
		key := string(rune('A'+i%26)) + string(rune('0'+i/26))
		full := rank(hosts, key)
		if full[0] == "e:1" {
			continue // e was primary; this key must move
		}
		if rank(shrunk, key)[0] != full[0] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys changed primary although their primary survived", moved)
	}
	// Spread: no host owns everything.
	primaries := map[string]int{}
	for i := 0; i < 100; i++ {
		primaries[rank(hosts, string(rune('a'+i%26))+string(rune('0'+i/26)))[0]]++
	}
	if len(primaries) < 3 {
		t.Fatalf("primaries concentrated on %d hosts: %v", len(primaries), primaries)
	}
}

func TestPutThenGetHitsPrimary(t *testing.T) {
	hosts, backends := newFleet(t, 3)
	c := newTestClient(t, hosts, nil)
	ctx := context.Background()

	if err := c.Put(ctx, "k", Entry{Replica: 0, Addr: "origin", TTL: 60}, 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	primary := c.RankHosts("k")[0]
	if !backends[primary].has("k") {
		t.Fatal("Put did not land on the rendezvous primary")
	}
	for addr, b := range backends {
		if addr != primary && b.has("k") {
			t.Fatalf("Put leaked to non-primary host %s", addr)
		}
	}
	entries, err := c.Get(ctx, "k")
	if err != nil || len(entries) != 1 || entries[0].Addr != "origin" {
		t.Fatalf("Get = %v, %v; want the origin entry", entries, err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats.Hits = %d, want 1", st.Hits)
	}
}

func TestGetMissReturnsErrMiss(t *testing.T) {
	hosts, _ := newFleet(t, 3)
	c := newTestClient(t, hosts, nil)
	if _, err := c.Get(context.Background(), "nope"); err != ErrMiss {
		t.Fatalf("Get on cold key = %v, want ErrMiss", err)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats.Misses = %d, want 1", st.Misses)
	}
}

func TestReplicaHitSchedulesWriteBack(t *testing.T) {
	hosts, backends := newFleet(t, 4)
	c := newTestClient(t, hosts, nil)
	ctx := context.Background()

	ranked := c.RankHosts("wb")
	primary, replica := ranked[0], ranked[1]
	backends[replica].set("wb", cache.Entry{Key: "wb", Replica: 0, Addr: "origin", Expires: 60})

	entries, err := c.Get(ctx, "wb")
	if err != nil || len(entries) == 0 {
		t.Fatalf("Get = %v, %v", entries, err)
	}
	// The write-back is asynchronous and best-effort; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for !backends[primary].has("wb") {
		if time.Now().After(deadline) {
			t.Fatal("replica hit never written back to the primary")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Stats(); st.WriteBacks != 1 {
		t.Fatalf("stats.WriteBacks = %d, want 1", st.WriteBacks)
	}
}

func TestGetOrFillPopulatesOnce(t *testing.T) {
	hosts, backends := newFleet(t, 3)
	ctx := context.Background()

	// Two independent clients race to fill the same cold key — the
	// promise protocol must elect exactly one filler; the loser waits and
	// reads the winner's value.
	c1 := newTestClient(t, hosts, nil)
	c2 := newTestClient(t, hosts, nil)
	var fills atomic.Int64
	fill := func(context.Context) (Entry, time.Duration, error) {
		fills.Add(1)
		return Entry{Replica: 0, Addr: "origin", TTL: 60}, time.Minute, nil
	}
	var wg sync.WaitGroup
	results := make([][]Entry, 2)
	errs := make([]error, 2)
	for i, c := range []*Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrFill(ctx, "cold", fill)
		}(i, c)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("GetOrFill[%d]: %v", i, errs[i])
		}
		if len(results[i]) == 0 || results[i][0].Addr != "origin" {
			t.Fatalf("GetOrFill[%d] = %v, want the filled entry", i, results[i])
		}
	}
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want exactly 1 (promise protocol failed)", got)
	}
	primary := c1.RankHosts("cold")[0]
	if !backends[primary].has("cold") {
		t.Fatal("filled entry missing from the primary")
	}
	if st1, st2 := c1.Stats(), c2.Stats(); st1.Promises+st2.Promises != 1 {
		t.Fatalf("promise grants = %d+%d, want exactly 1", st1.Promises, st2.Promises)
	}
}

func TestGetOrFillReadsExistingKey(t *testing.T) {
	hosts, _ := newFleet(t, 3)
	c := newTestClient(t, hosts, nil)
	ctx := context.Background()
	if err := c.Put(ctx, "warm", Entry{Replica: 0, Addr: "origin", TTL: 60}, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := c.GetOrFill(ctx, "warm", func(context.Context) (Entry, time.Duration, error) {
		t.Fatal("fill ran for a warm key")
		return Entry{}, 0, nil
	})
	if err != nil || len(entries) != 1 {
		t.Fatalf("GetOrFill = %v, %v", entries, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no hosts succeeded")
	}
	if _, err := New(Config{Hosts: []string{"a:1"}, Fanout: -1}); err == nil {
		t.Fatal("New with negative fanout succeeded")
	}
}

func TestFanoutTruncatesRanking(t *testing.T) {
	hosts := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	c := newTestClient(t, hosts, func(cfg *Config) { cfg.Fanout = 2 })
	if got := len(c.RankHosts("k")); got != 2 {
		t.Fatalf("RankHosts returned %d hosts, want fanout 2", got)
	}
	// Fanout above the host count degrades to the full set.
	c2 := newTestClient(t, hosts[:2], func(cfg *Config) { cfg.Fanout = 9 })
	if got := len(c2.RankHosts("k")); got != 2 {
		t.Fatalf("RankHosts returned %d hosts, want all 2", got)
	}
}
