// Behavioral coverage of the public fault scripts — cup.CapacityFault,
// cup.NodeChurn, cup.ReplicaChurn, and the cup.FlashCrowd surge —
// through cup.New/WithFaults/WithTraffic. Ported from the deleted
// internal/workload shim's tests, which exercised the same scripts
// through the pre-Scenario Hook surface.
package cup_test

import (
	"context"
	"testing"
	"time"

	"cup"
)

func faultOpts(extra ...cup.Option) []cup.Option {
	opts := []cup.Option{
		cup.WithNodes(64),
		cup.WithQueryRate(2),
		cup.WithQueryDuration(cup.Seconds(1800)),
		cup.WithSeed(7),
	}
	return append(opts, extra...)
}

// runFaulted builds a simulated deployment, runs its workload, and
// hands back both the result and the deployment (still open) so tests
// can inspect post-run node state.
func runFaulted(t *testing.T, extra ...cup.Option) (*cup.Result, *cup.Deployment) {
	t.Helper()
	d, err := cup.New(faultOpts(extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, d
}

// reducedNodes counts nodes still running at reduced capacity.
func reducedNodes(t *testing.T, d *cup.Deployment) int {
	t.Helper()
	reduced := 0
	for id := 0; id < d.Size(); id++ {
		if err := d.Inspect(cup.NodeID(id), func(n *cup.Node) {
			if n.Capacity() >= 0 {
				reduced++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	return reduced
}

// Up-And-Down cycles recover: after the run every node is back at full
// capacity (the last recovery event fires before the window ends).
func TestCapacityFaultUpAndDownRecovers(t *testing.T) {
	res, d := runFaulted(t, cup.WithFaults(cup.CapacityFault{Capacity: 0, Recover: true}))
	if res.Counters.Queries == 0 {
		t.Fatal("no queries")
	}
	if n := reducedNodes(t, d); n != 0 {
		t.Fatalf("%d nodes still reduced after Up-And-Down", n)
	}
}

// Once-Down-Always-Down leaves the sampled fraction reduced: 20% of 64
// nodes by default.
func TestCapacityFaultOnceDownStaysDown(t *testing.T) {
	_, d := runFaulted(t, cup.WithFaults(cup.CapacityFault{Capacity: 0.5}))
	if n := reducedNodes(t, d); n != 64/5 {
		t.Fatalf("reduced nodes = %d, want %d", n, 64/5)
	}
}

// The affected-set size honors Fraction, with a one-node floor.
func TestCapacityFaultSampleSize(t *testing.T) {
	count := func(fraction float64) int {
		_, d := runFaulted(t, cup.WithFaults(cup.CapacityFault{Fraction: fraction, Capacity: 0.5}))
		return reducedNodes(t, d)
	}
	if got := count(0.5); got != 32 {
		t.Fatalf("sample = %d, want 32", got)
	}
	if got := count(0.001); got != 1 {
		t.Fatalf("tiny sample = %d, want 1 (floor)", got)
	}
}

// Capacity loss suppresses proactive pushes, so update hops fall
// against an unfaulted run.
func TestReducedCapacityCostsLessOverheadThanFull(t *testing.T) {
	full, _ := runFaulted(t)
	down, _ := runFaulted(t, cup.WithFaults(cup.CapacityFault{Capacity: 0}))
	if down.Counters.UpdateHops >= full.Counters.UpdateHops {
		t.Fatalf("capacity loss did not reduce update hops: %d vs %d",
			down.Counters.UpdateHops, full.Counters.UpdateHops)
	}
}

// The schedule stops cycling at the end of the query window.
func TestCapacityScheduleRespectsQueryWindowEnd(t *testing.T) {
	events := cup.CapacityFault{Capacity: 0.25, Recover: true}.Schedule(300, 900)
	// Window ends at 1200; first down at 600, next would start at 1500.
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if last := events[len(events)-1].At; last != 1200 {
		t.Fatalf("recovery at %v, want 1200", last)
	}
}

// The FlashCrowd surge posts its queries and, on a slow network, the
// burst coalesces into shared upstream queries (§2.5 case 2).
func TestFlashCrowdTrafficPostsAndCoalesces(t *testing.T) {
	res, _ := runFaulted(t,
		cup.WithHopDelay(time.Second), // slow network: the surge outruns responses
		cup.WithTraffic(cup.FlashCrowd{BaseRate: 0.001, At: 500, SurgeRate: 500, Queries: 300}))
	if res.Counters.Queries < 300 {
		t.Fatalf("queries = %d, want ≥ 300", res.Counters.Queries)
	}
	if res.Counters.Coalesced == 0 {
		t.Fatal("flash crowd produced no coalescing")
	}
}

// Replica churn originates a steady stream of Append/Delete updates.
func TestReplicaChurnAddsAndRemoves(t *testing.T) {
	res, _ := runFaulted(t,
		cup.WithFaults(cup.ReplicaChurn{At: 400, Period: 200, Rounds: 5, Min: 1}))
	// Birth + 5 adds + 4 deletes + refreshes: at least 10 originations.
	if res.Counters.UpdatesOriginated < 10 {
		t.Fatalf("originated = %d, want ≥ 10", res.Counters.UpdatesOriginated)
	}
}

// Fault scripts compose with each other and with a traffic generator.
func TestFaultsComposeWithTraffic(t *testing.T) {
	res, _ := runFaulted(t,
		cup.WithTraffic(cup.FlashCrowd{BaseRate: 2, At: 700, SurgeRate: 20, Queries: 50}),
		cup.WithFaults(
			cup.CapacityFault{Capacity: 0.25, Recover: true},
			cup.ReplicaChurn{At: 500, Period: 300, Rounds: 3, Min: 1},
		))
	if res.Counters.Queries == 0 {
		t.Fatal("composed workload ran nothing")
	}
}

// CUP keeps beating standard caching under continuous node churn
// (§2.9), the property the deleted shim pinned through Hooks.
func TestNodeChurnKeepsCUPWinning(t *testing.T) {
	churn := cup.NodeChurn{At: 400, Period: 60, Rounds: 10}
	churned, _ := runFaulted(t, cup.WithFaults(churn))
	if churned.Counters.Queries == 0 {
		t.Fatal("no queries under node churn")
	}
	std, _ := runFaulted(t, cup.WithStandardCaching(), cup.WithFaults(churn))
	if churned.Counters.TotalCost() >= std.Counters.TotalCost() {
		t.Fatalf("CUP under churn (%d) lost to standard (%d)",
			churned.Counters.TotalCost(), std.Counters.TotalCost())
	}
}
