// Tests of the unified deployment API: one construction path (cup.New +
// functional options) building both transports, the shared client API,
// and the event bus.
package cup_test

import (
	"context"
	"testing"
	"time"

	"cup"
)

func newDeployment(t *testing.T, opts ...cup.Option) *cup.Deployment {
	t.Helper()
	d, err := cup.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := cup.New(cup.WithOverlay("no-such-overlay")); err == nil {
		t.Error("unknown overlay accepted")
	}
	if _, err := cup.New(cup.WithNodes(-3)); err == nil {
		t.Error("negative node count accepted")
	}
}

func TestNewDefaultsMatchSharedTable(t *testing.T) {
	d := newDeployment(t, cup.WithoutWorkload())
	if d.Transport() != cup.Simulated {
		t.Errorf("default transport = %v", d.Transport())
	}
	if d.Size() != 1024 {
		t.Errorf("default size = %d, want the paper's 1024", d.Size())
	}
}

// The same options must build both transports, and the client API must
// behave identically: publish two replicas, look them up, delete one,
// look up again.
func TestClientAPIAcrossTransports(t *testing.T) {
	for _, transport := range []cup.Transport{cup.Simulated, cup.Live} {
		transport := transport
		t.Run(transport.String(), func(t *testing.T) {
			d := newDeployment(t,
				cup.WithTransport(transport),
				cup.WithNodes(16),
				cup.WithoutWorkload(),
				cup.WithHopDelay(300*time.Microsecond),
				cup.WithSeed(5),
			)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()

			const key = cup.Key("movie")
			for r := 0; r < 2; r++ {
				if err := d.Publish(ctx, key, r, "10.0.0.1", time.Hour); err != nil {
					t.Fatalf("publish: %v", err)
				}
			}
			at := cup.NodeID(3)
			if d.Authority(key) == at {
				at = 4
			}
			entries, err := d.LookupAt(ctx, at, key)
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			if len(entries) != 2 {
				t.Fatalf("lookup = %d entries, want 2", len(entries))
			}

			if err := d.Unpublish(ctx, key, 0); err != nil {
				t.Fatalf("unpublish: %v", err)
			}
			if err := d.Settle(ctx); err != nil {
				t.Fatalf("settle: %v", err)
			}
			entries, err = d.LookupAt(ctx, d.Authority(key), key)
			if err != nil {
				t.Fatalf("post-delete lookup: %v", err)
			}
			if len(entries) != 1 || entries[0].Replica != 1 {
				t.Fatalf("post-delete entries = %+v, want only replica 1", entries)
			}

			// The random-entry Lookup variant resolves too.
			if _, err := d.Lookup(ctx, key); err != nil {
				t.Fatalf("random-peer lookup: %v", err)
			}
		})
	}
}

func TestLookupHonorsContextOnBothTransports(t *testing.T) {
	const key = cup.Key("unreachable")
	pickNode := func(d *cup.Deployment) cup.NodeID {
		at := cup.NodeID(2)
		if d.Authority(key) == at {
			at = 3
		}
		return at
	}

	// Live: an hour-long wall-clock hop means no lookup can resolve
	// before the deadline; cancellation must unblock the caller.
	t.Run("live", func(t *testing.T) {
		d := newDeployment(t,
			cup.WithTransport(cup.Live),
			cup.WithNodes(16),
			cup.WithHopDelay(time.Hour),
			cup.WithSeed(5),
		)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		if _, err := d.LookupAt(ctx, pickNode(d), key); err == nil {
			t.Fatal("lookup on an undeliverable network returned without error")
		}
	})

	// Simulated: virtual delays collapse instantly, so cancellation
	// matters for runaway schedules — an already-cancelled context must
	// stop the lookup before it drives the clock.
	t.Run("simulated", func(t *testing.T) {
		d := newDeployment(t,
			cup.WithTransport(cup.Simulated),
			cup.WithNodes(16),
			cup.WithoutWorkload(),
			cup.WithSeed(5),
		)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := d.LookupAt(ctx, pickNode(d), key); err == nil {
			t.Fatal("cancelled simulated lookup returned without error")
		}
	})
}

func TestLiveRunWithoutScenarioErrors(t *testing.T) {
	d := newDeployment(t, cup.WithTransport(cup.Live), cup.WithNodes(8))
	if _, err := d.Run(context.Background()); err == nil {
		t.Fatal("Run on a live deployment without a scenario must error")
	}
}

func TestRunMatchesCompatibilityWrapper(t *testing.T) {
	d := newDeployment(t,
		cup.WithNodes(64),
		cup.WithQueryRate(2),
		cup.WithQueryDuration(300*time.Second),
		cup.WithSeed(9),
	)
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	legacy := cup.Run(cup.Params{Nodes: 64, QueryRate: 2, QueryDuration: 300, Seed: 9})
	if res.Counters != legacy.Counters {
		t.Fatalf("options path diverged from Params path:\n new %+v\n old %+v",
			res.Counters, legacy.Counters)
	}
}

func TestSubscribeFiltersByKey(t *testing.T) {
	d := newDeployment(t,
		cup.WithNodes(16),
		cup.WithoutWorkload(),
		cup.WithSeed(5),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	events, stop := d.Subscribe("watched")
	defer stop()

	if err := d.Publish(ctx, "watched", 0, "10.0.0.1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(ctx, "other", 0, "10.0.0.2", time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, key := range []cup.Key{"watched", "other"} {
		at := cup.NodeID(1)
		if d.Authority(key) == at {
			at = 2
		}
		if _, err := d.LookupAt(ctx, at, key); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Settle(ctx); err != nil {
		t.Fatal(err)
	}

	stop() // closes the channel so the drain below terminates
	got := 0
	for e := range events {
		if e.Key != "watched" {
			t.Fatalf("subscription leaked event for %q: %+v", e.Key, e)
		}
		got++
	}
	if got == 0 {
		t.Fatal("subscription saw no events for its key")
	}
}

// Close must terminate consumers ranging over event channels, and a
// late stop() must stay a safe no-op.
func TestCloseUnblocksEventConsumers(t *testing.T) {
	d, err := cup.New(cup.WithTransport(cup.Live), cup.WithNodes(8), cup.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	events, stop := d.Events()
	done := make(chan struct{})
	go func() {
		for range events {
		}
		close(done)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Publish(ctx, "k", 0, "10.0.0.1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(ctx, "k"); err != nil {
		t.Fatal(err)
	}

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the event consumer")
	}
	stop() // after Close already closed the channel: must not panic
}

// Settle must outwait in-flight messages even when the hop delay
// exceeds its minimum probe window: after it returns, traffic counters
// stay put.
func TestSettleWaitsOutSlowHops(t *testing.T) {
	d := newDeployment(t,
		cup.WithTransport(cup.Live),
		cup.WithNodes(16),
		cup.WithHopDelay(50*time.Millisecond),
		cup.WithSeed(5),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const key = cup.Key("slow")
	if err := d.Publish(ctx, key, 0, "10.0.0.1", time.Hour); err != nil {
		t.Fatal(err)
	}
	at := cup.NodeID(3)
	if d.Authority(key) == at {
		at = 4
	}
	if _, err := d.LookupAt(ctx, at, key); err != nil {
		t.Fatal(err)
	}
	// Refresh: pushes now travel the interest tree, one slow hop at a time.
	if err := d.Publish(ctx, key, 0, "10.0.0.1", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := d.Settle(ctx); err != nil {
		t.Fatal(err)
	}
	before := d.Counters()
	time.Sleep(150 * time.Millisecond)
	if after := d.Counters(); after != before {
		t.Fatalf("traffic continued after Settle: %+v -> %+v", before, after)
	}
}

func TestRunWithObserverSeesWorkloadEvents(t *testing.T) {
	issued := 0
	d := newDeployment(t,
		cup.WithNodes(32),
		cup.WithQueryRate(2),
		cup.WithQueryDuration(200*time.Second),
		cup.WithSeed(3),
		cup.WithObserver(cup.ObserverFunc(func(e cup.Event) {
			if e.Kind == cup.EvQueryIssued {
				issued++
			}
		})),
	)
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if uint64(issued) != res.Counters.Queries {
		t.Fatalf("observer saw %d issued queries, counters say %d", issued, res.Counters.Queries)
	}
}
