// Tests of the multi-trial sweep surface: WithTrials/WithParallelism on
// the simulated transport. Run under -race (CI does) these also prove
// the isolation invariant that internal/live/scenario.go documents for
// closed-loop clients: concurrent consumers must never share one
// TrafficEnv RNG — here, every parallel trial owns a distinct env.Rand.
package cup_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"cup"
)

// rngRecorder wraps a Traffic generator and records the *rand.Rand each
// trial's TrafficEnv carries at Stream-bind time.
type rngRecorder struct {
	inner cup.Traffic

	mu   sync.Mutex
	seen []*rand.Rand
}

func (r *rngRecorder) Name() string { return "rng-recorder" }

func (r *rngRecorder) Stream(env cup.TrafficEnv) cup.TrafficStream {
	r.mu.Lock()
	r.seen = append(r.seen, env.Rand)
	r.mu.Unlock()
	return r.inner.Stream(env)
}

func trialOpts(extra ...cup.Option) []cup.Option {
	opts := []cup.Option{
		cup.WithNodes(64),
		cup.WithQueryRate(4),
		cup.WithQueryDuration(cup.Seconds(120)),
		cup.WithSeed(11),
	}
	return append(opts, extra...)
}

func runTrials(t *testing.T, extra ...cup.Option) *cup.Result {
	t.Helper()
	d, err := cup.New(trialOpts(extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every parallel trial binds its Traffic stream to a distinct RNG: the
// trials share nothing but the generator value itself.
func TestParallelTrialsDistinctRNGs(t *testing.T) {
	rec := &rngRecorder{inner: cup.PoissonTraffic(0)}
	runTrials(t, cup.WithTrials(8), cup.WithParallelism(4), cup.WithTraffic(rec))
	// 8 trial binds plus one from the deployment's own (interactive)
	// runtime built at New time; every one must carry its own RNG.
	if len(rec.seen) < 8 {
		t.Fatalf("recorded %d trial RNGs, want at least 8", len(rec.seen))
	}
	distinct := make(map[*rand.Rand]bool, len(rec.seen))
	for _, r := range rec.seen {
		if r == nil {
			t.Fatal("a trial bound a nil env.Rand")
		}
		if distinct[r] {
			t.Fatal("two parallel trials share one env.Rand")
		}
		distinct[r] = true
	}
}

// The merged Result is bit-identical whatever the parallelism, and a
// one-trial sweep equals a plain run.
func TestTrialsMergeDeterministic(t *testing.T) {
	seq := runTrials(t, cup.WithTrials(4), cup.WithParallelism(1)).Counters
	par := runTrials(t, cup.WithTrials(4), cup.WithParallelism(4)).Counters
	if seq != par {
		t.Fatalf("parallel merge diverged from sequential:\n%v\n%v", seq.String(), par.String())
	}
	if seq.Queries == 0 {
		t.Fatal("sweep produced no queries")
	}

	one := runTrials(t, cup.WithTrials(1)).Counters
	plain := runTrials(t).Counters
	if one != plain {
		t.Fatalf("WithTrials(1) diverged from a plain run:\n%v\n%v", one.String(), plain.String())
	}
	if seq == plain {
		t.Fatal("4-trial sweep equals a single run: per-trial seeds not applied")
	}
}

// WithTrials is a simulated-transport sweep; a live deployment rejects it.
func TestTrialsRejectedOnLive(t *testing.T) {
	d, err := cup.New(
		cup.WithTransport(cup.Live),
		cup.WithNodes(8),
		cup.WithTrials(2),
		cup.WithTraffic(cup.PoissonTraffic(1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Run(context.Background()); err == nil {
		t.Fatal("Run with WithTrials on live transport did not error")
	}
}

func TestTrialsOptionValidation(t *testing.T) {
	if _, err := cup.New(cup.WithTrials(0)); err == nil {
		t.Fatal("WithTrials(0) accepted")
	}
	if _, err := cup.New(cup.WithParallelism(-2)); err == nil {
		t.Fatal("WithParallelism(-2) accepted")
	}
}
