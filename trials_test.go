// Tests of the multi-trial sweep surface: WithTrials/WithParallelism on
// the simulated transport. Run under -race (CI does) these also prove
// the isolation invariant that internal/live/scenario.go documents for
// closed-loop clients: concurrent consumers must never share one
// TrafficEnv RNG — here, every parallel trial owns a distinct env.Rand.
package cup_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cup"
	"cup/internal/overlay"
)

// rngRecorder wraps a Traffic generator and records the *rand.Rand each
// trial's TrafficEnv carries at Stream-bind time.
type rngRecorder struct {
	inner cup.Traffic

	mu   sync.Mutex
	seen []*rand.Rand
}

func (r *rngRecorder) Name() string { return "rng-recorder" }

func (r *rngRecorder) Stream(env cup.TrafficEnv) cup.TrafficStream {
	r.mu.Lock()
	r.seen = append(r.seen, env.Rand)
	r.mu.Unlock()
	return r.inner.Stream(env)
}

func trialOpts(extra ...cup.Option) []cup.Option {
	opts := []cup.Option{
		cup.WithNodes(64),
		cup.WithQueryRate(4),
		cup.WithQueryDuration(cup.Seconds(120)),
		cup.WithSeed(11),
	}
	return append(opts, extra...)
}

func runTrials(t *testing.T, extra ...cup.Option) *cup.Result {
	t.Helper()
	d, err := cup.New(trialOpts(extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every parallel trial binds its Traffic stream to a distinct RNG: the
// trials share nothing but the generator value itself.
func TestParallelTrialsDistinctRNGs(t *testing.T) {
	rec := &rngRecorder{inner: cup.PoissonTraffic(0)}
	runTrials(t, cup.WithTrials(8), cup.WithParallelism(4), cup.WithTraffic(rec))
	// 8 trial binds plus one from the deployment's own (interactive)
	// runtime built at New time; every one must carry its own RNG.
	if len(rec.seen) < 8 {
		t.Fatalf("recorded %d trial RNGs, want at least 8", len(rec.seen))
	}
	distinct := make(map[*rand.Rand]bool, len(rec.seen))
	for _, r := range rec.seen {
		if r == nil {
			t.Fatal("a trial bound a nil env.Rand")
		}
		if distinct[r] {
			t.Fatal("two parallel trials share one env.Rand")
		}
		distinct[r] = true
	}
}

// The merged Result is bit-identical whatever the parallelism, and a
// one-trial sweep equals a plain run.
func TestTrialsMergeDeterministic(t *testing.T) {
	seq := runTrials(t, cup.WithTrials(4), cup.WithParallelism(1)).Counters
	par := runTrials(t, cup.WithTrials(4), cup.WithParallelism(4)).Counters
	if seq != par {
		t.Fatalf("parallel merge diverged from sequential:\n%v\n%v", seq.String(), par.String())
	}
	if seq.Queries == 0 {
		t.Fatal("sweep produced no queries")
	}

	one := runTrials(t, cup.WithTrials(1)).Counters
	plain := runTrials(t).Counters
	if one != plain {
		t.Fatalf("WithTrials(1) diverged from a plain run:\n%v\n%v", one.String(), plain.String())
	}
	if seq == plain {
		t.Fatal("4-trial sweep equals a single run: per-trial seeds not applied")
	}
}

// A live multi-trial Run still needs a scenario, exactly like a
// single live Run: trials repeat the scripted workload, and a live
// deployment without one is interactive.
func TestLiveTrialsNeedScenario(t *testing.T) {
	d, err := cup.New(
		cup.WithLive(),
		cup.WithNodes(8),
		cup.WithTrials(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Run(context.Background()); err == nil {
		t.Fatal("live multi-trial Run without a scenario did not error")
	}
}

// The acceptance shape of live sweeps: four isolated live networks run
// concurrently, two at a time, and the merged counters carry all four
// trials' traffic. Run under -race (CI does) this also proves the
// side-by-side networks share no state.
func TestLiveTrialsRunConcurrently(t *testing.T) {
	d, err := cup.New(
		cup.WithLive(),
		cup.WithTrials(4),
		cup.WithParallelism(2),
		cup.WithNodes(16),
		cup.WithTraffic(cup.PoissonTraffic(0)),
		cup.WithQueryRate(20),
		cup.WithLifetime(cup.Seconds(5)),
		cup.WithQueryWindow(cup.Seconds(5), cup.Seconds(10)),
		cup.WithTimeScale(50),
		cup.WithHopDelay(200*time.Microsecond),
		cup.WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := d.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.QueryHops == 0 {
		t.Fatal("four live trials produced no query messages")
	}
}

// The live-approximation tolerance for multi-trial sweeps: the live
// transport counts real messages racing wall-clock delivery (cache
// warm-up, coalescing, and refresh timing all race), so merged counts
// agree within an absolute slack of 48 or half the larger count —
// checked with the same `within` helper the sim/live event-parity test
// uses. Anything outside this band means the transports' trial
// derivations (TrialSeed → topology + workload) have drifted apart.
const (
	liveSweepAbsTolerance = 48
	liveSweepRelTolerance = 0.5
)

// Cross-transport trial parity: the same multi-trial sweep on the
// simulated and the live transport, on every registered overlay, must
// land its merged counters inside the documented live-approximation
// tolerance. Under -race (CI runs it) this is also the proof that N
// concurrent live networks share no state: each trial derives its own
// topology and workload from TrialSeed, and any cross-network aliasing
// would both trip the race detector and skew the merged counts.
func TestTrialSweepCrossTransportParity(t *testing.T) {
	sweep := func(transport cup.Transport, kind string) (cup.Counters, int) {
		opts := []cup.Option{
			cup.WithTransport(transport),
			cup.WithOverlay(kind),
			cup.WithTrials(3),
			cup.WithParallelism(3),
			cup.WithNodes(16),
			cup.WithTraffic(cup.PoissonTraffic(0)),
			cup.WithQueryRate(10),
			cup.WithLifetime(cup.Seconds(5)),
			cup.WithQueryWindow(cup.Seconds(5), cup.Seconds(20)),
			cup.WithDrain(cup.Seconds(5)),
			cup.WithTimeScale(50),
			cup.WithHopDelay(200 * time.Microsecond),
			cup.WithSeed(23),
		}
		d, err := cup.New(opts...)
		if err != nil {
			t.Fatalf("New(%v, %s): %v", transport, kind, err)
		}
		defer d.Close()
		issued := 0
		var mu sync.Mutex
		detach := d.Observe(cup.ObserverFunc(func(e cup.Event) {
			if e.Kind == cup.EvQueryIssued {
				mu.Lock()
				issued++
				mu.Unlock()
			}
		}))
		defer detach()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		res, err := d.Run(ctx)
		if err != nil {
			t.Fatalf("Run(%v, %s): %v", transport, kind, err)
		}
		mu.Lock()
		defer mu.Unlock()
		return res.Counters, issued
	}

	for _, kind := range overlay.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			simC, simIssued := sweep(cup.Simulated, kind)
			liveC, liveIssued := sweep(cup.Live, kind)

			// Both transports must have run all three trials' traffic.
			if simIssued == 0 || liveIssued == 0 {
				t.Fatalf("a sweep issued no queries: sim %d, live %d", simIssued, liveIssued)
			}
			if !within(simIssued, liveIssued, liveSweepAbsTolerance, liveSweepRelTolerance) {
				t.Errorf("merged query arrivals: sim %d, live %d (outside tolerance)",
					simIssued, liveIssued)
			}
			// The live transport folds message counts into the hop
			// fields (one message = one hop); the sim reports true hops.
			if !within(int(simC.QueryHops), int(liveC.QueryHops), liveSweepAbsTolerance, liveSweepRelTolerance) {
				t.Errorf("merged query hops: sim %d, live %d (outside tolerance)",
					simC.QueryHops, liveC.QueryHops)
			}
		})
	}
}

func TestTrialsOptionValidation(t *testing.T) {
	if _, err := cup.New(cup.WithTrials(0)); err == nil {
		t.Fatal("WithTrials(0) accepted")
	}
	if _, err := cup.New(cup.WithParallelism(-2)); err == nil {
		t.Fatal("WithParallelism(-2) accepted")
	}
}
