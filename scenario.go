package cup

import (
	"fmt"
	"sort"
	"sync"

	internal "cup/internal/cup"
)

// The Scenario API: composable traffic generators and fault scripts,
// consumed identically by both transports. A Traffic produces the
// client query workload as a stream of arrivals; a Fault scripts timed
// interventions against a transport-agnostic control surface; a
// Scenario bundles the two. Install with WithTraffic, WithFaults, or
// WithScenario; discover canned scenarios through the registry
// (RegisterScenario, ScenarioNames, BuildScenario) — the same catalog
// cupsim's and cupbench's -scenario flags consume.
type (
	// Traffic generates a run's client query workload.
	Traffic = internal.Traffic
	// TrafficStream yields successive query arrivals for one run.
	TrafficStream = internal.TrafficStream
	// TrafficEnv is a generator's window into one run (seeded RNG,
	// workload shape, query window).
	TrafficEnv = internal.TrafficEnv
	// QueryEvent is one client query arrival.
	QueryEvent = internal.QueryEvent
	// FlashCrowd surges one suddenly hot key over a quiet background.
	FlashCrowd = internal.FlashCrowd
	// DiurnalWave modulates the query rate sinusoidally (day/night load).
	DiurnalWave = internal.DiurnalWave
	// ZipfDrift rotates the Zipf popularity map mid-run.
	ZipfDrift = internal.ZipfDrift
	// ClosedLoop models think-time clients (a true closed loop on the
	// live transport).
	ClosedLoop = internal.ClosedLoop
	// Fault is a scripted intervention (capacity loss, churn).
	Fault = internal.Fault
	// FaultEvent is one timed intervention.
	FaultEvent = internal.FaultEvent
	// FaultSurface is the control plane faults act on; both runtimes
	// implement it.
	FaultSurface = internal.FaultSurface
	// CapacityFault is the §3.7 degraded-capacity experiment.
	CapacityFault = internal.CapacityFault
	// NodeChurn scripts §2.9 membership changes.
	NodeChurn = internal.NodeChurn
	// ReplicaChurn adds and removes replicas of a key over time.
	ReplicaChurn = internal.ReplicaChurn
	// Scenario bundles a traffic generator with fault scripts.
	Scenario = internal.Scenario
)

// AnyNode marks a QueryEvent's node as deployment-chosen: a uniformly
// random alive peer is drawn at delivery time.
const AnyNode = internal.AnyNode

// PoissonTraffic is the paper's default workload (§3.2): network-wide
// Poisson arrivals at rate λ over the configured query window. A
// non-positive rate uses the run's WithQueryRate. Same seed, same
// options: bit-identical counters to the pre-Scenario driver.
func PoissonTraffic(rate float64) Traffic { return internal.PoissonTraffic(rate) }

// scenarioRegistry maps names to scenario builders. Builders return a
// fresh value per call so callers may mutate the result.
var (
	scenarioMu       sync.RWMutex
	scenarioRegistry = map[string]func() Scenario{}
)

// RegisterScenario adds a named scenario builder to the registry used
// by BuildScenario and the cupsim/cupbench -scenario flags. It panics
// on an empty name or a duplicate registration, mirroring
// overlay.Register.
func RegisterScenario(name string, build func() Scenario) {
	if name == "" || build == nil {
		panic("cup: RegisterScenario needs a name and a builder")
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioRegistry[name]; dup {
		panic(fmt.Sprintf("cup: scenario %q registered twice", name))
	}
	scenarioRegistry[name] = build
}

// ScenarioNames lists the registered scenarios in sorted order.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarioRegistry))
	for name := range scenarioRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildScenario constructs a registered scenario by name.
func BuildScenario(name string) (Scenario, error) {
	scenarioMu.RLock()
	build := scenarioRegistry[name]
	scenarioMu.RUnlock()
	if build == nil {
		names := ScenarioNames()
		return Scenario{}, fmt.Errorf("cup: unknown scenario %q (registered: %v)", name, names)
	}
	sc := build()
	if sc.Name == "" {
		sc.Name = name
	}
	return sc, nil
}

// The built-in scenario catalog. Every entry runs on both transports;
// parameters left zero inherit the deployment's options (rate, window,
// keys), so the same scenario scales with WithQueryRate/WithQueryWindow.
func init() {
	RegisterScenario("paper", func() Scenario {
		return Scenario{Traffic: PoissonTraffic(0)}
	})
	RegisterScenario("flashcrowd", func() Scenario {
		return Scenario{Traffic: FlashCrowd{}}
	})
	RegisterScenario("diurnal", func() Scenario {
		return Scenario{Traffic: DiurnalWave{}}
	})
	RegisterScenario("zipf-drift", func() Scenario {
		return Scenario{Traffic: ZipfDrift{}}
	})
	RegisterScenario("closed-loop", func() Scenario {
		return Scenario{Traffic: ClosedLoop{}}
	})
	RegisterScenario("capacity", func() Scenario {
		return Scenario{
			Traffic: PoissonTraffic(0),
			Faults:  []Fault{CapacityFault{Capacity: 0.25, Recover: true}},
		}
	})
	RegisterScenario("churn", func() Scenario {
		return Scenario{
			Traffic: PoissonTraffic(0),
			Faults:  []Fault{NodeChurn{Rounds: 20}},
		}
	})
	RegisterScenario("replica-churn", func() Scenario {
		return Scenario{
			Traffic: PoissonTraffic(0),
			Faults:  []Fault{ReplicaChurn{Rounds: 12, Min: 1}},
		}
	})
}
