// Benchmarks regenerating every table and figure of the CUP paper's
// evaluation (§3), one testing.B per artifact, plus the DESIGN.md
// ablations. Each iteration regenerates the complete artifact at reduced
// scale (the same code path as `cupbench`; `cupbench -full` reproduces
// the paper's exact parameters). Rendered tables are attached via b.Log —
// run with `go test -bench=. -benchtime=1x -v` to see them.
package cup_test

import (
	"fmt"
	"testing"

	"cup/internal/experiment"
	"cup/internal/overlay"
)

// benchArtifact runs one experiment generator per iteration.
func benchArtifact(b *testing.B, name string) {
	gen, ok := experiment.Registry[name]
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	sc := experiment.Scale{Seed: 1}
	var rendered string
	for i := 0; i < b.N; i++ {
		rendered = gen(sc).Render()
	}
	if rendered == "" {
		b.Fatal("experiment produced no output")
	}
	b.Log("\n" + rendered)
}

// BenchmarkFig3PushLevel regenerates Figure 3: total and miss cost versus
// push level for λ ∈ {1, 10} queries/s on a 2^10-node CAN.
func BenchmarkFig3PushLevel(b *testing.B) { benchArtifact(b, "fig3") }

// BenchmarkFig4PushLevel regenerates Figure 4: the same sweep at
// λ ∈ {100, 1000} queries/s (log-scale axis in the paper).
func BenchmarkFig4PushLevel(b *testing.B) { benchArtifact(b, "fig4") }

// BenchmarkTable1Policies regenerates Table 1: total cost under standard
// caching, linear/logarithmic/second-chance cut-off policies, and the
// optimal push level, for λ ∈ {1, 10, 100, 1000}.
func BenchmarkTable1Policies(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkTable2NetworkSize regenerates Table 2: CUP vs standard caching
// across network sizes n = 2^k.
func BenchmarkTable2NetworkSize(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkTable3Replicas regenerates Table 3: naive vs
// replica-independent cut-off for varying replicas per key.
func BenchmarkTable3Replicas(b *testing.B) { benchArtifact(b, "table3") }

// BenchmarkFig5Capacity regenerates Figure 5: total cost vs reduced
// outgoing capacity at λ = 1 query/s.
func BenchmarkFig5Capacity(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFig6Capacity regenerates Figure 6: the capacity sweep at
// λ = 1000 queries/s.
func BenchmarkFig6Capacity(b *testing.B) { benchArtifact(b, "fig6") }

// BenchmarkAblationOverlay re-runs the headline comparison on Chord
// instead of CAN (§2.2 overlay independence).
func BenchmarkAblationOverlay(b *testing.B) { benchArtifact(b, "overlay") }

// BenchmarkAblationCoalescing measures the query channel's burst
// coalescing under a flash crowd (§2.5).
func BenchmarkAblationCoalescing(b *testing.B) { benchArtifact(b, "coalesce") }

// BenchmarkAblationReordering measures §2.8's update re-ordering under
// constrained outgoing capacity.
func BenchmarkAblationReordering(b *testing.B) { benchArtifact(b, "reorder") }

// BenchmarkJustifiedUpdates validates the §3.1 cost model's
// justified-update prediction against measurements.
func BenchmarkJustifiedUpdates(b *testing.B) { benchArtifact(b, "justified") }

// BenchmarkAblationAggregation measures the §3.6 authority-side refresh
// suppression and aggregation techniques with many replicas per key.
func BenchmarkAblationAggregation(b *testing.B) { benchArtifact(b, "aggregate") }

// BenchmarkAblationPiggyback measures §2.7's clear-bit piggybacking
// against the paper's standalone accounting.
func BenchmarkAblationPiggyback(b *testing.B) { benchArtifact(b, "piggyback") }

// BenchmarkAblationLatency re-runs the headline comparison under
// heterogeneous per-link latency models.
func BenchmarkAblationLatency(b *testing.B) { benchArtifact(b, "latency") }

// BenchmarkAblationChurn measures CUP vs standard caching under §2.9
// node joins and departures.
func BenchmarkAblationChurn(b *testing.B) { benchArtifact(b, "churn") }

// BenchmarkOverlayRouting measures raw routing cost (one PathTo walk per
// iteration on a 1024-node overlay) for every registered substrate —
// CAN, Chord, and Kademlia — so BENCH_*.json tracks per-overlay routing
// cost side by side.
func BenchmarkOverlayRouting(b *testing.B) {
	const n = 1024
	for _, kind := range overlay.Kinds() {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			ov := overlay.MustBuild(kind, n, 1)
			keys := make([]overlay.Key, 256)
			for i := range keys {
				keys[i] = overlay.Key(fmt.Sprintf("bench-%d", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				overlay.PathTo(ov, overlay.NodeID(i%n), keys[i%len(keys)], 10*n+256)
			}
		})
	}
}

// BenchmarkOverlayBuild measures construction cost per substrate at
// 1024 nodes (the CAN's random joins, Chord's finger tables, Kademlia's
// k-buckets).
func BenchmarkOverlayBuild(b *testing.B) {
	for _, kind := range overlay.Kinds() {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				overlay.MustBuild(kind, 1024, int64(i+1))
			}
		})
	}
}
