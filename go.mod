module cup

go 1.22
