package cup

import (
	"fmt"
	"strconv"

	internal "cup/internal/cup"
	"cup/internal/live"
	"cup/internal/obs"
)

// Telemetry re-exports. The registry and its handles live in
// cup/internal/obs; these aliases make the snapshot and trace surfaces
// part of the public API.
type (
	// MetricLabel is one metric label pair.
	MetricLabel = obs.Label
	// MetricSnapshot is one metric series' point-in-time state.
	MetricSnapshot = obs.MetricSnapshot
	// Trace is the reconstructed span tree of one key's propagation.
	Trace = obs.Trace
	// Span is one node's participation in a propagation tree.
	Span = obs.Span
)

// WithTelemetry enables the telemetry subsystem: a metrics registry fed
// by a zero-allocation bus collector, and a propagation tracer
// reconstructing per-key span trees. With a non-empty addr the
// deployment also serves HTTP there — Prometheus-text /metrics, JSON
// /trace/{key}, and the /debug/pprof endpoints; ":0" picks a free port
// (read it back via TelemetryAddr). An empty addr collects without
// serving — Metrics, MetricValue, and Trace still work.
func WithTelemetry(addr string) Option {
	return func(o *options) {
		o.telemetry = true
		o.telemetryAddr = addr
	}
}

// telemetry bundles the per-deployment observability state New wires up
// under WithTelemetry.
type telemetry struct {
	reg    *obs.Registry
	col    *obs.Collector
	tracer *obs.Tracer
	srv    *obs.Server
}

// initTelemetry builds the registry, collector, and tracer, attaches
// them to the bus, registers the deployment-shape gauges, and (with a
// non-empty addr) starts the HTTP server. Called from New after the
// transport is built, so occupancy gauges can read runtime state.
func (d *Deployment) initTelemetry(o *options) error {
	reg := obs.NewRegistry()
	t := &telemetry{
		reg:    reg,
		col:    obs.NewCollector(reg),
		tracer: obs.NewTracer(),
	}
	d.detach = append(d.detach, d.bus.Attach(t.col), d.bus.Attach(t.tracer))

	reg.Gauge("cup_info", "Deployment shape (always 1; labels carry the configuration).",
		MetricLabel{Key: "transport", Value: o.transport.String()},
		MetricLabel{Key: "overlay", Value: o.p.OverlayKind}).Set(1)
	reg.Gauge("cup_nodes", "Overlay size of this deployment.").Set(float64(o.p.Nodes))
	reg.GaugeFunc("cup_bus_dropped_events",
		"Events discarded because a channel subscriber's buffer was full.",
		func() float64 { return float64(d.bus.Dropped()) })

	if sr, ok := d.rt.(*simRuntime); ok {
		// One queue-depth gauge per scheduler shard (a single series for
		// the classic single-heap run): scrapes show where the event load
		// sits across the conservative synchronization windows.
		for i := 0; i < sr.s.ShardCount(); i++ {
			i := i
			reg.GaugeFunc("cup_sim_shard_queue_depth",
				"Pending events in this scheduler shard's queue.",
				func() float64 {
					sr.mu.Lock()
					defer sr.mu.Unlock()
					return float64(sr.s.ShardQueueDepth(i))
				},
				MetricLabel{Key: "shard", Value: strconv.Itoa(i)})
		}
	}

	if lr, ok := d.rt.(*liveRuntime); ok {
		// Occupancy gauges read live state at scrape time; a never-booted
		// (lazy) network reports zero rather than booting to be scraped.
		reg.GaugeFunc("cup_live_inbox_used",
			"Messages queued across live peer inboxes.",
			func() float64 {
				if n := lr.peek(); n != nil {
					used, _ := n.InboxLoad()
					return float64(used)
				}
				return 0
			})
		reg.GaugeFunc("cup_live_inbox_capacity",
			"Total live peer inbox capacity.",
			func() float64 {
				if n := lr.peek(); n != nil {
					_, capacity := n.InboxLoad()
					return float64(capacity)
				}
				return 0
			})
		reg.GaugeFunc("cup_live_ports_used",
			"Inbox slots currently drawn from the process-wide live port budget.",
			func() float64 { return float64(live.PortsInUse()) })
		reg.Gauge("cup_live_port_budget",
			"Process-wide live port budget (inbox slots).").
			Set(float64(live.DefaultPortBudget))
		// Refresh pacing is process-wide like the port budget, so these
		// series read the shared pacer, not per-deployment state.
		reg.GaugeFunc("cup_live_refresh_budget",
			"Process-wide refresh pacing budget (refresh publishes/second).",
			live.RefreshBudget)
		reg.GaugeFunc("cup_live_refresh_paced_total",
			"Refresh publishes delayed by the process-wide pacing budget.",
			func() float64 { paced, _ := live.RefreshPacingStats(); return float64(paced) })
		reg.GaugeFunc("cup_live_refresh_wait_seconds",
			"Total wall-clock delay the refresh pacing budget imposed.",
			func() float64 { _, waited := live.RefreshPacingStats(); return waited.Seconds() })
	}

	// When the telemetry address is also a serving address, initServing
	// binds it once and serves /metrics, /trace, and /v1/* together;
	// starting a second server here would lose the port race.
	if o.telemetryAddr != "" && !addrClaimedByServing(o, o.telemetryAddr) {
		srv, err := obs.NewServer(o.telemetryAddr, reg, t.tracer)
		if err != nil {
			return fmt.Errorf("cup: telemetry server: %w", err)
		}
		t.srv = srv
	}
	d.tele = t
	return nil
}

// Metrics snapshots every telemetry series, or nil without
// WithTelemetry.
func (d *Deployment) Metrics() []MetricSnapshot {
	if d.tele == nil {
		return nil
	}
	return d.tele.reg.Snapshot()
}

// MetricValue reads one telemetry series: counters and gauges report
// their value, histograms their sample count. The bool is false without
// WithTelemetry or when no such series exists.
func (d *Deployment) MetricValue(name string, labels ...MetricLabel) (float64, bool) {
	if d.tele == nil {
		return 0, false
	}
	return d.tele.reg.Value(name, labels...)
}

// Trace returns the reconstructed propagation span tree for key. The
// bool is false without WithTelemetry or when no events for the key
// were observed.
func (d *Deployment) Trace(key Key) (Trace, bool) {
	if d.tele == nil {
		return Trace{Key: key, Root: internal.LocalClient}, false
	}
	return d.tele.tracer.Trace(key)
}

// TraceKeys lists every traced key, sorted; nil without WithTelemetry.
func (d *Deployment) TraceKeys() []Key {
	if d.tele == nil {
		return nil
	}
	return d.tele.tracer.Keys()
}

// TelemetryAddr returns the bound telemetry HTTP address (useful with
// WithTelemetry(":0")), or "" when no server is running.
func (d *Deployment) TelemetryAddr() string {
	if d.tele == nil || d.tele.srv == nil {
		return ""
	}
	return d.tele.srv.Addr()
}
