package wire

import (
	"bytes"
	"testing"

	"cup/internal/cache"
	"cup/internal/cup"
)

// FuzzWire throws arbitrary bytes at Unmarshal and pins the codec's
// canonical-encoding property: any payload Unmarshal accepts must
// re-Marshal to the identical bytes (the encoding has no redundant
// representations — every field is fixed-width or length-prefixed and
// trailing bytes are rejected), and the re-encoded payload must decode
// again. Byte-level comparison sidesteps NaN: a fuzzed Expires can
// carry any NaN bit pattern, which reflect.DeepEqual would call
// unequal even when the codec preserved it perfectly.
func FuzzWire(f *testing.F) {
	// Structured seeds: one valid frame per message kind, plus mutants
	// the fuzzer can splice (truncation, bad kind, trailing garbage).
	seeds := []Message{
		Hello{From: 7},
		Query{From: 3, Key: "movies/inception", QueryID: 99},
		ClearBit{From: 12, Key: "k"},
		UpdateMsg{From: 5, Update: cup.Update{
			Key: "movies/inception", Type: cup.Append, Replica: 2, Depth: 3,
			Expires: 360.5, Lifetime: 300, QueryID: 41,
			Entries: []cache.Entry{
				{Key: "movies/inception", Replica: 0, Addr: "198.51.100.1", Expires: 360.5},
				{Key: "movies/inception", Replica: 1, Addr: "198.51.100.2", Expires: 420},
			},
		}},
		UpdateMsg{From: 1, Update: cup.Update{Key: "", Type: cup.Delete}},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add(append(Marshal(Hello{From: 1}), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		out := Marshal(m)
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding:\n accepted % x\nre-encoded % x", data, out)
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v (% x)", err, out)
		}
		if out2 := Marshal(m2); !bytes.Equal(out, out2) {
			t.Fatalf("second round trip diverged:\n% x\n% x", out, out2)
		}
		// The framed transport must carry the same payload intact.
		if len(out) <= MaxFrame {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, m); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			m3, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if !bytes.Equal(Marshal(m3), out) {
				t.Fatal("frame round trip diverged")
			}
		}
	})
}
