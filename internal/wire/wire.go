// Package wire defines the binary wire protocol for CUP's two logical
// channels. Messages are length-prefixed frames; the payload is a
// one-byte message type followed by fixed-width fields and
// length-prefixed strings, all big-endian. The codec is hand-rolled on
// encoding/binary (no reflection) so framing errors are explicit and the
// format is stable across Go versions — what a deployed peer-to-peer
// protocol needs.
//
// Frame layout:
//
//	uint32  payload length (excluding itself), ≤ MaxFrame
//	byte    message kind (KindQuery | KindUpdate | KindClearBit | KindHello)
//	...     kind-specific fields
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// Kind discriminates frames on the wire.
type Kind byte

const (
	// KindQuery travels up a query channel.
	KindQuery Kind = 1
	// KindUpdate travels down an update channel.
	KindUpdate Kind = 2
	// KindClearBit asks the receiver to clear the sender's interest bit.
	KindClearBit Kind = 3
	// KindHello announces the sender's node ID when a connection opens.
	KindHello Kind = 4
)

// MaxFrame bounds a frame's payload; larger frames are rejected rather
// than buffered, so a corrupt length prefix cannot exhaust memory.
const MaxFrame = 1 << 20

// Common protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrBadKind       = errors.New("wire: unknown message kind")
)

// Query is a search query message (§2.5).
type Query struct {
	From    overlay.NodeID
	Key     overlay.Key
	QueryID uint64
}

// UpdateMsg carries one update (§2.4/§2.6).
type UpdateMsg struct {
	From   overlay.NodeID
	Update cup.Update
}

// ClearBit is the §2.7 control message.
type ClearBit struct {
	From overlay.NodeID
	Key  overlay.Key
}

// Hello identifies a peer at connection setup.
type Hello struct {
	From overlay.NodeID
}

// Message is any protocol frame.
type Message interface {
	kind() Kind
}

func (Query) kind() Kind     { return KindQuery }
func (UpdateMsg) kind() Kind { return KindUpdate }
func (ClearBit) kind() Kind  { return KindClearBit }
func (Hello) kind() Kind     { return KindHello }

// buffer is a tiny append-based encoder.
type buffer struct{ b []byte }

func (w *buffer) u8(v byte)     { w.b = append(w.b, v) }
func (w *buffer) u16(v uint16)  { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *buffer) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buffer) u64(v uint64)  { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *buffer) i32(v int32)   { w.u32(uint32(v)) }
func (w *buffer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *buffer) str(s string) {
	if len(s) > math.MaxUint16 {
		panic(fmt.Sprintf("wire: string of %d bytes exceeds uint16 length prefix", len(s)))
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// reader is the matching decoder; it fails loudly on truncation.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// putEntry encodes one index entry.
func putEntry(w *buffer, e cache.Entry) {
	w.str(string(e.Key))
	w.i32(int32(e.Replica))
	w.str(e.Addr)
	w.f64(float64(e.Expires))
}

func getEntry(r *reader) cache.Entry {
	return cache.Entry{
		Key:     overlay.Key(r.str()),
		Replica: int(r.i32()),
		Addr:    r.str(),
		Expires: sim.Time(r.f64()),
	}
}

// Marshal encodes a message payload (without the frame length prefix).
func Marshal(m Message) []byte {
	w := &buffer{}
	w.u8(byte(m.kind()))
	switch v := m.(type) {
	case Query:
		w.i32(int32(v.From))
		w.str(string(v.Key))
		w.u64(v.QueryID)
	case UpdateMsg:
		w.i32(int32(v.From))
		u := v.Update
		w.str(string(u.Key))
		w.u8(byte(u.Type))
		w.i32(int32(u.Replica))
		w.i32(int32(u.Depth))
		w.f64(float64(u.Expires))
		w.f64(float64(u.Lifetime))
		w.u64(u.QueryID)
		if len(u.Entries) > math.MaxUint16 {
			panic("wire: update with more than 65535 entries")
		}
		w.u16(uint16(len(u.Entries)))
		for _, e := range u.Entries {
			putEntry(w, e)
		}
	case ClearBit:
		w.i32(int32(v.From))
		w.str(string(v.Key))
	case Hello:
		w.i32(int32(v.From))
	default:
		panic(fmt.Sprintf("wire: unknown message %T", m))
	}
	return w.b
}

// Unmarshal decodes one payload produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	r := &reader{b: b}
	kind := Kind(r.u8())
	var m Message
	switch kind {
	case KindQuery:
		m = Query{
			From:    overlay.NodeID(r.i32()),
			Key:     overlay.Key(r.str()),
			QueryID: r.u64(),
		}
	case KindUpdate:
		v := UpdateMsg{From: overlay.NodeID(r.i32())}
		v.Update.Key = overlay.Key(r.str())
		v.Update.Type = cup.UpdateType(r.u8())
		v.Update.Replica = int(r.i32())
		v.Update.Depth = int(r.i32())
		v.Update.Expires = sim.Time(r.f64())
		v.Update.Lifetime = sim.Duration(r.f64())
		v.Update.QueryID = r.u64()
		n := int(r.u16())
		if n > 0 {
			v.Update.Entries = make([]cache.Entry, 0, min(n, 1024))
			for i := 0; i < n; i++ {
				v.Update.Entries = append(v.Update.Entries, getEntry(r))
				if r.err != nil {
					break
				}
			}
		}
		m = v
	case KindClearBit:
		m = ClearBit{From: overlay.NodeID(r.i32()), Key: overlay.Key(r.str())}
	case KindHello:
		m = Hello{From: overlay.NodeID(r.i32())}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, m Message) error {
	payload := Marshal(m)
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return Unmarshal(payload)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
