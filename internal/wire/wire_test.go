package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

func sampleUpdate() cup.Update {
	return cup.Update{
		Key:      "movies/inception",
		Type:     cup.Refresh,
		Replica:  3,
		Depth:    7,
		Expires:  1234.5,
		Lifetime: 300,
		QueryID:  0xdeadbeef,
		Entries: []cache.Entry{
			{Key: "movies/inception", Replica: 3, Addr: "198.51.100.7:443", Expires: 1234.5},
			{Key: "movies/inception", Replica: 9, Addr: "203.0.113.9", Expires: 999},
		},
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	out, err := Unmarshal(Marshal(m))
	if err != nil {
		t.Fatalf("round trip of %T: %v", m, err)
	}
	return out
}

func TestQueryRoundTrip(t *testing.T) {
	in := Query{From: 42, Key: "some/key", QueryID: 7}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := UpdateMsg{From: 17, Update: sampleUpdate()}
	got := roundTrip(t, in).(UpdateMsg)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestUpdateNoEntriesRoundTrip(t *testing.T) {
	in := UpdateMsg{From: 1, Update: cup.Update{Key: "k", Type: cup.Delete, Replica: 5, Expires: 10}}
	got := roundTrip(t, in).(UpdateMsg)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestClearBitHelloRoundTrip(t *testing.T) {
	if got := roundTrip(t, ClearBit{From: 9, Key: "k"}); got != (ClearBit{From: 9, Key: "k"}) {
		t.Fatalf("clearbit: %+v", got)
	}
	if got := roundTrip(t, Hello{From: 3}); got != (Hello{From: 3}) {
		t.Fatalf("hello: %+v", got)
	}
}

func TestUnknownKindRejected(t *testing.T) {
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	b := Marshal(Hello{From: 1})
	if _, err := Unmarshal(append(b, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTruncationRejectedEverywhere(t *testing.T) {
	full := Marshal(UpdateMsg{From: 17, Update: sampleUpdate()})
	for n := 0; n < len(full); n++ {
		if _, err := Unmarshal(full[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Hello{From: 1},
		Query{From: 2, Key: "k", QueryID: 3},
		UpdateMsg{From: 4, Update: sampleUpdate()},
		ClearBit{From: 5, Key: "k"},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after drain: %v, want EOF", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameShortPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10}) // claims 10 bytes
	buf.Write([]byte{1, 2})        // delivers 2
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestOversizeStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize string did not panic")
		}
	}()
	Marshal(Query{Key: overlay.Key(strings.Repeat("x", 70000))})
}

// Property: arbitrary queries and clear-bits survive a round trip.
func TestPropertyQueryRoundTrip(t *testing.T) {
	f := func(from int32, key string, qid uint64) bool {
		if len(key) > 60000 {
			key = key[:60000]
		}
		in := Query{From: overlay.NodeID(from), Key: overlay.Key(key), QueryID: qid}
		out, err := Unmarshal(Marshal(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary updates survive a round trip.
func TestPropertyUpdateRoundTrip(t *testing.T) {
	f := func(from int32, key string, ty uint8, replica int16, depth uint8,
		exp, life float64, addrs []string) bool {
		if len(key) > 1000 {
			key = key[:1000]
		}
		u := cup.Update{
			Key:      overlay.Key(key),
			Type:     cup.UpdateType(ty % 4),
			Replica:  int(replica),
			Depth:    int(depth),
			Expires:  sim.Time(exp),
			Lifetime: sim.Duration(life),
		}
		for i, a := range addrs {
			if len(a) > 1000 {
				a = a[:1000]
			}
			u.Entries = append(u.Entries, cache.Entry{
				Key: u.Key, Replica: i, Addr: a, Expires: sim.Time(exp),
			})
		}
		in := UpdateMsg{From: overlay.NodeID(from), Update: u}
		out, err := Unmarshal(Marshal(in))
		return err == nil && reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random garbage never panics the decoder.
func TestPropertyGarbageNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Error("decoder panicked")
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFramesOverRealTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	want := UpdateMsg{From: 8, Update: sampleUpdate()}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- WriteFrame(conn, want)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}
