package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"cup/internal/overlay"
	"cup/internal/sim"
)

func entry(k string, r int, exp sim.Time) Entry {
	return Entry{Key: overlay.Key(k), Replica: r, Addr: fmt.Sprintf("10.0.0.%d", r), Expires: exp}
}

func TestFreshness(t *testing.T) {
	e := entry("k", 0, 100)
	if !e.Fresh(99) {
		t.Fatal("entry should be fresh before expiry")
	}
	if e.Fresh(100) {
		t.Fatal("entry should be stale exactly at expiry")
	}
	if e.Fresh(101) {
		t.Fatal("entry should be stale after expiry")
	}
}

func TestPutGet(t *testing.T) {
	s := NewStore()
	s.Put(entry("k", 0, 100))
	got, ok := s.Get("k", 0)
	if !ok || got.Expires != 100 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := s.Get("k", 1); ok {
		t.Fatal("Get of absent replica returned ok")
	}
	if _, ok := s.Get("other", 0); ok {
		t.Fatal("Get of absent key returned ok")
	}
}

func TestPutReplaces(t *testing.T) {
	s := NewStore()
	s.Put(entry("k", 0, 100))
	s.Put(entry("k", 0, 200))
	got, _ := s.Get("k", 0)
	if got.Expires != 200 {
		t.Fatalf("Put did not replace: %v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestFreshSortedAndFiltered(t *testing.T) {
	s := NewStore()
	s.Put(entry("k", 2, 300))
	s.Put(entry("k", 0, 50)) // stale at t=100
	s.Put(entry("k", 1, 300))
	fresh := s.Fresh("k", 100)
	if len(fresh) != 2 {
		t.Fatalf("Fresh returned %d entries, want 2", len(fresh))
	}
	if fresh[0].Replica != 1 || fresh[1].Replica != 2 {
		t.Fatalf("Fresh not sorted by replica: %v", fresh)
	}
	if s.Fresh("k", 500) != nil {
		t.Fatal("Fresh after all expiries should be nil")
	}
	if s.Fresh("absent", 0) != nil {
		t.Fatal("Fresh of absent key should be nil")
	}
}

func TestHasFreshHasAny(t *testing.T) {
	s := NewStore()
	if s.HasAny("k") || s.HasFresh("k", 0) {
		t.Fatal("empty store claims entries")
	}
	s.Put(entry("k", 0, 100))
	if !s.HasFresh("k", 50) {
		t.Fatal("HasFresh false before expiry")
	}
	if s.HasFresh("k", 150) {
		t.Fatal("HasFresh true after expiry")
	}
	if !s.HasAny("k") {
		t.Fatal("HasAny false for stale entry")
	}
}

func TestReplaceKey(t *testing.T) {
	s := NewStore()
	s.Put(entry("k", 0, 100))
	s.Put(entry("k", 1, 100))
	s.Put(entry("other", 0, 100))
	s.ReplaceKey("k", []Entry{entry("k", 5, 400)})
	all := s.All("k")
	if len(all) != 1 || all[0].Replica != 5 {
		t.Fatalf("ReplaceKey result: %v", all)
	}
	if !s.HasAny("other") {
		t.Fatal("ReplaceKey touched another key")
	}
	s.ReplaceKey("k", nil)
	if s.HasAny("k") {
		t.Fatal("ReplaceKey(nil) did not clear")
	}
}

func TestReplaceKeyRejectsForeignEntries(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Error("ReplaceKey with foreign entry did not panic")
		}
	}()
	s.ReplaceKey("k", []Entry{entry("wrong", 0, 10)})
}

func TestRemove(t *testing.T) {
	s := NewStore()
	s.Put(entry("k", 0, 100))
	s.Put(entry("k", 1, 100))
	if !s.Remove("k", 0) {
		t.Fatal("Remove of present entry returned false")
	}
	if s.Remove("k", 0) {
		t.Fatal("second Remove returned true")
	}
	if s.Remove("absent", 0) {
		t.Fatal("Remove of absent key returned true")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Remove("k", 1) {
		t.Fatal("Remove of last entry returned false")
	}
	if s.HasAny("k") {
		t.Fatal("key survives after removing all replicas")
	}
}

func TestRemoveKey(t *testing.T) {
	s := NewStore()
	s.Put(entry("k", 0, 100))
	s.Put(entry("k", 1, 100))
	if n := s.RemoveKey("k"); n != 2 {
		t.Fatalf("RemoveKey = %d, want 2", n)
	}
	if n := s.RemoveKey("k"); n != 0 {
		t.Fatalf("second RemoveKey = %d, want 0", n)
	}
}

func TestMaxExpiry(t *testing.T) {
	s := NewStore()
	if s.MaxExpiry("k") != 0 {
		t.Fatal("MaxExpiry of absent key should be 0")
	}
	s.Put(entry("k", 0, 100))
	s.Put(entry("k", 1, 250))
	s.Put(entry("k", 2, 175))
	if got := s.MaxExpiry("k"); got != 250 {
		t.Fatalf("MaxExpiry = %v, want 250", got)
	}
}

func TestExpire(t *testing.T) {
	s := NewStore()
	s.Put(entry("a", 0, 100))
	s.Put(entry("a", 1, 300))
	s.Put(entry("b", 0, 50))
	if n := s.Expire(200); n != 2 {
		t.Fatalf("Expire dropped %d, want 2", n)
	}
	if s.HasAny("b") {
		t.Fatal("fully expired key still present")
	}
	if !s.HasFresh("a", 200) {
		t.Fatal("fresh entry dropped by Expire")
	}
	if n := s.Expire(200); n != 0 {
		t.Fatalf("second Expire dropped %d, want 0", n)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"zebra", "alpha", "mid"} {
		s.Put(entry(k, 0, 100))
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[1] != "mid" || keys[2] != "zebra" {
		t.Fatalf("Keys = %v", keys)
	}
}

// Property: Len equals the number of distinct (key, replica) pairs put.
func TestPropertyLenMatchesDistinctPairs(t *testing.T) {
	f := func(pairs []struct {
		K uint8
		R uint8
	}) bool {
		s := NewStore()
		distinct := make(map[[2]uint8]bool)
		for _, p := range pairs {
			s.Put(entry(fmt.Sprintf("k%d", p.K), int(p.R), 100))
			distinct[[2]uint8{p.K, p.R}] = true
		}
		return s.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Expire(now), every remaining entry is fresh at now and
// Fresh() == All().
func TestPropertyExpireLeavesOnlyFresh(t *testing.T) {
	f := func(exps []uint16, now uint16) bool {
		s := NewStore()
		for i, e := range exps {
			s.Put(entry("k", i, sim.Time(e)))
		}
		s.Expire(sim.Time(now))
		all := s.All("k")
		fresh := s.Fresh("k", sim.Time(now))
		if len(all) != len(fresh) {
			return false
		}
		for _, e := range all {
			if !e.Fresh(sim.Time(now)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryString(t *testing.T) {
	e := entry("k", 3, 12.5)
	if e.String() == "" {
		t.Fatal("empty String()")
	}
}
