// Package cache implements the TTL index-entry store used by every CUP
// node: both the cached index entries collected while passing queries and
// updates (§2.1 "Cached index entries") and the authority node's local
// index directory (§2.1 "Local index directory").
//
// An index entry is a (key, value) pair whose value points at a replica
// serving the content. Each entry carries an absolute expiration time
// (the paper's lifetime + timestamp collapsed into one instant); an entry
// is fresh until it expires and must not answer queries afterwards.
package cache

import (
	"fmt"
	"sort"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// Entry is one index entry: key K is served by replica Replica at address
// Addr until Expires.
type Entry struct {
	Key     overlay.Key
	Replica int
	Addr    string
	Expires sim.Time
}

// Fresh reports whether the entry can still answer queries at time now.
func (e Entry) Fresh(now sim.Time) bool { return e.Expires > now }

// String implements fmt.Stringer.
func (e Entry) String() string {
	return fmt.Sprintf("%s@replica%d(%s, exp %.2f)", e.Key, e.Replica, e.Addr, float64(e.Expires))
}

// Store holds index entries grouped by key, one entry per (key, replica).
// The zero value is not usable; call NewStore.
type Store struct {
	byKey map[overlay.Key]map[int]Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byKey: make(map[overlay.Key]map[int]Entry)}
}

// Put inserts or replaces the entry for (e.Key, e.Replica).
func (s *Store) Put(e Entry) {
	m := s.byKey[e.Key]
	if m == nil {
		m = make(map[int]Entry)
		s.byKey[e.Key] = m
	}
	m[e.Replica] = e
}

// PutAll inserts every entry.
func (s *Store) PutAll(es []Entry) {
	for _, e := range es {
		s.Put(e)
	}
}

// ReplaceKey atomically replaces all entries for k with es. Entries in es
// whose Key differs from k are rejected with a panic: a first-time update
// carrying foreign entries is a protocol bug.
func (s *Store) ReplaceKey(k overlay.Key, es []Entry) {
	delete(s.byKey, k)
	for _, e := range es {
		if e.Key != k {
			panic(fmt.Sprintf("cache: ReplaceKey(%q) given entry for %q", k, e.Key))
		}
		s.Put(e)
	}
}

// Remove deletes the entry for (k, replica) if present, reporting whether
// an entry was removed.
func (s *Store) Remove(k overlay.Key, replica int) bool {
	m := s.byKey[k]
	if m == nil {
		return false
	}
	if _, ok := m[replica]; !ok {
		return false
	}
	delete(m, replica)
	if len(m) == 0 {
		delete(s.byKey, k)
	}
	return true
}

// RemoveKey deletes every entry for k, returning how many were removed.
func (s *Store) RemoveKey(k overlay.Key) int {
	n := len(s.byKey[k])
	delete(s.byKey, k)
	return n
}

// Get returns the entry for (k, replica).
func (s *Store) Get(k overlay.Key, replica int) (Entry, bool) {
	e, ok := s.byKey[k][replica]
	return e, ok
}

// All returns every entry for k (fresh or stale), sorted by replica for
// deterministic iteration. The slice is freshly allocated.
func (s *Store) All(k overlay.Key) []Entry {
	m := s.byKey[k]
	if len(m) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// Fresh returns the fresh entries for k at time now, sorted by replica.
func (s *Store) Fresh(k overlay.Key, now sim.Time) []Entry {
	m := s.byKey[k]
	if len(m) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		if e.Fresh(now) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// HasFresh reports whether any entry for k is fresh at now.
func (s *Store) HasFresh(k overlay.Key, now sim.Time) bool {
	for _, e := range s.byKey[k] {
		if e.Fresh(now) {
			return true
		}
	}
	return false
}

// HasAny reports whether the store holds any entry (fresh or stale) for k.
// Used to distinguish freshness misses from first-time misses.
func (s *Store) HasAny(k overlay.Key) bool { return len(s.byKey[k]) > 0 }

// MaxExpiry returns the latest expiration among entries for k, or zero
// time when none exist.
func (s *Store) MaxExpiry(k overlay.Key) sim.Time {
	var max sim.Time
	for _, e := range s.byKey[k] {
		if e.Expires > max {
			max = e.Expires
		}
	}
	return max
}

// Expire removes every entry that is stale at now across all keys and
// returns how many were dropped. Nodes call this opportunistically; the
// protocol never relies on it because freshness is checked per access.
func (s *Store) Expire(now sim.Time) int {
	dropped := 0
	for k, m := range s.byKey {
		for r, e := range m {
			if !e.Fresh(now) {
				delete(m, r)
				dropped++
			}
		}
		if len(m) == 0 {
			delete(s.byKey, k)
		}
	}
	return dropped
}

// Len returns the total number of entries.
func (s *Store) Len() int {
	n := 0
	for _, m := range s.byKey {
		n += len(m)
	}
	return n
}

// Keys returns all keys with at least one entry, sorted.
func (s *Store) Keys() []overlay.Key {
	out := make([]overlay.Key, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
