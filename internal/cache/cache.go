// Package cache implements the TTL index-entry store used by every CUP
// node: both the cached index entries collected while passing queries and
// updates (§2.1 "Cached index entries") and the authority node's local
// index directory (§2.1 "Local index directory").
//
// An index entry is a (key, value) pair whose value points at a replica
// serving the content. Each entry carries an absolute expiration time
// (the paper's lifetime + timestamp collapsed into one instant); an entry
// is fresh until it expires and must not answer queries afterwards.
package cache

import (
	"fmt"
	"sort"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// Entry is one index entry: key K is served by replica Replica at address
// Addr until Expires.
type Entry struct {
	Key     overlay.Key
	Replica int
	Addr    string
	Expires sim.Time
}

// Fresh reports whether the entry can still answer queries at time now.
func (e Entry) Fresh(now sim.Time) bool { return e.Expires > now }

// String implements fmt.Stringer.
func (e Entry) String() string {
	return fmt.Sprintf("%s@replica%d(%s, exp %.2f)", e.Key, e.Replica, e.Addr, float64(e.Expires))
}

// Store holds index entries grouped by key as compact replica sets: one
// slice per key, sorted by replica, one entry per (key, replica). The
// replica-sorted representation makes every read deterministic without a
// per-call sort, and keeps the per-key footprint one small slice instead
// of a map — the difference between ~100 and ~350 bytes per touched key
// at million-node scale. The zero value is an empty, usable store (the
// struct-of-arrays node state keeps Stores by value and must not pay a
// map allocation per untouched node).
type Store struct {
	byKey map[overlay.Key][]Entry
}

// NewStore returns an empty store. The map is allocated lazily on first
// Put, so constructing a store is free.
func NewStore() *Store {
	return &Store{}
}

// find returns the position of replica in the sorted set es, or the
// insertion point with ok=false.
func find(es []Entry, replica int) (int, bool) {
	i := sort.Search(len(es), func(i int) bool { return es[i].Replica >= replica })
	return i, i < len(es) && es[i].Replica == replica
}

// Put inserts or replaces the entry for (e.Key, e.Replica).
func (s *Store) Put(e Entry) {
	if s.byKey == nil {
		s.byKey = make(map[overlay.Key][]Entry)
	}
	es := s.byKey[e.Key]
	i, ok := find(es, e.Replica)
	if ok {
		es[i] = e
		return
	}
	es = append(es, Entry{})
	copy(es[i+1:], es[i:])
	es[i] = e
	s.byKey[e.Key] = es
}

// PutAll inserts every entry.
func (s *Store) PutAll(es []Entry) {
	for _, e := range es {
		s.Put(e)
	}
}

// ReplaceKey atomically replaces all entries for k with es. Entries in es
// whose Key differs from k are rejected with a panic: a first-time update
// carrying foreign entries is a protocol bug.
func (s *Store) ReplaceKey(k overlay.Key, es []Entry) {
	delete(s.byKey, k)
	for _, e := range es {
		if e.Key != k {
			panic(fmt.Sprintf("cache: ReplaceKey(%q) given entry for %q", k, e.Key))
		}
		s.Put(e)
	}
}

// Remove deletes the entry for (k, replica) if present, reporting whether
// an entry was removed.
func (s *Store) Remove(k overlay.Key, replica int) bool {
	es := s.byKey[k]
	i, ok := find(es, replica)
	if !ok {
		return false
	}
	if len(es) == 1 {
		delete(s.byKey, k)
		return true
	}
	s.byKey[k] = append(es[:i], es[i+1:]...)
	return true
}

// RemoveKey deletes every entry for k, returning how many were removed.
func (s *Store) RemoveKey(k overlay.Key) int {
	n := len(s.byKey[k])
	delete(s.byKey, k)
	return n
}

// Get returns the entry for (k, replica).
func (s *Store) Get(k overlay.Key, replica int) (Entry, bool) {
	es := s.byKey[k]
	if i, ok := find(es, replica); ok {
		return es[i], true
	}
	return Entry{}, false
}

// All returns every entry for k (fresh or stale), sorted by replica for
// deterministic iteration. The slice is freshly allocated — callers ship
// it in updates and must not alias the store's internal state.
func (s *Store) All(k overlay.Key) []Entry {
	es := s.byKey[k]
	if len(es) == 0 {
		return nil
	}
	out := make([]Entry, len(es))
	copy(out, es)
	return out
}

// Fresh returns the fresh entries for k at time now, sorted by replica.
func (s *Store) Fresh(k overlay.Key, now sim.Time) []Entry {
	es := s.byKey[k]
	n := 0
	for i := range es {
		if es[i].Fresh(now) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := range es {
		if es[i].Fresh(now) {
			out = append(out, es[i])
		}
	}
	return out
}

// HasFresh reports whether any entry for k is fresh at now.
func (s *Store) HasFresh(k overlay.Key, now sim.Time) bool {
	for _, e := range s.byKey[k] {
		if e.Fresh(now) {
			return true
		}
	}
	return false
}

// HasAny reports whether the store holds any entry (fresh or stale) for k.
// Used to distinguish freshness misses from first-time misses.
func (s *Store) HasAny(k overlay.Key) bool { return len(s.byKey[k]) > 0 }

// MaxExpiry returns the latest expiration among entries for k, or zero
// time when none exist.
func (s *Store) MaxExpiry(k overlay.Key) sim.Time {
	var max sim.Time
	for _, e := range s.byKey[k] {
		if e.Expires > max {
			max = e.Expires
		}
	}
	return max
}

// Expire removes every entry that is stale at now across all keys and
// returns how many were dropped. Nodes call this opportunistically; the
// protocol never relies on it because freshness is checked per access.
func (s *Store) Expire(now sim.Time) int {
	dropped := 0
	for k, es := range s.byKey {
		keep := es[:0]
		for _, e := range es {
			if e.Fresh(now) {
				keep = append(keep, e)
			} else {
				dropped++
			}
		}
		if len(keep) == 0 {
			delete(s.byKey, k)
		} else if len(keep) != len(es) {
			s.byKey[k] = keep
		}
	}
	return dropped
}

// Len returns the total number of entries.
func (s *Store) Len() int {
	n := 0
	for _, es := range s.byKey {
		n += len(es)
	}
	return n
}

// Keys returns all keys with at least one entry, sorted.
func (s *Store) Keys() []overlay.Key {
	out := make([]overlay.Key, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
