// Package workload is the pre-Scenario fault surface, kept so existing
// Hook-based callers (internal/experiment, older examples) continue to
// work unchanged. The fault scripts themselves now live in the public
// Scenario API — cup.CapacityFault, cup.NodeChurn, cup.ReplicaChurn as
// transport-agnostic cup.Fault values and cup.FlashCrowd as a Traffic
// generator — and this package merely compiles them into cup.Hook
// interventions for the discrete-event driver. New code should use
// cup.WithFaults / cup.WithScenario instead.
package workload

import (
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// CapacityFault mirrors cup.CapacityFault with this package's historic
// field set: the §3.7 experiments reduce a random Fraction of nodes to
// Capacity during scheduled windows bounded by the query window.
//
// Deprecated: use cup.CapacityFault with cup.WithFaults.
type CapacityFault struct {
	// Fraction of nodes affected each round (the paper uses 0.20).
	Fraction float64
	// Capacity is the reduced outgoing capacity c in [0,1].
	Capacity float64
	// Warmup before the first reduction (the paper uses 5 minutes).
	Warmup sim.Duration
	// Down is how long each reduction lasts (the paper uses 10 minutes).
	Down sim.Duration
	// Stabilize separates recovery from the next reduction (5 minutes).
	Stabilize sim.Duration
	// QueryWindow bounds scheduling: reductions repeat while they start
	// inside the querying window.
	QueryStart    sim.Duration
	QueryDuration sim.Duration
}

// window fills the paper's query window defaults.
func (f CapacityFault) window() (start, duration float64) {
	if f.QueryStart == 0 {
		f.QueryStart = 300
	}
	if f.QueryDuration == 0 {
		f.QueryDuration = 3000
	}
	return float64(f.QueryStart), float64(f.QueryDuration)
}

// fault maps the historic fields onto the public script.
func (f CapacityFault) fault(recover bool) cup.CapacityFault {
	return cup.CapacityFault{
		Fraction:  f.Fraction,
		Capacity:  f.Capacity,
		Recover:   recover,
		Warmup:    float64(f.Warmup),
		Down:      float64(f.Down),
		Stabilize: float64(f.Stabilize),
	}
}

// UpAndDown builds the paper's first §3.7 configuration: after a warmup,
// a random node set runs at reduced capacity for Down, recovers for
// Stabilize, then a fresh random set is selected, repeating across the
// query window.
func UpAndDown(f CapacityFault) []cup.Hook {
	start, duration := f.window()
	return cup.FaultHooks(f.fault(true), start, duration)
}

// OnceDownAlwaysDown builds the paper's second configuration: after the
// warmup the selected nodes reduce capacity and never recover.
func OnceDownAlwaysDown(f CapacityFault) []cup.Hook {
	start, duration := f.window()
	return cup.FaultHooks(f.fault(false), start, duration)
}

// FlashCrowd models the paper's motivating surge as a scheduled Hook:
// starting at At, Queries queries for a single hot key arrive Poisson at
// Rate from random nodes.
//
// Deprecated: use the cup.FlashCrowd traffic generator with
// cup.WithTraffic, which layers the surge over the background workload.
type FlashCrowd struct {
	At      sim.Time
	Rate    float64
	Queries int
	Key     overlay.Key // defaults to the simulation's first key
}

// Hooks converts the surge into scheduler work. It keeps the historic
// in-run arrival chain (the surge's randomness interleaves with the
// background workload at fire time), which the coalescing ablation's
// published numbers depend on.
func (f FlashCrowd) Hooks() []cup.Hook {
	return []cup.Hook{{At: f.At, Fn: func(s *cup.Simulation) {
		k := f.Key
		if k == "" {
			k = s.Keys[0]
		}
		remaining := f.Queries
		var arm func()
		arm = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			s.PostQueryAt(overlay.NodeID(s.Rng.Pick(len(s.Nodes))), k)
			s.Sched.After(s.Rng.Exp(f.Rate), arm)
		}
		arm()
	}}}
}

// ReplicaChurn mirrors cup.ReplicaChurn with this package's historic
// field types.
//
// Deprecated: use cup.ReplicaChurn with cup.WithFaults.
type ReplicaChurn struct {
	At     sim.Time
	Period sim.Duration
	Rounds int
	Min    int
	Key    overlay.Key // defaults to the simulation's first key
}

// Hooks expands the churn into timed interventions. Zero rounds
// schedules nothing, preserving this package's historic semantics; a
// zero At or Period now inherits the public cup.ReplicaChurn defaults
// (50 s in, every 60 s) — every caller in this module sets both
// explicitly.
func (c ReplicaChurn) Hooks() []cup.Hook {
	if c.Rounds <= 0 {
		return nil
	}
	return cup.FaultHooks(cup.ReplicaChurn{
		At:     float64(c.At),
		Period: float64(c.Period),
		Rounds: c.Rounds,
		Min:    c.Min,
		Key:    c.Key,
	}, 0, 0)
}

// NodeChurn mirrors cup.NodeChurn with this package's historic field
// types.
//
// Deprecated: use cup.NodeChurn with cup.WithFaults.
type NodeChurn struct {
	At     sim.Time
	Period sim.Duration
	Rounds int
}

// Hooks expands the churn schedule. Zero rounds schedules nothing,
// preserving this package's historic semantics; a zero At or Period now
// inherits the public cup.NodeChurn defaults (50 s in, every 60 s) —
// every caller in this module sets both explicitly.
func (c NodeChurn) Hooks() []cup.Hook {
	if c.Rounds <= 0 {
		return nil
	}
	return cup.FaultHooks(cup.NodeChurn{
		At:     float64(c.At),
		Period: float64(c.Period),
		Rounds: c.Rounds,
	}, 0, 0)
}
