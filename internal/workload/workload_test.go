package workload

import (
	"testing"

	"cup/internal/cup"
	"cup/internal/sim"
)

func baseParams() cup.Params {
	return cup.Params{
		Nodes:         64,
		QueryRate:     2,
		QueryDuration: 1800,
		Seed:          7,
	}
}

func TestCapacityFaultDefaults(t *testing.T) {
	// The paper's §3.7 timing (warmup 300, down 600, stabilize 300) is
	// the zero value of the public script: first reduction one warmup
	// into the window, recovery one down-period later.
	events := cup.CapacityFault{Capacity: 0.25, Recover: true}.Schedule(300, 3000)
	if len(events) != 6 {
		t.Fatalf("events = %d, want 6 (three cycles)", len(events))
	}
	if events[0].At != 600 || events[1].At != 1200 || events[2].At != 1500 {
		t.Fatalf("schedule starts %v/%v/%v, want 600/1200/1500",
			events[0].At, events[1].At, events[2].At)
	}
}

func TestUpAndDownScheduleShape(t *testing.T) {
	hooks := UpAndDown(CapacityFault{Capacity: 0.25, QueryDuration: 3000})
	// Window [300, 3300], first down at 600, cycle 900: downs at 600,
	// 1500, 2400, 3300(excluded) → 3 cycles × 2 hooks.
	if len(hooks) != 6 {
		t.Fatalf("hooks = %d, want 6", len(hooks))
	}
	if hooks[0].At != 600 || hooks[1].At != 1200 {
		t.Fatalf("first cycle at %v/%v, want 600/1200", hooks[0].At, hooks[1].At)
	}
}

func TestOnceDownAlwaysDownSingleHook(t *testing.T) {
	hooks := OnceDownAlwaysDown(CapacityFault{Capacity: 0})
	if len(hooks) != 1 || hooks[0].At != 600 {
		t.Fatalf("hooks = %+v", hooks)
	}
}

func TestUpAndDownRunsAndRecovers(t *testing.T) {
	p := baseParams()
	p.Hooks = UpAndDown(CapacityFault{
		Capacity: 0, QueryDuration: p.QueryDuration,
	})
	s := cup.NewSimulation(p)
	// After the run, every node must be back at full capacity (last
	// recovery hook fires before the drain ends).
	res := s.Run()
	if res.Counters.Queries == 0 {
		t.Fatal("no queries")
	}
	reduced := 0
	for _, n := range s.Nodes {
		if n.Capacity() >= 0 {
			reduced++
		}
	}
	if reduced != 0 {
		t.Fatalf("%d nodes still reduced after Up-And-Down", reduced)
	}
}

func TestOnceDownStaysDown(t *testing.T) {
	p := baseParams()
	p.Hooks = OnceDownAlwaysDown(CapacityFault{
		Capacity: 0.5, QueryDuration: p.QueryDuration,
	})
	s := cup.NewSimulation(p)
	s.Run()
	reduced := 0
	for _, n := range s.Nodes {
		if n.Capacity() >= 0 {
			reduced++
		}
	}
	f := 0.20
	want := int(f * 64)
	if reduced != want {
		t.Fatalf("reduced nodes = %d, want %d", reduced, want)
	}
}

func TestReducedCapacityCostsLessOverheadThanFull(t *testing.T) {
	full := cup.Run(baseParams())
	p := baseParams()
	p.Hooks = OnceDownAlwaysDown(CapacityFault{Capacity: 0, QueryDuration: p.QueryDuration})
	down := cup.Run(p)
	if down.Counters.UpdateHops >= full.Counters.UpdateHops {
		t.Fatalf("capacity loss did not reduce update hops: %d vs %d",
			down.Counters.UpdateHops, full.Counters.UpdateHops)
	}
}

func TestFlashCrowdPostsQueries(t *testing.T) {
	p := baseParams()
	p.QueryRate = 0.001 // near-silent background
	fc := FlashCrowd{At: 500, Rate: 50, Queries: 200}
	p.Hooks = fc.Hooks()
	res := cup.Run(p)
	if res.Counters.Queries < 200 {
		t.Fatalf("queries = %d, want ≥ 200", res.Counters.Queries)
	}
}

func TestFlashCrowdCoalesces(t *testing.T) {
	p := baseParams()
	p.QueryRate = 0.001
	p.HopDelay = 1 // slow network so the surge outruns the response
	fc := FlashCrowd{At: 500, Rate: 500, Queries: 300}
	p.Hooks = fc.Hooks()
	res := cup.Run(p)
	if res.Counters.Coalesced == 0 {
		t.Fatal("flash crowd produced no coalescing")
	}
}

func TestReplicaChurnAddsAndRemoves(t *testing.T) {
	p := baseParams()
	rc := ReplicaChurn{At: 400, Period: 200, Rounds: 5, Min: 1}
	p.Hooks = rc.Hooks()
	res := cup.Run(p)
	// birth + 5 adds + 4 deletes + refreshes: at least 10 originations.
	if res.Counters.UpdatesOriginated < 10 {
		t.Fatalf("originated = %d, want ≥ 10", res.Counters.UpdatesOriginated)
	}
}

func TestHooksComposable(t *testing.T) {
	p := baseParams()
	p.Hooks = append(
		UpAndDown(CapacityFault{Capacity: 0.25, QueryDuration: p.QueryDuration}),
		FlashCrowd{At: 700, Rate: 20, Queries: 50}.Hooks()...)
	res := cup.Run(p)
	if res.Counters.Queries == 0 {
		t.Fatal("composed workload ran nothing")
	}
}

func TestCapacityFaultSampleSize(t *testing.T) {
	count := func(fraction float64) int {
		p := baseParams()
		p.Hooks = OnceDownAlwaysDown(CapacityFault{
			Fraction: fraction, Capacity: 0.5, QueryDuration: p.QueryDuration,
		})
		s := cup.NewSimulation(p)
		s.Run()
		reduced := 0
		for _, n := range s.Nodes {
			if n.Capacity() >= 0 {
				reduced++
			}
		}
		return reduced
	}
	if got := count(0.5); got != 32 {
		t.Fatalf("sample = %d, want 32", got)
	}
	if got := count(0.001); got != 1 {
		t.Fatalf("tiny sample = %d, want 1 (floor)", got)
	}
}

func TestScheduleRespectsQueryWindowEnd(t *testing.T) {
	hooks := UpAndDown(CapacityFault{Capacity: 0.25, QueryStart: 300, QueryDuration: 900})
	// Window ends at 1200; first down at 600, next would start at 1500 > 1200.
	if len(hooks) != 2 {
		t.Fatalf("hooks = %d, want 2", len(hooks))
	}
	last := hooks[len(hooks)-1].At
	if last != sim.Time(1200) {
		t.Fatalf("recovery at %v, want 1200", last)
	}
}

func TestNodeChurnHooksRun(t *testing.T) {
	p := baseParams()
	p.Hooks = NodeChurn{At: 400, Period: 60, Rounds: 10}.Hooks()
	res := cup.Run(p)
	if res.Counters.Queries == 0 {
		t.Fatal("no queries under node churn")
	}
}

func TestNodeChurnKeepsCUPWinning(t *testing.T) {
	p := baseParams()
	p.Hooks = NodeChurn{At: 400, Period: 60, Rounds: 10}.Hooks()
	churned := cup.Run(p)
	pStd := baseParams()
	pStd.Config = cup.Standard()
	pStd.Hooks = NodeChurn{At: 400, Period: 60, Rounds: 10}.Hooks()
	std := cup.Run(pStd)
	if churned.Counters.TotalCost() >= std.Counters.TotalCost() {
		t.Fatalf("CUP under churn (%d) lost to standard (%d)",
			churned.Counters.TotalCost(), std.Counters.TotalCost())
	}
}
