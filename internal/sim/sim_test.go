package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerStartsAtZero(t *testing.T) {
	s := NewScheduler()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if s.Now() != 5 {
		t.Fatalf("final Now() = %v, want 5", s.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: got %d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := NewScheduler()
	var fired Time
	s.At(10, func() {
		s.After(5, func() { fired = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 15 {
		t.Fatalf("After fired at %v, want 15", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event function did not panic")
		}
	}()
	NewScheduler().At(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewScheduler().After(-1, func() {})
}

func TestCancelPreventsExecution(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.At(3, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelZeroIDIsNoop(t *testing.T) {
	s := NewScheduler()
	if s.Cancel(EventID{}) {
		t.Fatal("Cancel of zero ID returned true")
	}
}

func TestCancelStaleHandleAfterReuse(t *testing.T) {
	s := NewScheduler()
	stale := s.At(1, func() {})
	if err := s.Run(); err != nil { // fires and recycles the entry
		t.Fatal(err)
	}
	ran := false
	fresh := s.At(2, func() { ran = true }) // reuses the recycled entry
	if fresh.e != stale.e {
		t.Skip("free list did not reuse the entry") // allocation fallback; nothing to check
	}
	if s.Cancel(stale) {
		t.Fatal("stale handle cancelled a reused entry")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("reused event did not run")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("after Run fired %d events, want 5", len(fired))
	}
}

// RunUntil(Infinity) must return once the queue drains instead of
// spinning on the Infinity <= Infinity comparison.
func TestRunUntilInfinityTerminates(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1, func() { fired++ })
	if err := s.RunUntil(Infinity); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 1 {
		t.Fatalf("Now() = %v, want 1 (Infinity must not advance the clock)", s.Now())
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	s := NewScheduler()
	if err := s.RunUntil(42); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", s.Now())
	}
}

func TestEventBudget(t *testing.T) {
	s := NewScheduler()
	s.MaxEvents = 10
	var rearm func()
	rearm = func() { s.After(1, rearm) }
	rearm()
	if err := s.Run(); err != ErrEventBudget {
		t.Fatalf("Run = %v, want ErrEventBudget", err)
	}
}

// The budget is exact: precisely MaxEvents events fire before
// ErrEventBudget, and a schedule that fits the budget exactly completes
// without error (regression for the off-by-one that let MaxEvents+1
// events execute).
func TestEventBudgetExact(t *testing.T) {
	s := NewScheduler()
	s.MaxEvents = 10
	var rearm func()
	rearm = func() { s.After(1, rearm) }
	rearm()
	if err := s.Run(); err != ErrEventBudget {
		t.Fatalf("Run = %v, want ErrEventBudget", err)
	}
	if s.Executed != 10 {
		t.Fatalf("Executed = %d, want exactly MaxEvents = 10", s.Executed)
	}

	s = NewScheduler()
	s.MaxEvents = 10
	fired := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() { fired++ })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run with schedule == budget errored: %v", err)
	}
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}

	s = NewScheduler()
	s.MaxEvents = 3
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {})
	}
	if err := s.RunUntil(100); err != ErrEventBudget {
		t.Fatalf("RunUntil = %v, want ErrEventBudget", err)
	}
	if s.Executed != 3 {
		t.Fatalf("RunUntil Executed = %d, want exactly 3", s.Executed)
	}
}

// Pending excludes lazily-cancelled entries: Cancel-then-Pending sees
// the count drop immediately, before the queue drains the entry.
func TestPendingExcludesCancelled(t *testing.T) {
	s := NewScheduler()
	ids := make([]EventID, 8)
	for i := range ids {
		ids[i] = s.At(Time(i+1), func() {})
	}
	if s.Pending() != 8 {
		t.Fatalf("Pending = %d, want 8", s.Pending())
	}
	for i := 0; i < 3; i++ {
		if !s.Cancel(ids[i]) {
			t.Fatalf("Cancel %d returned false", i)
		}
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending after 3 cancels = %d, want 5", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 || s.Executed != 5 {
		t.Fatalf("after Run: Pending = %d, Executed = %d, want 0 and 5",
			s.Pending(), s.Executed)
	}
}

// Cancel-heavy workloads must not leak cancelled entries until drain:
// bulk compaction keeps the physical queue proportional to the pending
// count.
func TestCancelHeavyCompaction(t *testing.T) {
	s := NewScheduler()
	const n = 100_000
	ids := make([]EventID, n)
	for i := range ids {
		ids[i] = s.At(Time(i+1), func() {})
	}
	peak := s.QueueLen()
	if peak != n {
		t.Fatalf("QueueLen = %d, want %d", peak, n)
	}
	for _, id := range ids {
		s.Cancel(id)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
	if s.QueueLen() >= compactFloor {
		t.Fatalf("QueueLen = %d after cancelling all %d: compaction did not shrink the queue",
			s.QueueLen(), n)
	}
	if s.Step() {
		t.Fatal("Step fired a cancelled event")
	}
}

// The hot path is allocation-free in steady state: fired events return
// to the free list and are reused by later schedules.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 1024; i++ { // warm the heap and free list
		s.After(1, fn)
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		s.After(1, fn)
		s.Step()
	})
	if allocs > 1 {
		t.Fatalf("steady-state allocations per scheduled event = %v, want ≤ 1", allocs)
	}
}

func TestEverySchedulesPeriodically(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	s.Every(10, 55, func() { ticks = append(ticks, s.Now()) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30, 40, 50}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEveryStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	var stop func()
	stop = s.Every(1, 0, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewScheduler().Every(0, 0, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		s := NewScheduler()
		r := NewRand(42)
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			s.At(Time(r.Float64()*100), func() { order = append(order, i) })
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of (non-negative) times, Run fires events in
// non-decreasing time order and fires them all.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, v := range raw {
			at := Time(v)
			s.At(at, func() { fired = append(fired, at) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending reflects schedule/cancel/fire bookkeeping exactly.
func TestPropertyPendingCount(t *testing.T) {
	f := func(n uint8, cancels uint8) bool {
		s := NewScheduler()
		ids := make([]EventID, 0, n)
		for i := 0; i < int(n); i++ {
			ids = append(ids, s.At(Time(i), func() {}))
		}
		c := int(cancels)
		if c > len(ids) {
			c = len(ids)
		}
		for i := 0; i < c; i++ {
			s.Cancel(ids[i])
		}
		return s.Pending() == int(n)-c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(10).Add(Duration(5))
	if tm != 15 {
		t.Fatalf("Add = %v, want 15", tm)
	}
	if d := Time(15).Sub(Time(10)); d != 5 {
		t.Fatalf("Sub = %v, want 5", d)
	}
	if Infinity <= Time(math.MaxFloat64/2) {
		t.Fatal("Infinity is not large")
	}
}

func TestExpDistribution(t *testing.T) {
	r := NewRand(1)
	const rate = 2.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := float64(r.Exp(rate))
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("mean = %v, want ≈ %v", mean, 1/rate)
	}
}

func TestExpInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewRand(1).Exp(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRand(7)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(3)
	z := r.NewZipf(1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfInvalidNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(n=0) did not panic")
		}
	}()
	NewRand(1).NewZipf(1.5, 0)
}

func TestJitter(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		d := r.Jitter(100, 0.1)
		if d < 90 || d > 110 {
			t.Fatalf("Jitter out of band: %v", d)
		}
	}
	if r.Jitter(100, 0) != 100 {
		t.Fatal("Jitter with f=0 changed value")
	}
}

func TestRound(t *testing.T) {
	cases := map[float64]int{0.4: 0, 0.5: 1, 1.49: 1, 2.5: 3, -0.4: 0}
	for in, want := range cases {
		if got := Round(in); got != want {
			t.Errorf("Round(%v) = %d, want %d", in, got, want)
		}
	}
}

// BenchmarkScheduler exercises the timer-churn hot path: each iteration
// schedules a kept timer and a decoy, cancels the decoy, and fires one
// event — the pattern refresh loops and piggyback windows generate.
// Steady-state allocations per scheduled event must stay ≤ 1 (they are 0:
// entries come from the free list; the closure is created once).
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		decoy := s.After(2, fn)
		s.Cancel(decoy)
		s.Step()
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	var rearm func()
	n := 0
	rearm = func() {
		n++
		if n < b.N {
			s.After(1, rearm)
		}
	}
	s.After(1, rearm)
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
