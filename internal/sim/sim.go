// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the reproduction's substitute for the Stanford Narses simulator used
// in the CUP paper: a virtual clock, a binary-heap event queue with stable
// FIFO ordering for simultaneous events, and helpers for periodic processes.
// All experiments in this repository are driven by a Scheduler; determinism
// (same seed, same schedule, same results) is a hard requirement so that the
// paper's tables regenerate reproducibly.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Infinity is a time later than every event in any simulation.
const Infinity = Time(math.MaxFloat64)

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
type EventID uint64

// event is a single queue entry. seq breaks ties so that events scheduled
// for the same instant fire in scheduling order (FIFO), which keeps the
// simulation deterministic.
type event struct {
	at        Time
	seq       uint64
	id        EventID
	fn        func()
	cancelled bool
	index     int // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event scheduler. It is not safe for concurrent
// use; the live runtime (internal/live) uses real goroutines instead.
type Scheduler struct {
	now     Time
	queue   eventHeap
	seq     uint64
	nextID  EventID
	live    map[EventID]*event
	stopped bool
	// Executed counts events that have fired (for progress reporting and
	// runaway detection in tests).
	Executed uint64
	// MaxEvents aborts Run with ErrEventBudget when exceeded; zero means
	// unlimited.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run variants when MaxEvents is exceeded.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{live: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events still queued (including cancelled
// entries not yet drained).
func (s *Scheduler) Pending() int { return len(s.live) }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) is an error in a discrete-event simulation and panics: it always
// indicates a protocol bug, never a recoverable condition.
func (s *Scheduler) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	s.nextID++
	e := &event{at: t, seq: s.seq, id: s.nextID, fn: fn}
	heap.Push(&s.queue, e)
	s.live[e.id] = e
	return e.id
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending. Cancelling an already-fired or unknown ID is a no-op.
func (s *Scheduler) Cancel(id EventID) bool {
	e, ok := s.live[id]
	if !ok {
		return false
	}
	e.cancelled = true
	delete(s.live, id)
	return true
}

// Step fires the next event. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.cancelled {
			continue
		}
		delete(s.live, e.id)
		s.now = e.at
		s.Executed++
		e.fn()
		return true
	}
	return false
}

// NextTime returns the time of the next pending event, or Infinity when
// the queue is empty.
func (s *Scheduler) NextTime() Time { return s.peekTime() }

// AdvanceTo moves the clock forward to t without firing events; a t in
// the past or Infinity is ignored. Drivers use it to close out a run at
// its configured end time after the last event fires.
func (s *Scheduler) AdvanceTo(t Time) {
	if t > s.now && t != Infinity {
		s.now = t
	}
}

// peekTime returns the time of the next non-cancelled event, or Infinity.
func (s *Scheduler) peekTime() Time {
	for len(s.queue) > 0 {
		if s.queue[0].cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at
	}
	return Infinity
}

// Run executes events until the queue drains or the event budget is hit.
func (s *Scheduler) Run() error {
	for s.Step() {
		if s.MaxEvents > 0 && s.Executed > s.MaxEvents {
			return ErrEventBudget
		}
	}
	return nil
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled after the deadline remain queued.
func (s *Scheduler) RunUntil(deadline Time) error {
	for {
		next := s.peekTime()
		if next > deadline {
			break
		}
		s.Step()
		if s.MaxEvents > 0 && s.Executed > s.MaxEvents {
			return ErrEventBudget
		}
	}
	if deadline > s.now && deadline != Infinity {
		s.now = deadline
	}
	return nil
}

// Every schedules fn to run now+d, then every d seconds thereafter, until
// the returned stop function is called or until (if until > 0) virtual time
// passes until.
func (s *Scheduler) Every(d Duration, until Time, fn func()) (stop func()) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", d))
	}
	stopped := false
	var rearm func()
	rearm = func() {
		next := s.now.Add(d)
		if until > 0 && next > until {
			return
		}
		s.At(next, func() {
			if stopped {
				return
			}
			fn()
			rearm()
		})
	}
	rearm()
	return func() { stopped = true }
}
