// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the reproduction's substitute for the Stanford Narses simulator used
// in the CUP paper: a virtual clock, a binary-heap event queue with stable
// FIFO ordering for simultaneous events, and helpers for periodic processes.
// All experiments in this repository are driven by a Scheduler; determinism
// (same seed, same schedule, same results) is a hard requirement so that the
// paper's tables regenerate reproducibly.
//
// The scheduler's hot path is allocation-free in steady state: fired and
// cancelled events return to a free list and are reused by later At/After
// calls, and cancellation is O(1) through generation-counted handles
// instead of a live-event map. Cancelled entries are removed lazily — at
// pop time, or in bulk whenever they outnumber the pending ones — so
// cancel-heavy workloads cannot grow the queue without bound.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Infinity is a time later than every event in any simulation.
const Infinity = Time(math.MaxFloat64)

// EventID is a handle to a scheduled event so it can be cancelled. It
// points directly at the queue entry and carries the entry's generation
// at scheduling time: entries are recycled onto a free list once fired
// or drained, and the generation check makes a stale handle a no-op
// instead of cancelling whatever event reused the entry. The zero
// EventID refers to no event.
type EventID struct {
	e   *event
	gen uint64
}

// event is the pooled, pointer-stable part of a queue entry: the handle
// target. Its generation invalidates outstanding EventIDs when the entry
// is recycled; the ordering keys live inline in the heap (heapEntry).
type event struct {
	gen       uint64
	fn        func()
	cancelled bool
}

// heapEntry is one heap slot. The sort keys (at, seq — seq breaks ties so
// simultaneous events fire in scheduling order, which keeps the
// simulation deterministic) are stored inline next to the event pointer:
// sift comparisons read contiguous array memory and never dereference the
// pooled event object, which at simulation scale (thousands of pending
// events per shard) turns every heap level from a dependent cache miss
// into a streamed load.
type heapEntry struct {
	at  Time
	seq uint64
	e   *event
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift loops are
// hand-inlined rather than going through container/heap: the interface
// indirection (an `any` conversion per Push/Pop plus virtual Less/Swap
// calls at every level) costs ~a third of the per-event budget on the
// hottest loop in the repo, and the heap invariant is only four
// comparisons of two fields.
type eventHeap []heapEntry

// initialQueueCap pre-sizes the heap and free list so short-lived
// schedulers never grow them and long-lived ones grow them once.
const initialQueueCap = 256

// compactFloor is the queue length below which lazily-cancelled entries
// are never compacted in bulk: pop-time draining handles small queues,
// and compacting them would churn for no memory win.
const compactFloor = 64

// shrinkQuiet is how many consecutive fires the queue must spend far
// below its high-water mark (under a quarter of it) before the free
// list is shrunk. Large enough that a momentary dip inside a burst
// never triggers a shrink the next burst would immediately undo.
const shrinkQuiet = 256

// Scheduler is a discrete-event scheduler. It is not safe for concurrent
// use; the live runtime (internal/live) uses real goroutines instead.
// Run independent Schedulers (one per goroutine) for parallel sweeps.
type Scheduler struct {
	now   Time
	queue eventHeap
	seq   uint64
	// free holds recycled entries for reuse; the hot path allocates only
	// when it is empty.
	free []*event
	// cancelled counts lazily-cancelled entries still sitting in queue.
	cancelled int
	// highWater is the largest queue length seen since the last free-list
	// shrink; quiet counts consecutive fires with the queue far below it.
	// Together they release pooled events after a burst-then-quiet phase
	// instead of pinning burst-peak memory forever.
	highWater int
	quiet     int
	// Executed counts events that have fired (for progress reporting and
	// runaway detection in tests).
	Executed uint64
	// MaxEvents caps Executed: the Run variants return ErrEventBudget as
	// soon as an event beyond the budget is due, so exactly MaxEvents
	// events fire. Zero means unlimited.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run variants when MaxEvents is exceeded.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{queue: make(eventHeap, 0, initialQueueCap)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events still scheduled to fire.
// Lazily-cancelled entries awaiting removal are excluded: Cancel
// decrements the pending count immediately even though the queue drains
// the entry later.
func (s *Scheduler) Pending() int { return len(s.queue) - s.cancelled }

// QueueLen reports the physical queue length, including lazily-cancelled
// entries not yet drained — the quantity bulk compaction bounds.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// FreeLen reports the number of pooled entries awaiting reuse — the
// quantity free-list shrinking bounds after a burst-then-quiet phase.
func (s *Scheduler) FreeLen() int { return len(s.free) }

// HighWater reports the largest queue length seen since the last
// free-list shrink.
func (s *Scheduler) HighWater() int { return s.highWater }

// alloc returns a fresh entry, reusing the free list when possible.
//
//cup:hotpath
func (s *Scheduler) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	// Pool refill: reached only when the free list is empty, i.e. the
	// first time the queue grows past its historical peak.
	return &event{} //cup:allowalloc
}

// recycle invalidates outstanding handles to e and returns it to the
// free list for reuse by a later At.
//
//cup:hotpath
func (s *Scheduler) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.cancelled = false
	// Amortized pool growth: capacity chases the queue's peak and is then
	// reused for the rest of the run.
	s.free = append(s.free, e) //cup:allowalloc
}

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) is an error in a discrete-event simulation and panics: it always
// indicates a protocol bug, never a recoverable condition.
//
//cup:hotpath
func (s *Scheduler) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	e := s.alloc()
	e.fn = fn
	s.push(heapEntry{at: t, seq: s.seq, e: e})
	if len(s.queue) > s.highWater {
		s.highWater = len(s.queue)
	}
	return EventID{e: e, gen: e.gen}
}

// push appends e and sifts it up to its heap position.
//
//cup:hotpath
func (s *Scheduler) push(en heapEntry) {
	// Amortized growth: the heap is pre-sized to initialQueueCap and only
	// grows past a workload's all-time peak.
	h := append(s.queue, en) //cup:allowalloc
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		q := h[p]
		if q.at < en.at || (q.at == en.at && q.seq < en.seq) {
			break
		}
		h[i] = q
		i = p
	}
	h[i] = en
	s.queue = h
}

// pop removes and returns the earliest entry.
//
// The removal uses the bottom-up ("sink then sift up") scheme: the last
// slot's entry — almost always near-maximal, since late slots hold
// recently pushed far-future events — is not compared on the way down.
// The root hole sinks along the min-child path to a leaf at one
// comparison per level (a plain sift-down pays two), the displaced entry
// drops into the leaf hole, and a sift-up (usually zero steps) fixes the
// rare case where it belonged higher. Pop order is decided entirely by
// the (at, seq) total order, so the scheme cannot change any simulation
// output.
//
//cup:hotpath
func (s *Scheduler) pop() heapEntry {
	h := s.queue
	top := h[0]
	n := len(h) - 1
	en := h[n]
	h[n] = heapEntry{}
	s.queue = h[:n]
	h = s.queue
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n {
				a, b := h[c], h[r]
				if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
					c = r
				}
			}
			h[i] = h[c]
			i = c
		}
		for i > 0 {
			p := (i - 1) / 2
			q := h[p]
			if q.at < en.at || (q.at == en.at && q.seq < en.seq) {
				break
			}
			h[i] = q
			i = p
		}
		h[i] = en
	}
	return top
}

// siftDown restores heap order below position i.
//
//cup:hotpath
func (s *Scheduler) siftDown(i int) {
	h := s.queue
	n := len(h)
	en := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n {
			a, b := h[c], h[r]
			if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
				c = r
			}
		}
		ch := h[c]
		if en.at < ch.at || (en.at == ch.at && en.seq < ch.seq) {
			break
		}
		h[i] = ch
		i = c
	}
	h[i] = en
}

// After schedules fn to run d seconds from now. Negative d panics.
//
//cup:hotpath
func (s *Scheduler) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending. Cancelling an already-fired, already-cancelled, or zero handle
// is a no-op. The entry stays queued until popped or compacted; Pending
// excludes it immediately.
//
//cup:hotpath
func (s *Scheduler) Cancel(id EventID) bool {
	e := id.e
	if e == nil || e.gen != id.gen || e.cancelled {
		return false
	}
	e.cancelled = true
	s.cancelled++
	s.maybeCompact()
	return true
}

// maybeCompact rebuilds the heap without its cancelled entries once they
// outnumber the pending ones, bounding queue growth under cancel-heavy
// workloads (timer churn would otherwise leak entries until drain). The
// rebuild is O(n) against Ω(n) cancellations since the last one, so the
// amortized cost per Cancel is O(1).
//
//cup:hotpath
func (s *Scheduler) maybeCompact() {
	if len(s.queue) < compactFloor || 2*s.cancelled <= len(s.queue) {
		return
	}
	keep := s.queue[:0]
	for _, en := range s.queue {
		if en.e.cancelled {
			s.recycle(en.e)
			continue
		}
		// Never grows: keep reuses s.queue's backing array and only
		// shrinks the logical length.
		keep = append(keep, en) //cup:allowalloc
	}
	for i := len(keep); i < len(s.queue); i++ {
		s.queue[i] = heapEntry{}
	}
	s.queue = keep
	s.cancelled = 0
	for i := len(keep)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Step fires the next event. It reports false when the queue is empty.
//
//cup:hotpath
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		en := s.pop()
		if en.e.cancelled {
			s.cancelled--
			s.recycle(en.e)
			continue
		}
		fn := en.e.fn
		s.now = en.at
		// Recycle before firing: fn may schedule and reuse the entry,
		// and the generation bump has already invalidated handles to
		// the fired event.
		s.recycle(en.e)
		s.Executed++
		s.maybeShrink()
		fn()
		return true
	}
	return false
}

// maybeShrink releases pooled entries once the queue has spent
// shrinkQuiet consecutive fires far below its high-water mark: a burst
// grows the free list to burst peak, and without shrinking a long quiet
// phase would pin that peak-size memory for the rest of the run. The
// retained pool still covers the current queue twice over (never below
// the initial capacity), so a steady workload never shrinks and then
// reallocates — the hot path stays allocation-free.
//
//cup:hotpath
func (s *Scheduler) maybeShrink() {
	if 4*len(s.queue) >= s.highWater {
		s.quiet = 0
		return
	}
	s.quiet++
	if s.quiet < shrinkQuiet {
		return
	}
	s.quiet = 0
	keep := 2 * len(s.queue)
	if keep < initialQueueCap {
		keep = initialQueueCap
	}
	if len(s.free) > keep {
		if cap(s.free) > 4*keep {
			// The backing array itself is burst-sized; reallocate so it
			// is released along with the dropped entries.
			// Deliberate reallocation: shrinking trades one allocation for
			// releasing a burst-sized backing array.
			s.free = append(make([]*event, 0, keep), s.free[:keep]...) //cup:allowalloc
		} else {
			for i := keep; i < len(s.free); i++ {
				s.free[i] = nil
			}
			s.free = s.free[:keep]
		}
	}
	// Re-anchor the mark at the current occupancy so a workload that
	// settles at a lower plateau can keep ratcheting down.
	s.highWater = len(s.queue)
}

// NextTime returns the time of the next pending event, or Infinity when
// the queue is empty.
func (s *Scheduler) NextTime() Time { return s.peekTime() }

// AdvanceTo moves the clock forward to t without firing events; a t in
// the past or Infinity is ignored. Drivers use it to close out a run at
// its configured end time after the last event fires.
func (s *Scheduler) AdvanceTo(t Time) {
	if t > s.now && t != Infinity {
		s.now = t
	}
}

// peekTime returns the time of the next non-cancelled event, or Infinity.
//
//cup:hotpath
func (s *Scheduler) peekTime() Time {
	for len(s.queue) > 0 {
		if s.queue[0].e.cancelled {
			s.cancelled--
			s.recycle(s.pop().e)
			continue
		}
		return s.queue[0].at
	}
	return Infinity
}

// overBudget reports whether firing one more event would exceed MaxEvents.
func (s *Scheduler) overBudget() bool {
	return s.MaxEvents > 0 && s.Executed >= s.MaxEvents
}

// Run executes events until the queue drains or the event budget is hit:
// exactly MaxEvents events fire before ErrEventBudget.
func (s *Scheduler) Run() error {
	for s.peekTime() != Infinity {
		if s.overBudget() {
			return ErrEventBudget
		}
		s.Step()
	}
	return nil
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled after the deadline remain queued. Like
// Run, it enforces the event budget exactly.
func (s *Scheduler) RunUntil(deadline Time) error {
	for {
		next := s.peekTime()
		if next == Infinity || next > deadline {
			break
		}
		if s.overBudget() {
			return ErrEventBudget
		}
		s.Step()
	}
	if deadline > s.now && deadline != Infinity {
		s.now = deadline
	}
	return nil
}

// Every schedules fn to run now+d, then every d seconds thereafter, until
// the returned stop function is called or until (if until > 0) virtual time
// passes until.
func (s *Scheduler) Every(d Duration, until Time, fn func()) (stop func()) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", d))
	}
	stopped := false
	var rearm func()
	rearm = func() {
		next := s.now.Add(d)
		if until > 0 && next > until {
			return
		}
		s.At(next, func() {
			if stopped {
				return
			}
			fn()
			rearm()
		})
	}
	rearm()
	return func() { stopped = true }
}
