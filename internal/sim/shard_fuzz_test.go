package sim

import (
	"sync"
	"testing"
)

// FuzzShardedScheduler drives random post/cancel/window interleavings
// against a model across 1–4 shards, extending FuzzScheduler's
// generation-counted cancel invariants across shard boundaries:
//
//   - Same-shard handles cancel exactly once while pending; handles for
//     staged cross-shard posts are zero and cancel nothing.
//   - Every non-cancelled event fires exactly once, at its scheduled
//     time, on its destination shard, with each shard clock monotone.
//   - When Window reports no work at or before a limit, every model
//     event due at or before that limit has fired — the conservative
//     window never strands a causally-due event in an outbox.
//
// The first program byte picks the shard count (and whether windows run
// on goroutine-per-shard), so the corpus covers the sequential and
// parallel barrier paths alike.
func FuzzShardedScheduler(f *testing.F) {
	f.Add([]byte{0, 0, 3, 0, 5, 2, 1, 0, 2, 2})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 2, 1, 1, 3, 7, 0, 4, 2, 2})
	f.Add([]byte{2, 3, 200, 0, 15, 0, 15, 1, 0, 1, 0, 3, 16})
	f.Add([]byte{3, 0, 9, 1, 0, 0, 9, 2, 3, 0, 9, 2, 7, 2, 1})
	f.Add([]byte{7, 0, 1, 0, 1, 2, 2, 1, 200, 1, 3, 0, 2, 1, 0, 3, 31})

	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) == 0 {
			return
		}
		k := int(prog[0]&3) + 1
		const lookahead = Duration(1)
		sh := NewSharded(k, lookahead)
		sh.parallel = prog[0]&4 != 0

		type rec struct {
			at        Time
			shard     int
			fired     bool
			cancelled bool
		}
		// mu guards the model: with parallel windows, event bodies run on
		// one goroutine per shard.
		var mu sync.Mutex
		var evs []*rec
		var handles []EventID
		var hrecs []*rec
		lastFired := make([]Time, k)

		maxNow := func() Time {
			m := Time(0)
			for i := 0; i < k; i++ {
				if n := sh.NowOf(i); n > m {
					m = n
				}
			}
			return m
		}
		var body func(r *rec, chain byte) func()
		body = func(r *rec, chain byte) func() {
			var fn func()
			fn = func() {
				mu.Lock()
				defer mu.Unlock()
				if r.fired {
					t.Error("event fired twice")
				}
				if r.cancelled {
					t.Error("cancelled event fired")
				}
				r.fired = true
				now := sh.NowOf(r.shard)
				if now != r.at {
					t.Errorf("fired at %v on shard %d, scheduled for %v", now, r.shard, r.at)
				}
				if r.at < lastFired[r.shard] {
					t.Errorf("shard %d time went backwards: %v after %v", r.shard, r.at, lastFired[r.shard])
				}
				lastFired[r.shard] = r.at
				if chain > 0 {
					// Repost across the ring with a legal delay: the
					// staged-outbox path under a running window.
					dst := (r.shard + 1) % k
					nr := &rec{
						at:    now.Add(lookahead + Duration(chain%4)*0.25),
						shard: dst,
					}
					evs = append(evs, nr)
					if id := sh.Post(r.shard, dst, nr.at, body(nr, chain/4)); dst != r.shard && sh.running && id != (EventID{}) {
						t.Error("staged cross-shard post returned a live handle")
					}
				}
			}
			return fn
		}

		i := 1
		next := func() byte {
			if i >= len(prog) {
				return 0
			}
			b := prog[i]
			i++
			return b
		}
		for i < len(prog) {
			switch next() % 4 {
			case 0, 3: // post a future event from outside any window
				x := next()
				dst := int(x) % k
				r := &rec{at: maxNow().Add(Duration(x % 16)), shard: dst}
				evs = append(evs, r)
				id := sh.Post(dst, dst, r.at, body(r, next()))
				handles = append(handles, id)
				hrecs = append(hrecs, r)
			case 1: // cancel an arbitrary (possibly stale) same-shard handle
				if len(handles) == 0 {
					continue
				}
				j := int(next()) % len(handles)
				r := hrecs[j]
				want := !r.fired && !r.cancelled
				if got := sh.Shard(r.shard).Cancel(handles[j]); got != want {
					t.Fatalf("Cancel(#%d) = %v, model says %v (fired=%v cancelled=%v)",
						j, got, want, r.fired, r.cancelled)
				}
				if want {
					r.cancelled = true
				}
			case 2: // run windows up to a bounded limit
				limit := maxNow().Add(Duration(next() % 8))
				for sh.Window(limit) {
				}
				for j, r := range evs {
					if !r.cancelled && r.at <= limit && !r.fired {
						t.Fatalf("event #%d due %v on shard %d unfired with windows drained to %v",
							j, r.at, r.shard, limit)
					}
				}
			}
		}

		// Final drain: everything still pending fires; every handle —
		// fired, cancelled, or zero — must be a Cancel no-op.
		if err := sh.RunUntil(Infinity, nil); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		fired := 0
		for _, r := range evs {
			if !r.fired && !r.cancelled {
				t.Fatal("event lost: neither fired nor cancelled after drain")
			}
			if r.fired {
				fired++
			}
		}
		if sh.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain", sh.Pending())
		}
		if sh.Executed() != uint64(fired) {
			t.Fatalf("Executed = %d, model fired %d", sh.Executed(), fired)
		}
		for j, r := range hrecs {
			if sh.Shard(r.shard).Cancel(handles[j]) {
				t.Fatalf("stale handle #%d cancelled something after drain", j)
			}
		}
	})
}
