// External-package benchmark: internal/obs sits above internal/cup,
// which imports internal/sim, so a package-sim test cannot import it —
// but the invariant it pins lives here, next to BenchmarkScheduler.
package sim_test

import (
	"testing"

	"cup/internal/obs"
	"cup/internal/sim"
)

// BenchmarkSchedulerWithCollector reruns the scheduler hot path with a
// telemetry recording per fired event — a counter increment and a
// histogram observation, the exact work the bus collector does per
// event. Allocations per event must stay 0: attaching telemetry cannot
// break the scheduler's zero-allocation invariant.
func BenchmarkSchedulerWithCollector(b *testing.B) {
	s := sim.NewScheduler()
	reg := obs.NewRegistry()
	events := reg.Counter("cup_events_total", "bench",
		obs.Label{Key: "kind", Value: "timer-fired"})
	lat := reg.Histogram("cup_query_latency_seconds", "bench", obs.DefBuckets)
	fn := func() {
		events.Inc()
		lat.Observe(0.1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		decoy := s.After(2, fn)
		s.Cancel(decoy)
		s.Step()
	}
}

// The same invariant as a plain test, so `go test` (not just -bench)
// guards it in CI.
func TestSchedulerWithCollectorZeroAlloc(t *testing.T) {
	s := sim.NewScheduler()
	reg := obs.NewRegistry()
	events := reg.Counter("cup_events_total", "bench")
	lat := reg.Histogram("cup_query_latency_seconds", "bench", obs.DefBuckets)
	fn := func() {
		events.Inc()
		lat.Observe(0.1)
	}
	if n := testing.AllocsPerRun(2000, func() {
		s.After(1, fn)
		decoy := s.After(2, fn)
		s.Cancel(decoy)
		s.Step()
	}); n != 0 {
		t.Errorf("scheduler+collector hot path allocates %g/op, want 0", n)
	}
}
