package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// staged is a cross-shard event parked in its origin shard's outbox until
// the window barrier merges it into the destination heap.
type staged struct {
	at Time
	fn func()
}

// Sharded coordinates K independent Schedulers under conservative
// time-window synchronization, the classic parallel discrete-event
// scheme: as long as every cross-shard interaction carries at least
// `lookahead` of virtual delay (in CUP runs, the minimum link delay), all
// events in the window [tmin, tmin+lookahead) are causally independent
// across shards and may fire concurrently. Cross-shard posts made while a
// window is running are staged in per-(origin, destination) outboxes and
// merged at the window barrier in (destination, origin, emission) order,
// so the merged schedule — and therefore the simulation output — is
// deterministic for a fixed shard count regardless of how many OS threads
// execute the window.
//
// Each shard keeps its own pooled heap, generation-counted EventID
// handles, and O(1) cancel; those invariants are per shard and unchanged.
// Same-shard posts (including all timer re-arms) go straight into the
// shard's heap and return a real, cancellable EventID. Cross-shard posts
// return the zero EventID: a message already committed to the network has
// no cancel semantics.
type Sharded struct {
	shards    []*Scheduler
	lookahead Duration
	// out[from][to] stages cross-shard posts made during a window.
	out [][][]staged
	// horizon is the exclusive upper bound of the running window; posts
	// below it would violate the lookahead contract and panic.
	horizon Time
	running bool
	// parallel executes windows on one goroutine per shard; with a single
	// CPU the goroutine handoff is pure overhead, so it is enabled only
	// when the runtime can actually run shards side by side.
	parallel bool
}

// NewSharded returns K schedulers under one conservative synchronizer.
// lookahead must be positive: it is the minimum virtual delay of any
// cross-shard event, and a zero lookahead would make every window empty.
func NewSharded(k int, lookahead Duration) *Sharded {
	if k < 1 {
		panic(fmt.Sprintf("sim: shard count %d < 1", k))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	sh := &Sharded{
		shards:    make([]*Scheduler, k),
		lookahead: lookahead,
		out:       make([][][]staged, k),
		parallel:  k > 1 && runtime.GOMAXPROCS(0) > 1,
	}
	for i := range sh.shards {
		sh.shards[i] = NewScheduler()
		sh.out[i] = make([][]staged, k)
	}
	return sh
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Shard returns shard i's scheduler (for setup-time scheduling and
// same-shard timers).
func (sh *Sharded) Shard(i int) *Scheduler { return sh.shards[i] }

// NowOf returns shard i's clock. Shard clocks agree only up to the
// lookahead window; within a handler, read the acting node's shard.
func (sh *Sharded) NowOf(i int) Time { return sh.shards[i].now }

// Post schedules fn at absolute time at on shard to. Same-shard posts
// (and any post made outside a running window, e.g. during setup) insert
// directly and return a cancellable handle. Cross-shard posts made during
// a window are staged until the barrier and return the zero EventID; they
// must honor the lookahead (at ≥ window horizon) or Post panics.
func (sh *Sharded) Post(from, to int, at Time, fn func()) EventID {
	if from == to || !sh.running {
		return sh.shards[to].At(at, fn)
	}
	if at < sh.horizon {
		panic(fmt.Sprintf("sim: cross-shard post at %v inside window horizon %v (delay below lookahead %v?)",
			at, sh.horizon, sh.lookahead))
	}
	sh.out[from][to] = append(sh.out[from][to], staged{at: at, fn: fn})
	return EventID{}
}

// NextTime returns the earliest pending event time across shards, or
// Infinity when every shard is drained.
func (sh *Sharded) NextTime() Time {
	tmin := Infinity
	for _, s := range sh.shards {
		if t := s.peekTime(); t < tmin {
			tmin = t
		}
	}
	return tmin
}

// Window runs one conservative window: all events in
// [tmin, tmin+lookahead) with time ≤ limit, concurrently across shards,
// then merges the staged cross-shard posts at the barrier. It reports
// false — running nothing — once no event at or before limit remains.
func (sh *Sharded) Window(limit Time) bool {
	tmin := sh.NextTime()
	if tmin == Infinity || tmin > limit {
		return false
	}
	horizon := tmin.Add(sh.lookahead)
	sh.horizon = horizon
	sh.running = true
	if sh.parallel {
		var wg sync.WaitGroup
		for _, s := range sh.shards {
			wg.Add(1)
			go func(s *Scheduler) {
				defer wg.Done()
				s.RunWindow(horizon, limit)
			}(s)
		}
		wg.Wait()
	} else {
		for _, s := range sh.shards {
			s.RunWindow(horizon, limit)
		}
	}
	sh.running = false
	// Barrier merge in (destination, origin, emission) order: the only
	// ordering decision parallel execution could perturb, pinned here so
	// each destination heap receives an identical (time, seq) schedule on
	// every run.
	for to := range sh.shards {
		dst := sh.shards[to]
		for from := range sh.shards {
			box := sh.out[from][to]
			for i := range box {
				dst.At(box[i].at, box[i].fn)
				box[i].fn = nil
			}
			sh.out[from][to] = box[:0]
		}
	}
	return true
}

// RunUntil runs windows until no event at or before limit remains, then
// advances every shard clock to limit (an Infinity limit drains the
// queues and leaves each clock at its last event, like Scheduler.Step to
// exhaustion). tick, when non-nil, runs between windows and aborts the
// run by returning an error (context checks, event budgets).
func (sh *Sharded) RunUntil(limit Time, tick func() error) error {
	for sh.Window(limit) {
		if tick != nil {
			if err := tick(); err != nil {
				return err
			}
		}
	}
	if limit < Infinity {
		for _, s := range sh.shards {
			s.AdvanceTo(limit)
		}
	}
	return nil
}

// Executed returns the total events fired across shards.
func (sh *Sharded) Executed() uint64 {
	var n uint64
	for _, s := range sh.shards {
		n += s.Executed
	}
	return n
}

// Pending returns the total pending events across shards (outboxes are
// always empty between windows).
func (sh *Sharded) Pending() int {
	n := 0
	for _, s := range sh.shards {
		n += s.Pending()
	}
	return n
}

// QueueDepth reports shard i's physical queue length — the per-shard
// telemetry gauge.
func (sh *Sharded) QueueDepth(i int) int { return sh.shards[i].QueueLen() }

// RunWindow fires events with time strictly before horizon and at or
// before limit, leaving later events queued. It is the per-shard body of
// Sharded.Window; the strict horizon bound is what the lookahead contract
// guarantees cross-shard posts cannot land under.
//
//cup:hotpath
func (s *Scheduler) RunWindow(horizon, limit Time) {
	// Fused peek+fire loop: the heap top is inspected exactly once per
	// event (Step after peekTime would re-read and re-check it), which
	// matters because every simulation event at scale passes through here.
	for len(s.queue) > 0 {
		top := s.queue[0]
		if top.e.cancelled {
			s.cancelled--
			s.recycle(s.pop().e)
			continue
		}
		if top.at >= horizon || top.at > limit {
			return
		}
		en := s.pop()
		fn := en.e.fn
		s.now = en.at
		// Recycle before firing, as in Step: fn may schedule and reuse
		// the entry.
		s.recycle(en.e)
		s.Executed++
		s.maybeShrink()
		fn()
	}
}
