package sim

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the distributions the CUP workloads need.
// Every experiment owns its own Rand seeded explicitly, so runs are
// reproducible and independent of global rand state.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Exp returns an exponentially distributed duration with the given rate
// (events per second). It panics if rate is not positive, because a Poisson
// process with non-positive rate is meaningless.
func (r *Rand) Exp(rate float64) Duration {
	if rate <= 0 {
		panic("sim: Exp requires positive rate")
	}
	return Duration(r.ExpFloat64() / rate)
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pick returns a uniformly random index in [0, n). It panics for n <= 0.
func (r *Rand) Pick(n int) int { return r.Intn(n) }

// Zipf draws from a Zipf distribution over [0, n) with exponent s ≥ 1.
// It mirrors rand.Zipf but is reconstructed lazily per parameter set.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf builds a Zipf sampler over {0, …, n-1} with skew s (s > 1 gives
// heavier skew toward low indices; s = 1.0001 approximates classic Zipf).
func (r *Rand) NewZipf(s float64, n int) *Zipf {
	if n <= 0 {
		panic("sim: Zipf requires n > 0")
	}
	if s <= 1 {
		s = 1.0000001
	}
	return &Zipf{z: rand.NewZipf(r.Rand, s, 1, uint64(n-1)), n: n}
}

// Draw returns the next sample.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
func (r *Rand) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	return d * Duration(1+f*(2*r.Float64()-1))
}

// Round rounds a float to the nearest integer, used when allocating
// capacity shares across update channels.
func Round(x float64) int { return int(math.Floor(x + 0.5)) }
