package sim

import "testing"

// A burst grows the free list to burst peak; a long quiet phase must
// release it instead of pinning peak-size memory for the rest of the
// run (ROADMAP: free-list shrinking).
func TestFreeListShrinksAfterBurstThenQuiet(t *testing.T) {
	s := NewScheduler()
	const burst = 50_000
	for i := 0; i < burst; i++ {
		s.At(Time(1+i%97), func() {})
	}
	if s.HighWater() < burst {
		t.Fatalf("high-water mark %d after scheduling %d events", s.HighWater(), burst)
	}
	// Mid-burst the pool is at its largest; probe it while the queue is
	// still near peak, before the drain tail ratchets it down.
	peak := 0
	s.At(0.5, func() { peak = s.FreeLen() + s.QueueLen() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if peak < burst {
		t.Fatalf("pool+queue peaked at %d, want ≥ %d", peak, burst)
	}
	// The drain tail spends most of its fires far below the high-water
	// mark, so the pool ratchets down with the queue instead of holding
	// the burst peak.
	if got := s.FreeLen(); got > burst/4 {
		t.Fatalf("free list still holds %d entries after the drain, want ≤ %d", got, burst/4)
	}

	// Quiet phase: a self-rearming timer keeps the queue at depth 1, far
	// below the high-water mark. After shrinkQuiet consecutive
	// low-occupancy fires the pool must drop to steady-state size.
	var rearm func()
	fires := 0
	rearm = func() {
		fires++
		if fires < shrinkQuiet+8 {
			s.After(1, rearm)
		}
	}
	s.After(1, rearm)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeLen(); got > initialQueueCap {
		t.Fatalf("free list still holds %d entries after the quiet phase, want ≤ %d",
			got, initialQueueCap)
	}
	if hw := s.HighWater(); hw > 2 {
		t.Fatalf("high-water mark %d not re-anchored after shrink", hw)
	}
}

// A steady workload that never dips far below its high-water mark must
// never shrink: the hot path stays allocation-free.
func TestSteadyWorkloadNeverShrinks(t *testing.T) {
	s := NewScheduler()
	// Constant queue depth ~32: each fire schedules a successor.
	var spawn func()
	spawn = func() {
		if s.Executed < 4*shrinkQuiet {
			s.After(1, spawn)
		}
	}
	for i := 0; i < 32; i++ {
		s.After(1, spawn)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Post-drain the queue is empty, so the final fires do count as
	// quiet — but with a high-water mark of ~33 the retained floor
	// (initialQueueCap) is never undercut.
	if got := s.FreeLen(); got > initialQueueCap {
		t.Fatalf("steady workload grew the pool to %d", got)
	}
	if s.Executed < 4*shrinkQuiet {
		t.Fatalf("workload ended early: %d fires", s.Executed)
	}
}

// Shrinking recycles entries whose handles are already stale; a Cancel
// through such a handle after the entry left the pool must stay a no-op.
func TestCancelAfterShrinkIsNoop(t *testing.T) {
	s := NewScheduler()
	ids := make([]EventID, 0, 4096)
	for i := 0; i < 4096; i++ {
		ids = append(ids, s.At(Time(1+i), func() {}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var rearm func()
	fires := 0
	rearm = func() {
		fires++
		if fires < shrinkQuiet+8 {
			s.After(1, rearm)
		}
	}
	s.After(1, rearm)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if s.Cancel(id) {
			t.Fatal("stale handle cancelled an event after free-list shrink")
		}
	}
}
