package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// shardLog records one shard's fired events as (time, tag) pairs; the
// determinism tests compare logs across runs and execution modes.
type shardLog [][]string

func logOf(k int) (shardLog, func(shard int, sh *Sharded, tag string)) {
	log := make(shardLog, k)
	return log, func(shard int, sh *Sharded, tag string) {
		log[shard] = append(log[shard], fmt.Sprintf("%.3f/%s", float64(sh.NowOf(shard)), tag))
	}
}

// ringWorkload builds a ring of cross-shard messages: each shard fires a
// chain of events that repost to the next shard with the minimum legal
// delay, the worst case for window synchronization.
func ringWorkload(sh *Sharded, record func(int, *Sharded, string), hops int) {
	k := sh.Shards()
	for i := 0; i < k; i++ {
		i := i
		var hop func(shard, depth int)
		hop = func(shard, depth int) {
			record(shard, sh, fmt.Sprintf("ring%d.%d", i, depth))
			if depth >= hops {
				return
			}
			next := (shard + 1) % k
			sh.Post(shard, next, sh.NowOf(shard).Add(sh.lookahead+Duration(depth)*0.25), func() {
				hop(next, depth+1)
			})
		}
		sh.Post(i, i, Time(i)*0.5, func() { hop(i, 0) })
	}
}

func runRing(t *testing.T, k int, parallel bool) (shardLog, uint64) {
	t.Helper()
	sh := NewSharded(k, 1)
	sh.parallel = parallel
	log, record := logOf(k)
	ringWorkload(sh, record, 7)
	if err := sh.RunUntil(Infinity, nil); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if sh.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", sh.Pending())
	}
	return log, sh.Executed()
}

func TestShardedDeterminism(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		a, na := runRing(t, k, false)
		b, nb := runRing(t, k, false)
		if na != nb || !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: two identical runs diverged:\n%v\n%v", k, a, b)
		}
	}
}

// The goroutine-per-shard execution path must produce the same per-shard
// event order as sequential execution: the barrier merge is the only
// ordering decision, and it is pinned.
func TestShardedParallelMatchesSequential(t *testing.T) {
	for _, k := range []int{2, 4} {
		seq, nseq := runRing(t, k, false)
		par, npar := runRing(t, k, true)
		if nseq != npar || !reflect.DeepEqual(seq, par) {
			t.Fatalf("k=%d: parallel window execution diverged from sequential:\n%v\n%v", k, seq, par)
		}
	}
}

// A single shard under the synchronizer must behave exactly like a plain
// Scheduler: same fire order, same clock, cancellable handles.
func TestShardedSingleShard(t *testing.T) {
	sh := NewSharded(1, 0.5)
	plain := NewScheduler()
	var got, want []Time
	for i := 10; i > 0; i-- {
		at := Time(i) * 0.3
		sh.Post(0, 0, at, func() { got = append(got, sh.NowOf(0)) })
		plain.At(at, func() { want = append(want, plain.Now()) })
	}
	// A cancelled same-shard event must not fire.
	id := sh.Post(0, 0, 1.55, func() { t.Fatal("cancelled event fired") })
	if !sh.Shard(0).Cancel(id) {
		t.Fatal("same-shard Post handle not cancellable")
	}
	if err := sh.RunUntil(5, nil); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := plain.RunUntil(5); err != nil {
		t.Fatalf("plain RunUntil: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded k=1 fire times %v, plain scheduler %v", got, want)
	}
	if sh.NowOf(0) != plain.Now() {
		t.Fatalf("clocks diverged: sharded %v, plain %v", sh.NowOf(0), plain.Now())
	}
}

// Cross-shard posts below the window horizon violate the lookahead
// contract and must panic rather than silently reorder time.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sh := NewSharded(2, 1)
	sh.Post(0, 0, 0, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard post below lookahead did not panic")
			}
		}()
		sh.Post(0, 1, sh.NowOf(0).Add(0.25), func() {})
	})
	if err := sh.RunUntil(Infinity, nil); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
}

// RunUntil's limit is inclusive and advances every shard clock to the
// limit, mirroring Scheduler.RunUntil.
func TestShardedRunUntilLimit(t *testing.T) {
	sh := NewSharded(2, 1)
	fired := 0
	late := false
	sh.Post(0, 0, 2, func() { fired++ })
	sh.Post(1, 1, 3, func() { fired++ })
	sh.Post(1, 1, 3.5, func() { late = true })
	if err := sh.RunUntil(3, nil); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 2 || late {
		t.Fatalf("fired=%d late=%v after RunUntil(3), want 2 events and no late fire", fired, late)
	}
	for i := 0; i < 2; i++ {
		if sh.NowOf(i) != 3 {
			t.Fatalf("shard %d clock %v, want 3", i, sh.NowOf(i))
		}
	}
	if err := sh.RunUntil(4, nil); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !late {
		t.Fatal("event at 3.5 never fired")
	}
}

// A tick error aborts the run between windows.
func TestShardedTickAborts(t *testing.T) {
	sh := NewSharded(2, 1)
	for i := 0; i < 8; i++ {
		at := Time(i)
		sh.Post(0, 0, at, func() {})
	}
	windows := 0
	errStop := fmt.Errorf("stop")
	err := sh.RunUntil(Infinity, func() error {
		windows++
		if windows == 2 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("RunUntil = %v, want tick error", err)
	}
	if sh.Pending() == 0 {
		t.Fatal("abort drained the queue anyway")
	}
}

// BenchmarkShardedScheduler drives the cupbench timer-churn pattern
// across 4 shards: 16 rearm chains per shard, each turn cancelling a
// decoy, scheduling a successor and a fresh decoy, and posting one
// cross-shard message through the staged-outbox path.
func BenchmarkShardedScheduler(b *testing.B) {
	const k, chains = 4, 8
	sh := NewSharded(k, 1)
	noop := func() {}
	rounds := b.N / (k * chains)
	for i := 0; i < k; i++ {
		shard := i
		s := sh.Shard(shard)
		for c := 0; c < chains; c++ {
			var decoy EventID
			var rearm func()
			left := rounds
			rearm = func() {
				if left <= 0 {
					return
				}
				left--
				s.Cancel(decoy)
				decoy = s.After(2, noop)
				s.After(1, rearm)
				sh.Post(shard, (shard+1)%k, s.now.Add(2), noop)
			}
			s.After(1, rearm)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := sh.RunUntil(Infinity, nil); err != nil {
		b.Fatal(err)
	}
}
