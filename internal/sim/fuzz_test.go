package sim

import "testing"

// FuzzScheduler drives random schedule/cancel/step/run interleavings
// against a reference model, pinning the generation-counted EventID
// invariants behind the pooled free list:
//
//   - Cancel returns true exactly once, and only while the event is
//     still pending; handles to fired, cancelled, or recycled entries
//     are no-ops (the generation check), never cancelling whatever
//     event reused the entry.
//   - Every non-cancelled event fires exactly once, at its scheduled
//     time, with the virtual clock monotone.
//   - Pending always matches the model (cancelled entries excluded
//     immediately, even while they sit in the queue awaiting lazy
//     removal), and the physical queue never undercounts it.
//
// CI runs a short -fuzz pass over this harness; the committed corpus
// keeps regressions deterministic.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 3, 0, 5, 2, 1, 0, 2, 2})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 1, 1, 1, 1, 3, 7, 0, 4, 2, 2, 2})
	f.Add([]byte{3, 200, 0, 15, 0, 15, 1, 0, 1, 0, 3, 16})
	// Churn shape: bursts of schedules, cancels of arbitrary (often
	// stale) handles, then drains — the free-list reuse hot path.
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1, 2, 2, 1, 200, 1, 3, 0, 2, 1, 0, 3, 31, 1, 9})

	f.Fuzz(func(t *testing.T, prog []byte) {
		s := NewScheduler()
		type rec struct {
			at        Time
			fired     bool
			cancelled bool
		}
		var evs []*rec
		var handles []EventID
		lastFired := Time(0)

		schedule := func(d Duration) {
			r := &rec{at: s.Now().Add(d)}
			evs = append(evs, r)
			handles = append(handles, s.At(r.at, func() {
				if r.fired {
					t.Fatal("event fired twice")
				}
				if r.cancelled {
					t.Fatal("cancelled event fired")
				}
				r.fired = true
				if s.Now() != r.at {
					t.Fatalf("fired at %v, scheduled for %v", s.Now(), r.at)
				}
				if r.at < lastFired {
					t.Fatalf("time went backwards: fired %v after %v", r.at, lastFired)
				}
				lastFired = r.at
			}))
		}
		modelPending := func() int {
			n := 0
			for _, r := range evs {
				if !r.fired && !r.cancelled {
					n++
				}
			}
			return n
		}
		check := func() {
			if got, want := s.Pending(), modelPending(); got != want {
				t.Fatalf("Pending() = %d, model says %d", got, want)
			}
			if s.QueueLen() < s.Pending() {
				t.Fatalf("QueueLen() %d below Pending() %d", s.QueueLen(), s.Pending())
			}
		}

		i := 0
		next := func() byte {
			if i >= len(prog) {
				return 0
			}
			b := prog[i]
			i++
			return b
		}
		for i < len(prog) {
			switch next() % 4 {
			case 0: // schedule a future event
				schedule(Duration(next() % 16))
			case 1: // cancel an arbitrary (possibly stale) handle
				if len(handles) == 0 {
					continue
				}
				j := int(next()) % len(handles)
				r := evs[j]
				want := !r.fired && !r.cancelled
				if got := s.Cancel(handles[j]); got != want {
					t.Fatalf("Cancel(#%d) = %v, model says %v (fired=%v cancelled=%v)",
						j, got, want, r.fired, r.cancelled)
				}
				if want {
					r.cancelled = true
				}
			case 2: // fire the next event
				before := modelPending()
				stepped := s.Step()
				if stepped != (before > 0) {
					t.Fatalf("Step() = %v with %d pending", stepped, before)
				}
				if stepped && modelPending() != before-1 {
					t.Fatalf("Step() fired %d events, want exactly 1", before-modelPending())
				}
			case 3: // drain a bounded window
				deadline := s.Now().Add(Duration(next() % 8))
				if err := s.RunUntil(deadline); err != nil {
					t.Fatalf("RunUntil: %v", err)
				}
				for j, r := range evs {
					if r.cancelled {
						continue
					}
					if r.at <= deadline && !r.fired {
						t.Fatalf("event #%d due %v unfired after RunUntil(%v)", j, r.at, deadline)
					}
				}
			}
			check()
		}

		// Final drain: everything still pending fires, then every handle
		// — fired, cancelled, or pointing at a recycled entry — must be
		// a Cancel no-op.
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		for _, r := range evs {
			if !r.fired && !r.cancelled {
				t.Fatal("event lost: neither fired nor cancelled after drain")
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain", s.Pending())
		}
		fired := 0
		for _, r := range evs {
			if r.fired {
				fired++
			}
		}
		if s.Executed != uint64(fired) {
			t.Fatalf("Executed = %d, model fired %d", s.Executed, fired)
		}
		for j := range handles {
			if s.Cancel(handles[j]) {
				t.Fatalf("stale handle #%d cancelled something after drain", j)
			}
		}
	})
}
