// Package hotpath mechanically enforces the 0 allocs/event contract:
// any function annotated //cup:hotpath (the scheduler's fire/cancel
// path, the metrics registry's record handles, the collector fold, the
// tracer's span-append path) is checked for constructs that allocate.
//
// Flagged constructs:
//
//   - closures that capture variables (each call materializes the
//     closure on the heap);
//   - calls into fmt (formatting always allocates);
//   - append, make, new, map and slice composite literals, &T{...},
//     and map assignments — unless the line carries //cup:allowalloc,
//     the escape hatch for intentional cold-branch or amortized pool
//     growth;
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions;
//   - boxing: passing or converting a non-pointer-shaped value
//     (struct, int, float, string, slice, ...) to an interface
//     parameter or type. Pointer-shaped values (*T, chan, map, func)
//     box for free and are not flagged;
//   - method values used outside call position (they allocate a bound
//     closure) and go statements.
//
// Arguments of panic(...) are exempt everywhere: a panicking hot path
// is already off the measured path, and the repository convention is
// panic(fmt.Sprintf(...)) for protocol-bug assertions.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"cup/internal/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "check //cup:hotpath-annotated functions for allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) || analysis.IsGenerated(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.Directives.FuncScope(fn, analysis.DirHotpath) {
				continue
			}
			w := &walker{pass: pass, fn: fn}
			w.walk(fn.Body, false)
		}
	}
	return nil
}

// walker traverses one annotated function body. inPanic marks subtrees
// that are arguments of panic().
type walker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

// allowed reports whether the construct at pos carries //cup:allowalloc.
func (w *walker) allowed(pos token.Pos) bool {
	return w.pass.Directives.At(pos, analysis.DirAllowAlloc)
}

func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	if !w.allowed(pos) {
		w.pass.Reportf(pos, format, args...)
	}
}

func (w *walker) walk(n ast.Node, inPanic bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		w.call(n, inPanic)
		return
	case *ast.FuncLit:
		w.funcLit(n)
		// Still check the closure body: it runs on the hot path too.
		w.walk(n.Body, inPanic)
		return
	case *ast.CompositeLit:
		w.composite(n, inPanic, false)
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.composite(cl, inPanic, true)
				return
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && !inPanic {
			if t := w.pass.TypesInfo.TypeOf(n); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv, ok := w.pass.TypesInfo.Types[n]; !ok || tv.Value == nil {
						w.reportf(n.OpPos, "string concatenation allocates on the hot path")
					}
				}
			}
		}
	case *ast.AssignStmt:
		if !inPanic {
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := w.pass.TypesInfo.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							w.reportf(lhs.Pos(), "map assignment may grow the table and allocate on the hot path (//cup:allowalloc if intentional)")
						}
					}
				}
			}
		}
	case *ast.GoStmt:
		w.reportf(n.Pos(), "go statement allocates a goroutine on the hot path")
	case *ast.SelectorExpr:
		w.methodValue(n, inPanic)
	}
	// Generic traversal.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		if child == nil {
			return false
		}
		w.walk(child, inPanic)
		return false
	})
}

// call handles one call expression: panic exemption, fmt, builtins,
// conversions, and interface-boxing arguments.
func (w *walker) call(call *ast.CallExpr, inPanic bool) {
	// panic(...) marks its arguments exempt.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if obj := w.pass.TypesInfo.Uses[id]; obj == nil || obj.Parent() == types.Universe {
			for _, a := range call.Args {
				w.walk(a, true)
			}
			return
		}
	}

	// Builtins that allocate. Universe-scoped type names (any, error)
	// are conversions, not builtins — they fall through to the
	// conversion check below.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if !inPanic {
					w.reportf(call.Pos(), "append may grow and allocate on the hot path; pre-size the slice or annotate //cup:allowalloc for amortized pool growth")
				}
			case "make", "new":
				if !inPanic {
					w.reportf(call.Pos(), "%s allocates on the hot path (//cup:allowalloc if this is an intentional cold branch)", id.Name)
				}
			}
			for _, a := range call.Args {
				w.walk(a, inPanic)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type, inPanic)
		for _, a := range call.Args {
			w.walk(a, inPanic)
		}
		return
	}

	// fmt calls.
	if obj := analysis.CalleeObject(w.pass.TypesInfo, call); obj != nil && obj.Pkg() != nil {
		if obj.Pkg().Path() == "fmt" && !inPanic {
			w.reportf(call.Pos(), "fmt.%s allocates (formatting, boxing); hot paths must not format", obj.Name())
		}
	}

	// Interface-boxing arguments.
	if !inPanic {
		w.boxingArgs(call)
	}

	// Walk the callee, but skip the selector itself when the call is
	// x.M(...): a method selector in call position is not a method
	// value.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walk(sel.X, inPanic)
	} else {
		w.walk(call.Fun, inPanic)
	}
	for _, a := range call.Args {
		w.walk(a, inPanic)
	}
}

// composite flags map/slice literals and &T{...}.
func (w *walker) composite(cl *ast.CompositeLit, inPanic, addressed bool) {
	if !inPanic {
		t := w.pass.TypesInfo.TypeOf(cl)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.reportf(cl.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				w.reportf(cl.Pos(), "slice literal allocates on the hot path")
			default:
				if addressed {
					w.reportf(cl.Pos(), "&composite literal escapes to the heap on the hot path (//cup:allowalloc if this is an intentional cold branch)")
				}
			}
		}
	}
	for _, e := range cl.Elts {
		w.walk(e, inPanic)
	}
}

// conversion flags string<->bytes and to-interface conversions.
func (w *walker) conversion(call *ast.CallExpr, target types.Type, inPanic bool) {
	if inPanic || len(call.Args) != 1 {
		return
	}
	src := w.pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isStringBytes(target, src) || isStringBytes(src, target) {
		w.reportf(call.Pos(), "string/[]byte conversion copies and allocates on the hot path")
		return
	}
	if types.IsInterface(target.Underlying()) && boxes(src) {
		w.reportf(call.Pos(), "conversion to interface boxes a %s and allocates on the hot path", src.String())
	}
}

func isStringBytes(a, b types.Type) bool {
	ab, ok := a.Underlying().(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := b.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (el.Kind() == types.Byte || el.Kind() == types.Rune ||
		el.Kind() == types.Uint8 || el.Kind() == types.Int32)
}

// boxes reports whether storing a value of type t in an interface
// allocates: everything except pointer-shaped types (pointers,
// channels, maps, funcs, unsafe.Pointer) and interfaces themselves.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// boxingArgs flags non-pointer-shaped values passed to interface
// parameters.
func (w *walker) boxingArgs(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // spread: no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			// The variadic call itself also allocates the args slice.
			if i == sig.Params().Len()-1 {
				w.reportf(call.Pos(), "variadic call allocates its argument slice on the hot path")
			}
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		} else {
			continue
		}
		if !types.IsInterface(param.Underlying()) {
			continue
		}
		at := w.pass.TypesInfo.TypeOf(arg)
		if at == nil || !boxes(at) {
			continue
		}
		w.reportf(arg.Pos(), "passing %s to interface parameter boxes and allocates on the hot path", at.String())
	}
}

// funcLit flags closures that capture variables.
func (w *walker) funcLit(fl *ast.FuncLit) {
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured: declared outside the literal but inside the
		// enclosing function (package-level vars are not captures).
		if v.Pos() < fl.Pos() && v.Pos() >= w.fn.Pos() && v.Parent() != w.pass.Pkg.Scope() {
			seen[v] = true
			captured = append(captured, v.Name())
		}
		return true
	})
	if len(captured) > 0 {
		w.reportf(fl.Pos(), "closure captures %v and allocates per call on the hot path", captured)
	}
}

// methodValue flags x.M used as a value (it allocates a bound method
// closure). Direct calls, defer x.M(), and go x.M() are fine.
func (w *walker) methodValue(sel *ast.SelectorExpr, inPanic bool) {
	if inPanic {
		return
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	// Selectors in call position never reach here: call() walks the
	// callee through its receiver expression, bypassing the selector.
	w.reportf(sel.Pos(), "method value %s.%s allocates a bound closure on the hot path", exprString(sel.X), sel.Sel.Name)
}

func exprString(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "expr"
}
