package hotpath_test

import (
	"testing"

	"cup/internal/analysis/analysistest"
	"cup/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, ".", hotpath.Analyzer, "hotfix")
}
