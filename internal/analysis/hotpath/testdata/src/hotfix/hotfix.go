package hotfix

import "fmt"

type T struct{ n int }

func (t *T) M() {}

//cup:hotpath
func allocs(xs []int, m map[string]int, s string) {
	_ = make([]int, 8)   // want `make allocates on the hot path`
	_ = new(T)           // want `new allocates on the hot path`
	xs = append(xs, 1)   // want `append may grow and allocate`
	_ = []int{1, 2}      // want `slice literal allocates`
	_ = map[string]int{} // want `map literal allocates`
	_ = &T{n: 1}         // want `&composite literal escapes to the heap`
	m["k"] = 1           // want `map assignment may grow the table`
	_ = s + "x"          // want `string concatenation allocates`
	_ = []byte(s)        // want `string/\[\]byte conversion copies`
	_ = xs
}

//cup:hotpath
func format(t *T) {
	fmt.Println(t.n) // want `fmt.Println allocates` `variadic call allocates its argument slice` `passing int to interface parameter boxes`
}

//cup:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `closure captures \[n\]`
}

//cup:hotpath
func noCapture() func() int {
	return func() int { return 42 } // captures nothing: free to construct
}

//cup:hotpath
func methodVal(t *T) func() {
	return t.M // want `method value t.M allocates a bound closure`
}

//cup:hotpath
func directCall(t *T) {
	t.M() // call position: no bound closure
}

//cup:hotpath
func spawn(t *T) {
	go t.M() // want `go statement allocates a goroutine`
}

//cup:hotpath
func box(v int) any {
	return any(v) // want `conversion to interface boxes a int`
}

//cup:hotpath
func boxFree(p *T, c chan int) (any, any) {
	// Pointer-shaped values box for free.
	return any(p), any(c)
}

//cup:hotpath
func pool(free []*T) []*T {
	// Amortized pool growth, deliberately allowed.
	free = append(free, &T{}) //cup:allowalloc
	return free
}

//cup:hotpath
func assert(ok bool) {
	if !ok {
		// panic arguments are off the measured path.
		panic(fmt.Sprintf("bad state %d", 1))
	}
}

// cold is unannotated: allocate freely.
func cold() []int {
	return append(make([]int, 0, 8), 1, 2, 3)
}
