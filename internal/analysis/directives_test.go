package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"cup/internal/analysis"
)

const directiveSrc = `//cup:deterministic

package fixture

//cup:hotpath
func annotated() {
	x := 1 //cup:allowalloc
	//cup:unordered
	y := 2
	_, _ = x, y
}

// doc comment without a directive
func plain() {}
`

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := analysis.ParseDirectives(fset, []*ast.File{f})

	if !d.FileScope(f, analysis.DirDeterministic) {
		t.Error("file-scope //cup:deterministic not detected")
	}
	if d.FileScope(f, analysis.DirHotpath) {
		t.Error("function-scope directive leaked to file scope")
	}

	var annotated, plain *ast.FuncDecl
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			switch fn.Name.Name {
			case "annotated":
				annotated = fn
			case "plain":
				plain = fn
			}
		}
	}
	if !d.FuncScope(annotated, analysis.DirHotpath) {
		t.Error("//cup:hotpath doc directive not detected")
	}
	if d.FuncScope(plain, analysis.DirHotpath) {
		t.Error("plain function misread as hotpath")
	}

	stmts := annotated.Body.List
	if !d.At(stmts[0].Pos(), analysis.DirAllowAlloc) {
		t.Error("trailing same-line //cup:allowalloc not detected")
	}
	if !d.At(stmts[1].Pos(), analysis.DirUnordered) {
		t.Error("directive-only line above statement not detected")
	}
	if d.At(stmts[2].Pos(), analysis.DirAllowAlloc) {
		t.Error("directive bled onto an unannotated line")
	}
}
