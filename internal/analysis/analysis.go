// Package analysis is the repository's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) just large enough to host the
// cuplint pass suite. The module deliberately has no external
// dependencies, so the framework is built on the standard library's
// go/ast, go/types, and go/importer alone; the API mirrors x/tools so
// the passes could migrate onto the upstream framework without change
// if the dependency ever lands.
//
// Three drivers run the same analyzers:
//
//   - Load (load.go) builds packages via `go list -export -deps` and is
//     what `cuplint ./...` and the in-repo smoke test use;
//   - RunUnit (unit.go) speaks cmd/go's vettool config protocol, so the
//     same binary runs under `go vet -vettool=cuplint`;
//   - analysistest (analysistest/) typechecks golden fixture packages
//     under testdata/src and asserts diagnostics against // want
//     comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names.
	Name string
	// Doc is the one-paragraph description `cuplint -list` prints.
	Doc string
	// Run executes the check over one package, reporting findings
	// through pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo maps syntax to types and objects.
	TypesInfo *types.Info
	// Directives indexes the //cup: annotation comments of Files.
	Directives *Directives
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// PkgPath returns the package's import path with cmd/go's test-variant
// suffix ("pkg [pkg.test]") stripped, so path-scoped passes behave
// identically under the standalone driver and go vet.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// IsGenerated reports whether f carries the standard generated-code
// marker; generated files are exempt from every pass.
func IsGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") &&
				strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}

// IsTestFile reports whether f was parsed from a _test.go file. The
// cuplint passes skip test files: tests may legitimately read wall
// clocks, allocate on hot paths they measure, and block on channels.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// NewInfo returns a types.Info with every map the passes need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CalleeObject resolves the object a call expression invokes: the
// function or method object for direct calls and selector calls, nil
// for indirect calls through variables, builtins, and conversions.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.F.
		if o := info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods never match).
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	o := CalleeObject(info, call)
	if o == nil || o.Pkg() == nil {
		return false
	}
	if fn, ok := o.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return o.Pkg().Path() == pkgPath && o.Name() == name
}
