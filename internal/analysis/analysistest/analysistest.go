// Package analysistest runs a cuplint analyzer over golden fixture
// packages and asserts its diagnostics against // want comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdir>/testdata/src/<importpath>/, mirroring
// the GOPATH layout upstream analysistest uses: a fixture that must
// typecheck against (a fake) cup/internal/cup places that fake at
// testdata/src/cup/internal/cup. Imports resolve testdata-first, then
// fall back to the standard library, compiled from $GOROOT/src so the
// harness works offline.
//
// Expectations are trailing comments on the line a diagnostic lands:
//
//	time.Now() // want `forbids wall-clock reads`
//
// The backquoted (or double-quoted) pattern is an anchored-nowhere
// regexp matched against the diagnostic message; multiple want
// patterns on one line expect multiple diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cup/internal/analysis"
)

// Run loads the fixture package at testdata/src/<path> (relative to
// dir, typically the analyzer's package directory) and checks
// analyzer's diagnostics against its // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, path string) {
	t.Helper()
	root := filepath.Join(dir, "testdata", "src")
	ld := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
	}
	lp, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      lp.files,
		Pkg:        lp.types,
		TypesInfo:  lp.info,
		Directives: analysis.ParseDirectives(ld.fset, lp.files),
		Report:     func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	check(t, ld.fset, lp.files, got)
}

// wantRe extracts the patterns of a // want comment.
var wantRe = regexp.MustCompile("// want (.*)$")

// patRe matches one backquoted or double-quoted pattern.
var patRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// check matches diagnostics against the fixtures' want comments,
// failing on both unexpected diagnostics and unmatched expectations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, got []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
					text := pm[1]
					if text == "" {
						text = pm[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: text})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range got {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
}

// loaded is one typechecked fixture (or fixture-dependency) package.
type loaded struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader typechecks fixture packages, resolving imports testdata-first
// with a standard-library fallback.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
	std  types.Importer
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld, Error: func(error) {}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %v", path, err)
	}
	lp := &loaded{files: files, types: tpkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// Import implements types.Importer for fixture typechecking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	if ld.std == nil {
		// The source importer compiles the standard library from
		// $GOROOT/src, so fixtures typecheck without any pre-built
		// export data.
		ld.std = importer.ForCompiler(ld.fset, "source", nil)
	}
	return ld.std.Import(path)
}
