package analysis_test

import (
	"testing"

	"cup/internal/analysis"
	"cup/internal/analysis/ctxdiscipline"
	"cup/internal/analysis/determinism"
	"cup/internal/analysis/eventexhaustive"
	"cup/internal/analysis/hotpath"
)

// TestSuiteCleanOnTree is the lint gate in test form: the full cuplint
// suite must produce zero diagnostics over the repository. A failure
// here means a change introduced nondeterminism, an allocation on an
// annotated hot path, an uncovered event kind, or an uncancellable
// block — fix the code or annotate with justification, exactly as the
// diagnostic says.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	suite := []*analysis.Analyzer{
		ctxdiscipline.Analyzer,
		determinism.Analyzer,
		eventexhaustive.Analyzer,
		hotpath.Analyzer,
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", analysis.Format(pkgs[0].Fset, "../..", d))
	}
}
