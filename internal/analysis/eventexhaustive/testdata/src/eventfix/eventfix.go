package eventfix

type Kind int

const (
	KA Kind = iota
	KB
	KC
)

func full(k Kind) int {
	//cup:eventexhaustive
	switch k {
	case KA:
		return 1
	case KB, KC:
		return 2
	}
	return 0
}

func missing(k Kind) {
	//cup:eventexhaustive
	switch k { // want `switch is not exhaustive over eventfix.Kind: missing KC`
	case KA, KB:
	default:
		// A default clause does not count as covering KC.
	}
}

// unannotated switches may be as partial as they like.
func unannotated(k Kind) {
	switch k {
	case KA:
	}
}

func untagged() {
	//cup:eventexhaustive
	switch { // want `//cup:eventexhaustive switch has no tag expression`
	default:
	}
}
