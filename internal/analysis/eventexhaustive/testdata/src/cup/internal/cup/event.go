// Package cup is a fixture impersonating cup/internal/cup to exercise
// the EventKinds catalog check, which is keyed to that import path.
package cup

type EventKind int

const (
	EvA EventKind = iota
	EvB
	EvC
)

var EventKinds = []EventKind{EvA, EvB} // want `EventKinds catalog is missing EvC`
