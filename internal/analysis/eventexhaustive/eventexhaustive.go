// Package eventexhaustive pins the event-stream contract: every
// cup/internal/cup EvXxx kind constant must be handled wherever the
// stream is folded into downstream state, so appending a new kind (as
// EvQueryCoalesced was) cannot silently drop telemetry.
//
// Two checks:
//
//   - a switch statement annotated //cup:eventexhaustive must name
//     every package-level constant of its tag's (enum-like) type in
//     its case clauses. A default clause does not count as coverage —
//     the point is that adding a kind forces a human to decide what
//     each consumer does with it. The obs Collector fold, the obs
//     Tracer consumer, and EventKind.String carry this annotation.
//   - in cup/internal/cup itself, the EventKinds catalog slice must
//     list every EventKind constant: it is the iteration surface
//     cuptrace and the collector's per-kind registration use.
package eventexhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cup/internal/analysis"
)

// Analyzer is the eventexhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "eventexhaustive",
	Doc: "require //cup:eventexhaustive switches to cover every constant of their " +
		"tag type, and the EventKinds catalog to list every EventKind",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) || analysis.IsGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			if pass.Directives.At(sw.Pos(), analysis.DirEventExhaustive) {
				checkSwitch(pass, sw)
			}
			return true
		})
		if pass.PkgPath() == "cup/internal/cup" {
			checkCatalog(pass, f)
		}
	}
	return nil
}

// enumConstants returns every package-level constant whose type is
// exactly t, keyed by object, in declaration-independent name order.
func enumConstants(t types.Type) []*types.Const {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), t) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// checkSwitch verifies one annotated switch covers its tag type's
// constants.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		pass.Reportf(sw.Pos(), "//cup:eventexhaustive switch has no tag expression")
		return
	}
	t := pass.TypesInfo.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	consts := enumConstants(t)
	if len(consts) == 0 {
		pass.Reportf(sw.Pos(), "//cup:eventexhaustive switch tag type %s has no package-level constants to cover", t.String())
		return
	}
	covered := make(map[types.Object]bool)
	for _, cc := range sw.Body.List {
		for _, e := range cc.(*ast.CaseClause).List {
			var id *ast.Ident
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = x
			case *ast.SelectorExpr:
				id = x.Sel
			default:
				continue
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				covered[obj] = true
			}
		}
	}
	var missing []string
	for _, c := range consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch is not exhaustive over %s: missing %s (a default clause does not count — every kind needs an explicit decision)",
			t.String(), strings.Join(missing, ", "))
	}
}

// checkCatalog verifies the EventKinds slice literal lists every
// EventKind constant.
func checkCatalog(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "EventKinds" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				sl, ok := obj.Type().Underlying().(*types.Slice)
				if !ok {
					continue
				}
				consts := enumConstants(sl.Elem())
				listed := make(map[types.Object]bool)
				for _, e := range cl.Elts {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						if o := pass.TypesInfo.Uses[id]; o != nil {
							listed[o] = true
						}
					}
				}
				var missing []string
				for _, c := range consts {
					if !listed[c] {
						missing = append(missing, c.Name())
					}
				}
				if len(missing) > 0 {
					pass.Reportf(cl.Pos(),
						"EventKinds catalog is missing %s; every EventKind constant must be listed (telemetry registration iterates this slice)",
						strings.Join(missing, ", "))
				}
			}
		}
	}
}
