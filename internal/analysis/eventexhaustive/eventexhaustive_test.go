package eventexhaustive_test

import (
	"testing"

	"cup/internal/analysis/analysistest"
	"cup/internal/analysis/eventexhaustive"
)

func TestSwitches(t *testing.T) {
	analysistest.Run(t, ".", eventexhaustive.Analyzer, "eventfix")
}

func TestCatalog(t *testing.T) {
	analysistest.Run(t, ".", eventexhaustive.Analyzer, "cup/internal/cup")
}
