// Package determinism enforces CUP's reproducibility contract: a
// simulated run is a pure function of its seeds, so the packages that
// compute paper results (the protocol core, the discrete-event engine,
// the experiment sweeps, and the traffic/fault generators) must not
// read wall clocks, draw from process-global RNGs, or let Go's
// randomized map iteration order leak into ordered output.
//
// Scope: the packages in Packages, plus any file carrying a
// //cup:deterministic file directive (the public generator files in
// the root cup package opt in this way). Test files are exempt.
//
// Checks:
//
//   - wall clock: calls to time.Now, time.Since, time.Until,
//     time.Sleep, time.After, time.Tick, time.NewTimer,
//     time.NewTicker, and time.AfterFunc. Wall time may only be read
//     behind the live transport; a measurement-only reading (one that
//     never feeds simulated state, e.g. the experiment engine timing
//     its trials) is suppressed line-by-line with //cup:wallclock.
//   - global RNG: any package-level math/rand or math/rand/v2
//     function (rand.Intn, rand.Float64, rand.Shuffle, ...) — these
//     draw from the process-wide source. Randomness must flow from
//     TrafficEnv.Rand or a TrialSeed-derived *rand.Rand. The
//     constructors rand.New, rand.NewSource, and rand.NewZipf are
//     allowed, but rand.New's argument must itself be a
//     rand.NewSource(...) call so the seed provenance is visible at
//     the call site. Importing crypto/rand is an error outright.
//   - map iteration: a range over a map whose body does
//     order-dependent work. The classifier accepts the repository's
//     collect-then-sort idiom (append into a slice that is sorted
//     later in the same function) and provably commutative bodies
//     (numeric accumulation, per-element writes, delete); anything
//     else must either be rewritten or annotated //cup:unordered with
//     a justification.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"cup/internal/analysis"
)

// Packages is the import-path set checked by default.
var Packages = map[string]bool{
	"cup/internal/cup":        true,
	"cup/internal/sim":        true,
	"cup/internal/experiment": true,
}

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global RNG, and order-dependent map iteration " +
		"in the packages that must produce bit-identical output from a seed",
	Run: run,
}

// forbiddenTime lists the time package's nondeterminism entry points.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRand lists the math/rand constructors that are fine when fed
// an explicit deterministic seed.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	inPkg := Packages[pass.PkgPath()]
	for _, f := range pass.Files {
		if !inPkg && !pass.Directives.FileScope(f, analysis.DirDeterministic) {
			continue
		}
		if pass.IsTestFile(f) || analysis.IsGenerated(f) {
			continue
		}
		checkImports(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCalls(pass, fn.Body)
			checkMapRanges(pass, fn.Body)
		}
	}
	return nil
}

// checkImports flags crypto/rand: there is no deterministic use of it.
func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"crypto/rand"` {
			pass.Reportf(imp.Pos(),
				"crypto/rand imported in deterministic code; randomness must derive from TrialSeed or TrafficEnv.Rand")
		}
	}
}

// checkCalls flags wall-clock and global-RNG call sites.
func checkCalls(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := analysis.CalleeObject(pass.TypesInfo, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "time":
			if forbiddenTime[obj.Name()] && !pass.Directives.At(call.Pos(), analysis.DirWallclock) {
				pass.Reportf(call.Pos(),
					"wall-clock call time.%s in deterministic code; only the live transport may read real time (measurement-only readings: annotate //cup:wallclock)",
					obj.Name())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[obj.Name()] {
				pass.Reportf(call.Pos(),
					"global rand.%s draws from the process-wide source; draw from TrafficEnv.Rand or a TrialSeed-derived *rand.Rand",
					obj.Name())
			} else if obj.Name() == "New" {
				checkRandNew(pass, call)
			}
		}
		return true
	})
}

// checkRandNew requires rand.New's source argument to be a visible
// rand.NewSource(...) call, so every generator's seed provenance is
// auditable at the construction site.
func checkRandNew(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if ok {
		if obj := analysis.CalleeObject(pass.TypesInfo, arg); obj != nil && obj.Pkg() != nil &&
			(obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") &&
			obj.Name() == "NewSource" {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"rand.New without an inline rand.NewSource(seed): seed provenance must be visible at the construction site")
}

// checkMapRanges classifies every range-over-map in body.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Directives.At(rng.Pos(), analysis.DirUnordered) {
			return true
		}
		c := &classifier{pass: pass, body: body, rng: rng, locals: map[types.Object]bool{}}
		c.noteVar(rng.Key)
		c.noteVar(rng.Value)
		if !c.safeBlock(rng.Body) {
			pass.Reportf(rng.Pos(),
				"map iteration order can leak into results (%s); collect into a slice and sort, or annotate //cup:unordered with why the body commutes",
				c.reason)
		}
		return true
	})
}

// classifier decides whether a map-range body is order-insensitive.
type classifier struct {
	pass *analysis.Pass
	// body is the enclosing function body, searched for post-loop
	// sorts of collected slices.
	body *ast.BlockStmt
	rng  *ast.RangeStmt
	// locals are variables declared inside the loop (plus the
	// iteration variables): writes to them are per-iteration state.
	locals map[types.Object]bool
	reason string
}

func (c *classifier) noteVar(e ast.Expr) {
	if e == nil {
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			c.locals[obj] = true
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			c.locals[obj] = true
		}
	}
}

func (c *classifier) fail(pos token.Pos, why string) bool {
	if c.reason == "" {
		c.reason = why
	}
	return false
}

func (c *classifier) safeBlock(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.safeStmt(s) {
			return false
		}
	}
	return true
}

func (c *classifier) safeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.safeAssign(s)
	case *ast.IncDecStmt:
		// x++ / x-- commute across iterations.
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						c.noteVar(name)
					}
				}
			}
		}
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if c.pass.TypesInfo.Uses[id] == nil || c.pass.TypesInfo.Uses[id].Parent() == types.Universe {
					return true // delete(m, k) commutes
				}
			}
		}
		return c.fail(s.Pos(), "calls with side effects run in map order")
	case *ast.IfStmt:
		if s.Init != nil && !c.safeStmt(s.Init) {
			return false
		}
		if !c.safeBlock(s.Body) {
			return false
		}
		if s.Else != nil {
			return c.safeStmt(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.safeBlock(s)
	case *ast.RangeStmt:
		c.noteVar(s.Key)
		c.noteVar(s.Value)
		return c.safeBlock(s.Body)
	case *ast.ForStmt:
		if s.Init != nil && !c.safeStmt(s.Init) {
			return false
		}
		if s.Post != nil && !c.safeStmt(s.Post) {
			return false
		}
		return c.safeBlock(s.Body)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				if !c.safeStmt(st) {
					return false
				}
			}
		}
		return true
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return true
		}
		return c.fail(s.Pos(), "early exit depends on which element is visited first")
	case *ast.ReturnStmt:
		return c.fail(s.Pos(), "returning from inside the loop depends on visit order")
	default:
		return c.fail(s.Pos(), "statement kind not provably order-insensitive")
	}
}

// safeAssign classifies one assignment inside the loop body.
func (c *classifier) safeAssign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			c.noteVar(lhs)
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation (sum += x, total -= n, bits |= b).
		return true
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if c.safeCollect(lhs, s.Rhs, i) {
				continue
			}
			if c.safeTarget(lhs) {
				continue
			}
			return c.fail(s.Pos(), "last-writer-wins assignment outside the current element")
		}
		return true
	default:
		return c.fail(s.Pos(), "assignment operator not provably order-insensitive")
	}
}

// safeTarget reports whether writing through lhs only touches
// per-iteration or per-element state: loop locals, fields of the
// iteration value, and map entries (each element writes its own key).
func (c *classifier) safeTarget(lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		return obj != nil && c.locals[obj]
	case *ast.IndexExpr:
		if t := c.pass.TypesInfo.TypeOf(e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return true
			}
		}
		return c.safeTarget(e.X)
	case *ast.SelectorExpr:
		return c.safeTarget(e.X)
	case *ast.StarExpr:
		return c.safeTarget(e.X)
	}
	return false
}

// safeCollect recognizes the collect-then-sort idiom: lhs = append(lhs,
// ...) where lhs's root is sorted after the loop in the same function.
func (c *classifier) safeCollect(lhs ast.Expr, rhs []ast.Expr, i int) bool {
	var r ast.Expr
	switch {
	case len(rhs) == 1:
		r = rhs[0]
	case i < len(rhs):
		r = rhs[i]
	default:
		return false
	}
	call, ok := ast.Unparen(r).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() != types.Universe {
		return false
	}
	target := c.rootObj(lhs)
	if target == nil || c.rootObj(call.Args[0]) != target {
		return false
	}
	return c.sortedAfterLoop(target)
}

// rootObj resolves the variable at the root of an lvalue chain.
func (c *classifier) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return c.pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortFuncs are the recognized sorting entry points.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfterLoop reports whether target is passed to a sort function
// after the range statement, anywhere in the enclosing function body.
func (c *classifier) sortedAfterLoop(target types.Object) bool {
	found := false
	ast.Inspect(c.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rng.End() {
			return true
		}
		obj := analysis.CalleeObject(c.pass.TypesInfo, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		names := sortFuncs[obj.Pkg().Path()]
		if names == nil || !names[obj.Name()] || len(call.Args) == 0 {
			return true
		}
		if c.rootObj(call.Args[0]) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
