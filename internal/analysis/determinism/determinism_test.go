package determinism_test

import (
	"testing"

	"cup/internal/analysis/analysistest"
	"cup/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, ".", determinism.Analyzer, "determfix")
}
