//cup:deterministic

package determfix

import "time"

func clocks() {
	_ = time.Now()          // want `wall-clock call time.Now`
	t := time.Now()         //cup:wallclock
	_ = time.Since(t)       // want `wall-clock call time.Since`
	time.Sleep(time.Second) // want `wall-clock call time.Sleep`
	_ = time.Unix(0, 0)     // constructing times from constants is fine
}
