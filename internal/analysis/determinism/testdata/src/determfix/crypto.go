//cup:deterministic

package determfix

import crand "crypto/rand" // want `crypto/rand imported in deterministic code`

var _ = crand.Reader
