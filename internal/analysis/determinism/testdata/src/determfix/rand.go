//cup:deterministic

package determfix

import "math/rand"

func globals() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global rand.Shuffle draws from the process-wide source`
	return rand.Intn(10)               // want `global rand.Intn draws from the process-wide source`
}

func seeded(seed int64) *rand.Rand {
	ok := rand.New(rand.NewSource(seed)) // inline source: provenance visible
	_ = ok
	src := rand.NewSource(seed)
	return rand.New(src) // want `rand.New without an inline rand.NewSource`
}
