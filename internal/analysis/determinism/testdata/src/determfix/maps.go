//cup:deterministic

package determfix

import "sort"

// collectThenSort is the repository idiom: append in map order, sort
// before the order can be observed.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commute only accumulates commutatively and writes per-key state.
func commute(m map[string]int, out map[string]int) int {
	sum := 0
	for k, v := range m {
		sum += v
		out[k] = v * 2
		delete(m, k)
	}
	return sum
}

// leak appends in map order and never sorts: iteration order escapes.
func leak(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order can leak into results`
		out = append(out, k)
	}
	return out
}

// sideEffects runs an arbitrary callback in map order.
func sideEffects(m map[string]int, f func(string)) {
	for k := range m { // want `map iteration order can leak into results`
		f(k)
	}
}

// earlyReturn picks whichever element the runtime visits first.
func earlyReturn(m map[string]int) string {
	for k := range m { // want `map iteration order can leak into results`
		return k
	}
	return ""
}

// annotated documents why order does not matter.
func annotated(m map[string]int, f func(string)) {
	//cup:unordered f is a commutative accumulator in this fixture
	for k := range m {
		f(k)
	}
}
