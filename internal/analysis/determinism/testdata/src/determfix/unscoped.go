package determfix

import "time"

// No //cup:deterministic directive on this file and the fixture's
// import path is outside the default package set, so nothing here is
// checked.
func unscoped() time.Time {
	return time.Now()
}
