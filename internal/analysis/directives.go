package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //cup: directive grammar. A directive is a line comment of the
// form
//
//	//cup:name optional justification text
//
// with no space between // and cup:. Where a directive applies depends
// on where it sits:
//
//   - before the package clause: file scope (e.g. //cup:deterministic
//     opts a file outside the default package set into the determinism
//     pass);
//   - in a function's doc comment: function scope (//cup:hotpath);
//   - on a statement's line, or alone on the line directly above it:
//     statement scope (//cup:allowalloc, //cup:unordered,
//     //cup:wallclock, //cup:allowblocking, //cup:eventexhaustive).
//
// Suppression directives are deliberately line-grained: each one
// answers for exactly the construct beside it, so a new violation two
// lines down still fails the build.
const (
	// DirHotpath marks a function whose body the hotpath pass checks
	// for allocating constructs.
	DirHotpath = "hotpath"
	// DirDeterministic opts a file into the determinism pass.
	DirDeterministic = "deterministic"
	// DirEventExhaustive marks a switch that must name every constant
	// of its tag's enum type.
	DirEventExhaustive = "eventexhaustive"
	// DirAllowAlloc suppresses one hotpath finding: the allocation is
	// intentional (cold branch, amortized pool growth).
	DirAllowAlloc = "allowalloc"
	// DirUnordered suppresses one determinism map-iteration finding:
	// the loop body is order-insensitive in a way the classifier
	// cannot prove.
	DirUnordered = "unordered"
	// DirWallclock suppresses one determinism wall-clock finding: the
	// reading is measurement-only and never feeds simulated state.
	DirWallclock = "wallclock"
	// DirAllowBlocking suppresses one ctxdiscipline finding: the
	// channel operation provably cannot block (e.g. a buffered
	// one-shot reply).
	DirAllowBlocking = "allowblocking"
	// DirCtxDiscipline opts a file outside internal/live into the
	// ctxdiscipline pass.
	DirCtxDiscipline = "ctxdiscipline"
)

// Directives indexes every //cup: comment of a package by file and
// line.
type Directives struct {
	fset *token.FileSet
	// file maps each file to its file-scope directive names.
	file map[*ast.File]map[string]bool
	// line maps filename -> line -> directive names on that line.
	line map[string]map[int][]string
	// only maps filename -> lines whose only content is directives,
	// so a directive-only line can cover the line below it.
	only map[string]map[int]bool
}

// parseDirective returns the name of a //cup: directive comment, or "".
func parseDirective(text string) string {
	const prefix = "//cup:"
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	rest := text[len(prefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// ParseDirectives indexes the //cup: comments of files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset: fset,
		file: make(map[*ast.File]map[string]bool),
		line: make(map[string]map[int][]string),
		only: make(map[string]map[int]bool),
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		fileDirs := make(map[string]bool)
		d.file[f] = fileDirs
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c.Text)
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if pos.Line < pkgLine {
					fileDirs[name] = true
					continue
				}
				lm := d.line[pos.Filename]
				if lm == nil {
					lm = make(map[int][]string)
					d.line[pos.Filename] = lm
				}
				lm[pos.Line] = append(lm[pos.Line], name)
				// A comment starting at column 1..inf with nothing
				// before it on the line is "directive-only" when the
				// comment is the whole line: detect by comparing the
				// comment start column against the first non-blank
				// content — the parser gives us only the comment, so
				// treat a comment that begins the line's content
				// (column == indentation) as standalone. We cannot see
				// raw source here; standalone-ness is approximated as
				// "no AST node starts on this line", checked lazily in
				// coversLine.
				om := d.only[pos.Filename]
				if om == nil {
					om = make(map[int]bool)
					d.only[pos.Filename] = om
				}
				om[pos.Line] = true
			}
		}
		// A line that holds a directive comment AND code is not
		// directive-only: un-mark lines on which any non-comment node
		// begins or ends.
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || n == f {
				return true
			}
			if _, ok := n.(*ast.Comment); ok {
				return true
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return true
			}
			pos := fset.Position(n.Pos())
			if om := d.only[pos.Filename]; om != nil {
				delete(om, pos.Line)
			}
			return true
		})
	}
	return d
}

// FileScope reports whether f carries the file-scope directive name.
func (d *Directives) FileScope(f *ast.File, name string) bool {
	return d.file[f][name]
}

// FuncScope reports whether fn's doc comment carries directive name.
func (d *Directives) FuncScope(fn *ast.FuncDecl, name string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if parseDirective(c.Text) == name {
				return true
			}
		}
	}
	// gofmt keeps a blank-line-separated directive out of the doc
	// group; accept a directive on the line directly above the doc
	// comment or declaration as well.
	return d.coversLine(d.fset.Position(fn.Pos()), name)
}

// At reports whether directive name covers the node position pos:
// either a directive on pos's own line, or a directive-only line
// directly above it.
func (d *Directives) At(pos token.Pos, name string) bool {
	return d.coversLine(d.fset.Position(pos), name)
}

func (d *Directives) coversLine(pos token.Position, name string) bool {
	lm := d.line[pos.Filename]
	if lm == nil {
		return false
	}
	for _, n := range lm[pos.Line] {
		if n == name {
			return true
		}
	}
	if d.only[pos.Filename][pos.Line-1] {
		for _, n := range lm[pos.Line-1] {
			if n == name {
				return true
			}
		}
	}
	return false
}
