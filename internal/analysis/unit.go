package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file speaks cmd/go's vettool protocol, the same contract
// x/tools' unitchecker implements, so `go vet -vettool=$(which
// cuplint) ./...` drives the suite one compilation unit at a time:
//
//  1. `cuplint -V=full` prints a stable version line cmd/go hashes
//     into its build cache key;
//  2. `cuplint -flags` prints the tool's flag schema (empty: the
//     suite has no tunables);
//  3. `cuplint $WORK/.../vet.cfg` analyzes one package described by a
//     JSON config, writes the (empty — the suite is fact-free) .vetx
//     facts file cmd/go expects, and prints diagnostics to stderr,
//     exiting 2 when there are any.

// unitConfig mirrors the JSON cmd/go writes for each vet invocation.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoreFiles               []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake: a line starting with
// the program name and ending in a build-identifying hash.
func PrintVersion(w io.Writer, progname string) {
	// Hash the executable so rebuilding cuplint invalidates cmd/go's
	// vet result cache, exactly as unitchecker does.
	var sum [sha256.Size]byte
	if data, err := os.ReadFile(os.Args[0]); err == nil {
		sum = sha256.Sum256(data)
	}
	fmt.Fprintf(w, "%s version devel buildID=%02x\n", progname, sum)
}

// PrintFlags implements the -flags handshake. The suite registers no
// pass-through flags, so the schema is an empty JSON array.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// RunUnit analyzes the single compilation unit described by the config
// file at cfgPath and returns its diagnostics plus the fileset they
// resolve against. It always writes the .vetx facts output (empty —
// no cuplint analyzer uses facts), because cmd/go treats a missing
// output as a tool failure.
func RunUnit(cfgPath string, analyzers []*Analyzer) (*token.FileSet, []Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: cmd/go wants facts, and the
		// suite has none to offer.
		return token.NewFileSet(), nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return fset, nil, nil
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewInfo()
	conf := types.Config{Importer: imp, Error: func(error) {}}
	if v := strings.TrimSuffix(cfg.GoVersion, " X:boringcrypto"); v != "" {
		conf.GoVersion = v
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return fset, nil, nil
		}
		return nil, nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{Path: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := RunAnalyzers([]*Package{pkg}, analyzers)
	return fset, diags, err
}
