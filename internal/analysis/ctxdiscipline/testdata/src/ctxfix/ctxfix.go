//cup:ctxdiscipline

package ctxfix

import "context"

func bare(ch chan int) int {
	ch <- 1     // want `blocking channel send outside select`
	return <-ch // want `blocking channel receive outside select`
}

func ranged(ch chan int) int {
	sum := 0
	for v := range ch { // want `range over channel blocks until the sender closes it`
		sum += v
	}
	return sum
}

func withCtx(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func withClosed(ch chan int, closed chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-closed:
		return 0
	}
}

func nonBlocking(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func noCancel(a, b chan int) {
	select { // want `select can block with no cancellation case`
	case <-a:
	case b <- 1:
	}
}

func oneShot() int {
	reply := make(chan int, 1)
	// Cannot block: buffered(1) and this function owns the only send.
	reply <- 42    //cup:allowblocking
	return <-reply //cup:allowblocking
}
