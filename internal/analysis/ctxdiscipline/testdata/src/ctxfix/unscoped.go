package ctxfix

// No //cup:ctxdiscipline directive on this file and the fixture is not
// cup/internal/live, so bare channel operations here are not checked.
func unscoped(ch chan int) int {
	ch <- 1
	return <-ch
}
