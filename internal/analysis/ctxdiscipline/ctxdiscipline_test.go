package ctxdiscipline_test

import (
	"testing"

	"cup/internal/analysis/analysistest"
	"cup/internal/analysis/ctxdiscipline"
)

func TestCtxDiscipline(t *testing.T) {
	analysistest.Run(t, ".", ctxdiscipline.Analyzer, "ctxfix")
}
