// Package ctxdiscipline pins the live transport's cancellation
// contract (PR 2): every blocking channel operation on the
// inbox/waiter paths must sit in a select that can be released by
// cancellation, so a saturated peer mailbox or an abandoned lookup can
// never wedge a goroutine past its context.
//
// Scope: cup/internal/live and cup/internal/serve (the serving layer
// holds request goroutines to the same contract: an HTTP handler or
// its janitor must never block past cancellation), plus any file
// carrying //cup:ctxdiscipline. Test files are exempt.
//
// Rules:
//
//   - a channel send, receive, or range outside a select is flagged
//     unless the line carries //cup:allowblocking (the escape hatch
//     for provably non-blocking operations, e.g. a buffered one-shot
//     reply channel owned by the sender);
//   - a select whose comm clauses can block (no default clause) must
//     include at least one cancellation case: a receive from a
//     context's Done() channel, or from a channel whose name is
//     closed/done/stop/quit (the network-shutdown broadcast idiom).
package ctxdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cup/internal/analysis"
)

// Analyzer is the ctxdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc: "require blocking channel operations in internal/live and internal/serve to sit " +
		"in a select with a cancellation case (ctx.Done() or a closed/done broadcast channel)",
	Run: run,
}

// scopedPkgs are the packages the pass covers wholesale; other files
// opt in with //cup:ctxdiscipline.
var scopedPkgs = map[string]bool{
	"cup/internal/live":  true,
	"cup/internal/serve": true,
}

func run(pass *analysis.Pass) error {
	inPkg := scopedPkgs[pass.PkgPath()]
	for _, f := range pass.Files {
		if !inPkg && !pass.Directives.FileScope(f, analysis.DirCtxDiscipline) {
			continue
		}
		if pass.IsTestFile(f) || analysis.IsGenerated(f) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// Collect every channel operation that is the comm of a select
	// case; those are judged per-select, everything else per-site.
	inSelect := make(map[ast.Node]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			comm := cc.(*ast.CommClause).Comm
			if comm == nil {
				continue // default clause
			}
			inSelect[comm] = true
			// The comm statement wraps the operation: mark the recv
			// expression too (e.g. `case m := <-ch:`).
			ast.Inspect(comm, func(cn ast.Node) bool {
				if u, ok := cn.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					inSelect[u] = true
				}
				if s, ok := cn.(*ast.SendStmt); ok {
					inSelect[s] = true
				}
				return true
			})
		}
		checkSelect(pass, sel)
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inSelect[n] && !pass.Directives.At(n.Pos(), analysis.DirAllowBlocking) {
				pass.Reportf(n.Pos(),
					"blocking channel send outside select; wrap in a select with ctx.Done()/closed (or //cup:allowblocking with proof it cannot block)")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inSelect[n] && !pass.Directives.At(n.Pos(), analysis.DirAllowBlocking) {
				pass.Reportf(n.Pos(),
					"blocking channel receive outside select; wrap in a select with ctx.Done()/closed (or //cup:allowblocking with proof it cannot block)")
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if !pass.Directives.At(n.Pos(), analysis.DirAllowBlocking) {
						pass.Reportf(n.Pos(),
							"range over channel blocks until the sender closes it; use a select loop with ctx.Done()/closed (or //cup:allowblocking)")
					}
				}
			}
		}
		return true
	})
}

// checkSelect requires a cancellation case in every blocking select.
func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	hasDefault := false
	hasCancel := false
	hasComm := false
	for _, cc := range sel.Body.List {
		clause := cc.(*ast.CommClause)
		if clause.Comm == nil {
			hasDefault = true
			continue
		}
		hasComm = true
		if recvFromCancel(pass, clause.Comm) {
			hasCancel = true
		}
	}
	if hasDefault || !hasComm || hasCancel {
		return
	}
	if pass.Directives.At(sel.Pos(), analysis.DirAllowBlocking) {
		return
	}
	pass.Reportf(sel.Pos(),
		"select can block with no cancellation case; add ctx.Done() or the network's closed channel (or //cup:allowblocking with proof it cannot block)")
}

// recvFromCancel reports whether a comm statement receives from a
// cancellation channel: ctx.Done(), or a channel named closed / done /
// stop / quit.
func recvFromCancel(pass *analysis.Pass, comm ast.Stmt) bool {
	var recv *ast.UnaryExpr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv, _ = ast.Unparen(s.X).(*ast.UnaryExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv, _ = ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		}
	}
	if recv == nil || recv.Op != token.ARROW {
		return false
	}
	switch x := ast.Unparen(recv.X).(type) {
	case *ast.CallExpr:
		// ctx.Done() — a method named Done on context.Context (or any
		// type embedding it).
		if s, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return cancelName(x.Name)
	case *ast.SelectorExpr:
		return cancelName(x.Sel.Name)
	}
	return false
}

func cancelName(name string) bool {
	switch strings.ToLower(name) {
	case "closed", "done", "stop", "quit", "stopped", "shutdown":
		return true
	}
	return false
}
