package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load builds the packages matching patterns (relative to dir) the same
// way `go vet` would: `go list -export -deps` compiles every dependency
// to export data in the build cache, and each target package is then
// parsed from source and type-checked against that export data. The
// whole pipeline is offline — it only touches the local build cache.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string) // import path -> export data file
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && lp.Name != "" {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			// No cgo in this repository; typechecking it from source
			// needs the generated _cgo files, so skip rather than fail.
			continue
		}
		pkg, err := typecheck(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and checks one listed package against the export
// data of its dependencies.
func typecheck(fset *token.FileSet, lp *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(lp.ImportMap, exports))
	info := NewInfo()
	conf := types.Config{Importer: imp, Error: func(error) {}}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path: lp.ImportPath, Dir: lp.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// exportLookup maps source-level import paths through the package's
// ImportMap (vendoring, test rewrites) to cached export data files.
func exportLookup(importMap map[string]string, exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := ParseDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				Directives: dirs,
				Report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
		sortDiags(pkg.Fset, diags)
	}
	return diags, nil
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// Format renders a diagnostic as file:line:col: message (analyzer),
// with file relative to base when possible.
func Format(fset *token.FileSet, base string, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", file, pos.Line, pos.Column, d.Message, d.Analyzer)
}
