// Package chord implements a Chord ring overlay [SMK+01] over a 64-bit
// identifier space, with finger tables and greedy closest-preceding-finger
// routing. CUP is overlay-agnostic (§2.2 of the paper lists Chord among the
// substrates it supports); this package backs the overlay-ablation
// experiment that re-runs the CUP evaluation on Chord instead of CAN.
package chord

import (
	"fmt"
	"sort"

	"cup/internal/overlay"
)

const fingerBits = 64

// Ring is a static Chord ring. Nodes are placed on the 2^64 identifier
// circle by hashing their labels; each key is owned by its successor node.
// Ring implements overlay.Overlay.
type Ring struct {
	ids   []uint64         // ring position per NodeID (dense index)
	order []overlay.NodeID // nodes sorted by ring position
	// fingers is one flat row-major table, fingerBits entries per node:
	// fingers[i*fingerBits+b] = successor(ids[i] + 2^b). One pointer-free
	// allocation instead of n slice headers — at 10^6 nodes that is the
	// difference between a table the GC never scans and a million tiny
	// objects.
	fingers []overlay.NodeID
	succ    []overlay.NodeID // immediate successor per node
	pred    []overlay.NodeID // immediate predecessor per node
}

var _ overlay.Overlay = (*Ring)(nil)

// Build constructs a ring of n nodes with deterministic labels
// "chord-node-<i>". Labels collide on the ring with probability ~n²/2^64,
// which is negligible; a collision panics rather than silently corrupting
// ownership.
func Build(n int) *Ring {
	if n <= 0 {
		panic("chord: Build requires n > 0")
	}
	r := &Ring{
		ids:     make([]uint64, n),
		order:   make([]overlay.NodeID, n),
		fingers: make([]overlay.NodeID, n*fingerBits),
		succ:    make([]overlay.NodeID, n),
		pred:    make([]overlay.NodeID, n),
	}
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id := overlay.HashNodeID(fmt.Sprintf("chord-node-%d", i))
		if seen[id] {
			panic(fmt.Sprintf("chord: ring position collision at node %d", i))
		}
		seen[id] = true
		r.ids[i] = id
		r.order[i] = overlay.NodeID(i)
	}
	sort.Slice(r.order, func(a, b int) bool { return r.ids[r.order[a]] < r.ids[r.order[b]] })
	for pos, node := range r.order {
		r.succ[node] = r.order[(pos+1)%n]
		r.pred[node] = r.order[(pos-1+n)%n]
	}
	for i := 0; i < n; i++ {
		r.buildFingers(overlay.NodeID(i))
	}
	return r
}

// buildFingers computes the classic finger table: entry b points at the
// first node whose identifier succeeds ids[n] + 2^b (mod 2^64). Duplicate
// consecutive fingers are kept — the table is indexed positionally.
func (r *Ring) buildFingers(n overlay.NodeID) {
	row := r.fingers[int(n)*fingerBits : (int(n)+1)*fingerBits]
	for b := 0; b < fingerBits; b++ {
		target := r.ids[n] + (uint64(1) << uint(b)) // wraps naturally mod 2^64
		row[b] = r.successorOf(target)
	}
}

// finger returns entry b of n's finger table.
func (r *Ring) finger(n overlay.NodeID, b int) overlay.NodeID {
	return r.fingers[int(n)*fingerBits+b]
}

// successorOf returns the node owning identifier t: the first node at or
// clockwise after t.
func (r *Ring) successorOf(t uint64) overlay.NodeID {
	i := sort.Search(len(r.order), func(i int) bool { return r.ids[r.order[i]] >= t })
	if i == len(r.order) {
		i = 0
	}
	return r.order[i]
}

// Size returns the number of nodes.
func (r *Ring) Size() int { return len(r.ids) }

// ID returns n's position on the identifier circle.
func (r *Ring) ID(n overlay.NodeID) uint64 { return r.ids[n] }

// Successor returns the node clockwise-adjacent to n.
func (r *Ring) Successor(n overlay.NodeID) overlay.NodeID { return r.succ[n] }

// Predecessor returns the node counterclockwise-adjacent to n.
func (r *Ring) Predecessor(n overlay.NodeID) overlay.NodeID { return r.pred[n] }

// Owner returns the authority node for key k (the successor of its hash).
func (r *Ring) Owner(k overlay.Key) overlay.NodeID {
	return r.successorOf(overlay.HashID(k))
}

// between reports whether x ∈ (a, b] on the identifier circle.
func between(a, x, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // wrapped interval
}

// NextHop implements Chord routing: if n owns k, stop; if k falls between n
// and its successor, hop to the successor (which owns it); otherwise hop to
// the closest finger preceding k. Each hop at least halves the remaining
// clockwise distance, so paths are O(log n).
func (r *Ring) NextHop(n overlay.NodeID, k overlay.Key) (overlay.NodeID, bool) {
	t := overlay.HashID(k)
	if r.Owner(k) == n {
		return n, true
	}
	if between(r.ids[n], t, r.ids[r.succ[n]]) {
		return r.succ[n], true
	}
	// Closest preceding finger: highest finger strictly inside (n, t).
	for b := fingerBits - 1; b >= 0; b-- {
		f := r.finger(n, b)
		if f != n && between(r.ids[n], r.ids[f], t) && r.ids[f] != t {
			return f, true
		}
	}
	return r.succ[n], true
}

// Neighbors returns the routing neighbors of n: its distinct finger-table
// entries plus successor and predecessor. In CUP terms these are the peers
// with which n maintains query/update channels.
func (r *Ring) Neighbors(n overlay.NodeID) []overlay.NodeID {
	set := map[overlay.NodeID]bool{r.succ[n]: true, r.pred[n]: true}
	for _, f := range r.fingers[int(n)*fingerBits : (int(n)+1)*fingerBits] {
		if f != n {
			set[f] = true
		}
	}
	delete(set, n)
	out := make([]overlay.NodeID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
