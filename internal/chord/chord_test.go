package chord

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"cup/internal/overlay"
)

func TestBuildSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 256} {
		r := Build(n)
		if r.Size() != n {
			t.Fatalf("Size = %d, want %d", r.Size(), n)
		}
	}
}

func TestBuildZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(0) did not panic")
		}
	}()
	Build(0)
}

func TestSuccessorPredecessorInverse(t *testing.T) {
	r := Build(100)
	for i := 0; i < 100; i++ {
		n := overlay.NodeID(i)
		if r.Predecessor(r.Successor(n)) != n {
			t.Fatalf("pred(succ(%v)) != %v", n, n)
		}
		if r.Successor(r.Predecessor(n)) != n {
			t.Fatalf("succ(pred(%v)) != %v", n, n)
		}
	}
}

func TestSuccessorRingIsSingleCycle(t *testing.T) {
	const n = 64
	r := Build(n)
	seen := make(map[overlay.NodeID]bool)
	cur := overlay.NodeID(0)
	for i := 0; i < n; i++ {
		if seen[cur] {
			t.Fatalf("successor ring revisits %v after %d steps", cur, i)
		}
		seen[cur] = true
		cur = r.Successor(cur)
	}
	if cur != 0 {
		t.Fatalf("ring did not close: ended at %v", cur)
	}
}

func TestOwnerIsSuccessorOfHash(t *testing.T) {
	r := Build(32)
	for i := 0; i < 100; i++ {
		k := overlay.Key(fmt.Sprintf("key-%d", i))
		owner := r.Owner(k)
		h := overlay.HashID(k)
		pred := r.Predecessor(owner)
		// h must lie in (pred, owner] on the circle.
		if !between(r.ID(pred), h, r.ID(owner)) {
			t.Fatalf("key %q: hash %x not in (pred %x, owner %x]", k, h, r.ID(pred), r.ID(owner))
		}
	}
}

func TestRoutingReachesOwner(t *testing.T) {
	for _, n := range []int{1, 2, 8, 128, 1024} {
		r := Build(n)
		for i := 0; i < 100; i++ {
			k := overlay.Key(fmt.Sprintf("route-%d-%d", n, i))
			owner := r.Owner(k)
			for _, start := range []overlay.NodeID{0, overlay.NodeID(n / 2), overlay.NodeID(n - 1)} {
				path := overlay.PathTo(r, start, k, 4*fingerBits)
				if path[len(path)-1] != owner {
					t.Fatalf("n=%d key=%q from %v: ends at %v, owner %v", n, k, start, path[len(path)-1], owner)
				}
			}
		}
	}
}

func TestRoutingIsLogarithmic(t *testing.T) {
	const n = 1024
	r := Build(n)
	total := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		k := overlay.Key(fmt.Sprintf("log-%d", i))
		total += overlay.Distance(r, overlay.NodeID(i%n), k, 4*fingerBits)
	}
	avg := float64(total) / trials
	// Chord expects ~0.5*log2(n) = 5 hops; allow generous slack.
	if avg > 2*math.Log2(n) {
		t.Fatalf("average path length %v too long for n=%d", avg, n)
	}
}

func TestNeighborsExcludeSelfAndAreSorted(t *testing.T) {
	r := Build(64)
	for i := 0; i < 64; i++ {
		n := overlay.NodeID(i)
		nbrs := r.Neighbors(n)
		if len(nbrs) == 0 {
			t.Fatalf("%v has no neighbors", n)
		}
		for j, m := range nbrs {
			if m == n {
				t.Fatalf("%v lists itself as neighbor", n)
			}
			if j > 0 && nbrs[j-1] >= m {
				t.Fatalf("neighbors of %v not sorted: %v", n, nbrs)
			}
		}
	}
}

func TestNeighborCountIsLogarithmic(t *testing.T) {
	r := Build(1024)
	for i := 0; i < 1024; i += 37 {
		nbrs := r.Neighbors(overlay.NodeID(i))
		if len(nbrs) > 4*int(math.Log2(1024))+8 {
			t.Fatalf("node %d has %d neighbors, way above O(log n)", i, len(nbrs))
		}
	}
}

func TestNextHopIsANeighbor(t *testing.T) {
	r := Build(128)
	for i := 0; i < 60; i++ {
		k := overlay.Key(fmt.Sprintf("nbr-%d", i))
		n := overlay.NodeID(i)
		next, ok := r.NextHop(n, k)
		if !ok {
			t.Fatalf("no hop from %v", n)
		}
		if next == n {
			continue // authority
		}
		found := false
		for _, m := range r.Neighbors(n) {
			if m == next {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("NextHop(%v) = %v is not a neighbor", n, next)
		}
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, x, b uint64
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false}, // open at a
		{10, 20, 20, true},  // closed at b
		{10, 25, 20, false},
		{20, 25, 10, true},  // wrapped
		{20, 5, 10, true},   // wrapped
		{20, 15, 10, false}, // wrapped, outside
	}
	for _, c := range cases {
		if got := between(c.a, c.x, c.b); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

// Property: routing from any start node for any key terminates at Owner(k)
// within 2*64 hops.
func TestPropertyRouting(t *testing.T) {
	r := Build(257)
	f := func(start uint16, key string) bool {
		n := overlay.NodeID(int(start) % 257)
		k := overlay.Key(key)
		path := overlay.PathTo(r, n, k, 2*fingerBits)
		return path[len(path)-1] == r.Owner(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute1024(b *testing.B) {
	r := Build(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := overlay.Key(fmt.Sprintf("bench-%d", i%512))
		overlay.PathTo(r, overlay.NodeID(i%1024), k, 4*fingerBits)
	}
}
