package chord

import "cup/internal/overlay"

// Chord self-registers with the overlay registry. Ring positions come from
// hashing deterministic node labels, so the seed is ignored: every build of
// the same size is identical.
func init() {
	overlay.Register("chord", func(n int, _ int64) overlay.Overlay {
		return Build(n)
	})
}
