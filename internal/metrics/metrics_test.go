package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentile(t *testing.T) {
	samples := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.9, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.q); got != c.want {
			t.Errorf("Percentile(q=%g) = %d, want %d", c.q, got, c.want)
		}
	}
	if samples[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %d, want 0", got)
	}
}

// TestPercentileEdgeCases pins the nearest-rank semantics at the
// boundaries the latency histograms build on: empty input, the extreme
// quantiles (and beyond), single samples, and unsorted input.
func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile([]time.Duration{}, 0.5); got != 0 {
		t.Errorf("empty sample set: got %d, want 0", got)
	}
	if got := Percentile(nil, 1); got != 0 {
		t.Errorf("nil sample set: got %d, want 0", got)
	}

	samples := []time.Duration{40, 10, 30, 20} // unsorted on purpose
	if got := Percentile(samples, 0); got != 10 {
		t.Errorf("q=0: got %d, want the minimum 10", got)
	}
	if got := Percentile(samples, 1); got != 40 {
		t.Errorf("q=1: got %d, want the maximum 40", got)
	}
	// Out-of-range quantiles clamp to the extremes.
	if got := Percentile(samples, -0.5); got != 10 {
		t.Errorf("q<0: got %d, want 10", got)
	}
	if got := Percentile(samples, 1.5); got != 40 {
		t.Errorf("q>1: got %d, want 40", got)
	}
	// Nearest rank on unsorted input: ceil(0.5·4) = rank 2 → 20.
	if got := Percentile(samples, 0.5); got != 20 {
		t.Errorf("median of unsorted input: got %d, want 20", got)
	}
	if samples[0] != 40 || samples[1] != 10 || samples[2] != 30 || samples[3] != 20 {
		t.Errorf("Percentile mutated its input: %v", samples)
	}

	// A single sample is every quantile.
	one := []time.Duration{7}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := Percentile(one, q); got != 7 {
			t.Errorf("single sample at q=%g: got %d, want 7", q, got)
		}
	}
}

func TestCountersIdentities(t *testing.T) {
	c := Counters{
		Queries: 100, Hits: 60,
		QueryHops: 50, ResponseHops: 50,
		UpdateHops: 30, ClearBitHops: 10,
	}
	if c.Misses() != 40 {
		t.Fatalf("Misses = %d", c.Misses())
	}
	if c.MissCost() != 100 {
		t.Fatalf("MissCost = %d", c.MissCost())
	}
	if c.Overhead() != 40 {
		t.Fatalf("Overhead = %d", c.Overhead())
	}
	if c.TotalCost() != 140 {
		t.Fatalf("TotalCost = %d", c.TotalCost())
	}
	if got := c.MissLatencyHops(); got != 2.5 {
		t.Fatalf("MissLatencyHops = %v", got)
	}
}

func TestMissLatencyZeroMisses(t *testing.T) {
	c := Counters{Queries: 10, Hits: 10}
	if c.MissLatencyHops() != 0 {
		t.Fatal("latency with zero misses should be 0")
	}
}

func TestMissLatencySeconds(t *testing.T) {
	c := Counters{MissLatencyTotal: 10, MissesServed: 4}
	if got := c.MissLatencySeconds(); got != 2.5 {
		t.Fatalf("MissLatencySeconds = %v", got)
	}
	if (&Counters{}).MissLatencySeconds() != 0 {
		t.Fatal("zero served should be 0")
	}
}

func TestJustifiedFraction(t *testing.T) {
	c := Counters{JustifiedUpdates: 3, UnjustifiedUpdates: 1}
	if got := c.JustifiedFraction(); got != 0.75 {
		t.Fatalf("JustifiedFraction = %v", got)
	}
	if (&Counters{}).JustifiedFraction() != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestSavedMissRatio(t *testing.T) {
	std := Counters{QueryHops: 500, ResponseHops: 500}
	c := Counters{QueryHops: 100, ResponseHops: 100, UpdateHops: 100}
	if got := c.SavedMissRatio(&std); got != 8 {
		t.Fatalf("SavedMissRatio = %v, want 8", got)
	}
	noOverhead := Counters{}
	if noOverhead.SavedMissRatio(&std) != 0 {
		t.Fatal("zero overhead should yield 0 ratio")
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{Queries: 5, Hits: 3, QueryHops: 4, ResponseHops: 4}
	s := c.String()
	for _, want := range []string{"queries=5", "misses=2", "missCost=8"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("long-name", "22")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("render lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== Demo ==") {
		t.Fatalf("title line = %q", lines[0])
	}
	// Column two must start at the same offset in every data row.
	h := strings.Index(lines[1], "value")
	if strings.Index(lines[3], "1") != h {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableCaption(t *testing.T) {
	tb := &Table{Header: []string{"x"}, Caption: "note"}
	tb.AddRow("1")
	if !strings.Contains(tb.Render(), "note") {
		t.Fatal("caption missing")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.1234: "0.123",
		1.5:    "1.50",
		123.4:  "123",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
	if I(42) != "42" {
		t.Fatalf("I(42) = %q", I(42))
	}
	if I(uint64(7)) != "7" {
		t.Fatalf("I(uint64) = %q", I(uint64(7)))
	}
}

// Property: cost identities hold for arbitrary counter values.
func TestPropertyCostIdentities(t *testing.T) {
	f := func(q, r, u, cb uint32) bool {
		c := Counters{
			QueryHops: uint64(q), ResponseHops: uint64(r),
			UpdateHops: uint64(u), ClearBitHops: uint64(cb),
		}
		return c.TotalCost() == c.MissCost()+c.Overhead() &&
			c.MissCost() == uint64(q)+uint64(r) &&
			c.Overhead() == uint64(u)+uint64(cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
