// Package metrics collects the cost counters the CUP paper reports (§3.3):
// miss cost in hops, update-propagation and clear-bit overhead, total cost,
// hit/miss/freshness-miss counts, per-miss latency, and justified-update
// accounting. It also provides the plain-text table renderer used by
// cmd/cupbench to print the paper's tables and figure series, and the
// duration-tail summaries (Percentile) the bench harness reports for
// sweep scheduling.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Counters aggregates one simulation run. All hop counters count message
// transmissions over single overlay links.
type Counters struct {
	// Queries is the number of local queries posted by clients.
	Queries uint64
	// Hits are queries answered instantly from a fresh local cache (or at
	// the authority itself). Misses = Queries - Hits.
	Hits uint64
	// FirstTimeMisses are misses at nodes that never held entries for the
	// key; FreshnessMisses are misses on expired-but-present entries (the
	// paper's [CK01b] freshness misses).
	FirstTimeMisses uint64
	FreshnessMisses uint64
	// Coalesced counts queries absorbed by an already-pending
	// Pending-First-Update flag somewhere along their path.
	Coalesced uint64

	// QueryHops are hops traveled upstream by query messages (miss cost).
	QueryHops uint64
	// ResponseHops are hops traveled downstream by updates that served a
	// pending query (miss cost).
	ResponseHops uint64
	// UpdateHops are hops traveled by proactive updates (CUP overhead).
	UpdateHops uint64
	// ClearBitHops are hops traveled by standalone clear-bit messages
	// (CUP overhead). PiggybackedClearBits counts clear-bits that rode a
	// carrier message for free (§2.7 piggybacking, when enabled).
	ClearBitHops         uint64
	PiggybackedClearBits uint64

	// UpdatesOriginated counts updates created at authority nodes;
	// UpdatesDropped counts proactive pushes suppressed by capacity limits.
	UpdatesOriginated uint64
	UpdatesDropped    uint64
	// ExpiredUpdates counts updates discarded on arrival because their
	// entries had already expired (§2.6 case 3).
	ExpiredUpdates uint64

	// JustifiedUpdates / UnjustifiedUpdates implement the paper's §3.1
	// accounting: a pushed update is justified when a query arrives at the
	// receiving node within the update's critical interval T.
	JustifiedUpdates   uint64
	UnjustifiedUpdates uint64

	// MissLatencyTotal accumulates, per answered miss, the virtual seconds
	// between posting and response delivery; MissesServed counts them.
	MissLatencyTotal float64
	MissesServed     uint64
}

// Add folds o into c field by field — the merge step of multi-trial
// sweeps. Derived ratios (MissLatencyHops, JustifiedFraction, ...) are
// computed from the merged sums, so merging trials and then reading a
// ratio yields the workload-weighted mean across trials.
func (c *Counters) Add(o *Counters) {
	c.Queries += o.Queries
	c.Hits += o.Hits
	c.FirstTimeMisses += o.FirstTimeMisses
	c.FreshnessMisses += o.FreshnessMisses
	c.Coalesced += o.Coalesced
	c.QueryHops += o.QueryHops
	c.ResponseHops += o.ResponseHops
	c.UpdateHops += o.UpdateHops
	c.ClearBitHops += o.ClearBitHops
	c.PiggybackedClearBits += o.PiggybackedClearBits
	c.UpdatesOriginated += o.UpdatesOriginated
	c.UpdatesDropped += o.UpdatesDropped
	c.ExpiredUpdates += o.ExpiredUpdates
	c.JustifiedUpdates += o.JustifiedUpdates
	c.UnjustifiedUpdates += o.UnjustifiedUpdates
	c.MissLatencyTotal += o.MissLatencyTotal
	c.MissesServed += o.MissesServed
}

// Misses returns the number of queries not served from fresh local state.
func (c *Counters) Misses() uint64 { return c.Queries - c.Hits }

// MissCost returns the paper's miss cost: hops incurred by all misses.
func (c *Counters) MissCost() uint64 { return c.QueryHops + c.ResponseHops }

// Overhead returns CUP's propagation overhead in hops.
func (c *Counters) Overhead() uint64 { return c.UpdateHops + c.ClearBitHops }

// TotalCost returns miss cost plus overhead. For standard caching this
// equals the miss cost.
func (c *Counters) TotalCost() uint64 { return c.MissCost() + c.Overhead() }

// MissLatencyHops returns the average number of hops needed to handle a
// miss (the paper's query latency metric, Table 2 rows 2-3).
func (c *Counters) MissLatencyHops() float64 {
	if m := c.Misses(); m > 0 {
		return float64(c.MissCost()) / float64(m)
	}
	return 0
}

// MissLatencySeconds returns the average virtual-time latency per served
// miss.
func (c *Counters) MissLatencySeconds() float64 {
	if c.MissesServed > 0 {
		return c.MissLatencyTotal / float64(c.MissesServed)
	}
	return 0
}

// JustifiedFraction returns the fraction of classified proactive updates
// that were justified (§3.1).
func (c *Counters) JustifiedFraction() float64 {
	total := c.JustifiedUpdates + c.UnjustifiedUpdates
	if total == 0 {
		return 0
	}
	return float64(c.JustifiedUpdates) / float64(total)
}

// SavedMissRatio returns the paper's "investment return": saved miss hops
// relative to a baseline run, per overhead hop spent (Table 2 row 4).
func (c *Counters) SavedMissRatio(baseline *Counters) float64 {
	if c.Overhead() == 0 {
		return 0
	}
	saved := float64(baseline.MissCost()) - float64(c.MissCost())
	return saved / float64(c.Overhead())
}

// String summarizes the counters on one line.
func (c *Counters) String() string {
	return fmt.Sprintf(
		"queries=%d hits=%d misses=%d missCost=%d overhead=%d total=%d missLat=%.2fh",
		c.Queries, c.Hits, c.Misses(), c.MissCost(), c.Overhead(), c.TotalCost(),
		c.MissLatencyHops())
}

// Table is a simple column-aligned text table, used by the benchmark
// harness to print rows in the same layout as the paper's tables.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table with column alignment.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1, nearest-rank) of a set
// of wall-clock samples — the engine's per-trial times. q=1 is the
// sweep tail: the slowest cell, the quantity adaptive dispatch hides
// behind the rest of the pool's work. The input is not modified; an
// empty set returns zero.
func Percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	// Nearest rank: ceil(q·n) converted to a zero-based index.
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// I formats an integer cell.
func I[T ~uint64 | ~int | ~int64](v T) string { return fmt.Sprintf("%d", int64(v)) }
