package netmodel

import (
	"testing"
	"testing/quick"

	"cup/internal/overlay"
	"cup/internal/sim"
)

func TestConstant(t *testing.T) {
	m := Constant(0.25)
	if m.Delay(1, 2) != 0.25 || m.Delay(9, 9) != 0.25 {
		t.Fatal("constant model varies")
	}
}

func TestUniformBoundsAndDeterminism(t *testing.T) {
	m := Uniform{Min: 0.01, Max: 0.2, Seed: 7}
	for a := overlay.NodeID(0); a < 40; a++ {
		for b := overlay.NodeID(0); b < 40; b++ {
			d := m.Delay(a, b)
			if d < 0.01 || d > 0.2 {
				t.Fatalf("Delay(%v,%v) = %v out of bounds", a, b, d)
			}
			if d != m.Delay(a, b) {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestUniformSymmetric(t *testing.T) {
	m := Uniform{Min: 0.01, Max: 0.5, Seed: 3}
	f := func(a, b uint16) bool {
		x, y := overlay.NodeID(a), overlay.NodeID(b)
		return m.Delay(x, y) == m.Delay(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDegenerateRange(t *testing.T) {
	m := Uniform{Min: 0.1, Max: 0.1}
	if m.Delay(1, 2) != 0.1 {
		t.Fatal("degenerate range broken")
	}
}

func TestUniformVaries(t *testing.T) {
	m := Uniform{Min: 0, Max: 1, Seed: 9}
	seen := map[sim.Duration]bool{}
	for i := overlay.NodeID(0); i < 50; i++ {
		seen[m.Delay(0, i)] = true
	}
	if len(seen) < 25 {
		t.Fatalf("only %d distinct latencies across 50 links", len(seen))
	}
}

func TestUniformSeedChangesDraws(t *testing.T) {
	a := Uniform{Min: 0, Max: 1, Seed: 1}
	b := Uniform{Min: 0, Max: 1, Seed: 2}
	same := 0
	for i := overlay.NodeID(1); i < 100; i++ {
		if a.Delay(0, i) == b.Delay(0, i) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d identical draws across seeds", same)
	}
}

func TestTransitStubIntraVsInter(t *testing.T) {
	m := TransitStub{Stubs: 4, Local: 0.005, TransitMin: 0.03, TransitMax: 0.12, Seed: 5}
	intra, inter := 0, 0
	for a := overlay.NodeID(0); a < 64; a++ {
		for b := a + 1; b < 64; b++ {
			d := m.Delay(a, b)
			if m.stubOf(a) == m.stubOf(b) {
				intra++
				if d != 0.005 {
					t.Fatalf("intra-stub delay = %v", d)
				}
			} else {
				inter++
				if d < 0.035 || d > 0.125 {
					t.Fatalf("inter-stub delay = %v out of range", d)
				}
			}
		}
	}
	if intra == 0 || inter == 0 {
		t.Fatalf("degenerate stub assignment: intra=%d inter=%d", intra, inter)
	}
}

func TestTransitStubSingleStub(t *testing.T) {
	m := TransitStub{Stubs: 1, Local: 0.01, TransitMin: 1, TransitMax: 2}
	if d := m.Delay(3, 9); d != 0.01 {
		t.Fatalf("single stub delay = %v", d)
	}
}

func TestTransitStubConsistentPairDelay(t *testing.T) {
	m := TransitStub{Stubs: 8, Local: 0.005, TransitMin: 0.02, TransitMax: 0.1, Seed: 11}
	// All links between the same stub pair share one transit latency.
	type pair struct{ a, b int }
	delays := map[pair]sim.Duration{}
	for a := overlay.NodeID(0); a < 80; a++ {
		for b := a + 1; b < 80; b++ {
			sa, sb := m.stubOf(a), m.stubOf(b)
			if sa == sb {
				continue
			}
			if sa > sb {
				sa, sb = sb, sa
			}
			p := pair{sa, sb}
			d := m.Delay(a, b)
			if prev, ok := delays[p]; ok && prev != d {
				t.Fatalf("stub pair %v has two delays: %v vs %v", p, prev, d)
			}
			delays[p] = d
		}
	}
}

func TestPositionedDistanceScaling(t *testing.T) {
	m := Positioned{
		Pos:   []overlay.Point{{X: 0.1, Y: 0.1}, {X: 0.1, Y: 0.2}, {X: 0.6, Y: 0.6}},
		Base:  0.001,
		Scale: 1,
	}
	near := m.Delay(0, 1)
	far := m.Delay(0, 2)
	if near >= far {
		t.Fatalf("near %v not below far %v", near, far)
	}
	if near < 0.001 {
		t.Fatal("base latency missing")
	}
}

func TestPositionedTorusWraparound(t *testing.T) {
	m := Positioned{
		Pos:   []overlay.Point{{X: 0.05, Y: 0.5}, {X: 0.95, Y: 0.5}},
		Scale: 1,
	}
	// Across the seam the distance is 0.1, not 0.9.
	if d := m.Delay(0, 1); d > 0.11 {
		t.Fatalf("wraparound delay = %v, want ≈0.1", d)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Neighboring inputs must produce very different outputs.
	a, b := mix64(1), mix64(2)
	if a == b {
		t.Fatal("mix64 collision on adjacent inputs")
	}
	diff := a ^ b
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 {
		t.Fatalf("only %d bits differ", bits)
	}
}
