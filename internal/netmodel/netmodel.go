// Package netmodel provides per-hop latency models for the simulator —
// the reproduction's stand-in for the Stanford Narses network simulator's
// delay modeling. The paper's cost metrics are hop counts, but message
// *timing* decides freshness-miss windows and coalescing opportunities, so
// the latency model is a real experimental variable. Models are
// deterministic functions of the link endpoints (seeded hashing), keeping
// whole-simulation determinism.
package netmodel

import (
	"math"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// Model yields the one-way latency of a message on the link from → to.
// Implementations must be deterministic and safe for concurrent use.
type Model interface {
	Delay(from, to overlay.NodeID) sim.Duration
}

// Constant is a uniform per-hop delay — the default model.
type Constant sim.Duration

// Delay implements Model.
func (c Constant) Delay(_, _ overlay.NodeID) sim.Duration { return sim.Duration(c) }

// mix64 is a SplitMix64 step. Link latencies must be identical across
// process runs (unlike hash/maphash seeds), so links are hashed with this
// explicit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// linkUnit is the cross-run-deterministic variant of linkHash.
func linkUnit(seed uint64, a, b overlay.NodeID) float64 {
	if a > b {
		a, b = b, a
	}
	v := mix64(seed ^ mix64(uint64(uint32(a))<<32|uint64(uint32(b))))
	return float64(v>>11) / float64(1<<53)
}

// Uniform draws each link's latency uniformly from [Min, Max], fixed per
// link by the seed.
type Uniform struct {
	Min, Max sim.Duration
	Seed     uint64
}

// Delay implements Model.
func (u Uniform) Delay(from, to overlay.NodeID) sim.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	f := linkUnit(u.Seed|1, from, to)
	return u.Min + sim.Duration(f)*(u.Max-u.Min)
}

// TransitStub is a two-level Internet-like model: nodes belong to stub
// domains; intra-stub links are fast, links crossing stubs pay a transit
// penalty drawn per stub pair. This approximates the GT-ITM-style
// topologies that flow-level simulators such as Narses model.
type TransitStub struct {
	// Stubs is the number of stub domains (nodes hash into them).
	Stubs int
	// Local is the intra-stub latency.
	Local sim.Duration
	// TransitMin/TransitMax bound the per-stub-pair transit latency.
	TransitMin, TransitMax sim.Duration
	// Seed fixes the stub assignment and transit draws.
	Seed uint64
}

// stubOf assigns a node to a stub domain.
func (t TransitStub) stubOf(n overlay.NodeID) int {
	if t.Stubs <= 1 {
		return 0
	}
	return int(mix64(t.Seed^uint64(uint32(n))) % uint64(t.Stubs))
}

// Delay implements Model.
func (t TransitStub) Delay(from, to overlay.NodeID) sim.Duration {
	sa, sb := t.stubOf(from), t.stubOf(to)
	if sa == sb {
		return t.Local
	}
	if sa > sb {
		sa, sb = sb, sa
	}
	f := linkUnit(t.Seed^0xabcd, overlay.NodeID(sa), overlay.NodeID(sb))
	return t.Local + t.TransitMin + sim.Duration(f)*(t.TransitMax-t.TransitMin)
}

// Positioned derives latency from virtual coordinates: delay = Base +
// Scale × torus distance between the endpoints' positions. With CAN zone
// centers as positions, overlay neighbors are physically close, which is
// how Narses-style coordinate models behave.
type Positioned struct {
	Pos   []overlay.Point
	Base  sim.Duration
	Scale sim.Duration // latency per unit of distance
}

// Delay implements Model.
func (p Positioned) Delay(from, to overlay.NodeID) sim.Duration {
	a, b := p.Pos[from], p.Pos[to]
	dx := math.Abs(a.X - b.X)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(a.Y - b.Y)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return p.Base + sim.Duration(math.Hypot(dx, dy))*p.Scale
}
