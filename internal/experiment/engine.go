package experiment

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"cup"
	"cup/internal/obs"
)

// The adaptive parallel sweep engine: every figure/table of the
// evaluation is a grid of independent simulated runs, so each generator
// decomposes its sweep into Trial units, submits them all up front, and
// assembles the table from the results in submission order. Trials
// execute on a bounded worker pool — each worker drives at most one
// cup.Deployment at a time, and every trial owns its own scheduler and
// RNG — so the rendered table is bit-identical to a sequential sweep at
// any parallelism (pinned by TestParallelSweepMatchesSequentialGolden).
//
// Dispatch is cost-ordered, not index-ordered: pending trials sit in a
// priority queue keyed by their estimated cost (cup.EstimateCost over
// the trial's options — λ, node count, replicas — unless the submitter
// supplies its own), and free workers always take the most expensive
// pending cell. A sweep whose tail hides one λ=1000 cell therefore
// starts that cell first instead of discovering it last with an idle
// pool (pinned by TestCostOrderedDispatchBeatsIndexOrder). Only the
// dispatch order changes; results still land in submission order.

// Trial is one independent run of a sweep: the cup.New options that
// fully determine it, including the seed they carry. Label is for
// diagnostics only. Cost biases the dispatch order — expensive first;
// zero means "estimate from the options".
type Trial struct {
	Label string
	Cost  float64
	Opts  []cup.Option
}

// Engine executes Trials on a bounded worker pool, expensive cells
// first.
type Engine struct {
	workers int
	// exec runs one trial; the default builds and runs a deployment.
	// Tests substitute synthetic workloads to pin scheduling behavior.
	exec func(Trial) *cup.Result

	mu sync.Mutex
	// pending.fifo restores index-order dispatch — the pre-adaptive
	// behavior — for scheduling comparisons in tests and benchmarks.
	pending pendingHeap
	seq     uint64
	running int

	// trialNs records every finished trial's wall time; the tail of a
	// sweep (its slowest cell) is what adaptive dispatch exists to hide,
	// so cupbench reports it alongside throughput.
	statMu  sync.Mutex
	trialNs []time.Duration
	// trialHist, when Instrument installed one, additionally records each
	// trial's wall time into the telemetry registry.
	trialHist *obs.Histogram
}

// NewEngine returns an engine running at most workers trials
// concurrently; workers <= 0 means GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		exec:    func(tr Trial) *cup.Result { return run(tr.Opts...) },
	}
}

// pendingTrial is one queued submission: its future, its dispatch key,
// and its submission sequence (the FIFO tiebreak, and the whole key in
// fifo mode).
type pendingTrial struct {
	tr   Trial
	fut  *Future
	cost float64
	seq  uint64
}

// pendingHeap orders pending trials most-expensive-first, submission
// order breaking ties, so equal-cost grids keep their historic index
// order.
type pendingHeap struct {
	items []*pendingTrial
	fifo  bool
}

func (h pendingHeap) Len() int { return len(h.items) }
func (h pendingHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if !h.fifo && a.cost != b.cost {
		return a.cost > b.cost
	}
	return a.seq < b.seq
}
func (h pendingHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *pendingHeap) Push(x any)   { h.items = append(h.items, x.(*pendingTrial)) }
func (h *pendingHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return it
}

// Future is a handle to one in-flight trial.
type Future struct {
	done chan struct{}
	res  *cup.Result
	// failure carries a worker panic to the collecting goroutine:
	// experiments treat unbuildable or failing runs as programming
	// errors, and the panic must not die with the worker.
	failure any
}

// Go submits a trial for execution and returns its future. The trial
// joins the pending queue at its (estimated) cost; a worker picks it up
// when it is the most expensive cell still waiting.
func (e *Engine) Go(tr Trial) *Future {
	f := &Future{done: make(chan struct{})}
	cost := tr.Cost
	if cost <= 0 {
		cost = cup.EstimateCost(tr.Opts...)
	}
	e.mu.Lock()
	e.seq++
	heap.Push(&e.pending, &pendingTrial{tr: tr, fut: f, cost: cost, seq: e.seq})
	if e.running < e.workers {
		e.running++
		go e.worker()
	}
	e.mu.Unlock()
	return f
}

// worker drains the pending queue, always taking the most expensive
// cell, and exits when the queue is empty.
func (e *Engine) worker() {
	for {
		e.mu.Lock()
		if e.pending.Len() == 0 {
			e.running--
			e.mu.Unlock()
			return
		}
		pt := heap.Pop(&e.pending).(*pendingTrial)
		e.mu.Unlock()
		e.runOne(pt)
	}
}

// runOne executes a dispatched trial and resolves its future. The
// wall-clock reads below time the host's execution of the trial for
// scheduler cost estimates; they never feed simulated results.
func (e *Engine) runOne(pt *pendingTrial) {
	start := time.Now() //cup:wallclock
	defer func() {
		elapsed := time.Since(start) //cup:wallclock
		e.statMu.Lock()
		e.trialNs = append(e.trialNs, elapsed)
		hist := e.trialHist
		e.statMu.Unlock()
		if hist != nil {
			hist.Observe(elapsed.Seconds())
		}
		close(pt.fut.done)
	}()
	defer func() { pt.fut.failure = recover() }()
	pt.fut.res = e.exec(pt.tr)
}

// Result blocks until the trial finishes and returns its result,
// re-raising any worker panic on the caller's goroutine.
func (f *Future) Result() *cup.Result {
	<-f.done
	if f.failure != nil {
		panic(f.failure)
	}
	return f.res
}

// RunAll executes trials and returns their results in trial order —
// whatever order dispatch ran them in.
func (e *Engine) RunAll(trials []Trial) []*cup.Result {
	futs := make([]*Future, len(trials))
	for i, tr := range trials {
		futs[i] = e.Go(tr)
	}
	out := make([]*cup.Result, len(trials))
	for i, f := range futs {
		out[i] = f.Result()
	}
	return out
}

// TrialTimes returns the wall time of every trial finished so far, in
// completion order.
func (e *Engine) TrialTimes() []time.Duration {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return append([]time.Duration(nil), e.trialNs...)
}

// TailTime returns the wall time of the slowest trial finished so far —
// the sweep tail adaptive dispatch exists to hide.
func (e *Engine) TailTime() time.Duration {
	var max time.Duration
	for _, d := range e.TrialTimes() {
		if d > max {
			max = d
		}
	}
	return max
}

// QueueDepth returns the number of trials waiting for a worker.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending.Len()
}

// Running returns the number of workers currently executing trials.
func (e *Engine) Running() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// Instrument registers the engine's telemetry on reg: queue depth and
// running-worker gauges read live at scrape time, plus a histogram of
// per-trial wall seconds observed as trials finish.
func (e *Engine) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("cup_experiment_queue_depth",
		"Sweep trials waiting for a worker.",
		func() float64 { return float64(e.QueueDepth()) })
	reg.GaugeFunc("cup_experiment_running",
		"Sweep trials currently executing.",
		func() float64 { return float64(e.Running()) })
	hist := reg.Histogram("cup_experiment_trial_seconds",
		"Wall time of finished sweep trials.", obs.DefBuckets)
	e.statMu.Lock()
	e.trialHist = hist
	e.statMu.Unlock()
}

// submit is the generators' shorthand for an unlabeled trial.
func (e *Engine) submit(opts ...cup.Option) *Future {
	return e.Go(Trial{Opts: opts})
}

// engine builds the sweep engine for one experiment at the Scale's
// configured parallelism, reusing the Scale's shared pool when the
// caller installed one.
func (s Scale) engine() *Engine {
	if s.Eng != nil {
		return s.Eng
	}
	return NewEngine(s.Parallelism)
}
