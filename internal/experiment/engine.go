package experiment

import (
	"runtime"

	"cup"
)

// The parallel sweep engine: every figure/table of the evaluation is a
// grid of independent simulated runs, so each generator decomposes its
// sweep into Trial units, submits them all up front, and assembles the
// table from the results in submission order. Trials execute on a
// bounded worker pool — each worker drives at most one cup.Deployment
// at a time, and every trial owns its own scheduler and RNG — so the
// rendered table is bit-identical to a sequential sweep at any
// parallelism (pinned by TestParallelSweepMatchesSequentialGolden).

// Trial is one independent run of a sweep: the cup.New options that
// fully determine it, including the seed they carry. Label is for
// diagnostics only.
type Trial struct {
	Label string
	Opts  []cup.Option
}

// Engine executes Trials on a bounded worker pool.
type Engine struct {
	sem chan struct{}
}

// NewEngine returns an engine running at most workers trials
// concurrently; workers <= 0 means GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{sem: make(chan struct{}, workers)}
}

// Future is a handle to one in-flight trial.
type Future struct {
	done chan struct{}
	res  *cup.Result
	// failure carries a worker panic to the collecting goroutine:
	// experiments treat unbuildable or failing runs as programming
	// errors, and the panic must not die with the worker.
	failure any
}

// Go submits a trial for execution and returns its future.
func (e *Engine) Go(tr Trial) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		defer close(f.done)
		defer func() { f.failure = recover() }()
		f.res = run(tr.Opts...)
	}()
	return f
}

// Result blocks until the trial finishes and returns its result,
// re-raising any worker panic on the caller's goroutine.
func (f *Future) Result() *cup.Result {
	<-f.done
	if f.failure != nil {
		panic(f.failure)
	}
	return f.res
}

// RunAll executes trials and returns their results in trial order.
func (e *Engine) RunAll(trials []Trial) []*cup.Result {
	futs := make([]*Future, len(trials))
	for i, tr := range trials {
		futs[i] = e.Go(tr)
	}
	out := make([]*cup.Result, len(trials))
	for i, f := range futs {
		out[i] = f.Result()
	}
	return out
}

// submit is the generators' shorthand for an unlabeled trial.
func (e *Engine) submit(opts ...cup.Option) *Future {
	return e.Go(Trial{Opts: opts})
}

// engine builds the sweep engine for one experiment at the Scale's
// configured parallelism.
func (s Scale) engine() *Engine { return NewEngine(s.Parallelism) }
