package experiment

import (
	"strconv"
	"strings"
	"testing"

	"cup"
	"cup/internal/metrics"
)

// tiny is the smallest useful scale for structural tests.
var tiny = Scale{Seed: 3}

// cell parses the leading integer of a table cell like "12345 (0.27)".
func cell(s string) uint64 {
	fields := strings.Fields(s)
	v, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		panic("bad cell: " + s)
	}
	return v
}

func TestScaleDefaults(t *testing.T) {
	sc := Scale{}
	if sc.duration() != 600 {
		t.Fatalf("reduced duration = %v", sc.duration())
	}
	if sc.rate(1000) >= 1000 {
		t.Fatalf("reduced rate = %v", sc.rate(1000))
	}
	if sc.rate(10) != 10 {
		t.Fatalf("low rates must not be clamped: %v", sc.rate(10))
	}
	full := Scale{Full: true}
	if full.duration() != 3000 || full.rate(1000) != 1000 || full.nodes(4096) != 4096 {
		t.Fatal("full scale altered the paper's parameters")
	}
	if sc.seed() != 1 || (Scale{Seed: 9}).seed() != 9 {
		t.Fatal("seed defaulting broken")
	}
}

func TestFig3ShapeHasInteriorMinimum(t *testing.T) {
	tb := Fig3PushLevel(tiny)
	if len(tb.Rows) != len(PushLevels) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(PushLevels))
	}
	// λ=1 totals: level 0 (standard caching) must be the most expensive,
	// and some interior level must beat the deepest level's miss cost
	// structure: total cost dips then stabilizes.
	first := cell(tb.Rows[0][1])
	min := first
	for _, row := range tb.Rows {
		if v := cell(row[1]); v < min {
			min = v
		}
	}
	if min >= first {
		t.Fatalf("no push level beat standard caching: min %d vs level0 %d", min, first)
	}
	// Miss cost must be monotone non-increasing in push level.
	prev := cell(tb.Rows[0][2])
	for i, row := range tb.Rows[1:] {
		cur := cell(row[2])
		if cur > prev+prev/10 { // allow 10% noise
			t.Fatalf("miss cost rose at level row %d: %d -> %d", i+1, prev, cur)
		}
		prev = cur
	}
}

func TestTable1SecondChanceBeatsStandardAndProbabilistic(t *testing.T) {
	tb := Table1Policies(tiny)
	byLabel := map[string][]string{}
	for _, row := range tb.Rows {
		byLabel[row[0]] = row[1:]
	}
	std := byLabel["Standard Caching"]
	sc := byLabel["Second-chance"]
	opt := byLabel["Optimal push level"]
	if std == nil || sc == nil || opt == nil {
		t.Fatalf("missing rows; have %v", tb.Rows)
	}
	for i := range std {
		if cell(sc[i]) >= cell(std[i]) {
			t.Fatalf("second-chance (%d) not below standard (%d) at column %d",
				cell(sc[i]), cell(std[i]), i)
		}
		if cell(opt[i]) > cell(std[i]) {
			t.Fatalf("optimal push level above standard at column %d", i)
		}
	}
	// The paper's headline: second-chance at least matches the
	// probability-based policies at the low rate (column 0). At reduced
	// scale the gap narrows, so allow 15% noise; the full-scale run in
	// EXPERIMENTS.md shows the paper's 1.5–2x separation.
	for label, cells := range byLabel {
		if strings.HasPrefix(label, "Linear") || strings.HasPrefix(label, "Logarithmic") {
			if float64(cell(sc[0])) > 1.15*float64(cell(cells[0])) {
				t.Fatalf("second-chance (%d) lost badly to %s (%d) at λ=1",
					cell(sc[0]), label, cell(cells[0]))
			}
		}
	}
}

func TestTable2RatiosBelowOne(t *testing.T) {
	tb := Table2NetworkSize(tiny)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for i, cellStr := range tb.Rows[0][1:] {
		v, err := strconv.ParseFloat(cellStr, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= 1 {
			t.Fatalf("miss-cost ratio column %d = %v, want < 1", i, v)
		}
	}
	// Standard-caching latency grows with network size.
	stdLat := tb.Rows[2]
	first, _ := strconv.ParseFloat(stdLat[1], 64)
	last, _ := strconv.ParseFloat(stdLat[len(stdLat)-1], 64)
	if last <= first {
		t.Fatalf("standard latency did not grow with n: %v .. %v", first, last)
	}
}

func TestTable3NaiveDegradesWithReplicas(t *testing.T) {
	tb := Table3ReplicasTable(tiny)
	// Rows are ordered most-replicas first; last row is 1 replica where
	// naive == replica-independent.
	lastRow := tb.Rows[len(tb.Rows)-1]
	if cell(lastRow[1]) != cell(lastRow[2]) {
		t.Fatalf("single replica: naive %d != replica-independent %d",
			cell(lastRow[1]), cell(lastRow[2]))
	}
	// With the most replicas, the naive cut-off must cost more misses
	// than the replica-independent fix (the paper's headline effect).
	top := tb.Rows[0]
	if cell(top[1]) <= cell(top[2]) {
		t.Fatalf("naive (%d) not worse than replica-independent (%d) at max replicas",
			cell(top[1]), cell(top[2]))
	}
}

func TestFigCapacityCUPAlwaysBeatsStandard(t *testing.T) {
	tb := Fig5Capacity(tiny)
	if len(tb.Rows) != len(Capacities) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		std := cell(row[3])
		if cell(row[1]) >= std || cell(row[2]) >= std {
			t.Fatalf("CUP above standard caching at capacity %s: %v", row[0], row)
		}
	}
}

func TestAblationOverlayChordAlsoWins(t *testing.T) {
	tb := AblationOverlay(tiny)
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio >= 1 {
			t.Fatalf("CUP lost on %s at λ=%s (ratio %v)", row[0], row[1], ratio)
		}
	}
}

func TestAblationCoalescingSavesQueryHops(t *testing.T) {
	tb := AblationCoalescing(tiny)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	stdHops, cupHops := cell(tb.Rows[0][3]), cell(tb.Rows[1][3])
	if cupHops >= stdHops {
		t.Fatalf("coalescing did not reduce query hops: %d vs %d", cupHops, stdHops)
	}
	if cell(tb.Rows[1][2]) == 0 {
		t.Fatal("no queries coalesced under the flash crowd")
	}
}

func TestAblationReorderingImprovesUsefulDeliveries(t *testing.T) {
	tb := AblationReordering(tiny)
	fifoUseful, reordUseful := cell(tb.Rows[0][1]), cell(tb.Rows[1][1])
	if reordUseful <= fifoUseful {
		t.Fatalf("re-ordering useful %d not above FIFO %d", reordUseful, fifoUseful)
	}
	if stale := cell(tb.Rows[1][2]); stale != 0 {
		t.Fatalf("re-ordering sent %d expired updates", stale)
	}
}

func TestAblationJustifiedMonotone(t *testing.T) {
	tb := AblationJustified(tiny)
	var prev float64 = -1
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v+0.08 < prev { // allow small noise
			t.Fatalf("justified fraction fell: %v after %v", v, prev)
		}
		if prev < v {
			prev = v
		}
	}
	if prev < 0.5 {
		t.Fatalf("justified fraction never exceeded 0.5 (max %v)", prev)
	}
}

func TestRegistryAndNamesAgree(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names() has %d entries, Registry %d", len(names), len(Registry))
	}
	for _, n := range names {
		if Registry[n] == nil {
			t.Fatalf("name %q missing from registry", n)
		}
	}
}

func TestTablesRenderNonEmpty(t *testing.T) {
	for name, gen := range Registry {
		if name == "fig4" || name == "fig6" || name == "table1" {
			continue // slower high-rate artifacts covered elsewhere
		}
		tb := gen(tiny)
		out := tb.Render()
		if len(out) < 40 || !strings.Contains(out, "==") {
			t.Fatalf("%s rendered %q", name, out)
		}
	}
}

// Golden pin for the parallel engine: the same sweep rendered at
// Parallelism 1 and 8 must be bit-identical, across all three overlays
// (AblationOverlay sweeps every registered kind at two rates).
func TestParallelSweepMatchesSequentialGolden(t *testing.T) {
	seq := AblationOverlay(Scale{Seed: 5, Parallelism: 1}).Render()
	par := AblationOverlay(Scale{Seed: 5, Parallelism: 8}).Render()
	if seq != par {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// The engine returns results in trial order and re-raises worker panics
// on the collecting goroutine.
func TestEngineOrderAndPanicPropagation(t *testing.T) {
	eng := NewEngine(4)
	trials := make([]Trial, 6)
	for i := range trials {
		trials[i] = Trial{
			Label: "seed sweep",
			Opts: []cup.Option{
				cup.WithNodes(32),
				cup.WithQueryRate(float64(i + 1)),
				cup.WithQueryDuration(cup.Seconds(30)),
				cup.WithSeed(7),
			},
		}
	}
	results := eng.RunAll(trials)
	var prev uint64
	for i, res := range results {
		if res == nil || res.Counters.Queries == 0 {
			t.Fatalf("trial %d produced no queries", i)
		}
		if res.Counters.Queries < prev {
			t.Fatalf("results out of trial order: trial %d has %d queries after %d (rates are increasing)",
				i, res.Counters.Queries, prev)
		}
		prev = res.Counters.Queries
	}

	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate to Result()")
		}
	}()
	eng.Go(Trial{Opts: []cup.Option{cup.WithNodes(-1)}}).Result()
}

func TestDeterministicTables(t *testing.T) {
	a := Fig5Capacity(Scale{Seed: 11}).Render()
	b := Fig5Capacity(Scale{Seed: 11}).Render()
	if a != b {
		t.Fatal("experiment not deterministic for fixed seed")
	}
}

var _ = metrics.Table{} // keep the import explicit for documentation
