package experiment

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cup"
	"cup/internal/metrics"
	"cup/internal/netmodel"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// AblationOverlay re-runs the headline comparison on every registered
// overlay substrate — the 2-D CAN, the Chord ring, and the Kademlia
// XOR-metric table — validating §2.2's claim that CUP works over any
// structured overlay with deterministic bounded-hop routing.
func AblationOverlay(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Ablation A1: overlay independence (" + overlay.KindList() + ")"}
	t.Header = []string{"overlay", "λ", "STD total", "CUP total", "CUP/STD"}
	eng := sc.engine()
	rates := []float64{1, 100}
	type pair struct{ std, cup *Future }
	var cells []pair
	for _, ov := range overlay.Kinds() {
		for _, r := range rates {
			cells = append(cells, pair{
				std: eng.submit(append(sc.base(r),
					cup.WithOverlay(ov), cup.WithStandardCaching())...),
				cup: eng.submit(append(sc.base(r),
					cup.WithOverlay(ov))...),
			})
		}
	}
	i := 0
	for _, ov := range overlay.Kinds() {
		for _, r := range rates {
			std := cells[i].std.Result().Counters.TotalCost()
			c := cells[i].cup.Result().Counters.TotalCost()
			i++
			t.AddRow(ov, metrics.F(r), metrics.I(std), metrics.I(c),
				metrics.F(float64(c)/math.Max(1, float64(std))))
		}
	}
	t.Caption = "CUP's advantage persists across substrates (§2.2)."
	return t
}

// AblationCoalescing quantifies the query channel's burst coalescing
// (§2.5 case 2): a flash crowd of queries for one key under CUP (bursts
// collapse into a single upstream query) versus standard caching (every
// query keeps its own open connection). The surge is the public
// cup.FlashCrowd traffic generator over a near-silent background.
func AblationCoalescing(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Ablation A2: query coalescing under a flash crowd"}
	t.Header = []string{"protocol", "queries", "coalesced", "query hops", "total cost"}
	surge := cup.FlashCrowd{BaseRate: 0.001, At: 400, SurgeRate: 500, Queries: 2000}
	modes := []string{"standard", "cup"}
	eng := sc.engine()
	futs := make([]*Future, len(modes))
	for i, mode := range modes {
		opts := append(sc.base(0.001), // near-silent background
			cup.WithHopDelay(500*time.Millisecond), // slow network: the burst outruns responses
			cup.WithTraffic(surge))
		if mode == "standard" {
			opts = append(opts, cup.WithStandardCaching())
		}
		futs[i] = eng.submit(opts...)
	}
	for i, mode := range modes {
		res := futs[i].Result()
		t.AddRow(mode,
			metrics.I(res.Counters.Queries),
			metrics.I(res.Counters.Coalesced),
			metrics.I(res.Counters.QueryHops),
			metrics.I(res.Counters.TotalCost()))
	}
	t.Caption = "CUP coalesces bursts of queries for the same item into one query."
	return t
}

// AblationReordering exercises §2.8's update re-ordering under constrained
// capacity: a backlog of mixed update types drains with a tight budget,
// with and without priority re-ordering; the score is how many updates
// still useful (unexpired, ranked by type importance) got out in time.
func AblationReordering(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Ablation A3: update re-ordering under constrained capacity"}
	t.Header = []string{"strategy", "sent useful", "sent expired-at-deadline", "first-time sent"}

	build := func() []cup.Update {
		rng := sim.NewRand(sc.seed())
		var updates []cup.Update
		for i := 0; i < 400; i++ {
			var ty cup.UpdateType
			switch i % 8 {
			case 0:
				ty = cup.FirstTime
			case 1, 2:
				ty = cup.Delete
			case 3, 4, 5:
				ty = cup.Refresh
			default:
				ty = cup.Append
			}
			updates = append(updates, cup.Update{
				Key:     overlay.Key(fmt.Sprintf("k%d", i%16)),
				Type:    ty,
				Expires: sim.Time(10 + rng.Float64()*290),
			})
		}
		return updates
	}

	// Drain 25 updates per 10-second tick across 10 ticks (budget is one
	// quarter of the backlog): re-ordering should save the urgent ones.
	run := func(reorder bool) (useful, stale, firstTime int) {
		updates := build()
		if reorder {
			lim := cup.NewLimiter()
			for i, u := range updates {
				lim.Enqueue(overlay.NodeID(i%8), u)
			}
			for tick := 0; tick < 10; tick++ {
				now := sim.Time(10 * (tick + 1))
				for _, out := range lim.Drain(now, 25) {
					if out.U.Type == cup.FirstTime {
						firstTime++
					}
					if out.U.Type == cup.Delete || out.U.Expires > now {
						useful++
					} else {
						stale++
					}
				}
			}
			return useful, stale, firstTime
		}
		// FIFO baseline: same budget, arrival order, no expiry drop.
		queues := make([][]cup.Update, 8)
		for i, u := range updates {
			queues[i%8] = append(queues[i%8], u)
		}
		for tick := 0; tick < 10; tick++ {
			now := sim.Time(10 * (tick + 1))
			budget := 25
			for budget > 0 {
				sent := false
				for q := range queues {
					if budget == 0 {
						break
					}
					if len(queues[q]) == 0 {
						continue
					}
					u := queues[q][0]
					queues[q] = queues[q][1:]
					budget--
					sent = true
					if u.Type == cup.FirstTime {
						firstTime++
					}
					if u.Type == cup.Delete || u.Expires > now {
						useful++
					} else {
						stale++
					}
				}
				if !sent {
					break
				}
			}
		}
		return useful, stale, firstTime
	}

	for _, mode := range []struct {
		label   string
		reorder bool
	}{{"FIFO (no re-ordering)", false}, {"§2.8 re-ordering", true}} {
		u, s, f := run(mode.reorder)
		t.AddRow(mode.label, metrics.I(u), metrics.I(s), metrics.I(f))
	}
	t.Caption = "Priority drain sends first-time/deletes first and drops expired updates."
	return t
}

// JustifiedRates is the λ sweep for the cost-model validation.
var JustifiedRates = []float64{0.05, 0.2, 1, 5, 20, 100}

// AblationJustified validates §3.1's cost model: the measured fraction of
// justified updates against the Poisson prediction 1 − e^{−ΛT} computed
// from each run's own query rate and refresh interval.
func AblationJustified(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Ablation A4: justified updates vs §3.1 cost model"}
	t.Header = []string{"λ (q/s)", "measured justified", "leaf prediction 1−e^(−λT/n)"}
	const lifetime, n = 300.0, 1024.0
	eng := sc.engine()
	futs := make([]*Future, len(JustifiedRates))
	for i, r := range JustifiedRates {
		futs[i] = eng.submit(sc.base(r)...)
	}
	for i, r := range JustifiedRates {
		res := futs[i].Result()
		// §3.1 predicts an update pushed to node N is justified with
		// probability 1 − e^{−ΛT} where Λ sums the query rates of N's
		// virtual subtree. A leaf sees only its own λ/n; interior nodes
		// aggregate more, so the measured fraction (averaged over the
		// tree) must sit at or above the leaf prediction and grow with λ.
		leaf := 1 - math.Exp(-sc.rate(r)*lifetime/n)
		t.AddRow(metrics.F(r),
			metrics.F(res.Counters.JustifiedFraction()),
			metrics.F(leaf))
	}
	t.Caption = "Justified fraction grows with query rate, per the Poisson cost model."
	return t
}

// AblationAggregation exercises the §3.6 authority-side techniques that
// rein in many-replica overhead: suppressing a fraction of replica
// refreshes and aggregating refreshes into batched updates (with the
// dynamic window variant the paper says it is experimenting with).
func AblationAggregation(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Ablation A5: §3.6 refresh suppression and aggregation (R=20)"}
	t.Header = []string{"authority policy", "updates originated", "update hops", "miss cost", "total cost"}
	configs := []struct {
		label string
		rp    cup.RefreshPolicy
	}{
		{"every refresh separate (Table 3)", cup.RefreshPolicy{}},
		{"suppress 80% of refreshes", cup.RefreshPolicy{SuppressFraction: 0.2}},
		{"aggregate, 30 s window", cup.RefreshPolicy{AggregateWindow: 30}},
		{"aggregate, dynamic window", cup.RefreshPolicy{AggregateWindow: 30, DynamicWindow: true, DynamicBase: 10}},
	}
	eng := sc.engine()
	futs := make([]*Future, len(configs))
	for i, c := range configs {
		futs[i] = eng.submit(append(sc.base(1),
			cup.WithReplicas(20),
			cup.WithRefreshPolicy(c.rp))...)
	}
	for i, c := range configs {
		res := futs[i].Result()
		t.AddRow(c.label,
			metrics.I(res.Counters.UpdatesOriginated),
			metrics.I(res.Counters.UpdateHops),
			metrics.I(res.Counters.MissCost()),
			metrics.I(res.Counters.TotalCost()))
	}
	t.Caption = "Both techniques recover the many-replica overhead of §3.6."
	return t
}

// AblationPiggyback measures §2.7's clear-bit piggybacking against the
// paper's standalone accounting.
func AblationPiggyback(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Ablation A6: clear-bit piggybacking (§2.7)"}
	t.Header = []string{"mode", "standalone clear-bit hops", "piggybacked", "overhead", "total cost"}
	modes := []bool{false, true}
	eng := sc.engine()
	futs := make([]*Future, len(modes))
	for i, piggy := range modes {
		opts := append(sc.base(10), cup.WithKeys(16))
		if piggy {
			opts = append(opts, cup.WithPiggyback(120*time.Second))
		}
		futs[i] = eng.submit(opts...)
	}
	for i, piggy := range modes {
		res := futs[i].Result()
		label := "standalone (paper's accounting)"
		if piggy {
			label = "piggybacked onto queries/updates"
		}
		t.AddRow(label,
			metrics.I(res.Counters.ClearBitHops),
			metrics.I(res.Counters.PiggybackedClearBits),
			metrics.I(res.Counters.Overhead()),
			metrics.I(res.Counters.TotalCost()))
	}
	t.Caption = "The paper notes standalone accounting 'somewhat inflates the overhead measure'."
	return t
}

// AblationLatency re-runs the headline comparison under heterogeneous
// per-link latency models (internal/netmodel): the paper's metrics are hop
// counts, but latency heterogeneity widens freshness-miss windows and
// changes coalescing opportunity, so CUP's advantage must be shown robust
// to it (the Narses simulator modeled real network delays).
func AblationLatency(sc Scale) *metrics.Table {
	// Heterogeneous delays break the sharded scheduler's uniform-lookahead
	// contract; this ablation always runs single-heap.
	sc.Shards = 0
	t := &metrics.Table{Title: "Ablation A7: latency-model robustness (λ=10)"}
	t.Header = []string{"latency model", "STD total", "CUP total", "CUP/STD", "CUP miss s"}
	models := []struct {
		label string
		m     cup.LatencyModel
	}{
		{"constant 100 ms", netmodel.Constant(0.1)},
		{"uniform 10–300 ms", netmodel.Uniform{Min: 0.01, Max: 0.3, Seed: 7}},
		{"transit-stub 8×(5 ms, 30–120 ms)", netmodel.TransitStub{
			Stubs: 8, Local: 0.005, TransitMin: 0.03, TransitMax: 0.12, Seed: 7}},
	}
	eng := sc.engine()
	stdF := make([]*Future, len(models))
	cupF := make([]*Future, len(models))
	for i, mc := range models {
		stdF[i] = eng.submit(append(sc.base(10),
			cup.WithLatencyModel(mc.m), cup.WithStandardCaching())...)
		cupF[i] = eng.submit(append(sc.base(10),
			cup.WithLatencyModel(mc.m))...)
	}
	for i, mc := range models {
		std := stdF[i].Result()
		c := cupF[i].Result()
		t.AddRow(mc.label,
			metrics.I(std.Counters.TotalCost()),
			metrics.I(c.Counters.TotalCost()),
			metrics.F(float64(c.Counters.TotalCost())/math.Max(1, float64(std.Counters.TotalCost()))),
			metrics.F(c.Counters.MissLatencySeconds()))
	}
	t.Caption = "CUP's win is insensitive to the delay model; miss seconds track link latency."
	return t
}

// AblationChurn measures §2.9's claim that membership changes affect only
// the changed neighborhood: CUP vs standard caching with continuous node
// joins and graceful departures during the query window.
func AblationChurn(sc Scale) *metrics.Table {
	// Churn needs a dynamic substrate (CAN or Kademlia); when the Scale
	// overrides the overlay with a static one (Chord), fall back to the
	// paper's CAN rather than crash mid-sweep — and say so in the title,
	// so the table is never mistaken for a run on the requested kind.
	// Churn is a global intervention; the sharded scheduler rejects it.
	sc.Shards = 0
	kind := sc.Overlay
	if kind == "" {
		kind = "can"
	}
	title := fmt.Sprintf("Ablation A8: node churn (§2.9), CUP vs standard [overlay: %s]", kind)
	if !cup.ChurnCapable(kind) {
		title = fmt.Sprintf("Ablation A8: node churn (§2.9), CUP vs standard [overlay: can — %s is static]", kind)
		kind = "can"
	}
	t := &metrics.Table{Title: title}
	t.Header = []string{"churn events", "STD total", "CUP total", "CUP/STD", "CUP misses"}
	roundsSweep := []int{0, 8, 32}
	eng := sc.engine()
	stdF := make([]*Future, len(roundsSweep))
	cupF := make([]*Future, len(roundsSweep))
	for i, rounds := range roundsSweep {
		rounds := rounds
		faults := func() []cup.Fault {
			if rounds == 0 {
				return nil
			}
			period := float64(sc.duration()) / float64(rounds+1)
			return []cup.Fault{cup.NodeChurn{At: 350, Period: period, Rounds: rounds}}
		}
		stdF[i] = eng.submit(append(sc.base(5),
			cup.WithNodes(256), cup.WithOverlay(kind),
			cup.WithStandardCaching(), cup.WithFaults(faults()...))...)
		cupF[i] = eng.submit(append(sc.base(5),
			cup.WithNodes(256), cup.WithOverlay(kind),
			cup.WithFaults(faults()...))...)
	}
	for i, rounds := range roundsSweep {
		std := stdF[i].Result()
		c := cupF[i].Result()
		t.AddRow(metrics.I(rounds),
			metrics.I(std.Counters.TotalCost()),
			metrics.I(c.Counters.TotalCost()),
			metrics.F(float64(c.Counters.TotalCost())/math.Max(1, float64(std.Counters.TotalCost()))),
			metrics.I(c.Counters.Misses()))
	}
	t.Caption = "CUP keeps its advantage under continuous joins and departures."
	return t
}

// Registry maps experiment names to their generators, for cmd/cupbench.
var Registry = map[string]func(Scale) *metrics.Table{
	"fig3":      Fig3PushLevel,
	"fig4":      Fig4PushLevel,
	"table1":    Table1Policies,
	"table2":    Table2NetworkSize,
	"table3":    Table3ReplicasTable,
	"fig5":      Fig5Capacity,
	"fig6":      Fig6Capacity,
	"overlay":   AblationOverlay,
	"coalesce":  AblationCoalescing,
	"reorder":   AblationReordering,
	"justified": AblationJustified,
	"aggregate": AblationAggregation,
	"piggyback": AblationPiggyback,
	"latency":   AblationLatency,
	"churn":     AblationChurn,
}

// Names returns the registry keys in presentation order.
func Names() []string {
	order := []string{"fig3", "fig4", "table1", "table2", "table3", "fig5", "fig6",
		"overlay", "coalesce", "reorder", "justified", "aggregate", "piggyback", "latency", "churn"}
	// Keep any future additions visible even if unordered.
	seen := map[string]bool{}
	for _, n := range order {
		seen[n] = true
	}
	var extra []string
	for n := range Registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(order, extra...)
}
