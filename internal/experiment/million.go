package experiment

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"cup"
	"cup/internal/metrics"
)

// MillionNodes is the overlay size of the scale demonstration: three
// orders of magnitude past the paper's n = 2^12 ceiling.
const MillionNodes = 1_000_000

// MillionPushLevels is the reduced Figure-3-style level sweep run at
// n = 10^6. Three cells keep the sweep inside a CI budget while still
// spanning standard caching (level 0), a mid push depth, and a deep one.
var MillionPushLevels = []int{0, 10, 20}

// millionOpts builds one million-node cell: Chord (the only bundled
// overlay with O(n log n) construction — CAN and Kademlia build their
// neighborhoods quadratically), dense struct-of-arrays node state, and
// the sharded conservative-window scheduler when sc.Shards > 1.
func millionOpts(sc Scale, level int) []cup.Option {
	opts := []cup.Option{
		cup.WithNodes(MillionNodes),
		cup.WithOverlay("chord"),
		cup.WithDenseState(),
		// Aggregate λ = 100 q/s over the 600 s window: 60k queries is
		// enough routed traffic for a meaningful events/s figure while
		// keeping each cell's event count far below the overlay build
		// cost.
		cup.WithQueryRate(100),
		cup.WithQueryDuration(cup.Seconds(float64(sc.duration()))),
		cup.WithSeed(sc.seed()),
	}
	if sc.Shards > 1 {
		opts = append(opts, cup.WithShards(sc.Shards))
	}
	if level == 0 {
		opts = append(opts, cup.WithStandardCaching())
	} else {
		opts = append(opts, cup.WithPushLevel(level))
	}
	return opts
}

// MillionStats carries the scale sweep's table plus the throughput facts
// cmd/cupbench records in BENCH_core.json.
type MillionStats struct {
	Table *metrics.Table
	// Events and Elapsed cover the whole sweep (every cell's scheduler
	// events and wall time, overlay construction excluded).
	Events  uint64
	Elapsed time.Duration
}

// EventsPerSec is the sweep's sustained scheduler throughput.
func (m MillionStats) EventsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Events) / m.Elapsed.Seconds()
}

// MillionRun runs the Figure-3-style cost-vs-push-level sweep at
// n = 10^6 nodes. Cells run sequentially — each deployment holds a
// million-node overlay and arena, and running them side by side would
// multiply the footprint, not the throughput.
func MillionRun(sc Scale) MillionStats {
	shards := sc.Shards
	if shards < 1 {
		shards = 1
	}
	out := MillionStats{Table: &metrics.Table{
		Title:  fmt.Sprintf("Scale: cost vs push level, n = 10^6 (λ=100, chord, shards=%d)", shards),
		Header: []string{"push level", "total cost", "miss cost", "queries"},
	}}
	for _, lvl := range MillionPushLevels {
		d, err := cup.New(millionOpts(sc, lvl)...)
		if err != nil {
			panic(fmt.Sprintf("experiment: million cell level %d: %v", lvl, err))
		}
		start := time.Now() //cup:wallclock measurement only: sweep wall time for BENCH_core.json
		res, err := d.Run(context.Background())
		if err != nil {
			d.Close()
			panic(fmt.Sprintf("experiment: million cell level %d: %v", lvl, err))
		}
		out.Elapsed += time.Since(start) //cup:wallclock measurement only: sweep wall time for BENCH_core.json
		out.Events += d.EventsExecuted()
		d.Close()
		out.Table.AddRow(metrics.I(lvl),
			metrics.I(res.Counters.TotalCost()),
			metrics.I(res.Counters.MissCost()),
			metrics.I(res.Counters.Queries))
	}
	out.Table.Caption = "Level 0 = standard caching; reduced level sweep at a million nodes."
	return out
}

// MillionSweep is the experiment-registry wrapper around MillionRun.
func MillionSweep(sc Scale) *metrics.Table {
	return MillionRun(sc).Table
}

// Footprint builds (but does not run) an n-node dense-state deployment
// and reports its steady heap cost in bytes per node — overlay, router,
// arena, and node views included. The measurement brackets the build
// with forced collections, so transient construction garbage does not
// count.
func Footprint(n int) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	d, err := cup.New(
		cup.WithNodes(n),
		cup.WithOverlay("chord"),
		cup.WithDenseState(),
		cup.WithoutWorkload(),
	)
	if err != nil {
		panic(fmt.Sprintf("experiment: footprint build: %v", err))
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	bytes := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	d.Close()
	if bytes < 0 {
		bytes = 0
	}
	return bytes / float64(n)
}
