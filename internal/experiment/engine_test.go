package experiment

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cup"
	"cup/internal/metrics"
)

// syntheticEngine builds an engine whose trials sleep Cost
// milliseconds and return a Result tagged with the trial's label, so
// scheduling behavior is observable without running real simulations.
// The recorded dispatch order is the order workers *started* trials.
func syntheticEngine(workers int, fifo bool) (*Engine, *[]string, *sync.Mutex) {
	e := NewEngine(workers)
	e.pending.fifo = fifo
	var mu sync.Mutex
	order := &[]string{}
	e.exec = func(tr Trial) *cup.Result {
		mu.Lock()
		*order = append(*order, tr.Label)
		mu.Unlock()
		time.Sleep(time.Duration(tr.Cost) * time.Millisecond)
		return &cup.Result{Counters: metrics.Counters{Queries: uint64(tr.Cost)}}
	}
	return e, order, &mu
}

// tailSweep is the ISSUE's synthetic shape: a grid of cheap cells with
// one 10× cell buried at the end — the λ=1000 tail of a figure sweep.
func tailSweep(unit float64) []Trial {
	trials := make([]Trial, 0, 9)
	for i := 0; i < 8; i++ {
		trials = append(trials, Trial{Label: string(rune('a' + i)), Cost: unit})
	}
	return append(trials, Trial{Label: "TAIL", Cost: 10 * unit})
}

// Cost-ordered dispatch starts the 10× cell first, so the sweep's wall
// time approaches the tail cell's own length; index-order dispatch
// discovers it last and pays cheap-queue + tail serially. The output —
// results in submission order — must be bit-identical either way.
func TestCostOrderedDispatchBeatsIndexOrder(t *testing.T) {
	const unit = 30 // ms; large enough to dominate goroutine scheduling noise
	timeSweep := func(fifo bool) ([]*cup.Result, time.Duration) {
		e, _, _ := syntheticEngine(2, fifo)
		start := time.Now()
		res := e.RunAll(tailSweep(unit))
		return res, time.Since(start)
	}
	adaptive, adaptiveWall := timeSweep(false)
	indexed, indexedWall := timeSweep(true)

	// Identical tables: same results, submission order, either mode.
	if len(adaptive) != len(indexed) {
		t.Fatalf("result counts differ: %d vs %d", len(adaptive), len(indexed))
	}
	for i := range adaptive {
		if adaptive[i].Counters != indexed[i].Counters {
			t.Fatalf("cell %d diverged between dispatch modes: %v vs %v",
				i, adaptive[i].Counters, indexed[i].Counters)
		}
	}

	// Makespan with 2 workers: index-order starts the tail only after
	// the 8-cell cheap queue drains, so its wall time is ≥ 4u + 10u
	// (sleeps can only overrun — this bound is noise-proof).
	// Cost-ordered dispatch starts the tail within the first pops, for
	// ≈ 10u–11u. Assert the baseline's guaranteed floor and a full
	// unit of separation rather than tight absolute ceilings, so a
	// loaded CI runner cannot flake the comparison.
	if floor := 13 * unit * time.Millisecond; indexedWall < floor {
		t.Errorf("index-order sweep took %v, want ≥ %v (did the baseline change?)",
			indexedWall, floor)
	}
	if adaptiveWall+unit*time.Millisecond >= indexedWall {
		t.Errorf("cost-ordered dispatch (%v) did not clearly beat index order (%v)",
			adaptiveWall, indexedWall)
	}
}

// The ordering contract, pinned as a golden sequence: with one worker
// dispatch is fully deterministic — most expensive first, submission
// order breaking ties — while results stay in submission order.
func TestDispatchOrderGolden(t *testing.T) {
	e, order, mu := syntheticEngine(1, false)
	trials := []Trial{
		{Label: "a", Cost: 1},
		{Label: "b", Cost: 5},
		{Label: "c", Cost: 1}, // ties with a: submission order
		{Label: "d", Cost: 50},
		{Label: "e", Cost: 5}, // ties with b: submission order
	}
	// Submit everything before the single worker can drain: stall it on
	// a sentinel first so the queue is fully populated when cost
	// ordering first matters.
	gate := make(chan struct{})
	origExec := e.exec
	e.exec = func(tr Trial) *cup.Result {
		if tr.Label == "gate" {
			<-gate
			return &cup.Result{}
		}
		return origExec(tr)
	}
	gateFut := e.Go(Trial{Label: "gate", Cost: 1000})
	futs := make([]*Future, len(trials))
	for i, tr := range trials {
		futs[i] = e.Go(tr)
	}
	close(gate)
	gateFut.Result()
	for i, f := range futs {
		if got := f.Result().Counters.Queries; got != uint64(trials[i].Cost) {
			t.Fatalf("result %d out of submission order: queries %d, want %g",
				i, got, trials[i].Cost)
		}
	}
	mu.Lock()
	got := strings.Join((*order), ",")
	mu.Unlock()
	const golden = "d,b,e,a,c"
	if got != golden {
		t.Fatalf("dispatch order %q, want golden %q", got, golden)
	}
}

// Auto-estimated costs rank a λ=1000 cell above λ=1 and a 4096-node
// network above 64 nodes, so real sweeps get the tail-first dispatch
// without annotating costs by hand.
func TestEstimatedCostOrdersRealCells(t *testing.T) {
	cheap := cup.EstimateCost(cup.WithNodes(64), cup.WithQueryRate(1))
	hot := cup.EstimateCost(cup.WithNodes(64), cup.WithQueryRate(1000))
	big := cup.EstimateCost(cup.WithNodes(4096), cup.WithQueryRate(1))
	multi := cup.EstimateCost(cup.WithNodes(64), cup.WithQueryRate(1), cup.WithTrials(8))
	if hot <= cheap {
		t.Errorf("λ=1000 cost %g not above λ=1 cost %g", hot, cheap)
	}
	if big <= cheap {
		t.Errorf("4096-node cost %g not above 64-node cost %g", big, cheap)
	}
	if multi <= cheap {
		t.Errorf("8-trial cost %g not above single-trial cost %g", multi, cheap)
	}
}

// The engine reports per-trial wall times and the sweep tail for the
// bench harness.
func TestEngineTrialTimesAndTail(t *testing.T) {
	e, _, _ := syntheticEngine(2, false)
	e.RunAll(tailSweep(5))
	times := e.TrialTimes()
	if len(times) != 9 {
		t.Fatalf("recorded %d trial times, want 9", len(times))
	}
	if tail := e.TailTime(); tail < 50*time.Millisecond {
		t.Fatalf("tail %v below the 10× cell's own length", tail)
	}
}
