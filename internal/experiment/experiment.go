// Package experiment regenerates every table and figure of the CUP
// paper's evaluation (§3), plus the ablations called out in DESIGN.md.
// Each experiment returns a metrics.Table whose rows mirror the paper's
// layout; cmd/cupbench prints them and bench_test.go wraps them in
// testing.B benchmarks.
//
// Every run is built through the public façade — cup.New with functional
// options — so the experiments exercise exactly the surface downstream
// users import.
//
// Scale controls cost: the paper's full workload (3000 s of querying, up
// to λ = 1000 queries/s, n up to 4096) runs with Scale{Full: true}; the
// default reduced scale keeps every experiment fast enough for go test
// while preserving the shapes (who wins, by what factor, where the
// crossovers fall).
package experiment

import (
	"context"
	"fmt"
	"math"

	"cup"
	"cup/internal/metrics"
	"cup/internal/policy"
	"cup/internal/sim"
)

// Scale selects the workload size for the experiments.
type Scale struct {
	// Full reproduces the paper's parameters exactly; otherwise the query
	// window and the highest rates shrink.
	Full bool
	// Seed varies the run deterministically.
	Seed int64
	// Overlay overrides the substrate for every experiment by its
	// overlay-registry name ("can", "chord", "kademlia"); empty keeps the
	// paper's CAN. The overlay ablation A1 sweeps all kinds regardless.
	Overlay string
	// Parallelism caps the worker pool running a sweep's trials (0 =
	// GOMAXPROCS, 1 = sequential). The rendered tables are bit-identical
	// at any setting: trials are independent runs assembled in a fixed
	// order.
	Parallelism int
	// Shards > 1 runs each trial on the sharded conservative-window
	// scheduler (cup.WithShards) — one sharded run per trial. It applies
	// to the open-loop experiments (push level, policy, size, replica
	// sweeps, and the million-node scale sweep); the capacity-fault
	// figures ignore it, since fault injection needs the single heap.
	Shards int
	// Eng, when set, is a shared worker pool every experiment run at
	// this Scale uses instead of building its own — letting a caller
	// (cmd/cupbench) observe one sweep's dispatch tail via TailTime.
	Eng *Engine
}

func (s Scale) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// duration returns the query window length.
func (s Scale) duration() sim.Duration {
	if s.Full {
		return 3000
	}
	return 600
}

// rate clamps the paper's rate λ under reduced scale so that event counts
// stay small while preserving ordering across rates.
func (s Scale) rate(lambda float64) float64 {
	if s.Full || lambda <= 100 {
		return lambda
	}
	return 100 + (lambda-100)/10 // 1000 → 190
}

// nodes clamps network size.
func (s Scale) nodes(n int) int {
	if s.Full || n <= 1024 {
		return n
	}
	return 1024
}

// base builds the common options of the §3.3-§3.6 experiments:
// n = 2^10 nodes, one key, one replica, lifetime 300 s. Every call
// returns a fresh slice, so per-run appends never alias.
func (s Scale) base(lambda float64) []cup.Option {
	opts := []cup.Option{
		cup.WithNodes(1024),
		cup.WithOverlay(s.Overlay),
		cup.WithQueryRate(s.rate(lambda)),
		cup.WithQueryDuration(cup.Seconds(float64(s.duration()))),
		cup.WithSeed(s.seed()),
	}
	if s.Shards > 1 {
		opts = append(opts, cup.WithShards(s.Shards))
	}
	return opts
}

// run builds a simulated deployment from opts and executes its scripted
// workload. Experiments are programming errors when they cannot build.
func run(opts ...cup.Option) *cup.Result {
	d, err := cup.New(opts...)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	defer d.Close()
	res, err := d.Run(context.Background())
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}
	return res
}

// PushLevels is the level sweep used for Figures 3 and 4.
var PushLevels = []int{0, 5, 10, 15, 20, 25, 30}

// pushLevelOpts configures CUP propagating updates to every querying
// node at most level hops from the authority, regardless of
// justification (§3.3): the cut-off policy is all-out push, bounded only
// by the level. Level 0 is standard caching.
func pushLevelOpts(sc Scale, lambda float64, level int) []cup.Option {
	opts := sc.base(lambda)
	if level == 0 {
		opts = append(opts, cup.WithStandardCaching())
	} else {
		opts = append(opts,
			cup.WithPolicy(policy.AlwaysKeep()),
			cup.WithPushLevel(level))
	}
	return opts
}

// FigPushLevel regenerates one push-level figure: total cost and miss
// cost versus push level for the given rates (Figure 3 uses λ ∈ {1, 10},
// Figure 4 λ ∈ {100, 1000}). The level × rate grid runs as one parallel
// sweep, collected level-major.
func FigPushLevel(sc Scale, title string, rates []float64) *metrics.Table {
	t := &metrics.Table{Title: title}
	t.Header = []string{"push level"}
	for _, r := range rates {
		t.Header = append(t.Header,
			fmt.Sprintf("total λ=%g", r), fmt.Sprintf("miss λ=%g", r))
	}
	eng := sc.engine()
	cells := make([][]*Future, len(PushLevels))
	for i, lvl := range PushLevels {
		for _, r := range rates {
			cells[i] = append(cells[i], eng.submit(pushLevelOpts(sc, r, lvl)...))
		}
	}
	for i, lvl := range PushLevels {
		row := []string{metrics.I(lvl)}
		for _, f := range cells[i] {
			res := f.Result()
			row = append(row,
				metrics.I(res.Counters.TotalCost()),
				metrics.I(res.Counters.MissCost()))
		}
		t.AddRow(row...)
	}
	t.Caption = "Total and miss cost (hops) vs push level; level 0 = standard caching."
	return t
}

// Fig3PushLevel reproduces Figure 3 (λ = 1 and 10 queries/s).
func Fig3PushLevel(sc Scale) *metrics.Table {
	return FigPushLevel(sc, "Figure 3: cost vs push level (λ=1, 10)", []float64{1, 10})
}

// Fig4PushLevel reproduces Figure 4 (λ = 100 and 1000 queries/s, log y).
func Fig4PushLevel(sc Scale) *metrics.Table {
	return FigPushLevel(sc, "Figure 4: cost vs push level (λ=100, 1000)", []float64{100, 1000})
}

// Table1Rates are the query rates compared across cut-off policies.
var Table1Rates = []float64{1, 10, 100, 1000}

// table1Policies enumerates the paper's Table 1 rows.
func table1Policies() []struct {
	label string
	pol   policy.Policy
} {
	return []struct {
		label string
		pol   policy.Policy
	}{
		{"Linear, α=0.25", policy.Linear(0.25)},
		{"Linear, α=0.10", policy.Linear(0.10)},
		{"Linear, α=0.01", policy.Linear(0.01)},
		{"Linear, α=0.001", policy.Linear(0.001)},
		{"Logarithmic, α=0.5", policy.Logarithmic(0.5)},
		{"Logarithmic, α=0.25", policy.Logarithmic(0.25)},
		{"Logarithmic, α=0.10", policy.Logarithmic(0.10)},
		{"Logarithmic, α=0.01", policy.Logarithmic(0.01)},
		{"Second-chance", policy.SecondChance()},
	}
}

// Table1Policies reproduces Table 1: total cost of standard caching, the
// probability-based cut-off policies, second-chance, and the optimal push
// level, for λ ∈ {1, 10, 100, 1000}. Cells show total cost and, in
// parentheses, the cost normalized by standard caching.
func Table1Policies(sc Scale) *metrics.Table {
	t := &metrics.Table{Title: "Table 1: total cost for varying cut-off policies"}
	t.Header = []string{"Policy"}
	for _, r := range Table1Rates {
		t.Header = append(t.Header, fmt.Sprintf("%g q/s", r))
	}

	// Submit the whole grid up front — the standard-caching baselines,
	// every policy × rate cell, and the push-level sweep behind the
	// "optimal" row — then collect in row order.
	eng := sc.engine()
	policies := table1Policies()
	stdF := make([]*Future, len(Table1Rates))
	for i, r := range Table1Rates {
		stdF[i] = eng.submit(append(sc.base(r), cup.WithStandardCaching())...)
	}
	polF := make([][]*Future, len(policies))
	for pi, pr := range policies {
		for _, r := range Table1Rates {
			polF[pi] = append(polF[pi], eng.submit(append(sc.base(r), cup.WithPolicy(pr.pol))...))
		}
	}
	lvlF := make([][]*Future, len(Table1Rates))
	for i, r := range Table1Rates {
		for _, lvl := range PushLevels[1:] {
			lvlF[i] = append(lvlF[i], eng.submit(pushLevelOpts(sc, r, lvl)...))
		}
	}

	std := make([]uint64, len(Table1Rates))
	for i, f := range stdF {
		std[i] = f.Result().Counters.TotalCost()
	}
	cell := func(total uint64, i int) string {
		return fmt.Sprintf("%d (%.2f)", total, float64(total)/math.Max(1, float64(std[i])))
	}

	row := []string{"Standard Caching"}
	for i := range Table1Rates {
		row = append(row, cell(std[i], i))
	}
	t.AddRow(row...)

	for pi, pr := range policies {
		row := []string{pr.label}
		for i := range Table1Rates {
			row = append(row, cell(polF[pi][i].Result().Counters.TotalCost(), i))
		}
		t.AddRow(row...)
	}

	// Optimal push level: the minimum over the figure sweep.
	row = []string{"Optimal push level"}
	for i := range Table1Rates {
		best := std[i]
		for _, f := range lvlF[i] {
			if c := f.Result().Counters.TotalCost(); c < best {
				best = c
			}
		}
		row = append(row, cell(best, i))
	}
	t.AddRow(row...)
	t.Caption = "Cells: total cost in hops (normalized by standard caching)."
	return t
}

// Table2Sizes are the network sizes n = 2^k, k = 3..12.
var Table2Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Table2NetworkSize reproduces Table 2: CUP vs standard caching across
// network sizes at λ = 1 query/s with the second-chance policy.
func Table2NetworkSize(sc Scale) *metrics.Table {
	sizes := Table2Sizes
	if !sc.Full {
		sizes = []int{8, 32, 128, 512, 1024}
	}
	t := &metrics.Table{Title: "Table 2: CUP vs standard caching, varying network size (λ=1)"}
	t.Header = []string{"Metric"}
	for _, n := range sizes {
		t.Header = append(t.Header, metrics.I(sc.nodes(n)))
	}
	eng := sc.engine()
	stdF := make([]*Future, len(sizes))
	cupF := make([]*Future, len(sizes))
	for i, n := range sizes {
		n = sc.nodes(n)
		stdF[i] = eng.submit(append(sc.base(1), cup.WithNodes(n), cup.WithStandardCaching())...)
		cupF[i] = eng.submit(append(sc.base(1), cup.WithNodes(n))...)
	}
	ratio := []string{"CUP / STD caching miss cost"}
	cupLat := []string{"CUP miss latency"}
	stdLat := []string{"STD caching miss latency"}
	saved := []string{"Saved miss hops per CUP overhead hop"}
	for i := range sizes {
		std := stdF[i].Result()
		cupRes := cupF[i].Result()
		ratio = append(ratio, metrics.F(
			float64(cupRes.Counters.MissCost())/math.Max(1, float64(std.Counters.MissCost()))))
		cupLat = append(cupLat, metrics.F(cupRes.Counters.MissLatencyHops()))
		stdLat = append(stdLat, metrics.F(std.Counters.MissLatencyHops()))
		saved = append(saved, metrics.F(cupRes.Counters.SavedMissRatio(&std.Counters)))
	}
	t.AddRow(ratio...)
	t.AddRow(cupLat...)
	t.AddRow(stdLat...)
	t.AddRow(saved...)
	t.Caption = "Second-chance cut-off; miss latency in hops per miss."
	return t
}

// Table3Replicas are the replica counts swept in Table 3.
var Table3Replicas = []int{100, 50, 10, 5, 2, 1}

// Table3ReplicasTable reproduces Table 3: the naive cut-off (popularity
// reset on every update arrival) versus the replica-independent cut-off,
// for varying numbers of replicas per key.
func Table3ReplicasTable(sc Scale) *metrics.Table {
	reps := Table3Replicas
	if !sc.Full {
		reps = []int{20, 10, 5, 2, 1}
	}
	t := &metrics.Table{Title: "Table 3: naive vs replica-independent cut-off (λ=1, n=1024)"}
	t.Header = []string{"Replicas",
		"Naive miss cost (misses)", "Repl-indep miss cost (misses)", "Repl-indep total cost"}
	eng := sc.engine()
	naiveF := make([]*Future, len(reps))
	fixedF := make([]*Future, len(reps))
	for i, r := range reps {
		naiveF[i] = eng.submit(append(sc.base(1), cup.WithReplicas(r), cup.WithNaiveCutoff())...)
		fixedF[i] = eng.submit(append(sc.base(1), cup.WithReplicas(r))...)
	}
	for i, r := range reps {
		naive := naiveF[i].Result()
		fixed := fixedF[i].Result()
		t.AddRow(
			metrics.I(r),
			fmt.Sprintf("%d (%d)", naive.Counters.MissCost(), naive.Counters.Misses()),
			fmt.Sprintf("%d (%d)", fixed.Counters.MissCost(), fixed.Counters.Misses()),
			metrics.I(fixed.Counters.TotalCost()),
		)
	}
	t.Caption = "Second-chance policy; every replica refresh sent as a separate update."
	return t
}

// Capacities is the reduced-capacity sweep of Figures 5 and 6.
var Capacities = []float64{0, 0.25, 0.5, 0.75, 1}

// FigCapacity reproduces Figures 5 (λ=1) and 6 (λ=1000): total cost when
// 20% of nodes run at reduced outgoing capacity c, under the Up-And-Down
// (Recover) and Once-Down-Always-Down schedules, against the
// standard-caching line. The fault scripts are the public
// cup.CapacityFault, expanded over the run's own query window.
func FigCapacity(sc Scale, title string, lambda float64) *metrics.Table {
	// Fault injection is a global intervention the conservative-window
	// scheduler cannot honor; the capacity figures always run single-heap.
	sc.Shards = 0
	t := &metrics.Table{Title: title}
	t.Header = []string{"capacity c", "Up-And-Down total", "Once-Down-Always-Down total", "Standard caching"}

	fault := func(c float64, recover bool) cup.CapacityFault {
		f := cup.CapacityFault{Capacity: c, Recover: recover}
		if !sc.Full {
			// Shrink the paper's 5/10/5-minute fault cycle with the query
			// window so several Up-And-Down cycles still occur.
			f.Warmup, f.Down, f.Stabilize = 100, 150, 75
		}
		return f
	}
	eng := sc.engine()
	stdF := eng.submit(append(sc.base(lambda), cup.WithStandardCaching())...)
	upF := make([]*Future, len(Capacities))
	downF := make([]*Future, len(Capacities))
	for i, c := range Capacities {
		upF[i] = eng.submit(append(sc.base(lambda),
			cup.WithFaults(fault(c, true)))...)
		downF[i] = eng.submit(append(sc.base(lambda),
			cup.WithFaults(fault(c, false)))...)
	}
	std := stdF.Result().Counters.TotalCost()
	for i, c := range Capacities {
		t.AddRow(metrics.F(c),
			metrics.I(upF[i].Result().Counters.TotalCost()),
			metrics.I(downF[i].Result().Counters.TotalCost()),
			metrics.I(std))
	}
	t.Caption = "20% of nodes at reduced capacity; second-chance policy."
	return t
}

// Fig5Capacity reproduces Figure 5 (λ = 1 query/s).
func Fig5Capacity(sc Scale) *metrics.Table {
	return FigCapacity(sc, "Figure 5: total cost vs reduced capacity (λ=1)", 1)
}

// Fig6Capacity reproduces Figure 6 (λ = 1000 queries/s, log y).
func Fig6Capacity(sc Scale) *metrics.Table {
	return FigCapacity(sc, "Figure 6: total cost vs reduced capacity (λ=1000)", 1000)
}
