// Package cup implements the CUP protocol — Controlled Update Propagation —
// the primary contribution of Roussopoulos & Baker's paper. Every node
// maintains two logical channels per neighbor: a query channel carrying
// search queries upstream toward a key's authority node, and an update
// channel carrying query responses (first-time updates) and index-entry
// updates (deletes, refreshes, appends) downstream along reverse query
// paths. Nodes coalesce query bursts with a Pending-First-Update flag,
// register downstream interest in per-key interest bit vectors, and apply
// incentive-based cut-off policies to bound propagation.
//
// The protocol core (Node) is a pure, transport-independent state machine:
// handlers consume one message and return the actions (messages to send,
// local deliveries) the transport must perform. The discrete-event driver
// (Simulation, in driver.go) and the goroutine runtime (internal/live) are
// both thin shells around it.
package cup

import (
	"fmt"
	"sync"

	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/policy"
	"cup/internal/sim"
)

// UpdateType classifies updates per §2.4 of the paper.
type UpdateType int

const (
	// FirstTime updates are query responses traveling down the reverse
	// query path; they are always justified.
	FirstTime UpdateType = iota
	// Delete removes a cached index entry (replica gone or failed).
	Delete
	// Refresh extends the lifetime of an index entry, preventing
	// freshness misses.
	Refresh
	// Append adds an index entry for a new replica of the content.
	Append
)

// String implements fmt.Stringer.
func (t UpdateType) String() string {
	switch t {
	case FirstTime:
		return "first-time"
	case Delete:
		return "delete"
	case Refresh:
		return "refresh"
	case Append:
		return "append"
	default:
		return fmt.Sprintf("update(%d)", int(t))
	}
}

// Priority returns the §2.8 reordering rank under constrained capacity for
// latency/accuracy-sensitive applications: first-time updates first, then
// deletes, refreshes, appends. Lower is more urgent.
func (t UpdateType) Priority() int {
	switch t {
	case FirstTime:
		return 0
	case Delete:
		return 1
	case Refresh:
		return 2
	default:
		return 3
	}
}

// Update is one update message on an update channel.
type Update struct {
	Key  overlay.Key
	Type UpdateType
	// Entries is the payload: the full fresh set for FirstTime, the
	// refreshed/appended entry for Refresh/Append, empty for Delete.
	Entries []cache.Entry
	// Replica is the replica whose event triggered the update; -1 for
	// FirstTime responses.
	Replica int
	// Depth is the hop distance from the authority node of the node
	// *receiving* this message; the authority sends Depth 1 to its
	// neighbors and each forwarder increments it.
	Depth int
	// Expires is the instant after which the update is useless (§2.6 case
	// 3: expired updates are neither applied nor forwarded).
	Expires sim.Time
	// Lifetime, when positive on Refresh/Append updates, is the full
	// replica lifetime: each receiving cache stores the entry with its
	// *own* timestamp (§2.1 "a lifetime and a timestamp indicating the
	// time at which the lifetime was set"), so a pushed refresh restarts
	// the local clock. First-time responses instead inherit the remaining
	// lifetime of the serving cache's entry (the Cohen-Kaplan cascaded
	// caching semantics the paper discusses in §4).
	Lifetime sim.Duration
	// QueryID, when non-zero, marks this update as the response to one
	// specific un-coalesced query (standard caching's per-query open
	// connection, §4 "open-connection problem"). CUP responses leave it
	// zero: coalesced queries share one response fan-out.
	QueryID uint64
}

// child returns a copy of u re-addressed one level further from the
// authority, as forwarded by a node at distance depth.
func (u Update) child(depth int) Update {
	c := u
	c.Depth = depth + 1
	return c
}

// ActionKind discriminates Action.
type ActionKind int

const (
	// ActSendQuery pushes a query for Key up the query channel to To.
	ActSendQuery ActionKind = iota
	// ActSendUpdate pushes Update down the update channel to To.
	ActSendUpdate
	// ActSendClearBit tells neighbor To to clear our interest bit for Key.
	ActSendClearBit
	// ActDeliverLocal answers local client connections waiting on Key.
	ActDeliverLocal
)

// Action is one side effect requested by the protocol state machine. The
// transport (simulator or live runtime) executes it.
type Action struct {
	Kind    ActionKind
	To      overlay.NodeID
	Key     overlay.Key
	Update  Update        // ActSendUpdate
	Entries []cache.Entry // ActDeliverLocal payload
	// QueryID tags ActSendQuery under standard caching, where every query
	// travels individually and its response retraces exactly its path.
	QueryID uint64
}

// Mode selects the caching protocol a node runs.
type Mode int

const (
	// ModeCUP is full CUP: interest registration, update propagation,
	// cut-off policies, clear-bits.
	ModeCUP Mode = iota
	// ModeStandard is the paper's baseline: expiration-based caching
	// along reverse query paths with no update propagation at all
	// (equivalent to CUP at push level 0).
	ModeStandard
)

// UnlimitedPushLevel disables the sender-side depth cap.
const UnlimitedPushLevel = -1

// Config parameterizes a Node. The zero value is not valid; use Defaults.
type Config struct {
	// Mode selects CUP or the standard-caching baseline.
	Mode Mode
	// Policy is the cut-off policy consulted on update arrivals with no
	// downstream interest (CUP only).
	Policy policy.Policy
	// PushLevel, when ≥ 0, stops proactive update propagation beyond this
	// depth from the authority (§3.3's push level). Responses to pending
	// queries always flow.
	PushLevel int
	// ReplicaIndependentCutoff applies the §3.6 fix: the cut-off decision
	// and popularity reset trigger only on updates for one designated
	// ("watched") replica per key, so the decision is independent of the
	// number of replicas.
	ReplicaIndependentCutoff bool
}

// Defaults returns the configuration used by the paper's headline CUP
// experiments: full CUP, second-chance cut-off, unlimited push level,
// replica-independent cut-off enabled.
func Defaults() Config {
	return Config{
		Mode:                     ModeCUP,
		Policy:                   policy.SecondChance(),
		PushLevel:                UnlimitedPushLevel,
		ReplicaIndependentCutoff: true,
	}
}

// Standard returns the standard-caching baseline configuration: query
// responses are cached only at the issuing node with their expiration
// times, and no updates propagate — the paper's push level 0.
func Standard() Config {
	return Config{Mode: ModeStandard, Policy: policy.NeverKeep(), PushLevel: 0}
}

// CachesAtDepth reports whether a node at hop distance d from the
// authority stores entries carried by a first-time update passing through
// it. Per §3.3, a push level of p confines both update propagation and the
// cache building done by responses to nodes within p hops of the
// authority; the query issuer always caches its own answer (that is
// standard caching's behavior, and push level 0 degenerates to exactly
// standard caching). Unlimited push level caches everywhere — CUP
// "asynchronously builds caches of index entries while answering search
// queries".
func (c Config) CachesAtDepth(d int, isIssuer bool) bool {
	if isIssuer {
		return true
	}
	if c.Mode == ModeStandard {
		return false
	}
	return c.PushLevel < 0 || d <= c.PushLevel
}

// Router resolves next hops for the protocol. Implementations must be
// deterministic for a fixed overlay topology.
type Router interface {
	// NextHopTowardOwner returns the neighbor of n on the path toward the
	// authority for k, or n itself when n is the authority.
	NextHopTowardOwner(n overlay.NodeID, k overlay.Key) overlay.NodeID
}

// OverlayRouter adapts an overlay.Overlay into a Router with memoization;
// CUP routing is hash-deterministic, so per-(node, key) next hops are
// immutable for a static overlay. Safe for concurrent use — the live
// runtime shares one router across all peer goroutines.
type OverlayRouter struct {
	ov   overlay.Overlay
	mu   sync.RWMutex
	memo map[routeKey]overlay.NodeID
	// Dynamic disables memoization for overlays under churn.
	Dynamic bool
}

type routeKey struct {
	n overlay.NodeID
	k overlay.Key
}

// NewOverlayRouter wraps ov.
func NewOverlayRouter(ov overlay.Overlay) *OverlayRouter {
	return &OverlayRouter{ov: ov, memo: make(map[routeKey]overlay.NodeID)}
}

// NextHopTowardOwner implements Router.
func (r *OverlayRouter) NextHopTowardOwner(n overlay.NodeID, k overlay.Key) overlay.NodeID {
	if !r.Dynamic {
		r.mu.RLock()
		next, ok := r.memo[routeKey{n, k}]
		r.mu.RUnlock()
		if ok {
			return next
		}
	}
	next, ok := r.ov.NextHop(n, k)
	if !ok {
		panic(fmt.Sprintf("cup: no route from %v toward %q", n, k))
	}
	if !r.Dynamic {
		r.mu.Lock()
		r.memo[routeKey{n, k}] = next
		r.mu.Unlock()
	}
	return next
}

// Invalidate clears memoized routes after topology changes.
func (r *OverlayRouter) Invalidate() {
	r.mu.Lock()
	r.memo = make(map[routeKey]overlay.NodeID)
	r.mu.Unlock()
}
