package cup

import (
	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// This file implements the authority-side overhead-reduction techniques of
// §3.6: with many replicas per key, pushing every replica refresh as a
// separate update can overtake standard caching's total cost, so the
// authority can either (a) suppress a fraction of replica refreshes,
// propagating only a subset and thereby balancing demand across replicas,
// or (b) aggregate refreshes — wait a threshold after the first refresh
// and batch every update for the same key arriving within the window into
// one update. The paper leaves the threshold function open ("We are
// experimenting with different kinds of threshold functions"); we provide
// a fixed window and a dynamic window scaled by replica count.

// RefreshPolicy configures how an authority propagates replica refreshes.
type RefreshPolicy struct {
	// SuppressFraction, in (0, 1], propagates only this fraction of
	// replica refreshes (deterministic credit counter); 0 propagates all.
	SuppressFraction float64
	// AggregateWindow batches refreshes for the same key arriving within
	// the window into a single multi-entry update; 0 disables batching.
	AggregateWindow sim.Duration
	// DynamicWindow, when true, scales the window with the number of
	// replicas currently registered for the key: window = AggregateWindow
	// × replicas / DynamicBase. This keeps the batch size roughly
	// constant as replicas are added (§3.6's suggested dynamic
	// adjustment).
	DynamicWindow bool
	// DynamicBase is the replica count at which the dynamic window equals
	// AggregateWindow (default 10).
	DynamicBase int
}

// enabled reports whether any technique is active.
func (rp RefreshPolicy) enabled() bool {
	return rp.SuppressFraction > 0 || rp.AggregateWindow > 0
}

// window returns the batching window for a key with n registered replicas.
func (rp RefreshPolicy) window(n int) sim.Duration {
	if !rp.DynamicWindow {
		return rp.AggregateWindow
	}
	base := rp.DynamicBase
	if base <= 0 {
		base = 10
	}
	w := rp.AggregateWindow * sim.Duration(n) / sim.Duration(base)
	if w < rp.AggregateWindow/4 {
		w = rp.AggregateWindow / 4
	}
	return w
}

// refreshGate applies a RefreshPolicy at one authority node: refreshes
// flow through Offer, which either releases them (possibly batched via the
// transport-scheduled flush) or swallows them.
type refreshGate struct {
	policy  RefreshPolicy
	credit  float64
	pending map[overlay.Key][]cache.Entry
	armed   map[overlay.Key]bool
}

func newRefreshGate(p RefreshPolicy) *refreshGate {
	return &refreshGate{
		policy:  p,
		pending: make(map[overlay.Key][]cache.Entry),
		armed:   make(map[overlay.Key]bool),
	}
}

// Offer submits one replica refresh. It returns:
//   - release = the update to propagate now (nil if withheld), and
//   - flushIn > 0 when the caller must schedule Flush(key) after that
//     delay (the batching window has just opened).
func (g *refreshGate) Offer(k overlay.Key, e cache.Entry, replicas int) (release []cache.Entry, flushIn sim.Duration) {
	// Suppression first: a withheld refresh never enters a batch, exactly
	// like the paper's "selectively choose to propagate a subset of the
	// replica refreshes and suppress others".
	if f := g.policy.SuppressFraction; f > 0 && f < 1 {
		g.credit += f
		if g.credit < 1 {
			return nil, 0
		}
		g.credit--
	}
	if g.policy.AggregateWindow <= 0 {
		return []cache.Entry{e}, 0
	}
	g.pending[k] = append(g.pending[k], e)
	if !g.armed[k] {
		g.armed[k] = true
		return nil, g.policy.window(replicas)
	}
	return nil, 0
}

// Flush closes the batching window for k and returns the batched entries
// (nil when everything already drained).
func (g *refreshGate) Flush(k overlay.Key) []cache.Entry {
	out := g.pending[k]
	delete(g.pending, k)
	delete(g.armed, k)
	return out
}

// PendingBatches reports how many keys have an open batching window.
func (g *refreshGate) PendingBatches() int { return len(g.pending) }
