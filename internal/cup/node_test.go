package cup

import (
	"testing"

	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/policy"
	"cup/internal/sim"
)

// lineRouter routes every key along 0 ← 1 ← 2 ← … (node 0 is authority).
type lineRouter struct{}

func (lineRouter) NextHopTowardOwner(n overlay.NodeID, _ overlay.Key) overlay.NodeID {
	if n == 0 {
		return 0
	}
	return n - 1
}

type fakeClock struct{ t sim.Time }

func (c *fakeClock) now() sim.Time { return c.t }

func newTestNode(id overlay.NodeID, cfg Config, clk *fakeClock) *Node {
	return NewNode(id, cfg, lineRouter{}, clk.now)
}

func entry(k overlay.Key, r int, exp sim.Time) cache.Entry {
	return cache.Entry{Key: k, Replica: r, Addr: "10.0.0.1", Expires: exp}
}

func firstTime(k overlay.Key, depth int, exp sim.Time) Update {
	return Update{Key: k, Type: FirstTime, Entries: []cache.Entry{entry(k, 0, exp)},
		Replica: -1, Depth: depth, Expires: exp}
}

func refresh(k overlay.Key, r, depth int, exp sim.Time) Update {
	return Update{Key: k, Type: Refresh, Entries: []cache.Entry{entry(k, r, exp)},
		Replica: r, Depth: depth, Expires: exp}
}

func kinds(acts []Action) []ActionKind {
	out := make([]ActionKind, len(acts))
	for i, a := range acts {
		out[i] = a.Kind
	}
	return out
}

func TestNewNodeValidation(t *testing.T) {
	clk := &fakeClock{}
	for _, tc := range []func(){
		func() { NewNode(1, Config{}, lineRouter{}, clk.now) },
		func() { NewNode(1, Defaults(), nil, clk.now) },
		func() { NewNode(1, Defaults(), lineRouter{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewNode did not panic")
				}
			}()
			tc()
		}()
	}
}

func TestAuthorityAnswersFromLocalDirectory(t *testing.T) {
	clk := &fakeClock{t: 10}
	auth := newTestNode(0, Defaults(), clk)
	auth.InstallLocal(entry("k", 0, 100))

	acts := auth.HandleQuery(3, "k", 0)
	if len(acts) != 1 || acts[0].Kind != ActSendUpdate {
		t.Fatalf("authority response = %v", kinds(acts))
	}
	u := acts[0].Update
	if u.Type != FirstTime || len(u.Entries) != 1 || u.Depth != 1 {
		t.Fatalf("bad first-time update: %+v", u)
	}
	if acts[0].To != 3 {
		t.Fatalf("response sent to %v, want 3", acts[0].To)
	}
}

func TestAuthorityAnswersLocalClientDirectly(t *testing.T) {
	clk := &fakeClock{t: 10}
	auth := newTestNode(0, Defaults(), clk)
	auth.InstallLocal(entry("k", 0, 100))
	acts := auth.HandleQuery(LocalClient, "k", 0)
	if len(acts) != 1 || acts[0].Kind != ActDeliverLocal || len(acts[0].Entries) != 1 {
		t.Fatalf("local answer = %+v", acts)
	}
}

func TestQueryCase1FreshCacheHit(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(2, Defaults(), clk)
	// Prime the cache via a first-time update answering a pending query.
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(1, firstTime("k", 2, 100))

	acts := n.HandleQuery(3, "k", 0)
	if len(acts) != 1 || acts[0].Kind != ActSendUpdate {
		t.Fatalf("cache hit response = %v", kinds(acts))
	}
	if acts[0].Update.Depth != 3 {
		t.Fatalf("response depth = %d, want 3 (our dist 2 + 1)", acts[0].Update.Depth)
	}
}

func TestQueryCase2SetsPFUAndForwards(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	acts := n.HandleQuery(6, "k", 0)
	if len(acts) != 1 || acts[0].Kind != ActSendQuery || acts[0].To != 4 {
		t.Fatalf("acts = %+v", acts)
	}
	if !n.PendingFirstUpdate("k") {
		t.Fatal("PFU not set")
	}
}

func TestQueryCoalescing(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	first := n.HandleQuery(6, "k", 0)
	if len(first) != 1 {
		t.Fatalf("first query actions = %v", kinds(first))
	}
	// Burst: two more neighbor queries and a local query — all coalesced.
	if acts := n.HandleQuery(7, "k", 0); len(acts) != 0 {
		t.Fatalf("second query not coalesced: %v", kinds(acts))
	}
	if acts := n.HandleQuery(LocalClient, "k", 0); len(acts) != 0 {
		t.Fatalf("local query not coalesced: %v", kinds(acts))
	}
	if n.Popularity("k") != 3 {
		t.Fatalf("popularity = %d, want 3", n.Popularity("k"))
	}

	// The response fans out to both pending children and the local client.
	acts := n.HandleUpdate(4, firstTime("k", 5, 100))
	var sends, delivers int
	for _, a := range acts {
		switch a.Kind {
		case ActSendUpdate:
			sends++
			if a.To != 6 && a.To != 7 {
				t.Fatalf("response to unexpected neighbor %v", a.To)
			}
		case ActDeliverLocal:
			delivers++
		}
	}
	if sends != 2 || delivers != 1 {
		t.Fatalf("sends=%d delivers=%d, want 2 and 1", sends, delivers)
	}
	if n.PendingFirstUpdate("k") {
		t.Fatal("PFU still set after response")
	}
}

func TestQueryCase3ExpiredEntriesRequery(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 50))
	clk.t = 60 // entries now expired
	acts := n.HandleQuery(LocalClient, "k", 0)
	if len(acts) != 1 || acts[0].Kind != ActSendQuery {
		t.Fatalf("expired-entry query should re-push: %v", kinds(acts))
	}
	if !n.EverHeld("k") {
		t.Fatal("EverHeld lost")
	}
}

func TestStandardModeDoesNotRegisterInterest(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Standard(), clk)
	n.HandleQuery(6, "k", 0)
	if got := n.InterestedNeighbors("k"); len(got) != 0 {
		t.Fatalf("standard caching registered interest: %v", got)
	}
}

func TestCUPModeRegistersInterestOnEveryCase(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0) // case 2
	n.HandleUpdate(4, firstTime("k", 5, 100))
	n.HandleQuery(7, "k", 0) // case 1 (fresh hit)
	got := n.InterestedNeighbors("k")
	if len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Fatalf("interest = %v, want [6 7]", got)
	}
}

func TestUpdatePushedOnlyToInterested(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))

	acts := n.HandleUpdate(4, refresh("k", 0, 5, 200))
	if len(acts) != 1 || acts[0].Kind != ActSendUpdate || acts[0].To != 6 {
		t.Fatalf("refresh propagation = %+v", acts)
	}
	if acts[0].Update.Depth != 6 {
		t.Fatalf("forwarded depth = %d, want 6", acts[0].Update.Depth)
	}
	// A refresh for a key no neighbor cares about and with no queries is
	// cut off (second-chance gives one grace update).
	n2 := newTestNode(5, Defaults(), clk)
	n2.HandleQuery(LocalClient, "k", 0)
	n2.HandleUpdate(4, firstTime("k", 5, 100))
	if acts := n2.HandleUpdate(4, refresh("k", 0, 5, 200)); len(acts) != 0 {
		t.Fatalf("first idle refresh should be tolerated: %v", kinds(acts))
	}
	acts = n2.HandleUpdate(4, refresh("k", 0, 5, 300))
	if len(acts) != 1 || acts[0].Kind != ActSendClearBit || acts[0].To != 4 {
		t.Fatalf("second idle refresh should clear-bit: %+v", acts)
	}
}

func TestExpiredUpdateDropped(t *testing.T) {
	clk := &fakeClock{t: 100}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 200))
	// Update that expired in flight: not applied, not pushed.
	acts := n.HandleUpdate(4, refresh("k", 0, 5, 50))
	if len(acts) != 0 {
		t.Fatalf("expired update produced actions: %v", kinds(acts))
	}
	if n.Stats().Expired != 1 {
		t.Fatalf("Expired = %d, want 1", n.Stats().Expired)
	}
}

func TestExpiredFirstTimeUpdateUnblocksPending(t *testing.T) {
	clk := &fakeClock{t: 100}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(LocalClient, "k", 0)
	acts := n.HandleUpdate(4, firstTime("k", 5, 50)) // already expired
	if n.PendingFirstUpdate("k") {
		t.Fatal("PFU stuck after expired response")
	}
	found := false
	for _, a := range acts {
		if a.Kind == ActDeliverLocal {
			found = true
		}
	}
	if !found {
		t.Fatalf("local client never unblocked: %v", kinds(acts))
	}
}

func TestDeleteAppliedEvenWhenExpired(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	del := Update{Key: "k", Type: Delete, Replica: 0, Depth: 5, Expires: 5}
	n.HandleUpdate(4, del)
	if n.CacheStore().HasAny("k") {
		t.Fatal("delete not applied")
	}
}

func TestClearBitClearsInterest(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	if len(n.InterestedNeighbors("k")) != 1 {
		t.Fatal("precondition: neighbor 6 interested")
	}
	// Node 5 has popularity 0 (reset by update) and no other interest, so
	// the clear-bit propagates upstream to node 4.
	acts := n.HandleClearBit(6, "k")
	if len(n.InterestedNeighbors("k")) != 0 {
		t.Fatal("interest bit not cleared")
	}
	if len(acts) != 1 || acts[0].Kind != ActSendClearBit || acts[0].To != 4 {
		t.Fatalf("clear-bit propagation = %+v", acts)
	}
}

func TestClearBitNotPropagatedWhenPopular(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	n.HandleQuery(LocalClient, "k", 0) // hit, but bumps popularity
	if acts := n.HandleClearBit(6, "k"); len(acts) != 0 {
		t.Fatalf("popular key clear-bit propagated: %v", kinds(acts))
	}
}

func TestClearBitNotPropagatedWithOtherInterest(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0)
	n.HandleQuery(7, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	if acts := n.HandleClearBit(6, "k"); len(acts) != 0 {
		t.Fatalf("clear-bit propagated despite neighbor 7: %v", kinds(acts))
	}
}

func TestClearBitAtAuthorityStops(t *testing.T) {
	clk := &fakeClock{t: 10}
	auth := newTestNode(0, Defaults(), clk)
	auth.InstallLocal(entry("k", 0, 100))
	auth.HandleQuery(1, "k", 0)
	if acts := auth.HandleClearBit(1, "k"); len(acts) != 0 {
		t.Fatalf("authority propagated clear-bit: %v", kinds(acts))
	}
}

func TestPushLevelBlocksDeepPropagation(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults()
	cfg.Policy = policy.AlwaysKeep()
	cfg.PushLevel = 5
	n := newTestNode(9, cfg, clk)
	n.HandleQuery(10, "k", 0)
	n.HandleUpdate(8, firstTime("k", 5, 100)) // we are at depth 5
	// Forwarding would put the child at depth 6 > push level 5.
	if acts := n.HandleUpdate(8, refresh("k", 0, 5, 200)); len(acts) != 0 {
		t.Fatalf("push level violated: %v", kinds(acts))
	}
	// At depth 4 the child lands exactly at the level: allowed.
	n2 := newTestNode(9, cfg, clk)
	n2.HandleQuery(10, "k", 0)
	n2.HandleUpdate(8, firstTime("k", 4, 100))
	if acts := n2.HandleUpdate(8, refresh("k", 0, 4, 200)); len(acts) != 1 {
		t.Fatalf("push at level boundary blocked: %v", kinds(acts))
	}
}

func TestCapacityZeroSuppressesProactivePushes(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults()
	cfg.Policy = policy.AlwaysKeep()
	n := newTestNode(5, cfg, clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	n.SetCapacity(0)
	for i := 0; i < 5; i++ {
		if acts := n.HandleUpdate(4, refresh("k", 0, 5, sim.Time(200+10*i))); len(acts) != 0 {
			t.Fatalf("zero-capacity node pushed: %v", kinds(acts))
		}
	}
	if n.Stats().Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", n.Stats().Dropped)
	}
}

func TestCapacityFractionThinsDeterministically(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults()
	cfg.Policy = policy.AlwaysKeep()
	n := newTestNode(5, cfg, clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	n.SetCapacity(0.25)
	pushed := 0
	for i := 0; i < 100; i++ {
		if acts := n.HandleUpdate(4, refresh("k", 0, 5, sim.Time(200+10*i))); len(acts) > 0 {
			pushed++
		}
	}
	if pushed != 25 {
		t.Fatalf("pushed %d of 100 at c=0.25, want exactly 25", pushed)
	}
}

func TestCapacityRestores(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults()
	cfg.Policy = policy.AlwaysKeep()
	n := newTestNode(5, cfg, clk)
	n.HandleQuery(6, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	n.SetCapacity(0)
	n.HandleUpdate(4, refresh("k", 0, 5, 200))
	n.SetCapacity(-1)
	if acts := n.HandleUpdate(4, refresh("k", 0, 5, 300)); len(acts) != 1 {
		t.Fatalf("restored capacity still suppressed: %v", kinds(acts))
	}
}

func TestResponsesExemptFromCapacity(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.SetCapacity(0)
	n.HandleQuery(6, "k", 0) // pending child
	acts := n.HandleUpdate(4, firstTime("k", 5, 100))
	found := false
	for _, a := range acts {
		if a.Kind == ActSendUpdate && a.To == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-capacity node failed to answer pending child: %v", kinds(acts))
	}
}

func TestReplicaIndependentCutoffIgnoresOtherReplicas(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults() // replica-independent on, second-chance
	n := newTestNode(5, cfg, clk)
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 1000))
	// Watch replica is designated by the first proactive update (replica 0).
	if acts := n.HandleUpdate(4, refresh("k", 0, 5, 1100)); len(acts) != 0 {
		t.Fatalf("unexpected actions: %v", kinds(acts))
	}
	// Updates for replicas 1..9 must not trigger the cut-off decision.
	for r := 1; r < 10; r++ {
		if acts := n.HandleUpdate(4, refresh("k", r, 5, sim.Time(1100+r))); len(acts) != 0 {
			t.Fatalf("replica %d triggered cut-off: %v", r, kinds(acts))
		}
	}
	// The watched replica's second idle update triggers the cut.
	acts := n.HandleUpdate(4, refresh("k", 0, 5, 1200))
	if len(acts) != 1 || acts[0].Kind != ActSendClearBit {
		t.Fatalf("watched replica did not trigger cut: %v", kinds(acts))
	}
}

func TestNaiveCutoffTriggersOnEveryReplica(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults()
	cfg.ReplicaIndependentCutoff = false
	n := newTestNode(5, cfg, clk)
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 1000))
	// Two idle updates from different replicas cut under the naive scheme.
	n.HandleUpdate(4, refresh("k", 3, 5, 1100))
	acts := n.HandleUpdate(4, refresh("k", 7, 5, 1200))
	if len(acts) != 1 || acts[0].Kind != ActSendClearBit {
		t.Fatalf("naive cut-off did not trigger: %v", kinds(acts))
	}
}

func TestJustifiedAccounting(t *testing.T) {
	clk := &fakeClock{t: 10}
	cfg := Defaults()
	cfg.Policy = policy.AlwaysKeep()
	n := newTestNode(5, cfg, clk)
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	// Proactive refresh applied; a query before its expiry justifies it.
	n.HandleUpdate(4, refresh("k", 0, 5, 200))
	clk.t = 50
	n.HandleQuery(LocalClient, "k", 0)
	if st := n.Stats(); st.Justified != 1 || st.Unjustified != 0 {
		t.Fatalf("stats = %+v, want 1 justified", st)
	}
	// Next refresh never followed by a query: unjustified at settle.
	n.HandleUpdate(4, refresh("k", 0, 5, 300))
	n.SettleJustification()
	if st := n.Stats(); st.Unjustified != 1 {
		t.Fatalf("stats = %+v, want 1 unjustified", st)
	}
}

func TestPatchNeighborsDropsVanished(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(6, "k", 0)
	n.HandleQuery(7, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 100))
	n.PatchNeighbors([]overlay.NodeID{4, 7})
	got := n.InterestedNeighbors("k")
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("interest after patch = %v, want [7]", got)
	}
}

func TestFlushExpired(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 5, 50))
	clk.t = 60
	if dropped := n.FlushExpired(); dropped != 1 {
		t.Fatalf("FlushExpired = %d, want 1", dropped)
	}
}

func TestOriginateUpdateRequiresAuthority(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	defer func() {
		if recover() == nil {
			t.Error("OriginateUpdate at non-authority did not panic")
		}
	}()
	n.OriginateUpdate(Update{Key: "k", Type: Refresh})
}

func TestOriginateUpdatePushesToInterested(t *testing.T) {
	clk := &fakeClock{t: 10}
	auth := newTestNode(0, Defaults(), clk)
	auth.InstallLocal(entry("k", 0, 100))
	auth.HandleQuery(1, "k", 0) // neighbor 1 now interested
	acts := auth.OriginateUpdate(refresh("k", 0, 0, 200))
	if len(acts) != 1 || acts[0].Kind != ActSendUpdate || acts[0].To != 1 {
		t.Fatalf("originate = %+v", acts)
	}
	if acts[0].Update.Depth != 1 {
		t.Fatalf("origin depth = %d, want 1", acts[0].Update.Depth)
	}
}

func TestStandardModeOriginatesNothing(t *testing.T) {
	clk := &fakeClock{t: 10}
	auth := newTestNode(0, Standard(), clk)
	auth.InstallLocal(entry("k", 0, 100))
	auth.HandleQuery(1, "k", 0)
	if acts := auth.OriginateUpdate(refresh("k", 0, 0, 200)); len(acts) != 0 {
		t.Fatalf("standard caching originated updates: %v", kinds(acts))
	}
}

func TestDistanceTracking(t *testing.T) {
	clk := &fakeClock{t: 10}
	n := newTestNode(5, Defaults(), clk)
	if n.Distance("k") != -1 {
		t.Fatalf("unknown distance = %d, want -1", n.Distance("k"))
	}
	n.HandleQuery(LocalClient, "k", 0)
	n.HandleUpdate(4, firstTime("k", 7, 100))
	if n.Distance("k") != 7 {
		t.Fatalf("distance = %d, want 7", n.Distance("k"))
	}
	auth := newTestNode(0, Defaults(), clk)
	if auth.Distance("k") != 0 {
		t.Fatalf("authority distance = %d, want 0", auth.Distance("k"))
	}
}

func TestUpdateTypeStringsAndPriorities(t *testing.T) {
	order := []UpdateType{FirstTime, Delete, Refresh, Append}
	for i := 1; i < len(order); i++ {
		if order[i].Priority() <= order[i-1].Priority() {
			t.Fatalf("priority order broken at %v", order[i])
		}
	}
	for _, u := range order {
		if u.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if UpdateType(99).String() != "update(99)" {
		t.Fatalf("unknown type String = %q", UpdateType(99).String())
	}
}
