package cup

import (
	"fmt"

	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/policy"
	"cup/internal/sim"
)

// LocalClient is the sentinel "neighbor" for queries posted by clients
// attached directly to a node.
const LocalClient = overlay.NoNode

// nodeSet is a compact sorted set of neighbor IDs — the representation of
// the paper's per-key bit vectors. Neighbor sets are small (CAN ~2d,
// Chord/Kademlia ~log n), so a sorted slice beats a map on both footprint
// (~100 bytes per key at million-node scale instead of one map header +
// buckets per vector) and iteration: walking the slice IS the
// deterministic ascending order that the map representation had to
// re-sort into on every push.
type nodeSet []overlay.NodeID

// search returns the position of id, or its insertion point.
func (s nodeSet) search(id overlay.NodeID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (s nodeSet) has(id overlay.NodeID) bool {
	i := s.search(id)
	return i < len(s) && s[i] == id
}

func (s *nodeSet) add(id overlay.NodeID) {
	v := *s
	i := v.search(id)
	if i < len(v) && v[i] == id {
		return
	}
	v = append(v, 0)
	copy(v[i+1:], v[i:])
	v[i] = id
	*s = v
}

func (s *nodeSet) remove(id overlay.NodeID) {
	v := *s
	i := v.search(id)
	if i == len(v) || v[i] != id {
		return
	}
	*s = append(v[:i], v[i+1:]...)
}

// intersect drops every member not present in alive, in place.
func (s *nodeSet) intersect(alive nodeSet) {
	v := *s
	keep := v[:0]
	for _, m := range v {
		if alive.has(m) {
			keep = append(keep, m)
		}
	}
	*s = keep
}

// routeEntry records one outstanding standard-caching query: the token it
// travels under, the neighbor (or LocalClient) its response must retrace
// to, and — for locally issued queries — when the client posted it, so
// the answer latency is exact even when several local queries for one key
// overlap (each query keys its own issue time on its token).
type routeEntry struct {
	qid      uint64
	dest     overlay.NodeID
	issuedAt sim.Time
}

// keyState is the per-key bookkeeping of §2.3: the Pending-First-Update
// flag, the interest bit vector, and the popularity measure.
type keyState struct {
	// pfu is the Pending-First-Update flag: set while a query for the key
	// is in flight upstream; coalesces further queries.
	pfu bool
	// everHeld marks that entries for the key existed at some point, to
	// classify freshness vs first-time misses.
	everHeld bool
	// justifyPending/justifyDeadline track the most recent proactive
	// update applied here, for §3.1 justified-update accounting.
	justifyPending bool
	// pendingLocal counts open local client connections awaiting an answer.
	pendingLocal int
	// pendingChildren are neighbors whose forwarded query awaits our
	// response (transient, distinct from long-term interest).
	pendingChildren nodeSet
	// interest is the interest bit vector: neighbors to push updates to.
	interest nodeSet
	// routeBack holds the outstanding per-query tokens and the neighbor
	// each response must retrace to — standard caching's open
	// connections. Unused in CUP mode, where coalescing replaces it.
	routeBack []routeEntry
	// queries counts queries received since the last popularity reset —
	// the paper's popularity measure.
	queries int
	// watchReplica designates the replica whose updates trigger cut-off
	// decisions under replica-independent cut-off; -1 until first seen.
	watchReplica int
	// inst is this key's cut-off policy state.
	inst policy.Instance
	// dist is the node's last-observed hop distance from the authority.
	dist            int
	justifyDeadline sim.Time
	// issuedAt records when the oldest still-waiting local client query
	// was posted, so EvQueryAnswered can carry the answer latency under
	// CUP coalescing. Standard caching keys issue times per query on the
	// routeBack entry instead.
	issuedAt sim.Time
}

// NodeStats surfaces protocol-level observations the transport layer
// aggregates into metrics.Counters.
type NodeStats struct {
	Justified   uint64 // proactive updates later matched by a query in time
	Unjustified uint64 // proactive updates never matched
	Expired     uint64 // updates dropped on arrival (case 3)
	Dropped     uint64 // proactive pushes suppressed by capacity limits
}

// nodeEnv is the configuration shared by every node of one deployment:
// split out of Node so the struct-of-arrays arena stores it once instead
// of per node.
type nodeEnv struct {
	cfg    Config
	router Router
}

// Node is the CUP protocol state machine for one peer. It is not safe for
// concurrent use; the live runtime serializes access per node.
//
// Nodes come in two storage flavors with identical behavior: standalone
// (NewNode — per-key state in a private map, used by the live transport
// and tests) and arena-backed (NewArena — per-key state in the arena's
// struct-of-arrays pool, dense uint32 handles, used by the simulator at
// scale). The pointer-based API is the same thin view over both.
type Node struct {
	id  overlay.NodeID
	env *nodeEnv
	now func() sim.Time
	// obs, when set, receives the protocol-level event stream (query
	// issued/answered, update pushed, cut-off fired). Both transports
	// install the same observer type, so event streams are comparable
	// across simulated and live runs.
	obs Observer

	// store caches index entries learned from queries and updates (§2.1
	// "cached index entries").
	store *cache.Store
	// local is the authority-owned local index directory, disjoint from
	// store by construction (authorities never cache their own keys).
	local *cache.Store

	// keys backs per-key state for standalone nodes; nil when a (the
	// arena) owns the state, with slot the node's dense handle.
	keys map[overlay.Key]*keyState
	a    *Arena
	slot uint32

	stats  NodeStats
	qidSeq uint64

	// capacityFraction < 0 means full outgoing capacity; otherwise the
	// node proactively forwards only this fraction of the updates it
	// receives (§3.7's reduced capacity c). Responses always flow.
	capacityFraction float64
	capacityCredit   float64
}

// NewNode constructs a standalone node. now supplies virtual (or real)
// time; router resolves upstream next hops.
func NewNode(id overlay.NodeID, cfg Config, router Router, now func() sim.Time) *Node {
	if cfg.Policy == nil {
		panic("cup: Config.Policy must be set (use Defaults())")
	}
	if router == nil || now == nil {
		panic("cup: router and clock are required")
	}
	return &Node{
		id:               id,
		env:              &nodeEnv{cfg: cfg, router: router},
		now:              now,
		store:            cache.NewStore(),
		local:            cache.NewStore(),
		keys:             make(map[overlay.Key]*keyState),
		capacityFraction: -1,
	}
}

// ID returns the node's overlay identifier.
func (n *Node) ID() overlay.NodeID { return n.id }

// SetObserver installs (or, with nil, removes) the node's event observer.
// The transport owns the call; live deployments must pass an observer that
// is safe for concurrent use across peers.
func (n *Node) SetObserver(o Observer) { n.obs = o }

// emit publishes one event with this node's identity and clock stamped in.
func (n *Node) emit(e Event) {
	if n.obs == nil {
		return
	}
	e.Time = n.now()
	e.Node = n.id
	n.obs.OnEvent(e)
}

// Stats returns the node's protocol observations.
func (n *Node) Stats() NodeStats { return n.stats }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.env.cfg }

// SetCapacity sets the outgoing update capacity as a fraction of received
// updates (0 ≤ c ≤ 1); negative restores full capacity.
func (n *Node) SetCapacity(c float64) {
	n.capacityFraction = c
	if c >= 0 && n.capacityCredit > 1 {
		n.capacityCredit = 1
	}
}

// Capacity returns the current capacity fraction (negative = unlimited).
func (n *Node) Capacity() float64 { return n.capacityFraction }

// state returns (allocating if needed) the bookkeeping for k.
func (n *Node) state(k overlay.Key) *keyState {
	if n.a != nil {
		return n.a.state(n.slot, k)
	}
	ks := n.keys[k]
	if ks == nil {
		ks = &keyState{
			watchReplica: -1,
			inst:         n.env.cfg.Policy.New(),
			dist:         -1,
		}
		n.keys[k] = ks
	}
	return ks
}

// peek returns the bookkeeping for k without allocating, or nil.
func (n *Node) peek(k overlay.Key) *keyState {
	if n.a != nil {
		return n.a.peek(n.slot, k)
	}
	return n.keys[k]
}

// eachState visits every key's bookkeeping (order unspecified; callers
// must not depend on it for observable output).
func (n *Node) eachState(fn func(*keyState)) {
	if n.a != nil {
		n.a.each(n.slot, fn)
		return
	}
	//cup:unordered callers commute across keys (per-key set filtering and commutative stat increments)
	for _, ks := range n.keys {
		fn(ks)
	}
}

// InstallLocal installs an index entry into the local index directory;
// used by the transport when a replica registers with its authority.
func (n *Node) InstallLocal(e cache.Entry) { n.local.Put(e) }

// RemoveLocal deletes a replica's entry from the local directory.
func (n *Node) RemoveLocal(k overlay.Key, replica int) { n.local.Remove(k, replica) }

// LocalDirectory exposes the authority-owned entries (read-only use).
func (n *Node) LocalDirectory() *cache.Store { return n.local }

// CacheStore exposes the cached index entries (read-only use).
func (n *Node) CacheStore() *cache.Store { return n.store }

// IsAuthority reports whether the node owns k's index entries. A node is
// an authority exactly when routing terminates at it.
func (n *Node) IsAuthority(k overlay.Key) bool {
	return n.env.router.NextHopTowardOwner(n.id, k) == n.id
}

// HasFreshAnswer reports whether a local query for k would hit instantly.
func (n *Node) HasFreshAnswer(k overlay.Key) bool {
	if n.IsAuthority(k) {
		return true
	}
	return n.store.HasFresh(k, n.now())
}

// PendingFirstUpdate reports the PFU flag for k.
func (n *Node) PendingFirstUpdate(k overlay.Key) bool {
	ks := n.peek(k)
	return ks != nil && ks.pfu
}

// EverHeld reports whether the node ever cached entries for k (used to
// classify freshness vs first-time misses).
func (n *Node) EverHeld(k overlay.Key) bool {
	ks := n.peek(k)
	return ks != nil && ks.everHeld
}

// Popularity returns the queries-since-last-update measure for k.
func (n *Node) Popularity(k overlay.Key) int {
	ks := n.peek(k)
	if ks == nil {
		return 0
	}
	return ks.queries
}

// InterestedNeighbors returns the neighbors whose interest bit for k is
// set, sorted for determinism.
func (n *Node) InterestedNeighbors(k overlay.Key) []overlay.NodeID {
	ks := n.peek(k)
	if ks == nil || len(ks.interest) == 0 {
		return nil
	}
	out := make([]overlay.NodeID, len(ks.interest))
	copy(out, ks.interest)
	return out
}

// Distance returns the node's last observed distance from k's authority
// (-1 when unknown).
func (n *Node) Distance(k overlay.Key) int {
	if n.IsAuthority(k) {
		return 0
	}
	ks := n.peek(k)
	if ks == nil {
		return -1
	}
	return ks.dist
}

// recordQuery bumps the popularity measure and settles justified-update
// accounting: a pending proactive update is justified by the first query
// arriving before its deadline (§3.1).
func (n *Node) recordQuery(ks *keyState) {
	ks.queries++
	if ks.justifyPending {
		if n.now() < ks.justifyDeadline {
			n.stats.Justified++
		} else {
			n.stats.Unjustified++
		}
		ks.justifyPending = false
	}
}

// HandleQuery processes a search query for k arriving from a neighbor, or
// from a local client when from == LocalClient. It implements §2.5. qid is
// the standard-caching per-query token (zero for locally posted queries
// and for everything in CUP mode, where coalescing replaces it).
func (n *Node) HandleQuery(from overlay.NodeID, k overlay.Key, qid uint64) []Action {
	ks := n.state(k)
	n.recordQuery(ks)
	now := n.now()

	if from == LocalClient {
		n.emit(Event{Kind: EvQueryIssued, Peer: LocalClient, Key: k})
	}

	// Interest registration: CUP nodes remember which neighbors want
	// updates for k, in every case of §2.5.
	if from != LocalClient && n.env.cfg.Mode == ModeCUP {
		ks.interest.add(from)
	}

	// Case 1a: we are the authority — answer from the local directory.
	if n.IsAuthority(k) {
		return n.answer(ks, from, k, n.local.Fresh(k, now), qid)
	}

	// Case 1b: fresh entries cached — answer from cache. Under standard
	// caching only the node's own clients are served from its cache
	// (client-side TTL caching); intermediate nodes never answer others'
	// queries — maintaining answer-capable intermediate caches is
	// precisely CUP's contribution.
	if n.env.cfg.Mode == ModeCUP || from == LocalClient {
		if fresh := n.store.Fresh(k, now); fresh != nil {
			return n.answer(ks, from, k, fresh, qid)
		}
	}

	next := n.env.router.NextHopTowardOwner(n.id, k)
	if next == n.id {
		panic(fmt.Sprintf("cup: %v authority reached non-authority path for %q", n.id, k))
	}

	// Standard caching: no coalescing — every query travels individually
	// and keeps a per-query "open connection" for its response (§4's
	// open-connection problem, which CUP's query channel eliminates).
	if n.env.cfg.Mode == ModeStandard {
		if qid == 0 {
			n.qidSeq++
			qid = uint64(uint32(n.id+1))<<32 | n.qidSeq
		}
		ks.routeBack = append(ks.routeBack, routeEntry{qid: qid, dest: from, issuedAt: now})
		return []Action{{Kind: ActSendQuery, To: next, Key: k, QueryID: qid}}
	}

	// Cases 2 and 3 (CUP): no fresh answer; register the asker, coalesce.
	if from == LocalClient {
		if ks.pendingLocal == 0 {
			ks.issuedAt = now
		}
		ks.pendingLocal++
	} else {
		ks.pendingChildren.add(from)
	}
	if ks.pfu {
		// Coalesced into the in-flight query. Peer carries the querier so
		// observers can split local coalescing (which mirrors the driver's
		// Coalesced counter) from neighbor coalescing.
		n.emit(Event{Kind: EvQueryCoalesced, Peer: from, Key: k})
		return nil
	}
	ks.pfu = true
	return []Action{{Kind: ActSendQuery, To: next, Key: k}}
}

// answer builds the first-time-update response for a fresh hit. The
// response carries our distance+1 so the receiver learns its depth.
func (n *Node) answer(ks *keyState, from overlay.NodeID, k overlay.Key, entries []cache.Entry, qid uint64) []Action {
	if from == LocalClient {
		n.emit(Event{Kind: EvQueryAnswered, Peer: LocalClient, Key: k, Entries: len(entries)})
		return []Action{{Kind: ActDeliverLocal, Key: k, Entries: entries}}
	}
	depth := ks.dist + 1
	if n.IsAuthority(k) {
		depth = 1
	}
	u := Update{
		Key:     k,
		Type:    FirstTime,
		Entries: entries,
		Replica: -1,
		Depth:   depth,
		Expires: maxExpiry(entries),
		QueryID: qid,
	}
	return []Action{{Kind: ActSendUpdate, To: from, Key: k, Update: u}}
}

// handleDirectResponse retraces a standard-caching response along its
// query's recorded path; the issuing node caches the answer (client-side
// TTL caching with remaining lifetime), intermediates pass it through.
func (n *Node) handleDirectResponse(u Update) []Action {
	ks := n.state(u.Key)
	idx := -1
	for i := range ks.routeBack {
		if ks.routeBack[i].qid == u.QueryID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil // duplicate or forgotten query token
	}
	re := ks.routeBack[idx]
	ks.routeBack = append(ks.routeBack[:idx], ks.routeBack[idx+1:]...)
	ks.dist = u.Depth
	fresh := freshOf(u.Entries, n.now())
	if re.dest == LocalClient {
		if fresh != nil {
			n.apply(ks, Update{Key: u.Key, Type: FirstTime, Entries: fresh})
		}
		n.emit(Event{Kind: EvQueryAnswered, Peer: LocalClient, Key: u.Key,
			Entries: len(fresh), Latency: n.now().Sub(re.issuedAt)})
		return []Action{{Kind: ActDeliverLocal, Key: u.Key, Entries: fresh}}
	}
	fwd := u
	fwd.Depth = u.Depth + 1
	fwd.Entries = fresh
	return []Action{{Kind: ActSendUpdate, To: re.dest, Key: u.Key, Update: fwd}}
}

// freshOf filters a response payload down to still-fresh entries for
// pass-through forwarding.
func freshOf(entries []cache.Entry, now sim.Time) []cache.Entry {
	out := make([]cache.Entry, 0, len(entries))
	for _, e := range entries {
		if e.Fresh(now) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func maxExpiry(entries []cache.Entry) sim.Time {
	var max sim.Time
	for _, e := range entries {
		if e.Expires > max {
			max = e.Expires
		}
	}
	return max
}

// OriginateUpdate is called at the authority when a replica event (birth,
// refresh, deletion) changes the local directory; it propagates the update
// to interested neighbors per §2.6. The caller must already have applied
// the event to the local directory via InstallLocal/RemoveLocal.
func (n *Node) OriginateUpdate(u Update) []Action {
	if !n.IsAuthority(u.Key) {
		panic(fmt.Sprintf("cup: %v originating update for foreign key %q", n.id, u.Key))
	}
	if n.env.cfg.Mode != ModeCUP {
		return nil // standard caching never propagates
	}
	ks := n.state(u.Key)
	u.Depth = 1
	return n.pushProactive(ks, u, 0)
}

// HandleUpdate processes an update for u.Key arriving from upstream
// neighbor `from`, implementing the three cases of §2.6.
func (n *Node) HandleUpdate(from overlay.NodeID, u Update) []Action {
	// Per-query responses (standard caching) bypass the CUP machinery and
	// retrace their query's path.
	if u.QueryID != 0 {
		return n.handleDirectResponse(u)
	}
	ks := n.state(u.Key)
	now := n.now()

	// Case 3: the update expired in flight — do not apply, do not push.
	// Deletes are always applied: removing a stale entry is still correct.
	if u.Type != Delete && u.Expires <= now {
		n.stats.Expired++
		// An expired first-time update still terminates the pending
		// query: the asker must re-issue rather than wait forever.
		if ks.pfu {
			return n.respondPending(ks, u, nil)
		}
		return nil
	}

	// Case 1: Pending-First-Update set — this update answers our query.
	if ks.pfu {
		// Whether this node stores the answer depends on its depth and
		// role (§3.3): pure forwarders beyond the push level — and all
		// forwarders under standard caching — pass the response through
		// without building a cache entry.
		if n.env.cfg.CachesAtDepth(u.Depth, ks.pendingLocal > 0) {
			n.apply(ks, u)
			n.resetPopularity(ks, u)
			ks.dist = u.Depth
			// Answer with the full fresh set now cached (the update may
			// have been a single-entry refresh completing our answer).
			return n.respondPending(ks, u, n.store.Fresh(u.Key, now))
		}
		ks.dist = u.Depth
		n.resetPopularity(ks, u)
		return n.respondPending(ks, u, freshOf(u.Entries, now))
	}

	// Case 2: no pending query.
	ks.dist = u.Depth
	if len(ks.interest) == 0 {
		// No downstream interest: consult the cut-off policy. Under
		// replica-independent cut-off only the watched replica's updates
		// trigger the decision (§3.6).
		if n.shouldEvaluate(ks, u) {
			keep := ks.inst.Keep(ks.queries, u.Depth)
			n.resetPopularity(ks, u)
			if !keep {
				n.emit(Event{Kind: EvCutoffFired, Peer: from, Key: u.Key})
				return []Action{{Kind: ActSendClearBit, To: from, Key: u.Key}}
			}
		}
		n.apply(ks, u)
		n.markJustifyPending(ks, u)
		return nil
	}

	// Downstream interest exists: apply and push to interested neighbors.
	if n.shouldEvaluate(ks, u) {
		n.resetPopularity(ks, u)
	}
	n.apply(ks, u)
	n.markJustifyPending(ks, u)
	return n.pushProactive(ks, u, u.Depth)
}

// respondPending clears the PFU flag and fans the response out to pending
// children, waiting local clients, and (proactively) interested neighbors.
func (n *Node) respondPending(ks *keyState, u Update, entries []cache.Entry) []Action {
	ks.pfu = false
	var acts []Action
	if ks.pendingLocal > 0 {
		n.emit(Event{Kind: EvQueryAnswered, Peer: LocalClient, Key: u.Key,
			Entries: len(entries), Latency: n.now().Sub(ks.issuedAt)})
		acts = append(acts, Action{Kind: ActDeliverLocal, Key: u.Key, Entries: entries})
		ks.pendingLocal = 0
	}
	resp := Update{
		Key:     u.Key,
		Type:    FirstTime,
		Entries: entries,
		Replica: -1,
		Depth:   u.Depth + 1,
		Expires: maxExpiry(entries),
	}
	// Pending children get the response unconditionally (it is their
	// query's answer — miss cost, exempt from capacity limits). The set
	// is already sorted ascending, so the fan-out is deterministic.
	children := ks.pendingChildren
	for _, m := range children {
		acts = append(acts, Action{Kind: ActSendUpdate, To: m, Key: u.Key, Update: resp})
	}
	ks.pendingChildren = children[:0]
	// Interested-but-not-pending neighbors get a proactive push of the
	// same fresh set, subject to push level and capacity.
	if n.env.cfg.Mode == ModeCUP && entries != nil {
		proactive := n.pushProactiveExcept(ks, resp, u.Depth, children)
		acts = append(acts, proactive...)
	}
	return acts
}

// shouldEvaluate reports whether this update triggers the cut-off decision
// and popularity reset.
func (n *Node) shouldEvaluate(ks *keyState, u Update) bool {
	if !n.env.cfg.ReplicaIndependentCutoff {
		return true // naive: every update triggers (§3.6's buggy variant)
	}
	if u.Replica < 0 {
		return true // first-time responses always reset
	}
	if ks.watchReplica < 0 {
		ks.watchReplica = u.Replica
	}
	return u.Replica == ks.watchReplica
}

// resetPopularity zeroes the queries-since-last-update measure.
func (n *Node) resetPopularity(ks *keyState, u Update) {
	ks.queries = 0
	// An update replacing the watched replica's entry re-designates on
	// delete: if the watched replica is deleted, watch the next one seen.
	if u.Type == Delete && u.Replica == ks.watchReplica {
		ks.watchReplica = -1
	}
}

// markJustifyPending records a proactive update for §3.1 accounting; any
// query arriving before the update's expiry justifies it.
func (n *Node) markJustifyPending(ks *keyState, u Update) {
	if u.Type == FirstTime {
		return // first-time updates are justified by construction
	}
	if ks.justifyPending {
		// Previous proactive update was never matched by a query.
		n.stats.Unjustified++
	}
	ks.justifyPending = true
	ks.justifyDeadline = u.Expires
}

// apply folds an update into the cached index entries (never into the
// local directory — those change only via replica events).
func (n *Node) apply(ks *keyState, u Update) {
	switch u.Type {
	case FirstTime:
		n.store.ReplaceKey(u.Key, cloneEntries(u.Entries))
	case Refresh, Append:
		for _, e := range cloneEntries(u.Entries) {
			// A pushed refresh/append restarts the entry's lifetime from
			// local receipt (§2.1's local-timestamp model), so chains of
			// refreshed caches never suffer synchronized expiry.
			if u.Lifetime > 0 {
				e.Expires = n.now().Add(u.Lifetime)
			}
			n.store.Put(e)
		}
	case Delete:
		n.store.Remove(u.Key, u.Replica)
	}
	if len(u.Entries) > 0 {
		ks.everHeld = true
	}
}

func cloneEntries(es []cache.Entry) []cache.Entry {
	if es == nil {
		return nil
	}
	out := make([]cache.Entry, len(es))
	copy(out, es)
	return out
}

// pushProactive forwards u to every interested neighbor, honoring the
// sender-side push level and the node's outgoing capacity. senderDepth is
// this node's distance from the authority (0 at the authority).
func (n *Node) pushProactive(ks *keyState, u Update, senderDepth int) []Action {
	return n.pushProactiveExcept(ks, u, senderDepth, nil)
}

func (n *Node) pushProactiveExcept(ks *keyState, u Update, senderDepth int, except nodeSet) []Action {
	if len(ks.interest) == 0 {
		return nil
	}
	// Sender-side push level (§3.3): do not propagate beyond level p.
	if n.env.cfg.PushLevel >= 0 && senderDepth+1 > n.env.cfg.PushLevel {
		return nil
	}
	// Outgoing capacity (§3.7): a node at reduced capacity c forwards only
	// a c-fraction of the updates it receives. Deterministic thinning via
	// a credit counter keeps runs reproducible.
	if n.capacityFraction >= 0 {
		n.capacityCredit += n.capacityFraction
		if n.capacityCredit < 1 {
			n.stats.Dropped++
			return nil
		}
		n.capacityCredit--
	}
	fwd := u
	fwd.Depth = senderDepth + 1
	acts := make([]Action, 0, len(ks.interest))
	// The interest set is sorted ascending; iterating it directly is the
	// deterministic target order.
	for _, m := range ks.interest {
		if except.has(m) {
			continue
		}
		n.emit(Event{Kind: EvUpdatePushed, Peer: m, Key: u.Key, Type: u.Type, Depth: fwd.Depth})
		acts = append(acts, Action{Kind: ActSendUpdate, To: m, Key: u.Key, Update: fwd})
	}
	return acts
}

// HandleClearBit processes a Clear-Bit control message from a downstream
// neighbor (§2.7): clear its interest bit; if our own popularity is low and
// no interest remains, propagate the clear-bit toward the authority.
func (n *Node) HandleClearBit(from overlay.NodeID, k overlay.Key) []Action {
	ks := n.state(k)
	ks.interest.remove(from)
	ks.pendingChildren.remove(from)
	if len(ks.interest) > 0 || ks.queries > 0 || ks.pfu {
		return nil
	}
	if n.IsAuthority(k) {
		return nil // the root has no upstream to cut
	}
	next := n.env.router.NextHopTowardOwner(n.id, k)
	n.emit(Event{Kind: EvCutoffFired, Peer: next, Key: k})
	return []Action{{Kind: ActSendClearBit, To: next, Key: k}}
}

// PatchNeighbors reconciles per-key bit vectors after overlay membership
// changes (§2.9): interest and pending bits of vanished neighbors are
// dropped; entries themselves are kept and simply expire if orphaned.
func (n *Node) PatchNeighbors(current []overlay.NodeID) {
	alive := make(nodeSet, 0, len(current))
	for _, m := range current {
		alive.add(m)
	}
	n.eachState(func(ks *keyState) {
		ks.interest.intersect(alive)
		ks.pendingChildren.intersect(alive)
	})
}

// FlushExpired drops expired cached entries; transports may call it
// periodically to bound memory.
func (n *Node) FlushExpired() int { return n.store.Expire(n.now()) }

// SettleJustification finalizes §3.1 accounting at the end of a run: any
// still-pending proactive update that was never matched is unjustified.
func (n *Node) SettleJustification() {
	n.eachState(func(ks *keyState) {
		if ks.justifyPending {
			n.stats.Unjustified++
			ks.justifyPending = false
		}
	})
}
