package cup

import (
	"fmt"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// This file implements §2.9 — node arrivals and departures — for the
// discrete-event driver. Churn is supported on any substrate exposing the
// dynamicOverlay capability below: the CAN (zones split on join and are
// absorbed by a neighbor on departure) and Kademlia (buckets re-knit
// around the changed membership). On every membership change the routing
// memo is invalidated, the affected nodes' interest bit vectors are
// patched, and on departure the departing node's portion of the global
// index is handed over per key to its new authority (the paper's
// hand-over alternative, which avoids restarting update propagation).

// dynamicOverlay is the churn capability: membership queries plus uniform
// join/leave hooks. Any overlay implementing it — including future kinds
// added through the registry — gets JoinNode/LeaveNode for free; a static
// overlay (Chord) does not satisfy it.
type dynamicOverlay interface {
	overlay.Overlay
	// Alive reports whether n is currently a member.
	Alive(overlay.NodeID) bool
	// JoinRand adds one node, drawing any placement randomness from rnd,
	// and returns its dense ID (which must equal the previous size).
	JoinRand(rnd *sim.Rand) overlay.NodeID
	// Leave removes n and returns the heir that takes over its region.
	Leave(n overlay.NodeID) overlay.NodeID
}

// dyn returns the overlay as a dynamic substrate, or nil when the run
// uses a static one.
func (s *Simulation) dyn() dynamicOverlay {
	d, _ := s.Ov.(dynamicOverlay)
	return d
}

// SupportsChurn reports whether this run's substrate handles JoinNode and
// LeaveNode.
func (s *Simulation) SupportsChurn() bool { return s.dyn() != nil }

// ChurnCapable reports whether the named overlay kind supports §2.9
// membership changes, by building a minimal instance from the registry
// and probing the capability. Unknown kinds report false.
func ChurnCapable(kind string) bool {
	ov, err := overlay.Build(kind, 2, 1)
	if err != nil {
		return false
	}
	_, ok := ov.(dynamicOverlay)
	return ok
}

// NodeAlive reports whether id is currently a member.
func (s *Simulation) NodeAlive(id overlay.NodeID) bool {
	if int(id) < 0 || int(id) >= len(s.Nodes) {
		return false
	}
	if d := s.dyn(); d != nil {
		return d.Alive(id)
	}
	return true
}

// JoinNode adds a fresh node (§2.9 Arrivals): the substrate wires it in
// (zone split on the CAN, bucket insertion on Kademlia), stale routes are
// dropped, previous owners hand over the index entries that now hash to
// the joiner, and every node whose routing table changed patches its
// interest bit vector. The new node's ID is returned.
func (s *Simulation) JoinNode() overlay.NodeID {
	d := s.dyn()
	if d == nil {
		panic(fmt.Sprintf("cup: JoinNode requires a dynamic overlay, have %q", s.P.OverlayKind))
	}
	s.Router.Dynamic = true
	id := d.JoinRand(s.Rng)
	s.Router.Invalidate()

	node := NewNode(id, s.P.Config, s.Router, s.Sched.Now)
	node.SetObserver(s.P.Observer)
	if int(id) != len(s.Nodes) {
		panic(fmt.Sprintf("cup: overlay issued id %v, expected %d", id, len(s.Nodes)))
	}
	s.Nodes = append(s.Nodes, node)
	s.emitMembership(EvNodeJoined, id)

	// Previous owners hand over the index entries that now hash into the
	// joiner's region (§2.9: "M could give a copy of its stored index
	// entries to N"). On the CAN only the split node holds such entries;
	// in the XOR space they may come from several nodes. Only nodes with
	// non-empty local directories (≈ one per key) pay the ownership
	// checks, so the sweep is a cheap map-iteration for everyone else.
	for m := range s.Nodes[:id] {
		from := overlay.NodeID(m)
		if s.NodeAlive(from) && s.Nodes[from].LocalDirectory().Len() > 0 {
			s.handOverLocal(from, id)
		}
	}
	// Patch everyone whose neighbor set changed: the joiner plus the
	// nodes that now list it (covers asymmetric Kademlia buckets, where
	// inserting the joiner may also evict a previous neighbor).
	rev := s.reverseNeighbors()
	s.patchNeighborhood(rev, append(rev[id], id))
	return id
}

// LeaveNode removes a member (§2.9 Departures): the departing node's
// portion of the global index moves per key to the key's new authority —
// on the CAN that is always the zone-absorbing heir, in the XOR space the
// new closest node per key — interest bit vectors of every node that
// routed through the victim are patched, and cached entries at other
// nodes simply expire. The substrate's heir is returned.
func (s *Simulation) LeaveNode(victim overlay.NodeID) overlay.NodeID {
	d := s.dyn()
	if d == nil {
		panic(fmt.Sprintf("cup: LeaveNode requires a dynamic overlay, have %q", s.P.OverlayKind))
	}
	if !d.Alive(victim) {
		panic(fmt.Sprintf("cup: LeaveNode of dead %v", victim))
	}
	s.Router.Dynamic = true
	// Collect the victim's channel peers before the overlay re-knits: the
	// nodes that list it (they routed through it) AND the nodes it listed
	// (it queried them, so they hold its interest bits). Neighbor
	// relations may be asymmetric (Kademlia buckets), so neither set
	// alone is enough.
	affected := append(s.reverseNeighbors()[victim], s.Ov.Neighbors(victim)...)
	heir := d.Leave(victim)
	s.Router.Invalidate()
	s.redistributeLocal(victim)
	s.patchNeighborhood(s.reverseNeighbors(), append(affected, heir))
	s.emitMembership(EvNodeLeft, victim)
	return heir
}

// emitMembership publishes a §2.9 membership event to the run's observer.
func (s *Simulation) emitMembership(kind EventKind, id overlay.NodeID) {
	if s.P.Observer == nil {
		return
	}
	s.P.Observer.OnEvent(Event{Kind: kind, Time: s.Sched.Now(), Node: id, Peer: overlay.NoNode})
}

// reverseNeighbors builds the reverse adjacency of the current overlay in
// one sweep: for each node, the alive nodes that list it as a neighbor.
// Churn handlers compute it once per membership event and share it, so
// patching stays O(n·degree) per event rather than per patched node.
func (s *Simulation) reverseNeighbors() map[overlay.NodeID][]overlay.NodeID {
	rev := make(map[overlay.NodeID][]overlay.NodeID, len(s.Nodes))
	for m := range s.Nodes {
		mm := overlay.NodeID(m)
		if !s.NodeAlive(mm) {
			continue
		}
		for _, nb := range s.Ov.Neighbors(mm) {
			rev[nb] = append(rev[nb], mm)
		}
	}
	return rev
}

// handOverLocal moves the entries of from's local directory whose keys
// now belong to to (after a membership change).
func (s *Simulation) handOverLocal(from, to overlay.NodeID) {
	dir := s.Nodes[from].LocalDirectory()
	for _, k := range dir.Keys() {
		if s.Ov.Owner(k) != to {
			continue
		}
		for _, e := range dir.All(k) {
			s.Nodes[to].InstallLocal(e)
			s.Nodes[from].RemoveLocal(k, e.Replica)
		}
	}
}

// redistributeLocal moves every local entry of a departed node to its
// key's current authority. On the CAN every key lands on the zone heir;
// in the XOR space each key goes to its own new closest node.
func (s *Simulation) redistributeLocal(from overlay.NodeID) {
	dir := s.Nodes[from].LocalDirectory()
	for _, k := range dir.Keys() {
		to := s.Ov.Owner(k)
		for _, e := range dir.All(k) {
			s.Nodes[to].InstallLocal(e)
		}
		dir.RemoveKey(k)
	}
}

// patchNeighborhood re-syncs interest bit vectors with current channel
// peers for the affected nodes (§2.9: "the bit vector patching is a local
// operation that affects only each individual node"). A node's channel
// peers are its own routing neighbors (it queries them) plus the nodes
// that route through it per rev (they query it, so their interest bits
// live here). The two sets coincide on symmetric overlays (CAN); on
// Kademlia's directed buckets the union keeps live subscriptions from
// asymmetric queriers from being patched away — PatchNeighbors drops
// bits of any peer not listed.
func (s *Simulation) patchNeighborhood(rev map[overlay.NodeID][]overlay.NodeID, nodes []overlay.NodeID) {
	seen := make(map[overlay.NodeID]bool, len(nodes))
	for _, id := range nodes {
		if seen[id] || !s.NodeAlive(id) {
			continue
		}
		seen[id] = true
		peers := append(append([]overlay.NodeID{}, s.Ov.Neighbors(id)...), rev[id]...)
		s.Nodes[id].PatchNeighbors(peers)
	}
}
