package cup

import (
	"fmt"

	"cup/internal/can"
	"cup/internal/overlay"
)

// This file implements §2.9 — node arrivals and departures — for the
// discrete-event driver. Churn is supported on the CAN overlay (zones
// split on join and are absorbed by a neighbor on departure). On every
// membership change the routing memo is invalidated, the affected nodes'
// interest bit vectors are patched, and on departure the heir takes over
// the departed node's portion of the global index (the paper's
// hand-over alternative, which avoids restarting update propagation).

// canNet returns the overlay as a mutable CAN, or nil when the run uses a
// static substrate.
func (s *Simulation) canNet() *can.Network {
	c, _ := s.Ov.(*can.Network)
	return c
}

// NodeAlive reports whether id is currently a member.
func (s *Simulation) NodeAlive(id overlay.NodeID) bool {
	if int(id) < 0 || int(id) >= len(s.Nodes) {
		return false
	}
	if c := s.canNet(); c != nil {
		return c.Alive(id)
	}
	return true
}

// JoinNode adds a fresh node at a random point in the coordinate space
// (§2.9 Arrivals): the owner of the point splits its zone, neighbor sets
// are repaired, stale routes are dropped, and the affected nodes patch
// their interest bit vectors. The new node's ID is returned.
func (s *Simulation) JoinNode() overlay.NodeID {
	c := s.canNet()
	if c == nil {
		panic("cup: JoinNode requires the CAN overlay")
	}
	s.Router.Dynamic = true
	p := overlay.Point{X: s.Rng.Float64(), Y: s.Rng.Float64()}
	prevOwner := c.OwnerOfPoint(p)
	id := c.Join(p)
	s.Router.Invalidate()

	node := NewNode(id, s.P.Config, s.Router, s.Sched.Now)
	if int(id) != len(s.Nodes) {
		panic(fmt.Sprintf("cup: CAN issued id %v, expected %d", id, len(s.Nodes)))
	}
	s.Nodes = append(s.Nodes, node)

	// The previous owner hands over the index entries that now hash into
	// the joiner's zone (§2.9: "M could give a copy of its stored index
	// entries to N").
	s.handOverLocal(prevOwner, id)
	s.patchNeighborhood(append([]overlay.NodeID{id, prevOwner}, c.Neighbors(id)...))
	return id
}

// LeaveNode removes a member (§2.9 Departures): a neighboring node takes
// over its zones and its portion of the global index; interest bit
// vectors in the neighborhood are patched; cached entries at other nodes
// simply expire. The heir's ID is returned.
func (s *Simulation) LeaveNode(victim overlay.NodeID) overlay.NodeID {
	c := s.canNet()
	if c == nil {
		panic("cup: LeaveNode requires the CAN overlay")
	}
	if !c.Alive(victim) {
		panic(fmt.Sprintf("cup: LeaveNode of dead %v", victim))
	}
	s.Router.Dynamic = true
	affected := append([]overlay.NodeID{}, c.Neighbors(victim)...)
	heir := c.Leave(victim)
	s.Router.Invalidate()

	// Graceful departure hands the local index directory to the heir and
	// the heir merges it (duplicates eliminated by keyed storage).
	s.handOverAll(victim, heir)
	s.patchNeighborhood(append(affected, heir))
	return heir
}

// handOverLocal moves the entries of from's local directory whose keys now
// belong to to (after a zone split).
func (s *Simulation) handOverLocal(from, to overlay.NodeID) {
	dir := s.Nodes[from].LocalDirectory()
	for _, k := range dir.Keys() {
		if s.Ov.Owner(k) != to {
			continue
		}
		for _, e := range dir.All(k) {
			s.Nodes[to].InstallLocal(e)
			s.Nodes[from].RemoveLocal(k, e.Replica)
		}
	}
}

// handOverAll moves every local entry from a departing node to its heir.
func (s *Simulation) handOverAll(from, to overlay.NodeID) {
	dir := s.Nodes[from].LocalDirectory()
	for _, k := range dir.Keys() {
		for _, e := range dir.All(k) {
			s.Nodes[to].InstallLocal(e)
		}
		dir.RemoveKey(k)
	}
}

// patchNeighborhood re-syncs interest bit vectors with current neighbor
// sets for the affected nodes (§2.9: "the bit vector patching is a local
// operation that affects only each individual node").
func (s *Simulation) patchNeighborhood(nodes []overlay.NodeID) {
	c := s.canNet()
	seen := make(map[overlay.NodeID]bool, len(nodes))
	for _, id := range nodes {
		if seen[id] || !c.Alive(id) {
			continue
		}
		seen[id] = true
		s.Nodes[id].PatchNeighbors(c.Neighbors(id))
	}
}
