package cup

import (
	"math"
	"testing"

	"cup/internal/metrics"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// paperParams is the paper's headline configuration (n = 2^10, λ = 5)
// shrunk to a 600 s query window so the three-overlay sweeps stay fast.
func paperParams(kind string) Params {
	return Params{
		Nodes:         1024,
		OverlayKind:   kind,
		QueryRate:     5,
		QueryDuration: 600,
		Replicas:      4,
		Seed:          3,
	}
}

// The struct-of-arrays arena must be invisible: for every overlay, the
// dense-state run reproduces the map-based run's counters bit for bit —
// same event schedule, same RNG draws, same float accumulation order.
func TestDenseStateBitIdentical(t *testing.T) {
	for _, kind := range overlay.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			base := Run(paperParams(kind)).Counters
			p := paperParams(kind)
			p.DenseState = true
			dense := Run(p).Counters
			if base != dense {
				t.Errorf("dense state drifted from map-based nodes:\n map   %+v\n dense %+v", base, dense)
			}
		})
	}
}

// eqModuloFloatOrder reports whether two counter sets agree exactly on
// every integer field and within accumulation-order slack on the one
// float field. Sharding reorders commutative float additions (per-shard
// partial sums fold at the end), so MissLatencyTotal may differ in the
// last bits while every event — and so every integer count — is
// identical.
func eqModuloFloatOrder(a, b metrics.Counters) bool {
	af, bf := a.MissLatencyTotal, b.MissLatencyTotal
	a.MissLatencyTotal, b.MissLatencyTotal = 0, 0
	if a != b {
		return false
	}
	const rel = 1e-9
	return math.Abs(af-bf) <= rel*math.Max(math.Abs(af), math.Abs(bf))
}

// Sharding is a scheduling change, not a protocol change: for every
// overlay and shard count, the sharded run posts the same queries, takes
// the same hops, and serves the same misses as the single-heap schedule.
func TestShardedMatchesClassic(t *testing.T) {
	for _, kind := range overlay.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			classic := Run(paperParams(kind)).Counters
			for _, k := range []int{2, 4} {
				p := paperParams(kind)
				p.Shards = k
				sharded := Run(p).Counters
				if !eqModuloFloatOrder(classic, sharded) {
					t.Errorf("shards=%d diverged from the single heap:\n classic %+v\n sharded %+v",
						k, classic, sharded)
				}
			}
		})
	}
}

// Sharded runs are deterministic for a fixed shard count — including the
// float fields, whose per-shard accumulation order is pinned by the
// barrier merge.
func TestShardedDeterministic(t *testing.T) {
	p := paperParams("chord")
	p.Shards = 3
	a := Run(p).Counters
	b := Run(p).Counters
	if a != b {
		t.Fatalf("identical sharded runs diverged:\n%v\n%v", a.String(), b.String())
	}
}

// Sharded runs reject the features the conservative window cannot honor.
func TestShardedRejectsIncompatibleParams(t *testing.T) {
	mustPanic := func(name string, p Params) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewSimulation did not panic", name)
			}
		}()
		NewSimulation(p)
	}
	p := paperParams("can")
	p.Shards = 2
	p.NoWorkload = true
	mustPanic("NoWorkload", p)

	p = paperParams("can")
	p.Shards = 2
	p.Hooks = []Hook{{At: 1, Fn: func(*Simulation) {}}}
	mustPanic("Hooks", p)
}

// Regression for the issuedAt approximation: under standard caching,
// several local queries for one key can be in flight at the same node at
// once. Each response must report the latency of *its own* query — the
// old code kept a single per-key issue time that the newest query
// overwrote, shortening the first query's reported latency by the
// stagger.
func TestStandardCachingOverlappingQueryLatencies(t *testing.T) {
	p := Params{
		Nodes:      64,
		NoWorkload: true,
		Seed:       11,
	}
	p.Config = Standard()
	s := NewSimulation(p)

	var lats []sim.Duration
	obs := ObserverFunc(func(e Event) {
		if e.Kind == EvQueryAnswered && e.Peer == LocalClient {
			lats = append(lats, e.Latency)
		}
	})
	for _, n := range s.Nodes {
		n.SetObserver(obs)
	}

	k := overlay.Key("golden")
	s.PublishReplica(k, 0, "203.0.113.7", s.P.Lifetime, Append)
	// A querier that is not the authority, so answers take ≥ 1 hop each
	// way.
	nid := s.Ov.Owner(k) + 1
	if int(nid) >= p.Nodes {
		nid = 0
	}
	const stagger = sim.Duration(0.05)
	s.Sched.At(100, func() { s.PostQueryAt(nid, k) })
	s.Sched.At(sim.Time(100).Add(stagger), func() { s.PostQueryAt(nid, k) })
	if err := s.Settle(t.Context()); err != nil {
		t.Fatal(err)
	}

	if len(lats) != 2 {
		t.Fatalf("got %d answered queries, want 2 (latencies %v)", len(lats), lats)
	}
	// Both queries travel the same path with the same hop delay, so both
	// true latencies are identical; the staggered second query must not
	// steal the first one's clock.
	if lats[0] <= 0 || lats[0] != lats[1] {
		t.Fatalf("overlapping query latencies %v and %v, want equal positive round trips",
			lats[0], lats[1])
	}
}
