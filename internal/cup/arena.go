package cup

import (
	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// arenaChunk is the fixed capacity of one key-state block. Slots are
// addressed by dense int32 handles and chunks never grow past their
// capacity, so &chunk[i] stays stable for the arena's lifetime — handlers
// hold *keyState across allocations.
const arenaChunk = 1024

// arenaSlot is one key's bookkeeping inside the pool, threaded onto its
// owning node's intrusive singly-linked key list.
type arenaSlot struct {
	key  overlay.Key
	next int32 // next slot of the same node, -1 terminates
	ks   keyState
}

// arenaPool is a chunked slab of key-state slots: stable addresses (no
// chunk ever reallocates), dense int32 handles, one bump-pointer
// allocation path and no per-key map or per-state heap object.
type arenaPool struct {
	chunks [][]arenaSlot
	n      int32
}

func (p *arenaPool) at(i int32) *arenaSlot {
	return &p.chunks[i/arenaChunk][i%arenaChunk]
}

func (p *arenaPool) alloc() int32 {
	if int(p.n)%arenaChunk == 0 {
		p.chunks = append(p.chunks, make([]arenaSlot, 0, arenaChunk))
	}
	c := len(p.chunks) - 1
	p.chunks[c] = append(p.chunks[c], arenaSlot{})
	i := p.n
	p.n++
	return i
}

// Arena is the struct-of-arrays backing store for simulation-scale node
// populations: all Node structs in one slice (dense uint32 handles ==
// overlay IDs), cache stores by value in parallel slices, per-key state
// in a chunked slab threaded per node, and one shared nodeEnv instead of
// per-node Config/Router copies. At n=10⁶ this is the difference between
// ~150 bytes of resident state per untouched node and the standalone
// representation's four heap objects (Node, two Stores, keys map) before
// any traffic arrives. Behavior is identical to standalone nodes; the
// *Node API is a thin view over the arrays.
type Arena struct {
	env    nodeEnv
	nodes  []Node
	stores []cache.Store
	locals []cache.Store
	// keyHead[slot] is the first key-state slot of node slot, -1 if none.
	keyHead []int32
	pool    arenaPool
}

// NewArena builds n arena-backed nodes with dense IDs 0..n-1, all sharing
// cfg and router and reading clock. Per-node clocks (sharded schedulers)
// can be installed afterwards with SetClockRange.
func NewArena(n int, cfg Config, router Router, clock func() sim.Time) *Arena {
	if cfg.Policy == nil {
		panic("cup: Config.Policy must be set (use Defaults())")
	}
	if router == nil || clock == nil {
		panic("cup: router and clock are required")
	}
	a := &Arena{
		env:     nodeEnv{cfg: cfg, router: router},
		nodes:   make([]Node, n),
		stores:  make([]cache.Store, n),
		locals:  make([]cache.Store, n),
		keyHead: make([]int32, n),
	}
	for i := range a.nodes {
		nd := &a.nodes[i]
		nd.id = overlay.NodeID(i)
		nd.env = &a.env
		nd.now = clock
		nd.store = &a.stores[i]
		nd.local = &a.locals[i]
		nd.a = a
		nd.slot = uint32(i)
		nd.capacityFraction = -1
		a.keyHead[i] = -1
	}
	return a
}

// Len returns the node population.
func (a *Arena) Len() int { return len(a.nodes) }

// Node returns the thin pointer view of node i. The pointer is stable for
// the arena's lifetime.
func (a *Arena) Node(i int) *Node { return &a.nodes[i] }

// SetClockRange installs clock as the time source for nodes [lo, hi) —
// the sharded scheduler gives each shard's nodes that shard's clock.
func (a *Arena) SetClockRange(lo, hi int, clock func() sim.Time) {
	for i := lo; i < hi; i++ {
		a.nodes[i].now = clock
	}
}

// SetObserver installs o on every node.
func (a *Arena) SetObserver(o Observer) {
	for i := range a.nodes {
		a.nodes[i].obs = o
	}
}

// KeyStates returns the total number of allocated per-key states — the
// denominator-free numerator for bytes-per-node accounting.
func (a *Arena) KeyStates() int { return int(a.pool.n) }

// state returns (allocating if needed) node slot's bookkeeping for k.
func (a *Arena) state(slot uint32, k overlay.Key) *keyState {
	for i := a.keyHead[slot]; i >= 0; {
		sl := a.pool.at(i)
		if sl.key == k {
			return &sl.ks
		}
		i = sl.next
	}
	i := a.pool.alloc()
	sl := a.pool.at(i)
	sl.key = k
	sl.next = a.keyHead[slot]
	sl.ks = keyState{
		watchReplica: -1,
		inst:         a.env.cfg.Policy.New(),
		dist:         -1,
	}
	a.keyHead[slot] = i
	return &sl.ks
}

// peek returns node slot's bookkeeping for k without allocating, or nil.
func (a *Arena) peek(slot uint32, k overlay.Key) *keyState {
	for i := a.keyHead[slot]; i >= 0; {
		sl := a.pool.at(i)
		if sl.key == k {
			return &sl.ks
		}
		i = sl.next
	}
	return nil
}

// each visits every key state of node slot.
func (a *Arena) each(slot uint32, fn func(*keyState)) {
	for i := a.keyHead[slot]; i >= 0; {
		sl := a.pool.at(i)
		fn(&sl.ks)
		i = sl.next
	}
}
