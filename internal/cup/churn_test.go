package cup

import (
	"testing"

	"cup/internal/overlay"
	"cup/internal/sim"
)

func churnParams() Params {
	return Params{Nodes: 64, QueryRate: 3, QueryDuration: 900, Seed: 17}
}

func TestJoinNodeGrowsMembership(t *testing.T) {
	s := NewSimulation(churnParams())
	before := len(s.Nodes)
	s.Sched.At(400, func() {
		id := s.JoinNode()
		if int(id) != before {
			t.Errorf("joined id = %v, want %d", id, before)
		}
		if !s.NodeAlive(id) {
			t.Error("joined node not alive")
		}
	})
	res := s.Run()
	if len(s.Nodes) != before+1 {
		t.Fatalf("nodes = %d, want %d", len(s.Nodes), before+1)
	}
	if res.Counters.Queries == 0 {
		t.Fatal("no queries ran")
	}
}

func TestLeaveNodeHandsOverAuthority(t *testing.T) {
	s := NewSimulation(churnParams())
	k := s.Keys[0]
	s.Sched.At(400, func() {
		auth := s.Ov.Owner(k)
		entriesBefore := s.Nodes[auth].LocalDirectory().Len()
		if entriesBefore == 0 {
			t.Error("authority had no local entries before leaving")
		}
		heir := s.LeaveNode(auth)
		if s.NodeAlive(auth) {
			t.Error("departed node still alive")
		}
		newAuth := s.Ov.Owner(k)
		if newAuth == auth {
			t.Error("ownership did not move")
		}
		// The heir holds the handed-over directory; if the key's point now
		// falls in the heir's absorbed zone, the heir is the new authority.
		if s.Nodes[heir].LocalDirectory().Len() < entriesBefore {
			t.Errorf("heir holds %d entries, want ≥ %d",
				s.Nodes[heir].LocalDirectory().Len(), entriesBefore)
		}
	})
	res := s.Run()
	if res.Counters.Misses() == 0 {
		t.Fatal("suspiciously perfect run under churn")
	}
}

func TestQueriesSurviveContinuousChurn(t *testing.T) {
	s := NewSimulation(churnParams())
	// Alternate joins and leaves every 50 s across the query window.
	for i := 0; i < 12; i++ {
		i := i
		s.Sched.At(sim.Time(350+50*i), func() {
			if i%2 == 0 {
				s.JoinNode()
			} else {
				alive := s.aliveSample()
				s.LeaveNode(alive)
			}
		})
	}
	res := s.Run()
	if res.Counters.Queries < 100 {
		t.Fatalf("queries = %d", res.Counters.Queries)
	}
	// Every served miss delivered an answer; the run completing without a
	// routing panic is the §2.9 seamlessness claim.
	if res.Counters.MissesServed == 0 {
		t.Fatal("no misses served under churn")
	}
}

// aliveSample picks a random alive, non-authority node for departure.
func (s *Simulation) aliveSample() overlay.NodeID {
	auth := s.Ov.Owner(s.Keys[0])
	for {
		id := overlay.NodeID(s.Rng.Pick(len(s.Nodes)))
		if s.NodeAlive(id) && id != auth {
			return id
		}
	}
}

func TestChurnCapableByKind(t *testing.T) {
	for kind, want := range map[string]bool{
		"can": true, "kademlia": true, "chord": false, "no-such-kind": false,
	} {
		if got := ChurnCapable(kind); got != want {
			t.Errorf("ChurnCapable(%q) = %v, want %v", kind, got, want)
		}
	}
}

func TestChurnRequiresDynamicOverlay(t *testing.T) {
	p := churnParams()
	p.OverlayKind = "chord"
	s := NewSimulation(p)
	if s.SupportsChurn() {
		t.Error("chord run claims to support churn")
	}
	defer func() {
		if recover() == nil {
			t.Error("JoinNode on chord did not panic")
		}
	}()
	s.JoinNode()
}

func TestQueriesSurviveContinuousChurnOnKademlia(t *testing.T) {
	p := churnParams()
	p.OverlayKind = "kademlia"
	s := NewSimulation(p)
	if !s.SupportsChurn() {
		t.Fatal("kademlia run does not support churn")
	}
	for i := 0; i < 12; i++ {
		i := i
		s.Sched.At(sim.Time(350+50*i), func() {
			if i%2 == 0 {
				s.JoinNode()
			} else {
				s.LeaveNode(s.aliveSample())
			}
		})
	}
	res := s.Run()
	if res.Counters.Queries < 100 {
		t.Fatalf("queries = %d", res.Counters.Queries)
	}
	if res.Counters.MissesServed == 0 {
		t.Fatal("no misses served under churn")
	}
}

func TestKademliaLeaveRedistributesAuthority(t *testing.T) {
	p := churnParams()
	p.OverlayKind = "kademlia"
	s := NewSimulation(p)
	k := s.Keys[0]
	s.Sched.At(400, func() {
		auth := s.Ov.Owner(k)
		entriesBefore := s.Nodes[auth].LocalDirectory().Len()
		if entriesBefore == 0 {
			t.Error("authority had no local entries before leaving")
		}
		s.LeaveNode(auth)
		if s.NodeAlive(auth) {
			t.Error("departed node still alive")
		}
		newAuth := s.Ov.Owner(k)
		if newAuth == auth {
			t.Error("ownership did not move")
		}
		// Per-key redistribution: the key's entries now live at its new
		// XOR-closest owner, so refreshes continue without re-propagation.
		if s.Nodes[newAuth].LocalDirectory().Len() < entriesBefore {
			t.Errorf("new authority holds %d entries, want ≥ %d",
				s.Nodes[newAuth].LocalDirectory().Len(), entriesBefore)
		}
	})
	s.Run()
}

func TestNodeAliveBounds(t *testing.T) {
	s := NewSimulation(churnParams())
	if s.NodeAlive(-1) || s.NodeAlive(overlay.NodeID(len(s.Nodes))) {
		t.Fatal("out-of-range IDs reported alive")
	}
	if !s.NodeAlive(0) {
		t.Fatal("node 0 not alive")
	}
}

func TestPatchingClearsDepartedInterest(t *testing.T) {
	s := NewSimulation(churnParams())
	var victim overlay.NodeID
	s.Sched.At(600, func() {
		// Find a node with interest registered at some neighbor.
		k := s.Keys[0]
		auth := s.Ov.Owner(k)
		interested := s.Nodes[auth].InterestedNeighbors(k)
		if len(interested) == 0 {
			return // workload produced no subscription at the authority yet
		}
		victim = interested[0]
		s.LeaveNode(victim)
		for _, m := range s.Nodes[auth].InterestedNeighbors(k) {
			if m == victim {
				t.Error("authority still lists departed neighbor as interested")
			}
		}
	})
	s.Run()
}
