package cup

import (
	"testing"
	"testing/quick"

	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/sim"
)

func qu(t UpdateType, exp sim.Time) Update {
	return Update{Key: "k", Type: t, Expires: exp,
		Entries: []cache.Entry{{Key: "k", Replica: 0, Expires: exp}}}
}

func TestLimiterEnqueueLen(t *testing.T) {
	l := NewLimiter()
	if l.Len() != 0 {
		t.Fatal("new limiter not empty")
	}
	l.Enqueue(1, qu(Refresh, 100))
	l.Enqueue(1, qu(Refresh, 200))
	l.Enqueue(2, qu(Refresh, 300))
	if l.Len() != 3 || l.QueueLen(1) != 2 || l.QueueLen(2) != 1 {
		t.Fatalf("Len=%d q1=%d q2=%d", l.Len(), l.QueueLen(1), l.QueueLen(2))
	}
}

func TestDrainUnlimitedReleasesAll(t *testing.T) {
	l := NewLimiter()
	for i := 0; i < 10; i++ {
		l.Enqueue(overlay.NodeID(i%3), qu(Refresh, sim.Time(100+i)))
	}
	out := l.Drain(0, -1)
	if len(out) != 10 || l.Len() != 0 {
		t.Fatalf("drained %d, remaining %d", len(out), l.Len())
	}
}

func TestDrainRespectsBudget(t *testing.T) {
	l := NewLimiter()
	for i := 0; i < 10; i++ {
		l.Enqueue(1, qu(Refresh, sim.Time(100+i)))
	}
	out := l.Drain(0, 4)
	if len(out) != 4 || l.Len() != 6 {
		t.Fatalf("drained %d, remaining %d", len(out), l.Len())
	}
}

func TestDrainZeroBudget(t *testing.T) {
	l := NewLimiter()
	l.Enqueue(1, qu(Refresh, 100))
	if out := l.Drain(0, 0); out != nil {
		t.Fatalf("zero budget released %d", len(out))
	}
}

func TestDrainProportionalAllocation(t *testing.T) {
	l := NewLimiter()
	// Channel 1 has 8 queued, channel 2 has 2: with budget 5 the shares
	// are 4 and 1 — proportional keeps queues equalizing.
	for i := 0; i < 8; i++ {
		l.Enqueue(1, qu(Refresh, sim.Time(100+i)))
	}
	for i := 0; i < 2; i++ {
		l.Enqueue(2, qu(Refresh, sim.Time(100+i)))
	}
	out := l.Drain(0, 5)
	count := map[overlay.NodeID]int{}
	for _, o := range out {
		count[o.To]++
	}
	if count[1] != 4 || count[2] != 1 {
		t.Fatalf("allocation = %v, want map[1:4 2:1]", count)
	}
}

func TestDrainTypePriorityOrder(t *testing.T) {
	l := NewLimiter()
	l.Enqueue(1, qu(Append, 100))
	l.Enqueue(1, qu(Refresh, 100))
	l.Enqueue(1, qu(Delete, 100))
	l.Enqueue(1, qu(FirstTime, 100))
	out := l.Drain(0, -1)
	want := []UpdateType{FirstTime, Delete, Refresh, Append}
	for i, o := range out {
		if o.U.Type != want[i] {
			t.Fatalf("position %d = %v, want %v", i, o.U.Type, want[i])
		}
	}
}

func TestDrainExpiryProximityWithinClass(t *testing.T) {
	l := NewLimiter()
	l.Enqueue(1, qu(Refresh, 300))
	l.Enqueue(1, qu(Refresh, 100))
	l.Enqueue(1, qu(Refresh, 200))
	out := l.Drain(0, -1)
	if out[0].U.Expires != 100 || out[1].U.Expires != 200 || out[2].U.Expires != 300 {
		t.Fatalf("not expiry-ordered: %v %v %v", out[0].U.Expires, out[1].U.Expires, out[2].U.Expires)
	}
}

func TestDropEliminatesExpired(t *testing.T) {
	l := NewLimiter()
	l.Enqueue(1, qu(Refresh, 50))
	l.Enqueue(1, qu(Refresh, 150))
	l.Enqueue(2, qu(Append, 60))
	if n := l.Drop(100); n != 2 {
		t.Fatalf("Drop = %d, want 2", n)
	}
	if l.Len() != 1 || l.QueueLen(2) != 0 {
		t.Fatalf("Len=%d q2=%d", l.Len(), l.QueueLen(2))
	}
}

func TestDropKeepsDeletes(t *testing.T) {
	l := NewLimiter()
	l.Enqueue(1, qu(Delete, 50))
	if n := l.Drop(100); n != 0 {
		t.Fatalf("Drop removed a delete: %d", n)
	}
}

func TestDrainDoesNotChargeExpired(t *testing.T) {
	l := NewLimiter()
	l.Enqueue(1, qu(Refresh, 50)) // expired at drain time
	l.Enqueue(1, qu(Refresh, 150))
	out := l.Drain(100, 1)
	if len(out) != 1 || out[0].U.Expires != 150 {
		t.Fatalf("out = %+v", out)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
}

func TestDrainDeterministicAcrossChannels(t *testing.T) {
	build := func() *Limiter {
		l := NewLimiter()
		for i := 0; i < 30; i++ {
			l.Enqueue(overlay.NodeID(i%5), qu(Refresh, sim.Time(100+i)))
		}
		return l
	}
	a := build().Drain(0, 13)
	b := build().Drain(0, 13)
	if len(a) != len(b) {
		t.Fatal("nondeterministic drain size")
	}
	for i := range a {
		if a[i].To != b[i].To || a[i].U.Expires != b[i].U.Expires {
			t.Fatalf("nondeterministic drain at %d", i)
		}
	}
}

// Property: Drain never exceeds the budget and conserves updates
// (drained + remaining + dropped == enqueued).
func TestPropertyDrainConservation(t *testing.T) {
	f := func(raw []uint8, budgetRaw uint8) bool {
		l := NewLimiter()
		for i, v := range raw {
			l.Enqueue(overlay.NodeID(v%4), qu(Refresh, sim.Time(50+int(v))))
			_ = i
		}
		enq := len(raw)
		now := sim.Time(80)
		budget := int(budgetRaw % 20)
		dropped := 0
		for _, v := range raw {
			if sim.Time(50+int(v)) <= now {
				dropped++
			}
		}
		out := l.Drain(now, budget)
		if len(out) > budget {
			return false
		}
		return len(out)+l.Len()+dropped == enq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a budget below total, longer queues release at least as
// many updates as strictly shorter ones (proportional fairness).
func TestPropertyProportionalFairness(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		na, nb := int(aRaw%20)+1, int(bRaw%20)+1
		l := NewLimiter()
		for i := 0; i < na; i++ {
			l.Enqueue(1, qu(Refresh, sim.Time(1000+i)))
		}
		for i := 0; i < nb; i++ {
			l.Enqueue(2, qu(Refresh, sim.Time(1000+i)))
		}
		budget := (na + nb) / 2
		if budget == 0 {
			return true
		}
		out := l.Drain(0, budget)
		count := map[overlay.NodeID]int{}
		for _, o := range out {
			count[o.To]++
		}
		if na > nb && count[1] < count[2] {
			return false
		}
		if nb > na && count[2] < count[1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
