package cup

import (
	"testing"
)

// TestBusFanOutOrder pins the fan-out order contract: observers see
// events in attach order, every run. The bus used to keep observers in
// a map, so two observers of the same simulated run could see their
// callbacks interleaved differently between executions — a determinism
// leak cuplint's determinism pass now flags and this test regresses.
func TestBusFanOutOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		b := NewBus()
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			b.Attach(ObserverFunc(func(Event) { order = append(order, i) }))
		}
		b.OnEvent(Event{Kind: EvQueryIssued})
		if len(order) != 8 {
			t.Fatalf("trial %d: %d observers fired, want 8", trial, len(order))
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("trial %d: fan-out order %v, want attach order", trial, order)
			}
		}
	}
}

// TestBusDetachMidstream verifies detaching preserves the relative
// order of the remaining observers and detached ones stop firing.
func TestBusDetachMidstream(t *testing.T) {
	b := NewBus()
	var order []int
	detach := make([]func(), 5)
	for i := 0; i < 5; i++ {
		i := i
		detach[i] = b.Attach(ObserverFunc(func(Event) { order = append(order, i) }))
	}
	detach[1]()
	detach[3]()
	b.OnEvent(Event{Kind: EvQueryIssued})
	want := []int{0, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	// Detaching twice is a no-op, not a corruption of the slice.
	detach[1]()
	order = order[:0]
	b.OnEvent(Event{Kind: EvQueryIssued})
	if len(order) != len(want) {
		t.Fatalf("after double detach: fired %v, want %v", order, want)
	}
}

// TestBusSubscribeCancel verifies cancel closes exactly the cancelled
// subscription and CloseSubscribers closes the rest.
func TestBusSubscribeCancel(t *testing.T) {
	b := NewBus()
	ch1, cancel1 := b.Subscribe(4, nil)
	ch2, _ := b.Subscribe(4, nil)
	b.OnEvent(Event{Kind: EvCutoffFired})
	cancel1()
	if e, ok := <-ch1; !ok || e.Kind != EvCutoffFired {
		t.Fatalf("ch1 buffered event lost: %v %v", e, ok)
	}
	if _, ok := <-ch1; ok {
		t.Fatal("ch1 not closed after cancel")
	}
	cancel1() // second cancel is a no-op
	b.CloseSubscribers()
	if e, ok := <-ch2; !ok || e.Kind != EvCutoffFired {
		t.Fatalf("ch2 buffered event lost: %v %v", e, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("ch2 not closed after CloseSubscribers")
	}
}

// TestBusOnEventAllocs pins the zero-allocation fan-out contract for
// the //cup:hotpath-annotated OnEvent.
func TestBusOnEventAllocs(t *testing.T) {
	b := NewBus()
	sink := 0
	b.Attach(ObserverFunc(func(e Event) { sink += e.Entries }))
	b.Attach(ObserverFunc(func(e Event) { sink += e.Depth }))
	ev := Event{Kind: EvUpdatePushed, Entries: 1, Depth: 2}
	if allocs := testing.AllocsPerRun(1000, func() { b.OnEvent(ev) }); allocs != 0 {
		t.Fatalf("Bus.OnEvent allocates %.1f per event, want 0", allocs)
	}
}
