package cup

import (
	"time"

	"cup/internal/sim"
)

// This file is the single source of truth for the paper-default constants
// (§3.2) and runtime defaults shared by every transport. Both the
// discrete-event simulator (Params.WithDefaults) and the live goroutine
// runtime (live.Config) consume this table, so the two runtimes cannot
// drift apart in their defaulting.
//
// At runtime the effect of each parameter is observable through the
// telemetry registry (internal/obs, attached via cup.WithTelemetry);
// the comments below name the metric series that report each one.
const (
	// DefaultNodes is the paper's headline overlay size (n = 2^10).
	// Reported as the cup_nodes gauge; the tree depths it implies show
	// up in the cup_update_push_depth histogram (≈√n/2 hops on a 2-D
	// CAN).
	DefaultNodes = 1024
	// DefaultOverlayKind is the paper's substrate, a 2-D CAN.
	DefaultOverlayKind = "can"
	// DefaultKeys is the number of distinct workload keys.
	DefaultKeys = 1
	// DefaultReplicas is the number of replicas per key.
	DefaultReplicas = 1
	// DefaultLifetime is the replica lifetime: "the lifetime of replicas"
	// is 300 s throughout the paper's evaluation. Shorter lifetimes mean
	// more refresh pushes — visible as cup_updates_pushed_total{type=
	// "refresh"} — and, where interest has lapsed, more cut-offs
	// (cup_cutoffs_total).
	DefaultLifetime sim.Duration = 300
	// DefaultHopDelay is the simulator's per-hop network latency. It is
	// the unit of the cup_query_latency_seconds histogram: a miss that
	// travels h hops to an answer observes ≈ 2·h·DefaultHopDelay.
	DefaultHopDelay sim.Duration = 0.1
	// DefaultQueryRate is the network-wide Poisson query rate λ (q/s).
	// Drives cup_events_total{kind="query-issued"}; when λ outpaces the
	// answer latency, the herd effect appears as
	// cup_queries_coalesced_total{source="local"} (§2.4's pending-first
	// update coalescing).
	DefaultQueryRate float64 = 1
	// DefaultQueryDuration is the paper's query window ("3000 seconds of
	// querying").
	DefaultQueryDuration sim.Duration = 3000
	// DefaultPiggybackWindow is how long a clear-bit waits for a carrier
	// before traveling standalone (§2.7). Each fired cut-off increments
	// cup_cutoffs_total and cup_events_total{kind="cutoff-fired"};
	// cup.Trace marks the firing node's span outcome "cut-off".
	DefaultPiggybackWindow sim.Duration = 1
	// DefaultSeed drives all randomness when the caller leaves it unset.
	DefaultSeed int64 = 1

	// DefaultLiveHopDelay is the live runtime's wall-clock per-hop
	// latency. It deliberately differs from DefaultHopDelay: simulated
	// runs model a 100 ms WAN hop in virtual time, while the goroutine
	// runtime keeps demos and tests interactive.
	DefaultLiveHopDelay = time.Millisecond
	// DefaultInboxDepth bounds each live peer's mailbox. Live occupancy
	// against this bound is scraped as cup_live_inbox_used /
	// cup_live_inbox_capacity.
	DefaultInboxDepth = 1024

	// Serving-layer and smart-client defaults (internal/serve, client).
	// They sit in this table, next to the paper parameters they guard,
	// so the server's Retry-After arithmetic and the client's backoff
	// cannot drift apart across packages.

	// DefaultPromiseTTL is how long a granted population promise (the
	// justcache 202 "you upload" lease) stays exclusive before the next
	// POST /promise may claim the key. It is also the ceiling of the
	// Retry-After a conflicting client receives with its 409. Grants and
	// conflicts are counted as cup_serve_promises_total{outcome=...}.
	DefaultPromiseTTL = 2 * time.Second
	// DefaultServeQueryTimeout bounds one GET miss's journey through the
	// CUP query path before the server answers 504. It must comfortably
	// exceed the overlay's round trip (O(log n) hops × the hop delay) or
	// cold keys on slow networks would time out instead of missing.
	// Timed-out and answered GETs both land in
	// cup_http_request_seconds{route="get"}.
	DefaultServeQueryTimeout = 5 * time.Second
	// DefaultAdmitRate bounds update-injecting requests (PUT, DELETE,
	// POST /promise) admitted per second — the LOCKSS-style rate bound
	// that keeps external load from swamping the propagation tree. Reads
	// are not gated: CUP's query coalescing already bounds read-side
	// tree load to one upstream query per key. Rejections appear as
	// cup_serve_admission_rejected_total{reason="rate"}.
	DefaultAdmitRate float64 = 4096
	// DefaultAdmitBurst is the token-bucket depth over DefaultAdmitRate:
	// the write burst a quiet server absorbs before 429s begin.
	DefaultAdmitBurst = 1024
	// DefaultServeDrainTimeout bounds the graceful drain when a serving
	// deployment closes: listeners stop accepting immediately, in-flight
	// requests get this long to complete, then remaining connections are
	// force-closed. It exceeds DefaultServeQueryTimeout so a GET already
	// inside the CUP query path can finish (or 504) before the drain
	// gives up on it.
	DefaultServeDrainTimeout = 6 * time.Second
	// DefaultShedThreshold is the live inbox occupancy fraction
	// (cup_live_inbox_used / cup_live_inbox_capacity) above which the
	// server sheds all /v1 traffic with 503 rather than queue more work
	// onto saturated peer mailboxes. Sheds are counted as
	// cup_serve_admission_rejected_total{reason="overload"}.
	DefaultShedThreshold = 0.9
	// DefaultClientFanout is the smart client's rendezvous fan-out N:
	// the top-ranked host is the key's primary, the remaining N-1 are
	// replicas (justcache's default N = 2).
	DefaultClientFanout = 2
	// DefaultClientRetries bounds one Get/GetOrFill's promise-wait loop:
	// after this many 409-then-retry rounds the client reports ErrBusy
	// instead of spinning on a wedged grantee.
	DefaultClientRetries = 8
	// DefaultClientBackoff is the base of the client's jittered
	// exponential backoff between retry rounds; DefaultClientBackoffCap
	// caps the doubling so a long outage retries steadily instead of
	// sleeping for minutes.
	DefaultClientBackoff    = 25 * time.Millisecond
	DefaultClientBackoffCap = time.Second
)

// overlaySeedSalt decorrelates overlay construction from the workload's
// randomness stream.
const overlaySeedSalt = 0x5eed

// OverlaySeed derives the overlay-construction seed from a run seed. Both
// transports use it, so the same seed and options build the same topology
// whether a deployment is simulated or live — the event-parity tests
// depend on this.
func OverlaySeed(seed int64) int64 { return seed + overlaySeedSalt }

// TrialSeed derives the seed of trial i of a multi-trial sweep from the
// run's base seed. Trial 0 keeps the base seed, so a one-trial sweep is
// bit-identical to a plain run; later trials are finalized through a
// splitmix64-style mix so neighboring indices land in decorrelated
// stream positions instead of overlapping consecutive-seed streams.
func TrialSeed(base int64, trial int) int64 {
	if trial == 0 {
		return base
	}
	z := uint64(base) + uint64(trial)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1 // a zero Params.Seed means "use the default"; never emit it
	}
	return int64(z)
}
