package cup

import (
	"sort"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// Limiter implements §2.8's adaptive control of update push: a node with
// outgoing capacity U updates per drain interval divides U among its
// outgoing update channels proportionally to queue length (keeping queues
// roughly equally sized), re-orders queued updates so the most impactful
// go first (first-time, delete, refresh, append; nearer-expiry first within
// a class), and eliminates expired updates during re-ordering. Queues are
// naturally bounded by entry expiration: even a fully shut-off channel
// drains as its contents expire.
//
// The fraction-based thinning in Node.SetCapacity models the paper's §3.7
// experiments; Limiter is the full queue mechanism, exercised by the
// reordering ablation and available to transports that batch update
// transmission.
type Limiter struct {
	queues map[overlay.NodeID][]Update
	total  int
}

// NewLimiter returns an empty limiter.
func NewLimiter() *Limiter {
	return &Limiter{queues: make(map[overlay.NodeID][]Update)}
}

// Enqueue adds an update bound for neighbor to the channel queue.
func (l *Limiter) Enqueue(to overlay.NodeID, u Update) {
	l.queues[to] = append(l.queues[to], u)
	l.total++
}

// Len returns the total queued updates across channels.
func (l *Limiter) Len() int { return l.total }

// QueueLen returns the queue length for one neighbor.
func (l *Limiter) QueueLen(to overlay.NodeID) int { return len(l.queues[to]) }

// Outgoing is one update released by Drain.
type Outgoing struct {
	To overlay.NodeID
	U  Update
}

// rank orders updates for transmission: §2.8's type priority first, then
// proximity to expiration (entries closest to expiring are pushed first
// within a class, since they are the ones about to cause freshness misses).
func rank(a, b Update) bool {
	if pa, pb := a.Type.Priority(), b.Type.Priority(); pa != pb {
		return pa < pb
	}
	return a.Expires < b.Expires
}

// Drop removes expired updates from all queues and returns the count
// eliminated (§2.8: "during the re-ordering any expired updates are
// eliminated").
func (l *Limiter) Drop(now sim.Time) int {
	dropped := 0
	for to, q := range l.queues {
		keep := q[:0]
		for _, u := range q {
			if u.Type == Delete || u.Expires > now {
				keep = append(keep, u)
			} else {
				dropped++
			}
		}
		if len(keep) == 0 {
			delete(l.queues, to)
		} else {
			l.queues[to] = keep
		}
	}
	l.total -= dropped
	return dropped
}

// Drain releases up to budget updates, allocating the budget across
// channels proportionally to their queue lengths (longer queues get more
// slots, equalizing them) and re-ordering each channel by rank. Expired
// updates are eliminated first and do not consume budget. A negative
// budget releases everything.
func (l *Limiter) Drain(now sim.Time, budget int) []Outgoing {
	l.Drop(now)
	if l.total == 0 || budget == 0 {
		return nil
	}
	if budget < 0 || budget > l.total {
		budget = l.total
	}
	// Deterministic channel order.
	chans := make([]overlay.NodeID, 0, len(l.queues))
	for to := range l.queues {
		chans = append(chans, to)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })

	// Proportional allocation with largest-remainder rounding.
	type alloc struct {
		to    overlay.NodeID
		share float64
		n     int
	}
	allocs := make([]alloc, len(chans))
	granted := 0
	for i, to := range chans {
		exact := float64(budget) * float64(len(l.queues[to])) / float64(l.total)
		n := int(exact)
		if n > len(l.queues[to]) {
			n = len(l.queues[to])
		}
		allocs[i] = alloc{to: to, share: exact - float64(n), n: n}
		granted += n
	}
	// Distribute the remainder to the largest fractional shares (ties by
	// lower node ID for determinism), respecting queue lengths.
	rest := budget - granted
	order := make([]int, len(allocs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := allocs[order[a]], allocs[order[b]]
		if ia.share != ib.share {
			return ia.share > ib.share
		}
		return ia.to < ib.to
	})
	for rest > 0 {
		progressed := false
		for _, i := range order {
			if rest == 0 {
				break
			}
			if allocs[i].n < len(l.queues[allocs[i].to]) {
				allocs[i].n++
				rest--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	var out []Outgoing
	for _, a := range allocs {
		if a.n == 0 {
			continue
		}
		q := l.queues[a.to]
		sort.SliceStable(q, func(i, j int) bool { return rank(q[i], q[j]) })
		for i := 0; i < a.n; i++ {
			out = append(out, Outgoing{To: a.to, U: q[i]})
		}
		if a.n == len(q) {
			delete(l.queues, a.to)
		} else {
			l.queues[a.to] = q[a.n:]
		}
		l.total -= a.n
	}
	return out
}
