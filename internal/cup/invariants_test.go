package cup

import (
	"fmt"
	"testing"

	"cup/internal/policy"
)

// TestInvariantsAcrossConfigMatrix runs the conservation and sanity
// invariants that must hold for *every* protocol configuration, across a
// grid of modes, policies, overlays, replicas, rates, and authority-side
// options. Each cell is a full simulation; failures name the cell.
func TestInvariantsAcrossConfigMatrix(t *testing.T) {
	type cell struct {
		name string
		p    Params
	}
	var cells []cell
	add := func(name string, mutate func(*Params)) {
		p := Params{Nodes: 48, QueryRate: 3, QueryDuration: 450, Seed: 31}
		mutate(&p)
		cells = append(cells, cell{name, p})
	}

	add("standard", func(p *Params) { p.Config = Standard() })
	add("cup-second-chance", func(p *Params) { p.Config = Defaults() })
	for _, pol := range []policy.Policy{
		policy.AlwaysKeep(), policy.NeverKeep(),
		policy.Linear(0.1), policy.Logarithmic(0.25), policy.WindowedIdle(3),
	} {
		pol := pol
		add("cup-"+pol.Name(), func(p *Params) {
			p.Config = Defaults()
			p.Config.Policy = pol
		})
	}
	for _, lvl := range []int{0, 3, 9} {
		lvl := lvl
		add(fmt.Sprintf("pushlevel-%d", lvl), func(p *Params) {
			p.Config = Defaults()
			p.Config.Policy = policy.AlwaysKeep()
			p.Config.PushLevel = lvl
		})
	}
	add("chord", func(p *Params) { p.OverlayKind = "chord"; p.Config = Defaults() })
	add("replicas-7-naive", func(p *Params) {
		p.Replicas = 7
		p.Config = Defaults()
		p.Config.ReplicaIndependentCutoff = false
	})
	add("replicas-7-aggregated", func(p *Params) {
		p.Replicas = 7
		p.RefreshPolicy = RefreshPolicy{AggregateWindow: 20}
	})
	add("replicas-7-suppressed", func(p *Params) {
		p.Replicas = 7
		p.RefreshPolicy = RefreshPolicy{SuppressFraction: 0.3}
	})
	add("piggyback", func(p *Params) { p.PiggybackClearBits = true; p.PiggybackWindow = 30 })
	add("zipf-keys", func(p *Params) { p.Keys = 6; p.ZipfSkew = 1.3 })
	add("slow-links", func(p *Params) { p.HopDelay = 0.8 })

	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res := Run(c.p)
			cc := &res.Counters

			if cc.Queries == 0 {
				t.Fatal("no queries posted")
			}
			if cc.Hits+cc.Misses() != cc.Queries {
				t.Errorf("hit/miss split broken: %d + %d != %d",
					cc.Hits, cc.Misses(), cc.Queries)
			}
			if cc.FirstTimeMisses+cc.FreshnessMisses != cc.Misses() {
				t.Errorf("miss classification broken: %d + %d != %d",
					cc.FirstTimeMisses, cc.FreshnessMisses, cc.Misses())
			}
			if cc.TotalCost() != cc.MissCost()+cc.Overhead() {
				t.Error("total cost identity broken")
			}
			if cc.MissesServed > cc.Misses() {
				t.Errorf("served %d > occurred %d", cc.MissesServed, cc.Misses())
			}
			if cc.Coalesced > cc.Misses() {
				t.Errorf("coalesced %d > misses %d", cc.Coalesced, cc.Misses())
			}
			if c.p.Config.Mode == ModeStandard && cc.Overhead() != 0 {
				t.Errorf("standard caching produced overhead %d", cc.Overhead())
			}
			// Determinism: the same cell must reproduce exactly.
			again := Run(c.p)
			if again.Counters != res.Counters {
				t.Error("run not deterministic")
			}
		})
	}
}

// TestMissLatencyBoundedByDiameter checks that no served miss can take
// longer than a full round trip across the overlay plus slack.
func TestMissLatencyBoundedByDiameter(t *testing.T) {
	p := Params{Nodes: 64, QueryRate: 5, QueryDuration: 600, Seed: 8}
	res := Run(p)
	// 64-node CAN diameter ≲ 16; round trip 32 hops at 0.1 s/hop = 3.2 s.
	if lat := res.Counters.MissLatencySeconds(); lat > 3.2 {
		t.Fatalf("average miss latency %.2fs exceeds diameter bound", lat)
	}
}

// TestColdStartQueriesBeforeAnyReplica verifies queries posted before any
// replica registers are answered (with an empty set) rather than wedged.
func TestColdStartQueriesBeforeAnyReplica(t *testing.T) {
	p := Params{Nodes: 32, QueryRate: 2, QueryDuration: 300, Seed: 5}
	s := NewSimulation(p)
	// Post a query at t=10, long before QueryStart=300 and possibly
	// before the replica's staggered birth.
	s.Sched.At(10, func() { s.PostQueryAt(3, s.Keys[0]) })
	res := s.Run()
	if res.Counters.Queries == 0 {
		t.Fatal("query not posted")
	}
}
