package cup

import (
	"testing"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// testEnv builds a standalone TrafficEnv over nKeys keys with a seeded
// RNG and trivially uniform pick helpers.
func testEnv(seed int64, nKeys int, rate, start, duration float64) TrafficEnv {
	rng := sim.NewRand(seed)
	keys := make([]overlay.Key, nKeys)
	for i := range keys {
		keys[i] = overlay.Key(string(rune('a' + i)))
	}
	return TrafficEnv{
		Rand:     rng.Rand,
		Nodes:    32,
		Keys:     keys,
		PickNode: func() overlay.NodeID { return overlay.NodeID(rng.Intn(32)) },
		PickKey:  func() overlay.Key { return keys[rng.Intn(len(keys))] },
		Rate:     rate,
		Start:    start,
		Duration: duration,
	}
}

// drain pulls a stream to exhaustion (bounded against runaways).
func drain(t *testing.T, st TrafficStream) []QueryEvent {
	t.Helper()
	var out []QueryEvent
	for i := 0; i < 1_000_000; i++ {
		ev, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
	t.Fatal("stream never terminated")
	return nil
}

// monotone asserts events never go backwards in time and stay in the
// window.
func monotone(t *testing.T, events []QueryEvent, start, end float64) {
	t.Helper()
	prev := 0.0
	for i, ev := range events {
		if ev.At < prev {
			t.Fatalf("event %d at %g before predecessor %g", i, ev.At, prev)
		}
		if ev.At < start || ev.At > end {
			t.Fatalf("event %d at %g outside window [%g, %g]", i, ev.At, start, end)
		}
		prev = ev.At
	}
}

func TestPoissonTrafficWindowAndVolume(t *testing.T) {
	events := drain(t, PoissonTraffic(10).Stream(testEnv(1, 1, 10, 100, 500)))
	monotone(t, events, 100, 600)
	// λ=10 over 500 s → ~5000 arrivals; 10% tolerance.
	if len(events) < 4500 || len(events) > 5500 {
		t.Fatalf("arrivals = %d, want ≈5000", len(events))
	}
}

func TestPoissonTrafficDeterministic(t *testing.T) {
	a := drain(t, PoissonTraffic(5).Stream(testEnv(7, 2, 5, 0, 200)))
	b := drain(t, PoissonTraffic(5).Stream(testEnv(7, 2, 5, 0, 200)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPoissonTrafficZeroRateIsEmpty(t *testing.T) {
	env := testEnv(1, 1, 0, 0, 100) // env rate 0, explicit rate 0
	if events := drain(t, PoissonTraffic(0).Stream(env)); len(events) != 0 {
		t.Fatalf("zero-rate stream emitted %d events", len(events))
	}
}

func TestFlashCrowdSurgesHotKey(t *testing.T) {
	fc := FlashCrowd{BaseRate: 1, At: 200, SurgeRate: 200, Queries: 500}
	events := drain(t, fc.Stream(testEnv(3, 3, 1, 100, 500)))
	monotone(t, events, 100, 600)
	hot := 0
	for _, ev := range events {
		if ev.Key == "a" { // first workload key
			hot++
		}
	}
	if hot < 500 {
		t.Fatalf("hot-key events = %d, want ≥ 500 (the surge)", hot)
	}
	// Background (λ=1 over 500 s ≈ 500) plus the surge.
	if len(events) < 900 {
		t.Fatalf("total events = %d, want surge + background", len(events))
	}
}

func TestFlashCrowdSurgeTruncatedAtWindowEnd(t *testing.T) {
	// A surge starting near the window end must drop its tail, not spill
	// past the window.
	fc := FlashCrowd{BaseRate: 0.01, At: 590, SurgeRate: 1, Queries: 100}
	events := drain(t, fc.Stream(testEnv(3, 1, 0.01, 100, 500)))
	monotone(t, events, 100, 600)
}

func TestDiurnalWaveModulatesRate(t *testing.T) {
	// One full wave across the window: the first half (rising sine) must
	// carry more arrivals than the second (falling below mean).
	w := DiurnalWave{Mean: 10, Amplitude: 0.9, Period: 1000}
	events := drain(t, w.Stream(testEnv(5, 1, 10, 0, 1000)))
	monotone(t, events, 0, 1000)
	first, second := 0, 0
	for _, ev := range events {
		if ev.At < 500 {
			first++
		} else {
			second++
		}
	}
	if first <= second {
		t.Fatalf("no diurnal modulation: first half %d, second half %d", first, second)
	}
	// Total volume still ≈ mean·duration.
	if total := first + second; total < 8500 || total > 11500 {
		t.Fatalf("total = %d, want ≈10000", total)
	}
}

func TestZipfDriftRotatesPopularity(t *testing.T) {
	z := ZipfDrift{Rate: 50, Skew: 2.0, Shift: 500}
	events := drain(t, z.Stream(testEnv(11, 4, 50, 0, 1000)))
	monotone(t, events, 0, 1000)
	top := func(lo, hi float64) overlay.Key {
		counts := map[overlay.Key]int{}
		for _, ev := range events {
			if ev.At >= lo && ev.At < hi {
				counts[ev.Key]++
			}
		}
		var best overlay.Key
		for k, c := range counts {
			if best == "" || c > counts[best] {
				best = k
			}
		}
		return best
	}
	if a, b := top(0, 500), top(500, 1000); a == b {
		t.Fatalf("popularity never drifted: top key %q in both halves", a)
	}
}

func TestClosedLoopVolumeTracksPopulation(t *testing.T) {
	// 8 clients with 2 s mean think time over 400 s ≈ 1600 queries.
	cl := ClosedLoop{Clients: 8, Think: 2}
	events := drain(t, cl.Stream(testEnv(13, 1, 1, 0, 400)))
	monotone(t, events, 0, 400)
	if len(events) < 1300 || len(events) > 1900 {
		t.Fatalf("events = %d, want ≈1600", len(events))
	}
}

func TestCapacityFaultScheduleWindows(t *testing.T) {
	f := CapacityFault{Capacity: 0.5, Recover: true}
	events := f.Schedule(300, 3000)
	if len(events) != 6 {
		t.Fatalf("events = %d, want 6", len(events))
	}
	for i := 0; i+1 < len(events); i++ {
		if events[i].At > events[i+1].At {
			t.Fatalf("schedule not ordered at %d", i)
		}
	}
	once := CapacityFault{Capacity: 0.5}
	if got := once.Schedule(300, 3000); len(got) != 1 || got[0].At != 600 {
		t.Fatalf("once-down schedule = %+v", got)
	}
}

func TestFaultsApplyThroughSimulation(t *testing.T) {
	p := Params{Nodes: 64, QueryRate: 2, QueryDuration: 600, Seed: 5,
		Faults: []Fault{CapacityFault{Fraction: 0.25, Capacity: 0.5}}}
	s := NewSimulation(p)
	s.Run()
	reduced := 0
	for _, n := range s.Nodes {
		if n.Capacity() >= 0 {
			reduced++
		}
	}
	if reduced != 16 {
		t.Fatalf("reduced nodes = %d, want 16 (25%% of 64)", reduced)
	}
}

func TestNodeChurnFaultChangesMembership(t *testing.T) {
	p := Params{Nodes: 32, QueryRate: 1, QueryDuration: 600, Seed: 5,
		Faults: []Fault{NodeChurn{At: 350, Period: 50, Rounds: 6}}}
	joined, left := 0, 0
	p.Observer = ObserverFunc(func(e Event) {
		switch e.Kind {
		case EvNodeJoined:
			joined++
		case EvNodeLeft:
			left++
		}
	})
	NewSimulation(p).Run()
	if joined != 3 || left != 3 {
		t.Fatalf("membership events: %d joins, %d leaves; want 3/3", joined, left)
	}
}

func TestReplicaChurnFaultOriginatesUpdates(t *testing.T) {
	base := Params{Nodes: 32, QueryRate: 1, QueryDuration: 600, Seed: 5}
	plain := Run(base).Counters.UpdatesOriginated
	churned := base
	churned.Faults = []Fault{ReplicaChurn{At: 350, Period: 50, Rounds: 5, Min: 1}}
	got := Run(churned).Counters.UpdatesOriginated
	if got <= plain {
		t.Fatalf("replica churn originated no extra updates: %d vs %d", got, plain)
	}
}

func TestCustomTrafficDrivesQueries(t *testing.T) {
	// A hand-rolled Traffic pinning every query to node 3 and key-0
	// must flow through PostQueryAt unchanged.
	tr := fixedTraffic{n: 25}
	res := Run(Params{Nodes: 16, QueryRate: 1, QueryDuration: 600, Seed: 2, Traffic: tr})
	if res.Counters.Queries != 25 {
		t.Fatalf("queries = %d, want 25", res.Counters.Queries)
	}
}

type fixedTraffic struct{ n int }

func (f fixedTraffic) Name() string { return "fixed" }
func (f fixedTraffic) Stream(env TrafficEnv) TrafficStream {
	i := 0
	return streamFunc(func() (QueryEvent, bool) {
		if i >= f.n {
			return QueryEvent{}, false
		}
		i++
		return QueryEvent{At: env.Start + float64(i), Node: 3, Key: env.Keys[0]}, true
	})
}
