package cup

import (
	"testing"

	"cup/internal/cache"
	"cup/internal/overlay"
	"cup/internal/sim"
)

func gateEntry(r int, exp sim.Time) cache.Entry {
	return cache.Entry{Key: "k", Replica: r, Expires: exp}
}

func TestRefreshPolicyDisabledPassesThrough(t *testing.T) {
	g := newRefreshGate(RefreshPolicy{})
	release, flushIn := g.Offer("k", gateEntry(0, 100), 1)
	if len(release) != 1 || flushIn != 0 {
		t.Fatalf("release=%v flushIn=%v", release, flushIn)
	}
}

func TestRefreshSuppressionFraction(t *testing.T) {
	g := newRefreshGate(RefreshPolicy{SuppressFraction: 0.25})
	released := 0
	for i := 0; i < 100; i++ {
		if rel, _ := g.Offer("k", gateEntry(i, 100), 1); rel != nil {
			released++
		}
	}
	if released != 25 {
		t.Fatalf("released %d of 100 at fraction 0.25, want exactly 25", released)
	}
}

func TestRefreshAggregationBatches(t *testing.T) {
	g := newRefreshGate(RefreshPolicy{AggregateWindow: 10})
	rel, flushIn := g.Offer("k", gateEntry(0, 100), 5)
	if rel != nil {
		t.Fatal("batched refresh released immediately")
	}
	if flushIn != 10 {
		t.Fatalf("flushIn = %v, want 10", flushIn)
	}
	// More refreshes inside the window join the batch without re-arming.
	for i := 1; i < 5; i++ {
		rel, flushIn = g.Offer("k", gateEntry(i, 100), 5)
		if rel != nil || flushIn != 0 {
			t.Fatalf("refresh %d: rel=%v flushIn=%v", i, rel, flushIn)
		}
	}
	batch := g.Flush("k")
	if len(batch) != 5 {
		t.Fatalf("batch size = %d, want 5", len(batch))
	}
	if g.PendingBatches() != 0 {
		t.Fatal("pending batches after flush")
	}
	// Window closed: the next refresh re-arms.
	if _, flushIn = g.Offer("k", gateEntry(9, 200), 5); flushIn != 10 {
		t.Fatalf("window did not re-arm: flushIn=%v", flushIn)
	}
}

func TestRefreshAggregationPerKeyWindows(t *testing.T) {
	g := newRefreshGate(RefreshPolicy{AggregateWindow: 10})
	g.Offer("a", gateEntry(0, 100), 1)
	g.Offer("b", gateEntry(0, 100), 1)
	if g.PendingBatches() != 2 {
		t.Fatalf("pending = %d, want 2", g.PendingBatches())
	}
	if len(g.Flush("a")) != 1 || len(g.Flush("b")) != 1 {
		t.Fatal("per-key flush broken")
	}
}

func TestRefreshFlushEmptyKey(t *testing.T) {
	g := newRefreshGate(RefreshPolicy{AggregateWindow: 10})
	if got := g.Flush("nothing"); got != nil {
		t.Fatalf("Flush of empty key = %v", got)
	}
}

func TestDynamicWindowScalesWithReplicas(t *testing.T) {
	p := RefreshPolicy{AggregateWindow: 10, DynamicWindow: true, DynamicBase: 10}
	if w := p.window(10); w != 10 {
		t.Fatalf("window(10) = %v, want 10", w)
	}
	if w := p.window(100); w != 100 {
		t.Fatalf("window(100) = %v, want 100", w)
	}
	// Floor at a quarter of the base window.
	if w := p.window(1); w != 2.5 {
		t.Fatalf("window(1) = %v, want 2.5", w)
	}
}

func TestSuppressionComposesWithAggregation(t *testing.T) {
	g := newRefreshGate(RefreshPolicy{SuppressFraction: 0.5, AggregateWindow: 10})
	batched := 0
	for i := 0; i < 10; i++ {
		g.Offer("k", gateEntry(i, 100), 10)
	}
	batched = len(g.Flush("k"))
	if batched != 5 {
		t.Fatalf("batch = %d after 50%% suppression of 10, want 5", batched)
	}
}

func TestSimulationAggregationReducesOriginations(t *testing.T) {
	base := Params{Nodes: 64, QueryRate: 2, QueryDuration: 600, Replicas: 10, Seed: 9}
	plain := Run(base)
	agg := base
	agg.RefreshPolicy = RefreshPolicy{AggregateWindow: 30}
	batched := Run(agg)
	if batched.Counters.UpdatesOriginated >= plain.Counters.UpdatesOriginated {
		t.Fatalf("aggregation did not reduce originations: %d vs %d",
			batched.Counters.UpdatesOriginated, plain.Counters.UpdatesOriginated)
	}
	if batched.Counters.UpdateHops >= plain.Counters.UpdateHops {
		t.Fatalf("aggregation did not reduce update hops: %d vs %d",
			batched.Counters.UpdateHops, plain.Counters.UpdateHops)
	}
}

func TestSimulationSuppressionReducesOverhead(t *testing.T) {
	base := Params{Nodes: 64, QueryRate: 2, QueryDuration: 600, Replicas: 10, Seed: 9}
	plain := Run(base)
	sup := base
	sup.RefreshPolicy = RefreshPolicy{SuppressFraction: 0.2}
	suppressed := Run(sup)
	if suppressed.Counters.UpdateHops >= plain.Counters.UpdateHops {
		t.Fatalf("suppression did not reduce update hops: %d vs %d",
			suppressed.Counters.UpdateHops, plain.Counters.UpdateHops)
	}
}

func TestPiggybackReducesClearBitHops(t *testing.T) {
	// Multi-key workloads give clear-bits carriers: queries and updates
	// for other keys traveling the same link.
	base := Params{Nodes: 64, Keys: 16, QueryRate: 10, QueryDuration: 900, Seed: 4}
	plain := Run(base)
	pb := base
	pb.PiggybackClearBits = true
	pb.PiggybackWindow = 120 // clear-bits are in no hurry (§2.7)
	piggy := Run(pb)
	total := piggy.Counters.ClearBitHops + piggy.Counters.PiggybackedClearBits
	if total == 0 {
		t.Fatal("no clear-bits at all in piggyback run")
	}
	if piggy.Counters.PiggybackedClearBits == 0 {
		t.Fatal("nothing piggybacked despite carrier traffic")
	}
	if piggy.Counters.ClearBitHops >= plain.Counters.ClearBitHops {
		t.Fatalf("piggybacking did not reduce standalone clear-bits: %d vs %d",
			piggy.Counters.ClearBitHops, plain.Counters.ClearBitHops)
	}
}

func TestPiggybackDeliversClearBitsEventually(t *testing.T) {
	// Protocol correctness: with piggybacking on, interest bits must still
	// get cleared — compare cut-off-driven update suppression across runs.
	base := Params{Nodes: 64, QueryRate: 0.5, QueryDuration: 900, Seed: 4}
	pb := base
	pb.PiggybackClearBits = true
	res := Run(pb)
	if res.Counters.ClearBitHops+res.Counters.PiggybackedClearBits == 0 {
		t.Fatal("no clear-bit deliveries with piggybacking enabled")
	}
}

func TestOverlayRouterInvalidate(t *testing.T) {
	net := Params{Nodes: 16, QueryRate: 1, QueryDuration: 60, Seed: 2}
	s := NewSimulation(net)
	k := s.Keys[0]
	first := s.Router.NextHopTowardOwner(overlay.NodeID(3), k)
	s.Router.Invalidate()
	second := s.Router.NextHopTowardOwner(overlay.NodeID(3), k)
	if first != second {
		t.Fatalf("static overlay route changed after Invalidate: %v vs %v", first, second)
	}
}
