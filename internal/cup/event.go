package cup

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// This file implements the shared event bus: the protocol core emits one
// identical event stream regardless of transport, so a simulated run and a
// live deployment can be observed — and compared — through the same API.
// Node emits the protocol-level events (query issued/answered, update
// pushed, cut-off fired); the transports add membership events (node
// joined/left) on churn.

// EventKind classifies protocol events.
type EventKind int

const (
	// EvQueryIssued fires when a local client posts a query at a node.
	EvQueryIssued EventKind = iota
	// EvQueryAnswered fires when a node resolves local client connections
	// for a key (Entries carries the answer size; zero for an empty or
	// expired answer).
	EvQueryAnswered
	// EvUpdatePushed fires per neighbor when a node proactively pushes an
	// update along its interest tree (responses to pending queries are
	// miss traffic, not pushes, and do not fire this event).
	EvUpdatePushed
	// EvCutoffFired fires when a node sends a clear-bit to cut itself (or
	// propagate a cut) out of an update propagation tree (§2.7).
	EvCutoffFired
	// EvNodeJoined fires when a node joins the overlay (§2.9 arrivals).
	EvNodeJoined
	// EvNodeLeft fires when a node departs the overlay (§2.9 departures).
	EvNodeLeft
	// EvQueryCoalesced fires when a query is absorbed by an already-pending
	// Pending-First-Update flag (§2.4) instead of being forwarded. Peer is
	// the querier: LocalClient for a local client query, the neighbor
	// otherwise. Appended after the original kinds to keep persisted
	// tallies stable.
	EvQueryCoalesced
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	//cup:eventexhaustive
	switch k {
	case EvQueryIssued:
		return "query-issued"
	case EvQueryAnswered:
		return "query-answered"
	case EvUpdatePushed:
		return "update-pushed"
	case EvCutoffFired:
		return "cutoff-fired"
	case EvNodeJoined:
		return "node-joined"
	case EvNodeLeft:
		return "node-left"
	case EvQueryCoalesced:
		return "query-coalesced"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// EventKinds lists every kind in declaration order (for tallies).
var EventKinds = []EventKind{
	EvQueryIssued, EvQueryAnswered, EvUpdatePushed, EvCutoffFired,
	EvNodeJoined, EvNodeLeft, EvQueryCoalesced,
}

// Event is one observation from a running deployment. Time is virtual
// seconds on the simulated transport and wall-clock seconds since network
// start on the live one; everything else is transport-independent.
type Event struct {
	Kind EventKind
	Time sim.Time
	// Node is where the event happened.
	Node overlay.NodeID
	// Peer is the counterpart when one exists: the push or clear-bit
	// target. NoNode otherwise.
	Peer overlay.NodeID
	Key  overlay.Key
	// Type is the update taxonomy for EvUpdatePushed.
	Type UpdateType
	// Depth is the receiver's hop distance from the authority for
	// EvUpdatePushed.
	Depth int
	// Entries is the answer payload size for EvQueryAnswered.
	Entries int
	// Latency is the elapsed time since the answered query was first
	// issued at this node, for EvQueryAnswered: zero for cache hits
	// (answered inline), positive when the answer had to travel the
	// overlay. Virtual seconds on the simulator, wall-clock seconds on
	// the live transport.
	Latency sim.Duration
}

// Observer receives protocol events. Implementations attached to a live
// network are called from many peer goroutines concurrently and must be
// safe for concurrent use; on the simulator they are called inline from
// the single scheduler goroutine.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Bus fans events out to synchronous observers and buffered channel
// subscribers. It is safe for concurrent use from any number of emitters,
// so one Bus serves both the single-threaded simulator and the
// goroutine-per-peer live runtime.
//
// Observers and subscribers are kept in attach-order slices, not maps:
// fan-out order is part of the event-stream contract (two observers of
// the same simulated run must see identical interleavings on every
// execution), and a map range here once made collector-vs-trace
// orderings flip between runs. Slice iteration is also what keeps
// OnEvent on the zero-allocation hot path.
//
// Channel subscribers are never allowed to block an emitter: when a
// subscriber's buffer is full the event is dropped for that subscriber
// and counted in Dropped. Synchronous observers see every event.
type Bus struct {
	mu      sync.RWMutex
	seq     uint64
	taps    []busTap
	subs    []*busSub
	dropped atomic.Uint64
}

type busTap struct {
	id uint64
	o  Observer
}

type busSub struct {
	id     uint64
	ch     chan Event
	filter func(Event) bool
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{}
}

// OnEvent implements Observer by fanning the event out in attach order,
// so a Bus can be installed directly as a node or transport observer.
//
//cup:hotpath
func (b *Bus) OnEvent(e Event) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for i := range b.taps {
		b.taps[i].o.OnEvent(e)
	}
	for _, s := range b.subs {
		if s.filter != nil && !s.filter(e) {
			continue
		}
		select {
		case s.ch <- e:
		default:
			b.dropped.Add(1)
		}
	}
}

// Attach registers a synchronous observer; the returned function detaches
// it. Observers attached to a live deployment must be concurrency-safe.
func (b *Bus) Attach(o Observer) (detach func()) {
	b.mu.Lock()
	b.seq++
	id := b.seq
	b.taps = append(b.taps, busTap{id: id, o: o})
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		for i := range b.taps {
			if b.taps[i].id == id {
				b.taps = append(b.taps[:i], b.taps[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
	}
}

// Subscribe returns a buffered channel receiving every event matching
// filter (nil matches all). Cancel detaches the subscription and closes
// the channel. Events arriving while the buffer is full are dropped for
// this subscriber.
func (b *Bus) Subscribe(buffer int, filter func(Event) bool) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 256
	}
	b.mu.Lock()
	b.seq++
	s := &busSub{id: b.seq, ch: make(chan Event, buffer), filter: filter}
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	// Membership in b.subs guards the close: emitters hold the read lock
	// while sending, and both cancel and CloseSubscribers close only the
	// channels they removed from the slice under the write lock, so each
	// channel closes exactly once with no send racing it.
	cancel := func() {
		b.mu.Lock()
		for i := range b.subs {
			if b.subs[i].id == s.id {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				close(s.ch)
				break
			}
		}
		b.mu.Unlock()
	}
	return s.ch, cancel
}

// CloseSubscribers detaches every channel subscription and closes its
// channel, unblocking consumers ranging over them. Synchronous observers
// stay attached.
func (b *Bus) CloseSubscribers() {
	b.mu.Lock()
	for _, s := range b.subs {
		close(s.ch)
	}
	b.subs = nil
	b.mu.Unlock()
}

// Dropped returns the number of events discarded because a subscriber's
// buffer was full.
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }
