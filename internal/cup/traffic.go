package cup

import (
	"fmt"
	"math"
	"math/rand"

	"cup/internal/overlay"
)

// This file is the traffic half of the public Scenario API: pluggable
// client-query generators consumed identically by the discrete-event
// driver (virtual time) and the live goroutine runtime (wall-clock
// time). The paper's own workload — Poisson arrivals over the
// configured popularity map (§3.2) — is one generator among several;
// PoissonTraffic replays the exact random-draw sequence the driver used
// when the loop was embedded, so the paper-default path stays
// bit-identical across the API inversion.

// AnyNode marks a QueryEvent's querying node as deployment-chosen: the
// runtime draws a uniformly random alive peer at delivery time.
const AnyNode = overlay.NodeID(-1)

// QueryEvent is one client query arrival produced by a Traffic
// generator.
type QueryEvent struct {
	// At is the arrival instant in seconds since the start of the run —
	// virtual seconds on the simulator, scaled wall-clock seconds on the
	// live transport. Events must be non-decreasing in At.
	At float64
	// Node is the peer the client connects to; AnyNode lets the
	// deployment pick a random alive peer.
	Node overlay.NodeID
	// Key is the queried key; empty draws from the run's configured
	// popularity map (uniform, or Zipf under WithZipf).
	Key overlay.Key
}

// TrafficEnv is the window a Traffic generator gets into one run: the
// deployment's seeded randomness, the workload shape, and the query
// window. All generator randomness must come from Rand (directly or via
// the Pick helpers) so identical seeds replay identical schedules.
type TrafficEnv struct {
	// Rand is the run's workload RNG. On the simulator it is shared with
	// the rest of the scripted workload; draws interleave with the
	// schedule exactly as emitted.
	Rand *rand.Rand
	// Nodes is the overlay size at bind time.
	Nodes int
	// Keys is the scripted workload's key set.
	Keys []overlay.Key
	// PickNode draws a uniformly random alive node from Rand.
	PickNode func() overlay.NodeID
	// PickKey draws a key from the run's configured popularity map.
	PickKey func() overlay.Key
	// ZipfSkew is the configured popularity skew (0 = uniform), so
	// concurrent consumers that cannot share Rand (live closed-loop
	// clients) can build their own equivalent picker via KeyPicker.
	ZipfSkew float64
	// Rate is the configured network-wide query rate λ (queries/s), the
	// default for generators that leave their own rate unset.
	Rate float64
	// Start and Duration bound the configured query window in seconds.
	Start    float64
	Duration float64
}

// End returns the end of the configured query window.
func (e TrafficEnv) End() float64 { return e.Start + e.Duration }

// TrafficStream yields successive query arrivals for one run. The
// runtime calls Next once before the first arrival and then at each
// arrival instant, so draws from TrafficEnv.Rand interleave with the
// rest of the schedule in emission order. A false return ends the
// workload.
type TrafficStream interface {
	Next() (QueryEvent, bool)
}

// Traffic generates a run's client query workload. Implementations are
// configuration values: Stream binds one to a concrete run and may be
// called once per run.
type Traffic interface {
	// Name identifies the generator in registries, flags, and logs.
	Name() string
	// Stream binds the generator to one run.
	Stream(env TrafficEnv) TrafficStream
}

// streamFunc adapts a closure to TrafficStream.
type streamFunc func() (QueryEvent, bool)

func (f streamFunc) Next() (QueryEvent, bool) { return f() }

// PoissonTraffic is the paper's default workload (§3.2): queries arrive
// network-wide as a Poisson process with rate λ across the configured
// query window, each from a uniformly random alive node for a
// popularity-map key. A non-positive rate falls back to the run's
// configured WithQueryRate. This generator reproduces the pre-Scenario
// driver loop draw-for-draw: same seed, bit-identical counters.
func PoissonTraffic(rate float64) Traffic { return poissonTraffic{rate: rate} }

type poissonTraffic struct{ rate float64 }

func (p poissonTraffic) Name() string { return "poisson" }

func (p poissonTraffic) Stream(env TrafficEnv) TrafficStream {
	rate := p.rate
	if rate <= 0 {
		rate = env.Rate
	}
	at := env.Start
	end := env.End()
	return streamFunc(func() (QueryEvent, bool) {
		if rate <= 0 {
			return QueryEvent{}, false
		}
		// Draw order (gap, node, key) matches the embedded loop the
		// driver used before the Scenario API: the gap to arrival i+1
		// was drawn at arrival i, followed by the next arrival's node
		// and key picks.
		at += env.Rand.ExpFloat64() / rate
		if at > end {
			return QueryEvent{}, false
		}
		return QueryEvent{At: at, Node: env.PickNode(), Key: env.PickKey()}, true
	})
}

// FlashCrowd is the paper's motivating surge (§2.8): a quiet Poisson
// background plus a burst of Queries arrivals for one suddenly hot key
// at SurgeRate, starting at At. The zero value surges the first
// workload key mid-window at 100× the background rate.
type FlashCrowd struct {
	// BaseRate is the background query rate λ; non-positive uses the
	// run's configured rate.
	BaseRate float64
	// At is the surge start in seconds; zero starts one quarter into
	// the query window.
	At float64
	// SurgeRate is the arrival rate during the surge (queries/s); zero
	// uses 100× the background rate.
	SurgeRate float64
	// Queries is the surge size; zero means 1000.
	Queries int
	// Key is the hot key; empty uses the first workload key.
	Key overlay.Key
}

func (f FlashCrowd) Name() string { return "flashcrowd" }

func (f FlashCrowd) Stream(env TrafficEnv) TrafficStream {
	base := f.BaseRate
	if base <= 0 {
		base = env.Rate
	}
	surgeRate := f.SurgeRate
	if surgeRate <= 0 {
		surgeRate = 100 * math.Max(base, 0.01)
	}
	surgeAt := f.At
	if surgeAt <= 0 {
		surgeAt = env.Start + env.Duration/4
	}
	remaining := f.Queries
	if remaining == 0 {
		remaining = 1000
	}
	hot := f.Key
	if hot == "" && len(env.Keys) > 0 {
		hot = env.Keys[0]
	}

	end := env.End()
	baseAt, surgeNext := env.Start, surgeAt
	baseDone := base <= 0
	if !baseDone {
		baseAt += env.Rand.ExpFloat64() / base
		baseDone = baseAt > end
	}
	return streamFunc(func() (QueryEvent, bool) {
		for {
			switch {
			case !baseDone && (remaining <= 0 || baseAt <= surgeNext):
				ev := QueryEvent{At: baseAt, Node: env.PickNode(), Key: env.PickKey()}
				baseAt += env.Rand.ExpFloat64() / base
				baseDone = baseAt > end
				return ev, true
			case remaining > 0:
				if surgeNext > end {
					remaining = 0 // surge outlived the window; drop the tail
					continue
				}
				ev := QueryEvent{At: surgeNext, Node: env.PickNode(), Key: hot}
				remaining--
				surgeNext += env.Rand.ExpFloat64() / surgeRate
				return ev, true
			default:
				return QueryEvent{}, false
			}
		}
	})
}

// DiurnalWave modulates a Poisson process sinusoidally around a mean
// rate — the day/night load cycle of a production service. Arrivals are
// generated by Lewis-Shedler thinning against the peak rate, so the
// instantaneous rate tracks λ(t) = Mean·(1 + Amplitude·sin(2πt/Period))
// exactly.
type DiurnalWave struct {
	// Mean is the average query rate λ; non-positive uses the run's
	// configured rate.
	Mean float64
	// Amplitude in [0, 1] scales the swing; zero means 0.8.
	Amplitude float64
	// Period is one full wave in seconds; zero fits three waves into
	// the query window.
	Period float64
}

func (w DiurnalWave) Name() string { return "diurnal" }

func (w DiurnalWave) Stream(env TrafficEnv) TrafficStream {
	mean := w.Mean
	if mean <= 0 {
		mean = env.Rate
	}
	amp := w.Amplitude
	if amp <= 0 {
		amp = 0.8
	}
	if amp > 1 {
		amp = 1
	}
	period := w.Period
	if period <= 0 {
		period = env.Duration / 3
	}
	peak := mean * (1 + amp)
	at := env.Start
	end := env.End()
	return streamFunc(func() (QueryEvent, bool) {
		if peak <= 0 || period <= 0 {
			return QueryEvent{}, false
		}
		for {
			at += env.Rand.ExpFloat64() / peak
			if at > end {
				return QueryEvent{}, false
			}
			rate := mean * (1 + amp*math.Sin(2*math.Pi*(at-env.Start)/period))
			if env.Rand.Float64()*peak <= rate {
				return QueryEvent{At: at, Node: env.PickNode(), Key: env.PickKey()}, true
			}
		}
	})
}

// ZipfDrift keeps Poisson arrivals but rotates the Zipf popularity map
// every Shift seconds, so yesterday's hot key cools while a cold one
// heats up — the workload that punishes caches tuned to a static
// ranking. With fewer than two workload keys it degrades to plain
// Poisson traffic.
type ZipfDrift struct {
	// Rate is the query rate λ; non-positive uses the run's configured
	// rate.
	Rate float64
	// Skew is the Zipf exponent (>1 skews harder); zero means 1.2.
	Skew float64
	// Shift is how often the rank→key mapping rotates by one position;
	// zero shifts four times across the query window.
	Shift float64
}

func (z ZipfDrift) Name() string { return "zipf-drift" }

func (z ZipfDrift) Stream(env TrafficEnv) TrafficStream {
	rate := z.Rate
	if rate <= 0 {
		rate = env.Rate
	}
	skew := z.Skew
	if skew <= 1 {
		skew = 1.2
	}
	shift := z.Shift
	if shift <= 0 {
		shift = env.Duration / 4
	}
	var zipf *rand.Zipf
	if len(env.Keys) > 1 {
		zipf = rand.NewZipf(env.Rand, skew, 1, uint64(len(env.Keys)-1))
	}
	at := env.Start
	end := env.End()
	return streamFunc(func() (QueryEvent, bool) {
		if rate <= 0 {
			return QueryEvent{}, false
		}
		at += env.Rand.ExpFloat64() / rate
		if at > end {
			return QueryEvent{}, false
		}
		node := env.PickNode()
		var key overlay.Key
		if zipf == nil {
			key = env.PickKey()
		} else {
			rank := int(zipf.Uint64())
			rot := int((at - env.Start) / shift)
			key = env.Keys[(rank+rot)%len(env.Keys)]
		}
		return QueryEvent{At: at, Node: node, Key: key}, true
	})
}

// ClosedLoop models think-time clients: Clients independent users each
// issue a query, read the answer, think for an exponentially
// distributed pause with mean Think seconds, and repeat across the
// query window. On the live transport each client is a goroutine that
// blocks on its lookup (a true closed loop); on the simulator responses
// resolve in virtual time negligible next to the think time, so the
// stream models each client as a renewal process.
type ClosedLoop struct {
	// Clients is the closed-loop population; zero means 16.
	Clients int
	// Think is the mean think time in seconds; zero means 1.
	Think float64
}

func (c ClosedLoop) Name() string { return "closed-loop" }

// Population returns the defaulted client count and mean think time
// (16 clients, 1 s) — shared by the simulator stream and the live
// per-client pump.
func (c ClosedLoop) Population() (int, float64) {
	clients, think := c.Clients, c.Think
	if clients <= 0 {
		clients = 16
	}
	if think <= 0 {
		think = 1
	}
	return clients, think
}

func (c ClosedLoop) Stream(env TrafficEnv) TrafficStream {
	clients, think := c.Population()
	next := make([]float64, clients)
	for i := range next {
		next[i] = env.Start + env.Rand.ExpFloat64()*think
	}
	end := env.End()
	return streamFunc(func() (QueryEvent, bool) {
		min := 0
		for i := 1; i < len(next); i++ {
			if next[i] < next[min] {
				min = i
			}
		}
		at := next[min]
		if at > end {
			return QueryEvent{}, false
		}
		next[min] = at + env.Rand.ExpFloat64()*think
		return QueryEvent{At: at, Node: env.PickNode(), Key: env.PickKey()}, true
	})
}

// ReplicaAddr synthesizes the address a scripted workload registers for
// replica r — the same scheme on both transports, so scenario runs are
// comparable across them.
func ReplicaAddr(r int) string {
	return fmt.Sprintf("10.%d.%d.%d", r/65536, (r/256)%256, r%256)
}

// KeyPicker returns the run's popularity-map key picker over keys,
// drawing from r: the single key, a Zipf-skewed draw when skew > 0 and
// more than one key exists, uniform otherwise. Every consumer — the
// discrete-event driver, the live scenario runner, per-client
// closed-loop goroutines — builds its picker here, so the popularity
// model cannot drift between transports.
func KeyPicker(r *rand.Rand, keys []overlay.Key, skew float64) func() overlay.Key {
	var zipf *rand.Zipf
	if len(keys) > 1 && skew > 0 {
		if skew <= 1 {
			skew = 1.0000001
		}
		zipf = rand.NewZipf(r, skew, 1, uint64(len(keys)-1))
	}
	return func() overlay.Key {
		switch {
		case len(keys) == 0:
			return ""
		case len(keys) == 1:
			return keys[0]
		case zipf != nil:
			return keys[zipf.Uint64()]
		default:
			return keys[r.Intn(len(keys))]
		}
	}
}
