package cup

import (
	"context"
	"fmt"

	"cup/internal/cache"
	"cup/internal/metrics"
	"cup/internal/overlay"
	"cup/internal/sim"

	// The overlay substrates self-register with the overlay registry;
	// blank imports make every kind buildable via Params.OverlayKind.
	_ "cup/internal/can"
	_ "cup/internal/chord"
	_ "cup/internal/kademlia"
)

// Params configures one simulated run, mirroring the paper's simulator
// inputs (§3.2): "the number of nodes in the overlay peer-to-peer network,
// the number of keys owned per node, the distribution of queries for keys,
// the distribution of query inter-arrival times, the number of replicas per
// key, and the lifetime of replicas".
type Params struct {
	// Nodes is the overlay size (the paper sweeps n = 2^k, k = 3..12).
	Nodes int
	// OverlayKind selects the substrate by its overlay-registry name:
	// "can" (default), "chord", or "kademlia". Any kind registered with
	// overlay.Register is accepted.
	OverlayKind string
	// Keys is the number of distinct keys queried (default 1; the paper's
	// tables report per-key behavior).
	Keys int
	// ZipfSkew skews key popularity when Keys > 1; 0 = uniform.
	ZipfSkew float64
	// Replicas is the number of replicas per key (Table 3 sweeps this).
	Replicas int
	// Lifetime is the replica lifetime (the paper uses 300 s); replicas
	// refresh their index entries exactly at expiration.
	Lifetime sim.Duration
	// HopDelay is the per-hop network latency (used when Latency is nil).
	HopDelay sim.Duration
	// Latency, when set, supplies heterogeneous per-link latencies (see
	// internal/netmodel); it overrides HopDelay for message deliveries.
	Latency LatencyModel
	// QueryRate is the Poisson arrival rate λ of queries for the whole
	// network, in queries per second.
	QueryRate float64
	// QueryStart/QueryDuration bound the querying window; the paper uses
	// 3000 s of querying.
	QueryStart    sim.Duration
	QueryDuration sim.Duration
	// Drain extends the run past the query window so in-flight traffic
	// and tree teardown complete.
	Drain sim.Duration
	// Config is the per-node protocol configuration.
	Config Config
	// RefreshPolicy applies the §3.6 authority-side overhead reductions
	// (refresh suppression and aggregation); zero value propagates every
	// replica refresh as a separate update, as in Table 3.
	RefreshPolicy RefreshPolicy
	// PiggybackClearBits models §2.7's piggybacking: a clear-bit rides
	// free on the next query or update sent to the same neighbor within
	// PiggybackWindow, costing a hop only when sent standalone. The
	// paper's own measurements keep this off ("This somewhat inflates the
	// overhead measure").
	PiggybackClearBits bool
	// PiggybackWindow is how long a clear-bit waits for a carrier before
	// traveling standalone (default 1 s).
	PiggybackWindow sim.Duration
	// Seed drives all randomness; identical Params give identical runs.
	Seed int64
	// Traffic generates the client query workload; nil uses the paper's
	// Poisson generator at QueryRate (bit-identical to the pre-Scenario
	// embedded loop). See traffic.go for the built-in generators.
	Traffic Traffic
	// Faults are scripted interventions (capacity loss, churn) expanded
	// against the transport-agnostic FaultSurface; see scenario.go.
	Faults []Fault
	// Hooks run at fixed virtual times (compatibility surface predating
	// Faults; still the escape hatch for arbitrary interventions).
	Hooks []Hook
	// Observer, when set, receives the protocol event stream (see Event);
	// it is installed on every node and also carries the transport-level
	// membership events emitted by §2.9 churn.
	Observer Observer
	// NoWorkload skips the scripted workload (replica births with
	// refresh-at-expiration loops, Poisson query arrivals): the run starts
	// idle and is driven interactively through PublishReplica and Lookup,
	// exactly like a live network. The façade's client API uses this.
	NoWorkload bool
	// DenseState backs node state with the struct-of-arrays arena
	// (internal/cup.Arena) instead of per-node heap objects: identical
	// behavior, a fraction of the memory and pointer traffic. Implied by
	// Shards > 1; worth setting explicitly for big single-shard runs.
	DenseState bool
	// Shards > 1 partitions the node population into contiguous blocks,
	// each driven by its own event heap under conservative time-window
	// synchronization (lookahead = HopDelay, the minimum link delay).
	// Sharded runs require the homogeneous-delay open-loop subset of the
	// simulator: Latency, Hooks, Faults, NoWorkload, and interactive
	// Lookup are rejected. Output is deterministic for a fixed shard
	// count, but event interleaving — and so float accumulation order —
	// differs from the single-heap schedule.
	Shards int
}

// Hook is a scheduled intervention into a running simulation.
type Hook struct {
	At sim.Time
	Fn func(*Simulation)
}

// LatencyModel yields per-link one-way latencies (internal/netmodel
// implements several; the interface is redeclared here to keep the
// dependency arrow pointing outward).
type LatencyModel interface {
	Delay(from, to overlay.NodeID) sim.Duration
}

// delay returns the latency for one hop.
func (s *Simulation) delay(from, to overlay.NodeID) sim.Duration {
	if s.P.Latency != nil {
		return s.P.Latency.Delay(from, to)
	}
	return s.P.HopDelay
}

// WithDefaults fills unset fields with the paper's parameters from the
// shared defaults table (defaults.go) — the same table the live runtime's
// config defaulting consumes.
func (p Params) WithDefaults() Params {
	if p.Nodes == 0 {
		p.Nodes = DefaultNodes
	}
	if p.OverlayKind == "" {
		p.OverlayKind = DefaultOverlayKind
	}
	if p.Keys == 0 {
		p.Keys = DefaultKeys
	}
	if p.Replicas == 0 {
		p.Replicas = DefaultReplicas
	}
	if p.Lifetime == 0 {
		p.Lifetime = DefaultLifetime
	}
	if p.HopDelay == 0 {
		p.HopDelay = DefaultHopDelay
	}
	if p.QueryRate == 0 {
		p.QueryRate = DefaultQueryRate
	}
	if p.QueryStart == 0 {
		p.QueryStart = p.Lifetime
	}
	if p.QueryDuration == 0 {
		p.QueryDuration = DefaultQueryDuration
	}
	if p.Drain == 0 {
		p.Drain = p.Lifetime
	}
	if p.Config.Policy == nil {
		p.Config = Defaults()
	}
	if p.Seed == 0 {
		p.Seed = DefaultSeed
	}
	return p
}

// Result is the outcome of a run.
type Result struct {
	Params   Params
	Counters metrics.Counters
}

// Simulation is a fully wired discrete-event CUP deployment. Construct
// with NewSimulation, then Run (or drive the scheduler manually for
// fault-injection experiments).
type Simulation struct {
	P Params
	// Sched is the single event heap of an unsharded run; nil when Shd
	// drives the run instead.
	Sched *sim.Scheduler
	// Shd is the sharded scheduler of a Shards > 1 run; nil otherwise.
	Shd    *sim.Sharded
	Rng    *sim.Rand
	Ov     overlay.Overlay
	Router *OverlayRouter
	Nodes  []*Node
	Keys   []overlay.Key
	C      metrics.Counters

	// A backs the nodes when P.DenseState (nil for map-based nodes).
	A *Arena
	// Cs are the per-shard counter slabs of a sharded run, folded into C
	// at the end; each shard's handlers touch only their own slab, so
	// windows run without cross-shard write sharing.
	Cs      []metrics.Counters
	nshards int

	keyPick func() overlay.Key
	// pending/gates/held are indexed by shard (one entry unsharded):
	// every access happens on the owning node's shard by construction —
	// deliveries run on the receiver's shard, timers on the acting
	// node's — so windows touch disjoint maps.
	pending []map[pendKey][]sim.Time
	gates   []map[overlay.NodeID]*refreshGate
	held    []map[linkKey][]*heldClearBit
	lookups map[pendKey][]*lookupWaiter
	endTime sim.Time
	// faultErr is the first scripted-fault failure (an intervention the
	// surface could not honor); RunContext, Settle, and Lookup surface it
	// instead of letting the run pass with the event silently dropped.
	faultErr error
}

// recordFaultErr stores the first fault failure; later ones are noise
// from the same root cause.
func (s *Simulation) recordFaultErr(err error) {
	if s.faultErr == nil {
		s.faultErr = err
	}
}

// FaultError reports the first scripted-fault failure of the run, nil
// when every intervention was honored.
func (s *Simulation) FaultError() error { return s.faultErr }

// shardOf maps a node to its contiguous shard block.
func (s *Simulation) shardOf(n overlay.NodeID) int {
	if s.nshards <= 1 {
		return 0
	}
	return int(uint64(n) * uint64(s.nshards) / uint64(len(s.Nodes)))
}

// Now returns the run's current virtual time; in a sharded run, the
// front of the synchronization window.
func (s *Simulation) Now() sim.Time {
	if s.Shd == nil {
		return s.Sched.Now()
	}
	var max sim.Time
	for i := 0; i < s.nshards; i++ {
		if t := s.Shd.NowOf(i); t > max {
			max = t
		}
	}
	return max
}

// nowAt returns the acting node's clock: its shard's scheduler time.
func (s *Simulation) nowAt(n overlay.NodeID) sim.Time {
	if s.Shd == nil {
		return s.Sched.Now()
	}
	return s.Shd.NowOf(s.shardOf(n))
}

// ctr returns the counter slab node n's handlers account into.
func (s *Simulation) ctr(n overlay.NodeID) *metrics.Counters {
	if s.Shd == nil {
		return &s.C
	}
	return &s.Cs[s.shardOf(n)]
}

// post schedules fn on to's shard after d of from-side delay — the
// message-delivery primitive. Cross-shard sends stage at the window
// barrier; the lookahead contract holds because d ≥ HopDelay.
func (s *Simulation) post(from, to overlay.NodeID, d sim.Duration, fn func()) {
	if s.Shd == nil {
		s.Sched.After(d, fn)
		return
	}
	fs := s.shardOf(from)
	s.Shd.Post(fs, s.shardOf(to), s.Shd.NowOf(fs).Add(d), fn)
}

// postSelf schedules a timer on n's own shard (piggyback windows,
// refresh-gate flushes): never crosses shards, so any delay is legal.
func (s *Simulation) postSelf(n overlay.NodeID, d sim.Duration, fn func()) {
	if s.Shd == nil {
		s.Sched.After(d, fn)
		return
	}
	sh := s.shardOf(n)
	s.Shd.Post(sh, sh, s.Shd.NowOf(sh).Add(d), fn)
}

// atNode schedules fn at absolute time t on n's shard (setup-time
// scheduling: replica births, refresh loops).
func (s *Simulation) atNode(n overlay.NodeID, t sim.Time, fn func()) {
	if s.Shd == nil {
		s.Sched.At(t, fn)
		return
	}
	sh := s.shardOf(n)
	s.Shd.Post(sh, sh, t, fn)
}

// ShardCount reports the number of scheduler shards (1 when unsharded).
func (s *Simulation) ShardCount() int {
	if s.nshards < 1 {
		return 1
	}
	return s.nshards
}

// ShardQueueDepth reports shard i's physical event-queue length — the
// telemetry gauge behind cup_sim_shard_queue_depth.
func (s *Simulation) ShardQueueDepth(i int) int {
	if s.Shd == nil {
		return s.Sched.QueueLen()
	}
	return s.Shd.QueueDepth(i)
}

// EventsExecuted reports the discrete events fired so far, summed across
// shards when sharded.
func (s *Simulation) EventsExecuted() uint64 {
	if s.Shd == nil {
		return s.Sched.Executed
	}
	return s.Shd.Executed()
}

// lookupWaiter captures the answer of one interactive Lookup.
type lookupWaiter struct {
	done    bool
	entries []cache.Entry
}

type linkKey struct {
	from, to overlay.NodeID
}

// heldClearBit is a clear-bit waiting for a carrier message on its link.
type heldClearBit struct {
	key  overlay.Key
	sent bool
}

type pendKey struct {
	node overlay.NodeID
	key  overlay.Key
}

// NewSimulation builds the overlay, nodes, replicas, workload, and hooks.
func NewSimulation(p Params) *Simulation {
	p = p.WithDefaults()
	nsh := p.Shards
	if nsh < 1 {
		nsh = 1
	}
	if nsh > 1 {
		p.DenseState = true
		switch {
		case p.Latency != nil:
			panic("cup: sharded simulation requires homogeneous HopDelay (Latency must be nil: the lookahead is the minimum link delay)")
		case len(p.Hooks) > 0 || len(p.Faults) > 0:
			panic("cup: sharded simulation does not support Hooks or Faults (global interventions break shard isolation)")
		case p.NoWorkload:
			panic("cup: sharded simulation is batch-only (NoWorkload/interactive runs need the single-heap scheduler)")
		case p.HopDelay <= 0:
			panic("cup: sharded simulation requires positive HopDelay")
		}
	}
	s := &Simulation{
		P:       p,
		Rng:     sim.NewRand(p.Seed),
		nshards: nsh,
		pending: make([]map[pendKey][]sim.Time, nsh),
		gates:   make([]map[overlay.NodeID]*refreshGate, nsh),
		held:    make([]map[linkKey][]*heldClearBit, nsh),
		lookups: make(map[pendKey][]*lookupWaiter),
	}
	for i := 0; i < nsh; i++ {
		s.pending[i] = make(map[pendKey][]sim.Time)
		s.gates[i] = make(map[overlay.NodeID]*refreshGate)
		s.held[i] = make(map[linkKey][]*heldClearBit)
	}
	if nsh > 1 {
		s.Shd = sim.NewSharded(nsh, p.HopDelay)
		s.Cs = make([]metrics.Counters, nsh)
	} else {
		s.Sched = sim.NewScheduler()
	}
	if s.P.PiggybackWindow == 0 {
		s.P.PiggybackWindow = DefaultPiggybackWindow
	}
	ov, err := overlay.Build(p.OverlayKind, p.Nodes, OverlaySeed(p.Seed))
	if err != nil {
		panic(fmt.Sprintf("cup: %v", err))
	}
	s.Ov = ov
	s.Router = NewOverlayRouter(s.Ov)
	s.Nodes = make([]*Node, p.Nodes)
	if p.DenseState {
		clock := s.Now
		if s.Sched != nil {
			clock = s.Sched.Now
		}
		s.A = NewArena(p.Nodes, p.Config, s.Router, clock)
		if s.Shd != nil {
			// Each shard's nodes read their own shard's clock.
			for sh := 0; sh < nsh; sh++ {
				lo := (sh*p.Nodes + nsh - 1) / nsh
				hi := ((sh+1)*p.Nodes + nsh - 1) / nsh
				s.A.SetClockRange(lo, hi, s.Shd.Shard(sh).Now)
			}
		}
		if p.Observer != nil {
			s.A.SetObserver(p.Observer)
		}
		for i := range s.Nodes {
			s.Nodes[i] = s.A.Node(i)
		}
	} else {
		for i := range s.Nodes {
			s.Nodes[i] = NewNode(overlay.NodeID(i), p.Config, s.Router, s.Sched.Now)
			s.Nodes[i].SetObserver(p.Observer)
		}
	}
	s.Keys = make([]overlay.Key, p.Keys)
	for i := range s.Keys {
		s.Keys[i] = overlay.Key(fmt.Sprintf("key-%d", i))
	}
	s.keyPick = KeyPicker(s.Rng.Rand, s.Keys, p.ZipfSkew)
	s.endTime = sim.Time(p.QueryStart + p.QueryDuration + p.Drain)

	if !p.NoWorkload {
		// Replica lifecycle: births staggered across one lifetime so
		// refresh waves are not synchronized, then refresh-at-expiration
		// loops. Each birth is scheduled on the authority's shard.
		for ki := range s.Keys {
			auth := s.Ov.Owner(s.Keys[ki])
			for r := 0; r < p.Replicas; r++ {
				birth := sim.Time(sim.Duration(s.Rng.Float64()) * p.Lifetime)
				ki, r := ki, r
				s.atNode(auth, birth, func() { s.AddReplica(s.Keys[ki], r) })
			}
		}

		// Query workload: externally supplied events from the Traffic
		// stream (the paper's Poisson process unless the scenario says
		// otherwise).
		tr := p.Traffic
		if tr == nil {
			tr = PoissonTraffic(p.QueryRate)
		}
		if s.Shd != nil {
			s.preScheduleTraffic(tr)
		} else {
			s.startTraffic(tr)
		}
	}

	for _, h := range p.Hooks {
		h := h
		s.Sched.At(h.At, func() { h.Fn(s) })
	}
	for _, f := range p.Faults {
		name := f.Name()
		for _, ev := range f.Schedule(float64(p.QueryStart), float64(p.QueryDuration)) {
			ev := ev
			s.Sched.At(sim.Time(ev.At), func() { s.applyFault(name, ev) })
		}
	}
	return s
}

// TrafficEnv binds the run's randomness, workload shape, and query
// window into the view a Traffic generator consumes. The env shares the
// simulation's RNG, so generator draws interleave with the rest of the
// schedule deterministically.
func (s *Simulation) TrafficEnv() TrafficEnv {
	return TrafficEnv{
		Rand:     s.Rng.Rand,
		Nodes:    len(s.Nodes),
		Keys:     s.Keys,
		PickNode: s.pickAliveNode,
		PickKey:  s.pickKey,
		ZipfSkew: s.P.ZipfSkew,
		Rate:     s.P.QueryRate,
		Start:    float64(s.P.QueryStart),
		Duration: float64(s.P.QueryDuration),
	}
}

// startTraffic pulls the traffic stream one event ahead of the virtual
// clock: the next arrival is drawn at the previous arrival's instant
// (or at construction for the first), scheduled, and resolved to a
// concrete node and key at delivery.
func (s *Simulation) startTraffic(tr Traffic) {
	st := tr.Stream(s.TrafficEnv())
	var arm func()
	arm = func() {
		ev, ok := st.Next()
		if !ok {
			return
		}
		at := sim.Time(ev.At)
		if at < s.Sched.Now() {
			at = s.Sched.Now() // generators must not schedule into the past
		}
		s.Sched.At(at, func() {
			nid := ev.Node
			if nid == AnyNode || int(nid) < 0 || int(nid) >= len(s.Nodes) || !s.NodeAlive(nid) {
				nid = s.pickAliveNode()
			}
			k := ev.Key
			if k == "" {
				k = s.pickKey()
			}
			s.PostQueryAt(nid, k)
			arm()
		})
	}
	arm()
}

// preScheduleTraffic materializes the whole traffic stream at
// construction for a sharded run: each query event is scheduled on its
// node's shard up front, so no generator state crosses shards mid-run.
// The RNG draw order — next gap, then node/key resolution, per event —
// is exactly the order startTraffic's lazy arming produces, so a sharded
// run consumes the seed identically to the single-heap schedule.
func (s *Simulation) preScheduleTraffic(tr Traffic) {
	const maxPreDrawn = 1 << 27
	st := tr.Stream(s.TrafficEnv())
	prev := sim.Time(0)
	for count := 0; ; count++ {
		if count >= maxPreDrawn {
			panic(fmt.Sprintf("cup: sharded traffic stream exceeded %d events (closed-loop or unbounded generators need the single-heap scheduler)", maxPreDrawn))
		}
		ev, ok := st.Next()
		if !ok {
			return
		}
		at := sim.Time(ev.At)
		if at < prev {
			at = prev // generators must not schedule into the past
		}
		prev = at
		nid := ev.Node
		if nid == AnyNode || int(nid) < 0 || int(nid) >= len(s.Nodes) {
			nid = s.pickAliveNode()
		}
		k := ev.Key
		if k == "" {
			k = s.pickKey()
		}
		s.atNode(nid, at, func() { s.PostQueryAt(nid, k) })
	}
}

// Authority returns the node owning k.
func (s *Simulation) Authority(k overlay.Key) *Node {
	return s.Nodes[s.Ov.Owner(k)]
}

// AddReplica registers replica r for key k at its authority and starts its
// refresh-at-expiration loop. The index entry's birth is announced as an
// Append update (§2.4).
func (s *Simulation) AddReplica(k overlay.Key, r int) {
	auth := s.Authority(k)
	now := s.nowAt(auth.ID())
	e := cache.Entry{
		Key:     k,
		Replica: r,
		Addr:    fmt.Sprintf("10.%d.%d.%d", r/65536, (r/256)%256, r%256),
		Expires: now.Add(s.P.Lifetime),
	}
	auth.InstallLocal(e)
	u := Update{Key: k, Type: Append, Entries: []cache.Entry{e}, Replica: r,
		Expires: e.Expires, Lifetime: s.P.Lifetime}
	s.ctr(auth.ID()).UpdatesOriginated++
	s.dispatch(auth.ID(), auth.OriginateUpdate(u))
	s.scheduleRefresh(k, r, e.Expires)
}

// scheduleRefresh arms the next refresh for (k, r) exactly at expiration,
// per the paper: "refreshes of index entries occur at expiration".
func (s *Simulation) scheduleRefresh(k overlay.Key, r int, at sim.Time) {
	if at >= s.endTime {
		return
	}
	s.atNode(s.Ov.Owner(k), at, func() {
		auth := s.Authority(k)
		if _, ok := auth.LocalDirectory().Get(k, r); !ok {
			return // replica was deleted; stop refreshing
		}
		now := s.nowAt(auth.ID())
		e := cache.Entry{
			Key:     k,
			Replica: r,
			Addr:    fmt.Sprintf("10.%d.%d.%d", r/65536, (r/256)%256, r%256),
			Expires: now.Add(s.P.Lifetime),
		}
		auth.InstallLocal(e)
		s.emitRefresh(auth, k, e)
		s.scheduleRefresh(k, r, e.Expires)
	})
}

// emitRefresh routes a replica refresh through the authority's §3.6
// refresh gate (suppression / aggregation) before origination. With no
// RefreshPolicy configured, every refresh propagates as its own update.
func (s *Simulation) emitRefresh(auth *Node, k overlay.Key, e cache.Entry) {
	if !s.P.RefreshPolicy.enabled() {
		s.originateRefresh(auth, k, []cache.Entry{e})
		return
	}
	gates := s.gates[s.shardOf(auth.ID())]
	g := gates[auth.ID()]
	if g == nil {
		g = newRefreshGate(s.P.RefreshPolicy)
		gates[auth.ID()] = g
	}
	release, flushIn := g.Offer(k, e, s.P.Replicas)
	if flushIn > 0 {
		s.postSelf(auth.ID(), flushIn, func() {
			if batch := g.Flush(k); len(batch) > 0 {
				s.originateRefresh(auth, k, batch)
			}
		})
	}
	if release != nil {
		s.originateRefresh(auth, k, release)
	}
}

// originateRefresh propagates one (possibly batched) refresh update.
func (s *Simulation) originateRefresh(auth *Node, k overlay.Key, entries []cache.Entry) {
	minReplica := entries[0].Replica
	var expires sim.Time
	for _, e := range entries {
		if e.Replica < minReplica {
			minReplica = e.Replica
		}
		if e.Expires > expires {
			expires = e.Expires
		}
	}
	u := Update{Key: k, Type: Refresh, Entries: entries, Replica: minReplica,
		Expires: expires, Lifetime: s.P.Lifetime}
	s.ctr(auth.ID()).UpdatesOriginated++
	s.dispatch(auth.ID(), auth.OriginateUpdate(u))
}

// PublishReplica installs (k, replica) at its authority and propagates
// the event as an update of type ty (Append for births, Refresh for
// re-registrations), mirroring the live runtime's replica registration.
// Unlike AddReplica it does not arm a refresh-at-expiration loop: the
// publisher owns the refresh cadence, exactly as in a live deployment.
func (s *Simulation) PublishReplica(k overlay.Key, replica int, addr string, lifetime sim.Duration, ty UpdateType) {
	auth := s.Authority(k)
	e := cache.Entry{Key: k, Replica: replica, Addr: addr,
		Expires: s.nowAt(auth.ID()).Add(lifetime)}
	auth.InstallLocal(e)
	u := Update{Key: k, Type: ty, Entries: []cache.Entry{e}, Replica: replica,
		Expires: e.Expires, Lifetime: lifetime}
	s.ctr(auth.ID()).UpdatesOriginated++
	s.dispatch(auth.ID(), auth.OriginateUpdate(u))
}

// Lookup posts a client query for k at node nid and drives the scheduler
// until the answer is delivered, returning the index entries — the
// discrete-event counterpart of live.Network.Lookup. Any scripted
// workload advances alongside on the virtual clock.
func (s *Simulation) Lookup(ctx context.Context, nid overlay.NodeID, k overlay.Key) ([]cache.Entry, error) {
	if s.Shd != nil {
		return nil, fmt.Errorf("cup: interactive lookup requires the single-heap scheduler (Shards = 1)")
	}
	if int(nid) < 0 || int(nid) >= len(s.Nodes) || !s.NodeAlive(nid) {
		return nil, fmt.Errorf("cup: lookup at invalid node %v", nid)
	}
	w := &lookupWaiter{}
	pk := pendKey{nid, k}
	s.lookups[pk] = append(s.lookups[pk], w)
	s.PostQueryAt(nid, k)
	for i := 0; !w.done; i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := s.faultErr; err != nil {
			return nil, err
		}
		if !s.Sched.Step() {
			return nil, fmt.Errorf("cup: lookup for %q at %v never resolved (event queue drained)", k, nid)
		}
	}
	return w.entries, nil
}

// Settle drives the scheduler until no events remain — every in-flight
// message delivered, every timer fired — checking ctx periodically. With
// a scripted workload this executes the remainder of the schedule.
func (s *Simulation) Settle(ctx context.Context) error {
	if s.Shd != nil {
		return s.Shd.RunUntil(sim.Infinity, ctx.Err)
	}
	for i := 0; ; i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := s.faultErr; err != nil {
				return err
			}
		}
		if !s.Sched.Step() {
			return s.faultErr
		}
	}
}

// RemoveReplica deletes replica r of key k: the authority removes the
// index entry and propagates a Delete update (§2.4).
func (s *Simulation) RemoveReplica(k overlay.Key, r int) {
	auth := s.Authority(k)
	auth.RemoveLocal(k, r)
	u := Update{
		Key: k, Type: Delete, Replica: r,
		Expires: s.nowAt(auth.ID()).Add(s.P.Lifetime),
	}
	s.ctr(auth.ID()).UpdatesOriginated++
	s.dispatch(auth.ID(), auth.OriginateUpdate(u))
}

// pickAliveNode draws a uniformly random alive node.
func (s *Simulation) pickAliveNode() overlay.NodeID {
	nid := overlay.NodeID(s.Rng.Pick(len(s.Nodes)))
	for !s.NodeAlive(nid) {
		nid = overlay.NodeID(s.Rng.Pick(len(s.Nodes)))
	}
	return nid
}

// PostQueryAt posts a local client query for k at node nid and accounts
// for hit/miss classification.
func (s *Simulation) PostQueryAt(nid overlay.NodeID, k overlay.Key) {
	node := s.Nodes[nid]
	c := s.ctr(nid)
	c.Queries++
	if node.HasFreshAnswer(k) {
		c.Hits++
	} else {
		if node.PendingFirstUpdate(k) {
			c.Coalesced++
		}
		if node.EverHeld(k) {
			c.FreshnessMisses++
		} else {
			c.FirstTimeMisses++
		}
		pk := pendKey{nid, k}
		pend := s.pending[s.shardOf(nid)]
		pend[pk] = append(pend[pk], s.nowAt(nid))
	}
	s.dispatch(nid, node.HandleQuery(LocalClient, k, 0))
}

func (s *Simulation) pickKey() overlay.Key { return s.keyPick() }

// dispatch executes protocol actions emitted by node `from`, scheduling
// message deliveries one hop (HopDelay) later and accounting hop costs per
// the paper's cost model (§3.3): query hops and response hops are miss
// cost; proactive update hops and clear-bit hops are overhead.
func (s *Simulation) dispatch(from overlay.NodeID, acts []Action) {
	for _, a := range acts {
		a := a
		from := from
		switch a.Kind {
		case ActSendQuery:
			s.flushHeldClearBits(from, a.To)
			s.post(from, a.To, s.delay(from, a.To), func() {
				if !s.NodeAlive(a.To) {
					return // departed mid-flight; the client re-queries
				}
				s.ctr(a.To).QueryHops++
				s.dispatch(a.To, s.Nodes[a.To].HandleQuery(from, a.Key, a.QueryID))
			})
		case ActSendUpdate:
			s.flushHeldClearBits(from, a.To)
			s.post(from, a.To, s.delay(from, a.To), func() {
				if !s.NodeAlive(a.To) {
					return
				}
				// Classify by the receiver's state at delivery: an update
				// arriving at a node awaiting a response — or retracing a
				// specific query (standard caching) — is miss cost;
				// anything else is propagation overhead.
				if a.Update.QueryID != 0 || s.Nodes[a.To].PendingFirstUpdate(a.Key) {
					s.ctr(a.To).ResponseHops++
				} else {
					s.ctr(a.To).UpdateHops++
				}
				s.dispatch(a.To, s.Nodes[a.To].HandleUpdate(from, a.Update))
			})
		case ActSendClearBit:
			if s.P.PiggybackClearBits {
				s.holdClearBit(from, a.To, a.Key)
				break
			}
			s.post(from, a.To, s.delay(from, a.To), func() {
				if !s.NodeAlive(a.To) {
					return
				}
				s.ctr(a.To).ClearBitHops++
				s.dispatch(a.To, s.Nodes[a.To].HandleClearBit(from, a.Key))
			})
		case ActDeliverLocal:
			s.deliverLocal(from, a.Key, a.Entries)
		default:
			panic(fmt.Sprintf("cup: unknown action kind %d", a.Kind))
		}
	}
}

// holdClearBit parks a clear-bit on its link waiting for a carrier (§2.7
// piggybacking); if no query or update departs on the link within the
// piggyback window, the clear-bit travels standalone and costs a hop.
func (s *Simulation) holdClearBit(from, to overlay.NodeID, k overlay.Key) {
	cb := &heldClearBit{key: k}
	link := linkKey{from, to}
	held := s.held[s.shardOf(from)]
	held[link] = append(held[link], cb)
	s.postSelf(from, s.P.PiggybackWindow, func() {
		if cb.sent {
			return
		}
		cb.sent = true
		s.post(from, to, s.delay(from, to), func() {
			s.ctr(to).ClearBitHops++
			s.dispatch(to, s.Nodes[to].HandleClearBit(from, k))
		})
	})
}

// flushHeldClearBits lets parked clear-bits ride a departing message on
// the same link: they arrive with the carrier at zero hop cost.
func (s *Simulation) flushHeldClearBits(from, to overlay.NodeID) {
	link := linkKey{from, to}
	held := s.held[s.shardOf(from)]
	bits := held[link]
	if len(bits) == 0 {
		return
	}
	delete(held, link)
	for _, cb := range bits {
		if cb.sent {
			continue
		}
		cb.sent = true
		k := cb.key
		s.ctr(from).PiggybackedClearBits++
		s.post(from, to, s.delay(from, to), func() {
			s.dispatch(to, s.Nodes[to].HandleClearBit(from, k))
		})
	}
}

// deliverLocal resolves the open local client connections at node nid.
func (s *Simulation) deliverLocal(nid overlay.NodeID, k overlay.Key, entries []cache.Entry) {
	pk := pendKey{nid, k}
	now := s.nowAt(nid)
	pend := s.pending[s.shardOf(nid)]
	c := s.ctr(nid)
	for _, t0 := range pend[pk] {
		c.MissLatencyTotal += float64(now.Sub(t0))
		c.MissesServed++
	}
	delete(pend, pk)
	for _, w := range s.lookups[pk] {
		w.done = true
		w.entries = entries
	}
	delete(s.lookups, pk)
}

// SetCapacityFraction applies a reduced outgoing update capacity to a set
// of nodes (fig 5/6 fault injection).
func (s *Simulation) SetCapacityFraction(nodes []overlay.NodeID, c float64) {
	for _, n := range nodes {
		s.Nodes[n].SetCapacity(c)
	}
}

// RandomNodeSample draws k distinct node IDs.
func (s *Simulation) RandomNodeSample(k int) []overlay.NodeID {
	perm := s.Rng.Perm(len(s.Nodes))
	out := make([]overlay.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = overlay.NodeID(perm[i])
	}
	return out
}

// Run executes the whole schedule and returns the aggregated result.
func (s *Simulation) Run() *Result {
	res, err := s.RunContext(context.Background())
	if err != nil {
		panic(fmt.Sprintf("cup: simulation aborted: %v", err))
	}
	return res
}

// RunContext executes the schedule until the configured end time,
// checking ctx between batches of events, and returns the aggregated
// result.
func (s *Simulation) RunContext(ctx context.Context) (*Result, error) {
	if s.Shd != nil {
		if err := s.Shd.RunUntil(s.endTime, func() error { return ctx.Err() }); err != nil {
			return nil, err
		}
		s.foldCounters()
		return &Result{Params: s.P, Counters: s.C}, nil
	}
	const batch = 8192
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.faultErr; err != nil {
			return nil, err
		}
		ran := 0
		for ran < batch && s.Sched.NextTime() <= s.endTime {
			// Enforce the budget exactly: error as soon as an event
			// beyond it is due, so precisely MaxEvents events fire.
			if s.Sched.MaxEvents > 0 && s.Sched.Executed >= s.Sched.MaxEvents {
				return nil, sim.ErrEventBudget
			}
			s.Sched.Step()
			ran++
		}
		if ran < batch {
			break
		}
	}
	if err := s.faultErr; err != nil {
		return nil, err
	}
	s.Sched.AdvanceTo(s.endTime)
	s.foldCounters()
	return &Result{Params: s.P, Counters: s.C}, nil
}

// foldCounters folds per-shard counters (shard order) and per-node
// justification stats (node order) into the aggregate s.C. Updates still
// awaiting their justification window at the end of the run are censored
// observations, not failures; they stay unclassified (callers wanting
// strict accounting may SettleJustification first).
func (s *Simulation) foldCounters() {
	for i := range s.Cs {
		s.C.Add(&s.Cs[i])
		s.Cs[i] = metrics.Counters{}
	}
	for _, n := range s.Nodes {
		st := n.Stats()
		s.C.JustifiedUpdates += st.Justified
		s.C.UnjustifiedUpdates += st.Unjustified
		s.C.ExpiredUpdates += st.Expired
		s.C.UpdatesDropped += st.Dropped
	}
}

// Run builds and runs a simulation in one call.
func Run(p Params) *Result { return NewSimulation(p).Run() }
