package cup

import (
	"fmt"
	"math/rand"
	"sort"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// This file is the fault half of the public Scenario API: scripted
// interventions — capacity loss, node churn, replica churn — expressed
// against a transport-agnostic control surface, so one fault script
// drives both the discrete-event simulator and the live goroutine
// network. A Scenario bundles a Traffic generator with fault scripts;
// WithScenario installs both.

// FaultSurface is the control plane a fault script acts on. Both
// runtimes implement it: the simulator applies interventions in virtual
// time, the live network in wall-clock time. Randomness drawn through
// Rand happens at intervention time, so fault sampling interleaves with
// the rest of the run's randomness exactly as scheduled.
type FaultSurface interface {
	// Size returns the current overlay size.
	Size() int
	// Keys lists the scripted workload's keys.
	Keys() []overlay.Key
	// Replicas returns the configured replicas per workload key.
	Replicas() int
	// Rand is the run's workload RNG.
	Rand() *rand.Rand
	// RandomNodes draws k distinct node IDs.
	RandomNodes(k int) []overlay.NodeID
	// Alive reports whether a node is present in the overlay.
	Alive(id overlay.NodeID) bool
	// Owner returns the authority for key.
	Owner(key overlay.Key) overlay.NodeID
	// SetCapacity applies an outgoing-update capacity fraction to a set
	// of nodes (§3.7); negative restores full capacity.
	SetCapacity(ids []overlay.NodeID, c float64)
	// AddReplica registers replica r of key at its authority (an Append
	// update propagates down the interest tree).
	AddReplica(key overlay.Key, r int)
	// RemoveReplica deletes replica r of key (a Delete update
	// propagates).
	RemoveReplica(key overlay.Key, r int)
	// Join adds one node to the overlay (§2.9). A surface that cannot
	// honor membership changes must return a descriptive error — the run
	// fails rather than silently dropping the scripted event.
	Join() (id overlay.NodeID, err error)
	// Leave removes a node. Unsupported membership or an already-gone
	// node is an error for the same reason.
	Leave(id overlay.NodeID) error
}

// MembershipFault marks fault scripts that require §2.9 membership
// support (Join/Leave) from the surface they run on. Deployment
// construction uses it to reject a membership script on a static
// substrate up front, before any traffic runs.
type MembershipFault interface {
	Fault
	// RequiresMembership reports whether the script will call
	// Join/Leave on its surface.
	RequiresMembership() bool
}

// FaultEvent is one timed intervention into a running deployment.
type FaultEvent struct {
	// At is the intervention instant in seconds since the start of the
	// run (virtual on the simulator, scaled wall-clock on live).
	At float64
	// Do applies the intervention. A non-nil error aborts the run: a
	// fault script that cannot be honored must fail loudly, never no-op.
	Do func(FaultSurface) error
}

// Fault is a scripted fault: Schedule expands it into timed
// interventions for a run whose query window is [start, start+duration]
// seconds.
type Fault interface {
	// Name identifies the script in logs and registries.
	Name() string
	// Schedule expands the script for one run.
	Schedule(start, duration float64) []FaultEvent
}

// Scenario bundles a traffic generator with fault scripts. It is the
// unit the scenario registry hands to cupsim/cupbench and the value
// WithScenario consumes; both transports execute it through the same
// Traffic and FaultSurface contracts.
type Scenario struct {
	// Name identifies the scenario in registries and flags.
	Name string
	// Traffic generates the client query workload; nil keeps the
	// paper-default Poisson generator.
	Traffic Traffic
	// Faults are applied on top of the traffic.
	Faults []Fault
}

// CapacityFault is the §3.7 degraded-capacity experiment: a random
// Fraction of nodes operate at Capacity (a fraction of full outgoing
// update capacity) in scheduled windows. With Recover set the schedule
// is the paper's Up-And-Down (reduce, recover, re-sample, repeat);
// otherwise it is Once-Down-Always-Down. The zero value reproduces the
// paper's timing: 20% of nodes, 5 min warmup, 10 min down, 5 min
// stabilize.
type CapacityFault struct {
	// Fraction of nodes affected each round; zero means 0.20.
	Fraction float64
	// Capacity is the reduced outgoing capacity c in [0, 1].
	Capacity float64
	// Recover selects Up-And-Down cycling; false is
	// Once-Down-Always-Down.
	Recover bool
	// Warmup before the first reduction; zero means 300 s.
	Warmup float64
	// Down is how long each reduction lasts; zero means 600 s.
	Down float64
	// Stabilize separates recovery from the next reduction; zero means
	// 300 s.
	Stabilize float64
}

func (f CapacityFault) Name() string {
	if f.Recover {
		return "capacity-up-and-down"
	}
	return "capacity-once-down"
}

// defaults fills the paper's §3.7 timing.
func (f CapacityFault) defaults() CapacityFault {
	if f.Fraction == 0 {
		f.Fraction = 0.20
	}
	if f.Warmup == 0 {
		f.Warmup = 300
	}
	if f.Down == 0 {
		f.Down = 600
	}
	if f.Stabilize == 0 {
		f.Stabilize = 300
	}
	return f
}

// sample picks the affected nodes at intervention time with the run's
// RNG, so capacity runs stay reproducible.
func (f CapacityFault) sample(s FaultSurface) []overlay.NodeID {
	n := int(f.Fraction * float64(s.Size()))
	if n < 1 {
		n = 1
	}
	return s.RandomNodes(n)
}

func (f CapacityFault) Schedule(start, duration float64) []FaultEvent {
	f = f.defaults()
	end := start + duration
	if !f.Recover {
		return []FaultEvent{{
			At: start + f.Warmup,
			Do: func(s FaultSurface) error { s.SetCapacity(f.sample(s), f.Capacity); return nil },
		}}
	}
	var events []FaultEvent
	cycle := f.Down + f.Stabilize
	for at := start + f.Warmup; at < end; at += cycle {
		var affected []overlay.NodeID
		events = append(events,
			FaultEvent{At: at, Do: func(s FaultSurface) error {
				affected = f.sample(s)
				s.SetCapacity(affected, f.Capacity)
				return nil
			}},
			FaultEvent{At: at + f.Down, Do: func(s FaultSurface) error {
				s.SetCapacity(affected, -1)
				return nil
			}},
		)
	}
	return events
}

// NodeChurn scripts §2.9 membership changes: starting at At, every
// Period a node joins or a random non-authority node departs
// (alternating), Rounds times in total. It requires a churn-capable
// substrate (CAN or Kademlia); on substrates without membership support
// the run fails with a descriptive error — never a silent no-op.
type NodeChurn struct {
	// At is the first intervention in seconds; zero starts one warmup
	// (50 s) into the query window.
	At float64
	// Period separates interventions; zero means 60 s.
	Period float64
	// Rounds is the total number of interventions; zero means 10.
	Rounds int
}

func (c NodeChurn) Name() string { return "node-churn" }

// RequiresMembership marks NodeChurn as a membership script, so
// deployment construction can reject it on static substrates up front.
func (c NodeChurn) RequiresMembership() bool { return true }

func (c NodeChurn) Schedule(start, duration float64) []FaultEvent {
	at, period, rounds := c.At, c.Period, c.Rounds
	if at == 0 {
		at = start + 50
	}
	if period <= 0 {
		period = 60
	}
	if rounds <= 0 {
		rounds = 10
	}
	var events []FaultEvent
	for i := 0; i < rounds; i++ {
		i := i
		events = append(events, FaultEvent{
			At: at + float64(i)*period,
			Do: func(s FaultSurface) error {
				if i%2 == 0 {
					_, err := s.Join()
					return err
				}
				// Depart a random alive node that owns no workload key,
				// so authorities persist (ungraceful authority loss is
				// the hand-over path exercised by the churn tests).
				owners := make(map[overlay.NodeID]bool, len(s.Keys()))
				for _, k := range s.Keys() {
					owners[s.Owner(k)] = true
				}
				for tries := 0; tries < 4*s.Size(); tries++ {
					id := overlay.NodeID(s.Rand().Intn(s.Size()))
					if s.Alive(id) && !owners[id] {
						return s.Leave(id)
					}
				}
				// Every alive node owns a workload key: nothing eligible
				// to depart this round. Not a surface failure.
				return nil
			},
		})
	}
	return events
}

// ReplicaChurn adds and removes replicas of a key over time: every
// Period starting at At, a new replica is added (Append update) and,
// when more than Min remain above the configured baseline, the oldest
// extra replica is deleted (Delete update).
type ReplicaChurn struct {
	// At is the first intervention in seconds; zero starts one warmup
	// (50 s) into the query window.
	At float64
	// Period separates interventions; zero means 60 s.
	Period float64
	// Rounds is the number of add(+remove) rounds; zero means 10.
	Rounds int
	// Min is the minimum replica index kept alive during churn.
	Min int
	// Key is the churned key; empty uses the first workload key.
	Key overlay.Key
}

func (c ReplicaChurn) Name() string { return "replica-churn" }

func (c ReplicaChurn) Schedule(start, duration float64) []FaultEvent {
	at, period, rounds := c.At, c.Period, c.Rounds
	if at == 0 {
		at = start + 50
	}
	if period <= 0 {
		period = 60
	}
	if rounds <= 0 {
		rounds = 10
	}
	var events []FaultEvent
	for i := 0; i < rounds; i++ {
		i := i
		events = append(events, FaultEvent{
			At: at + float64(i)*period,
			Do: func(s FaultSurface) error {
				k := c.Key
				if k == "" {
					if keys := s.Keys(); len(keys) > 0 {
						k = keys[0]
					} else {
						return nil
					}
				}
				next := s.Replicas() + i
				s.AddReplica(k, next)
				if prev := next - 1; prev >= c.Min && prev >= s.Replicas() {
					s.RemoveReplica(k, prev)
				}
				return nil
			},
		})
	}
	return events
}

// SortFaultEvents orders expanded interventions by time, keeping the
// expansion order for simultaneous events. The live fault executor
// replays one merged timeline; the simulator's scheduler orders events
// itself.
func SortFaultEvents(events []FaultEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// simSurface adapts the discrete-event Simulation to FaultSurface.
type simSurface struct{ s *Simulation }

func (a simSurface) Size() int                                   { return len(a.s.Nodes) }
func (a simSurface) Keys() []overlay.Key                         { return a.s.Keys }
func (a simSurface) Replicas() int                               { return a.s.P.Replicas }
func (a simSurface) Rand() *rand.Rand                            { return a.s.Rng.Rand }
func (a simSurface) RandomNodes(k int) []overlay.NodeID          { return a.s.RandomNodeSample(k) }
func (a simSurface) Alive(id overlay.NodeID) bool                { return a.s.NodeAlive(id) }
func (a simSurface) Owner(key overlay.Key) overlay.NodeID        { return a.s.Ov.Owner(key) }
func (a simSurface) SetCapacity(ids []overlay.NodeID, c float64) { a.s.SetCapacityFraction(ids, c) }
func (a simSurface) AddReplica(key overlay.Key, r int)           { a.s.AddReplica(key, r) }
func (a simSurface) RemoveReplica(key overlay.Key, r int)        { a.s.RemoveReplica(key, r) }

func (a simSurface) Join() (overlay.NodeID, error) {
	if !a.s.SupportsChurn() {
		return 0, fmt.Errorf("membership churn unsupported: overlay %q is static", a.s.P.OverlayKind)
	}
	return a.s.JoinNode(), nil
}

func (a simSurface) Leave(id overlay.NodeID) error {
	if !a.s.SupportsChurn() {
		return fmt.Errorf("membership churn unsupported: overlay %q is static", a.s.P.OverlayKind)
	}
	if !a.s.NodeAlive(id) {
		return fmt.Errorf("leave of node %v: not a live member", id)
	}
	a.s.LeaveNode(id)
	return nil
}

// applyFault runs one scripted intervention against the simulation,
// recording a descriptive failure for RunContext/Settle/Lookup to
// surface: fault scripts a transport cannot honor abort the run instead
// of silently doing nothing.
func (s *Simulation) applyFault(name string, ev FaultEvent) {
	if err := ev.Do(simSurface{s}); err != nil {
		s.recordFaultErr(fmt.Errorf("cup: fault %q at t=%gs: %w", name, ev.At, err))
	}
}

// FaultHooks compiles a fault script into simulation Hooks for the
// query window [start, start+duration] — the bridge that lets the
// pre-Scenario Hook surface (Params.Hooks) keep working on top of the
// transport-agnostic fault API.
func FaultHooks(f Fault, start, duration float64) []Hook {
	name := f.Name()
	var hooks []Hook
	for _, ev := range f.Schedule(start, duration) {
		ev := ev
		hooks = append(hooks, Hook{
			At: sim.Time(ev.At),
			Fn: func(s *Simulation) { s.applyFault(name, ev) },
		})
	}
	return hooks
}
