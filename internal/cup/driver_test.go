package cup

import (
	"context"
	"testing"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// smallParams is a fast configuration for integration tests.
func smallParams() Params {
	return Params{
		Nodes:         64,
		QueryRate:     2,
		QueryDuration: 600,
		Seed:          42,
	}
}

func TestSimulationRunsAndConserves(t *testing.T) {
	res := Run(smallParams())
	c := &res.Counters
	if c.Queries == 0 {
		t.Fatal("no queries posted")
	}
	if c.Hits+c.Misses() != c.Queries {
		t.Fatalf("hits %d + misses %d != queries %d", c.Hits, c.Misses(), c.Queries)
	}
	if c.FirstTimeMisses+c.FreshnessMisses != c.Misses() {
		t.Fatalf("miss classification does not add up: %d + %d != %d",
			c.FirstTimeMisses, c.FreshnessMisses, c.Misses())
	}
	if c.TotalCost() != c.MissCost()+c.Overhead() {
		t.Fatal("total cost identity broken")
	}
	if c.MissesServed > c.Misses() {
		t.Fatalf("served %d misses but only %d occurred", c.MissesServed, c.Misses())
	}
}

// The event budget is exact through the driver too: RunContext returns
// ErrEventBudget after firing precisely MaxEvents events (regression for
// the off-by-one that executed MaxEvents+1).
func TestRunContextEventBudgetExact(t *testing.T) {
	s := NewSimulation(smallParams())
	s.Sched.MaxEvents = 100
	_, err := s.RunContext(context.Background())
	if err != sim.ErrEventBudget {
		t.Fatalf("RunContext = %v, want ErrEventBudget", err)
	}
	if s.Sched.Executed != 100 {
		t.Fatalf("Executed = %d, want exactly MaxEvents = 100", s.Sched.Executed)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(smallParams()).Counters
	b := Run(smallParams()).Counters
	if a != b {
		t.Fatalf("identical params diverged:\n%v\n%v", a.String(), b.String())
	}
}

func TestSeedChangesRun(t *testing.T) {
	p := smallParams()
	a := Run(p).Counters
	p.Seed = 43
	b := Run(p).Counters
	if a == b {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestStandardCachingHasZeroOverhead(t *testing.T) {
	p := smallParams()
	p.Config = Standard()
	res := Run(p)
	if res.Counters.Overhead() != 0 {
		t.Fatalf("standard caching overhead = %d, want 0", res.Counters.Overhead())
	}
	if res.Counters.TotalCost() != res.Counters.MissCost() {
		t.Fatal("standard caching total != miss cost")
	}
}

func TestCUPBeatsStandardCachingOnMissCost(t *testing.T) {
	p := smallParams()
	p.Config = Standard()
	std := Run(p)
	p.Config = Defaults()
	cupRes := Run(p)
	if cupRes.Counters.MissCost() >= std.Counters.MissCost() {
		t.Fatalf("CUP miss cost %d not below standard %d",
			cupRes.Counters.MissCost(), std.Counters.MissCost())
	}
}

func TestCUPOverheadIsBounded(t *testing.T) {
	res := Run(smallParams())
	// Sanity: overhead exists but does not dwarf the whole run.
	if res.Counters.Overhead() == 0 {
		t.Fatal("CUP run propagated nothing")
	}
	if res.Counters.Overhead() > 100*res.Counters.MissCost() {
		t.Fatalf("overhead %d wildly exceeds miss cost %d",
			res.Counters.Overhead(), res.Counters.MissCost())
	}
}

func TestChordOverlayWorks(t *testing.T) {
	p := smallParams()
	p.OverlayKind = "chord"
	res := Run(p)
	if res.Counters.Queries == 0 || res.Counters.Hits == 0 {
		t.Fatalf("chord run degenerate: %v", res.Counters.String())
	}
}

func TestUnknownOverlayPanics(t *testing.T) {
	p := smallParams()
	p.OverlayKind = "hypercube"
	defer func() {
		if recover() == nil {
			t.Error("unknown overlay did not panic")
		}
	}()
	NewSimulation(p)
}

func TestMultipleKeysAndZipf(t *testing.T) {
	p := smallParams()
	p.Keys = 8
	p.ZipfSkew = 1.2
	res := Run(p)
	if res.Counters.Queries == 0 {
		t.Fatal("no queries")
	}
}

func TestMultipleReplicas(t *testing.T) {
	p := smallParams()
	p.Replicas = 5
	res := Run(p)
	if res.Counters.UpdatesOriginated == 0 {
		t.Fatal("no updates originated")
	}
	// 5 replicas refresh ~3x as often as the query window is long; there
	// must be strictly more origination than with one replica.
	p1 := smallParams()
	one := Run(p1)
	if res.Counters.UpdatesOriginated <= one.Counters.UpdatesOriginated {
		t.Fatalf("5 replicas originated %d updates, 1 replica %d",
			res.Counters.UpdatesOriginated, one.Counters.UpdatesOriginated)
	}
}

func TestCapacityHookReducesOverhead(t *testing.T) {
	full := Run(smallParams())
	p := smallParams()
	p.Hooks = []Hook{{At: 1, Fn: func(s *Simulation) {
		all := make([]overlay.NodeID, len(s.Nodes))
		for i := range all {
			all[i] = overlay.NodeID(i)
		}
		s.SetCapacityFraction(all, 0)
	}}}
	res := Run(p)
	if res.Counters.UpdateHops >= full.Counters.UpdateHops {
		t.Fatalf("zero capacity did not reduce update hops: %d vs %d",
			res.Counters.UpdateHops, full.Counters.UpdateHops)
	}
	// With all capacity gone, CUP degrades toward standard caching but
	// must still answer every query (responses are exempt).
	if res.Counters.MissesServed == 0 {
		t.Fatal("no misses served under zero capacity")
	}
}

func TestRemoveReplicaStopsRefreshes(t *testing.T) {
	p := smallParams()
	p.Hooks = []Hook{{At: 400, Fn: func(s *Simulation) {
		s.RemoveReplica(s.Keys[0], 0)
	}}}
	res := Run(p)
	// After deletion at t=400 no refreshes for the single replica should
	// originate; with one key and one replica the count is bounded by the
	// refreshes before t=400 plus birth and the delete itself.
	if res.Counters.UpdatesOriginated > 4 {
		t.Fatalf("refreshes continued after delete: %d originated",
			res.Counters.UpdatesOriginated)
	}
}

func TestPostQueryAtSpecificNode(t *testing.T) {
	p := smallParams()
	p.QueryRate = 0.0001 // effectively no background queries
	s := NewSimulation(p)
	s.Sched.At(400, func() { s.PostQueryAt(7, s.Keys[0]) })
	res := s.Run()
	if res.Counters.Queries == 0 {
		t.Fatal("posted query not counted")
	}
}

func TestJustifiedFractionGrowsWithQueryRate(t *testing.T) {
	lo := smallParams()
	lo.QueryRate = 0.05
	hi := smallParams()
	hi.QueryRate = 20
	fLo := Run(lo).Counters.JustifiedFraction()
	fHi := Run(hi).Counters.JustifiedFraction()
	if fHi <= fLo {
		t.Fatalf("justified fraction did not grow with rate: %.3f vs %.3f", fLo, fHi)
	}
}

func TestRandomNodeSampleDistinct(t *testing.T) {
	s := NewSimulation(smallParams())
	got := s.RandomNodeSample(10)
	seen := map[overlay.NodeID]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatalf("duplicate node %v in sample", n)
		}
		seen[n] = true
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Nodes != 1024 || p.Lifetime != 300 || p.QueryDuration != 3000 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if p.Config.Policy == nil {
		t.Fatal("default policy missing")
	}
}
