package policy

import (
	"testing"
	"testing/quick"
)

func TestAlwaysKeep(t *testing.T) {
	p := AlwaysKeep().New()
	for d := 0; d < 50; d++ {
		if !p.Keep(0, d) {
			t.Fatalf("AlwaysKeep cut at dist %d", d)
		}
	}
}

func TestNeverKeep(t *testing.T) {
	p := NeverKeep().New()
	if p.Keep(1000, 1) {
		t.Fatal("NeverKeep kept")
	}
}

func TestPushLevel(t *testing.T) {
	p := PushLevel(5).New()
	for d := 0; d <= 5; d++ {
		if !p.Keep(0, d) {
			t.Fatalf("PushLevel(5) cut at dist %d", d)
		}
	}
	for d := 6; d < 20; d++ {
		if p.Keep(100, d) {
			t.Fatalf("PushLevel(5) kept at dist %d", d)
		}
	}
}

func TestLinearThreshold(t *testing.T) {
	p := Linear(0.5).New()
	// At distance 10, threshold is 5 queries.
	if p.Keep(4, 10) {
		t.Fatal("kept below threshold")
	}
	if !p.Keep(5, 10) {
		t.Fatal("cut at threshold")
	}
	if !p.Keep(6, 10) {
		t.Fatal("cut above threshold")
	}
}

func TestLinearZeroAlphaAlwaysKeeps(t *testing.T) {
	p := Linear(0).New()
	if !p.Keep(0, 100) {
		t.Fatal("Linear(0) cut")
	}
}

func TestLinearNegativeAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linear(-1) did not panic")
		}
	}()
	Linear(-1)
}

func TestLogarithmicThreshold(t *testing.T) {
	p := Logarithmic(2).New()
	// At distance 4, threshold is 2*log2(4) = 4 queries.
	if p.Keep(3, 4) {
		t.Fatal("kept below threshold")
	}
	if !p.Keep(4, 4) {
		t.Fatal("cut at threshold")
	}
	// At distance 1, log2(1)=0 so always keep.
	if !p.Keep(0, 1) {
		t.Fatal("cut at distance 1")
	}
	// Distance 0 (authority itself) always keeps.
	if !p.Keep(0, 0) {
		t.Fatal("cut at distance 0")
	}
}

func TestLogarithmicMoreLenientThanLinear(t *testing.T) {
	// The paper notes the log threshold grows slower than the linear one,
	// so for equal α and D ≥ 2 whenever log cuts, linear must cut too.
	lin := Linear(0.5)
	log := Logarithmic(0.5)
	f := func(qRaw, dRaw uint8) bool {
		q, d := int(qRaw), int(dRaw%60)+2
		li, lo := lin.New().Keep(q, d), log.New().Keep(q, d)
		return !(!lo && li) || lo == li // log cut ⇒ linear cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondChanceGivesOneGrace(t *testing.T) {
	p := SecondChance().New()
	if !p.Keep(0, 5) {
		t.Fatal("cut on first idle update (no second chance)")
	}
	if p.Keep(0, 5) {
		t.Fatal("kept on second consecutive idle update")
	}
}

func TestSecondChanceResetsOnQueries(t *testing.T) {
	p := SecondChance().New()
	if !p.Keep(0, 5) {
		t.Fatal("cut on first idle")
	}
	if !p.Keep(3, 5) {
		t.Fatal("cut despite queries")
	}
	// Streak was reset; one idle update is tolerated again.
	if !p.Keep(0, 5) {
		t.Fatal("cut on first idle after reset")
	}
	if p.Keep(0, 5) {
		t.Fatal("kept on second idle after reset")
	}
}

func TestSecondChanceIgnoresDistance(t *testing.T) {
	a, b := SecondChance().New(), SecondChance().New()
	for i := 0; i < 5; i++ {
		if a.Keep(1, 1) != b.Keep(1, 1000) {
			t.Fatal("second-chance decision depended on distance")
		}
	}
}

func TestSecondChanceInstancesIndependent(t *testing.T) {
	pol := SecondChance()
	a, b := pol.New(), pol.New()
	a.Keep(0, 1) // a has one idle
	if !b.Keep(0, 1) {
		t.Fatal("instance b inherited instance a's idle streak")
	}
}

func TestWindowedIdle(t *testing.T) {
	p := WindowedIdle(3).New()
	if !p.Keep(0, 1) || !p.Keep(0, 1) {
		t.Fatal("cut before window exhausted")
	}
	if p.Keep(0, 1) {
		t.Fatal("kept after 3 consecutive idle updates")
	}
}

func TestWindowedIdleOneIsImmediate(t *testing.T) {
	p := WindowedIdle(1).New()
	if p.Keep(0, 1) {
		t.Fatal("WindowedIdle(1) tolerated an idle update")
	}
}

func TestWindowedIdleInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WindowedIdle(0) did not panic")
		}
	}()
	WindowedIdle(0)
}

func TestNames(t *testing.T) {
	cases := map[string]Policy{
		"always":           AlwaysKeep(),
		"never":            NeverKeep(),
		"second-chance":    SecondChance(),
		"push-level(7)":    PushLevel(7),
		"linear(α=0.25)":   Linear(0.25),
		"log(α=0.1)":       Logarithmic(0.1),
		"windowed-idle(4)": WindowedIdle(4),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

// Property: popularity monotonicity — for every policy, if Keep(q, d) is
// true then Keep(q', d) with q' > q is also true on a fresh instance.
func TestPropertyMonotoneInPopularity(t *testing.T) {
	policies := []Policy{AlwaysKeep(), NeverKeep(), PushLevel(5), Linear(0.3), Logarithmic(0.4), SecondChance(), WindowedIdle(2)}
	f := func(qRaw uint8, dRaw uint8) bool {
		q, d := int(qRaw), int(dRaw)
		for _, p := range policies {
			if p.New().Keep(q, d) && !p.New().Keep(q+1, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
