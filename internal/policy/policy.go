// Package policy implements the incentive-based cut-off policies of CUP
// (§3.4 of the paper). On each update arrival for a key with no downstream
// interest, a node consults its policy to decide whether the key's
// popularity — the number of queries received since the last update —
// justifies continuing to receive updates. If not, the node sends a
// Clear-Bit message upstream and its incoming supply of updates stops.
//
// The paper compares probability-based thresholds (linear and logarithmic
// in the node's distance from the authority) against the log-based
// second-chance policy, and finds second-chance consistently best because
// it adapts to query timing rather than topology.
package policy

import (
	"fmt"
	"math"
)

// Instance is the per-(node, key) policy state. Keep is consulted on each
// update arrival that triggers a cut-off decision; queries is the key's
// popularity measure (queries received since the previous triggering
// update) and dist is the node's distance in hops from the authority node.
// Keep returns false to cut off the update supply. Instances may be
// stateful (second-chance counts consecutive idle updates).
type Instance interface {
	Keep(queries, dist int) bool
}

// Policy creates per-key instances and names itself for reports.
type Policy interface {
	Name() string
	New() Instance
}

// stateless adapts a pure decision function into a Policy+Instance.
type stateless struct {
	name string
	keep func(queries, dist int) bool
}

func (s stateless) Name() string       { return s.name }
func (s stateless) New() Instance      { return s }
func (s stateless) Keep(q, d int) bool { return s.keep(q, d) }

// AlwaysKeep never cuts off updates — the paper's "all-out push" strategy
// (§3.1), which minimizes latency at maximum overhead. Used with a push
// level to generate Figures 3 and 4.
func AlwaysKeep() Policy {
	return stateless{"always", func(int, int) bool { return true }}
}

// NeverKeep cuts on the first opportunity; downstream of the authority
// this degenerates CUP to near-standard caching.
func NeverKeep() Policy {
	return stateless{"never", func(int, int) bool { return false }}
}

// PushLevel keeps updates only within p hops of the authority. This is the
// receiver-side expression of the paper's push level (§3.3); the sender-side
// cap lives in the protocol config.
func PushLevel(p int) Policy {
	return stateless{fmt.Sprintf("push-level(%d)", p), func(_, d int) bool { return d <= p }}
}

// Linear keeps a key when at least α·D queries arrived since the last
// update, D being the node's distance from the authority (§3.4). Larger α
// demands more popularity and cuts sooner.
func Linear(alpha float64) Policy {
	if alpha < 0 {
		panic("policy: Linear requires alpha >= 0")
	}
	return stateless{fmt.Sprintf("linear(α=%g)", alpha), func(q, d int) bool {
		return float64(q) >= alpha*float64(d)
	}}
}

// Logarithmic keeps a key when at least α·lg(D) queries arrived since the
// last update. More lenient than Linear: the threshold grows slowly with
// distance from the root (§3.4).
func Logarithmic(alpha float64) Policy {
	if alpha < 0 {
		panic("policy: Logarithmic requires alpha >= 0")
	}
	return stateless{fmt.Sprintf("log(α=%g)", alpha), func(q, d int) bool {
		if d < 1 {
			return true
		}
		return float64(q) >= alpha*math.Log2(float64(d))
	}}
}

// SecondChance is the paper's log-based policy over the last n=3 update
// arrivals: when an update arrives and no queries have been received since
// the previous update, the key gets a "second chance"; if the next update
// also finds zero queries, the node cuts off. Two consecutive idle updates
// cost two hops — exactly the cost of the one query miss they would have
// saved — so the policy cuts precisely when updates stop paying for
// themselves.
func SecondChance() Policy { return secondChance{} }

type secondChance struct{}

func (secondChance) Name() string  { return "second-chance" }
func (secondChance) New() Instance { return &secondChanceInstance{} }

type secondChanceInstance struct {
	idleUpdates int // consecutive updates that found zero queries
}

func (s *secondChanceInstance) Keep(queries, _ int) bool {
	if queries > 0 {
		s.idleUpdates = 0
		return true
	}
	s.idleUpdates++
	return s.idleUpdates < 2
}

// WindowedIdle generalizes second-chance to cut after n consecutive idle
// updates (n = 2 is second-chance). Exposed for the policy-sensitivity
// ablation.
func WindowedIdle(n int) Policy {
	if n < 1 {
		panic("policy: WindowedIdle requires n >= 1")
	}
	return windowedIdle{n}
}

type windowedIdle struct{ n int }

func (w windowedIdle) Name() string  { return fmt.Sprintf("windowed-idle(%d)", w.n) }
func (w windowedIdle) New() Instance { return &windowedIdleInstance{limit: w.n} }

type windowedIdleInstance struct {
	limit int
	idle  int
}

func (w *windowedIdleInstance) Keep(queries, _ int) bool {
	if queries > 0 {
		w.idle = 0
		return true
	}
	w.idle++
	return w.idle < w.limit
}
