package live

import (
	"fmt"

	"cup/internal/overlay"
)

// buildOverlay constructs the routing substrate for a live network from
// the overlay registry (the substrates self-register; internal/cup, which
// this package always imports, links every kind in). An unknown kind
// panics with the registered kinds listed.
func buildOverlay(kind string, n int, seed int64) overlay.Overlay {
	ov, err := overlay.Build(kind, n, seed)
	if err != nil {
		panic(fmt.Sprintf("live: %v", err))
	}
	return ov
}
