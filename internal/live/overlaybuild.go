package live

import (
	"cup/internal/can"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// canBuild constructs the CAN substrate for a live network. Kept in its
// own function so alternative substrates (chord.Build) can be swapped in
// by tests.
func canBuild(n int, seed int64) overlay.Overlay {
	return can.Build(n, sim.NewRand(seed))
}
