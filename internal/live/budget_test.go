package live

import (
	"context"
	"testing"
	"time"

	"cup/internal/cup"
)

func TestTrialInboxDepthCarving(t *testing.T) {
	cases := []struct {
		base, concurrent, want int
	}{
		{1024, 1, 1024},
		{1024, 4, 256},
		{1024, 32, MinInboxDepth}, // 32 shares would undercut the floor
		{0, 2, cup.DefaultInboxDepth / 2},
		{128, 0, 128},
		{100, 3, MinInboxDepth}, // 33 < floor
	}
	for _, c := range cases {
		if got := TrialInboxDepth(c.base, c.concurrent); got != c.want {
			t.Errorf("TrialInboxDepth(%d, %d) = %d, want %d", c.base, c.concurrent, got, c.want)
		}
	}
}

func TestPortBudgetAccounting(t *testing.T) {
	before := PortsInUse()
	if err := acquirePorts(16); err != nil {
		t.Fatal(err)
	}
	if got := PortsInUse(); got != before+16 {
		t.Fatalf("PortsInUse = %d after acquire, want %d", got, before+16)
	}
	if err := acquirePorts(DefaultPortBudget); err == nil {
		releasePorts(DefaultPortBudget)
		t.Fatal("overcommitting the port budget did not fail")
	}
	releasePorts(16)
	if got := PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after release, want %d", got, before)
	}
}

func TestTCPNetworkHoldsAndReleasesPortBudget(t *testing.T) {
	before := PortsInUse()
	tn, err := NewTCPNetwork(Config{Nodes: 4, Seed: 1, Node: cup.Defaults()})
	if err != nil {
		t.Fatal(err)
	}
	if got := PortsInUse(); got != before+4 {
		t.Fatalf("PortsInUse = %d with a 4-peer network up, want %d", got, before+4)
	}
	tn.Close()
	if got := PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after Close, want %d", got, before)
	}
}

func TestRefreshBudgetPacing(t *testing.T) {
	SetRefreshBudget(200) // 5ms slots
	t.Cleanup(func() { SetRefreshBudget(0) })
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := PaceRefresh(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// First departs immediately; the next four wait one 5ms slot each.
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("5 refreshes at 200/s finished in %v; budget not enforced", d)
	}
	paced, waited := RefreshPacingStats()
	if paced == 0 || waited == 0 {
		t.Fatalf("pacing stats empty after throttled refreshes: paced=%d waited=%v", paced, waited)
	}
}

func TestRefreshBudgetSetAndRestore(t *testing.T) {
	if got := SetRefreshBudget(123); got != 123 {
		t.Fatalf("SetRefreshBudget(123) = %v", got)
	}
	if got := RefreshBudget(); got != 123 {
		t.Fatalf("RefreshBudget = %v, want 123", got)
	}
	if got := SetRefreshBudget(0); got != DefaultRefreshBudget {
		t.Fatalf("SetRefreshBudget(0) = %v, want default %v", got, DefaultRefreshBudget)
	}
}

func TestPaceRefreshHonorsCancellation(t *testing.T) {
	SetRefreshBudget(1) // 1/s: the second refresh would wait ~1s
	t.Cleanup(func() { SetRefreshBudget(0) })
	if err := PaceRefresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := PaceRefresh(ctx); err == nil {
		t.Fatal("PaceRefresh outlived its context")
	}
}
