package live

import (
	"testing"

	"cup/internal/cup"
)

func TestTrialInboxDepthCarving(t *testing.T) {
	cases := []struct {
		base, concurrent, want int
	}{
		{1024, 1, 1024},
		{1024, 4, 256},
		{1024, 32, MinInboxDepth}, // 32 shares would undercut the floor
		{0, 2, cup.DefaultInboxDepth / 2},
		{128, 0, 128},
		{100, 3, MinInboxDepth}, // 33 < floor
	}
	for _, c := range cases {
		if got := TrialInboxDepth(c.base, c.concurrent); got != c.want {
			t.Errorf("TrialInboxDepth(%d, %d) = %d, want %d", c.base, c.concurrent, got, c.want)
		}
	}
}

func TestPortBudgetAccounting(t *testing.T) {
	before := PortsInUse()
	if err := acquirePorts(16); err != nil {
		t.Fatal(err)
	}
	if got := PortsInUse(); got != before+16 {
		t.Fatalf("PortsInUse = %d after acquire, want %d", got, before+16)
	}
	if err := acquirePorts(DefaultPortBudget); err == nil {
		releasePorts(DefaultPortBudget)
		t.Fatal("overcommitting the port budget did not fail")
	}
	releasePorts(16)
	if got := PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after release, want %d", got, before)
	}
}

func TestTCPNetworkHoldsAndReleasesPortBudget(t *testing.T) {
	before := PortsInUse()
	tn, err := NewTCPNetwork(4, 1, cup.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if got := PortsInUse(); got != before+4 {
		t.Fatalf("PortsInUse = %d with a 4-peer network up, want %d", got, before+4)
	}
	tn.Close()
	if got := PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after Close, want %d", got, before)
	}
}
