// Scenario execution on the live transport: a wall-clock traffic pump
// replaying cup.Traffic streams, a goroutine-per-client closed loop,
// and the live implementation of cup.FaultSurface — the same Scenario
// values the discrete-event driver consumes, honoring context
// cancellation throughout.
package live

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"cup/internal/cup"
	"cup/internal/overlay"
)

// sleep waits d, returning early (false) on ctx cancellation or network
// close.
func (n *Network) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	case <-n.closed:
		return false
	}
}

// wall converts scenario seconds into wall-clock time under the given
// compression factor (timeScale virtual seconds replayed per wall
// second).
func wall(seconds, timeScale float64) time.Duration {
	if timeScale <= 0 {
		timeScale = 1
	}
	return time.Duration(seconds / timeScale * float64(time.Second))
}

// PumpTraffic replays a Traffic stream in wall-clock time: each
// inter-arrival gap is slept (compressed by timeScale) and the arrival
// becomes one client lookup at the event's node. Lookups are issued
// asynchronously — an open loop, like the simulator's — except for
// cup.ClosedLoop generators, which run one blocking request loop per
// client. PumpTraffic returns when the stream ends, ctx cancels, or the
// network closes.
func (n *Network) PumpTraffic(ctx context.Context, tr cup.Traffic, env cup.TrafficEnv, timeScale float64) error {
	if cl, ok := tr.(cup.ClosedLoop); ok {
		return n.pumpClosedLoop(ctx, cl, env, timeScale)
	}
	st := tr.Stream(env)
	var wg sync.WaitGroup
	defer wg.Wait()
	prev := 0.0
	for {
		ev, ok := st.Next()
		if !ok {
			return nil
		}
		if ev.At > prev {
			if !n.sleep(ctx, wall(ev.At-prev, timeScale)) {
				return ctx.Err()
			}
			prev = ev.At
		}
		nid := ev.Node
		if nid == cup.AnyNode || int(nid) < 0 || int(nid) >= n.Size() {
			nid = env.PickNode()
		}
		key := ev.Key
		if key == "" {
			key = env.PickKey()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = n.Lookup(ctx, nid, key)
		}()
	}
}

// pumpClosedLoop runs one goroutine per closed-loop client: look up,
// read the answer, think, repeat — a true closed loop in which slow
// answers throttle the offered load. Each client owns a derived RNG so
// the population is deterministic given the stream seed.
func (n *Network) pumpClosedLoop(ctx context.Context, cl cup.ClosedLoop, env cup.TrafficEnv, timeScale float64) error {
	clients, think := cl.Population()
	if !n.sleep(ctx, wall(env.Start, timeScale)) {
		return ctx.Err()
	}
	window, cancel := context.WithTimeout(ctx, wall(env.Duration, timeScale))
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		// Each client owns a derived RNG and its own popularity-map
		// picker: env.Rand (and env.PickKey) are not safe for
		// concurrent draws.
		rng := rand.New(rand.NewSource(env.Rand.Int63()))
		pickKey := cup.KeyPicker(rng, env.Keys, env.ZipfSkew)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if window.Err() != nil {
					return
				}
				at := overlay.NodeID(rng.Intn(n.Size()))
				_, _ = n.Lookup(window, at, pickKey())
				if !n.sleep(window, wall(rng.ExpFloat64()*think, timeScale)) {
					return
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// RunFaults replays fault scripts against the live network: every
// script is expanded over the query window, the interventions merged
// into one timeline, and each applied at its (compressed) wall-clock
// instant. It returns when the timeline is exhausted, ctx cancels, or
// the network closes.
func (n *Network) RunFaults(ctx context.Context, faults []cup.Fault, surf cup.FaultSurface, start, duration, timeScale float64) error {
	var events []cup.FaultEvent
	for _, f := range faults {
		events = append(events, f.Schedule(start, duration)...)
	}
	cup.SortFaultEvents(events)
	prev := 0.0
	for _, ev := range events {
		if ev.At > prev {
			if !n.sleep(ctx, wall(ev.At-prev, timeScale)) {
				return ctx.Err()
			}
			prev = ev.At
		}
		ev.Do(surf)
	}
	return nil
}

// FaultSurface builds the live implementation of cup.FaultSurface.
// Capacity interventions and replica churn act on the running network;
// membership churn (Join/Leave) is simulator-only today and reports
// unsupported.
func (n *Network) FaultSurface(keys []overlay.Key, replicas int, lifetime time.Duration, rng *rand.Rand) cup.FaultSurface {
	return &liveSurface{n: n, keys: keys, replicas: replicas, lifetime: lifetime, rng: rng}
}

type liveSurface struct {
	n        *Network
	keys     []overlay.Key
	replicas int
	lifetime time.Duration
	rng      *rand.Rand
}

func (s *liveSurface) Size() int                            { return s.n.Size() }
func (s *liveSurface) Keys() []overlay.Key                  { return s.keys }
func (s *liveSurface) Replicas() int                        { return s.replicas }
func (s *liveSurface) Rand() *rand.Rand                     { return s.rng }
func (s *liveSurface) Alive(id overlay.NodeID) bool         { return int(id) >= 0 && int(id) < s.n.Size() }
func (s *liveSurface) Owner(key overlay.Key) overlay.NodeID { return s.n.Authority(key) }
func (s *liveSurface) Join() (overlay.NodeID, bool)         { return 0, false }
func (s *liveSurface) Leave(overlay.NodeID) bool            { return false }

func (s *liveSurface) RandomNodes(k int) []overlay.NodeID {
	perm := s.rng.Perm(s.n.Size())
	if k > len(perm) {
		k = len(perm)
	}
	out := make([]overlay.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = overlay.NodeID(perm[i])
	}
	return out
}

func (s *liveSurface) SetCapacity(ids []overlay.NodeID, c float64) {
	for _, id := range ids {
		s.n.SetCapacity(id, c)
	}
}

func (s *liveSurface) AddReplica(key overlay.Key, r int) {
	s.n.AddReplica(key, r, cup.ReplicaAddr(r), s.lifetime)
}

func (s *liveSurface) RemoveReplica(key overlay.Key, r int) {
	s.n.RemoveReplica(key, r)
}
