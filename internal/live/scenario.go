// Scenario execution on the live transports: a wall-clock traffic pump
// replaying cup.Traffic streams, a goroutine-per-client closed loop,
// and the live implementation of cup.FaultSurface — the same Scenario
// values the discrete-event driver consumes, honoring context
// cancellation throughout. Everything here is written against the
// endpoint interface, so the goroutine and TCP networks share one
// scenario engine.
package live

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
)

// endpoint is the client surface the scenario engine drives: lookups,
// replica lifecycle, capacity control, and §2.9 membership churn. Both
// *Network and *TCPNetwork implement it.
type endpoint interface {
	Size() int
	IsAlive(id overlay.NodeID) bool
	Authority(key overlay.Key) overlay.NodeID
	Lookup(ctx context.Context, id overlay.NodeID, key overlay.Key) ([]cache.Entry, error)
	AddReplica(key overlay.Key, replica int, addr string, lifetime time.Duration)
	RemoveReplica(key overlay.Key, replica int)
	SetCapacity(id overlay.NodeID, c float64)
	Join(ctx context.Context) (overlay.NodeID, error)
	Leave(ctx context.Context, id overlay.NodeID) error
	// Done closes when the network shuts down.
	Done() <-chan struct{}
}

// Done exposes the shutdown channel (closes when Close is called).
func (n *Network) Done() <-chan struct{} { return n.closed }

// sleepUntil waits d, returning early (false) on ctx cancellation or
// endpoint shutdown.
func sleepUntil(ctx context.Context, done <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	case <-done:
		return false
	}
}

// sleep waits d, returning early (false) on ctx cancellation or network
// close.
func (n *Network) sleep(ctx context.Context, d time.Duration) bool {
	return sleepUntil(ctx, n.closed, d)
}

// wall converts scenario seconds into wall-clock time under the given
// compression factor (timeScale virtual seconds replayed per wall
// second).
func wall(seconds, timeScale float64) time.Duration {
	if timeScale <= 0 {
		timeScale = 1
	}
	return time.Duration(seconds / timeScale * float64(time.Second))
}

// pickAlive redraws until the picked slot is a live member — under
// churn, dense IDs include departed peers. Bounded so a pathological
// population (everyone mid-departure) cannot spin forever.
func pickAlive(ep endpoint, pick func() overlay.NodeID) overlay.NodeID {
	for tries, limit := 0, 4*ep.Size()+8; tries < limit; tries++ {
		if id := pick(); ep.IsAlive(id) {
			return id
		}
	}
	return overlay.NoNode
}

// PumpTraffic replays a Traffic stream in wall-clock time: each
// inter-arrival gap is slept (compressed by timeScale) and the arrival
// becomes one client lookup at the event's node. Lookups are issued
// asynchronously — an open loop, like the simulator's — except for
// cup.ClosedLoop generators, which run one blocking request loop per
// client. PumpTraffic returns when the stream ends, ctx cancels, or the
// network closes.
func (n *Network) PumpTraffic(ctx context.Context, tr cup.Traffic, env cup.TrafficEnv, timeScale float64) error {
	return pumpTraffic(ctx, n, tr, env, timeScale)
}

func pumpTraffic(ctx context.Context, ep endpoint, tr cup.Traffic, env cup.TrafficEnv, timeScale float64) error {
	if cl, ok := tr.(cup.ClosedLoop); ok {
		return pumpClosedLoop(ctx, ep, cl, env, timeScale)
	}
	st := tr.Stream(env)
	var wg sync.WaitGroup
	defer wg.Wait()
	prev := 0.0
	for {
		ev, ok := st.Next()
		if !ok {
			return nil
		}
		if ev.At > prev {
			if !sleepUntil(ctx, ep.Done(), wall(ev.At-prev, timeScale)) {
				return ctx.Err()
			}
			prev = ev.At
		}
		nid := ev.Node
		if nid == cup.AnyNode || int(nid) < 0 || int(nid) >= ep.Size() || !ep.IsAlive(nid) {
			nid = pickAlive(ep, env.PickNode)
		}
		if nid == overlay.NoNode {
			continue
		}
		key := ev.Key
		if key == "" {
			key = env.PickKey()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = ep.Lookup(ctx, nid, key)
		}()
	}
}

// pumpClosedLoop runs one goroutine per closed-loop client: look up,
// read the answer, think, repeat — a true closed loop in which slow
// answers throttle the offered load. Each client owns a derived RNG so
// the population is deterministic given the stream seed.
func pumpClosedLoop(ctx context.Context, ep endpoint, cl cup.ClosedLoop, env cup.TrafficEnv, timeScale float64) error {
	clients, think := cl.Population()
	if !sleepUntil(ctx, ep.Done(), wall(env.Start, timeScale)) {
		return ctx.Err()
	}
	window, cancel := context.WithTimeout(ctx, wall(env.Duration, timeScale))
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		// Each client owns a derived RNG and its own popularity-map
		// picker: env.Rand (and env.PickKey) are not safe for
		// concurrent draws.
		rng := rand.New(rand.NewSource(env.Rand.Int63()))
		pickKey := cup.KeyPicker(rng, env.Keys, env.ZipfSkew)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if window.Err() != nil {
					return
				}
				at := pickAlive(ep, func() overlay.NodeID {
					return overlay.NodeID(rng.Intn(ep.Size()))
				})
				if at != overlay.NoNode {
					_, _ = ep.Lookup(window, at, pickKey())
				}
				if !sleepUntil(window, ep.Done(), wall(rng.ExpFloat64()*think, timeScale)) {
					return
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// RunFaults replays fault scripts against the live network: every
// script is expanded over the query window, the interventions merged
// into one timeline, and each applied at its (compressed) wall-clock
// instant. A failing intervention — including an unsupported operation
// on this surface — aborts the replay with a descriptive error; no
// scripted event is ever silently dropped. RunFaults returns when the
// timeline is exhausted, an event fails, ctx cancels, or the network
// closes.
func (n *Network) RunFaults(ctx context.Context, faults []cup.Fault, surf cup.FaultSurface, start, duration, timeScale float64) error {
	return runFaults(ctx, n, faults, surf, start, duration, timeScale)
}

type timedFault struct {
	cup.FaultEvent
	name string
}

func runFaults(ctx context.Context, ep endpoint, faults []cup.Fault, surf cup.FaultSurface, start, duration, timeScale float64) error {
	var events []timedFault
	for _, f := range faults {
		name := f.Name()
		for _, ev := range f.Schedule(start, duration) {
			events = append(events, timedFault{FaultEvent: ev, name: name})
		}
	}
	sortTimedFaults(events)
	prev := 0.0
	for _, ev := range events {
		if ev.At > prev {
			if !sleepUntil(ctx, ep.Done(), wall(ev.At-prev, timeScale)) {
				return ctx.Err()
			}
			prev = ev.At
		}
		if err := ev.Do(surf); err != nil {
			return fmt.Errorf("live: fault %q at t=%gs: %w", ev.name, ev.At, err)
		}
	}
	return nil
}

// sortTimedFaults orders the merged timeline by time, stably, matching
// cup.SortFaultEvents.
func sortTimedFaults(events []timedFault) {
	// Insertion sort keeps the merge stable and allocation-free; fault
	// timelines are tens of events, not thousands.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// FaultSurface builds the live implementation of cup.FaultSurface:
// capacity interventions, replica churn, and — on a dynamic overlay —
// §2.9 membership churn all act on the running network. Operations the
// substrate cannot honor return descriptive errors.
func (n *Network) FaultSurface(keys []overlay.Key, replicas int, lifetime time.Duration, rng *rand.Rand) cup.FaultSurface {
	return &liveSurface{ep: n, keys: keys, replicas: replicas, lifetime: lifetime, rng: rng}
}

type liveSurface struct {
	ep       endpoint
	keys     []overlay.Key
	replicas int
	lifetime time.Duration
	rng      *rand.Rand
}

func (s *liveSurface) Size() int                            { return s.ep.Size() }
func (s *liveSurface) Keys() []overlay.Key                  { return s.keys }
func (s *liveSurface) Replicas() int                        { return s.replicas }
func (s *liveSurface) Rand() *rand.Rand                     { return s.rng }
func (s *liveSurface) Alive(id overlay.NodeID) bool         { return s.ep.IsAlive(id) }
func (s *liveSurface) Owner(key overlay.Key) overlay.NodeID { return s.ep.Authority(key) }

// Join and Leave run under background contexts: fault application has
// no per-event deadline, and network shutdown still cancels the
// underlying control operations.
func (s *liveSurface) Join() (overlay.NodeID, error) { return s.ep.Join(context.Background()) }
func (s *liveSurface) Leave(id overlay.NodeID) error { return s.ep.Leave(context.Background(), id) }

func (s *liveSurface) RandomNodes(k int) []overlay.NodeID {
	perm := s.rng.Perm(s.ep.Size())
	out := make([]overlay.NodeID, 0, k)
	for _, i := range perm {
		if len(out) == k {
			break
		}
		if id := overlay.NodeID(i); s.ep.IsAlive(id) {
			out = append(out, id)
		}
	}
	return out
}

func (s *liveSurface) SetCapacity(ids []overlay.NodeID, c float64) {
	for _, id := range ids {
		s.ep.SetCapacity(id, c)
	}
}

func (s *liveSurface) AddReplica(key overlay.Key, r int) {
	s.ep.AddReplica(key, r, cup.ReplicaAddr(r), s.lifetime)
}

func (s *liveSurface) RemoveReplica(key overlay.Key, r int) {
	s.ep.RemoveReplica(key, r)
}
