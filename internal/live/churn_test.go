package live

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cup/internal/cup"
	"cup/internal/overlay"
)

func TestLiveJoinSpawnsWorkingPeer(t *testing.T) {
	n := newTestNet(t, 8)
	ctx := ctxShort(t)
	id, err := n.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(id), 8; got != want {
		t.Fatalf("joined id = %d, want %d", got, want)
	}
	if n.Size() != 9 {
		t.Fatalf("Size = %d after join, want 9", n.Size())
	}
	if !n.IsAlive(id) {
		t.Fatal("joined node not alive")
	}
	if got := n.Stats().Joins; got != 1 {
		t.Fatalf("Stats.Joins = %d, want 1", got)
	}
	n.AddReplica("post-join", 0, "10.0.0.1", time.Hour)
	entries, err := n.Lookup(ctx, id, "post-join")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("lookup at joined node: %d entries, want 1", len(entries))
	}
}

func TestLiveJoinHandsOverOwnedEntries(t *testing.T) {
	n := newTestNet(t, 6)
	ctx := ctxShort(t)
	keys := make([]overlay.Key, 32)
	for i := range keys {
		keys[i] = overlay.Key("handover-" + string(rune('a'+i)))
		n.AddReplica(keys[i], 0, "10.0.0.1", time.Hour)
	}
	// Join repeatedly until some key's authority moves to a new node,
	// then verify the index entry moved with it.
	for i := 0; i < 10; i++ {
		id, err := n.Join(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if n.Authority(k) != id {
				continue
			}
			var found bool
			n.Inspect(id, func(node *cup.Node) {
				_, found = node.LocalDirectory().Get(k, 0)
			})
			if !found {
				t.Fatalf("authority of %q moved to joiner %v without its index entry", k, id)
			}
			return
		}
	}
	t.Skip("no key ownership moved across 10 joins (topology-dependent)")
}

func TestLiveLeaveRetiresPeerAndHandsOver(t *testing.T) {
	n := newTestNet(t, 8)
	ctx := ctxShort(t)
	key := overlay.Key("survivor")
	n.AddReplica(key, 0, "10.0.0.9", time.Hour)
	victim := n.Authority(key)
	if err := n.Leave(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if n.IsAlive(victim) {
		t.Fatal("victim still alive after Leave")
	}
	if got := n.Stats().Leaves; got != 1 {
		t.Fatalf("Stats.Leaves = %d, want 1", got)
	}
	heir := n.Authority(key)
	if heir == victim {
		t.Fatalf("authority of %q still the departed node", key)
	}
	var found bool
	n.Inspect(heir, func(node *cup.Node) {
		_, found = node.LocalDirectory().Get(key, 0)
	})
	if !found {
		t.Fatalf("index entry for %q did not move to new authority %v", key, heir)
	}
	// The network still answers: a lookup from a survivor finds the entry.
	var at overlay.NodeID
	for i := 0; i < n.Size(); i++ {
		if id := overlay.NodeID(i); n.IsAlive(id) && id != heir {
			at = id
			break
		}
	}
	entries, err := n.Lookup(ctx, at, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("post-leave lookup: %d entries, want 1", len(entries))
	}
	// Lookups at the departed node fail fast with a descriptive error.
	if _, err := n.Lookup(ctx, victim, key); err == nil {
		t.Fatal("lookup at departed node succeeded")
	}
}

func TestLiveLeaveErrors(t *testing.T) {
	n := newTestNet(t, 4)
	ctx := ctxShort(t)
	if err := n.Leave(ctx, 99); err == nil {
		t.Fatal("leave of unknown node succeeded")
	}
	if err := n.Leave(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Leave(ctx, 2); err == nil {
		t.Fatal("double leave succeeded")
	}
}

func TestLiveChurnStaticOverlayErrors(t *testing.T) {
	n := NewNetwork(Config{Nodes: 8, Overlay: "chord", HopDelay: 200 * time.Microsecond, Seed: 5})
	t.Cleanup(n.Close)
	ctx := ctxShort(t)
	if _, err := n.Join(ctx); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("Join on chord: err = %v, want unsupported-churn error", err)
	}
	if err := n.Leave(ctx, 3); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("Leave on chord: err = %v, want unsupported-churn error", err)
	}
}

// TestLiveRunFaultsSurfacesUnsupportedChurn is the no-silent-no-op
// regression: NodeChurn on a static-overlay live network must fail the
// fault replay with a descriptive error instead of silently passing.
func TestLiveRunFaultsSurfacesUnsupportedChurn(t *testing.T) {
	n := NewNetwork(Config{Nodes: 8, Overlay: "chord", HopDelay: 200 * time.Microsecond, Seed: 5})
	t.Cleanup(n.Close)
	surf := n.FaultSurface([]overlay.Key{"k"}, 1, time.Hour, rand.New(rand.NewSource(1)))
	err := n.RunFaults(ctxShort(t), []cup.Fault{cup.NodeChurn{Rounds: 2}}, surf, 0, 0.001, 1000)
	if err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("RunFaults(NodeChurn) on chord: err = %v, want unsupported-churn error", err)
	}
}

// TestLiveNodeChurnFaultChangesCounters runs the registered churn fault
// end to end on a dynamic overlay and checks membership measurably
// changed — the tentpole acceptance criterion.
func TestLiveNodeChurnFaultChangesCounters(t *testing.T) {
	var joins, leaves atomic.Uint64
	n := NewNetwork(Config{
		Nodes: 12, HopDelay: 200 * time.Microsecond, Seed: 5,
		Observer: cup.ObserverFunc(func(e cup.Event) {
			switch e.Kind {
			case cup.EvNodeJoined:
				joins.Add(1)
			case cup.EvNodeLeft:
				leaves.Add(1)
			}
		}),
	})
	t.Cleanup(n.Close)
	keys := []overlay.Key{"a", "b", "c"}
	for _, k := range keys {
		n.AddReplica(k, 0, "10.0.0.1", time.Hour)
	}
	surf := n.FaultSurface(keys, 1, time.Hour, rand.New(rand.NewSource(1)))
	err := n.RunFaults(ctxShort(t), []cup.Fault{cup.NodeChurn{Rounds: 6}}, surf, 0, 0.006, 1000)
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Joins == 0 {
		t.Fatal("NodeChurn produced no joins")
	}
	if joins.Load() != st.Joins || leaves.Load() != st.Leaves {
		t.Fatalf("observer saw %d/%d membership events, stats say %d/%d",
			joins.Load(), leaves.Load(), st.Joins, st.Leaves)
	}
}

func TestTCPJoinAndLeave(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 8, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	ctx := ctxShort(t)
	before := PortsInUse()
	id, err := tn.Join(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := PortsInUse(); got != before+1 {
		t.Fatalf("PortsInUse = %d after join, want %d", got, before+1)
	}
	tn.AddReplica("k", 0, "10.0.0.1:80", time.Hour)
	entries, err := tn.Lookup(ctx, id, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("lookup at joined TCP peer: %d entries, want 1", len(entries))
	}
	if err := tn.Leave(ctx, id); err != nil {
		t.Fatal(err)
	}
	if got := PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after leave, want %d", got, before)
	}
	if tn.IsAlive(id) {
		t.Fatal("TCP peer alive after Leave")
	}
	// Survivors still answer.
	var at overlay.NodeID
	for i := 0; i < tn.Size(); i++ {
		if nid := overlay.NodeID(i); tn.IsAlive(nid) && tn.Authority("k") != nid {
			at = nid
			break
		}
	}
	if _, err := tn.Lookup(ctx, at, "k"); err != nil {
		t.Fatal(err)
	}
}
