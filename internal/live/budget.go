// Resource budgets for side-by-side networks. A multi-trial live sweep
// boots several isolated networks on one machine at once, and three
// resources need explicit carving so N trials cannot exhaust what one
// deployment was provisioned for: per-peer mailbox memory (the inbox
// budget), loopback listeners (the port budget of the TCP runtime), and
// refresh publish rate (the process-wide refresh pacing budget).
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cup/internal/cup"
)

// MinInboxDepth is the floor a trial network's per-peer mailbox is ever
// carved down to: below this, protocol bursts (a refresh wave fanning
// out through an interest tree) would block peer goroutines on their
// own neighbors' inboxes and the trial would measure backpressure
// artifacts instead of the protocol.
const MinInboxDepth = 64

// TrialInboxDepth carves one deployment's per-peer inbox budget into
// disjoint shares for `concurrent` trial networks running side by side.
// The deployment's configured depth (default cup.DefaultInboxDepth) is
// treated as the machine's mailbox budget per peer slot; each of the
// networks that actually run at once — the worker-pool width, not the
// total trial count — gets an equal share, floored at MinInboxDepth.
func TrialInboxDepth(base, concurrent int) int {
	if base <= 0 {
		base = cup.DefaultInboxDepth
	}
	if concurrent < 1 {
		concurrent = 1
	}
	d := base / concurrent
	if d < MinInboxDepth {
		d = MinInboxDepth
	}
	return d
}

// DefaultPortBudget caps the loopback listeners all concurrently
// running TCP networks may hold in total. One TCPNetwork takes one
// listener per peer; without a shared budget, parallel trial sweeps of
// TCP deployments would race the kernel's ephemeral-port range and fail
// with unhelpful bind errors mid-sweep instead of a clear rejection up
// front.
const DefaultPortBudget = 4096

// portBudget tracks listeners currently held against DefaultPortBudget.
var portBudget struct {
	sync.Mutex
	used int
}

// acquirePorts reserves n loopback listeners against the shared budget,
// failing fast when a new network would overcommit it.
func acquirePorts(n int) error {
	portBudget.Lock()
	defer portBudget.Unlock()
	if portBudget.used+n > DefaultPortBudget {
		return fmt.Errorf("live: port budget exhausted: %d listeners held, %d requested, budget %d",
			portBudget.used, n, DefaultPortBudget)
	}
	portBudget.used += n
	return nil
}

// releasePorts returns n listeners to the budget.
func releasePorts(n int) {
	portBudget.Lock()
	defer portBudget.Unlock()
	portBudget.used -= n
	if portBudget.used < 0 {
		panic("live: port budget released below zero")
	}
}

// AcquireListeners reserves n HTTP listeners (serving or telemetry
// front ends) against the same process-wide budget the TCP runtime's
// peer listeners draw from, so a fleet of deployments with serving
// layers cannot overcommit the loopback range any more than a trial
// sweep can.
func AcquireListeners(n int) error { return acquirePorts(n) }

// ReleaseListeners returns n HTTP listeners to the budget.
func ReleaseListeners(n int) { releasePorts(n) }

// PortsInUse reports listeners currently held against the budget
// (diagnostics and tests).
func PortsInUse() int {
	portBudget.Lock()
	defer portBudget.Unlock()
	return portBudget.used
}

// DefaultRefreshBudget is the process-wide refresh pacing budget:
// the total replica-refresh publishes per second shared by every
// concurrently running live trial network. Refresh pumps are the one
// load source trials generate open-loop on a timer (traffic pumps are
// scripted, faults are scheduled), so an unpaced 64-trial sweep
// multiplies refresh load 64× on one machine. The budget is the LOCKSS
// lesson applied to our own harness: peer dynamics stay rate-limited no
// matter how many replicas run side by side.
const DefaultRefreshBudget = 2048.0

// refreshPacer is a process-wide leaky bucket over refresh publishes.
type refreshPacer struct {
	sync.Mutex
	// rate is refreshes/second; <= 0 restores DefaultRefreshBudget.
	rate float64
	// next is the earliest instant the next refresh may depart.
	next time.Time
	// paced counts refreshes that had to wait; waited accumulates the
	// total wall-clock delay imposed. Exported via RefreshPacingStats
	// for telemetry.
	paced  uint64
	waited time.Duration
}

var refreshBudget = refreshPacer{rate: DefaultRefreshBudget}

// SetRefreshBudget adjusts the process-wide refresh budget (refreshes
// per second across all live networks); perSec <= 0 restores the
// default. Returns the budget now in force.
func SetRefreshBudget(perSec float64) float64 {
	refreshBudget.Lock()
	defer refreshBudget.Unlock()
	if perSec <= 0 {
		perSec = DefaultRefreshBudget
	}
	refreshBudget.rate = perSec
	return perSec
}

// RefreshBudget reports the refresh budget currently in force.
func RefreshBudget() float64 {
	refreshBudget.Lock()
	defer refreshBudget.Unlock()
	return refreshBudget.rate
}

// RefreshPacingStats reports how many refreshes were delayed by the
// budget and the total delay imposed (telemetry gauges).
func RefreshPacingStats() (paced uint64, waited time.Duration) {
	refreshBudget.Lock()
	defer refreshBudget.Unlock()
	return refreshBudget.paced, refreshBudget.waited
}

// PaceRefresh blocks until the process-wide refresh budget admits one
// refresh publish, or ctx cancels. Each admitted refresh reserves a
// 1/rate slot; concurrent trial networks therefore share the budget
// first-come-first-served instead of multiplying load.
func PaceRefresh(ctx context.Context) error {
	now := time.Now()
	refreshBudget.Lock()
	slot := time.Duration(float64(time.Second) / refreshBudget.rate)
	if refreshBudget.next.Before(now) {
		refreshBudget.next = now
	}
	wait := refreshBudget.next.Sub(now)
	refreshBudget.next = refreshBudget.next.Add(slot)
	if wait > 0 {
		refreshBudget.paced++
		refreshBudget.waited += wait
	}
	refreshBudget.Unlock()
	if wait <= 0 {
		return nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
