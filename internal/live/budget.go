// Resource budgets for side-by-side networks. A multi-trial live sweep
// boots several isolated networks on one machine at once, and two
// resources need explicit carving so N trials cannot exhaust what one
// deployment was provisioned for: per-peer mailbox memory (the inbox
// budget) and loopback listeners (the port budget of the TCP runtime).
package live

import (
	"fmt"
	"sync"

	"cup/internal/cup"
)

// MinInboxDepth is the floor a trial network's per-peer mailbox is ever
// carved down to: below this, protocol bursts (a refresh wave fanning
// out through an interest tree) would block peer goroutines on their
// own neighbors' inboxes and the trial would measure backpressure
// artifacts instead of the protocol.
const MinInboxDepth = 64

// TrialInboxDepth carves one deployment's per-peer inbox budget into
// disjoint shares for `concurrent` trial networks running side by side.
// The deployment's configured depth (default cup.DefaultInboxDepth) is
// treated as the machine's mailbox budget per peer slot; each of the
// networks that actually run at once — the worker-pool width, not the
// total trial count — gets an equal share, floored at MinInboxDepth.
func TrialInboxDepth(base, concurrent int) int {
	if base <= 0 {
		base = cup.DefaultInboxDepth
	}
	if concurrent < 1 {
		concurrent = 1
	}
	d := base / concurrent
	if d < MinInboxDepth {
		d = MinInboxDepth
	}
	return d
}

// DefaultPortBudget caps the loopback listeners all concurrently
// running TCP networks may hold in total. One TCPNetwork takes one
// listener per peer; without a shared budget, parallel trial sweeps of
// TCP deployments would race the kernel's ephemeral-port range and fail
// with unhelpful bind errors mid-sweep instead of a clear rejection up
// front.
const DefaultPortBudget = 4096

// portBudget tracks listeners currently held against DefaultPortBudget.
var portBudget struct {
	sync.Mutex
	used int
}

// acquirePorts reserves n loopback listeners against the shared budget,
// failing fast when a new network would overcommit it.
func acquirePorts(n int) error {
	portBudget.Lock()
	defer portBudget.Unlock()
	if portBudget.used+n > DefaultPortBudget {
		return fmt.Errorf("live: port budget exhausted: %d listeners held, %d requested, budget %d",
			portBudget.used, n, DefaultPortBudget)
	}
	portBudget.used += n
	return nil
}

// releasePorts returns n listeners to the budget.
func releasePorts(n int) {
	portBudget.Lock()
	defer portBudget.Unlock()
	portBudget.used -= n
	if portBudget.used < 0 {
		panic("live: port budget released below zero")
	}
}

// AcquireListeners reserves n HTTP listeners (serving or telemetry
// front ends) against the same process-wide budget the TCP runtime's
// peer listeners draw from, so a fleet of deployments with serving
// layers cannot overcommit the loopback range any more than a trial
// sweep can.
func AcquireListeners(n int) error { return acquirePorts(n) }

// ReleaseListeners returns n HTTP listeners to the budget.
func ReleaseListeners(n int) { releasePorts(n) }

// PortsInUse reports listeners currently held against the budget
// (diagnostics and tests).
func PortsInUse() int {
	portBudget.Lock()
	defer portBudget.Unlock()
	return portBudget.used
}
