package live

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cup/internal/cup"
	"cup/internal/overlay"
)

func newTestNet(t *testing.T, nodes int) *Network {
	t.Helper()
	n := NewNetwork(Config{Nodes: nodes, HopDelay: 200 * time.Microsecond, Seed: 5})
	t.Cleanup(n.Close)
	return n
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestLookupFindsReplica(t *testing.T) {
	n := newTestNet(t, 16)
	n.AddReplica("movie", 0, "10.0.0.1", time.Hour)
	entries, err := n.Lookup(ctxShort(t), 3, "movie")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Addr != "10.0.0.1" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestLookupMissingKeyReturnsEmpty(t *testing.T) {
	n := newTestNet(t, 16)
	entries, err := n.Lookup(ctxShort(t), 2, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v, want none", entries)
	}
}

func TestLookupAtAuthorityIsLocal(t *testing.T) {
	n := newTestNet(t, 16)
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	auth := n.Authority("k")
	entries, err := n.Lookup(ctxShort(t), auth, "k")
	if err != nil || len(entries) != 1 {
		t.Fatalf("authority lookup = %v, %v", entries, err)
	}
}

func TestSecondLookupHitsCache(t *testing.T) {
	n := newTestNet(t, 32)
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	var nid overlay.NodeID = 7
	if n.Authority("k") == nid {
		nid = 8
	}
	if _, err := n.Lookup(ctxShort(t), nid, "k"); err != nil {
		t.Fatal(err)
	}
	before := n.Stats().QueryMsgs
	if _, err := n.Lookup(ctxShort(t), nid, "k"); err != nil {
		t.Fatal(err)
	}
	if after := n.Stats().QueryMsgs; after != before {
		t.Fatalf("second lookup sent %d query messages", after-before)
	}
}

func TestConcurrentLookups(t *testing.T) {
	n := newTestNet(t, 64)
	for r := 0; r < 3; r++ {
		n.AddReplica("hot", r, fmt.Sprintf("10.0.0.%d", r), time.Hour)
	}
	ctx := ctxShort(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries, err := n.Lookup(ctx, overlay.NodeID(i), "hot")
			if err != nil {
				errs <- err
				return
			}
			if len(entries) != 3 {
				errs <- fmt.Errorf("node %d got %d entries, want 3", i, len(entries))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDeleteStopsServingReplica(t *testing.T) {
	n := newTestNet(t, 16)
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	n.AddReplica("k", 1, "10.0.0.2", time.Hour)
	if _, err := n.Lookup(ctxShort(t), 2, "k"); err != nil {
		t.Fatal(err)
	}
	n.RemoveReplica("k", 0)
	// The delete must reach the authority and interested caches.
	deadline := time.Now().Add(3 * time.Second)
	for {
		entries, err := n.Lookup(ctxShort(t), n.Authority("k"), "k")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 1 && entries[0].Replica == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delete never applied; entries = %+v", entries)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRefreshPropagatesToInterestedPeer(t *testing.T) {
	n := newTestNet(t, 16)
	n.AddReplica("k", 0, "10.0.0.1", 500*time.Millisecond)
	var nid overlay.NodeID = 4
	if n.Authority("k") == nid {
		nid = 5
	}
	if _, err := n.Lookup(ctxShort(t), nid, "k"); err != nil {
		t.Fatal(err)
	}
	// Refresh before expiry; the interested peer's cache must be extended
	// without it issuing another query.
	n.Refresh("k", 0, "10.0.0.1", time.Hour)
	deadline := time.Now().Add(3 * time.Second)
	for {
		var fresh bool
		n.Inspect(nid, func(node *cup.Node) { fresh = node.HasFreshAnswer("k") })
		if fresh {
			queriesBefore := n.Stats().QueryMsgs
			if _, err := n.Lookup(ctxShort(t), nid, "k"); err != nil {
				t.Fatal(err)
			}
			if n.Stats().QueryMsgs != queriesBefore {
				t.Fatal("refreshed peer still issued a query")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("refresh never reached the interested peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsCount(t *testing.T) {
	n := newTestNet(t, 32)
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	for i := 0; i < 5; i++ {
		if _, err := n.Lookup(ctxShort(t), overlay.NodeID(i), "k"); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.QueryMsgs == 0 || st.UpdateMsgs == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetCapacityZeroStillAnswersQueries(t *testing.T) {
	n := newTestNet(t, 16)
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	for i := 0; i < 16; i++ {
		n.SetCapacity(overlay.NodeID(i), 0)
	}
	entries, err := n.Lookup(ctxShort(t), 3, "k")
	if err != nil || len(entries) != 1 {
		t.Fatalf("zero-capacity lookup = %v, %v", entries, err)
	}
}

func TestLookupContextCancellation(t *testing.T) {
	n := NewNetwork(Config{Nodes: 16, HopDelay: time.Hour, Seed: 5}) // never delivers
	defer n.Close()
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	nid := overlay.NodeID(3)
	if n.Authority("k") == nid {
		nid = 4
	}
	if _, err := n.Lookup(ctx, nid, "k"); err == nil {
		t.Fatal("lookup with undeliverable network returned")
	}
}

func TestCloseIsIdempotentAndStopsLoops(t *testing.T) {
	n := NewNetwork(Config{Nodes: 8, Seed: 5})
	n.Close()
	n.Close()
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nodes=0 did not panic")
		}
	}()
	NewNetwork(Config{Nodes: 0})
}

func TestInspectSeesProtocolState(t *testing.T) {
	n := newTestNet(t, 16)
	n.AddReplica("k", 0, "10.0.0.1", time.Hour)
	auth := n.Authority("k")
	var entries int
	n.Inspect(auth, func(node *cup.Node) { entries = node.LocalDirectory().Len() })
	if entries != 1 {
		t.Fatalf("authority local directory = %d entries, want 1", entries)
	}
}
