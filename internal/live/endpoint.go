package live

import (
	"context"
	"math/rand"
	"time"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// Endpoint is the full client surface shared by the live transports:
// the goroutine-per-peer Network and the socket-per-peer TCPNetwork
// implement it identically, so the Deployment façade, the scenario
// engine, and the serving layer drive either without knowing which
// shell is underneath — the same interchangeability contract the
// simulator and Network already share.
type Endpoint interface {
	// Topology and membership.
	Size() int
	IsAlive(id overlay.NodeID) bool
	Authority(key overlay.Key) overlay.NodeID
	Join(ctx context.Context) (overlay.NodeID, error)
	Leave(ctx context.Context, id overlay.NodeID) error

	// Client operations.
	Lookup(ctx context.Context, id overlay.NodeID, key overlay.Key) ([]cache.Entry, error)
	AddReplica(key overlay.Key, replica int, addr string, lifetime time.Duration)
	AddReplicaCtx(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error
	Refresh(key overlay.Key, replica int, addr string, lifetime time.Duration)
	RefreshCtx(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error
	RemoveReplica(key overlay.Key, replica int)
	RemoveReplicaCtx(ctx context.Context, key overlay.Key, replica int) error
	SetCapacity(id overlay.NodeID, c float64)
	Inspect(id overlay.NodeID, fn func(*cup.Node))

	// Scenario engine.
	PumpTraffic(ctx context.Context, tr cup.Traffic, env cup.TrafficEnv, timeScale float64) error
	RunFaults(ctx context.Context, faults []cup.Fault, surf cup.FaultSurface, start, duration, timeScale float64) error
	FaultSurface(keys []overlay.Key, replicas int, lifetime time.Duration, rng *rand.Rand) cup.FaultSurface

	// Introspection and lifecycle.
	Stats() Stats
	InboxLoad() (used, capacity int)
	Quiesced(window time.Duration) bool
	HopDelay() time.Duration
	Now() sim.Time
	IsClosed() bool
	Done() <-chan struct{}
	Close()
}

var (
	_ Endpoint = (*Network)(nil)
	_ Endpoint = (*TCPNetwork)(nil)
)
