package live

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cup/internal/cup"
	"cup/internal/overlay"
)

// defaultCfg returns the standard CUP node configuration for TCP tests.
func defaultCfg() cup.Config { return cup.Defaults() }

func TestTCPLookupFindsReplica(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 12, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.AddReplica("iso", 0, "203.0.113.1:8080", time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	entries, err := tn.Lookup(ctx, 5, "iso")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Addr != "203.0.113.1:8080" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestTCPSecondLookupIsCached(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 16, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.AddReplica("k", 0, "10.1.1.1", time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var nid overlay.NodeID = 7
	if tn.Authority("k") == nid {
		nid = 8
	}
	if _, err := tn.Lookup(ctx, nid, "k"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := tn.Lookup(ctx, nid, "k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cached lookup took %v", d)
	}
}

func TestTCPConcurrentLookups(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 24, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	for r := 0; r < 2; r++ {
		tn.AddReplica("hot", r, fmt.Sprintf("10.0.0.%d", r), time.Hour)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries, err := tn.Lookup(ctx, overlay.NodeID(i), "hot")
			if err != nil {
				errs <- fmt.Errorf("node %d: %w", i, err)
				return
			}
			if len(entries) != 2 {
				errs <- fmt.Errorf("node %d: %d entries", i, len(entries))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPRefreshReachesSubscriber(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 12, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.AddReplica("k", 0, "10.1.1.1", 300*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var nid overlay.NodeID = 4
	if tn.Authority("k") == nid {
		nid = 5
	}
	if _, err := tn.Lookup(ctx, nid, "k"); err != nil {
		t.Fatal(err)
	}
	tn.Refresh("k", 0, "10.1.1.1", time.Hour)
	time.Sleep(500 * time.Millisecond) // original entry now expired
	start := time.Now()
	entries, err := tn.Lookup(ctx, nid, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries after refresh = %+v", entries)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("post-refresh lookup walked the overlay (%v); refresh never arrived", d)
	}
}

func TestTCPInvalidSize(t *testing.T) {
	if _, err := NewTCPNetwork(Config{Nodes: 0, Seed: 1, Node: defaultCfg()}); err == nil {
		t.Fatal("0 peers accepted")
	}
}

func TestTCPAddrIsRoutable(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 4, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	for i := 0; i < 4; i++ {
		if tn.Addr(overlay.NodeID(i)) == "" {
			t.Fatalf("peer %d has no address", i)
		}
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	tn, err := NewTCPNetwork(Config{Nodes: 4, Seed: 3, Node: defaultCfg()})
	if err != nil {
		t.Fatal(err)
	}
	tn.Close()
	tn.Close()
}
