// Runtime membership churn (§2.9) for the live transports. The same
// hand-over choreography the discrete-event driver performs in
// internal/cup/churn.go — overlay re-knit, index hand-over, interest
// bit-vector patching — executed against running peer goroutines: a
// join spawns a live peer and hands it the index entries that now hash
// into its region; a leave collects the departing peer's directory,
// retires its goroutine (inbox drained), and reinstalls the entries at
// each key's new authority. Both networks (goroutine and TCP) share the
// choreography through the churnHost surface below.
package live

import (
	"context"
	"fmt"
	"sync"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// dynamicOverlay is the churn capability, mirroring the simulator's
// (internal/cup): membership queries plus uniform join/leave hooks. CAN
// and Kademlia implement it; a static substrate (Chord) does not.
type dynamicOverlay interface {
	overlay.Overlay
	// Alive reports whether n is currently a member.
	Alive(overlay.NodeID) bool
	// JoinRand adds one node, drawing any placement randomness from rnd,
	// and returns its dense ID (which must equal the previous size).
	JoinRand(rnd *sim.Rand) overlay.NodeID
	// Leave removes n and returns the heir that takes over its region.
	Leave(n overlay.NodeID) overlay.NodeID
}

// lockedOverlay makes one overlay safe for concurrent routing reads
// from peer goroutines while membership mutations happen: reads
// (Owner, NextHop, Neighbors, Size) take the read lock, a churn
// operation takes the write lock for the instant of the substrate
// mutation. The overlay kinds themselves are not thread-safe; every
// live network routes through this wrapper.
type lockedOverlay struct {
	mu   sync.RWMutex
	ov   overlay.Overlay
	kind string

	// churnMu serializes whole join/leave operations (the multi-step
	// choreography, not just the substrate mutation); rng draws the
	// join placement randomness under it.
	churnMu sync.Mutex
	rng     *sim.Rand
}

func newLockedOverlay(ov overlay.Overlay, kind string, seed int64) *lockedOverlay {
	return &lockedOverlay{ov: ov, kind: kind, rng: sim.NewRand(seed)}
}

func (l *lockedOverlay) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ov.Size()
}

func (l *lockedOverlay) Owner(k overlay.Key) overlay.NodeID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ov.Owner(k)
}

func (l *lockedOverlay) NextHop(n overlay.NodeID, k overlay.Key) (overlay.NodeID, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ov.NextHop(n, k)
}

// Neighbors returns a copy: the substrate's own slice may be rebuilt by
// a concurrent membership change once the read lock is released.
func (l *lockedOverlay) Neighbors(n overlay.NodeID) []overlay.NodeID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]overlay.NodeID(nil), l.ov.Neighbors(n)...)
}

// dynamic returns the wrapped substrate's churn capability, nil when it
// is static.
func (l *lockedOverlay) dynamic() dynamicOverlay {
	d, _ := l.ov.(dynamicOverlay)
	return d
}

// memberAlive reports substrate membership (true for every in-range ID
// on a static overlay).
func (l *lockedOverlay) memberAlive(id overlay.NodeID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if d, ok := l.ov.(dynamicOverlay); ok {
		return d.Alive(id)
	}
	return true
}

// churnHost is what the shared §2.9 choreography needs from a live
// network: overlay and router access, per-node protocol control on the
// owning goroutine, and member lifecycle hooks.
type churnHost interface {
	// lov is the network's locked overlay.
	lov() *lockedOverlay
	// invalidateRoutes drops the router's memoized routes.
	invalidateRoutes()
	// slots is the number of peer slots ever allocated (dense IDs).
	slots() int
	// aliveSlot reports whether peer id exists and has not departed.
	aliveSlot(id overlay.NodeID) bool
	// spawnMember creates and starts peer id (== slots() at call time).
	spawnMember(id overlay.NodeID) error
	// retireMember collects peer id's local directory and retires its
	// goroutine: the peer stops applying protocol state changes and its
	// inbox drains.
	retireMember(ctx context.Context, id overlay.NodeID) ([]cache.Entry, error)
	// controlNode runs fn on peer id's goroutine with exclusive access
	// to its protocol state.
	controlNode(ctx context.Context, id overlay.NodeID, fn func(*cup.Node)) error
	// emitMembership publishes a §2.9 membership event.
	emitMembership(kind cup.EventKind, id overlay.NodeID)
	// countChurn bumps the join/leave stat counters.
	countChurn(join bool)
}

// errStaticOverlay is the descriptive unsupported-churn failure: the
// scenario runner surfaces it instead of dropping the scripted event.
func errStaticOverlay(kind string) error {
	return fmt.Errorf("live: membership churn unsupported: overlay %q is static (§2.9 needs a dynamic substrate such as can or kademlia)", kind)
}

// churnJoin is §2.9 Arrivals on a live network: the substrate wires the
// newcomer in under the overlay write lock, a fresh peer goroutine
// spawns, previous owners hand over the index entries that now hash
// into the joiner's region, and every node whose neighbor set changed
// patches its interest bit vector.
func churnJoin(ctx context.Context, h churnHost) (overlay.NodeID, error) {
	l := h.lov()
	d := l.dynamic()
	if d == nil {
		return 0, errStaticOverlay(l.kind)
	}
	l.churnMu.Lock()
	defer l.churnMu.Unlock()

	l.mu.Lock()
	id := d.JoinRand(l.rng)
	l.mu.Unlock()
	h.invalidateRoutes()
	if int(id) != h.slots() {
		panic(fmt.Sprintf("live: overlay issued id %v, expected %d", id, h.slots()))
	}
	if err := h.spawnMember(id); err != nil {
		return 0, err
	}
	h.emitMembership(cup.EvNodeJoined, id)
	h.countChurn(true)

	// Hand-over: every previous member's local directory sheds the
	// entries whose keys now hash to the joiner. Ownership checks read
	// the overlay under its read lock from each peer's goroutine; the
	// churn mutex (held here) keeps membership stable meanwhile.
	for m := 0; m < int(id); m++ {
		from := overlay.NodeID(m)
		if !h.aliveSlot(from) {
			continue
		}
		var moved []cache.Entry
		err := h.controlNode(ctx, from, func(n *cup.Node) {
			dir := n.LocalDirectory()
			if dir.Len() == 0 {
				return
			}
			for _, k := range dir.Keys() {
				if l.Owner(k) != id {
					continue
				}
				moved = append(moved, dir.All(k)...)
			}
			for _, e := range moved {
				n.RemoveLocal(e.Key, e.Replica)
			}
		})
		if err != nil {
			return id, fmt.Errorf("live: join hand-over from %v: %w", from, err)
		}
		if len(moved) == 0 {
			continue
		}
		if err := h.controlNode(ctx, id, func(n *cup.Node) {
			for _, e := range moved {
				n.InstallLocal(e)
			}
		}); err != nil {
			return id, fmt.Errorf("live: join hand-over to %v: %w", id, err)
		}
	}
	rev := reverseNeighbors(h)
	if err := patchNeighborhood(ctx, h, rev, append(rev[id], id)); err != nil {
		return id, err
	}
	return id, nil
}

// churnLeave is §2.9 Departures: the victim's directory is collected
// and its goroutine retired (inbox drained), the substrate re-knits
// around the gap, each collected entry moves to its key's new
// authority, and every node that routed through the victim patches its
// interest bits.
func churnLeave(ctx context.Context, h churnHost, victim overlay.NodeID) error {
	l := h.lov()
	d := l.dynamic()
	if d == nil {
		return errStaticOverlay(l.kind)
	}
	l.churnMu.Lock()
	defer l.churnMu.Unlock()
	if !h.aliveSlot(victim) || !l.memberAlive(victim) {
		return fmt.Errorf("live: leave of node %v: not a live member", victim)
	}
	if l.Size() <= 1 {
		return fmt.Errorf("live: leave of node %v: cannot remove the last member", victim)
	}

	// Channel peers before the re-knit: nodes that list the victim plus
	// the nodes it lists (neighbor relations may be asymmetric).
	affected := append(reverseNeighbors(h)[victim], l.Neighbors(victim)...)

	entries, err := h.retireMember(ctx, victim)
	if err != nil {
		return fmt.Errorf("live: leave of node %v: %w", victim, err)
	}

	l.mu.Lock()
	heir := d.Leave(victim)
	l.mu.Unlock()
	h.invalidateRoutes()

	// Hand the departed node's portion of the global index to each
	// key's new authority (the paper's hand-over alternative, which
	// avoids restarting update propagation).
	byOwner := make(map[overlay.NodeID][]cache.Entry)
	for _, e := range entries {
		byOwner[l.Owner(e.Key)] = append(byOwner[l.Owner(e.Key)], e)
	}
	for to, moved := range byOwner {
		if err := h.controlNode(ctx, to, func(n *cup.Node) {
			for _, e := range moved {
				n.InstallLocal(e)
			}
		}); err != nil {
			return fmt.Errorf("live: leave hand-over to %v: %w", to, err)
		}
	}
	if err := patchNeighborhood(ctx, h, reverseNeighbors(h), append(affected, heir)); err != nil {
		return err
	}
	h.emitMembership(cup.EvNodeLeft, victim)
	h.countChurn(false)
	return nil
}

// reverseNeighbors builds the reverse adjacency of the current overlay
// in one sweep: for each node, the alive nodes that list it as a
// neighbor. Computed once per membership event and shared, as in the
// simulator's churn handlers.
func reverseNeighbors(h churnHost) map[overlay.NodeID][]overlay.NodeID {
	l := h.lov()
	rev := make(map[overlay.NodeID][]overlay.NodeID, h.slots())
	for m := 0; m < h.slots(); m++ {
		mm := overlay.NodeID(m)
		if !h.aliveSlot(mm) {
			continue
		}
		for _, nb := range l.Neighbors(mm) {
			rev[nb] = append(rev[nb], mm)
		}
	}
	return rev
}

// patchNeighborhood re-syncs interest bit vectors with current channel
// peers for the affected nodes — each patch runs on the owning peer's
// goroutine, so it serializes with that peer's protocol work exactly
// like any other message.
func patchNeighborhood(ctx context.Context, h churnHost, rev map[overlay.NodeID][]overlay.NodeID, nodes []overlay.NodeID) error {
	l := h.lov()
	seen := make(map[overlay.NodeID]bool, len(nodes))
	for _, id := range nodes {
		if seen[id] || !h.aliveSlot(id) {
			continue
		}
		seen[id] = true
		peers := append(l.Neighbors(id), rev[id]...)
		if err := h.controlNode(ctx, id, func(n *cup.Node) {
			n.PatchNeighbors(peers)
		}); err != nil {
			return fmt.Errorf("live: neighborhood patch at %v: %w", id, err)
		}
	}
	return nil
}
