package live

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
	"cup/internal/wire"
)

// TCPNetwork runs CUP peers as real TCP endpoints on the loopback
// interface: every peer owns a listener, query/update/clear-bit messages
// are wire-encoded frames over persistent connections, and the protocol
// state machine is the same internal/cup.Node the simulator drives. This
// is the deployment shape the paper describes — two logical channels per
// neighbor — expressed as sockets.
type TCPNetwork struct {
	ov     overlay.Overlay
	router *cup.OverlayRouter
	start  time.Time
	peers  []*tcpPeer
	ports  int // listeners reserved against the shared port budget
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// tcpPeer is one protocol endpoint: a listener, an inbox serializing all
// protocol work onto one goroutine, and lazily dialed outbound conns.
type tcpPeer struct {
	id      overlay.NodeID
	node    *cup.Node
	net     *TCPNetwork
	ln      net.Listener
	inbox   chan tcpWork
	waiters map[overlay.Key][]chan []cache.Entry

	mu    sync.Mutex // guards conns
	conns map[overlay.NodeID]net.Conn
}

// tcpWork is one unit for the peer goroutine: either an inbound protocol
// message or a control closure.
type tcpWork struct {
	msg  wire.Message
	ctrl func(*tcpPeer)
}

// NewTCPNetwork starts n peers listening on 127.0.0.1 ephemeral ports
// over a seeded CAN overlay. The n listeners are drawn from the shared
// port budget (see budget.go), so concurrent networks fail fast instead
// of racing the kernel's ephemeral-port range. Close releases all
// sockets, goroutines, and the budget reservation.
func NewTCPNetwork(n int, seed int64, cfg cup.Config) (*TCPNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("live: need at least one peer, got %d", n)
	}
	if err := acquirePorts(n); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg = cup.Defaults()
	}
	ov := buildOverlay("can", n, seed)
	tn := &TCPNetwork{
		ov:     ov,
		router: cup.NewOverlayRouter(ov),
		start:  time.Now(),
		ports:  n,
		closed: make(chan struct{}),
	}
	tn.peers = make([]*tcpPeer, n)
	for i := range tn.peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tn.Close()
			return nil, fmt.Errorf("live: listen: %w", err)
		}
		id := overlay.NodeID(i)
		p := &tcpPeer{
			id:      id,
			node:    cup.NewNode(id, cfg, tn.router, tn.now),
			net:     tn,
			ln:      ln,
			inbox:   make(chan tcpWork, 256),
			waiters: make(map[overlay.Key][]chan []cache.Entry),
			conns:   make(map[overlay.NodeID]net.Conn),
		}
		tn.peers[i] = p
	}
	for _, p := range tn.peers {
		tn.wg.Add(2)
		go p.acceptLoop(&tn.wg)
		go p.workLoop(&tn.wg)
	}
	return tn, nil
}

func (tn *TCPNetwork) now() sim.Time { return sim.Time(time.Since(tn.start).Seconds()) }

// Size returns the number of peers.
func (tn *TCPNetwork) Size() int { return len(tn.peers) }

// Addr returns the listen address of peer id (for external clients).
func (tn *TCPNetwork) Addr(id overlay.NodeID) string { return tn.peers[id].ln.Addr().String() }

// Authority returns the node owning key.
func (tn *TCPNetwork) Authority(key overlay.Key) overlay.NodeID { return tn.ov.Owner(key) }

// Close tears the network down: listeners, connections, goroutines, and
// the port-budget reservation.
func (tn *TCPNetwork) Close() {
	tn.once.Do(func() {
		close(tn.closed)
		for _, p := range tn.peers {
			if p == nil {
				continue
			}
			if p.ln != nil {
				p.ln.Close()
			}
			p.mu.Lock()
			for _, c := range p.conns {
				c.Close()
			}
			p.mu.Unlock()
		}
		releasePorts(tn.ports)
	})
	tn.wg.Wait()
}

// acceptLoop takes inbound connections and spawns frame readers.
func (p *tcpPeer) acceptLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.net.wg.Add(1)
		go p.readLoop(conn, &p.net.wg)
	}
}

// readLoop decodes frames off one connection into the peer's inbox.
func (p *tcpPeer) readLoop(conn net.Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	defer conn.Close()
	for {
		m, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		select {
		case p.inbox <- tcpWork{msg: m}:
		case <-p.net.closed:
			return
		}
	}
}

// workLoop is the peer's single protocol goroutine.
func (p *tcpPeer) workLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-p.net.closed:
			return
		case w := <-p.inbox:
			if w.ctrl != nil {
				w.ctrl(p)
				continue
			}
			p.handleWire(w.msg)
		}
	}
}

func (p *tcpPeer) handleWire(m wire.Message) {
	var acts []cup.Action
	switch v := m.(type) {
	case wire.Query:
		acts = p.node.HandleQuery(v.From, v.Key, v.QueryID)
	case wire.UpdateMsg:
		acts = p.node.HandleUpdate(v.From, v.Update)
	case wire.ClearBit:
		acts = p.node.HandleClearBit(v.From, v.Key)
	case wire.Hello:
		// Connection identification only; nothing protocol-visible.
	}
	p.dispatch(acts)
}

func (p *tcpPeer) dispatch(acts []cup.Action) {
	for _, a := range acts {
		switch a.Kind {
		case cup.ActSendQuery:
			p.sendWire(a.To, wire.Query{From: p.id, Key: a.Key, QueryID: a.QueryID})
		case cup.ActSendUpdate:
			p.sendWire(a.To, wire.UpdateMsg{From: p.id, Update: a.Update})
		case cup.ActSendClearBit:
			p.sendWire(a.To, wire.ClearBit{From: p.id, Key: a.Key})
		case cup.ActDeliverLocal:
			for _, ch := range p.waiters[a.Key] {
				// Cannot block: each waiter channel is buffered(1), owned by
				// one Lookup, and removed from the map below before any
				// second delivery could target it.
				ch <- a.Entries //cup:allowblocking
			}
			delete(p.waiters, a.Key)
		}
	}
}

// sendWire writes a frame on the persistent connection to a neighbor,
// dialing on first use. Failures drop the message and the connection —
// CUP tolerates lost updates by falling back to expiration (§2.8), and a
// lost query is re-issued by the client.
func (p *tcpPeer) sendWire(to overlay.NodeID, m wire.Message) {
	conn, err := p.connTo(to)
	if err != nil {
		return
	}
	if err := wire.WriteFrame(conn, m); err != nil {
		p.mu.Lock()
		if p.conns[to] == conn {
			delete(p.conns, to)
		}
		p.mu.Unlock()
		conn.Close()
	}
}

func (p *tcpPeer) connTo(to overlay.NodeID) (net.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.conns[to]; ok {
		return c, nil
	}
	c, err := net.DialTimeout("tcp", p.net.peers[to].ln.Addr().String(), 2*time.Second)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(c, wire.Hello{From: p.id}); err != nil {
		c.Close()
		return nil, err
	}
	p.conns[to] = c
	return c, nil
}

// Lookup posts a query for key at peer id and waits for the answer.
func (tn *TCPNetwork) Lookup(ctx context.Context, id overlay.NodeID, key overlay.Key) ([]cache.Entry, error) {
	reply := make(chan []cache.Entry, 1)
	work := tcpWork{ctrl: func(p *tcpPeer) {
		acts := p.node.HandleQuery(cup.LocalClient, key, 0)
		p.waiters[key] = append(p.waiters[key], reply)
		p.dispatch(acts)
	}}
	select {
	case tn.peers[id].inbox <- work:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case entries := <-reply:
		return entries, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-tn.closed:
		return nil, fmt.Errorf("live: network closed")
	}
}

// AddReplica installs an index entry at the authority and announces it.
func (tn *TCPNetwork) AddReplica(key overlay.Key, replica int, addr string, lifetime time.Duration) {
	tn.replicaEvent(key, replica, addr, lifetime, cup.Append)
}

// Refresh extends (key, replica)'s lifetime, propagating to subscribers.
func (tn *TCPNetwork) Refresh(key overlay.Key, replica int, addr string, lifetime time.Duration) {
	tn.replicaEvent(key, replica, addr, lifetime, cup.Refresh)
}

func (tn *TCPNetwork) replicaEvent(key overlay.Key, replica int, addr string, lifetime time.Duration, ty cup.UpdateType) {
	life := sim.Duration(lifetime.Seconds())
	work := tcpWork{ctrl: func(p *tcpPeer) {
		e := cache.Entry{Key: key, Replica: replica, Addr: addr, Expires: p.net.now().Add(life)}
		p.node.InstallLocal(e)
		u := cup.Update{Key: key, Type: ty, Entries: []cache.Entry{e}, Replica: replica,
			Expires: e.Expires, Lifetime: life}
		p.dispatch(p.node.OriginateUpdate(u))
	}}
	select {
	case tn.peers[tn.Authority(key)].inbox <- work:
	case <-tn.closed:
	}
}
