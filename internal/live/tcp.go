package live

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
	"cup/internal/wire"
)

// TCPNetwork runs CUP peers as real TCP endpoints on the loopback
// interface: every peer owns a listener, query/update/clear-bit messages
// are wire-encoded frames over persistent connections, and the protocol
// state machine is the same internal/cup.Node the simulator drives. This
// is the deployment shape the paper describes — two logical channels per
// neighbor — expressed as sockets. It implements the same endpoint
// surface as *Network, including §2.9 runtime membership churn, so the
// scenario engine and the Deployment trial loop drive both.
type TCPNetwork struct {
	ov     *lockedOverlay
	router *cup.OverlayRouter
	cfg    Config
	start  time.Time
	// peersMu guards peers: churn appends new slots while traffic reads.
	peersMu sync.RWMutex
	peers   []*tcpPeer
	// portsMu guards ports, the listener count currently reserved against
	// the shared port budget (churn adjusts it at runtime).
	portsMu sync.Mutex
	ports   int
	stats   Stats
	wg      sync.WaitGroup
	closed  chan struct{}
	once    sync.Once
}

// tcpPeer is one protocol endpoint: a listener, an inbox serializing all
// protocol work onto one goroutine, and lazily dialed outbound conns.
type tcpPeer struct {
	id      overlay.NodeID
	node    *cup.Node
	net     *TCPNetwork
	ln      net.Listener
	inbox   chan tcpWork
	waiters map[overlay.Key][]chan []cache.Entry
	// gone closes when the peer departs (§2.9); departing is set on the
	// peer's goroutine — see the goroutine transport's peer for the
	// retirement protocol both share.
	gone      chan struct{}
	departing bool

	mu    sync.Mutex // guards conns
	conns map[overlay.NodeID]net.Conn
}

// tcpWork is one unit for the peer goroutine: either an inbound protocol
// message or a control closure.
type tcpWork struct {
	msg  wire.Message
	ctrl func(*tcpPeer)
}

// NewTCPNetwork starts cfg.Nodes peers listening on 127.0.0.1 ephemeral
// ports over the configured overlay substrate. The listeners are drawn
// from the shared port budget (see budget.go), so concurrent networks
// fail fast instead of racing the kernel's ephemeral-port range; every
// error path releases the reservation. Close releases all sockets,
// goroutines, and the budget reservation.
func NewTCPNetwork(cfg Config) (*TCPNetwork, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("live: need at least one peer, got %d", cfg.Nodes)
	}
	cfg = cfg.withDefaults()
	if err := acquirePorts(cfg.Nodes); err != nil {
		return nil, err
	}
	ov := newLockedOverlay(
		buildOverlay(cfg.Overlay, cfg.Nodes, cup.OverlaySeed(cfg.Seed)),
		cfg.Overlay, cup.OverlaySeed(cfg.Seed)+1)
	tn := &TCPNetwork{
		ov:     ov,
		router: cup.NewOverlayRouter(ov),
		cfg:    cfg,
		start:  time.Now(),
		ports:  cfg.Nodes,
		closed: make(chan struct{}),
	}
	tn.router.Dynamic = ov.dynamic() != nil
	tn.peers = make([]*tcpPeer, cfg.Nodes)
	for i := range tn.peers {
		p, err := tn.newTCPPeer(overlay.NodeID(i))
		if err != nil {
			tn.Close()
			return nil, err
		}
		tn.peers[i] = p
	}
	for _, p := range tn.peers {
		tn.wg.Add(2)
		go p.acceptLoop(&tn.wg)
		go p.workLoop(&tn.wg)
	}
	return tn, nil
}

// newTCPPeer binds one loopback listener and constructs (but does not
// start) the peer that owns it.
func (tn *TCPNetwork) newTCPPeer(id overlay.NodeID) (*tcpPeer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: listen: %w", err)
	}
	p := &tcpPeer{
		id:      id,
		node:    cup.NewNode(id, tn.cfg.Node, tn.router, tn.now),
		net:     tn,
		ln:      ln,
		inbox:   make(chan tcpWork, tn.cfg.InboxDepth),
		waiters: make(map[overlay.Key][]chan []cache.Entry),
		gone:    make(chan struct{}),
		conns:   make(map[overlay.NodeID]net.Conn),
	}
	p.node.SetObserver(tn.cfg.Observer)
	return p, nil
}

func (tn *TCPNetwork) now() sim.Time { return sim.Time(time.Since(tn.start).Seconds()) }

// Now exposes the network clock.
func (tn *TCPNetwork) Now() sim.Time { return tn.now() }

// Size returns the number of peer slots ever allocated (dense IDs,
// never reused); use IsAlive for current membership.
func (tn *TCPNetwork) Size() int {
	tn.peersMu.RLock()
	defer tn.peersMu.RUnlock()
	return len(tn.peers)
}

func (tn *TCPNetwork) peerAt(id overlay.NodeID) *tcpPeer {
	tn.peersMu.RLock()
	defer tn.peersMu.RUnlock()
	if int(id) < 0 || int(id) >= len(tn.peers) {
		return nil
	}
	return tn.peers[id]
}

func (tn *TCPNetwork) peerList() []*tcpPeer {
	tn.peersMu.RLock()
	defer tn.peersMu.RUnlock()
	return append([]*tcpPeer(nil), tn.peers...)
}

// IsAlive reports whether node id exists and has not departed.
func (tn *TCPNetwork) IsAlive(id overlay.NodeID) bool {
	p := tn.peerAt(id)
	if p == nil {
		return false
	}
	select {
	case <-p.gone:
		return false
	default:
		return true
	}
}

// Done closes when the network shuts down.
func (tn *TCPNetwork) Done() <-chan struct{} { return tn.closed }

// IsClosed reports whether Close has been called.
func (tn *TCPNetwork) IsClosed() bool {
	select {
	case <-tn.closed:
		return true
	default:
		return false
	}
}

// HopDelay is zero: hops cost real loopback round-trips, not an
// injected delay.
func (tn *TCPNetwork) HopDelay() time.Duration { return 0 }

// Addr returns the listen address of peer id (for external clients).
func (tn *TCPNetwork) Addr(id overlay.NodeID) string { return tn.peerAt(id).ln.Addr().String() }

// Authority returns the node owning key.
func (tn *TCPNetwork) Authority(key overlay.Key) overlay.NodeID { return tn.ov.Owner(key) }

// Stats returns a snapshot of message counters.
func (tn *TCPNetwork) Stats() Stats {
	return Stats{
		QueryMsgs:    atomic.LoadUint64(&tn.stats.QueryMsgs),
		UpdateMsgs:   atomic.LoadUint64(&tn.stats.UpdateMsgs),
		ClearBitMsgs: atomic.LoadUint64(&tn.stats.ClearBitMsgs),
		Joins:        atomic.LoadUint64(&tn.stats.Joins),
		Leaves:       atomic.LoadUint64(&tn.stats.Leaves),
	}
}

// InboxLoad sums occupancy and capacity across live peers' inboxes.
func (tn *TCPNetwork) InboxLoad() (used, capacity int) {
	for _, p := range tn.peerList() {
		select {
		case <-p.gone:
			continue
		default:
		}
		used += len(p.inbox)
		capacity += cap(p.inbox)
	}
	return used, capacity
}

// Quiesced reports whether no messages were counted across one probe
// window, as on the goroutine transport.
func (tn *TCPNetwork) Quiesced(window time.Duration) bool {
	before := tn.Stats()
	timer := time.NewTimer(window)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-tn.closed:
		return true
	}
	return tn.Stats() == before
}

// Close tears the network down: listeners, connections, goroutines, and
// the port-budget reservation.
func (tn *TCPNetwork) Close() {
	tn.once.Do(func() {
		close(tn.closed)
		for _, p := range tn.peerList() {
			if p == nil {
				continue
			}
			p.shutdownSockets()
		}
		tn.portsMu.Lock()
		releasePorts(tn.ports)
		tn.ports = 0
		tn.portsMu.Unlock()
	})
	tn.wg.Wait()
}

// shutdownSockets closes the peer's listener and every open connection.
func (p *tcpPeer) shutdownSockets() {
	if p.ln != nil {
		p.ln.Close()
	}
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// acceptLoop takes inbound connections and spawns frame readers.
func (p *tcpPeer) acceptLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.net.wg.Add(1)
		go p.readLoop(conn, &p.net.wg)
	}
}

// readLoop decodes frames off one connection into the peer's inbox.
func (p *tcpPeer) readLoop(conn net.Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	defer conn.Close()
	for {
		m, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		select {
		case p.inbox <- tcpWork{msg: m}:
		case <-p.gone:
			return
		case <-p.net.closed:
			return
		}
	}
}

// workLoop is the peer's single protocol goroutine. A departing peer
// switches to the retired state instead of exiting, so control closures
// racing the departure always complete.
func (p *tcpPeer) workLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-p.net.closed:
			return
		case w := <-p.inbox:
			if w.ctrl != nil {
				w.ctrl(p)
			} else {
				p.handleWire(w.msg)
			}
			if p.departing {
				close(p.gone)
				p.retired()
				return
			}
		}
	}
}

// retired services control closures (only) until network shutdown;
// protocol frames are the departure's in-flight losses.
func (p *tcpPeer) retired() {
	for {
		select {
		case <-p.net.closed:
			return
		case w := <-p.inbox:
			if w.ctrl != nil {
				w.ctrl(p)
			}
		}
	}
}

func (p *tcpPeer) handleWire(m wire.Message) {
	var acts []cup.Action
	switch v := m.(type) {
	case wire.Query:
		acts = p.node.HandleQuery(v.From, v.Key, v.QueryID)
	case wire.UpdateMsg:
		acts = p.node.HandleUpdate(v.From, v.Update)
	case wire.ClearBit:
		acts = p.node.HandleClearBit(v.From, v.Key)
	case wire.Hello:
		// Connection identification only; nothing protocol-visible.
	}
	p.dispatch(acts)
}

func (p *tcpPeer) dispatch(acts []cup.Action) {
	for _, a := range acts {
		switch a.Kind {
		case cup.ActSendQuery:
			atomic.AddUint64(&p.net.stats.QueryMsgs, 1)
			p.sendWire(a.To, wire.Query{From: p.id, Key: a.Key, QueryID: a.QueryID})
		case cup.ActSendUpdate:
			atomic.AddUint64(&p.net.stats.UpdateMsgs, 1)
			p.sendWire(a.To, wire.UpdateMsg{From: p.id, Update: a.Update})
		case cup.ActSendClearBit:
			atomic.AddUint64(&p.net.stats.ClearBitMsgs, 1)
			p.sendWire(a.To, wire.ClearBit{From: p.id, Key: a.Key})
		case cup.ActDeliverLocal:
			for _, ch := range p.waiters[a.Key] {
				// Cannot block: each waiter channel is buffered(1), owned by
				// one Lookup, and removed from the map below before any
				// second delivery could target it.
				ch <- a.Entries //cup:allowblocking
			}
			delete(p.waiters, a.Key)
		}
	}
}

// sendWire writes a frame on the persistent connection to a neighbor,
// dialing on first use. Failures drop the message and the connection —
// CUP tolerates lost updates by falling back to expiration (§2.8), and a
// lost query is re-issued by the client. A departed peer's listener is
// closed, so frames to it fail the dial and drop, mirroring §2.9
// in-flight losses.
func (p *tcpPeer) sendWire(to overlay.NodeID, m wire.Message) {
	conn, err := p.connTo(to)
	if err != nil {
		return
	}
	if err := wire.WriteFrame(conn, m); err != nil {
		p.mu.Lock()
		if p.conns[to] == conn {
			delete(p.conns, to)
		}
		p.mu.Unlock()
		conn.Close()
	}
}

func (p *tcpPeer) connTo(to overlay.NodeID) (net.Conn, error) {
	target := p.net.peerAt(to)
	if target == nil {
		return nil, fmt.Errorf("live: no peer %v", to)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.conns[to]; ok {
		return c, nil
	}
	c, err := net.DialTimeout("tcp", target.ln.Addr().String(), 2*time.Second)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(c, wire.Hello{From: p.id}); err != nil {
		c.Close()
		return nil, err
	}
	p.conns[to] = c
	return c, nil
}

// Lookup posts a query for key at peer id and waits for the answer.
func (tn *TCPNetwork) Lookup(ctx context.Context, id overlay.NodeID, key overlay.Key) ([]cache.Entry, error) {
	p := tn.peerAt(id)
	if p == nil {
		return nil, fmt.Errorf("live: lookup at unknown node %v", id)
	}
	reply := make(chan []cache.Entry, 1)
	work := tcpWork{ctrl: func(p *tcpPeer) {
		if p.departing {
			reply <- nil //cup:allowblocking (buffered(1), sole send)
			return
		}
		acts := p.node.HandleQuery(cup.LocalClient, key, 0)
		p.waiters[key] = append(p.waiters[key], reply)
		p.dispatch(acts)
	}}
	select {
	case <-p.gone:
		return nil, fmt.Errorf("live: lookup at departed node %v", id)
	default:
	}
	select {
	case p.inbox <- work:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-tn.closed:
		return nil, ErrClosed
	}
	select {
	case entries := <-reply:
		return entries, nil
	case <-p.gone:
		return nil, fmt.Errorf("live: node %v departed during lookup", id)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-tn.closed:
		return nil, ErrClosed
	}
}

// control runs fn on peer id's goroutine and blocks until it completes,
// ctx cancels, or the network closes.
func (tn *TCPNetwork) control(ctx context.Context, id overlay.NodeID, fn func(*tcpPeer)) error {
	p := tn.peerAt(id)
	if p == nil {
		return fmt.Errorf("live: control of unknown node %v", id)
	}
	done := make(chan struct{})
	work := tcpWork{ctrl: func(p *tcpPeer) {
		fn(p)
		close(done)
	}}
	select {
	case p.inbox <- work:
	case <-ctx.Done():
		return ctx.Err()
	case <-tn.closed:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-tn.closed:
		return ErrClosed
	}
}

// AddReplica installs an index entry at the authority and announces it.
func (tn *TCPNetwork) AddReplica(key overlay.Key, replica int, addr string, lifetime time.Duration) {
	_ = tn.AddReplicaCtx(context.Background(), key, replica, addr, lifetime)
}

// AddReplicaCtx is AddReplica with cancellation.
func (tn *TCPNetwork) AddReplicaCtx(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error {
	return tn.replicaEvent(ctx, key, replica, addr, lifetime, cup.Append)
}

// Refresh extends (key, replica)'s lifetime, propagating to subscribers.
func (tn *TCPNetwork) Refresh(key overlay.Key, replica int, addr string, lifetime time.Duration) {
	_ = tn.RefreshCtx(context.Background(), key, replica, addr, lifetime)
}

// RefreshCtx is Refresh with cancellation.
func (tn *TCPNetwork) RefreshCtx(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error {
	return tn.replicaEvent(ctx, key, replica, addr, lifetime, cup.Refresh)
}

func (tn *TCPNetwork) replicaEvent(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration, ty cup.UpdateType) error {
	life := sim.Duration(lifetime.Seconds())
	return tn.control(ctx, tn.Authority(key), func(p *tcpPeer) {
		e := cache.Entry{Key: key, Replica: replica, Addr: addr, Expires: p.net.now().Add(life)}
		p.node.InstallLocal(e)
		u := cup.Update{Key: key, Type: ty, Entries: []cache.Entry{e}, Replica: replica,
			Expires: e.Expires, Lifetime: life}
		p.dispatch(p.node.OriginateUpdate(u))
	})
}

// RemoveReplica deletes (key, replica) at the authority and propagates a
// Delete update.
func (tn *TCPNetwork) RemoveReplica(key overlay.Key, replica int) {
	_ = tn.RemoveReplicaCtx(context.Background(), key, replica)
}

// RemoveReplicaCtx is RemoveReplica with cancellation.
func (tn *TCPNetwork) RemoveReplicaCtx(ctx context.Context, key overlay.Key, replica int) error {
	return tn.control(ctx, tn.Authority(key), func(p *tcpPeer) {
		p.node.RemoveLocal(key, replica)
		u := cup.Update{
			Key: key, Type: cup.Delete, Replica: replica,
			Expires: p.net.now().Add(sim.Duration(3600)),
		}
		p.dispatch(p.node.OriginateUpdate(u))
	})
}

// SetCapacity adjusts a peer's outgoing update capacity fraction.
func (tn *TCPNetwork) SetCapacity(id overlay.NodeID, c float64) {
	_ = tn.control(context.Background(), id, func(p *tcpPeer) { p.node.SetCapacity(c) })
}

// Inspect runs fn on node id's goroutine with exclusive access to its
// protocol state.
func (tn *TCPNetwork) Inspect(id overlay.NodeID, fn func(*cup.Node)) {
	_ = tn.control(context.Background(), id, func(p *tcpPeer) { fn(p.node) })
}

// PumpTraffic replays a Traffic stream against the TCP peers — the same
// scenario engine as the goroutine transport.
func (tn *TCPNetwork) PumpTraffic(ctx context.Context, tr cup.Traffic, env cup.TrafficEnv, timeScale float64) error {
	return pumpTraffic(ctx, tn, tr, env, timeScale)
}

// RunFaults replays fault scripts against the TCP peers; a failing
// intervention aborts with a descriptive error.
func (tn *TCPNetwork) RunFaults(ctx context.Context, faults []cup.Fault, surf cup.FaultSurface, start, duration, timeScale float64) error {
	return runFaults(ctx, tn, faults, surf, start, duration, timeScale)
}

// FaultSurface builds the fault control plane over this network.
func (tn *TCPNetwork) FaultSurface(keys []overlay.Key, replicas int, lifetime time.Duration, rng *rand.Rand) cup.FaultSurface {
	return &liveSurface{ep: tn, keys: keys, replicas: replicas, lifetime: lifetime, rng: rng}
}

// --- runtime membership churn (§2.9) ----------------------------------

func (tn *TCPNetwork) lov() *lockedOverlay { return tn.ov }

func (tn *TCPNetwork) invalidateRoutes() { tn.router.Invalidate() }

func (tn *TCPNetwork) slots() int { return tn.Size() }

func (tn *TCPNetwork) aliveSlot(id overlay.NodeID) bool { return tn.IsAlive(id) }

func (tn *TCPNetwork) spawnMember(id overlay.NodeID) error {
	// One more listener against the shared budget; released on any
	// failure so churn keeps the ledger balanced.
	if err := acquirePorts(1); err != nil {
		return err
	}
	p, err := tn.newTCPPeer(id)
	if err != nil {
		releasePorts(1)
		return err
	}
	tn.peersMu.Lock()
	if int(id) != len(tn.peers) {
		tn.peersMu.Unlock()
		p.shutdownSockets()
		releasePorts(1)
		return fmt.Errorf("live: spawn of non-dense node id %v (have %d slots)", id, len(tn.peers))
	}
	tn.peers = append(tn.peers, p)
	tn.peersMu.Unlock()
	tn.portsMu.Lock()
	tn.ports++
	tn.portsMu.Unlock()
	tn.wg.Add(2)
	go p.acceptLoop(&tn.wg)
	go p.workLoop(&tn.wg)
	return nil
}

func (tn *TCPNetwork) retireMember(ctx context.Context, id overlay.NodeID) ([]cache.Entry, error) {
	p := tn.peerAt(id)
	if p == nil {
		return nil, fmt.Errorf("live: retire of unknown node %v", id)
	}
	var entries []cache.Entry
	err := tn.control(ctx, id, func(pp *tcpPeer) {
		dir := pp.node.LocalDirectory()
		for _, k := range dir.Keys() {
			entries = append(entries, dir.All(k)...)
			dir.RemoveKey(k)
		}
		pp.departing = true
	})
	if err != nil {
		return nil, err
	}
	select {
	case <-p.gone:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-tn.closed:
		return nil, ErrClosed
	}
	// The departed peer's sockets close now: dials to it fail and its
	// budget reservation returns to the pool.
	p.shutdownSockets()
	tn.portsMu.Lock()
	if tn.ports > 0 {
		tn.ports--
		releasePorts(1)
	}
	tn.portsMu.Unlock()
	return entries, nil
}

func (tn *TCPNetwork) controlNode(ctx context.Context, id overlay.NodeID, fn func(*cup.Node)) error {
	return tn.control(ctx, id, func(p *tcpPeer) { fn(p.node) })
}

func (tn *TCPNetwork) emitMembership(kind cup.EventKind, id overlay.NodeID) {
	if tn.cfg.Observer == nil {
		return
	}
	tn.cfg.Observer.OnEvent(cup.Event{Kind: kind, Time: tn.now(), Node: id, Peer: overlay.NoNode})
}

func (tn *TCPNetwork) countChurn(join bool) {
	if join {
		atomic.AddUint64(&tn.stats.Joins, 1)
	} else {
		atomic.AddUint64(&tn.stats.Leaves, 1)
	}
}

// Join adds one TCP peer to the running network (§2.9 arrivals); see
// Network.Join.
func (tn *TCPNetwork) Join(ctx context.Context) (overlay.NodeID, error) {
	return churnJoin(ctx, tn)
}

// Leave retires TCP peer id (§2.9 departures); see Network.Leave.
func (tn *TCPNetwork) Leave(ctx context.Context, id overlay.NodeID) error {
	return churnLeave(ctx, tn, id)
}
