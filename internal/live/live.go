// Package live runs CUP as a real concurrent system: every peer is a
// goroutine, query channels and update channels are Go channels, and the
// per-hop network delay is wall-clock time. It drives exactly the same
// protocol state machine (internal/cup.Node) as the discrete-event
// simulator, so the simulated protocol and the deployable one cannot
// diverge — the transports are interchangeable shells.
//
// This is the runtime the examples and cmd/cuplive use; it is also a
// demonstration that the paper's node model ("every node maintains two
// logical channels per neighbor") maps one-to-one onto goroutines and
// channels.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cup/internal/cache"
	"cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// Stats aggregates network-wide message counts.
type Stats struct {
	QueryMsgs    uint64
	UpdateMsgs   uint64
	ClearBitMsgs uint64
	// Joins and Leaves count §2.9 runtime membership events.
	Joins  uint64
	Leaves uint64
}

// Network hosts a set of CUP peers over an overlay.
type Network struct {
	ov     *lockedOverlay
	router *cup.OverlayRouter
	cfg    Config
	delay  time.Duration
	start  time.Time
	// peersMu guards nodes: membership churn appends new peer slots while
	// traffic pumps and deliveries read them.
	peersMu sync.RWMutex
	nodes   []*peer
	stats   Stats
	wg      sync.WaitGroup
	closed  chan struct{}
	once    sync.Once
}

type msgKind int

const (
	msgQuery msgKind = iota
	msgUpdate
	msgClearBit
	msgControl
)

type message struct {
	kind   msgKind
	from   overlay.NodeID
	key    overlay.Key
	qid    uint64
	update cup.Update
	ctrl   func(*peer) // msgControl: run on the peer's goroutine
}

// peer is one goroutine-hosted protocol node.
type peer struct {
	id    overlay.NodeID
	node  *cup.Node
	inbox chan message
	net   *Network
	// waiters holds the local lookups awaiting an answer, so responses
	// fan out to every open client connection and cancelled lookups can
	// deregister instead of leaking.
	waiters map[overlay.Key][]*lookupWaiter
	// gone closes when the peer departs (§2.9): sends to it are dropped
	// as in-flight losses and lookups at it fail fast. The slot stays in
	// the nodes slice — IDs are dense and never reused.
	gone chan struct{}
	// departing is set on the peer's own goroutine by retireMember; the
	// loop observes it after the control message and switches to the
	// retired state.
	departing bool
}

// lookupWaiter is one open local client connection. reply is buffered so
// an answer racing a cancellation never blocks the peer goroutine.
type lookupWaiter struct {
	reply chan []cache.Entry
}

// Config parameterizes a live network.
type Config struct {
	// Nodes is the overlay size.
	Nodes int
	// Overlay selects the routing substrate by its overlay-registry name:
	// "can" (default), "chord", or "kademlia".
	Overlay string
	// HopDelay is the wall-clock per-hop latency (default 1ms).
	HopDelay time.Duration
	// Node is the per-node protocol configuration (default cup.Defaults()).
	Node cup.Config
	// Seed drives overlay construction.
	Seed int64
	// InboxDepth bounds each peer's mailbox (default 1024).
	InboxDepth int
	// Observer, when set, receives the protocol event stream from every
	// peer. It is called from peer goroutines concurrently and must be
	// safe for concurrent use (cup.Bus is).
	Observer cup.Observer
}

// withDefaults fills unset fields from the shared defaults table in
// internal/cup — the same table the simulator's Params defaulting uses,
// so the two runtimes cannot drift.
func (cfg Config) withDefaults() Config {
	if cfg.HopDelay == 0 {
		cfg.HopDelay = cup.DefaultLiveHopDelay
	}
	if cfg.Node.Policy == nil {
		cfg.Node = cup.Defaults()
	}
	if cfg.InboxDepth == 0 {
		cfg.InboxDepth = cup.DefaultInboxDepth
	}
	if cfg.Seed == 0 {
		cfg.Seed = cup.DefaultSeed
	}
	if cfg.Overlay == "" {
		cfg.Overlay = cup.DefaultOverlayKind
	}
	return cfg
}

// NewNetwork builds an overlay of cfg.Nodes peers (a CAN unless
// cfg.Overlay selects another registered substrate) and starts one
// goroutine per peer. Callers must Close the network when done.
func NewNetwork(cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("live: Nodes must be positive")
	}
	cfg = cfg.withDefaults()
	// The overlay seed derivation is shared with the simulator, so the
	// same seed and options build the same topology on either transport.
	ov := newLockedOverlay(
		buildOverlay(cfg.Overlay, cfg.Nodes, cup.OverlaySeed(cfg.Seed)),
		cfg.Overlay, cup.OverlaySeed(cfg.Seed)+1)
	n := &Network{
		ov:     ov,
		router: cup.NewOverlayRouter(ov),
		cfg:    cfg,
		delay:  cfg.HopDelay,
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	// Memoized routes go stale under churn; the flag must be set before
	// any peer goroutine starts, since they read it without a lock.
	n.router.Dynamic = ov.dynamic() != nil
	n.nodes = make([]*peer, cfg.Nodes)
	for i := range n.nodes {
		id := overlay.NodeID(i)
		p := n.newPeer(id)
		n.nodes[i] = p
		n.wg.Add(1)
		go p.loop(&n.wg)
	}
	return n
}

// newPeer constructs (but does not start) one goroutine-hosted node.
func (n *Network) newPeer(id overlay.NodeID) *peer {
	p := &peer{
		id:      id,
		node:    cup.NewNode(id, n.cfg.Node, n.router, n.now),
		inbox:   make(chan message, n.cfg.InboxDepth),
		net:     n,
		waiters: make(map[overlay.Key][]*lookupWaiter),
		gone:    make(chan struct{}),
	}
	p.node.SetObserver(n.cfg.Observer)
	return p
}

// now maps wall time onto the protocol's virtual clock.
func (n *Network) now() sim.Time { return sim.Time(time.Since(n.start).Seconds()) }

// Now exposes the network clock (useful for constructing entry lifetimes).
func (n *Network) Now() sim.Time { return n.now() }

// Size returns the number of peer slots ever allocated (IDs are dense
// and never reused, so departed peers keep their slot). Use IsAlive to
// test current membership.
func (n *Network) Size() int {
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	return len(n.nodes)
}

// peerAt returns peer id, nil when out of range.
func (n *Network) peerAt(id overlay.NodeID) *peer {
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil
	}
	return n.nodes[id]
}

// peerList snapshots the peer slots.
func (n *Network) peerList() []*peer {
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	return append([]*peer(nil), n.nodes...)
}

// IsAlive reports whether node id exists and has not departed.
func (n *Network) IsAlive(id overlay.NodeID) bool {
	p := n.peerAt(id)
	if p == nil {
		return false
	}
	select {
	case <-p.gone:
		return false
	default:
		return true
	}
}

// HopDelay returns the configured per-hop wall-clock latency.
func (n *Network) HopDelay() time.Duration { return n.delay }

// IsClosed reports whether Close has been called.
func (n *Network) IsClosed() bool {
	select {
	case <-n.closed:
		return true
	default:
		return false
	}
}

// Overlay exposes the underlying overlay (read-only use).
func (n *Network) Overlay() overlay.Overlay { return n.ov }

// Stats returns a snapshot of message counters.
func (n *Network) Stats() Stats {
	return Stats{
		QueryMsgs:    atomic.LoadUint64(&n.stats.QueryMsgs),
		UpdateMsgs:   atomic.LoadUint64(&n.stats.UpdateMsgs),
		ClearBitMsgs: atomic.LoadUint64(&n.stats.ClearBitMsgs),
		Joins:        atomic.LoadUint64(&n.stats.Joins),
		Leaves:       atomic.LoadUint64(&n.stats.Leaves),
	}
}

// InboxLoad sums current occupancy and capacity across every live peer's
// inbox — a point-in-time congestion gauge for telemetry. Channel
// lengths are sampled racily, which is fine for a gauge.
func (n *Network) InboxLoad() (used, capacity int) {
	for _, p := range n.peerList() {
		select {
		case <-p.gone:
			continue
		default:
		}
		used += len(p.inbox)
		capacity += cap(p.inbox)
	}
	return used, capacity
}

// Close shuts down all peers and waits for their goroutines.
func (n *Network) Close() {
	n.once.Do(func() { close(n.closed) })
	n.wg.Wait()
}

// send delivers a message after the per-hop delay. Deliveries racing a
// Close are dropped, mirroring a network partition at shutdown; sends to
// a departed peer are dropped as in-flight losses (§2.9).
func (n *Network) send(to overlay.NodeID, m message) {
	time.AfterFunc(n.delay, func() {
		p := n.peerAt(to)
		if p == nil {
			return
		}
		select {
		case p.inbox <- m:
		case <-p.gone:
		case <-n.closed:
		}
	})
}

// loop is the peer goroutine: one message at a time through the protocol
// state machine, actions dispatched back onto the network. A departing
// peer switches to the retired state instead of exiting so that control
// messages racing the departure always complete.
func (p *peer) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-p.net.closed:
			return
		case m := <-p.inbox:
			p.handle(m)
			if p.departing {
				close(p.gone)
				p.retired()
				return
			}
		}
	}
}

// retired services a departed peer's inbox until network shutdown:
// control callbacks still run (a caller that enqueued one while the
// departure raced must not hang on its done channel), while protocol
// messages are discarded — they are the departure's in-flight losses.
// The goroutine itself is the drain; slots are never reused, so at most
// one retired goroutine exists per departed peer.
func (p *peer) retired() {
	for {
		select {
		case <-p.net.closed:
			return
		case m := <-p.inbox:
			if m.kind == msgControl {
				m.ctrl(p)
			}
		}
	}
}

func (p *peer) handle(m message) {
	var acts []cup.Action
	switch m.kind {
	case msgQuery:
		acts = p.node.HandleQuery(m.from, m.key, m.qid)
	case msgUpdate:
		acts = p.node.HandleUpdate(m.from, m.update)
	case msgClearBit:
		acts = p.node.HandleClearBit(m.from, m.key)
	case msgControl:
		m.ctrl(p)
		return
	}
	p.dispatch(acts)
}

func (p *peer) dispatch(acts []cup.Action) {
	for _, a := range acts {
		switch a.Kind {
		case cup.ActSendQuery:
			atomic.AddUint64(&p.net.stats.QueryMsgs, 1)
			p.net.send(a.To, message{kind: msgQuery, from: p.id, key: a.Key, qid: a.QueryID})
		case cup.ActSendUpdate:
			atomic.AddUint64(&p.net.stats.UpdateMsgs, 1)
			p.net.send(a.To, message{kind: msgUpdate, from: p.id, key: a.Key, update: a.Update})
		case cup.ActSendClearBit:
			atomic.AddUint64(&p.net.stats.ClearBitMsgs, 1)
			p.net.send(a.To, message{kind: msgClearBit, from: p.id, key: a.Key})
		case cup.ActDeliverLocal:
			for _, w := range p.waiters[a.Key] {
				// Cannot block: reply is buffered(1), owned by exactly one
				// Lookup, and the waiter leaves the map before a second send
				// could happen.
				w.reply <- a.Entries //cup:allowblocking
			}
			delete(p.waiters, a.Key)
		}
	}
}

// ErrClosed is returned by client operations racing a Close.
var ErrClosed = errors.New("live: network closed")

// Lookup posts a search query for key at node id and waits for the index
// entries (or ctx cancellation). A fresh locally cached answer returns
// immediately; otherwise the query travels the overlay. A cancelled
// lookup deregisters its open connection at the peer, so abandoned
// queries on a slow or partitioned network do not accumulate state.
func (n *Network) Lookup(ctx context.Context, id overlay.NodeID, key overlay.Key) ([]cache.Entry, error) {
	p := n.peerAt(id)
	if p == nil {
		return nil, fmt.Errorf("live: lookup at unknown node %v", id)
	}
	w := &lookupWaiter{reply: make(chan []cache.Entry, 1)}
	ctrl := message{kind: msgControl, ctrl: func(p *peer) {
		if p.departing {
			// Departed between the aliveness race and the control's turn:
			// answer empty rather than strand the waiter.
			w.reply <- nil //cup:allowblocking (buffered(1), sole send)
			return
		}
		acts := p.node.HandleQuery(cup.LocalClient, key, 0)
		// A synchronous answer arrives as a DeliverLocal action; register
		// the waiter first so both paths converge.
		p.waiters[key] = append(p.waiters[key], w)
		p.dispatch(acts)
	}}
	select {
	case <-p.gone:
		return nil, fmt.Errorf("live: lookup at departed node %v", id)
	default:
	}
	select {
	case p.inbox <- ctrl:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.closed:
		return nil, ErrClosed
	}
	select {
	case entries := <-w.reply:
		return entries, nil
	case <-p.gone:
		// The peer departed with the query open; its state is gone.
		return nil, fmt.Errorf("live: node %v departed during lookup", id)
	case <-ctx.Done():
		n.forgetWaiter(id, key, w)
		return nil, ctx.Err()
	case <-n.closed:
		return nil, ErrClosed
	}
}

// forgetWaiter asks the peer to drop a cancelled lookup's open
// connection. Best-effort and non-blocking: if the network is shutting
// down or the inbox is saturated, the buffered reply channel still keeps
// a late answer from blocking the peer goroutine.
func (n *Network) forgetWaiter(id overlay.NodeID, key overlay.Key, w *lookupWaiter) {
	p := n.peerAt(id)
	if p == nil {
		return
	}
	ctrl := message{kind: msgControl, ctrl: func(p *peer) {
		ws := p.waiters[key]
		for i, got := range ws {
			if got == w {
				p.waiters[key] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(p.waiters[key]) == 0 {
			delete(p.waiters, key)
		}
	}}
	select {
	case p.inbox <- ctrl:
	case <-n.closed:
	default:
	}
}

// Authority returns the node owning key.
func (n *Network) Authority(key overlay.Key) overlay.NodeID { return n.ov.Owner(key) }

// control runs fn on node id's goroutine with exclusive access to its
// protocol state and blocks until it completes, ctx cancels, or the
// network closes. On cancellation fn may still run later — it was already
// queued — but the caller stops waiting.
func (n *Network) control(ctx context.Context, id overlay.NodeID, fn func(*peer)) error {
	p := n.peerAt(id)
	if p == nil {
		return fmt.Errorf("live: control of unknown node %v", id)
	}
	done := make(chan struct{})
	ctrl := message{kind: msgControl, ctrl: func(p *peer) {
		fn(p)
		close(done)
	}}
	select {
	case p.inbox <- ctrl:
	case <-ctx.Done():
		return ctx.Err()
	case <-n.closed:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.closed:
		return ErrClosed
	}
}

// AddReplica installs an index entry for (key, replica) at its authority
// and propagates the birth as an Append update. lifetime bounds the
// entry's freshness; replicas should Refresh before it elapses.
func (n *Network) AddReplica(key overlay.Key, replica int, addr string, lifetime time.Duration) {
	_ = n.AddReplicaCtx(context.Background(), key, replica, addr, lifetime)
}

// AddReplicaCtx is AddReplica with cancellation: it returns once the
// authority has registered the replica (propagation continues async).
func (n *Network) AddReplicaCtx(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error {
	return n.replicaEvent(ctx, key, replica, addr, lifetime, cup.Append)
}

// Refresh extends the lifetime of (key, replica), propagating a Refresh
// update to interested peers.
func (n *Network) Refresh(key overlay.Key, replica int, addr string, lifetime time.Duration) {
	_ = n.RefreshCtx(context.Background(), key, replica, addr, lifetime)
}

// RefreshCtx is Refresh with cancellation.
func (n *Network) RefreshCtx(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error {
	return n.replicaEvent(ctx, key, replica, addr, lifetime, cup.Refresh)
}

func (n *Network) replicaEvent(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration, ty cup.UpdateType) error {
	life := sim.Duration(lifetime.Seconds())
	return n.control(ctx, n.Authority(key), func(p *peer) {
		e := cache.Entry{
			Key: key, Replica: replica, Addr: addr,
			Expires: p.net.now().Add(life),
		}
		p.node.InstallLocal(e)
		u := cup.Update{
			Key: key, Type: ty, Entries: []cache.Entry{e}, Replica: replica,
			Expires: e.Expires, Lifetime: life,
		}
		p.dispatch(p.node.OriginateUpdate(u))
	})
}

// RemoveReplica deletes (key, replica) at the authority and propagates a
// Delete update so caches do not serve the dead replica until expiry.
func (n *Network) RemoveReplica(key overlay.Key, replica int) {
	_ = n.RemoveReplicaCtx(context.Background(), key, replica)
}

// RemoveReplicaCtx is RemoveReplica with cancellation.
func (n *Network) RemoveReplicaCtx(ctx context.Context, key overlay.Key, replica int) error {
	return n.control(ctx, n.Authority(key), func(p *peer) {
		p.node.RemoveLocal(key, replica)
		u := cup.Update{
			Key: key, Type: cup.Delete, Replica: replica,
			Expires: p.net.now().Add(sim.Duration(3600)),
		}
		p.dispatch(p.node.OriginateUpdate(u))
	})
}

// SetCapacity adjusts a peer's outgoing update capacity fraction
// (negative restores full capacity), as in the §3.7 experiments.
func (n *Network) SetCapacity(id overlay.NodeID, c float64) {
	_ = n.control(context.Background(), id, func(p *peer) { p.node.SetCapacity(c) })
}

// Inspect runs fn on node id's goroutine with exclusive access to its
// protocol state; it blocks until fn completes. Intended for tests and
// diagnostics.
func (n *Network) Inspect(id overlay.NodeID, fn func(*cup.Node)) {
	_ = n.control(context.Background(), id, func(p *peer) { fn(p.node) })
}

// Quiesced reports whether no messages were in flight across one probe
// window: it samples the traffic counters, waits for window, and samples
// again. Settling callers poll it until two samples agree.
func (n *Network) Quiesced(window time.Duration) bool {
	before := n.Stats()
	timer := time.NewTimer(window)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-n.closed:
		return true
	}
	return n.Stats() == before
}

// --- runtime membership churn (§2.9) ----------------------------------
//
// Network implements churnHost; the choreography itself lives in
// churn.go and is shared with the TCP transport.

func (n *Network) lov() *lockedOverlay { return n.ov }

func (n *Network) invalidateRoutes() { n.router.Invalidate() }

func (n *Network) slots() int { return n.Size() }

func (n *Network) aliveSlot(id overlay.NodeID) bool { return n.IsAlive(id) }

func (n *Network) spawnMember(id overlay.NodeID) error {
	p := n.newPeer(id)
	n.peersMu.Lock()
	if int(id) != len(n.nodes) {
		n.peersMu.Unlock()
		return fmt.Errorf("live: spawn of non-dense node id %v (have %d slots)", id, len(n.nodes))
	}
	n.nodes = append(n.nodes, p)
	n.peersMu.Unlock()
	n.wg.Add(1)
	go p.loop(&n.wg)
	return nil
}

func (n *Network) retireMember(ctx context.Context, id overlay.NodeID) ([]cache.Entry, error) {
	p := n.peerAt(id)
	if p == nil {
		return nil, fmt.Errorf("live: retire of unknown node %v", id)
	}
	var entries []cache.Entry
	err := n.control(ctx, id, func(pp *peer) {
		dir := pp.node.LocalDirectory()
		for _, k := range dir.Keys() {
			entries = append(entries, dir.All(k)...)
			dir.RemoveKey(k)
		}
		pp.departing = true
	})
	if err != nil {
		return nil, err
	}
	// Wait for the goroutine to acknowledge (gone closes) so later
	// aliveness checks — and the hand-over that follows — observe the
	// departure.
	select {
	case <-p.gone:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.closed:
		return nil, ErrClosed
	}
	return entries, nil
}

func (n *Network) controlNode(ctx context.Context, id overlay.NodeID, fn func(*cup.Node)) error {
	return n.control(ctx, id, func(p *peer) { fn(p.node) })
}

func (n *Network) emitMembership(kind cup.EventKind, id overlay.NodeID) {
	if n.cfg.Observer == nil {
		return
	}
	n.cfg.Observer.OnEvent(cup.Event{Kind: kind, Time: n.now(), Node: id, Peer: overlay.NoNode})
}

func (n *Network) countChurn(join bool) {
	if join {
		atomic.AddUint64(&n.stats.Joins, 1)
	} else {
		atomic.AddUint64(&n.stats.Leaves, 1)
	}
}

// Join adds one peer to the running network (§2.9 arrivals): the overlay
// wires it in, a fresh goroutine starts, previous owners hand over the
// index entries that now hash into its region, and affected neighbors
// patch their interest bit vectors. Returns the new node's ID, or a
// descriptive error when the overlay substrate is static.
func (n *Network) Join(ctx context.Context) (overlay.NodeID, error) {
	return churnJoin(ctx, n)
}

// Leave retires peer id (§2.9 departures): its directory hands over to
// each key's new authority, its goroutine stops applying protocol state,
// and nodes that routed through it re-knit. Errors on a static overlay,
// an unknown or already-departed node, or the last member.
func (n *Network) Leave(ctx context.Context, id overlay.NodeID) error {
	return churnLeave(ctx, n, id)
}
