package overlay

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashPointDeterministic(t *testing.T) {
	a := HashPoint("key-1")
	b := HashPoint("key-1")
	if a != b {
		t.Fatalf("HashPoint not deterministic: %v vs %v", a, b)
	}
}

func TestHashPointDistinctKeys(t *testing.T) {
	if HashPoint("key-1") == HashPoint("key-2") {
		t.Fatal("distinct keys hashed to identical points")
	}
}

func TestHashPointInUnitSquare(t *testing.T) {
	f := func(s string) bool {
		p := HashPoint(Key(s))
		return p.X >= 0 && p.X < 1 && p.Y >= 0 && p.Y < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPointCoordinatesIndependent(t *testing.T) {
	// X and Y use different salts, so they must differ for almost all keys.
	same := 0
	for i := 0; i < 1000; i++ {
		p := HashPoint(Key(string(rune('a' + i%26))))
		if p.X == p.Y {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d keys had X == Y", same)
	}
}

func TestHashPointUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over a 4x4 grid.
	var grid [4][4]int
	const n = 40000
	for i := 0; i < n; i++ {
		p := HashPoint(Key("uniform-" + string(rune(i)) + "-" + string(rune(i/17))))
		grid[int(p.X*4)][int(p.Y*4)]++
	}
	want := float64(n) / 16
	for x := range grid {
		for y := range grid[x] {
			got := float64(grid[x][y])
			if math.Abs(got-want)/want > 0.15 {
				t.Fatalf("cell (%d,%d) = %v, want ≈ %v", x, y, got, want)
			}
		}
	}
}

func TestHashIDDeterministic(t *testing.T) {
	if HashID("k") != HashID("k") {
		t.Fatal("HashID not deterministic")
	}
	if HashID("k1") == HashID("k2") {
		t.Fatal("HashID collided on trivially distinct keys")
	}
}

func TestHashNodeIDDiffersFromHashID(t *testing.T) {
	if HashNodeID("x") == HashID("x") {
		t.Fatal("node and key hash spaces are not salted apart")
	}
}

func TestNodeIDString(t *testing.T) {
	if NoNode.String() != "node(∅)" {
		t.Fatalf("NoNode.String() = %q", NoNode.String())
	}
	if NodeID(7).String() != "node(7)" {
		t.Fatalf("NodeID(7).String() = %q", NodeID(7).String())
	}
}

// staticOverlay is a line topology 0-1-2-…-(n-1) where node n-1 owns
// every key; used to test PathTo and Distance in isolation.
type staticOverlay struct{ n int }

func (s staticOverlay) Size() int        { return s.n }
func (s staticOverlay) Owner(Key) NodeID { return NodeID(s.n - 1) }
func (s staticOverlay) NextHop(n NodeID, _ Key) (NodeID, bool) {
	if int(n) == s.n-1 {
		return n, true
	}
	return n + 1, true
}
func (s staticOverlay) Neighbors(n NodeID) []NodeID {
	var out []NodeID
	if n > 0 {
		out = append(out, n-1)
	}
	if int(n) < s.n-1 {
		out = append(out, n+1)
	}
	return out
}

func TestPathToLine(t *testing.T) {
	o := staticOverlay{5}
	path := PathTo(o, 0, "k", 10)
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5", len(path))
	}
	if path[0] != 0 || path[4] != 4 {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	if d := Distance(o, 0, "k", 10); d != 4 {
		t.Fatalf("Distance = %d, want 4", d)
	}
	if d := Distance(o, 4, "k", 10); d != 0 {
		t.Fatalf("Distance at authority = %d, want 0", d)
	}
}

func TestPathToHopGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PathTo did not panic on exceeding maxHops")
		}
	}()
	PathTo(staticOverlay{100}, 0, "k", 3)
}
