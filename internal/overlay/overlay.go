// Package overlay defines the key space, node identity, and routing
// abstraction shared by the structured peer-to-peer overlays in this
// repository (the 2-D CAN in internal/can, the Chord ring in
// internal/chord, and the Kademlia XOR table in internal/kademlia), plus
// the registry (Register/Build/Kinds) that makes substrates pluggable by
// name.
//
// CUP (§2.2 of the paper) assumes only that "anytime a node issues a query
// for key K, the query will be routed along a well-defined structured path
// with a bounded number of hops from the querying node to the authority node
// for K", and that each hop is chosen deterministically by hashing K. The
// Overlay interface captures exactly that contract, so the CUP protocol core
// is overlay-agnostic — the ablation experiment A1 re-runs the evaluation
// across every registered substrate without touching protocol code.
package overlay

import (
	"fmt"
	"hash/fnv"
)

// NodeID identifies a node in the overlay. IDs are dense indexes assigned at
// construction; they index metric arrays and interest-bit maps.
type NodeID int32

// NoNode is the sentinel "no such node" value.
const NoNode = NodeID(-1)

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n == NoNode {
		return "node(∅)"
	}
	return fmt.Sprintf("node(%d)", int32(n))
}

// Key names a content item in the global index. Keys hash onto the overlay's
// coordinate space; the node whose region covers the hash owns the key's
// index entries and is its authority node.
type Key string

// Point is a position in the unit square [0,1)², the virtual coordinate
// space of the CAN. Chord uses only the first coordinate, scaled to its
// identifier ring.
type Point struct {
	X, Y float64
}

// hash64 hashes s with 64-bit FNV-1a, optionally salted, then runs the
// splitmix64 finalizer. Raw FNV-1a has a weak avalanche: keys differing
// only in a trailing digit ("key-0", "key-1", …) land on near-identical
// high bits, which clustered every workload key onto one CAN zone and
// broke the paper's "uniform hash function that evenly distributes the
// keys" assumption. The finalizer restores full-width diffusion.
func hash64(s string, salt byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	if salt != 0 {
		h.Write([]byte{salt})
	}
	v := h.Sum64()
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// unit maps a 64-bit hash to [0,1).
func unit(v uint64) float64 {
	return float64(v>>11) / float64(1<<53)
}

// HashPoint maps a key deterministically to a point in the unit square,
// using two independently salted FNV-1a hashes. The paper assumes "a uniform
// hash function that evenly distributes the keys to the space".
func HashPoint(k Key) Point {
	return Point{
		X: unit(hash64(string(k), 0)),
		Y: unit(hash64(string(k), 1)),
	}
}

// HashID maps a key to a 64-bit identifier for ring overlays.
func HashID(k Key) uint64 { return hash64(string(k), 0) }

// HashNodeID maps an arbitrary label (e.g. "node-17") to a ring identifier.
func HashNodeID(label string) uint64 { return hash64(label, 2) }

// Overlay is a structured P2P routing substrate. Implementations must be
// deterministic: the same key queried at the same node always follows the
// same path, which is what makes CUP's reverse-path update trees stable.
type Overlay interface {
	// Size returns the number of nodes.
	Size() int
	// Owner returns the authority node for key k.
	Owner(k Key) NodeID
	// NextHop returns the neighbor of n that is the next hop on the path
	// from n toward the authority for k. It returns n itself when n is the
	// authority. The second result is false if n has no route (cannot
	// happen in a connected overlay).
	NextHop(n NodeID, k Key) (NodeID, bool)
	// Neighbors returns the current neighbor set of n. The slice must not
	// be mutated by callers.
	Neighbors(n NodeID) []NodeID
}

// PathTo walks NextHop from n to the authority of k and returns the full
// path including both endpoints. maxHops guards against routing loops in a
// buggy overlay; it panics when exceeded because a loop is always a bug.
func PathTo(o Overlay, n NodeID, k Key, maxHops int) []NodeID {
	path := []NodeID{n}
	cur := n
	for hop := 0; ; hop++ {
		next, ok := o.NextHop(cur, k)
		if !ok {
			panic(fmt.Sprintf("overlay: no route from %v for key %q", cur, k))
		}
		if next == cur {
			return path
		}
		if hop >= maxHops {
			panic(fmt.Sprintf("overlay: path for key %q exceeded %d hops", k, maxHops))
		}
		path = append(path, next)
		cur = next
	}
}

// Distance returns the number of hops from n to the authority for k.
func Distance(o Overlay, n NodeID, k Key, maxHops int) int {
	return len(PathTo(o, n, k, maxHops)) - 1
}
