package overlay

import (
	"fmt"
	"sort"
	"strings"
)

// Builder constructs an overlay of n nodes. seed drives overlays with
// randomized construction (the CAN's random join points); overlays whose
// layout is fully determined by hashing (Chord, Kademlia) ignore it.
type Builder func(n int, seed int64) Overlay

// registry maps overlay kind names to builders. Kinds self-register from
// their package init functions (like database/sql drivers), so importing an
// overlay package — directly or blank — makes it buildable by name.
var registry = map[string]Builder{}

// Register makes an overlay kind buildable by name. It panics on an empty
// name, a nil builder, or a duplicate registration, all of which are
// programmer errors. Register is intended for package init functions and is
// not safe for concurrent use.
func Register(kind string, b Builder) {
	if kind == "" {
		panic("overlay: Register with empty kind")
	}
	if b == nil {
		panic(fmt.Sprintf("overlay: Register(%q) with nil builder", kind))
	}
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("overlay: Register(%q) called twice", kind))
	}
	registry[kind] = b
}

// Build constructs an overlay of the named kind. Unknown kinds return an
// error listing every registered kind, so callers can surface actionable
// messages without hard-coding the kind set.
func Build(kind string, n int, seed int64) (Overlay, error) {
	b, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("overlay: unknown kind %q (registered: %s)", kind, KindList())
	}
	return b(n, seed), nil
}

// MustBuild is Build for callers where an unknown kind is fatal.
func MustBuild(kind string, n int, seed int64) Overlay {
	ov, err := Build(kind, n, seed)
	if err != nil {
		panic(err.Error())
	}
	return ov
}

// Registered reports whether kind has been registered.
func Registered(kind string) bool {
	_, ok := registry[kind]
	return ok
}

// Kinds returns the registered kind names in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KindList renders the registered kinds as "a|b|c" for flag help and error
// messages.
func KindList() string { return strings.Join(Kinds(), "|") }
