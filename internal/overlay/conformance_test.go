// Shared conformance suite for every overlay substrate: the properties the
// CUP protocol core relies on (§2.2 of the paper) checked uniformly against
// the CAN, Chord, and Kademlia via the overlay registry.
package overlay_test

import (
	"fmt"
	"testing"

	"cup/internal/overlay"

	// Substrates under test self-register with the overlay registry.
	_ "cup/internal/can"
	_ "cup/internal/chord"
	_ "cup/internal/kademlia"
)

// conformanceKinds lists the substrates the suite runs against, with the
// per-kind contract variations. Symmetric neighbor sets are required only
// of the CAN (zone abutment is symmetric); Chord fingers and Kademlia
// buckets are directed.
var conformanceKinds = []struct {
	kind      string
	symmetric bool
}{
	{"can", true},
	{"chord", false},
	{"kademlia", false},
}

// maxHops is a generous routing bound: CAN paths are O(√n), ring and XOR
// paths O(log n); a loop would blow well past this and PathTo panics.
func maxHops(n int) int { return 10*n + 256 }

func TestConformanceKindsAreRegistered(t *testing.T) {
	for _, c := range conformanceKinds {
		if !overlay.Registered(c.kind) {
			t.Errorf("kind %q not registered (registry has: %s)", c.kind, overlay.KindList())
		}
	}
}

// TestConformance runs the full contract per kind and size: deterministic
// NextHop, Owner agreeing with the PathTo terminus from any start, bounded
// hop counts, neighbor-set hygiene, and (where required) symmetry.
func TestConformance(t *testing.T) {
	for _, c := range conformanceKinds {
		c := c
		t.Run(c.kind, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 33, 256} {
				ov := overlay.MustBuild(c.kind, n, 42)
				if ov.Size() != n {
					t.Fatalf("n=%d: Size = %d", n, ov.Size())
				}
				checkRouting(t, ov, n)
				checkNeighbors(t, ov, n, c.symmetric)
			}
		})
	}
}

func checkRouting(t *testing.T, ov overlay.Overlay, n int) {
	t.Helper()
	starts := []overlay.NodeID{0, overlay.NodeID(n / 2), overlay.NodeID(n - 1)}
	for i := 0; i < 40; i++ {
		k := overlay.Key(fmt.Sprintf("conform-%d-%d", n, i))
		owner := ov.Owner(k)
		if ov.Owner(k) != owner {
			t.Fatalf("n=%d key=%q: Owner not deterministic", n, k)
		}
		for _, start := range starts {
			// Deterministic next hop: two calls agree.
			h1, ok1 := ov.NextHop(start, k)
			h2, ok2 := ov.NextHop(start, k)
			if !ok1 || !ok2 || h1 != h2 {
				t.Fatalf("n=%d key=%q: NextHop(%v) not deterministic: %v/%v %v/%v",
					n, k, start, h1, ok1, h2, ok2)
			}
			// NextHop stays on the overlay graph: self (authority) or a
			// current neighbor.
			if h1 != start && !containsNode(ov.Neighbors(start), h1) {
				t.Fatalf("n=%d key=%q: NextHop(%v) = %v is not a neighbor", n, k, start, h1)
			}
			// The walk terminates at the authority within the hop bound
			// (PathTo panics past maxHops, enforcing boundedness).
			path := overlay.PathTo(ov, start, k, maxHops(n))
			if got := path[len(path)-1]; got != owner {
				t.Fatalf("n=%d key=%q from %v: path ends at %v, owner %v", n, k, start, got, owner)
			}
			// The authority is a fixed point of routing.
			if h, _ := ov.NextHop(owner, k); h != owner {
				t.Fatalf("n=%d key=%q: authority %v forwards to %v", n, k, owner, h)
			}
		}
	}
}

func checkNeighbors(t *testing.T, ov overlay.Overlay, n int, symmetric bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := overlay.NodeID(i)
		nbrs := ov.Neighbors(id)
		if n > 1 && len(nbrs) == 0 {
			t.Fatalf("n=%d: %v has no neighbors", n, id)
		}
		for j, m := range nbrs {
			if m == id {
				t.Fatalf("n=%d: %v lists itself as neighbor", n, id)
			}
			if j > 0 && nbrs[j-1] >= m {
				t.Fatalf("n=%d: neighbors of %v not sorted: %v", n, id, nbrs)
			}
			if symmetric && !containsNode(ov.Neighbors(m), id) {
				t.Fatalf("n=%d: neighbor relation asymmetric: %v -> %v", n, id, m)
			}
		}
	}
}

// TestConformanceRebuildIdentical: building the same kind with the same
// size and seed twice yields identical routing — the determinism CUP's
// reverse-path update trees require across process restarts.
func TestConformanceRebuildIdentical(t *testing.T) {
	for _, c := range conformanceKinds {
		a := overlay.MustBuild(c.kind, 64, 7)
		b := overlay.MustBuild(c.kind, 64, 7)
		for i := 0; i < 60; i++ {
			k := overlay.Key(fmt.Sprintf("rebuild-%d", i))
			if a.Owner(k) != b.Owner(k) {
				t.Fatalf("%s: owners differ across identical builds", c.kind)
			}
			id := overlay.NodeID(i % 64)
			ha, _ := a.NextHop(id, k)
			hb, _ := b.NextHop(id, k)
			if ha != hb {
				t.Fatalf("%s: next hops differ across identical builds", c.kind)
			}
		}
	}
}

func containsNode(s []overlay.NodeID, n overlay.NodeID) bool {
	for _, m := range s {
		if m == n {
			return true
		}
	}
	return false
}
