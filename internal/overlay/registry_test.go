package overlay

import (
	"sort"
	"strings"
	"testing"
)

// stubOverlay is a minimal single-node overlay for registry tests.
type stubOverlay struct{}

func (stubOverlay) Size() int                              { return 1 }
func (stubOverlay) Owner(Key) NodeID                       { return 0 }
func (stubOverlay) NextHop(n NodeID, _ Key) (NodeID, bool) { return n, true }
func (stubOverlay) Neighbors(NodeID) []NodeID              { return nil }

func TestRegisterAndBuild(t *testing.T) {
	Register("test-stub", func(n int, seed int64) Overlay { return stubOverlay{} })
	if !Registered("test-stub") {
		t.Fatal("test-stub not registered")
	}
	ov, err := Build("test-stub", 1, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ov.Size() != 1 {
		t.Fatalf("Size = %d", ov.Size())
	}
}

func TestBuildUnknownKindListsRegistered(t *testing.T) {
	_, err := Build("no-such-overlay", 8, 1)
	if err == nil {
		t.Fatal("Build of unknown kind did not error")
	}
	for _, kind := range Kinds() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not list registered kind %q", err, kind)
		}
	}
}

func TestMustBuildUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild of unknown kind did not panic")
		}
	}()
	MustBuild("no-such-overlay", 8, 1)
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("test-dup", func(n int, seed int64) Overlay { return stubOverlay{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("test-dup", func(n int, seed int64) Overlay { return stubOverlay{} })
}

func TestRegisterEmptyKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register(\"\") did not panic")
		}
	}()
	Register("", func(n int, seed int64) Overlay { return stubOverlay{} })
}

func TestRegisterNilBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register with nil builder did not panic")
		}
	}()
	Register("test-nil", nil)
}

func TestKindsSortedAndJoined(t *testing.T) {
	kinds := Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Fatalf("Kinds not sorted: %v", kinds)
	}
	if got, want := KindList(), strings.Join(kinds, "|"); got != want {
		t.Fatalf("KindList = %q, want %q", got, want)
	}
}
