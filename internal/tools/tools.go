//go:build tools

// Package tools pins the module's command-line tool dependencies on the
// build graph, following the standard tools.go convention. The module
// is deliberately dependency-free, so the only pinned tool is the
// in-module linter:
//
//	go install cup/cmd/cuplint
//
// installs the exact suite CI runs (see .github/workflows/ci.yml), and
// `go vet -vettool=$(which cuplint) ./...` reproduces the lint job
// locally. staticcheck is intentionally NOT pinned here: adding it
// would put an external requirement in go.mod, and keeping the module
// zero-dependency is a project constraint — CI pins its version with
// the STATICCHECK_VERSION environment variable instead.
package tools

import (
	_ "cup/cmd/cuplint"
)
