// Package serve is CUP's HTTP serving layer: a small, dumb front end
// (in the justcache sense — servers stay simple, clients are smart)
// mounted on a running deployment, turning controlled update
// propagation into a deployable update-propagation cache service.
//
// Surface:
//
//	GET    /v1/key/{key}          read the key's index entries
//	PUT    /v1/key/{key}          publish a replica entry (populate)
//	DELETE /v1/key/{key}          unpublish a replica entry
//	POST   /v1/key/{key}/promise  coordinate miss population
//
// A GET funnels into CUP's query path at a deterministic per-key entry
// node, so the protocol's query coalescing (§2.4's pending-first-update
// flag) is the server-side thundering-herd guard: any number of
// concurrent misses for one key produce exactly one upstream lookup.
// The promise endpoint implements the justcache population protocol on
// top — 200 the key is present, 202 the caller holds the population
// lease ("you upload"), 409 someone else does (with Retry-After).
//
// Two admission guards keep external load from swamping the
// propagation tree (the LOCKSS lesson: rate-bound what peers may
// inject): update-injecting requests (PUT, DELETE, promise grants)
// draw from a token bucket and are rejected with 429 when it runs dry,
// and every request sheds with 503 while the live peer inboxes sit
// above an occupancy threshold. Reads need no bucket — coalescing
// already bounds read-side tree load to one in-flight query per key.
//
// The package is deliberately ignorant of the façade: it serves any
// Backend, and the cup package adapts a Deployment to one.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cup/internal/cache"
	cupcore "cup/internal/cup"
	"cup/internal/obs"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// Backend is the deployment surface the server needs: the client API of
// a cup.Deployment, plus the load signals the admission guards read.
type Backend interface {
	// Size returns the number of peers (entry nodes are picked mod it).
	Size() int
	// Now returns the deployment clock in virtual seconds; entry TTLs
	// are reported relative to it.
	Now() sim.Time
	// LookupAt posts a client query at the given entry node and waits.
	LookupAt(ctx context.Context, at overlay.NodeID, key overlay.Key) ([]cache.Entry, error)
	// Publish registers (key, replica) served at addr for lifetime.
	Publish(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error
	// Unpublish deletes (key, replica).
	Unpublish(ctx context.Context, key overlay.Key, replica int) error
	// Load reports live inbox occupancy and capacity; (0, 0) means
	// unknown (e.g. the simulated transport) and disables shedding.
	Load() (used, capacity int)
}

// Config parameterizes a Server. Zero values fall back to the shared
// defaults table in internal/cup, like every other layer.
type Config struct {
	// Backend is the deployment to serve (required).
	Backend Backend
	// Registry receives the serving metrics; nil uses a private one.
	Registry *obs.Registry
	// PromiseTTL is the population-lease duration (default
	// cup.DefaultPromiseTTL).
	PromiseTTL time.Duration
	// QueryTimeout bounds one GET's trip through the query path
	// (default cup.DefaultServeQueryTimeout).
	QueryTimeout time.Duration
	// AdmitRate and AdmitBurst shape the write-path token bucket
	// (defaults cup.DefaultAdmitRate / cup.DefaultAdmitBurst). A
	// negative AdmitRate disables the bucket.
	AdmitRate  float64
	AdmitBurst int
	// ShedThreshold is the inbox occupancy fraction above which all
	// requests shed with 503 (default cup.DefaultShedThreshold).
	ShedThreshold float64
	// now overrides the wall clock (tests).
	now func() time.Time
}

// Server is the HTTP serving layer. Register mounts its routes on a
// mux; Close stops its background janitor.
type Server struct {
	b        Backend
	reg      *obs.Registry
	promises *promises
	bucket   *bucket
	shedAt   float64
	queryTO  time.Duration
	now      func() time.Time

	hits            *obs.Counter
	misses          *obs.Counter
	rejected        map[string]*obs.Counter
	promiseOutcomes map[promiseVerdict]*obs.Counter

	routes map[string]*routeMetrics

	done    chan struct{}
	janitor sync.WaitGroup
	once    sync.Once
}

// routeMetrics carries one route's pre-resolved handles so the request
// path never takes the registry lock.
type routeMetrics struct {
	lat   *obs.Histogram
	codes map[int]*obs.Counter
}

// Metric names the serving layer registers — documented in the README
// catalog and asserted by the CI serving-smoke job.
const (
	MetricHTTPRequests = "cup_http_requests_total"
	MetricHTTPLatency  = "cup_http_request_seconds"
	MetricHits         = "cup_serve_hits_total"
	MetricMisses       = "cup_serve_misses_total"
	MetricPromises     = "cup_serve_promises_total"
	MetricRejected     = "cup_serve_admission_rejected_total"
	MetricPromisesOpen = "cup_serve_promises_open"
)

// New builds a Server over cfg.Backend and registers its metric series.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: Config.Backend is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	ttl := cfg.PromiseTTL
	if ttl == 0 {
		ttl = cupcore.DefaultPromiseTTL
	}
	qto := cfg.QueryTimeout
	if qto == 0 {
		qto = cupcore.DefaultServeQueryTimeout
	}
	rate := cfg.AdmitRate
	if rate == 0 {
		rate = cupcore.DefaultAdmitRate
	}
	burst := cfg.AdmitBurst
	if burst <= 0 {
		burst = cupcore.DefaultAdmitBurst
	}
	shed := cfg.ShedThreshold
	if shed <= 0 {
		shed = cupcore.DefaultShedThreshold
	}

	s := &Server{
		b:        cfg.Backend,
		reg:      reg,
		promises: newPromises(ttl, now),
		shedAt:   shed,
		queryTO:  qto,
		now:      now,
		done:     make(chan struct{}),
	}
	if rate > 0 {
		s.bucket = newBucket(rate, float64(burst), now())
	}

	s.hits = reg.Counter(MetricHits, "GETs answered with at least one fresh index entry.")
	s.misses = reg.Counter(MetricMisses, "GETs that found no fresh entries (404).")
	s.rejected = map[string]*obs.Counter{
		"rate": reg.Counter(MetricRejected,
			"Requests rejected by the admission guards.", obs.Label{Key: "reason", Value: "rate"}),
		"overload": reg.Counter(MetricRejected,
			"Requests rejected by the admission guards.", obs.Label{Key: "reason", Value: "overload"}),
	}
	s.promiseOutcomes = map[promiseVerdict]*obs.Counter{}
	for _, v := range []promiseVerdict{promisePresent, promiseGranted, promiseBusy} {
		s.promiseOutcomes[v] = reg.Counter(MetricPromises,
			"Population-promise requests by outcome (justcache 200/202/409).",
			obs.Label{Key: "outcome", Value: v.String()})
	}
	reg.GaugeFunc(MetricPromisesOpen,
		"Population promises currently granted and unresolved.",
		func() float64 { return float64(s.promises.open()) })

	s.routes = make(map[string]*routeMetrics)
	for route, codes := range map[string][]int{
		"get":     {200, 404, 500, 503, 504},
		"put":     {204, 400, 429, 500, 503, 504},
		"delete":  {204, 400, 429, 500, 503, 504},
		"promise": {200, 202, 409, 429, 503},
	} {
		rm := &routeMetrics{
			lat: reg.Histogram(MetricHTTPLatency,
				"Serving-layer request latency in seconds.",
				obs.DefBuckets, obs.Label{Key: "route", Value: route}),
			codes: make(map[int]*obs.Counter, len(codes)),
		}
		for _, code := range codes {
			rm.codes[code] = reg.Counter(MetricHTTPRequests,
				"Serving-layer requests by route and status code.",
				obs.Label{Key: "route", Value: route},
				obs.Label{Key: "code", Value: strconv.Itoa(code)})
		}
		s.routes[route] = rm
	}

	s.janitor.Add(1)
	go s.sweepLoop()
	return s, nil
}

// Register mounts the /v1 routes on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/key/{key}", s.handleGet)
	mux.HandleFunc("PUT /v1/key/{key}", s.handlePut)
	mux.HandleFunc("DELETE /v1/key/{key}", s.handleDelete)
	mux.HandleFunc("POST /v1/key/{key}/promise", s.handlePromise)
}

// Close stops the promise janitor. Listeners are owned by the caller.
func (s *Server) Close() error {
	s.once.Do(func() { close(s.done) })
	s.janitor.Wait()
	return nil
}

// sweepLoop prunes expired promise records so an abandoned grant or a
// long-gone resolved key cannot grow the table without bound.
func (s *Server) sweepLoop() {
	defer s.janitor.Done()
	tick := time.NewTicker(s.promises.ttl)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			s.promises.sweep()
		}
	}
}

// EntryNode maps a key onto its deterministic serving entry node. Every
// GET for one key enters the overlay at the same peer, so concurrent
// misses meet at one pending-first-update flag and coalesce — this
// choice is what turns CUP's §2.4 machinery into the server's
// thundering-herd guard. The hash also spreads distinct keys across
// peers, so serving load is not funneled through one mailbox.
func EntryNode(key overlay.Key, size int) overlay.NodeID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return overlay.NodeID(h.Sum64() % uint64(size))
}

// EntryJSON is one index entry on the serving wire. TTL is the entry's
// remaining freshness in (virtual) seconds at response time.
type EntryJSON struct {
	Replica int     `json:"replica"`
	Addr    string  `json:"addr"`
	TTL     float64 `json:"ttl_s"`
}

// GetResponse is the GET /v1/key/{key} body.
type GetResponse struct {
	Key     string      `json:"key"`
	Entries []EntryJSON `json:"entries"`
}

// PutRequest is the PUT /v1/key/{key} body.
type PutRequest struct {
	Replica int     `json:"replica"`
	Addr    string  `json:"addr"`
	TTL     float64 `json:"ttl_s"`
}

// PromiseResponse is the POST /v1/key/{key}/promise body.
type PromiseResponse struct {
	// Status is "present", "granted", or "busy".
	Status string `json:"status"`
	// RetryAfterMs accompanies "busy" and "granted": for busy it is the
	// residual lease; for granted, the lease the caller now holds.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// observe finishes one request's accounting.
func (s *Server) observe(route string, code int, start time.Time) {
	rm := s.routes[route]
	rm.lat.Observe(s.now().Sub(start).Seconds())
	if c, ok := rm.codes[code]; ok {
		c.Inc()
	}
}

// shed applies the inbox-occupancy guard; it reports true after writing
// the 503 when the live mailboxes are too full to take more work.
func (s *Server) shed(w http.ResponseWriter) bool {
	used, capacity := s.b.Load()
	if capacity == 0 || float64(used) < s.shedAt*float64(capacity) {
		return false
	}
	s.rejected["overload"].Inc()
	retryAfter(w, s.promises.ttl)
	http.Error(w, "serving shed: live inboxes over occupancy threshold", http.StatusServiceUnavailable)
	return true
}

// admit applies the write-path token bucket; it reports true after
// writing the 429 when the caller must back off.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.bucket == nil {
		return false
	}
	ok, wait := s.bucket.take(s.now())
	if ok {
		return false
	}
	s.rejected["rate"].Inc()
	retryAfter(w, wait)
	http.Error(w, "admission rate exceeded", http.StatusTooManyRequests)
	return true
}

// retryAfter sets both the standard coarse header and the millisecond
// one the smart client prefers.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(d.Milliseconds(), 10))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	code := http.StatusOK
	defer func() { s.observe("get", code, start) }()
	if s.shed(w) {
		code = http.StatusServiceUnavailable
		return
	}
	key := overlay.Key(r.PathValue("key"))
	ctx, cancel := context.WithTimeout(r.Context(), s.queryTO)
	defer cancel()
	entries, err := s.b.LookupAt(ctx, EntryNode(key, s.b.Size()), key)
	if err != nil {
		code = http.StatusInternalServerError
		if ctx.Err() != nil {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, fmt.Sprintf("lookup: %v", err), code)
		return
	}
	if len(entries) == 0 {
		s.misses.Inc()
		code = http.StatusNotFound
		http.Error(w, "miss", code)
		return
	}
	s.hits.Inc()
	resp := GetResponse{Key: string(key), Entries: make([]EntryJSON, len(entries))}
	nowV := s.b.Now()
	for i, e := range entries {
		resp.Entries[i] = EntryJSON{
			Replica: e.Replica,
			Addr:    e.Addr,
			TTL:     float64(e.Expires - nowV),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	code := http.StatusNoContent
	defer func() { s.observe("put", code, start) }()
	if s.shed(w) {
		code = http.StatusServiceUnavailable
		return
	}
	if s.admit(w) {
		code = http.StatusTooManyRequests
		return
	}
	key := overlay.Key(r.PathValue("key"))
	var req PutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code = http.StatusBadRequest
		http.Error(w, fmt.Sprintf("bad body: %v", err), code)
		return
	}
	if req.Replica < 0 || req.Addr == "" || req.TTL <= 0 {
		code = http.StatusBadRequest
		http.Error(w, "need replica >= 0, non-empty addr, ttl_s > 0", code)
		return
	}
	ttl := time.Duration(req.TTL * float64(time.Second))
	if err := s.b.Publish(r.Context(), key, req.Replica, req.Addr, ttl); err != nil {
		code = http.StatusInternalServerError
		if r.Context().Err() != nil {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, fmt.Sprintf("publish: %v", err), code)
		return
	}
	// A successful populate resolves the key's open promise: subsequent
	// POST /promise callers learn the key is present instead of racing
	// to refill it.
	s.promises.resolve(string(key), ttl)
	w.WriteHeader(code)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	code := http.StatusNoContent
	defer func() { s.observe("delete", code, start) }()
	if s.shed(w) {
		code = http.StatusServiceUnavailable
		return
	}
	if s.admit(w) {
		code = http.StatusTooManyRequests
		return
	}
	key := overlay.Key(r.PathValue("key"))
	replica, err := strconv.Atoi(r.URL.Query().Get("replica"))
	if err != nil || replica < 0 {
		code = http.StatusBadRequest
		http.Error(w, "need ?replica=<non-negative int>", code)
		return
	}
	if err := s.b.Unpublish(r.Context(), key, replica); err != nil {
		code = http.StatusInternalServerError
		if r.Context().Err() != nil {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, fmt.Sprintf("unpublish: %v", err), code)
		return
	}
	s.promises.forget(string(key))
	w.WriteHeader(code)
}

func (s *Server) handlePromise(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	code := http.StatusOK
	defer func() { s.observe("promise", code, start) }()
	if s.shed(w) {
		code = http.StatusServiceUnavailable
		return
	}
	key := r.PathValue("key")
	verdict, lease := s.promises.request(key, func() bool {
		// Granting admits one origin fetch + populate into the tree, so
		// the grant itself draws a token; conflicts and present answers
		// inject nothing and stay free.
		return s.bucket == nil || s.bucketTake()
	})
	if c, ok := s.promiseOutcomes[verdict]; ok {
		c.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	switch verdict {
	case promisePresent:
		code = http.StatusOK
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(PromiseResponse{Status: "present"})
	case promiseGranted:
		code = http.StatusAccepted
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(PromiseResponse{Status: "granted", RetryAfterMs: lease.Milliseconds()})
	case promiseBusy:
		code = http.StatusConflict
		retryAfter(w, lease)
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(PromiseResponse{Status: "busy", RetryAfterMs: lease.Milliseconds()})
	case promiseThrottled:
		code = http.StatusTooManyRequests
		s.rejected["rate"].Inc()
		retryAfter(w, s.bucketWait())
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(PromiseResponse{Status: "busy", RetryAfterMs: s.bucketWait().Milliseconds()})
	}
}

// bucketTake draws one token without writing a response.
func (s *Server) bucketTake() bool {
	ok, _ := s.bucket.take(s.now())
	return ok
}

// bucketWait reports the current wait for the next token.
func (s *Server) bucketWait() time.Duration {
	if s.bucket == nil {
		return 0
	}
	return s.bucket.wait(s.now())
}
