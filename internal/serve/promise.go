// The promise table: the justcache miss-coordination state machine.
// One key is in one of three states — idle (anyone may claim the
// population lease), granted (somebody is fetching from origin; until
// the lease expires every other claimant is told to wait), or resolved
// (a populate landed recently; claimants are told the key is present
// and should simply GET it). Grants expire on their own, so a crashed
// grantee stalls the key for at most one lease.
package serve

import (
	"sync"
	"time"
)

// promiseVerdict is the outcome of one POST /promise.
type promiseVerdict int

const (
	// promisePresent: the key was populated recently — just GET it.
	promisePresent promiseVerdict = iota
	// promiseGranted: the caller holds the population lease.
	promiseGranted
	// promiseBusy: another client holds the lease; wait Retry-After.
	promiseBusy
	// promiseThrottled: the admission bucket refused the grant.
	promiseThrottled
)

func (v promiseVerdict) String() string {
	switch v {
	case promisePresent:
		return "present"
	case promiseGranted:
		return "granted"
	case promiseBusy:
		return "busy"
	default:
		return "throttled"
	}
}

// promiseState is one key's record.
type promiseState struct {
	// grantedUntil is the population lease's expiry (zero when idle).
	grantedUntil time.Time
	// resolvedUntil marks how long the key counts as freshly populated.
	resolvedUntil time.Time
}

// promises is the table. All methods are safe for concurrent use; the
// single mutex is what makes "exactly one 202 per storm" exact.
type promises struct {
	mu  sync.Mutex
	m   map[string]*promiseState
	ttl time.Duration
	now func() time.Time
}

func newPromises(ttl time.Duration, now func() time.Time) *promises {
	return &promises{m: make(map[string]*promiseState), ttl: ttl, now: now}
}

// request runs one claim. admit is consulted only when a grant would be
// issued — the grant is the moment an origin fetch is admitted into the
// system, so that is where the token is charged. The returned duration
// is the lease: the fresh lease for a grant, the residual one for busy.
func (p *promises) request(key string, admit func() bool) (promiseVerdict, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	st := p.m[key]
	if st == nil {
		st = &promiseState{}
		p.m[key] = st
	}
	if now.Before(st.resolvedUntil) {
		return promisePresent, 0
	}
	if now.Before(st.grantedUntil) {
		return promiseBusy, st.grantedUntil.Sub(now)
	}
	if !admit() {
		return promiseThrottled, 0
	}
	st.grantedUntil = now.Add(p.ttl)
	return promiseGranted, p.ttl
}

// resolve records a successful populate: the key counts as present for
// valid (capped at the promise TTL so a stale table entry cannot mask a
// later expiry forever — clients re-GET anyway), and any open lease is
// released.
func (p *promises) resolve(key string, valid time.Duration) {
	if valid > p.ttl {
		valid = p.ttl
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.m[key]
	if st == nil {
		st = &promiseState{}
		p.m[key] = st
	}
	st.grantedUntil = time.Time{}
	st.resolvedUntil = p.now().Add(valid)
}

// forget drops a key's record (on DELETE).
func (p *promises) forget(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.m, key)
}

// open counts currently granted, unresolved leases (the gauge).
func (p *promises) open() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	n := 0
	for _, st := range p.m {
		if now.Before(st.grantedUntil) {
			n++
		}
	}
	return n
}

// sweep drops records with no live lease and no live resolution.
func (p *promises) sweep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	for k, st := range p.m {
		if !now.Before(st.grantedUntil) && !now.Before(st.resolvedUntil) {
			delete(p.m, k)
		}
	}
}
