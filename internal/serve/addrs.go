package serve

import "strings"

// SplitAddrs parses the comma-separated listen-address flag syntax the
// serving commands (cupd, cupload, cuplive) share, dropping empty
// elements and surrounding whitespace.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
