package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cup/internal/cache"
	"cup/internal/obs"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// fakeBackend is an in-memory Backend: a key→entries map plus knobs for
// the load and clock signals the guards read.
type fakeBackend struct {
	mu      sync.Mutex
	entries map[overlay.Key][]cache.Entry
	lookups int
	size    int
	now     sim.Time
	used    int
	cap     int
	lookErr error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{entries: make(map[overlay.Key][]cache.Entry), size: 16}
}

func (f *fakeBackend) Size() int { return f.size }

func (f *fakeBackend) Now() sim.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeBackend) LookupAt(ctx context.Context, at overlay.NodeID, key overlay.Key) ([]cache.Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookups++
	if f.lookErr != nil {
		return nil, f.lookErr
	}
	return append([]cache.Entry(nil), f.entries[key]...), nil
}

func (f *fakeBackend) Publish(ctx context.Context, key overlay.Key, replica int, addr string, lifetime time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries[key] = append(f.entries[key], cache.Entry{
		Key: key, Replica: replica, Addr: addr,
		Expires: f.now + sim.Time(lifetime.Seconds()),
	})
	return nil
}

func (f *fakeBackend) Unpublish(ctx context.Context, key overlay.Key, replica int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.entries[key][:0]
	for _, e := range f.entries[key] {
		if e.Replica != replica {
			kept = append(kept, e)
		}
	}
	f.entries[key] = kept
	return nil
}

func (f *fakeBackend) Load() (used, capacity int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used, f.cap
}

// fakeClock is a manually advanced wall clock for the bucket and
// promise tables.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestServer builds a Server over a fake backend and mounts it on an
// httptest server.
func newTestServer(t *testing.T, cfg Config) (*fakeBackend, *Server, *httptest.Server) {
	t.Helper()
	b := newFakeBackend()
	cfg.Backend = b
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	mux := http.NewServeMux()
	srv.Register(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return b, srv, hs
}

func TestEntryNodeDeterministicAndSpread(t *testing.T) {
	if EntryNode("k", 16) != EntryNode("k", 16) {
		t.Fatal("EntryNode is not deterministic")
	}
	seen := make(map[overlay.NodeID]bool)
	for i := 0; i < 64; i++ {
		seen[EntryNode(overlay.Key(fmt.Sprintf("key-%d", i)), 16)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("EntryNode funnels 64 keys into %d of 16 nodes; want a spread", len(seen))
	}
	for i := 0; i < 64; i++ {
		n := EntryNode(overlay.Key(fmt.Sprintf("key-%d", i)), 16)
		if n < 0 || int(n) >= 16 {
			t.Fatalf("EntryNode out of range: %v", n)
		}
	}
}

func TestGetHitMissAndTTL(t *testing.T) {
	b, _, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/key/k0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold GET = %d, want 404", resp.StatusCode)
	}

	b.mu.Lock()
	b.now = 10
	b.entries["k0"] = []cache.Entry{{Key: "k0", Replica: 0, Addr: "a", Expires: 40}}
	b.mu.Unlock()
	resp, err = http.Get(hs.URL + "/v1/key/k0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET = %d, want 200", resp.StatusCode)
	}
	var got GetResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Key != "k0" || len(got.Entries) != 1 {
		t.Fatalf("GetResponse = %+v", got)
	}
	if got.Entries[0].TTL != 30 {
		t.Fatalf("TTL = %g, want 30 (Expires 40 - now 10)", got.Entries[0].TTL)
	}
}

func TestPutPublishesAndResolvesPromise(t *testing.T) {
	b, _, hs := newTestServer(t, Config{})
	// Win the promise for the key first, so the PUT's resolve is visible.
	resp, err := http.Post(hs.URL+"/v1/key/k1/promise", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first promise = %d, want 202", resp.StatusCode)
	}

	body, _ := json.Marshal(PutRequest{Replica: 0, Addr: "replica-a", TTL: 60})
	req, _ := http.NewRequest(http.MethodPut, hs.URL+"/v1/key/k1", bytes.NewReader(body))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}
	b.mu.Lock()
	n := len(b.entries["k1"])
	b.mu.Unlock()
	if n != 1 {
		t.Fatalf("backend has %d entries for k1, want 1", n)
	}

	// The resolved promise now answers "present" instead of a new grant.
	resp, err = http.Post(hs.URL+"/v1/key/k1/promise", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-PUT promise = %d, want 200 present", resp.StatusCode)
	}
	var pr PromiseResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "present" {
		t.Fatalf("promise status = %q, want present", pr.Status)
	}
}

func TestPutValidation(t *testing.T) {
	_, _, hs := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"bad json": "{",
		"no addr":  `{"replica":0,"ttl_s":5}`,
		"zero ttl": `{"replica":0,"addr":"a"}`,
		"neg repl": `{"replica":-1,"addr":"a","ttl_s":5}`,
	} {
		req, _ := http.NewRequest(http.MethodPut, hs.URL+"/v1/key/bad", bytes.NewReader([]byte(body)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: PUT = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestDeleteUnpublishes(t *testing.T) {
	b, _, hs := newTestServer(t, Config{})
	b.mu.Lock()
	b.entries["k2"] = []cache.Entry{{Key: "k2", Replica: 3, Addr: "a", Expires: 100}}
	b.mu.Unlock()
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/key/k2?replica=3", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}
	b.mu.Lock()
	n := len(b.entries["k2"])
	b.mu.Unlock()
	if n != 0 {
		t.Fatalf("backend still has %d entries for k2", n)
	}

	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/v1/key/k2", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("DELETE without replica = %d, want 400", resp.StatusCode)
	}
}

func TestPromiseStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := newPromises(2*time.Second, clk.now)

	admit := func() bool { return true }
	v, lease := p.request("k", admit)
	if v != promiseGranted || lease != 2*time.Second {
		t.Fatalf("first request = %v/%v, want granted/2s", v, lease)
	}
	// A second caller inside the lease window conflicts, with the
	// residual lease as its Retry-After.
	clk.advance(500 * time.Millisecond)
	v, lease = p.request("k", admit)
	if v != promiseBusy || lease != 1500*time.Millisecond {
		t.Fatalf("conflicting request = %v/%v, want busy/1.5s", v, lease)
	}
	// The lease expires unresolved: the key is grantable again (the
	// holder died; someone else may populate).
	clk.advance(2 * time.Second)
	if v, _ = p.request("k", admit); v != promiseGranted {
		t.Fatalf("post-expiry request = %v, want granted", v)
	}
	// Resolving answers "present" until the populated TTL runs out.
	p.resolve("k", 10*time.Second)
	if v, _ = p.request("k", admit); v != promisePresent {
		t.Fatalf("resolved request = %v, want present", v)
	}
	// resolve caps its memory at the promise TTL: long-lived entries are
	// the GET path's business, not the promise table's.
	clk.advance(3 * time.Second)
	if v, _ = p.request("k", admit); v != promiseGranted {
		t.Fatalf("request after capped resolve window = %v, want granted", v)
	}
	// A dry admission gate throttles instead of granting.
	v, _ = p.request("k2", func() bool { return false })
	if v != promiseThrottled {
		t.Fatalf("throttled request = %v, want throttled", v)
	}
	// forget clears resolved state (the key was deleted).
	p.resolve("k3", 10*time.Second)
	p.forget("k3")
	if v, _ = p.request("k3", admit); v != promiseGranted {
		t.Fatalf("forgotten key request = %v, want granted", v)
	}
}

func TestPromiseSweep(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := newPromises(time.Second, clk.now)
	admit := func() bool { return true }
	for i := 0; i < 8; i++ {
		p.request(fmt.Sprintf("k%d", i), admit)
	}
	if got := p.open(); got != 8 {
		t.Fatalf("open = %d, want 8", got)
	}
	clk.advance(5 * time.Second)
	p.sweep()
	if got := p.open(); got != 0 {
		t.Fatalf("open after sweep = %d, want 0", got)
	}
	p.mu.Lock()
	n := len(p.m)
	p.mu.Unlock()
	if n != 0 {
		t.Fatalf("sweep left %d records", n)
	}
}

func TestBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBucket(10, 2, clk.now()) // 10 tokens/s, burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(clk.now()); !ok {
			t.Fatalf("burst take %d failed", i)
		}
	}
	ok, wait := b.take(clk.now())
	if ok {
		t.Fatal("take from dry bucket succeeded")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("dry wait = %v, want 100ms at 10 tokens/s", wait)
	}
	clk.advance(150 * time.Millisecond)
	if ok, _ = b.take(clk.now()); !ok {
		t.Fatal("take after refill failed")
	}
	// Refill caps at burst: a long idle period is not a license to spike.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ = b.take(clk.now()); !ok {
			t.Fatalf("capped-burst take %d failed", i)
		}
	}
	if ok, _ = b.take(clk.now()); ok {
		t.Fatal("burst cap not enforced after idle hour")
	}
}

func TestAdmissionGuardsOnRoutes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	_, _, hs := newTestServer(t, Config{AdmitRate: 1, AdmitBurst: 1, now: clk.now})

	put := func(key string) int {
		body, _ := json.Marshal(PutRequest{Replica: 0, Addr: "a", TTL: 5})
		req, _ := http.NewRequest(http.MethodPut, hs.URL+"/v1/key/"+key, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("a"); code != http.StatusNoContent {
		t.Fatalf("first PUT = %d, want 204", code)
	}
	if code := put("b"); code != http.StatusTooManyRequests {
		t.Fatalf("second PUT = %d, want 429 from the dry bucket", code)
	}
	// The promise route throttles grants through the same bucket.
	resp, err := http.Post(hs.URL+"/v1/key/c/promise", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("promise with dry bucket = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Retry-After-Ms") == "" {
		t.Fatal("429 without Retry-After headers")
	}
	// Reads never draw from the bucket.
	resp, err = http.Get(hs.URL + "/v1/key/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("GET was rate-limited; reads must not draw admission tokens")
	}
}

func TestShedOnInboxOccupancy(t *testing.T) {
	b, _, hs := newTestServer(t, Config{})
	b.mu.Lock()
	b.used, b.cap = 95, 100 // over the default 0.9 threshold
	b.mu.Unlock()
	for _, probe := range []func() (*http.Response, error){
		func() (*http.Response, error) { return http.Get(hs.URL + "/v1/key/x") },
		func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/key/x/promise", "application/json", nil)
		},
	} {
		resp, err := probe()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("overloaded request = %d, want 503", resp.StatusCode)
		}
	}
	b.mu.Lock()
	b.used = 10
	b.mu.Unlock()
	resp, err := http.Get(hs.URL + "/v1/key/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		t.Fatal("request shed below the occupancy threshold")
	}
}

func TestServingMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	b, _, hs := newTestServer(t, Config{Registry: reg})
	b.mu.Lock()
	b.entries["k"] = []cache.Entry{{Key: "k", Replica: 0, Addr: "a", Expires: 100}}
	b.mu.Unlock()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(hs.URL + "/v1/key/k")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(hs.URL + "/v1/key/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if v, ok := reg.Value(MetricHits); !ok || v != 3 {
		t.Fatalf("%s = %g/%v, want 3", MetricHits, v, ok)
	}
	if v, ok := reg.Value(MetricMisses); !ok || v != 1 {
		t.Fatalf("%s = %g/%v, want 1", MetricMisses, v, ok)
	}
	if v, ok := reg.Value(MetricHTTPRequests,
		obs.Label{Key: "route", Value: "get"}, obs.Label{Key: "code", Value: "200"}); !ok || v != 3 {
		t.Fatalf("%s{get,200} = %g/%v, want 3", MetricHTTPRequests, v, ok)
	}
	if v, ok := reg.Value(MetricHTTPLatency, obs.Label{Key: "route", Value: "get"}); !ok || v != 4 {
		t.Fatalf("%s{get} samples = %g/%v, want 4", MetricHTTPLatency, v, ok)
	}
}

func TestGetTimeoutMapsTo504(t *testing.T) {
	b := newFakeBackend()
	b.lookErr = context.DeadlineExceeded
	srv, err := New(Config{Backend: b, QueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mux := http.NewServeMux()
	srv.Register(mux)
	hs := httptest.NewServer(mux)
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/v1/key/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out GET = %d, want 504", resp.StatusCode)
	}
}
