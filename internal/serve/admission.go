// The admission bucket: a token bucket bounding how fast external
// clients may inject work into the propagation tree (PUT, DELETE, and
// promise grants). The LOCKSS peer-replication work motivates the
// shape: a healthy replica network survives load spikes because every
// admission path is rate-limited, not because peers are fast.
package serve

import (
	"sync"
	"time"
)

// bucket is a standard token bucket on a caller-supplied clock.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// refillLocked advances the bucket to now. Callers hold mu.
func (b *bucket) refillLocked(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take draws one token. When the bucket is dry it reports false and the
// wait until one token accrues — the 429's Retry-After.
func (b *bucket) take(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, b.waitLocked()
}

// wait reports the current wait for one token without drawing it.
func (b *bucket) wait(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		return 0
	}
	return b.waitLocked()
}

func (b *bucket) waitLocked() time.Duration {
	need := 1 - b.tokens
	return time.Duration(need / b.rate * float64(time.Second))
}
