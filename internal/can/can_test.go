package can

import (
	"fmt"
	"testing"
	"testing/quick"

	"cup/internal/overlay"
	"cup/internal/sim"
)

func TestZoneSplitHalvesArea(t *testing.T) {
	z := FullZone()
	a, b := z.Split()
	if a.Area()+b.Area() != z.Area() {
		t.Fatalf("split areas %v + %v != %v", a.Area(), b.Area(), z.Area())
	}
	if a.Overlaps(b) {
		t.Fatal("split halves overlap")
	}
	if !a.Abuts(b) {
		t.Fatal("split halves do not abut")
	}
}

func TestZoneSplitLongerDimension(t *testing.T) {
	wide := Zone{0, 0, 1, 0.5}
	a, b := wide.Split()
	if a.Y1 != 0.5 || b.Y1 != 0.5 {
		t.Fatalf("wide zone split along Y: %v %v", a, b)
	}
	tall := Zone{0, 0, 0.5, 1}
	a, b = tall.Split()
	if a.X1 != 0.5 || b.X1 != 0.5 {
		t.Fatalf("tall zone split along X: %v %v", a, b)
	}
}

func TestZoneContainsHalfOpen(t *testing.T) {
	z := Zone{0.25, 0.25, 0.5, 0.5}
	if !z.Contains(overlay.Point{X: 0.25, Y: 0.25}) {
		t.Fatal("lower-left corner should be inside")
	}
	if z.Contains(overlay.Point{X: 0.5, Y: 0.25}) {
		t.Fatal("X1 edge should be outside (half-open)")
	}
	if z.Contains(overlay.Point{X: 0.25, Y: 0.5}) {
		t.Fatal("Y1 edge should be outside (half-open)")
	}
}

func TestZoneDistInsideIsZero(t *testing.T) {
	z := Zone{0.2, 0.2, 0.4, 0.4}
	if d := z.Dist(overlay.Point{X: 0.3, Y: 0.3}); d != 0 {
		t.Fatalf("Dist inside = %v, want 0", d)
	}
}

func TestZoneDistWraparound(t *testing.T) {
	// Zone near the right edge; point near the left edge: torus distance
	// should go through the seam.
	z := Zone{0.9, 0.4, 1.0, 0.6}
	d := z.Dist(overlay.Point{X: 0.05, Y: 0.5})
	if d > 0.051 {
		t.Fatalf("wraparound Dist = %v, want ≈0.05", d)
	}
}

func TestZoneAbutsSeam(t *testing.T) {
	left := Zone{0, 0.4, 0.1, 0.6}
	right := Zone{0.9, 0.4, 1.0, 0.6}
	if !left.Abuts(right) {
		t.Fatal("zones across the torus seam should abut")
	}
}

func TestZoneCornerTouchIsNotNeighbor(t *testing.T) {
	a := Zone{0, 0, 0.5, 0.5}
	b := Zone{0.5, 0.5, 1, 1}
	if a.Abuts(b) {
		t.Fatal("corner-touching zones must not be neighbors")
	}
}

func TestBuildBalancedGeometry(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		net := BuildBalanced(n)
		if net.Size() != n {
			t.Fatalf("Size = %d, want %d", net.Size(), n)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildBalancedRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BuildBalanced(3) did not panic")
		}
	}()
	BuildBalanced(3)
}

func TestBuildRandomInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		net := Build(n, sim.NewRand(int64(n)))
		if net.Size() != n {
			t.Fatalf("Size = %d, want %d", net.Size(), n)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(0) did not panic")
		}
	}()
	Build(0, sim.NewRand(1))
}

func TestOwnerIsDeterministic(t *testing.T) {
	net := Build(64, sim.NewRand(9))
	for i := 0; i < 50; i++ {
		k := overlay.Key(fmt.Sprintf("key-%d", i))
		if net.Owner(k) != net.Owner(k) {
			t.Fatal("Owner not deterministic")
		}
	}
}

func TestRoutingReachesOwner(t *testing.T) {
	for _, n := range []int{1, 4, 32, 256, 1024} {
		net := Build(n, sim.NewRand(int64(n)*7))
		for i := 0; i < 100; i++ {
			k := overlay.Key(fmt.Sprintf("key-%d-%d", n, i))
			owner := net.Owner(k)
			for _, start := range []overlay.NodeID{0, overlay.NodeID(n / 2), overlay.NodeID(n - 1)} {
				path := overlay.PathTo(net, start, k, 10*n+64)
				if path[len(path)-1] != owner {
					t.Fatalf("n=%d key=%q: path ends at %v, owner %v", n, k, path[len(path)-1], owner)
				}
			}
		}
	}
}

func TestRoutingPathLengthScales(t *testing.T) {
	// 2-D CAN routes in O(√n); check average path length grows sublinearly.
	avg := func(n int) float64 {
		net := Build(n, sim.NewRand(123))
		r := sim.NewRand(321)
		total := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			k := overlay.Key(fmt.Sprintf("sc-%d", i))
			start := overlay.NodeID(r.Pick(n))
			total += overlay.Distance(net, start, k, 10*n+64)
		}
		return float64(total) / trials
	}
	a256, a1024 := avg(256), avg(1024)
	if a1024 > a256*3 {
		t.Fatalf("path length not O(√n): n=256→%v hops, n=1024→%v hops", a256, a1024)
	}
	if a1024 < a256 {
		t.Fatalf("path length should grow with n: %v vs %v", a256, a1024)
	}
}

func TestNeighborsSorted(t *testing.T) {
	net := Build(128, sim.NewRand(5))
	for _, n := range net.AliveNodes() {
		nbrs := net.Neighbors(n)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] <= nbrs[i-1] {
				t.Fatalf("neighbors of %v not sorted: %v", n, nbrs)
			}
		}
	}
}

func TestJoinMaintainsInvariants(t *testing.T) {
	net := Build(8, sim.NewRand(2))
	r := sim.NewRand(22)
	for i := 0; i < 40; i++ {
		id := net.Join(overlay.Point{X: r.Float64(), Y: r.Float64()})
		if !net.Alive(id) {
			t.Fatalf("joined node %v not alive", id)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	if net.Size() != 48 {
		t.Fatalf("Size = %d, want 48", net.Size())
	}
}

func TestLeaveMaintainsInvariants(t *testing.T) {
	net := Build(64, sim.NewRand(3))
	r := sim.NewRand(33)
	for i := 0; i < 40; i++ {
		alive := net.AliveNodes()
		victim := alive[r.Pick(len(alive))]
		heir := net.Leave(victim)
		if net.Alive(victim) {
			t.Fatalf("left node %v still alive", victim)
		}
		if !net.Alive(heir) {
			t.Fatalf("heir %v not alive", heir)
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("after leave %d: %v", i, err)
		}
	}
	if net.Size() != 24 {
		t.Fatalf("Size = %d, want 24", net.Size())
	}
}

func TestLeaveDeadNodePanics(t *testing.T) {
	net := Build(4, sim.NewRand(1))
	net.Leave(2)
	defer func() {
		if recover() == nil {
			t.Error("Leave of dead node did not panic")
		}
	}()
	net.Leave(2)
}

func TestChurnRoutingStillWorks(t *testing.T) {
	net := Build(128, sim.NewRand(77))
	r := sim.NewRand(78)
	for round := 0; round < 20; round++ {
		if r.Bernoulli(0.5) {
			net.Join(overlay.Point{X: r.Float64(), Y: r.Float64()})
		} else {
			alive := net.AliveNodes()
			net.Leave(alive[r.Pick(len(alive))])
		}
		alive := net.AliveNodes()
		for i := 0; i < 10; i++ {
			k := overlay.Key(fmt.Sprintf("churn-%d-%d", round, i))
			start := alive[r.Pick(len(alive))]
			path := overlay.PathTo(net, start, k, 4096)
			if path[len(path)-1] != net.Owner(k) {
				t.Fatalf("round %d: route to %q failed", round, k)
			}
		}
	}
}

// Property: any random build tiles the space and routes any key from any
// node to the unique owner.
func TestPropertyBuildAndRoute(t *testing.T) {
	f := func(seed int64, nRaw uint8, keyRaw uint16) bool {
		n := int(nRaw%200) + 1
		net := Build(n, sim.NewRand(seed))
		if err := net.CheckInvariants(); err != nil {
			return false
		}
		k := overlay.Key(fmt.Sprintf("p-%d", keyRaw))
		start := overlay.NodeID(int(keyRaw) % n)
		path := overlay.PathTo(net, start, k, 10*n+64)
		return path[len(path)-1] == net.Owner(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute1024(b *testing.B) {
	net := Build(1024, sim.NewRand(1))
	keys := make([]overlay.Key, 256)
	for i := range keys {
		keys[i] = overlay.Key(fmt.Sprintf("bench-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		overlay.PathTo(net, overlay.NodeID(i%1024), k, 4096)
	}
}

func BenchmarkBuild1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(1024, sim.NewRand(int64(i)))
	}
}
