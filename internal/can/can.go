package can

import (
	"fmt"
	"sort"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// Network is a 2-D CAN overlay. Nodes are dense overlay.NodeIDs; each alive
// node owns one or more zones (more than one only after absorbing a departed
// neighbor's zones, the paper's §2.9 takeover). Network implements
// overlay.Overlay.
type Network struct {
	zones     [][]Zone           // per node; empty ⇒ departed
	neighbors [][]overlay.NodeID // per node, sorted, alive only
}

var _ overlay.Overlay = (*Network)(nil)

// Build constructs a CAN of n nodes by the standard join procedure: node 0
// owns the whole space; each subsequent node picks a uniformly random point
// (from r) and splits the zone of the point's current owner. This mirrors
// the paper's dynamically allocated index partitions.
func Build(n int, r *sim.Rand) *Network {
	if n <= 0 {
		panic("can: Build requires n > 0")
	}
	net := &Network{
		zones:     make([][]Zone, 1, n),
		neighbors: make([][]overlay.NodeID, 1, n),
	}
	net.zones[0] = []Zone{FullZone()}
	for i := 1; i < n; i++ {
		p := overlay.Point{X: r.Float64(), Y: r.Float64()}
		net.join(p)
	}
	net.rebuildAllNeighbors()
	return net
}

// BuildBalanced constructs a perfectly balanced CAN of n = 2^k nodes by
// recursive halving. Useful for tests that need exact geometry.
func BuildBalanced(n int) *Network {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("can: BuildBalanced requires a power of two, got %d", n))
	}
	zones := []Zone{FullZone()}
	for len(zones) < n {
		next := make([]Zone, 0, len(zones)*2)
		for _, z := range zones {
			a, b := z.Split()
			next = append(next, a, b)
		}
		zones = next
	}
	net := &Network{
		zones:     make([][]Zone, n),
		neighbors: make([][]overlay.NodeID, n),
	}
	for i, z := range zones {
		net.zones[i] = []Zone{z}
	}
	net.rebuildAllNeighbors()
	return net
}

// join adds one node owning the half of the zone containing p. Neighbor
// sets are rebuilt lazily by the caller (Build) or incrementally (Join).
func (c *Network) join(p overlay.Point) overlay.NodeID {
	owner := c.ownerOfPoint(p)
	// Split the owner's zone that contains p.
	zs := c.zones[owner]
	zi := -1
	for i, z := range zs {
		if z.Contains(p) {
			zi = i
			break
		}
	}
	if zi < 0 {
		panic(fmt.Sprintf("can: owner %v does not contain %v", owner, p))
	}
	a, b := zs[zi].Split()
	id := overlay.NodeID(len(c.zones))
	// The joiner takes the half containing its chosen point.
	if a.Contains(p) {
		a, b = b, a
	}
	c.zones[owner][zi] = a
	c.zones = append(c.zones, []Zone{b})
	c.neighbors = append(c.neighbors, nil)
	return id
}

// Join dynamically adds a node at point p after construction, returning its
// ID, and incrementally repairs the neighbor sets of the affected
// neighborhood (the old owner's neighbors, the old owner, and the joiner).
func (c *Network) Join(p overlay.Point) overlay.NodeID {
	owner := c.ownerOfPoint(p)
	affected := append([]overlay.NodeID{owner}, c.neighbors[owner]...)
	id := c.join(p)
	affected = append(affected, id)
	for _, n := range affected {
		c.rebuildNeighbors(n)
	}
	// Nodes newly adjacent to id must also list it.
	for _, n := range c.neighbors[id] {
		c.rebuildNeighbors(n)
	}
	return id
}

// JoinRand joins at a uniformly random point drawn from rnd. This is the
// uniform dynamic-overlay join hook; Join remains for callers that choose
// the point.
func (c *Network) JoinRand(rnd *sim.Rand) overlay.NodeID {
	return c.Join(overlay.Point{X: rnd.Float64(), Y: rnd.Float64()})
}

// Leave removes node n, handing all its zones to the alive neighbor with
// the smallest total volume (the paper's takeover rule: "a neighboring node
// M takes over the departing node N's portion of the global index"). It
// returns the absorbing neighbor. Removing the last node panics.
func (c *Network) Leave(n overlay.NodeID) overlay.NodeID {
	if !c.Alive(n) {
		panic(fmt.Sprintf("can: Leave of dead or unknown %v", n))
	}
	nbrs := c.neighbors[n]
	if len(nbrs) == 0 {
		panic("can: cannot remove the last node")
	}
	heir := nbrs[0]
	best := c.volume(heir)
	for _, m := range nbrs[1:] {
		if v := c.volume(m); v < best {
			heir, best = m, v
		}
	}
	affected := map[overlay.NodeID]bool{heir: true}
	for _, m := range nbrs {
		affected[m] = true
	}
	for _, m := range c.neighbors[heir] {
		affected[m] = true
	}
	c.zones[heir] = append(c.zones[heir], c.zones[n]...)
	c.zones[n] = nil
	c.neighbors[n] = nil
	delete(affected, n)
	for m := range affected {
		c.rebuildNeighbors(m)
	}
	return heir
}

// volume is the total area owned by n.
func (c *Network) volume(n overlay.NodeID) float64 {
	var v float64
	for _, z := range c.zones[n] {
		v += z.Area()
	}
	return v
}

// Alive reports whether n currently owns any zone.
func (c *Network) Alive(n overlay.NodeID) bool {
	return int(n) >= 0 && int(n) < len(c.zones) && len(c.zones[n]) > 0
}

// AliveNodes returns the IDs of all alive nodes in ascending order.
func (c *Network) AliveNodes() []overlay.NodeID {
	out := make([]overlay.NodeID, 0, len(c.zones))
	for i := range c.zones {
		if len(c.zones[i]) > 0 {
			out = append(out, overlay.NodeID(i))
		}
	}
	return out
}

// Size returns the number of alive nodes.
func (c *Network) Size() int {
	n := 0
	for i := range c.zones {
		if len(c.zones[i]) > 0 {
			n++
		}
	}
	return n
}

// Zones returns the zones owned by n (nil for departed nodes). The slice
// must not be mutated.
func (c *Network) Zones(n overlay.NodeID) []Zone { return c.zones[n] }

// ownerOfPoint scans for the node whose zone contains p. Zones exactly tile
// the space, so exactly one node matches.
func (c *Network) ownerOfPoint(p overlay.Point) overlay.NodeID {
	for i := range c.zones {
		for _, z := range c.zones[i] {
			if z.Contains(p) {
				return overlay.NodeID(i)
			}
		}
	}
	panic(fmt.Sprintf("can: no zone contains %v", p))
}

// Owner returns the authority node for key k.
func (c *Network) Owner(k overlay.Key) overlay.NodeID {
	return c.ownerOfPoint(overlay.HashPoint(k))
}

// OwnerOfPoint returns the node whose zone contains p.
func (c *Network) OwnerOfPoint(p overlay.Point) overlay.NodeID {
	return c.ownerOfPoint(p)
}

// Neighbors returns n's neighbor set (alive nodes whose zones abut n's).
func (c *Network) Neighbors(n overlay.NodeID) []overlay.NodeID {
	return c.neighbors[n]
}

// dist is the torus distance from node n's closest zone to p.
func (c *Network) dist(n overlay.NodeID, p overlay.Point) float64 {
	best := 2.0
	for _, z := range c.zones[n] {
		if d := z.Dist(p); d < best {
			best = d
		}
	}
	return best
}

// NextHop implements greedy CAN routing: forward to the neighbor whose zone
// is closest to the target point. Strict progress is preferred; when no
// neighbor is strictly closer (a measure-zero geometric tie), the
// equal-distance neighbor with the smallest ID below our own is taken, which
// cannot produce a two-cycle.
func (c *Network) NextHop(n overlay.NodeID, k overlay.Key) (overlay.NodeID, bool) {
	p := overlay.HashPoint(k)
	for _, z := range c.zones[n] {
		if z.Contains(p) {
			return n, true
		}
	}
	own := c.dist(n, p)
	best := overlay.NoNode
	bestD := own
	for _, m := range c.neighbors[n] {
		d := c.dist(m, p)
		if d < bestD || (d == bestD && best != overlay.NoNode && m < best) {
			best, bestD = m, d
		}
	}
	if best != overlay.NoNode {
		return best, true
	}
	// No strict progress available: take the smallest-ID equal-distance
	// neighbor smaller than ourselves, if any.
	for _, m := range c.neighbors[n] {
		if c.dist(m, p) == own && m < n {
			return m, true
		}
	}
	return overlay.NoNode, false
}

// rebuildNeighbors recomputes the neighbor set of one node by abutment.
func (c *Network) rebuildNeighbors(n overlay.NodeID) {
	if len(c.zones[n]) == 0 {
		c.neighbors[n] = nil
		return
	}
	var out []overlay.NodeID
	for j := range c.zones {
		m := overlay.NodeID(j)
		if m == n || len(c.zones[j]) == 0 {
			continue
		}
		if c.abuts(n, m) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	c.neighbors[n] = out
}

func (c *Network) abuts(a, b overlay.NodeID) bool {
	for _, za := range c.zones[a] {
		for _, zb := range c.zones[b] {
			if za.Abuts(zb) {
				return true
			}
		}
	}
	return false
}

// rebuildAllNeighbors recomputes every neighbor set (O(n²) zone pairs);
// used once at construction.
func (c *Network) rebuildAllNeighbors() {
	for i := range c.zones {
		c.rebuildNeighbors(overlay.NodeID(i))
	}
}

// TotalArea sums all owned zone areas — exactly 1 when the tiling is intact.
func (c *Network) TotalArea() float64 {
	var v float64
	for i := range c.zones {
		v += c.volume(overlay.NodeID(i))
	}
	return v
}

// CheckInvariants verifies structural invariants: zones are valid and
// mutually non-overlapping, the tiling covers the unit square, and neighbor
// sets are symmetric and match abutment. Tests call this after mutation.
func (c *Network) CheckInvariants() error {
	var all []Zone
	for i := range c.zones {
		for _, z := range c.zones[i] {
			if !z.Valid() {
				return fmt.Errorf("node %d owns invalid zone %v", i, z)
			}
			all = append(all, z)
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				return fmt.Errorf("zones overlap: %v and %v", all[i], all[j])
			}
		}
	}
	if v := c.TotalArea(); v < 0.999999 || v > 1.000001 {
		return fmt.Errorf("total area = %v, want 1", v)
	}
	for i := range c.zones {
		n := overlay.NodeID(i)
		if !c.Alive(n) {
			continue
		}
		for _, m := range c.neighbors[n] {
			if !c.Alive(m) {
				return fmt.Errorf("%v lists dead neighbor %v", n, m)
			}
			if !c.abuts(n, m) {
				return fmt.Errorf("%v lists non-abutting neighbor %v", n, m)
			}
			found := false
			for _, back := range c.neighbors[m] {
				if back == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("neighbor relation asymmetric: %v -> %v", n, m)
			}
		}
	}
	return nil
}
