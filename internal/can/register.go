package can

import (
	"cup/internal/overlay"
	"cup/internal/sim"
)

// The CAN self-registers with the overlay registry so drivers can build it
// by name. Its zone layout depends on the random join points, so the seed
// matters: identical seeds give identical tilings.
func init() {
	overlay.Register("can", func(n int, seed int64) overlay.Overlay {
		return Build(n, sim.NewRand(seed))
	})
}
