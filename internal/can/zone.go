// Package can implements a two-dimensional content-addressable network
// (CAN) overlay in the style of Ratnasamy et al. [RFH+01] — the "bare-bones
// CAN" the CUP paper simulates. The unit square [0,1)² is a torus partitioned
// into rectangular zones, one primary owner per zone; keys hash to points and
// are owned by the node whose zone covers the point; routing forwards
// greedily to the neighbor whose zone is closest (torus metric) to the
// target point.
package can

import (
	"fmt"
	"math"

	"cup/internal/overlay"
)

// Zone is a half-open axis-aligned rectangle [X0,X1) × [Y0,Y1) in the unit
// square. Zones never wrap around the torus edge: splitting only ever
// subdivides existing zones, and the initial zone is the whole square.
type Zone struct {
	X0, Y0, X1, Y1 float64
}

// FullZone covers the entire coordinate space.
func FullZone() Zone { return Zone{0, 0, 1, 1} }

// Contains reports whether p falls inside the zone.
func (z Zone) Contains(p overlay.Point) bool {
	return p.X >= z.X0 && p.X < z.X1 && p.Y >= z.Y0 && p.Y < z.Y1
}

// Area returns the zone's area.
func (z Zone) Area() float64 { return (z.X1 - z.X0) * (z.Y1 - z.Y0) }

// Valid reports whether the zone is non-empty and inside the unit square.
func (z Zone) Valid() bool {
	return z.X0 >= 0 && z.Y0 >= 0 && z.X1 <= 1 && z.Y1 <= 1 && z.X0 < z.X1 && z.Y0 < z.Y1
}

// String implements fmt.Stringer.
func (z Zone) String() string {
	return fmt.Sprintf("[%.4f,%.4f)×[%.4f,%.4f)", z.X0, z.X1, z.Y0, z.Y1)
}

// Split halves the zone across its longer dimension (ties split vertically,
// i.e. along X) and returns the two halves. This is the standard CAN join
// split; alternating dimensions keeps zones close to square, bounding route
// lengths at O(√n) for n nodes.
func (z Zone) Split() (a, b Zone) {
	if z.X1-z.X0 >= z.Y1-z.Y0 {
		mid := (z.X0 + z.X1) / 2
		return Zone{z.X0, z.Y0, mid, z.Y1}, Zone{mid, z.Y0, z.X1, z.Y1}
	}
	mid := (z.Y0 + z.Y1) / 2
	return Zone{z.X0, z.Y0, z.X1, mid}, Zone{z.X0, mid, z.X1, z.Y1}
}

// circGap returns the distance from coordinate x to the interval [a,b) on
// the unit circle; zero when x lies inside.
func circGap(x, a, b float64) float64 {
	if x >= a && x < b {
		return 0
	}
	da := circDist(x, a)
	db := circDist(x, b)
	if da < db {
		return da
	}
	return db
}

// circDist is the distance between two coordinates on the unit circle.
func circDist(u, v float64) float64 {
	d := math.Abs(u - v)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// Dist returns the torus (wraparound) Euclidean distance from point p to
// the closest point of the zone; zero when p is inside.
func (z Zone) Dist(p overlay.Point) float64 {
	gx := circGap(p.X, z.X0, z.X1)
	gy := circGap(p.Y, z.Y0, z.Y1)
	return math.Hypot(gx, gy)
}

// spansAbut reports whether the 1-D half-open spans [a0,a1) and [b0,b1)
// share a boundary of positive length... they abut when one ends where the
// other begins (including across the torus seam at 0/1).
func spansAbut(a0, a1, b0, b1 float64) bool {
	return a1 == b0 || b1 == a0 ||
		(a1 == 1 && b0 == 0) || (b1 == 1 && a0 == 0)
}

// spansOverlap reports whether [a0,a1) and [b0,b1) overlap with positive
// length (torus seams do not create overlap: zones never wrap).
func spansOverlap(a0, a1, b0, b1 float64) bool {
	return a0 < b1 && b0 < a1
}

// Abuts reports whether two zones are CAN neighbors: they share a border
// segment of positive length — abutting in exactly one dimension while
// overlapping in the other. Corner-touching zones are not neighbors.
func (z Zone) Abuts(o Zone) bool {
	if spansAbut(z.X0, z.X1, o.X0, o.X1) && spansOverlap(z.Y0, z.Y1, o.Y0, o.Y1) {
		return true
	}
	if spansAbut(z.Y0, z.Y1, o.Y0, o.Y1) && spansOverlap(z.X0, z.X1, o.X0, o.X1) {
		return true
	}
	return false
}

// Overlaps reports whether two zones share interior points.
func (z Zone) Overlaps(o Zone) bool {
	return spansOverlap(z.X0, z.X1, o.X0, o.X1) && spansOverlap(z.Y0, z.Y1, o.Y0, o.Y1)
}
