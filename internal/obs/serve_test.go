package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	cupcore "cup/internal/cup"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cup_test_total", "A test counter.").Add(42)
	tracer := scriptedTracer()
	srv, err := NewServer("127.0.0.1:0", reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "cup_test_total 42") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK || !strings.Contains(body, `"k"`) {
		t.Errorf("/trace: code %d body %q", code, body)
	}

	code, body = get(t, base+"/trace/k")
	if code != http.StatusOK {
		t.Fatalf("/trace/k: code %d body %q", code, body)
	}
	var tr Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace/k not JSON: %v\n%s", err, body)
	}
	if tr.Key != "k" || len(tr.Spans) != 4 || tr.Cutoffs != 1 {
		t.Errorf("/trace/k decoded to %+v", tr)
	}

	code, _ = get(t, base+"/trace/absent")
	if code != http.StatusNotFound {
		t.Errorf("/trace/absent: code %d, want 404", code)
	}

	// pprof index answers; the profile endpoint itself is exercised by
	// the façade telemetry test to keep this one fast.
	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

func TestServerLiveUpdatesVisible(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg)
	srv, err := NewServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	col.OnEvent(cupcore.Event{Kind: cupcore.EvCutoffFired, Node: 1, Peer: 0, Key: "k"})
	_, body := get(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "cup_cutoffs_total 1") {
		t.Errorf("scrape missing collector update:\n%s", body)
	}
}
