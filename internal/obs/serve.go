package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"cup/internal/overlay"
)

// Server owns one HTTP listener serving an arbitrary handler — the
// deployment's one-listener-per-address building block. NewMux builds
// the telemetry handler set; other subsystems (internal/serve's /v1
// routes) mount onto the same mux, so one address exposes /metrics,
// /trace, /debug/pprof, and /v1/* together instead of each feature
// spinning a private server and fighting over ports.
//
// It binds eagerly (so ":0" callers can read the resolved Addr) and
// serves on a background goroutine until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves h until Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// NewServer starts serving reg and tracer (either may be nil, disabling
// its endpoints) on addr. addr ":0" picks a free port. It is
// Serve(addr, NewMux(reg, tracer)).
func NewServer(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	return Serve(addr, NewMux(reg, tracer))
}

// NewMux builds the telemetry handler set:
//
//	/metrics        Prometheus text exposition
//	/trace          JSON list of traced keys
//	/trace/{key}    JSON span tree for one key
//	/debug/pprof/*  the standard Go profiling endpoints
//
// Either argument may be nil, disabling its endpoints. Callers may
// register further routes on the returned mux before handing it to
// Serve.
func NewMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
	}
	if tracer != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"keys": tracer.Keys()})
		})
		mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
			key := strings.TrimPrefix(r.URL.Path, "/trace/")
			tr, ok := tracer.Trace(overlay.Key(key))
			if !ok {
				http.Error(w, fmt.Sprintf("no trace for key %q", key), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(tr)
		})
	}
	// The default pprof handlers hang off http.DefaultServeMux; register
	// them explicitly so telemetry stays off the global mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Addr returns the bound address, e.g. "127.0.0.1:43117".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately and releases its port. In-flight
// requests are aborted; use Shutdown for a graceful drain.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections, then waits for in-flight
// requests to complete or ctx to expire — http.Server.Shutdown
// semantics. On ctx expiry the remaining connections are force-closed
// so the port is released either way.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// The drain deadline passed with requests still in flight:
		// fall back to a hard close rather than leak the listener.
		_ = s.srv.Close()
	}
	return err
}
