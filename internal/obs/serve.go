package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"cup/internal/overlay"
)

// Server exposes a registry and tracer over HTTP:
//
//	/metrics        Prometheus text exposition
//	/trace          JSON list of traced keys
//	/trace/{key}    JSON span tree for one key
//	/debug/pprof/*  the standard Go profiling endpoints
//
// It binds eagerly (so ":0" callers can read the resolved Addr) and
// serves on a background goroutine until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer starts serving reg and tracer (either may be nil, disabling
// its endpoints) on addr. addr ":0" picks a free port.
func NewServer(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
	}
	if tracer != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"keys": tracer.Keys()})
		})
		mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
			key := strings.TrimPrefix(r.URL.Path, "/trace/")
			tr, ok := tracer.Trace(overlay.Key(key))
			if !ok {
				http.Error(w, fmt.Sprintf("no trace for key %q", key), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(tr)
		})
	}
	// The default pprof handlers hang off http.DefaultServeMux; register
	// them explicitly so telemetry stays off the global mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43117".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases its port.
func (s *Server) Close() error { return s.srv.Close() }
