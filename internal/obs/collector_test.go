package obs

import (
	"testing"

	cupcore "cup/internal/cup"
	"cup/internal/overlay"
)

func TestCollectorFoldsEventStream(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg)
	events := []cupcore.Event{
		{Kind: cupcore.EvQueryIssued, Node: 1, Key: "k"},
		{Kind: cupcore.EvQueryAnswered, Node: 1, Key: "k", Latency: 0.25},
		{Kind: cupcore.EvQueryAnswered, Node: 2, Key: "k"},
		{Kind: cupcore.EvUpdatePushed, Node: 0, Peer: 1, Key: "k", Type: cupcore.Refresh, Depth: 1},
		{Kind: cupcore.EvUpdatePushed, Node: 1, Peer: 2, Key: "k", Type: cupcore.Append, Depth: 2},
		{Kind: cupcore.EvCutoffFired, Node: 2, Peer: 1, Key: "k"},
		{Kind: cupcore.EvQueryCoalesced, Node: 1, Peer: cupcore.LocalClient, Key: "k"},
		{Kind: cupcore.EvQueryCoalesced, Node: 1, Peer: 3, Key: "k"},
	}
	for _, e := range events {
		c.OnEvent(e)
	}

	check := func(name string, want float64, labels ...Label) {
		t.Helper()
		got, ok := reg.Value(name, labels...)
		if !ok || got != want {
			t.Errorf("%s%v = %g (ok=%v), want %g", name, labels, got, ok, want)
		}
	}
	check(MetricEvents, 2, Label{"kind", "query-answered"})
	check(MetricEvents, 2, Label{"kind", "update-pushed"})
	check(MetricEvents, 1, Label{"kind", "cutoff-fired"})
	check(MetricQueryLatency, 2) // histogram reports sample count
	check(MetricPushDepth, 2)
	check(MetricUpdatesPushed, 1, Label{"type", "refresh"})
	check(MetricUpdatesPushed, 1, Label{"type", "append"})
	check(MetricUpdatesPushed, 0, Label{"type", "first-time"})
	check(MetricQueriesCoalesce, 1, Label{"source", "local"})
	check(MetricQueriesCoalesce, 1, Label{"source", "neighbor"})
	check(MetricCutoffs, 1)
}

// The collector sits on the bus of every instrumented run, including
// benchmark runs gated at 0 allocs/event: OnEvent must not allocate.
func TestCollectorOnEventZeroAlloc(t *testing.T) {
	c := NewCollector(NewRegistry())
	evs := []cupcore.Event{
		{Kind: cupcore.EvQueryAnswered, Latency: 0.1},
		{Kind: cupcore.EvUpdatePushed, Peer: 1, Type: cupcore.Refresh, Depth: 3},
		{Kind: cupcore.EvCutoffFired, Peer: 1},
		{Kind: cupcore.EvQueryCoalesced, Peer: overlay.NoNode},
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		c.OnEvent(evs[i%len(evs)])
		i++
	}); n != 0 {
		t.Errorf("Collector.OnEvent allocates %g/op", n)
	}
}
