package obs

import (
	"testing"

	cupcore "cup/internal/cup"
	"cup/internal/overlay"
)

// A small scripted propagation: authority 0 pushes to 1 and 2; node 1
// answers a local client; node 2 cuts itself off; node 1 also forwards
// to 3, which just absorbs the push.
func scriptedTracer() *Tracer {
	tr := NewTracer()
	for _, e := range []cupcore.Event{
		{Kind: cupcore.EvQueryIssued, Time: 1, Node: 1, Peer: cupcore.LocalClient, Key: "k"},
		{Kind: cupcore.EvUpdatePushed, Time: 2, Node: 0, Peer: 1, Key: "k", Type: cupcore.Refresh, Depth: 1},
		{Kind: cupcore.EvUpdatePushed, Time: 2, Node: 0, Peer: 2, Key: "k", Type: cupcore.Refresh, Depth: 1},
		{Kind: cupcore.EvQueryAnswered, Time: 3, Node: 1, Peer: cupcore.LocalClient, Key: "k", Entries: 1},
		{Kind: cupcore.EvUpdatePushed, Time: 3, Node: 1, Peer: 3, Key: "k", Type: cupcore.Refresh, Depth: 2},
		{Kind: cupcore.EvCutoffFired, Time: 4, Node: 2, Peer: 0, Key: "k"},
	} {
		tr.OnEvent(e)
	}
	return tr
}

func TestTracerReconstructsSpanTree(t *testing.T) {
	tr := scriptedTracer()
	trace, ok := tr.Trace("k")
	if !ok {
		t.Fatal("no trace for key k")
	}
	if trace.Root != 0 {
		t.Errorf("root = %v, want 0", trace.Root)
	}
	if trace.Cutoffs != 1 {
		t.Errorf("trace cut-offs = %d, want 1", trace.Cutoffs)
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(trace.Spans), trace.Spans)
	}
	// Depth order: 0 (root), then 1 and 2 at depth 1, then 3 at depth 2.
	wantOrder := []overlay.NodeID{0, 1, 2, 3}
	byNode := map[overlay.NodeID]Span{}
	for i, s := range trace.Spans {
		if s.Node != wantOrder[i] {
			t.Errorf("span[%d] = node %v, want %v", i, s.Node, wantOrder[i])
		}
		byNode[s.Node] = s
	}
	for node, want := range map[overlay.NodeID]Span{
		0: {Parent: overlay.NoNode, Depth: 0, Outcome: OutcomeForwarded},
		1: {Parent: 0, Depth: 1, Outcome: OutcomeAnswered},
		2: {Parent: 0, Depth: 1, Outcome: OutcomeCutoff},
		3: {Parent: 1, Depth: 2, Outcome: OutcomeAbsorbed},
	} {
		got := byNode[node]
		if got.Parent != want.Parent || got.Depth != want.Depth || got.Outcome != want.Outcome {
			t.Errorf("node %v: parent=%v depth=%d outcome=%q, want parent=%v depth=%d outcome=%q",
				node, got.Parent, got.Depth, got.Outcome, want.Parent, want.Depth, want.Outcome)
		}
	}
	if s := byNode[1]; s.Queries != 1 || s.Answered != 1 || s.Pushes != 1 || s.Receives != 1 {
		t.Errorf("node 1 tallies = %+v", s)
	}
	if s := byNode[3]; s.First != 3 || s.Last != 3 {
		t.Errorf("node 3 time bounds = [%g, %g], want [3, 3]", float64(s.First), float64(s.Last))
	}
}

func TestTracerTotalsAndKeys(t *testing.T) {
	tr := scriptedTracer()
	tr.OnEvent(cupcore.Event{Kind: cupcore.EvCutoffFired, Time: 5, Node: 4, Peer: 1, Key: "other"})
	if got := tr.TotalCutoffs(); got != 2 {
		t.Errorf("TotalCutoffs = %d, want 2", got)
	}
	keys := tr.Keys()
	if len(keys) != 2 || keys[0] != "k" || keys[1] != "other" {
		t.Errorf("Keys = %v, want [k other]", keys)
	}
	if _, ok := tr.Trace("absent"); ok {
		t.Error("Trace of an unseen key must report false")
	}
}

func TestTracerKeyBound(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxKeys(1)
	tr.OnEvent(cupcore.Event{Kind: cupcore.EvQueryIssued, Node: 0, Key: "a"})
	tr.OnEvent(cupcore.Event{Kind: cupcore.EvQueryIssued, Node: 0, Key: "b"})
	if got := len(tr.Keys()); got != 1 {
		t.Errorf("bounded tracer holds %d keys, want 1", got)
	}
	// Membership events never create trace state.
	tr.SetMaxKeys(0)
	tr.OnEvent(cupcore.Event{Kind: cupcore.EvNodeJoined, Node: 9})
	for _, k := range tr.Keys() {
		if k == "" {
			t.Error("membership event leaked an empty-key trace")
		}
	}
}

// TestTracerSteadyStateAllocs pins the //cup:hotpath contract on
// Tracer.OnEvent: once a (key, node) pair's accumulator exists,
// folding further events into it is allocation-free. Only the first
// observation of a pair allocates (the spanState and per-key map,
// both //cup:allowalloc).
func TestTracerSteadyStateAllocs(t *testing.T) {
	tr := NewTracer()
	warm := []cupcore.Event{
		{Kind: cupcore.EvQueryIssued, Time: 1, Node: 1, Peer: cupcore.LocalClient, Key: "k"},
		{Kind: cupcore.EvUpdatePushed, Time: 2, Node: 0, Peer: 1, Key: "k", Type: cupcore.Refresh, Depth: 1},
		{Kind: cupcore.EvQueryAnswered, Time: 3, Node: 1, Peer: cupcore.LocalClient, Key: "k", Entries: 1},
		{Kind: cupcore.EvCutoffFired, Time: 4, Node: 1, Peer: 0, Key: "k"},
	}
	for _, e := range warm {
		tr.OnEvent(e) // allocate every accumulator the loop below touches
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		for _, e := range warm {
			tr.OnEvent(e)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state Tracer.OnEvent allocates %.1f per batch, want 0", allocs)
	}
}
