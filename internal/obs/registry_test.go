package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	h := r.Histogram("h_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Errorf("histogram count=%d sum=%g, want 3 and 55.5", h.Count(), h.Sum())
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", Label{"k", "v"})
	b := r.Counter("x_total", "h", Label{"k", "v"})
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	other := r.Counter("x_total", "h", Label{"k", "w"})
	if a == other {
		t.Error("different labels must get a distinct series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "h")
}

// The hot-path invariant: recording into pre-registered handles must not
// allocate, or the collector would break the scheduler's 0 allocs/event
// budget.
func TestRecordPathsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1); g.Add(1) }); n != 0 {
		t.Errorf("Gauge record allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %g/op", n)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cup_things_total", "Things seen.", Label{"kind", "a"}).Add(3)
	r.Gauge("cup_level", "Current level.").Set(7)
	r.GaugeFunc("cup_live", "Live value.", func() float64 { return 2 })
	h := r.Histogram("cup_lat_seconds", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cup_things_total Things seen.",
		"# TYPE cup_things_total counter",
		`cup_things_total{kind="a"} 3`,
		"# TYPE cup_level gauge",
		"cup_level 7",
		"cup_live 2",
		"# TYPE cup_lat_seconds histogram",
		`cup_lat_seconds_bucket{le="1"} 1`,
		`cup_lat_seconds_bucket{le="10"} 2`,
		`cup_lat_seconds_bucket{le="+Inf"} 3`,
		"cup_lat_seconds_sum 55.5",
		"cup_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotAndValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", Label{"x", "1"}).Add(9)
	h := r.Histogram("b_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Value != 9 || snap[0].Type != "counter" {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	hs := snap[1]
	if hs.Count != 2 || hs.Sum != 2.5 || len(hs.Buckets) != 2 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if !math.IsInf(hs.Buckets[1].LE, 1) || hs.Buckets[1].Count != 2 {
		t.Errorf("+Inf bucket = %+v", hs.Buckets[1])
	}

	if v, ok := r.Value("a_total", Label{"x", "1"}); !ok || v != 9 {
		t.Errorf("Value(a_total) = %g, %v", v, ok)
	}
	if v, ok := r.Value("b_seconds"); !ok || v != 2 {
		t.Errorf("Value(b_seconds) = %g, %v (histograms report count)", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value of unregistered series must report false")
	}
}
