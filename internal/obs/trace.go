package obs

import (
	"sort"
	"sync"

	cupcore "cup/internal/cup"
	"cup/internal/overlay"
	"cup/internal/sim"
)

// Span outcomes, in decision order: a node that cut itself out of the
// tree is a cut-off even if it answered earlier; a node that answered
// local clients beats one that merely forwarded.
const (
	OutcomeCutoff    = "cut-off"
	OutcomeAnswered  = "answered-from-cache"
	OutcomeForwarded = "forwarded"
	OutcomeAbsorbed  = "absorbed"
)

// Span is one node's participation in a key's propagation tree.
type Span struct {
	Node overlay.NodeID `json:"node"`
	// Parent is the upstream neighbor that pushed to this node; NoNode
	// for the authority (root) and for nodes only seen querying.
	Parent overlay.NodeID `json:"parent"`
	// Depth is the hop distance from the authority (0 at the root, -1
	// when the node never received a push).
	Depth int `json:"depth"`
	// First/Last bound the node's observed activity: virtual seconds on
	// the simulator, wall-clock seconds since network start when live.
	First sim.Time `json:"first"`
	Last  sim.Time `json:"last"`
	// Event tallies at this node for this key.
	Queries   int `json:"queries"`
	Answered  int `json:"answered"`
	Coalesced int `json:"coalesced"`
	// Pushes counts proactive pushes sent; Receives pushes received.
	Pushes   int `json:"pushes"`
	Receives int `json:"receives"`
	Cutoffs  int `json:"cutoffs"`
	// Outcome summarizes the node's role: cut-off, answered-from-cache,
	// forwarded, or absorbed (received pushes without acting on them).
	Outcome string `json:"outcome"`
}

// Trace is the reconstructed span tree of one key's propagation.
type Trace struct {
	Key  overlay.Key    `json:"key"`
	Root overlay.NodeID `json:"root"`
	// Spans lists every participating node ordered by depth, then node
	// ID (unknown-depth spans last).
	Spans []Span `json:"spans"`
	// Cutoffs is the tree-wide cut-off total — one per EvCutoffFired,
	// matching the collector's cup_cutoffs_total for the same stream.
	Cutoffs int `json:"cutoffs"`
}

// spanState is the mutable per-(key, node) accumulator.
type spanState struct {
	parent            overlay.NodeID
	depth             int
	first, last       sim.Time
	queries, answered int
	coalesced         int
	pushes, receives  int
	cutoffs           int
}

// DefaultTraceKeys bounds how many distinct keys a Tracer records; keys
// beyond the bound are ignored, never evicted, so long-running live
// deployments cannot grow the trace map without bound.
const DefaultTraceKeys = 1024

// Tracer reconstructs per-key propagation span trees from the event
// stream. It implements cup.Observer and is safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	maxKeys int
	keys    map[overlay.Key]map[overlay.NodeID]*spanState
}

// NewTracer returns a tracer bounded at DefaultTraceKeys distinct keys.
func NewTracer() *Tracer {
	return &Tracer{maxKeys: DefaultTraceKeys,
		keys: make(map[overlay.Key]map[overlay.NodeID]*spanState)}
}

// SetMaxKeys adjusts the distinct-key bound (non-positive = unbounded).
func (t *Tracer) SetMaxKeys(n int) {
	t.mu.Lock()
	t.maxKeys = n
	t.mu.Unlock()
}

// spans returns (allocating if allowed) the accumulator map for k.
//
//cup:hotpath
func (t *Tracer) spans(k overlay.Key) map[overlay.NodeID]*spanState {
	m := t.keys[k]
	if m == nil {
		if t.maxKeys > 0 && len(t.keys) >= t.maxKeys {
			return nil
		}
		// Cold branch: first event for a new key.
		m = make(map[overlay.NodeID]*spanState) //cup:allowalloc
		t.keys[k] = m                           //cup:allowalloc
	}
	return m
}

// at returns (allocating if needed) the accumulator for node n of key k,
// stamping the observation time.
//
//cup:hotpath
func at(m map[overlay.NodeID]*spanState, n overlay.NodeID, now sim.Time) *spanState {
	s := m[n]
	if s == nil {
		// Cold branch: a node's first event for this key.
		s = &spanState{parent: overlay.NoNode, depth: -1, first: now} //cup:allowalloc
		m[n] = s                                                      //cup:allowalloc
	}
	s.last = now
	return s
}

// OnEvent implements cup.Observer. Steady-state span updates are
// allocation-free; only the first observation of a (key, node) pair
// allocates its accumulator (see at and spans).
//
//cup:hotpath
func (t *Tracer) OnEvent(e cupcore.Event) {
	//cup:eventexhaustive
	switch e.Kind {
	case cupcore.EvNodeJoined, cupcore.EvNodeLeft:
		return // membership events carry no key
	case cupcore.EvQueryIssued, cupcore.EvQueryAnswered, cupcore.EvQueryCoalesced,
		cupcore.EvUpdatePushed, cupcore.EvCutoffFired:
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.spans(e.Key)
	if m == nil {
		return // key bound reached
	}
	s := at(m, e.Node, e.Time)
	switch e.Kind {
	case cupcore.EvQueryIssued:
		s.queries++
	case cupcore.EvQueryAnswered:
		s.answered++
	case cupcore.EvQueryCoalesced:
		s.coalesced++
	case cupcore.EvUpdatePushed:
		s.pushes++
		// The push carries the receiver's depth, which also pins the
		// emitter one level up and records the tree edge.
		if s.depth < 0 {
			s.depth = e.Depth - 1
		}
		r := at(m, e.Peer, e.Time)
		r.receives++
		r.parent = e.Node
		r.depth = e.Depth
	case cupcore.EvCutoffFired:
		s.cutoffs++
	}
}

// build renders one key's accumulators into an immutable Trace.
func build(k overlay.Key, m map[overlay.NodeID]*spanState) Trace {
	tr := Trace{Key: k, Root: overlay.NoNode}
	tr.Spans = make([]Span, 0, len(m))
	for n, s := range m {
		outcome := OutcomeAbsorbed
		switch {
		case s.cutoffs > 0:
			outcome = OutcomeCutoff
		case s.answered > 0:
			outcome = OutcomeAnswered
		case s.pushes > 0:
			outcome = OutcomeForwarded
		}
		if s.depth == 0 {
			tr.Root = n
		}
		tr.Cutoffs += s.cutoffs
		tr.Spans = append(tr.Spans, Span{
			Node: n, Parent: s.parent, Depth: s.depth,
			First: s.first, Last: s.last,
			Queries: s.queries, Answered: s.answered, Coalesced: s.coalesced,
			Pushes: s.pushes, Receives: s.receives, Cutoffs: s.cutoffs,
			Outcome: outcome,
		})
	}
	sort.Slice(tr.Spans, func(i, j int) bool {
		di, dj := tr.Spans[i].Depth, tr.Spans[j].Depth
		// Unknown depths (-1) sort after every known level.
		if (di < 0) != (dj < 0) {
			return dj < 0
		}
		if di != dj {
			return di < dj
		}
		return tr.Spans[i].Node < tr.Spans[j].Node
	})
	return tr
}

// Trace returns the reconstructed span tree for key, and whether any
// events for it were recorded.
func (t *Tracer) Trace(key overlay.Key) (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.keys[key]
	if !ok {
		return Trace{Key: key, Root: overlay.NoNode}, false
	}
	return build(key, m), true
}

// Keys lists every traced key, sorted.
func (t *Tracer) Keys() []overlay.Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]overlay.Key, 0, len(t.keys))
	for k := range t.keys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalCutoffs sums cut-offs across every traced key — by construction
// equal to the collector's cup_cutoffs_total over the same event stream
// (when the key bound was never hit).
func (t *Tracer) TotalCutoffs() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, m := range t.keys {
		for _, s := range m {
			total += s.cutoffs
		}
	}
	return total
}
