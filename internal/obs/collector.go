package obs

import (
	cupcore "cup/internal/cup"
)

// Metric names the collector populates — the catalog README documents
// and the CI smoke test asserts on.
const (
	MetricEvents          = "cup_events_total"
	MetricQueryLatency    = "cup_query_latency_seconds"
	MetricPushDepth       = "cup_update_push_depth"
	MetricUpdatesPushed   = "cup_updates_pushed_total"
	MetricQueriesCoalesce = "cup_queries_coalesced_total"
	MetricCutoffs         = "cup_cutoffs_total"
)

// Collector subscribes to the deployment event bus and folds the stream
// into registry series. Every handle is resolved at construction, so
// OnEvent is allocation-free and safe to call from the simulator's
// scheduler loop or from live peer goroutines.
type Collector struct {
	reg *Registry
	// byKind counts every event, indexed by EventKind.
	byKind []*Counter
	// byType counts proactive pushes, indexed by UpdateType.
	byType    []*Counter
	latency   *Histogram
	pushDepth *Histogram
	// coalesced splits §2.4 query absorption by querier: index 0 = local
	// client (mirrors metrics.Counters.Coalesced), 1 = neighbor.
	coalesced [2]*Counter
	cutoffs   *Counter
}

// NewCollector registers the event-stream series on reg and returns the
// observer to attach to a bus.
func NewCollector(reg *Registry) *Collector {
	c := &Collector{reg: reg}
	c.byKind = make([]*Counter, len(cupcore.EventKinds))
	for _, k := range cupcore.EventKinds {
		c.byKind[k] = reg.Counter(MetricEvents,
			"Protocol events observed on the deployment bus.",
			Label{"kind", k.String()})
	}
	types := []cupcore.UpdateType{cupcore.FirstTime, cupcore.Delete, cupcore.Refresh, cupcore.Append}
	c.byType = make([]*Counter, len(types))
	for _, t := range types {
		c.byType[t] = reg.Counter(MetricUpdatesPushed,
			"Proactive update pushes along interest trees, by update taxonomy.",
			Label{"type", t.String()})
	}
	c.latency = reg.Histogram(MetricQueryLatency,
		"Client query answer latency in seconds (0 for cache hits).",
		DefBuckets)
	c.pushDepth = reg.Histogram(MetricPushDepth,
		"Receiver hop distance from the authority for each proactive push.",
		DepthBuckets)
	c.coalesced[0] = reg.Counter(MetricQueriesCoalesce,
		"Queries absorbed by an already-pending Pending-First-Update flag.",
		Label{"source", "local"})
	c.coalesced[1] = reg.Counter(MetricQueriesCoalesce,
		"Queries absorbed by an already-pending Pending-First-Update flag.",
		Label{"source", "neighbor"})
	c.cutoffs = reg.Counter(MetricCutoffs,
		"Clear-bit cut-offs pruning update propagation trees (§2.7).")
	return c
}

// OnEvent implements cup.Observer. Zero allocations.
//
//cup:hotpath
func (c *Collector) OnEvent(e cupcore.Event) {
	if int(e.Kind) < len(c.byKind) {
		c.byKind[e.Kind].Inc()
	}
	//cup:eventexhaustive
	switch e.Kind {
	case cupcore.EvQueryIssued, cupcore.EvNodeJoined, cupcore.EvNodeLeft:
		// Tallied per kind above; no dedicated series beyond the count.
	case cupcore.EvQueryAnswered:
		c.latency.Observe(float64(e.Latency))
	case cupcore.EvUpdatePushed:
		if int(e.Type) < len(c.byType) {
			c.byType[e.Type].Inc()
		}
		c.pushDepth.Observe(float64(e.Depth))
	case cupcore.EvCutoffFired:
		c.cutoffs.Inc()
	case cupcore.EvQueryCoalesced:
		if e.Peer == cupcore.LocalClient {
			c.coalesced[0].Inc()
		} else {
			c.coalesced[1].Inc()
		}
	}
}

// Registry returns the registry the collector records into.
func (c *Collector) Registry() *Registry { return c.reg }
