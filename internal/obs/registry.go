// Package obs is the telemetry subsystem: a zero-allocation metrics
// registry (atomic counters, gauges, and fixed-bucket histograms safe to
// record from the scheduler and driver hot paths), a bus-subscribing
// collector that turns the deployment event stream into those metrics, a
// propagation tracer that reconstructs per-key span trees from the same
// stream, and an HTTP server exposing Prometheus-text /metrics, the
// /debug/pprof endpoints, and JSON /trace dumps.
//
// The registry is transport-agnostic: the discrete-event simulator and
// the live goroutine network feed it through the same cup.Observer
// surface, so a simulated run and a production deployment report through
// identical series.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair, fixed at registration time. Recording
// never touches labels, so the hot path stays allocation-free.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Counter is a monotonically increasing metric. Inc and Add are
// allocation-free atomic operations.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//cup:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//cup:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All operations are
// allocation-free atomics; the value is stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
//
//cup:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta via a CAS loop.
//
//cup:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is allocation-free:
// a linear scan over the (small, immutable) bound slice, an atomic
// bucket increment, and a CAS-accumulated sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; counts has one extra +Inf bucket
	counts []atomic.Uint64
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one sample.
//
//cup:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// metricKind discriminates the series types a family may hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry holds metric families in registration order and renders them
// as Prometheus text or structured snapshots. Registration takes a lock
// and allocates; recording through the returned handles never does.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-hop-delay range of a live LAN deployment up to the multi-hundred-
// second virtual latencies of paper-scale simulated runs.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// DepthBuckets bound hop-depth histograms: overlay routes are O(log n),
// so 16 levels cover networks far beyond the paper's 2^12 nodes.
var DepthBuckets = []float64{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}

// lookup finds or creates the family and series for (name, labels),
// enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.series = append(f.series, s)
	return s
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — occupancy-style metrics (inbox load, queue depth) read live
// state instead of being pushed.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGaugeFunc, labels)
	s.gaugeFn = fn
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.hist
}

// renderLabels formats {k="v",...}; extra appends one more pair (the
// histogram le label).
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.counter.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, renderLabels(s.labels), s.gauge.Value())
			case kindGaugeFunc:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, renderLabels(s.labels), s.gaugeFn())
			case kindHistogram:
				h := s.hist
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, renderLabels(s.labels, Label{"le", fmt.Sprintf("%g", b)}), cum); err != nil {
						return err
					}
				}
				cum += h.counts[len(h.bounds)].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, renderLabels(s.labels, Label{"le", "+Inf"}), cum); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %g\n", f.name, renderLabels(s.labels), h.Sum()); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), h.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MetricSnapshot is one series' point-in-time state, suitable for JSON
// export (cupbench) and programmatic assertions (tests, examples).
type MetricSnapshot struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures every series in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricSnapshot
	for _, f := range r.families {
		for _, s := range f.series {
			ms := MetricSnapshot{Name: f.name, Type: f.kind.String(), Labels: s.labels}
			switch f.kind {
			case kindCounter:
				ms.Value = float64(s.counter.Value())
			case kindGauge:
				ms.Value = s.gauge.Value()
			case kindGaugeFunc:
				ms.Value = s.gaugeFn()
			case kindHistogram:
				h := s.hist
				ms.Count = h.Count()
				ms.Sum = h.Sum()
				ms.Value = ms.Sum
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					ms.Buckets = append(ms.Buckets, Bucket{LE: b, Count: cum})
				}
				cum += h.counts[len(h.bounds)].Load()
				ms.Buckets = append(ms.Buckets, Bucket{LE: math.Inf(1), Count: cum})
			}
			out = append(out, ms)
		}
	}
	return out
}

// Value returns the current value of a counter, gauge, or gauge-func
// series, or (0, false) when no such series exists. Histogram series
// report their sample count.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		return 0, false
	}
	for _, s := range f.series {
		if !labelsEqual(s.labels, labels) {
			continue
		}
		switch f.kind {
		case kindCounter:
			return float64(s.counter.Value()), true
		case kindGauge:
			return s.gauge.Value(), true
		case kindGaugeFunc:
			return s.gaugeFn(), true
		case kindHistogram:
			return float64(s.hist.Count()), true
		}
	}
	return 0, false
}

// Names lists the registered family names, sorted — the metrics catalog.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
